package ssmdvfs_bench

import (
	"fmt"
	"runtime"
	"testing"

	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/kernels"
)

// benchSuiteInputs returns a reduced datagen setup: small GPU, one
// breakpoint, two feature levels, four short training kernels — enough
// work to shard, small enough for the CI benchmark smoke.
func benchSuiteInputs() (datagen.Config, []isa.Kernel) {
	sim := gpusim.SmallConfig()
	cfg := datagen.DefaultConfig(sim)
	cfg.BreakpointPs = 50_000_000
	cfg.MaxBreakpoints = 1
	cfg.FeatureLevels = []int{0, sim.OPs.Default()}
	specs := kernels.Training()[:4]
	built := make([]isa.Kernel, len(specs))
	for i, spec := range specs {
		built[i] = spec.Build(0.3)
	}
	return cfg, built
}

// BenchmarkGenerateSuiteParallel measures the parallel experiment
// engine on per-kernel data generation: the same suite at workers=1 and
// workers=NumCPU. The outputs are byte-identical (asserted by the
// determinism tests); this bench shows the wall-clock effect of
// sharding, so a multi-core run should report a near-linear speedup of
// the serial ns/op.
func BenchmarkGenerateSuiteParallel(b *testing.B) {
	cfg, built := benchSuiteInputs()
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var samples int
			for i := 0; i < b.N; i++ {
				ds, err := datagen.RunSuite(datagen.SuiteOptions{
					Config:  cfg,
					Kernels: built,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				samples = len(ds.Samples)
			}
			b.ReportMetric(float64(samples), "samples")
		})
	}
}
