// Calibrator demonstrates the self-calibration mechanism on an
// adversarial phase-alternating kernel: the Decision-maker's frequency
// choices lag phase changes, and the Calibrator's instruction-count
// feedback tightens the effective performance-loss preset whenever the
// core runs slower than predicted, pulling latency back under the
// budget. The example traces cluster 0's effective preset and chosen
// level epoch by epoch, with and without calibration.
//
//	go run ./examples/calibrator
package main

import (
	"fmt"
	"log"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
)

func main() {
	opts := experiments.QuickPipelineOptions()
	pipeline, err := experiments.RunPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}

	// The backprop kernel alternates compute-heavy and memory-heavy
	// phases every few epochs, which makes the Decision-maker's choices
	// lag and gives the Calibrator something to correct.
	spec, err := kernels.ByName("rodinia.backprop")
	if err != nil {
		log.Fatal(err)
	}
	kernel := spec.Build(opts.Scale)

	baseSim, err := gpusim.New(opts.Sim, kernel)
	if err != nil {
		log.Fatal(err)
	}
	base := baseSim.Run(5_000_000_000_000)

	const preset = 0.10
	for _, calibrate := range []bool{false, true} {
		ctrl, err := core.NewController(pipeline.Model, preset, opts.Sim.Clusters, calibrate)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := gpusim.New(opts.Sim, kernel)
		if err != nil {
			log.Fatal(err)
		}
		sim.SetController(ctrl)

		fmt.Printf("\n== %s ==\n", ctrl.Name())
		fmt.Printf("%6s %6s %10s %12s %8s\n", "epoch", "level", "IPC", "eff.preset", "power")
		sim.SetObserver(func(s gpusim.EpochStats) {
			if s.Cluster != 0 {
				return
			}
			fmt.Printf("%6d %6d %10.2f %11.2f%% %7.1fW\n",
				s.Epoch, s.Level, s.IPC(), ctrl.EffectivePreset(0)*100, s.PowerW())
		})
		res := sim.Run(5_000_000_000_000)

		loss := float64(res.ExecTimePs-base.ExecTimePs) / float64(base.ExecTimePs)
		fmt.Printf("-> exec %.1fµs, loss %+.2f%% (preset %.0f%%), EDP %.3f of baseline\n",
			float64(res.ExecTimePs)/1e6, loss*100, preset*100, res.EDP()/base.EDP())
	}
}
