// Benchsweep reproduces a reduced Fig. 4: every DVFS mechanism (static
// baseline, PCSTALL, F-LEMMA, SSMDVFS with and without the Calibrator,
// and the compressed SSMDVFS) across a mixed evaluation suite at 10% and
// 20% performance-loss presets, reporting normalized EDP and latency.
//
//	go run ./examples/benchsweep
package main

import (
	"fmt"
	"log"
	"os"

	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/telemetry"
)

func main() {
	opts := experiments.QuickPipelineOptions()
	opts.Logger = telemetry.NewLoggerFunc(log.Printf, nil)
	pipeline, err := experiments.RunPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluation mix: all held-out kernels plus a few training kernels,
	// keeping >50% unseen as in the paper.
	evalKernels := kernels.Evaluation()
	evalKernels = append(evalKernels, kernels.Training()[:3]...)

	res, err := experiments.RunFig4(experiments.Fig4Options{
		Sim:        opts.Sim,
		Kernels:    evalKernels,
		Scale:      opts.Scale,
		Presets:    []float64{0.10, 0.20},
		Model:      pipeline.Model,
		Compressed: pipeline.Compressed,
		Seed:       1,
		Logger:     telemetry.NewLoggerFunc(log.Printf, nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	h, err := res.ComputeHeadline(experiments.MechSSMDVFSComp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompressed SSMDVFS EDP improvement: %+.2f%% vs baseline, %+.2f%% vs PCSTALL, %+.2f%% vs F-LEMMA\n",
		h.VsBaselinePct, h.VsPCSTALLPct, h.VsFLEMMAPct)
	fmt.Println("(paper, full scale: +11.09%, +13.17%, +36.80%)")
}
