// Quickstart: build the SSMDVFS models end-to-end on a small simulated
// GPU, then drive one held-out kernel with the trained controller and
// compare energy-delay product against running at the default V/f point.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/telemetry"
)

func main() {
	// 1. Build the models: data generation on the training kernels,
	// supervised training of the Decision-maker and Calibrator, then
	// compression. QuickPipelineOptions uses a 4-cluster GPU and short
	// kernels so this takes tens of seconds, not minutes.
	opts := experiments.QuickPipelineOptions()
	opts.Logger = telemetry.NewLoggerFunc(log.Printf, nil)
	pipeline, err := experiments.RunPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model:    accuracy %.1f%%, MAPE %.1f%%, %d FLOPs\n",
		pipeline.Report.Accuracy*100, pipeline.Report.MAPE, pipeline.Report.FLOPs)
	fmt.Printf("compressed model: accuracy %.1f%%, MAPE %.1f%%, %d effective FLOPs\n\n",
		pipeline.CompressedReport.Accuracy*100, pipeline.CompressedReport.MAPE,
		pipeline.Compressed.EffectiveFLOPs())

	// 2. Pick a held-out kernel the model never saw during training.
	spec := kernels.Evaluation()[0]
	kernel := spec.Build(opts.Scale)
	fmt.Printf("evaluation kernel: %s (%s)\n\n", spec.Name, spec.Behaviour)

	// 3. Baseline: the whole program at the default operating point.
	baseSim, err := gpusim.New(opts.Sim, kernel)
	if err != nil {
		log.Fatal(err)
	}
	base := baseSim.Run(5_000_000_000_000)

	// 4. SSMDVFS with a 10% performance-loss preset.
	ctrl, err := core.NewController(pipeline.Compressed, 0.10, opts.Sim.Clusters, true)
	if err != nil {
		log.Fatal(err)
	}
	dvfsSim, err := gpusim.New(opts.Sim, kernel)
	if err != nil {
		log.Fatal(err)
	}
	dvfsSim.SetController(ctrl)
	dvfs := dvfsSim.Run(5_000_000_000_000)

	// 5. Compare.
	fmt.Printf("%-12s %12s %12s %12s\n", "", "time (µs)", "energy (mJ)", "EDP (norm)")
	fmt.Printf("%-12s %12.1f %12.2f %12.3f\n", "baseline",
		float64(base.ExecTimePs)/1e6, base.EnergyPJ/1e9, 1.0)
	fmt.Printf("%-12s %12.1f %12.2f %12.3f\n", "ssmdvfs",
		float64(dvfs.ExecTimePs)/1e6, dvfs.EnergyPJ/1e9, dvfs.EDP()/base.EDP())
	loss := float64(dvfs.ExecTimePs-base.ExecTimePs) / float64(base.ExecTimePs)
	fmt.Printf("\nperformance loss %.2f%% (preset 10%%), %d V/f transitions, %d model inferences\n",
		loss*100, dvfs.Transitions, ctrl.Inferences())
}
