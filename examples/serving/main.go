// Serving walkthrough: build (or load) the SSMDVFS models, start the
// decision daemon in-process on loopback, drive it with a short batched
// load over the binary protocol, hot-swap the model mid-load with zero
// failed requests, and print the serving metrics — the single-process
// version of the two-terminal ssmdvfsd + dvfsload quickstart in the
// README.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"path/filepath"
	"time"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func main() {
	// 1. Models (cached in ssmdvfs-cache after the first run).
	opts := experiments.QuickPipelineOptions()
	opts.CacheDir = "ssmdvfs-cache"
	opts.Logger = telemetry.NewLoggerFunc(log.Printf, nil)
	pipe, err := experiments.RunPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Daemon: serve the full model first, hot-swap to the compressed
	// one mid-load. ModelPath points Reload at the compressed artifact.
	srv, err := serve.NewServer(pipe.Model, serve.Options{
		ModelPath: filepath.Join(opts.CacheDir, "compressed.json"),
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()
	fmt.Printf("daemon: binary protocol on %s\n", l.Addr())

	// 3. Load: one client, batches of 24 synthetic epochs.
	cl, err := serve.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(1))
	rows := make([]serve.Request, 24)
	const batches = 2000
	start := time.Now()
	for b := 0; b < batches; b++ {
		for i := range rows {
			m := rng.Float64()
			feats := make([]float64, counters.Num)
			feats[counters.IdxIPC] = 2.0 * (1 - m)
			feats[counters.IdxPPC] = 3 + 4*(1-m)
			feats[counters.IdxMH] = 60000 * m
			feats[counters.IdxMHNL] = 5000 * m
			feats[counters.IdxL1CRM] = 2000 * m
			rows[i] = serve.Request{Preset: 0.10, Features: feats}
		}
		if _, err := cl.Decide(rows); err != nil {
			log.Fatal(err)
		}
		if b == batches/2 {
			if err := srv.Reload(""); err != nil {
				log.Fatal(err)
			}
			fmt.Println("hot-swapped to the compressed model mid-load")
		}
	}
	elapsed := time.Since(start)

	// 4. Metrics.
	snap := srv.Metrics().Snapshot(srv.Model().Levels)
	fmt.Printf("\nserved %d decisions in %s (%.0f decisions/s)\n",
		snap.Decisions, elapsed.Round(time.Millisecond),
		float64(snap.Decisions)/elapsed.Seconds())
	fmt.Printf("batch latency p50/p95/p99: %.0f / %.0f / %.0f µs\n",
		snap.LatencyP50Us, snap.LatencyP95Us, snap.LatencyP99Us)
	fmt.Printf("reloads %d, errors %d\n", snap.Reloads, snap.Errors)
	fmt.Println("decision distribution:")
	for lvl, n := range snap.LevelCounts {
		fmt.Printf("  level %d: %5.1f%%\n", lvl, 100*float64(n)/float64(snap.Decisions))
	}
}
