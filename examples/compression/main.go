// Compression walks through Section IV of the paper: train the initial
// 5+4-layer network, retrain at the layer-wise compressed 3+2-layer
// architecture, apply two-stage pruning (x₁ = 0.6 magnitude, x₂ = 0.9
// neuron), and report the Table II comparison plus the Section V-D ASIC
// estimate of the final module.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"os"

	"ssmdvfs/internal/compress"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/telemetry"
)

func main() {
	opts := experiments.QuickPipelineOptions()
	opts.Logger = telemetry.NewLoggerFunc(log.Printf, nil)
	pipeline, err := experiments.RunPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table II: model before and after compression ==")
	if err := experiments.RunTableII(pipeline).WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the pruning trade-off curve around the paper's chosen
	// (x1, x2) = (0.6, 0.9) point.
	fmt.Println("\n== pruning sweep around the chosen point ==")
	smallOpts := opts.TrainOpts
	smallOpts.Arch = core.PaperCompressed()
	small, _, err := core.Train(pipeline.Dataset, smallOpts)
	if err != nil {
		log.Fatal(err)
	}
	points, err := compress.PruningSweep(small, pipeline.Dataset,
		[]float64{0.4, 0.6, 0.8}, []float64{0.7, 0.9}, opts.PruneOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8s %10s %8s\n", "config", "flops", "accuracy", "mape")
	for _, p := range points {
		fmt.Printf("%-18s %8d %9.1f%% %7.1f%%\n", p.Label, p.FLOPs, p.Accuracy*100, p.MAPE)
	}

	fmt.Println("\n== Section V-D: ASIC implementation of the final module ==")
	rep, err := experiments.RunASIC(pipeline.Compressed)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.WriteASIC(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(paper: 192 cycles = 0.16 µs = 1.65% of one epoch, 0.0080 mm², 0.0025 W)")
}
