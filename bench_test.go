// Package ssmdvfs_bench hosts the benchmark harness that regenerates
// every table and figure in the paper's evaluation section:
//
//	BenchmarkTableI_FeatureSelection  — Table I (RFE over 47 counters)
//	BenchmarkTableII_ModelCompression — Table II (before/after compression)
//	BenchmarkFig3_CompressionSweep    — Fig. 3 (FLOPs vs accuracy/MAPE)
//	BenchmarkFig4_FullSystem          — Fig. 4 (normalized EDP & latency)
//	BenchmarkHeadline_EDP             — the paper's headline EDP numbers
//	BenchmarkASIC_Inference           — Section V-D hardware estimate
//
// plus the ablation benches DESIGN.md calls out (Calibrator gain, DVFS
// epoch length, feature set, per-cluster vs chip-wide domains) and
// microbenchmarks of the simulator and the model inference path.
//
// The benches run on the reduced (4-cluster, 40%-length) configuration so
// a full -bench=. pass completes in minutes; `cmd/ssmdvfs -cache ... all`
// runs the full-scale Titan X reproduction. Custom metrics carry the
// scientific results: norm_edp (lower is better), norm_latency, etc.
package ssmdvfs_bench

import (
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"ssmdvfs/internal/asic"
	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/compress"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/features"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/quant"
	"ssmdvfs/internal/serve"
)

var (
	benchOnce sync.Once
	benchPipe *experiments.Pipeline
	benchErr  error
)

func benchOpts() experiments.PipelineOptions {
	opts := experiments.QuickPipelineOptions()
	opts.CacheDir = "testdata/bench-cache"
	return opts
}

// pipeline builds (or loads) the shared models once per test binary.
func pipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		opts := benchOpts()
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			benchErr = err
			return
		}
		benchPipe, benchErr = experiments.RunPipeline(opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPipe
}

// BenchmarkTableI_FeatureSelection regenerates Table I: RFE over the 47
// performance counters, keeping PPC direct and selecting 4 indirect
// features. Reported metrics: accuracy with the full and selected sets.
func BenchmarkTableI_FeatureSelection(b *testing.B) {
	p := pipeline(b)
	cfg := features.DefaultConfig()
	cfg.Epochs = 15
	var res *features.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = features.Run(p.Dataset, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FullAccuracy*100, "full_acc_%")
	b.ReportMetric(res.SelectedAccuracy*100, "selected_acc_%")
	names := ""
	for _, i := range res.Selected {
		names += counters.Def(i).Name + " "
	}
	b.Logf("Table I selected counters: %s", names)
}

// BenchmarkTableII_ModelCompression regenerates Table II: train the
// compressed architecture and prune it with the paper's (0.6, 0.9).
func BenchmarkTableII_ModelCompression(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	var rep core.Report
	var pruned *core.Model
	for i := 0; i < b.N; i++ {
		small := opts.TrainOpts
		small.Arch = core.PaperCompressed()
		m, _, err := core.Train(p.Dataset, small)
		if err != nil {
			b.Fatal(err)
		}
		pruned, rep, err = compress.PruneModel(m, p.Dataset, opts.PruneOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Report.FLOPs), "flops_before")
	b.ReportMetric(float64(pruned.EffectiveFLOPs()), "flops_after")
	b.ReportMetric(p.Report.Accuracy*100, "acc_before_%")
	b.ReportMetric(rep.Accuracy*100, "acc_after_%")
	b.ReportMetric(p.Report.MAPE, "mape_before_%")
	b.ReportMetric(rep.MAPE, "mape_after_%")
}

// BenchmarkFig3_CompressionSweep regenerates Fig. 3's two series on a
// reduced grid: layer-wise architectures and (x1, x2) pruning points.
func BenchmarkFig3_CompressionSweep(b *testing.B) {
	p := pipeline(b)
	opts := experiments.DefaultFig3Options()
	opts.TrainOpts = benchOpts().TrainOpts
	opts.TrainOpts.Epochs = 15
	opts.Archs = opts.Archs[:6]
	opts.X1s = []float64{0.4, 0.6, 0.8}
	opts.X2s = []float64{0.9}
	opts.PruneOpts.FineTuneEpochs = 8
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig3(p.Dataset, p.Model, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range res.Layerwise {
		b.Logf("layerwise %-10s flops=%5d acc=%5.1f%% mape=%5.1f%%", pt.Label, pt.FLOPs, pt.Accuracy*100, pt.MAPE)
	}
	for _, pt := range res.Pruning {
		b.Logf("pruning   %-16s flops=%5d acc=%5.1f%% mape=%5.1f%%", pt.Label, pt.FLOPs, pt.Accuracy*100, pt.MAPE)
	}
}

// fig4Kernels is the reduced Fig. 4 evaluation mix: >50% unseen.
func fig4Kernels() []kernels.Spec {
	mix := kernels.Evaluation()[:4]
	return append(mix, kernels.Training()[:2]...)
}

// BenchmarkFig4_FullSystem regenerates Fig. 4: per-mechanism sub-benches
// report geo-mean normalized EDP and mean normalized latency at the 10%
// and 20% presets.
func BenchmarkFig4_FullSystem(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	for _, mech := range experiments.AllMechanisms() {
		if mech == experiments.MechBaseline {
			continue
		}
		b.Run(string(mech), func(b *testing.B) {
			var res *experiments.Fig4Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.RunFig4(experiments.Fig4Options{
					Sim:        opts.Sim,
					Kernels:    fig4Kernels(),
					Scale:      opts.Scale,
					Presets:    []float64{0.10, 0.20},
					Model:      p.Model,
					Compressed: p.Compressed,
					Mechanisms: []experiments.Mechanism{experiments.MechBaseline, mech},
					Seed:       1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, s := range res.Summaries {
				if s.Mechanism != mech {
					continue
				}
				suffix := fmt.Sprintf("@%.0f%%", s.Preset*100)
				b.ReportMetric(s.GMeanEDP, "norm_edp"+suffix)
				b.ReportMetric(s.MeanLatency, "norm_lat"+suffix)
			}
		})
	}
}

// BenchmarkHeadline_EDP reproduces the headline comparison: compressed
// SSMDVFS EDP improvement vs baseline, PCSTALL and F-LEMMA (paper:
// 11.09%, 13.17%, 36.80%).
func BenchmarkHeadline_EDP(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	var h experiments.Headline
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(experiments.Fig4Options{
			Sim:        opts.Sim,
			Kernels:    fig4Kernels(),
			Scale:      opts.Scale,
			Presets:    []float64{0.10, 0.20},
			Model:      p.Model,
			Compressed: p.Compressed,
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if h, err = res.ComputeHeadline(experiments.MechSSMDVFSComp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.VsBaselinePct, "vs_baseline_%")
	b.ReportMetric(h.VsPCSTALLPct, "vs_pcstall_%")
	b.ReportMetric(h.VsFLEMMAPct, "vs_flemma_%")
}

// BenchmarkASIC_Inference regenerates the Section V-D estimate for the
// compressed module and times the software inference path for reference.
func BenchmarkASIC_Inference(b *testing.B) {
	p := pipeline(b)
	rep, err := asic.Estimate(p.Compressed, asic.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.CyclesPerInference), "cycles/inf")
	b.ReportMetric(rep.AreaMM2*1000, "area_e-3mm2")
	b.ReportMetric(rep.PowerW*1000, "power_mW")
	b.ReportMetric(rep.EpochFraction*100, "epoch_%")

	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.2
	feats[counters.IdxPPC] = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		level := p.Compressed.DecideLevel(feats, 0.10)
		_ = p.Compressed.PredictInstructions(feats, 0.10, level)
	}
}

// --- ablations -------------------------------------------------------------

func runWithController(b *testing.B, cfg gpusim.Config, k gpusim.Kernel, ctrl gpusim.Controller) gpusim.Result {
	b.Helper()
	sim, err := gpusim.New(cfg, k)
	if err != nil {
		b.Fatal(err)
	}
	if ctrl != nil {
		sim.SetController(ctrl)
	}
	res := sim.Run(5_000_000_000_000)
	if !res.Completed {
		b.Fatalf("kernel %s did not complete", k.Name)
	}
	return res
}

// BenchmarkAblation_Calibrator measures the self-calibration gain on the
// phase-alternating kernels, where the Decision-maker is most likely to
// overshoot the preset.
func BenchmarkAblation_Calibrator(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	specs := []string{"rodinia.srad", "rodinia.kmeans", "rodinia.backprop"}
	var lossCal, lossNoCal, edpCal, edpNoCal float64
	for i := 0; i < b.N; i++ {
		lossCal, lossNoCal, edpCal, edpNoCal = 0, 0, 0, 0
		for _, name := range specs {
			spec, err := kernels.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			k := spec.Build(opts.Scale)
			base := runWithController(b, opts.Sim, k, nil)
			for _, calibrate := range []bool{true, false} {
				ctrl, err := core.NewController(p.Model, 0.10, opts.Sim.Clusters, calibrate)
				if err != nil {
					b.Fatal(err)
				}
				res := runWithController(b, opts.Sim, k, ctrl)
				loss := float64(res.ExecTimePs)/float64(base.ExecTimePs) - 1
				edp := res.EDP() / base.EDP()
				if calibrate {
					lossCal += loss
					edpCal += edp
				} else {
					lossNoCal += loss
					edpNoCal += edp
				}
			}
		}
	}
	n := float64(len(specs))
	b.ReportMetric(lossCal/n*100, "loss_cal_%")
	b.ReportMetric(lossNoCal/n*100, "loss_nocal_%")
	b.ReportMetric(edpCal/n, "edp_cal")
	b.ReportMetric(edpNoCal/n, "edp_nocal")
}

// BenchmarkAblation_EpochLength motivates microsecond-scale DVFS: the
// same analytical mechanism (PCSTALL, which is model-free and thus works
// at any epoch) at 10/50/100 µs decision periods.
func BenchmarkAblation_EpochLength(b *testing.B) {
	opts := benchOpts()
	spec, err := kernels.ByName("rodinia.srad")
	if err != nil {
		b.Fatal(err)
	}
	for _, epochUs := range []int64{10, 50, 100} {
		b.Run(fmt.Sprintf("epoch=%dus", epochUs), func(b *testing.B) {
			cfg := opts.Sim
			cfg.EpochPs = epochUs * 1_000_000
			k := spec.Build(opts.Scale)
			var edp, loss float64
			for i := 0; i < b.N; i++ {
				base := runWithController(b, cfg, k, nil)
				ctrl, err := baselines.NewPCSTALL(cfg.OPs, 0.10, cfg.Clusters)
				if err != nil {
					b.Fatal(err)
				}
				res := runWithController(b, cfg, k, ctrl)
				edp = res.EDP() / base.EDP()
				loss = float64(res.ExecTimePs)/float64(base.ExecTimePs) - 1
			}
			b.ReportMetric(edp, "norm_edp")
			b.ReportMetric(loss*100, "loss_%")
		})
	}
}

// BenchmarkAblation_Features compares the Table I five-counter feature
// set against all 47 counters and against the power-only direct set.
func BenchmarkAblation_Features(b *testing.B) {
	p := pipeline(b)
	all := make([]int, counters.Num)
	for i := range all {
		all[i] = i
	}
	sets := map[string][]int{
		"five":      counters.SelectedFive(),
		"all47":     all,
		"poweronly": counters.PowerOnly(),
	}
	for name, idx := range sets {
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts().TrainOpts
				opts.FeatureIdx = idx
				opts.Epochs = 25
				_, rep, err := core.Train(p.Dataset, opts)
				if err != nil {
					b.Fatal(err)
				}
				acc = rep.Accuracy
			}
			b.ReportMetric(acc*100, "acc_%")
		})
	}
}

// chipWide wraps a controller so cluster 0's decision is applied to every
// cluster (the paper's DVFS is per-cluster; this is the ablation arm).
type chipWide struct {
	inner gpusim.Controller
	level int
}

func (c *chipWide) Name() string { return c.inner.Name() + "-chipwide" }
func (c *chipWide) Decide(s gpusim.EpochStats) int {
	if s.Cluster == 0 {
		c.level = c.inner.Decide(s)
	}
	return c.level
}

// BenchmarkAblation_Domain compares per-cluster DVFS against chip-wide
// DVFS driven by cluster 0's counters.
func BenchmarkAblation_Domain(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	spec, err := kernels.ByName("rodinia.cfd")
	if err != nil {
		b.Fatal(err)
	}
	k := spec.Build(opts.Scale)
	for _, wide := range []bool{false, true} {
		name := "per-cluster"
		if wide {
			name = "chip-wide"
		}
		b.Run(name, func(b *testing.B) {
			var edp float64
			for i := 0; i < b.N; i++ {
				base := runWithController(b, opts.Sim, k, nil)
				inner, err := core.NewController(p.Model, 0.10, opts.Sim.Clusters, true)
				if err != nil {
					b.Fatal(err)
				}
				var ctrl gpusim.Controller = inner
				if wide {
					ctrl = &chipWide{inner: inner, level: opts.Sim.OPs.Default()}
				}
				res := runWithController(b, opts.Sim, k, ctrl)
				edp = res.EDP() / base.EDP()
			}
			b.ReportMetric(edp, "norm_edp")
		})
	}
}

// --- microbenchmarks --------------------------------------------------------

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// nanoseconds per wall second (reported as sim_ns/op for one 10 µs epoch).
func BenchmarkSimulatorThroughput(b *testing.B) {
	opts := benchOpts()
	spec := kernels.Training()[0]
	k := spec.Build(1.0)
	sim, err := gpusim.New(opts.Sim, k)
	if err != nil {
		b.Fatal(err)
	}
	target := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target += 10_000_000 // one epoch
		sim.RunUntil(target)
		if sim.Done() {
			b.StopTimer()
			sim, err = gpusim.New(opts.Sim, k)
			if err != nil {
				b.Fatal(err)
			}
			target = 0
			b.StartTimer()
		}
	}
}

// BenchmarkModelInference times one combined Decision+Calibrator software
// inference for the uncompressed and compressed models.
func BenchmarkModelInference(b *testing.B) {
	p := pipeline(b)
	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.0
	feats[counters.IdxPPC] = 5
	feats[counters.IdxMH] = 20000
	for name, m := range map[string]*core.Model{
		"initial":    p.Model,
		"compressed": p.Compressed,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				level := m.DecideLevel(feats, 0.10)
				_ = m.PredictInstructions(feats, 0.10, level)
			}
			b.ReportMetric(float64(m.EffectiveFLOPs()), "flops")
		})
	}
}

// BenchmarkSimulatorClone times the snapshot operation data generation
// leans on.
func BenchmarkSimulatorClone(b *testing.B) {
	opts := benchOpts()
	k := kernels.Training()[0].Build(0.5)
	sim, err := gpusim.New(opts.Sim, k)
	if err != nil {
		b.Fatal(err)
	}
	sim.RunUntil(20_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Clone()
	}
}

// BenchmarkExtension_PresetSweep runs the preset-sensitivity extension:
// EDP and latency as the loss budget grows from 2% to 30%.
func BenchmarkExtension_PresetSweep(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	var points []experiments.PresetSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.RunPresetSweep(experiments.PresetSweepOptions{
			Sim:     opts.Sim,
			Kernels: kernels.Evaluation()[:3],
			Scale:   opts.Scale,
			Presets: []float64{0.02, 0.10, 0.30},
			Model:   p.Compressed,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		b.ReportMetric(pt.GMeanEDP, fmt.Sprintf("edp@%.0f%%", pt.Preset*100))
	}
}

// BenchmarkExtension_OracleHeadroom compares SSMDVFS against the
// clairvoyant static-best and greedy oracle policies.
func BenchmarkExtension_OracleHeadroom(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	var rows []experiments.HeadroomRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunHeadroom(experiments.PresetSweepOptions{
			Sim:     opts.Sim,
			Kernels: kernels.Evaluation()[:2],
			Scale:   opts.Scale,
			Model:   p.Model,
		}, 0.10)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ssm, static, greedy float64
	for _, r := range rows {
		ssm += r.SSMDVFSEDP
		static += r.StaticBestEDP
		greedy += r.GreedyEDP
	}
	n := float64(len(rows))
	b.ReportMetric(ssm/n, "ssmdvfs_edp")
	b.ReportMetric(static/n, "static_best_edp")
	b.ReportMetric(greedy/n, "greedy_oracle_edp")
}

// BenchmarkExtension_Quantization sweeps post-training weight
// quantization of the compressed module and reports the accuracy curve
// plus the INT16 hardware estimate.
func BenchmarkExtension_Quantization(b *testing.B) {
	p := pipeline(b)
	var points []quant.Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = quant.Sweep(p.Compressed, p.Dataset, []int{16, 8, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		b.ReportMetric(pt.Accuracy*100, fmt.Sprintf("acc%%@%db", pt.Bits))
	}
	areaF, energyF, err := quant.HardwareScale(16)
	if err != nil {
		b.Fatal(err)
	}
	cfg := asic.DefaultConfig()
	cfg.MACAreaUm2 *= areaF
	cfg.MACEnergyPJ *= energyF
	q16, err := quant.QuantizeModel(p.Compressed, 16)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := asic.Estimate(q16, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.AreaMM2*1000, "int16_area_e-3mm2")
	b.ReportMetric(rep.PowerW*1000, "int16_power_mW")
}

// BenchmarkAblation_Scheduler checks the DVFS result is robust to the
// warp-scheduling substrate: SSMDVFS EDP under loose round-robin vs
// greedy-then-oldest scheduling.
func BenchmarkAblation_Scheduler(b *testing.B) {
	p := pipeline(b)
	opts := benchOpts()
	spec, err := kernels.ByName("rodinia.srad")
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []gpusim.SchedulerPolicy{gpusim.SchedLRR, gpusim.SchedGTO} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := opts.Sim
			cfg.Scheduler = policy
			k := spec.Build(opts.Scale)
			var edp float64
			for i := 0; i < b.N; i++ {
				base := runWithController(b, cfg, k, nil)
				ctrl, err := core.NewController(p.Model, 0.10, cfg.Clusters, true)
				if err != nil {
					b.Fatal(err)
				}
				res := runWithController(b, cfg, k, ctrl)
				edp = res.EDP() / base.EDP()
			}
			b.ReportMetric(edp, "norm_edp")
		})
	}
}

// BenchmarkServe_DecisionThroughput measures the serving subsystem on
// loopback TCP: an in-process ssmdvfsd-equivalent server answering
// batched binary-protocol requests from one connection per worker. The
// decisions/s metric is the serving-layer counterpart of the paper's
// ASIC inference rate (one decision per cluster per 10 µs epoch → 100k
// decisions/s per cluster in hardware). backend=float64/batch1 is the
// seed row-at-a-time configuration — the denominator of the int8
// coalesced-batch speedup in EXPERIMENTS.md; scripts/bench_guard.sh
// holds both backends' batched throughput against the committed
// baseline.
func BenchmarkServe_DecisionThroughput(b *testing.B) {
	p := pipeline(b)

	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.0
	feats[counters.IdxPPC] = 5
	feats[counters.IdxMH] = 20000

	for _, backend := range []string{"float64", "int8"} {
		srv, err := serve.NewServer(p.Compressed.Clone(), serve.Options{Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.ServeTCP(l)
		defer srv.Close()

		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("backend=%s/batch%d", backend, batch), func(b *testing.B) {
				cl, err := serve.Dial(l.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				rows := make([]serve.Request, batch)
				for i := range rows {
					rows[i] = serve.Request{Preset: 0.10, Features: feats}
				}
				b.ResetTimer()
				start := time.Now()
				var decisions int64
				for i := 0; i < b.N; i++ {
					decs, err := cl.Decide(rows)
					if err != nil {
						b.Fatal(err)
					}
					decisions += int64(len(decs))
				}
				b.ReportMetric(float64(decisions)/time.Since(start).Seconds(), "decisions/s")
			})
		}
	}
}
