package ssmdvfs_bench

import (
	"path/filepath"
	"testing"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/infer"
)

// The int8 parity bounds over the committed oracle dataset. The serving
// artifact (the compressed model every daemon loads) must agree with the
// float64 reference on at least 99.5% of decisions; the uncompressed
// model is a training intermediate that is never served, so it is held
// to the same 2% gate EnsureBackends enforces at load time — its larger
// layers carry more per-row activation-quantization noise.
const (
	maxServingFlipRate      = 0.005
	maxIntermediateFlipRate = 0.02
)

// TestInt8ParityOnOracleDataset checks the int8 backend against float64
// on the real trained models over the committed oracle dataset — not
// synthetic rows — at several loss presets. Level decisions must agree
// within the per-artifact flip bound, and the serving model's calibrator
// predictions must track within a loose relative band (quantization
// noise, not systematic bias).
func TestInt8ParityOnOracleDataset(t *testing.T) {
	ds, err := datagen.LoadFile(filepath.Join("testdata", "bench-cache", "dataset.json"))
	if err != nil {
		t.Fatalf("committed oracle dataset missing (run the benches once to regenerate): %v", err)
	}
	if len(ds.Samples) == 0 {
		t.Fatal("oracle dataset is empty")
	}
	presets := []float64{0.05, 0.10, 0.20}

	for _, tc := range []struct {
		name     string
		maxFlips float64
		serving  bool
	}{
		{"compressed.json", maxServingFlipRate, true},
		{"model.json", maxIntermediateFlipRate, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "bench-cache", tc.name)
			f64, err := core.LoadFile(path)
			if err != nil {
				t.Fatalf("committed model missing (run the benches once to regenerate): %v", err)
			}
			i8, err := core.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f64.Backend = infer.KindFloat64
			i8.Backend = infer.KindInt8
			if err := i8.EnsureBackends(); err != nil {
				t.Fatalf("int8 backend rejected the trained model: %v", err)
			}

			rows, flips := 0, 0
			var maxRelErr float64
			for _, s := range ds.Samples {
				for _, preset := range presets {
					lf := f64.DecideLevel(s.Features, preset)
					li := i8.DecideLevel(s.Features, preset)
					rows++
					if lf != li {
						flips++
					}
					// Compare calibrator outputs at the same level so the
					// prediction delta isolates quantization error.
					pf := f64.PredictInstructions(s.Features, preset, lf)
					pi := i8.PredictInstructions(s.Features, preset, lf)
					if denom := pf; denom > 1 {
						if rel := abs(pi-pf) / denom; rel > maxRelErr {
							maxRelErr = rel
						}
					}
				}
			}
			rate := float64(flips) / float64(rows)
			t.Logf("%s: %d oracle rows × %d presets, %d flips (%.3f%%), max calibrator rel err %.3f",
				tc.name, len(ds.Samples), len(presets), flips, rate*100, maxRelErr)
			if rate > tc.maxFlips {
				t.Fatalf("int8 flip rate %.3f%% exceeds the %.1f%% bound (%d/%d rows)",
					rate*100, tc.maxFlips*100, flips, rows)
			}
			if tc.serving && maxRelErr > 0.25 {
				t.Fatalf("calibrator quantization error %.3f exceeds 0.25 relative", maxRelErr)
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
