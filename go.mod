module ssmdvfs

go 1.22
