package ssmdvfs_bench

import (
	"fmt"
	"testing"
	"time"

	"ssmdvfs/internal/asic"
	"ssmdvfs/internal/serve"
)

// BenchmarkBackendThroughput measures the in-process decision hot path —
// serve.Engine.DecideBatch straight into the inference backend, no
// transport — across backend × batch-size, on the compressed serving
// model with real oracle feature rows. The decisions/s metric is per
// core (one goroutine drives the engine), so it composes with worker
// counts; scripts/bench_guard.sh guards the serving-layer counterpart
// (BenchmarkServe_DecisionThroughput). For scale, the asic_cycles
// metric is the Section V-D hardware estimate for the same model: the
// software path serves fleets, the ASIC serves one cluster at 10 µs.
func BenchmarkBackendThroughput(b *testing.B) {
	p := pipeline(b)
	if len(p.Dataset.Samples) == 0 {
		b.Fatal("empty oracle dataset")
	}
	est, err := asic.Estimate(p.Compressed, asic.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}

	for _, backend := range []string{"float64", "int8"} {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("backend=%s/rows=%d", backend, batch), func(b *testing.B) {
				srv, err := serve.NewServer(p.Compressed.Clone(), serve.Options{Backend: backend, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				rows := make([]serve.Request, batch)
				for i := range rows {
					rows[i] = serve.Request{Preset: 0.10, Features: p.Dataset.Samples[i%len(p.Dataset.Samples)].Features}
				}
				var decs []serve.Decision
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					decs = srv.DecideBatch(rows, decs[:0])
				}
				elapsed := time.Since(start)
				if len(decs) != batch {
					b.Fatalf("%d decisions for %d rows", len(decs), batch)
				}
				b.ReportMetric(float64(b.N*batch)/elapsed.Seconds(), "decisions/s")
				b.ReportMetric(float64(est.CyclesPerInference), "asic_cycles")
			})
		}
	}
}
