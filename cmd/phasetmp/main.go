package main

import (
	"flag"
	"fmt"
	"log"

	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
)

func main() {
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println("phasetmp", buildinfo.String())
		return
	}
	cfg := gpusim.SmallConfig()
	cfg.Clusters = 1
	spec, _ := kernels.ByName("rodinia.backprop")
	sim, err := gpusim.New(cfg, spec.Build(0.4))
	if err != nil {
		log.Fatal(err)
	}
	sim.SetObserver(func(s gpusim.EpochStats) {
		fmt.Printf("ep%d instr=%6d MH=%7d MHL=%6d CH=%7d CTL=%5d ipc=%.2f falu=%d ldg=%d\n",
			s.Epoch, s.Instructions, s.StallMemLoad, s.StallMemOther, s.StallCompute, s.StallControl, s.IPC(),
			s.OpCounts[2-1], s.OpCounts[3])
	})
	sim.Run(5_000_000_000_000)
}
