// Command dvfsfleet is the fleet router in front of a set of ssmdvfsd
// replicas: it shards (gpu, cluster) decision keys across the replicas
// on a deterministic consistent-hash ring, coalesces concurrent rows
// bound for the same replica into multi-row v3 frames, sheds overload
// into the analytical PCSTALL fallback under admission control, and
// reroutes around replicas that die (re-admitting them when a health
// probe succeeds).
//
// Usage:
//
//	dvfsfleet -replicas host1:8091,host2:8091,host3:8091
//	          [-tcp :8092] [-http :8093] [-vnodes 128] [-seed 1]
//	          [-backend int8] [-coalesce-wait 200us] [-coalesce-rows 64]
//	          [-inflight 2] [-queue 1024] [-queue-deadline 2ms]
//	          [-max-hops 1] [-probe 250ms] [-spans fleet-spans.jsonl]
//	          [-replica-http http://host1:8090,http://host2:8090,...]
//	          [-scrape 1s] [-alerts 'burn>1.5;regress>0.5;stale>15']
//
// -replica-http arms the fleet efficiency-ledger plane: the router
// scrapes every replica's /debug/ledger snapshot, merges them
// deterministically, evaluates the -alerts rules (perf-loss budget
// burn-rate, energy-savings regression vs the rolling baseline, stale
// replica ledgers), and serves the fleet view at /debug/ledger plus
// ledger_fleet_*/alert_* series on /metrics.prom — what cmd/dvfstop
// renders live.
//
// -backend pins the inference backend every replica must advertise in
// hello negotiation (match the replicas' ssmdvfsd -backend flag); a
// replica answering with different numerics is taken out of the ring
// rather than mixed into the fleet. Empty accepts any replica.
//
// Clients speak the same binary protocol as to a single daemon — v2
// clients work unchanged (the router synthesizes a per-connection
// identity), v3 clients shard per row and learn which shard answered.
//
// Endpoints:
//
//	GET /metrics       fleet counters (JSON telemetry snapshot)
//	GET /metrics.prom  the same in Prometheus text exposition 0.0.4
//	GET /healthz       per-replica health; 503 when no replica is healthy
//	GET /debug/ledger  merged fleet efficiency ledger + alert states (with
//	                   -replica-http; 404 when disabled)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func main() {
	var (
		replicas     = flag.String("replicas", "", "comma-separated replica binary-protocol addresses (required)")
		tcpAddr      = flag.String("tcp", ":8092", "front-end binary-protocol listen address")
		httpAddr     = flag.String("http", ":8093", "metrics/health HTTP listen address (empty disables)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the ring (0 = default)")
		seed         = flag.Uint64("seed", 1, "ring hash seed (same seed + replica set = same sharding)")
		backend      = flag.String("backend", "", "inference backend replicas must advertise: float64 or int8 (empty = any)")
		wait         = flag.Duration("coalesce-wait", 0, "max linger before a non-full batch ships (0 = default 200us)")
		rows         = flag.Int("coalesce-rows", 0, "max rows per coalesced frame (0 = default 64)")
		inflight     = flag.Int("inflight", 0, "coalesced batches in flight per replica (0 = default 2)")
		queueLen     = flag.Int("queue", 0, "per-replica admission queue length (0 = default 1024)")
		deadline     = flag.Duration("queue-deadline", 2*time.Millisecond, "shed rows queued longer than this (0 = off)")
		maxHops      = flag.Int("max-hops", 0, "reroute attempts per row after replica failure (0 = default 1)")
		probe        = flag.Duration("probe", 0, "unhealthy replica re-dial interval (0 = default 250ms)")
		dialTimeout  = flag.Duration("dial-timeout", time.Second, "router→replica connect timeout")
		replicaHTTP  = flag.String("replica-http", "", "comma-separated replica HTTP base URLs (e.g. http://host1:8090,...); arms the ledger scrape loop merging every replica's /debug/ledger into a fleet view (empty = off)")
		scrape       = flag.Duration("scrape", 0, "ledger scrape interval (0 = default 1s)")
		alertSpec    = flag.String("alerts", "", "alert rules over the merged ledger, e.g. 'burn>1.5;regress>0.5;stale>15' (empty = defaults, 'none' = off)")
		spansPath    = flag.String("spans", "", "write router-hop spans for sampled traced requests to this JSONL file (dvfsstat -chrome input; empty = off)")
		verbose      = flag.Bool("v", true, "log progress")
		printVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *printVersion {
		fmt.Println("dvfsfleet", buildinfo.String())
		return
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	var tracer *telemetry.Tracer
	if *spansPath != "" {
		sf, err := os.Create(*spansPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvfsfleet:", err)
			os.Exit(1)
		}
		defer sf.Close()
		tracer = telemetry.NewTracer(sf)
		logf("dvfsfleet: tracing armed: router-hop spans to %s", *spansPath)
	}
	rules, err := ledger.ParseRules(*alertSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsfleet:", err)
		os.Exit(1)
	}
	if rules == nil {
		// "none": keep the scrape plane but evaluate no rules (a nil slice
		// would mean "use defaults" to the router).
		rules = []ledger.Rule{}
	}
	opts := fleet.Options{
		Replicas:      splitAddrs(*replicas),
		VNodes:        *vnodes,
		Seed:          *seed,
		ExpectBackend: *backend,
		CoalesceWait:  *wait,
		CoalesceRows:  *rows,
		MaxInFlight:   *inflight,
		QueueLen:      *queueLen,
		QueueDeadline: *deadline,
		MaxHops:       *maxHops,
		ProbeInterval: *probe,
		Dial:          serve.DialOptions{Timeout: *dialTimeout},
		Tracer:        tracer,
		Logf:          logf,

		ReplicaHTTP:    splitAddrs(*replicaHTTP),
		ScrapeInterval: *scrape,
		AlertRules:     rules,
	}
	if err := run(opts, *tcpAddr, *httpAddr, logf); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsfleet:", err)
		os.Exit(1)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run(opts fleet.Options, tcpAddr, httpAddr string, logf func(string, ...any)) error {
	if len(opts.Replicas) == 0 {
		return fmt.Errorf("-replicas is required")
	}
	if tcpAddr == "" {
		return fmt.Errorf("-tcp is required")
	}
	rt, err := fleet.NewRouter(opts)
	if err != nil {
		return err
	}
	rt.Telemetry().SetBuild(buildinfo.Info())
	logf("dvfsfleet: %d replicas on the ring (seed %d): %s",
		rt.NumShards(), opts.Seed, strings.Join(rt.Ring().Replicas(), ", "))

	errc := make(chan error, 2)
	l, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		return err
	}
	logf("dvfsfleet: binary protocol on %s", l.Addr())
	go func() { errc <- rt.ServeTCP(l) }()

	var hs *http.Server
	if httpAddr != "" {
		hl, err := net.Listen("tcp", httpAddr)
		if err != nil {
			rt.Close()
			return err
		}
		hs = &http.Server{Addr: httpAddr, Handler: rt.Handler()}
		logf("dvfsfleet: HTTP on %s", hl.Addr())
		go func() { errc <- hs.Serve(hl) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case err := <-errc:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
		case sig := <-sigc:
			logf("dvfsfleet: %s, shutting down", sig)
			if hs != nil {
				hs.Close()
			}
			rt.Close()
			if opts.Tracer != nil {
				if err := opts.Tracer.Flush(); err != nil {
					logf("dvfsfleet: span flush: %v", err)
				}
			}
			m := rt.Metrics()
			logf("dvfsfleet: routed %d rows in %d requests (%d shed, %d rerouted, %d replica failures)",
				m.Rows.Load(), m.Requests.Load(), m.ShedTotal(), m.Rerouted.Load(), m.Down.Load())
			if agg := rt.LedgerAggregate(); agg != nil {
				s := agg.Merged
				logf("dvfsfleet: fleet ledger: %s saved vs MaxFreq (%.1f%% of bill) at %.3f%% mean perf loss over %d decisions",
					ledger.FormatEnergyPJ(float64(s.SavedPJ())), s.SavedRatio()*100, s.MeanPerfLoss()*100, s.Decisions)
			}
			return nil
		}
	}
}
