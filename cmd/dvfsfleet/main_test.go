package main

import (
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/nn"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	identity := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: identity(6),
		CalibScaler:    identity(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	if want := []string{"a:1", "b:2", "c:3"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("splitAddrs = %v, want %v", got, want)
	}
	if got := splitAddrs(""); got != nil {
		t.Fatalf("splitAddrs(\"\") = %v", got)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	logf := func(string, ...any) {}
	if err := run(fleet.Options{}, ":0", "", logf); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if err := run(fleet.Options{Replicas: []string{"x:1"}}, "", "", logf); err == nil {
		t.Fatal("missing -tcp accepted")
	}
}

// TestFleetMetricsExposition pins the acceptance contract: after routed
// traffic, the fleet_* series are visible on the router's /metrics.prom.
func TestFleetMetricsExposition(t *testing.T) {
	srv, err := serve.NewServer(testModel(t), serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	rt, err := fleet.NewRouter(fleet.Options{Replicas: []string{l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(2))
	feats := make([]float64, counters.Num)
	for i := range feats {
		feats[i] = rng.Float64() * 2
	}
	decs := rt.Decide([]serve.Request{{Preset: 0.1, Features: feats, GPU: 1, Cluster: 2}}, nil)
	if len(decs) != 1 {
		t.Fatalf("%d decisions", len(decs))
	}

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE fleet_rows_total counter",
		"# TYPE fleet_shed_rows_total counter",
		"# TYPE fleet_rerouted_rows_total counter",
		"# TYPE fleet_batch_rows histogram",
		`fleet_shard_rows_total{shard="0"} 1`,
		"fleet_healthy_replicas 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics.prom missing %q:\n%s", want, body)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d with a healthy replica", hz.StatusCode)
	}
}

// TestFleetLedgerExposition drives the -replica-http plane at the
// binary's config level: replica ledgers merge into ledger_fleet_* and
// alert_* series on /metrics.prom, /debug/ledger serves the aggregate
// with the right Content-Type, and the exposition is promlint-clean.
func TestFleetLedgerExposition(t *testing.T) {
	srv, err := serve.NewServer(testModel(t), serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLedger(ledger.New(ledger.Options{}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()
	replicaHTTP := httptest.NewServer(srv.Handler())
	defer replicaHTTP.Close()

	rules, err := ledger.ParseRules("burn>1.5;stale>10")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := fleet.NewRouter(fleet.Options{
		Replicas:       []string{l.Addr().String()},
		ReplicaHTTP:    []string{replicaHTTP.URL},
		ScrapeInterval: time.Hour, // stepped explicitly below
		AlertRules:     rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(3))
	rows := make([]serve.Request, 16)
	for i := range rows {
		feats := make([]float64, counters.Num)
		for j := range feats {
			feats[j] = rng.Float64() * 2
		}
		rows[i] = serve.Request{Preset: 0.1, Features: feats, GPU: int32(i), Cluster: 1}
	}
	if decs := rt.Decide(rows, nil); len(decs) != len(rows) {
		t.Fatalf("%d decisions for %d rows", len(decs), len(rows))
	}
	if !rt.ScrapeLedgers(time.Now()) {
		t.Fatal("ledger plane not armed")
	}

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentTypeProm {
		t.Fatalf("/metrics.prom Content-Type = %q, want %q", got, telemetry.ContentTypeProm)
	}
	for _, want := range []string{
		"ledger_fleet_decisions", "ledger_fleet_energy_saved_pj",
		`alert_firing{rule="burn"}`, `alert_firing{rule="stale"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics.prom missing %q:\n%s", want, body)
		}
	}
	if errs := telemetry.LintProm(strings.NewReader(string(body))); len(errs) != 0 {
		t.Fatalf("/metrics.prom fails promlint: %v", errs)
	}

	lresp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if got := lresp.Header.Get("Content-Type"); got != telemetry.ContentTypeJSON {
		t.Fatalf("/debug/ledger Content-Type = %q, want %q", got, telemetry.ContentTypeJSON)
	}
	agg, err := fleet.ReadLedgerAggregate(lresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Shed rows are answered by the router's fallback without reaching a
	// replica, so the replica-side ledger may hold fewer decisions than
	// the batch — but some model-path traffic must have been accounted.
	if agg.Merged.Decisions <= 0 {
		t.Fatalf("merged ledger empty: %+v", agg.Merged)
	}
}
