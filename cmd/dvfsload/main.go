// Command dvfsload is the load generator for ssmdvfsd: it replays
// per-epoch feature vectors — from a dvfstrace capture or a synthetic
// counter distribution — against a daemon's binary protocol at
// configurable concurrency and rate, then reports throughput, latency
// percentiles, and the distribution of operating-level decisions.
//
// Usage:
//
//	dvfsload -addr localhost:8091 [-conns 8] [-batch 24] [-duration 10s]
//	         [-qps 0] [-preset 0.10] [-trace trace.csv] [-seed 1] [-fleet]
//	         [-spans load-spans.jsonl] [-trace-sample 64]
//	         [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	         [-ledger http://router:8093]
//
// With -ledger the exit report ends with the efficiency-ledger summary
// scraped from the target's /debug/ledger — fleet-wide energy saved
// versus MaxFreq, mean perf loss against the budget, and any firing
// alert rules (works against a dvfsfleet router or a single replica).
//
// With -trace-sample (or -spans, which implies it) 1 in N batches is
// traced end to end: the frame carries a trace context, every hop emits
// spans, and the exit report adds a per-hop latency table
// (queue/coalesce/network/inference) plus an example trace ID to chase
// through the merged Chrome trace or /debug/decisions?trace=.
//
// With -trace the feature stream is a cycled replay of the trace file
// (CSV or JSON from cmd/dvfstrace); without it, synthetic epochs are
// drawn from the memory-boundedness family used across the project's
// tests. -qps caps total decisions/second (0 = unlimited: measure peak
// throughput).
//
// With -fleet the target is a dvfsfleet router (or any v3 server): every
// frame carries a (gpu, cluster) identity so the router shards it, and
// the exit summary adds a per-shard latency table (p50/p99/p999) plus
// shed and reroute counts from the keyed responses.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8091", "daemon binary-protocol address")
		conns     = flag.Int("conns", 8, "concurrent connections")
		batch     = flag.Int("batch", 24, "decisions per request frame (1 = per-epoch latency mode)")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		qps       = flag.Float64("qps", 0, "target total decisions/second (0 = unlimited)")
		preset    = flag.Float64("preset", 0.10, "performance-loss preset sent with every row")
		trace     = flag.String("trace", "", "replay this dvfstrace file (CSV or JSON) instead of synthetic epochs")
		fleetMode = flag.Bool("fleet", false, "drive a dvfsfleet router with keyed v3 frames and report per-shard latency")
		rows      = flag.Int("rows", 4096, "synthetic feature rows to generate (without -trace)")
		seed      = flag.Int64("seed", 1, "synthetic feature seed")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-attempt connection timeout")
		retries   = flag.Int("retries", 0, "reconnect/retry attempts per failed connect or request")
		backoff   = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		faultSpec = flag.String("faults", "", "arm client-side fault injection, e.g. 'client.io:error:every=50'")
		faultSeed = flag.Int64("faults-seed", 1, "seed for rate-based fault injection")
		spansPath = flag.String("spans", "", "write client-side spans for sampled requests to this JSONL file (dvfsstat -chrome input)")
		sampleN   = flag.Int("trace-sample", 0, "trace 1 in N batches end to end (0 = off, or 64 when -spans is set)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the load run here")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit here")
		ledgerURL = flag.String("ledger", "", "after the run, fetch this router/replica base URL's /debug/ledger and append the efficiency summary to the exit report (empty = off)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dvfsload", buildinfo.String())
		return
	}

	inj, err := faults.Parse(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		os.Exit(1)
	}
	dialOpts := serve.DialOptions{
		Timeout: *timeout,
		Retries: *retries,
		Backoff: *backoff,
		Faults:  inj,
	}

	// Tracing: a shared head-based sampler picks 1-in-N batches; sampled
	// ones go out as traced v3 frames with client.send/recv spans under a
	// load.decide root, and their per-hop attribution feeds the exit
	// report's hop table.
	var tracer *telemetry.Tracer
	var sampler *telemetry.Sampler
	if *spansPath != "" && *sampleN == 0 {
		*sampleN = 64
	}
	if *sampleN > 0 {
		if *spansPath != "" {
			sf, err := os.Create(*spansPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvfsload:", err)
				os.Exit(1)
			}
			defer sf.Close()
			tracer = telemetry.NewTracer(sf)
		}
		sampler = telemetry.NewSampler(*sampleN, uint64(*seed))
	}

	stopCPU, err := telemetry.StartCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		os.Exit(1)
	}
	runErr := run(*addr, *conns, *batch, *duration, *qps, *preset, *trace, *rows, *seed, *fleetMode, dialOpts, tracer, sampler)
	stopCPU()
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "dvfsload:", err)
		}
	}
	if err := telemetry.WriteHeapProfile(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dvfsload:", runErr)
		os.Exit(1)
	}
	if *ledgerURL != "" {
		if err := ledgerSummary(os.Stdout, *ledgerURL); err != nil {
			fmt.Fprintln(os.Stderr, "dvfsload:", err)
			os.Exit(1)
		}
	}
}

// ledgerSummary closes the loop on what the load actually bought: it
// fetches /debug/ledger from the target (a dvfsfleet router's merged
// aggregate or a single ssmdvfsd replica's snapshot) and appends the
// fleet-wide energy-saved and perf-loss lines to the exit report.
func ledgerSummary(w io.Writer, url string) error {
	url = strings.TrimRight(url, "/")
	resp, err := http.Get(url + "/debug/ledger")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/debug/ledger: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var probe struct {
		Merged *json.RawMessage `json:"merged"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return fmt.Errorf("parse %s/debug/ledger: %w", url, err)
	}
	scope := "replica"
	var snap ledger.Snapshot
	var firing []string
	if probe.Merged != nil {
		agg, err := fleet.ReadLedgerAggregate(bytes.NewReader(body))
		if err != nil {
			return err
		}
		scope = "fleet"
		snap = agg.Merged
		for _, a := range agg.Alerts {
			if a.Firing {
				firing = append(firing, a.Rule.Name)
			}
		}
	} else {
		s, err := ledger.ReadSnapshot(bytes.NewReader(body))
		if err != nil {
			return err
		}
		snap = s
	}
	fmt.Fprintf(w, "\n%s efficiency ledger (%s):\n", scope, url)
	fmt.Fprintf(w, "  energy saved  %12s  (%.1f%% of the MaxFreq bill over %d decisions)\n",
		ledger.FormatEnergyPJ(float64(snap.SavedPJ())), snap.SavedRatio()*100, snap.Decisions)
	fmt.Fprintf(w, "  perf loss     %11.3f%%  mean (budget %.3f%%, burn %.2fx)\n",
		snap.MeanPerfLoss()*100, snap.MeanPreset()*100, snap.BudgetBurn())
	if len(firing) > 0 {
		fmt.Fprintf(w, "  alerts firing %s\n", strings.Join(firing, ", "))
	}
	return nil
}

// syntheticRows draws feature vectors from the memory-boundedness family:
// a single parameter m ∈ [0,1] moves an epoch from compute-bound (high
// IPC and power, no stalls) to memory-bound (stalls and cache misses),
// covering the decision space end to end.
func syntheticRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		m := rng.Float64()
		feats := make([]float64, counters.Num)
		feats[counters.IdxIPC] = 2.0*(1-m) + rng.NormFloat64()*0.02
		feats[counters.IdxPPC] = 3 + 4*(1-m) + rng.NormFloat64()*0.05
		feats[counters.IdxMH] = 60000*m + rng.NormFloat64()*500
		feats[counters.IdxMHNL] = 5000*m + rng.NormFloat64()*100
		feats[counters.IdxL1CRM] = 2000*m + rng.NormFloat64()*50
		out[i] = feats
	}
	return out
}

type workerStats struct {
	latencies  []time.Duration // one per batch
	decisions  int64
	reconnects int64
	rerouted   int64
	traced     int64  // batches sent as traced frames
	exemplar   uint64 // first sampled trace ID, for the exit report
	levels     [64]int64
	reasons    [provenance.NumReasons]int64
	err        error
}

// shardLabel renders a shard index for metric labels; -1 (no shard:
// local shed, or a plain daemon answering keyed frames) becomes "none".
func shardLabel(shard int) string {
	if shard < 0 {
		return "none"
	}
	return fmt.Sprintf("%d", shard)
}

func run(addr string, conns, batch int, duration time.Duration, qps, preset float64, tracePath string, rows int, seed int64, fleetMode bool, dialOpts serve.DialOptions, tracer *telemetry.Tracer, sampler *telemetry.Sampler) error {
	if conns <= 0 || batch <= 0 || batch > serve.MaxBatch {
		return fmt.Errorf("need conns > 0 and batch in [1,%d]", serve.MaxBatch)
	}

	var feed func(i int) []float64
	var source string
	if tracePath != "" {
		stream, err := epochtrace.OpenFeatureStream(tracePath)
		if err != nil {
			return err
		}
		feed = stream.Row
		source = fmt.Sprintf("trace %s (%d epochs)", tracePath, stream.Len())
	} else {
		synth := syntheticRows(rows, seed)
		feed = func(i int) []float64 { return synth[i%len(synth)] }
		source = fmt.Sprintf("synthetic (%d rows, seed %d)", rows, seed)
	}

	// Pace per connection so the target total decision rate is honoured.
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(batch*conns) / qps * float64(time.Second))
	}

	fmt.Printf("dvfsload: %s → %s\n", source, addr)
	fmt.Printf("dvfsload: %d conns × batch %d for %s (preset %.0f%%, qps %s)\n",
		conns, batch, duration, preset*100,
		map[bool]string{true: fmt.Sprintf("%.0f", qps), false: "unlimited"}[qps > 0])

	// reg hosts the fleet-mode per-shard latency histograms; batch
	// latency attributes to the shard that answered the frame's key.
	reg := telemetry.NewRegistry()
	if fleetMode {
		probe, err := serve.DialContext(context.Background(), addr, dialOpts)
		if err != nil {
			return err
		}
		hello, err := probe.Negotiate()
		probe.Close()
		if err != nil {
			return fmt.Errorf("fleet negotiation: %w", err)
		}
		role := "daemon"
		if hello.Router {
			role = fmt.Sprintf("router, %d shards", hello.Shards)
		}
		fmt.Printf("dvfsload: fleet mode: negotiated v%d (%s)\n", hello.Version, role)
	}

	stats := make([]workerStats, conns)
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			cl, err := serve.DialContext(context.Background(), addr, dialOpts)
			if err != nil {
				st.err = err
				return
			}
			defer cl.Close()
			defer func() { st.reconnects = cl.Reconnects() }()
			cl.SetTracer(tracer)
			reqs := make([]serve.Request, batch)
			next := c // offset workers into the feed so replays interleave
			var tick *time.Ticker
			if interval > 0 {
				tick = time.NewTicker(interval)
				defer tick.Stop()
			}
			for iter := 0; time.Now().Before(deadline); iter++ {
				for i := range reqs {
					reqs[i] = serve.Request{Preset: preset, Features: feed(next), GPU: -1, Cluster: -1}
					if fleetMode {
						// One (gpu, cluster) key per frame: the whole batch
						// routes to one shard, so the frame's latency cleanly
						// attributes to the shard that answered it.
						reqs[i].GPU = int32(c)
						reqs[i].Cluster = int32(iter % 24)
					}
					next += conns
				}
				// 1-in-N batches go out as traced frames under a
				// load.decide root span; the rest take the plain path.
				var tc telemetry.TraceContext
				var rootSp *telemetry.Span
				if sampler != nil {
					if rtc := sampler.Next(); rtc.Sampled() {
						tc = rtc
						if rootSp = tracer.StartSpan(rtc, "load.decide"); rootSp != nil {
							tc = rootSp.Context()
						}
					}
				}
				t0 := time.Now()
				var decs []serve.Decision
				var hops serve.HopTimings
				var err error
				switch {
				case tc.Sampled():
					decs, hops, err = cl.DecideKeyedTraced(reqs, tc)
				case fleetMode:
					decs, err = cl.DecideKeyed(reqs)
				default:
					decs, err = cl.Decide(reqs)
				}
				lat := time.Since(t0)
				rootSp.End()
				if err != nil {
					st.err = err
					return
				}
				st.latencies = append(st.latencies, lat)
				st.decisions += int64(len(decs))
				if fleetMode && len(decs) > 0 {
					reg.Histogram("load_shard_latency_us", "shard", shardLabel(decs[0].Shard)).
						Observe(lat.Microseconds())
				}
				if tc.Sampled() {
					st.traced++
					if st.exemplar == 0 {
						st.exemplar = tc.TraceID
					}
					observeHops(reg, lat, hops)
				}
				for _, d := range decs {
					if d.Level >= 0 && d.Level < len(st.levels) {
						st.levels[d.Level]++
					}
					if int(d.Reason) < len(st.reasons) {
						st.reasons[d.Reason]++
					}
					if d.Rerouted {
						st.rerouted++
					}
				}
				if tick != nil {
					<-tick.C
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge.
	var all []time.Duration
	var decisions, batches, reconnects, rerouted, traced int64
	var exemplar uint64
	var levels [64]int64
	var reasons [provenance.NumReasons]int64
	for c := range stats {
		if stats[c].err != nil {
			return fmt.Errorf("conn %d: %w", c, stats[c].err)
		}
		all = append(all, stats[c].latencies...)
		decisions += stats[c].decisions
		batches += int64(len(stats[c].latencies))
		reconnects += stats[c].reconnects
		rerouted += stats[c].rerouted
		traced += stats[c].traced
		if exemplar == 0 {
			exemplar = stats[c].exemplar
		}
		for l, n := range stats[c].levels {
			levels[l] += n
		}
		for r, n := range stats[c].reasons {
			reasons[r] += n
		}
	}
	if decisions == 0 {
		return fmt.Errorf("no decisions completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration { return all[int(q*float64(len(all)-1))] }

	fmt.Printf("\ndecisions     %12d  (%d batches)\n", decisions, batches)
	if reconnects > 0 {
		fmt.Printf("reconnects    %12d\n", reconnects)
	}
	fmt.Printf("elapsed       %12s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput    %12.0f  decisions/s\n", float64(decisions)/elapsed.Seconds())
	fmt.Printf("batch latency %12s  p50\n", pct(0.50).Round(time.Microsecond))
	fmt.Printf("              %12s  p95\n", pct(0.95).Round(time.Microsecond))
	fmt.Printf("              %12s  p99\n", pct(0.99).Round(time.Microsecond))
	fmt.Printf("              %12s  max\n", all[len(all)-1].Round(time.Microsecond))

	fmt.Printf("\ndecision distribution:\n")
	maxLevel := 0
	for l, n := range levels {
		if n > 0 {
			maxLevel = l
		}
	}
	for l := 0; l <= maxLevel; l++ {
		frac := float64(levels[l]) / float64(decisions)
		bar := strings.Repeat("#", int(frac*40+0.5))
		fmt.Printf("  level %d %8.1f%%  %s\n", l, frac*100, bar)
	}

	// Per-reason response counts (the wire protocol labels every
	// decision): anything beyond "model" means the daemon degraded.
	fmt.Printf("\nresponse reasons:\n")
	for r, n := range reasons {
		if n == 0 {
			continue
		}
		fmt.Printf("  %-13s %12d  (%.1f%%)\n", provenance.Reason(r).String(), n,
			100*float64(n)/float64(decisions))
	}

	if fleetMode {
		printFleetSummary(reg, reasons[provenance.ReasonShed], rerouted)
	}
	if traced > 0 {
		printHopSummary(reg, traced, exemplar)
	}
	return nil
}

// hopNames orders the per-hop latency table: where a traced decision's
// time went, from the router's admission queue to the replica's model.
// "network" is the remainder the attributed hops don't explain — client
// serialization plus both wire legs.
var hopNames = []string{"queue", "coalesce", "network", "inference"}

// observeHops files one traced batch's per-hop attribution into the
// report histograms.
func observeHops(reg *telemetry.Registry, total time.Duration, hops serve.HopTimings) {
	q, co, di := int64(hops.QueueUs), int64(hops.CoalesceUs), int64(hops.DispatchUs)
	network := total.Microseconds() - q - co - di
	if network < 0 {
		network = 0
	}
	reg.Histogram("load_hop_us", "hop", "queue").Observe(q)
	reg.Histogram("load_hop_us", "hop", "coalesce").Observe(co)
	reg.Histogram("load_hop_us", "hop", "network").Observe(network)
	reg.Histogram("load_hop_us", "hop", "inference").Observe(int64(hops.InferUs))
}

// printHopSummary renders where traced decisions spent their time, one
// row per hop, plus an example trace ID to chase through span files and
// /debug/decisions?trace=.
func printHopSummary(reg *telemetry.Registry, traced int64, exemplar uint64) {
	snap := reg.Snapshot()
	fmt.Printf("\nper-hop latency (%d traced batches):\n", traced)
	fmt.Printf("  %-10s %12s %12s %12s\n", "hop", "p50 µs", "p99 µs", "p999 µs")
	for _, hop := range hopNames {
		h, ok := snap.Histograms[telemetry.MetricID("load_hop_us", "hop", hop)]
		if !ok {
			continue
		}
		fmt.Printf("  %-10s %12.0f %12.0f %12.0f\n", hop,
			telemetry.Quantile(h.Buckets, 0.50),
			telemetry.Quantile(h.Buckets, 0.99),
			telemetry.Quantile(h.Buckets, 0.999))
	}
	if exemplar != 0 {
		fmt.Printf("example trace %s  (grep span files, or /debug/decisions?trace=%[1]s)\n",
			telemetry.FormatTraceID(exemplar))
	}
}

// printFleetSummary renders the fleet-mode tail of the report: one
// latency row per shard (quantiles estimated from the telemetry log-2
// histograms) plus the degradation counts the router reported on the
// wire.
func printFleetSummary(reg *telemetry.Registry, shed, rerouted int64) {
	snap := reg.Snapshot()
	ids := make([]string, 0, len(snap.Histograms))
	for id := range snap.Histograms {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	fmt.Printf("\nper-shard batch latency:\n")
	fmt.Printf("  %-8s %10s %12s %12s %12s\n", "shard", "batches", "p50 µs", "p99 µs", "p999 µs")
	for _, id := range ids {
		name, labels := telemetry.ParseID(id)
		if name != "load_shard_latency_us" {
			continue
		}
		h := snap.Histograms[id]
		fmt.Printf("  %-8s %10d %12.0f %12.0f %12.0f\n",
			labels["shard"], h.Count,
			telemetry.Quantile(h.Buckets, 0.50),
			telemetry.Quantile(h.Buckets, 0.99),
			telemetry.Quantile(h.Buckets, 0.999))
	}
	fmt.Printf("\nshed rows     %12d\n", shed)
	fmt.Printf("rerouted rows %12d\n", rerouted)
}
