package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
)

func TestSyntheticRowsCoverDecisionSpace(t *testing.T) {
	rows := syntheticRows(256, 1)
	if len(rows) != 256 {
		t.Fatalf("%d rows", len(rows))
	}
	var lowIPC, highIPC bool
	for _, r := range rows {
		if len(r) != counters.Num {
			t.Fatalf("row width %d, want %d", len(r), counters.Num)
		}
		if r[counters.IdxIPC] < 0.5 {
			lowIPC = true
		}
		if r[counters.IdxIPC] > 1.5 {
			highIPC = true
		}
	}
	if !lowIPC || !highIPC {
		t.Fatal("synthetic family does not span memory- to compute-bound")
	}
}

// TestLedgerSummary drives the -ledger exit-report tail against both
// payload shapes a /debug/ledger endpoint can serve.
func TestLedgerSummary(t *testing.T) {
	led := ledger.New(ledger.Options{Now: func() time.Time { return time.Unix(100, 0) }})
	feats := make([]float64, counters.Num)
	for i := range feats {
		feats[i] = float64(i%5) * 0.4
	}
	for i := 0; i < 10; i++ {
		led.Observe(1, 1, i%6, feats, 0.1)
	}
	snap := led.Snapshot()

	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap.WriteJSON(w)
	}))
	defer replica.Close()
	var buf bytes.Buffer
	if err := ledgerSummary(&buf, replica.URL); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"replica efficiency ledger", "energy saved", "10 decisions", "perf loss"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replica summary missing %q:\n%s", want, out)
		}
	}

	agg := fleet.LedgerAggregate{
		AtUnix: 1700000000,
		Merged: snap,
		Alerts: []ledger.AlertState{
			{Rule: ledger.Rule{Name: "burn", Threshold: 1.5}, Value: 2.0, Firing: true},
		},
	}
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agg.WriteJSON(w)
	}))
	defer router.Close()
	buf.Reset()
	if err := ledgerSummary(&buf, router.URL+"/"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"fleet efficiency ledger", "alerts firing burn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet summary missing %q:\n%s", want, out)
		}
	}
}

func TestLedgerSummaryDisabledEndpointErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "ledger disabled", http.StatusNotFound)
	}))
	defer ts.Close()
	err := ledgerSummary(&bytes.Buffer{}, ts.URL)
	if err == nil || !strings.Contains(err.Error(), "ledger disabled") {
		t.Fatalf("err = %v, want ledger-disabled error", err)
	}
}
