package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// writeFixtureMetrics builds a registry the way a simulator run would and
// dumps it to disk.
func writeFixtureMetrics(t *testing.T, path string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("sim_level_residency_ps", "level", "0").Add(30_000_000)
	reg.Counter("sim_level_residency_ps", "level", "5").Add(70_000_000)
	reg.Counter("sim_level_epochs_total", "level", "0").Add(3)
	reg.Counter("sim_level_epochs_total", "level", "5").Add(7)
	reg.Counter("sim_stall_cycles_total", "kind", "mem_load").Add(9000)
	reg.Counter("sim_stall_cycles_total", "kind", "compute").Add(1000)
	reg.Counter("sim_reference_agree_epochs_total").Add(8)
	reg.Counter("sim_reference_diverge_epochs_total").Add(2)
	reg.Counter("sim_reference_diverge_levels_total").Add(4)
	h := reg.HistogramBuckets("serve_batch_latency_us", 20)
	for _, v := range []int64{3, 5, 9, 17, 33} {
		h.Observe(v)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMetricsDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.json")
	writeFixtureMetrics(t, path)

	var out bytes.Buffer
	if err := run(&out, path, "", "", "", "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"operating-level residency",
		"70.0%", // level 5 share
		"stall-cycle breakdown",
		"mem_load",
		"decision divergence",
		"80.0%",         // agreement
		"mean |Δlevel|", // 4/2 = 2.00
		"serve_batch_latency_us",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSummarizeSpansAndChromeExport(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	chromePath := filepath.Join(dir, "chrome.json")

	f, err := os.Create(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(f)
	tr.Start("datagen").End()
	tr.Start("train", "epochs", "50").End()
	tr.Start("train").End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run(&out, "", spansPath, chromePath, "", "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "datagen") || !strings.Contains(got, "train") {
		t.Fatalf("span table incomplete:\n%s", got)
	}
	cf, err := os.Open(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	events, err := telemetry.ReadChromeTrace(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("chrome export has %d events, want 3", len(events))
	}
}

func TestTraceDivergence(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, levels []int) string {
		tr := &epochtrace.Trace{}
		for e, lvl := range levels {
			tr.Records = append(tr.Records, epochtrace.Record{Epoch: e, Cluster: 0, Level: lvl})
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// 3 of 5 epochs agree; the two divergent epochs are off by -2 and +1.
	run1 := mk("run.csv", []int{5, 3, 4, 5, 2})
	oracle := mk("oracle.csv", []int{5, 5, 4, 4, 2})

	var out bytes.Buffer
	if err := run(&out, "", "", "", run1, oracle, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"60.0%", "40.0%", "1.50", "Δlevel"} {
		if !strings.Contains(got, want) {
			t.Fatalf("divergence output missing %q:\n%s", want, got)
		}
	}
}

func TestTraceRequiresReference(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", "", "whatever.csv", "", "", "", "", ""); err == nil {
		t.Fatal("-trace without -against must fail")
	}
}

// writeFixtureDecisions dumps a small flight-recorder capture: eight
// model decisions with drifted features, one fallback, one rejected row.
func writeFixtureDecisions(t *testing.T, path string) {
	t.Helper()
	hdr := provenance.Header{
		Build:       map[string]string{"go": "go1.x", "revision": "abc"},
		Features:    []string{"ipc", "mem_hits"},
		TrainMean:   []float64{1.0, 100.0},
		TrainStd:    []float64{0.5, 10.0},
		Levels:      6,
		ModelParams: 1234,
		Capacity:    16,
		Head:        12,
	}
	var recs []provenance.Record
	for i := 0; i < 8; i++ {
		r := provenance.Record{
			Seq: uint64(i + 1), Cluster: 0, Epoch: int32(i),
			Level: int32(2 + i%2), Reason: provenance.ReasonModel,
			Preset: 0.1, EffPreset: 0.1, PredInstr: 1000,
			LatencyNs: int64(1500 + 100*i),
		}
		// Window mean 2.35 vs training mean 1.0 at σ=0.5 → z = 2.7.
		r.SetDerived([]float64{2.0 + 0.1*float64(i), 100})
		if i > 0 {
			r.PredErr = 0.10
			r.HasPredErr = true
		}
		recs = append(recs, r)
	}
	recs = append(recs,
		provenance.Record{Seq: 9, Cluster: 1, Epoch: 8, Level: 1,
			Reason: provenance.ReasonFallback, LatencyNs: 900},
		provenance.Record{Seq: 10, Cluster: -1, Epoch: -1, Level: 0,
			Reason: provenance.ReasonRejected, LatencyNs: 400},
	)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := provenance.WriteRecords(f, hdr, recs); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDecisionsDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.jsonl")
	writeFixtureDecisions(t, path)

	var out bytes.Buffer
	if err := run(&out, "", "", "", "", "", path, "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"decision provenance",
		"go=go1.x revision=abc",
		"6 levels, 1234 params",
		"10 of 12 ever recorded (ring capacity 16)",
		"model", "fallback", "rejected",
		"degraded                2    20.0%", // 2 of 10 non-model
		"MAPE 0.100",
		"bias +0.100",
		"feature drift vs training (8 model decisions)",
		"ipc",
		"2.70", // mean_z of the drifted ipc window
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("decisions output missing %q:\n%s", want, got)
		}
	}

	// The view must be byte-deterministic over the same dump.
	var again bytes.Buffer
	if err := run(&again, "", "", "", "", "", path, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("decisions view is not byte-deterministic")
	}
}

// TestMultiFileSpanMerge merges per-process span captures into one
// Chrome trace with a distinct pid per input file, and prints the
// per-hop quantile table for trace-linked spans.
func TestMultiFileSpanMerge(t *testing.T) {
	dir := t.TempDir()
	clientPath := filepath.Join(dir, "client.jsonl")
	replicaPath := filepath.Join(dir, "replica.jsonl")
	chromePath := filepath.Join(dir, "merged.json")

	tc := telemetry.TraceContext{TraceID: 0xbeef, Flags: telemetry.FlagSampled}
	for i, path := range []string{clientPath, replicaPath} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		tr := telemetry.NewTracer(f)
		tr.StartSpan(tc, []string{"client.send", "engine.batch"}[i]).End()
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	var out bytes.Buffer
	if err := run(&out, "", clientPath+","+replicaPath, chromePath, "", "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"per-hop latency", "client.send", "engine.batch", "2 processes"} {
		if !strings.Contains(got, want) {
			t.Fatalf("merge output missing %q:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"pid": 1`, `"pid": 2`, `"process_name"`, `"000000000000beef"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("chrome trace missing %q", want)
		}
	}
}

func TestPromlintFlag(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	bad := filepath.Join(dir, "bad.prom")

	reg := telemetry.NewRegistry()
	reg.Counter("serve_decisions_total").Add(5)
	reg.Histogram("serve_batch_latency_us").ObserveExemplar(7, 0xabc)
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run(&out, "", "", "", "", "", "", good, "", ""); err != nil {
		t.Fatalf("clean exposition flagged: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}

	if err := os.WriteFile(bad, []byte("a_total 1\na_total 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(&out, "", "", "", "", "", "", bad, "", ""); err == nil {
		t.Fatalf("duplicate series not flagged:\n%s", out.String())
	}
}

// writeFixtureLedgerDump dumps a flight-recorder capture carrying the raw
// counter rows the ledger replay consumes, and returns the records.
func writeFixtureLedgerDump(t *testing.T, path string) []provenance.Record {
	t.Helper()
	var recs []provenance.Record
	for i := 0; i < 24; i++ {
		feats := make([]float64, counters.Num)
		for j := range feats {
			feats[j] = float64((i+j)%9) * 0.3
		}
		r := provenance.Record{
			Seq: uint64(i + 1), Cluster: int32(i % 2), Epoch: int32(i),
			Level: int32(i % 4), Reason: provenance.ReasonModel,
			Preset: 0.1, ModelGen: 1,
		}
		r.SetRaw(feats)
		recs = append(recs, r)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := provenance.WriteRecords(f, provenance.Header{Levels: 6}, recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestLedgerReplayView(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.jsonl")
	writeFixtureLedgerDump(t, path)

	var out bytes.Buffer
	if err := run(&out, "", "", "", "", "", "", "", path, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"efficiency ledger replay",
		"decisions                   24",
		"energy @MaxFreq",
		"energy saved",
		"perf loss mean",
		"level", "cluster",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("ledger replay output missing %q:\n%s", want, got)
		}
	}

	var again bytes.Buffer
	if err := run(&again, "", "", "", "", "", "", "", path, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("ledger replay view is not byte-deterministic")
	}
}

// TestLedgerCrossCheck pins the acceptance contract: an online snapshot
// that matches the exact replay passes within the documented 2%
// tolerance, and a disagreeing one fails with a non-zero exit.
func TestLedgerCrossCheck(t *testing.T) {
	dir := t.TempDir()
	dumpPath := filepath.Join(dir, "dump.jsonl")
	recs := writeFixtureLedgerDump(t, dumpPath)
	replay := ledger.NewMeter(nil, nil).ReplayRecords(recs)

	writeSnap := func(name string, s ledger.Snapshot) string {
		t.Helper()
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := writeSnap("online.json", replay)
	var out bytes.Buffer
	if err := run(&out, "", "", "", "", "", "", "", dumpPath, good); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cross-check PASS") {
		t.Fatalf("matching snapshot did not pass:\n%s", out.String())
	}

	doctored := replay
	doctored.EnergyPJ = replay.EnergyPJ / 2 // far beyond the 2% tolerance
	bad := writeSnap("doctored.json", doctored)
	out.Reset()
	err := run(&out, "", "", "", "", "", "", "", dumpPath, bad)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("doctored snapshot passed cross-check: %v", err)
	}
}

func TestLedgerAgainstRequiresLedger(t *testing.T) {
	if err := run(&bytes.Buffer{}, "", "", "", "", "", "", "", "", "x.json"); err == nil {
		t.Fatal("-ledger-against without -ledger accepted")
	}
}
