package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/telemetry"
)

// writeFixtureMetrics builds a registry the way a simulator run would and
// dumps it to disk.
func writeFixtureMetrics(t *testing.T, path string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("sim_level_residency_ps", "level", "0").Add(30_000_000)
	reg.Counter("sim_level_residency_ps", "level", "5").Add(70_000_000)
	reg.Counter("sim_level_epochs_total", "level", "0").Add(3)
	reg.Counter("sim_level_epochs_total", "level", "5").Add(7)
	reg.Counter("sim_stall_cycles_total", "kind", "mem_load").Add(9000)
	reg.Counter("sim_stall_cycles_total", "kind", "compute").Add(1000)
	reg.Counter("sim_reference_agree_epochs_total").Add(8)
	reg.Counter("sim_reference_diverge_epochs_total").Add(2)
	reg.Counter("sim_reference_diverge_levels_total").Add(4)
	h := reg.HistogramBuckets("serve_batch_latency_us", 20)
	for _, v := range []int64{3, 5, 9, 17, 33} {
		h.Observe(v)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMetricsDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.json")
	writeFixtureMetrics(t, path)

	var out bytes.Buffer
	if err := run(&out, path, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"operating-level residency",
		"70.0%", // level 5 share
		"stall-cycle breakdown",
		"mem_load",
		"decision divergence",
		"80.0%",         // agreement
		"mean |Δlevel|", // 4/2 = 2.00
		"serve_batch_latency_us",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestSummarizeSpansAndChromeExport(t *testing.T) {
	dir := t.TempDir()
	spansPath := filepath.Join(dir, "spans.jsonl")
	chromePath := filepath.Join(dir, "chrome.json")

	f, err := os.Create(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(f)
	tr.Start("datagen").End()
	tr.Start("train", "epochs", "50").End()
	tr.Start("train").End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run(&out, "", spansPath, chromePath, "", ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "datagen") || !strings.Contains(got, "train") {
		t.Fatalf("span table incomplete:\n%s", got)
	}
	cf, err := os.Open(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	events, err := telemetry.ReadChromeTrace(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("chrome export has %d events, want 3", len(events))
	}
}

func TestTraceDivergence(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, levels []int) string {
		tr := &epochtrace.Trace{}
		for e, lvl := range levels {
			tr.Records = append(tr.Records, epochtrace.Record{Epoch: e, Cluster: 0, Level: lvl})
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// 3 of 5 epochs agree; the two divergent epochs are off by -2 and +1.
	run1 := mk("run.csv", []int{5, 3, 4, 5, 2})
	oracle := mk("oracle.csv", []int{5, 5, 4, 4, 2})

	var out bytes.Buffer
	if err := run(&out, "", "", "", run1, oracle); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"60.0%", "40.0%", "1.50", "Δlevel"} {
		if !strings.Contains(got, want) {
			t.Fatalf("divergence output missing %q:\n%s", want, got)
		}
	}
}

func TestTraceRequiresReference(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", "", "whatever.csv", ""); err == nil {
		t.Fatal("-trace without -against must fail")
	}
}
