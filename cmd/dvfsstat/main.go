// Command dvfsstat turns telemetry dumps back into human-readable
// analysis: operating-level residency tables, controller-vs-oracle
// divergence summaries, stall breakdowns, and latency quantiles from a
// metrics snapshot; phase tables and Chrome trace-event export from a
// span capture; and per-epoch divergence between two trace files.
//
// Usage:
//
//	dvfsstat -metrics telemetry.json          # registry dump (ssmdvfs -telemetry,
//	                                          # dvfstrace -telemetry, ssmdvfsd /telemetry)
//	dvfsstat -spans spans.jsonl [-chrome out.json]
//	dvfsstat -spans client.jsonl,fleet.jsonl,replica.jsonl -chrome out.json
//	dvfsstat -trace run.csv -against oracle.csv
//	dvfsstat -decisions dump.jsonl            # flight-recorder dump (ssmdvfsd
//	                                          # /debug/decisions, dvfstrace -flightrec)
//	dvfsstat -promlint metrics.prom           # lint a /metrics.prom scrape
//	dvfsstat -ledger dump.jsonl               # offline efficiency-ledger replay
//	dvfsstat -ledger dump.jsonl -ledger-against snapshot.json
//
// Any combination of inputs may be given; each produces its section.
// -chrome converts the span capture to the Chrome trace-event format
// viewable in chrome://tracing or Perfetto; comma-separated -spans files
// (one per process of a traced fleet) merge into a single timeline with
// one Chrome process per file, and trace-linked captures add a per-hop
// latency quantile table. -decisions summarizes a provenance
// flight-recorder dump: the per-reason breakdown, the level
// distribution, prediction-error statistics, and per-feature drift
// against the training statistics embedded in the dump header.
// -promlint checks a Prometheus text exposition for malformed names,
// label escaping, exemplar syntax, and duplicate series, exiting 1 if
// anything is wrong. -ledger replays a flight-recorder dump through the
// exact per-decision efficiency accounting (the same arithmetic the
// online ledger uses) and prints energy-saved/perf-loss totals with
// per-level and per-cluster breakdowns; -ledger-against additionally
// cross-checks an online /debug/ledger snapshot against that replay,
// exiting 1 if any total diverges beyond the documented 2% tolerance.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

func main() {
	var (
		metrics   = flag.String("metrics", "", "telemetry registry snapshot (JSON)")
		spans     = flag.String("spans", "", "span captures (JSONL; comma-separated files merge, one Chrome process each)")
		chrome    = flag.String("chrome", "", "with -spans: write Chrome trace-event JSON here")
		trace     = flag.String("trace", "", "per-epoch trace (CSV or JSON from dvfstrace)")
		against   = flag.String("against", "", "with -trace: reference trace to diff decisions against")
		decisions = flag.String("decisions", "", "flight-recorder dump (JSONL from /debug/decisions or -flightrec)")
		promlint  = flag.String("promlint", "", "lint a Prometheus text exposition (from /metrics.prom); exits 1 on problems")
		ledgerIn  = flag.String("ledger", "", "replay a flight-recorder dump through the exact efficiency-ledger accounting")
		ledgerRef = flag.String("ledger-against", "", "with -ledger: online ledger snapshot (from /debug/ledger) to cross-check; exits 1 beyond the 2% tolerance")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dvfsstat", buildinfo.String())
		return
	}

	if *metrics == "" && *spans == "" && *trace == "" && *decisions == "" && *promlint == "" && *ledgerIn == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *metrics, *spans, *chrome, *trace, *against, *decisions, *promlint, *ledgerIn, *ledgerRef); err != nil {
		fmt.Fprintln(os.Stderr, "dvfsstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, metricsPath, spansPath, chromePath, tracePath, againstPath, decisionsPath, promlintPath, ledgerPath, ledgerRefPath string) error {
	if metricsPath != "" {
		snap, err := telemetry.ReadSnapshotFile(metricsPath)
		if err != nil {
			return err
		}
		summarizeMetrics(w, snap)
	}
	if spansPath != "" {
		// Comma-separated captures (one per process: client, router,
		// replicas) merge into one timeline; each file becomes its own
		// Chrome process so cross-process spans line up side by side.
		var names []string
		var groups [][]telemetry.SpanRecord
		var merged []telemetry.SpanRecord
		for _, path := range strings.Split(spansPath, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			spans, err := telemetry.ReadSpansFile(path)
			if err != nil {
				return err
			}
			names = append(names, path)
			groups = append(groups, spans)
			merged = append(merged, spans...)
		}
		summarizeSpans(w, merged)
		if chromePath != "" {
			if err := atomicfile.Write(chromePath, func(out io.Writer) error {
				return telemetry.WriteChromeTraceMulti(out, groups, names)
			}); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote Chrome trace (%d events, %d processes) to %s\n",
				len(merged), len(groups), chromePath)
		}
	}
	if tracePath != "" {
		if againstPath == "" {
			return fmt.Errorf("-trace requires -against (the reference run to diff)")
		}
		a, err := readTrace(tracePath)
		if err != nil {
			return err
		}
		b, err := readTrace(againstPath)
		if err != nil {
			return err
		}
		if err := summarizeDivergence(w, tracePath, againstPath, a, b); err != nil {
			return err
		}
	}
	if decisionsPath != "" {
		hdr, recs, err := provenance.ReadFile(decisionsPath)
		if err != nil {
			return err
		}
		summarizeDecisions(w, decisionsPath, hdr, recs)
	}
	if promlintPath != "" {
		f, err := os.Open(promlintPath)
		if err != nil {
			return err
		}
		problems := telemetry.LintProm(f)
		f.Close()
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(w, "promlint: %s: %s\n", promlintPath, p)
			}
			return fmt.Errorf("%s: %d exposition problems", promlintPath, len(problems))
		}
		fmt.Fprintf(w, "promlint: %s: clean\n", promlintPath)
	}
	if ledgerPath != "" {
		_, recs, err := provenance.ReadFile(ledgerPath)
		if err != nil {
			return err
		}
		replay := ledger.NewMeter(nil, nil).ReplayRecords(recs)
		summarizeLedger(w, ledgerPath, replay)
		if ledgerRefPath != "" {
			online, err := ledger.ReadSnapshotFile(ledgerRefPath)
			if err != nil {
				return err
			}
			if err := crossCheckLedger(w, ledgerRefPath, online, replay); err != nil {
				return err
			}
		}
	} else if ledgerRefPath != "" {
		return fmt.Errorf("-ledger-against requires -ledger (the dump to replay)")
	}
	return nil
}

// summarizeLedger renders a replayed flight-recorder dump as the offline
// efficiency ledger: totals plus the per-level and per-cluster breakdown.
// Ordering is fixed (numeric label order) so two runs over the same dump
// are byte-identical.
func summarizeLedger(w io.Writer, path string, s ledger.Snapshot) {
	fmt.Fprintf(w, "== efficiency ledger replay: %s ==\n", path)
	fmt.Fprintf(w, "decisions         %12d\n", s.Decisions)
	fmt.Fprintf(w, "energy @MaxFreq   %12s\n", ledger.FormatEnergyPJ(float64(s.EnergyMaxPJ)))
	fmt.Fprintf(w, "energy actual     %12s\n", ledger.FormatEnergyPJ(float64(s.EnergyPJ)))
	fmt.Fprintf(w, "energy saved      %12s  (%.1f%% of the MaxFreq bill)\n",
		ledger.FormatEnergyPJ(float64(s.SavedPJ())), s.SavedRatio()*100)
	fmt.Fprintf(w, "perf loss mean    %11.3f%%  (budget %.3f%%, burn %.2fx)\n",
		s.MeanPerfLoss()*100, s.MeanPreset()*100, s.BudgetBurn())

	for _, family := range []string{"level", "cluster"} {
		rows := map[string]ledger.Group{}
		for k, g := range s.Groups {
			if strings.HasPrefix(k, family+"=") {
				rows[strings.TrimPrefix(k, family+"=")] = g
			}
		}
		if len(rows) == 0 {
			continue
		}
		counts := make(map[string]int64, len(rows))
		for k, g := range rows {
			counts[k] = g.Decisions
		}
		fmt.Fprintf(w, "\n%-10s %10s %12s %10s\n", family, "decisions", "saved", "loss")
		for _, k := range sortedLabelKeys(counts) {
			g := rows[k]
			loss := 0.0
			if g.Decisions > 0 {
				loss = float64(g.PerfLossPpmSum) / 1e6 / float64(g.Decisions) * 100
			}
			fmt.Fprintf(w, "%-10s %10d %12s %9.3f%%\n", k, g.Decisions,
				ledger.FormatEnergyPJ(float64(g.EnergyMaxPJ-g.EnergyPJ)), loss)
		}
	}
	fmt.Fprintln(w)
}

// crossCheckLedger compares an online ledger snapshot against the exact
// offline replay, field by field. A dump that covers every served
// decision reproduces the integer totals exactly; the 2% tolerance
// exists for dumps whose flight-recorder ring dropped the oldest
// decisions or that were scraped mid-traffic.
func crossCheckLedger(w io.Writer, refPath string, online, replay ledger.Snapshot) error {
	const tolerance = 0.02
	fields := []struct {
		name           string
		online, replay int64
	}{
		{"decisions", online.Decisions, replay.Decisions},
		{"energy_max_pj", online.EnergyMaxPJ, replay.EnergyMaxPJ},
		{"energy_pj", online.EnergyPJ, replay.EnergyPJ},
		{"saved_pj", online.SavedPJ(), replay.SavedPJ()},
		{"perf_loss_ppm_sum", online.PerfLossPpmSum, replay.PerfLossPpmSum},
	}
	fmt.Fprintf(w, "== online vs replay cross-check: %s ==\n", refPath)
	fmt.Fprintf(w, "%-20s %16s %16s %10s\n", "field", "online", "replay", "diff")
	var bad []string
	for _, f := range fields {
		diff := 0.0
		if f.online != f.replay {
			diff = math.Abs(float64(f.online-f.replay)) / math.Max(math.Abs(float64(f.replay)), 1)
		}
		fmt.Fprintf(w, "%-20s %16d %16d %9.2f%%\n", f.name, f.online, f.replay, diff*100)
		if diff > tolerance {
			bad = append(bad, f.name)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("online ledger disagrees with exact replay beyond %.0f%% tolerance: %s",
			tolerance*100, strings.Join(bad, ", "))
	}
	fmt.Fprintf(w, "cross-check PASS: all fields within the %.0f%% tolerance\n\n", tolerance*100)
	return nil
}

func readTrace(path string) (*epochtrace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		return epochtrace.ReadJSON(f)
	}
	return epochtrace.ReadCSV(f)
}

// byLabel collects counters with the given base name into label → value.
func byLabel(counters map[string]int64, base, label string) map[string]int64 {
	out := map[string]int64{}
	for id, v := range counters {
		name, labels := telemetry.ParseID(id)
		if name == base {
			out[labels[label]] = v
		}
	}
	return out
}

func sortedLabelKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, errA := strconv.Atoi(keys[i])
		b, errB := strconv.Atoi(keys[j])
		if errA == nil && errB == nil {
			return a < b
		}
		return keys[i] < keys[j]
	})
	return keys
}

// summarizeMetrics prints the sections a registry snapshot supports:
// build attribution, residency, stall breakdown, divergence, histograms,
// and counters.
func summarizeMetrics(w io.Writer, snap telemetry.Snapshot) {
	if len(snap.Build) > 0 {
		fmt.Fprintln(w, "== build ==")
		for _, k := range sortedKeys(snap.Build) {
			fmt.Fprintf(w, "%-12s %s\n", k, snap.Build[k])
		}
		fmt.Fprintln(w)
	}
	residency := byLabel(snap.Counters, "sim_level_residency_ps", "level")
	epochs := byLabel(snap.Counters, "sim_level_epochs_total", "level")
	if len(residency) > 0 {
		var totalPs int64
		for _, v := range residency {
			totalPs += v
		}
		fmt.Fprintln(w, "== operating-level residency ==")
		fmt.Fprintf(w, "%-6s %14s %8s %10s\n", "level", "time_us", "share", "epochs")
		for _, lvl := range sortedLabelKeys(residency) {
			ps := residency[lvl]
			share := 0.0
			if totalPs > 0 {
				share = float64(ps) / float64(totalPs) * 100
			}
			fmt.Fprintf(w, "%-6s %14.1f %7.1f%% %10d\n", lvl, float64(ps)/1e6, share, epochs[lvl])
		}
		fmt.Fprintln(w)
	}

	stalls := byLabel(snap.Counters, "sim_stall_cycles_total", "kind")
	if len(stalls) > 0 {
		var total int64
		for _, v := range stalls {
			total += v
		}
		fmt.Fprintln(w, "== stall-cycle breakdown ==")
		fmt.Fprintf(w, "%-18s %14s %8s\n", "kind", "cycles", "share")
		for _, kind := range sortedLabelKeys(stalls) {
			share := 0.0
			if total > 0 {
				share = float64(stalls[kind]) / float64(total) * 100
			}
			fmt.Fprintf(w, "%-18s %14d %7.1f%%\n", kind, stalls[kind], share)
		}
		fmt.Fprintln(w)
	}

	agree := snap.Counters["sim_reference_agree_epochs_total"]
	diverge := snap.Counters["sim_reference_diverge_epochs_total"]
	if agree+diverge > 0 {
		printDivergence(w, "controller vs reference (from registry)", agree, diverge,
			float64(snap.Counters["sim_reference_diverge_levels_total"]))
	}

	if len(snap.Histograms) > 0 {
		fmt.Fprintln(w, "== distributions ==")
		fmt.Fprintf(w, "%-44s %10s %10s %10s %10s %10s\n", "histogram", "count", "mean", "p50", "p95", "p99")
		for _, id := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[id]
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(w, "%-44s %10d %10.1f %10.1f %10.1f %10.1f\n", id, h.Count, mean, h.P50, h.P95, h.P99)
		}
		fmt.Fprintln(w)
	}

	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "== counters ==")
		for _, id := range sortedKeys(snap.Counters) {
			name, _ := telemetry.ParseID(id)
			switch name {
			// Already rendered as tables above.
			case "sim_level_residency_ps", "sim_level_epochs_total", "sim_stall_cycles_total":
				continue
			}
			fmt.Fprintf(w, "%-52s %14d\n", id, snap.Counters[id])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "\n== gauges ==")
		for _, id := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(w, "%-52s %14.2f\n", id, snap.Gauges[id])
		}
	}
}

// summarizeSpans prints a per-name phase table, and — when the capture
// carries trace-linked spans — a per-hop latency quantile table across
// the distributed hops.
func summarizeSpans(w io.Writer, spans []telemetry.SpanRecord) {
	type agg struct {
		count int
		total float64
		max   float64
		durs  []float64
	}
	byName := map[string]*agg{}
	var order []string
	traced := false
	for _, sp := range spans {
		a, ok := byName[sp.Name]
		if !ok {
			a = &agg{}
			byName[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.count++
		a.total += sp.DurUs
		if sp.DurUs > a.max {
			a.max = sp.DurUs
		}
		a.durs = append(a.durs, sp.DurUs)
		if sp.TraceID != "" {
			traced = true
		}
	}
	fmt.Fprintln(w, "== spans ==")
	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s\n", "phase", "count", "total_ms", "mean_ms", "max_ms")
	for _, name := range order {
		a := byName[name]
		fmt.Fprintf(w, "%-28s %8d %12.2f %12.2f %12.2f\n",
			name, a.count, a.total/1e3, a.total/1e3/float64(a.count), a.max/1e3)
	}
	fmt.Fprintln(w)

	if traced {
		fmt.Fprintln(w, "== per-hop latency ==")
		fmt.Fprintf(w, "%-28s %8s %12s %12s %12s\n", "hop", "count", "p50_us", "p99_us", "p999_us")
		for _, name := range order {
			a := byName[name]
			sort.Float64s(a.durs)
			q := func(p float64) float64 { return a.durs[int(p*float64(len(a.durs)-1))] }
			fmt.Fprintf(w, "%-28s %8d %12.1f %12.1f %12.1f\n",
				name, a.count, q(0.50), q(0.99), q(0.999))
		}
		fmt.Fprintln(w)
	}
}

// summarizeDivergence diffs the per-(epoch, cluster) operating-level
// decisions of two runs — typically a controller against an oracle.
func summarizeDivergence(w io.Writer, nameA, nameB string, a, b *epochtrace.Trace) error {
	type key struct{ epoch, cluster int }
	ref := make(map[key]int, len(b.Records))
	for _, r := range b.Records {
		ref[key{r.Epoch, r.Cluster}] = r.Level
	}
	var agree, diverge int64
	var absDist float64
	deltas := map[int]int64{}
	for _, r := range a.Records {
		refLevel, ok := ref[key{r.Epoch, r.Cluster}]
		if !ok {
			continue
		}
		if r.Level == refLevel {
			agree++
		} else {
			diverge++
			d := r.Level - refLevel
			if d < 0 {
				absDist -= float64(d)
			} else {
				absDist += float64(d)
			}
			deltas[d]++
		}
	}
	if agree+diverge == 0 {
		return fmt.Errorf("traces share no (epoch, cluster) pairs")
	}
	printDivergence(w, fmt.Sprintf("%s vs %s", nameA, nameB), agree, diverge, absDist)
	if len(deltas) > 0 {
		fmt.Fprintf(w, "%-8s %10s\n", "Δlevel", "epochs")
		ds := make([]int, 0, len(deltas))
		for d := range deltas {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		for _, d := range ds {
			fmt.Fprintf(w, "%+-8d %10d\n", d, deltas[d])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// summarizeDecisions renders a flight-recorder dump (the JSONL format
// written by ssmdvfsd's /debug/decisions and dvfstrace -flightrec):
// attribution, the per-reason breakdown, the level distribution,
// prediction-error statistics, and per-feature drift of the recorded
// window against the training statistics carried in the dump header.
// Output ordering is fixed (enum order for reasons, numeric order for
// levels, header order for features) so two runs over the same dump are
// byte-identical.
func summarizeDecisions(w io.Writer, path string, hdr provenance.Header, recs []provenance.Record) {
	fmt.Fprintf(w, "== decision provenance: %s ==\n", path)
	if len(hdr.Build) > 0 {
		var parts []string
		for _, k := range sortedKeys(hdr.Build) {
			parts = append(parts, k+"="+hdr.Build[k])
		}
		fmt.Fprintf(w, "build             %s\n", strings.Join(parts, " "))
	}
	if hdr.Levels > 0 || hdr.ModelParams > 0 {
		fmt.Fprintf(w, "model             %d levels, %d params\n", hdr.Levels, hdr.ModelParams)
	}
	if hdr.Head > uint64(len(recs)) {
		fmt.Fprintf(w, "records           %d of %d ever recorded (ring capacity %d)\n",
			len(recs), hdr.Head, hdr.Capacity)
	} else {
		fmt.Fprintf(w, "records           %d\n", len(recs))
	}
	if len(recs) == 0 {
		fmt.Fprintln(w)
		return
	}

	var reasons [provenance.NumReasons]int64
	levels := map[string]int64{}
	var latSum, latMax int64
	var errSum, errAbsSum float64
	var errN int64
	nFeat := len(hdr.Features)
	if len(hdr.TrainMean) < nFeat {
		nFeat = len(hdr.TrainMean)
	}
	if len(hdr.TrainStd) < nFeat {
		nFeat = len(hdr.TrainStd)
	}
	fSum := make([]float64, nFeat)
	fSumSq := make([]float64, nFeat)
	var fN int64
	for i := range recs {
		r := &recs[i]
		if int(r.Reason) < provenance.NumReasons {
			reasons[r.Reason]++
		}
		levels[strconv.Itoa(int(r.Level))]++
		latSum += r.LatencyNs
		if r.LatencyNs > latMax {
			latMax = r.LatencyNs
		}
		if r.HasPredErr {
			errSum += r.PredErr
			errAbsSum += math.Abs(r.PredErr)
			errN++
		}
		if r.Reason == provenance.ReasonModel && int(r.NumDerived) >= nFeat {
			for j := 0; j < nFeat; j++ {
				fSum[j] += r.Derived[j]
				fSumSq[j] += r.Derived[j] * r.Derived[j]
			}
			fN++
		}
	}
	total := float64(len(recs))

	fmt.Fprintf(w, "\n%-14s %10s %8s\n", "reason", "count", "share")
	for i, n := range reasons {
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %10d %7.1f%%\n", provenance.Reason(i).String(), n, float64(n)/total*100)
	}
	degraded := int64(len(recs)) - reasons[provenance.ReasonModel]
	fmt.Fprintf(w, "%-14s %10d %7.1f%%\n", "degraded", degraded, float64(degraded)/total*100)

	fmt.Fprintf(w, "\n%-14s %10s %8s\n", "level", "count", "share")
	for _, lvl := range sortedLabelKeys(levels) {
		fmt.Fprintf(w, "%-14s %10d %7.1f%%\n", lvl, levels[lvl], float64(levels[lvl])/total*100)
	}

	fmt.Fprintf(w, "\ndecision latency  mean %.1fus  max %.1fus\n",
		float64(latSum)/total/1e3, float64(latMax)/1e3)
	if errN > 0 {
		fmt.Fprintf(w, "prediction error  MAPE %.3f  bias %+.3f  (%d samples)\n",
			errAbsSum/float64(errN), errSum/float64(errN), errN)
	}

	if nFeat > 0 && fN > 0 {
		fmt.Fprintf(w, "\n== feature drift vs training (%d model decisions) ==\n", fN)
		fmt.Fprintf(w, "%-18s %12s %12s %8s %10s\n", "feature", "train_mean", "dump_mean", "mean_z", "var_ratio")
		for j := 0; j < nFeat; j++ {
			mean := fSum[j] / float64(fN)
			z, vr := 0.0, 0.0
			if sd := hdr.TrainStd[j]; sd > 0 {
				z = (mean - hdr.TrainMean[j]) / sd
				variance := fSumSq[j]/float64(fN) - mean*mean
				if variance < 0 {
					variance = 0
				}
				vr = variance / (sd * sd)
			}
			fmt.Fprintf(w, "%-18s %12.4g %12.4g %8.2f %10.3f\n",
				hdr.Features[j], hdr.TrainMean[j], mean, z, vr)
		}
	}
	fmt.Fprintln(w)
}

func printDivergence(w io.Writer, title string, agree, diverge int64, absDist float64) {
	total := agree + diverge
	fmt.Fprintf(w, "== decision divergence: %s ==\n", title)
	fmt.Fprintf(w, "compared epochs   %12d\n", total)
	fmt.Fprintf(w, "agreement         %11.1f%%\n", float64(agree)/float64(total)*100)
	fmt.Fprintf(w, "divergence        %11.1f%%\n", float64(diverge)/float64(total)*100)
	if diverge > 0 {
		fmt.Fprintf(w, "mean |Δlevel|     %12.2f  (over divergent epochs)\n", absDist/float64(diverge))
	}
	fmt.Fprintln(w)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
