package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ssmdvfs/internal/adapt"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/nn"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	identity := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: identity(6),
		CalibScaler:    identity(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

// TestBuildMuxObservabilityEndpoints checks the daemon-only endpoints the
// serving package does not provide: Prometheus exposition, the raw
// telemetry dump, and pprof — layered over the serving API.
func TestBuildMuxObservabilityEndpoints(t *testing.T) {
	srv, err := serve.NewServer(testModel(t), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(256, provenance.MonitorOptions{})
	ctrl, err := adapt.NewController(srv.Engine, adapt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildMux(srv, ctrl))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics.prom"); code != http.StatusOK ||
		!strings.Contains(body, "# TYPE serve_decisions_total counter") {
		t.Fatalf("/metrics.prom → %d:\n%s", code, body)
	}
	if code, body := get("/telemetry"); code != http.StatusOK ||
		!strings.Contains(body, "serve_batches_total") {
		t.Fatalf("/telemetry → %d:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline → %d", code)
	}
	// The serving API still answers underneath; /healthz now reports the
	// degradation state machine.
	if code, body := get("/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"state":"healthy"`) {
		t.Fatalf("/healthz → %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "latency_buckets_us") {
		t.Fatalf("/metrics → %d:\n%s", code, body)
	}
	// With -adapt, the controller's state and transition log are mounted.
	if code, body := get("/debug/adapt"); code != http.StatusOK ||
		!strings.Contains(body, `"state": "monitoring"`) {
		t.Fatalf("/debug/adapt → %d:\n%s", code, body)
	}
}

// TestBuildMuxLedgerAndContentTypes drives the -ledger wiring: decisions
// flow through the daemon mux, the ledger snapshot is scrapable, every
// exposition declares its exact Content-Type, and the Prometheus text
// (now carrying ledger_* series) is promlint-clean.
func TestBuildMuxLedgerAndContentTypes(t *testing.T) {
	srv, err := serve.NewServer(testModel(t), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(256, provenance.MonitorOptions{})
	led := ledger.New(ledger.Options{Registry: srv.Telemetry()})
	srv.SetLedger(led)
	ts := httptest.NewServer(buildMux(srv, nil))
	defer ts.Close()

	// Serve a few decisions through the HTTP API so the ledger has mass.
	rng := rand.New(rand.NewSource(9))
	row := make([]float64, counters.Num)
	for i := 0; i < 20; i++ {
		for j := range row {
			row[j] = rng.Float64() * 2
		}
		body, _ := json.Marshal(map[string]any{"features": row, "preset": 0.1})
		resp, err := http.Post(ts.URL+"/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/decide → %d", resp.StatusCode)
		}
	}

	cases := []struct {
		path string
		want string
	}{
		{"/metrics.prom", telemetry.ContentTypeProm},
		{"/telemetry", telemetry.ContentTypeJSON},
		{"/healthz", telemetry.ContentTypeJSON},
		{"/metrics", telemetry.ContentTypeJSON},
		{"/debug/ledger", telemetry.ContentTypeJSON},
		{"/debug/decisions", telemetry.ContentTypeNDJSON},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s → %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Fatalf("GET %s: Content-Type %q, want %q", tc.path, got, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ledger.ReadSnapshot(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Decisions != 20 {
		t.Fatalf("ledger snapshot decisions = %d, want 20", snap.Decisions)
	}

	resp, err = http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom, []byte("ledger_decisions_total")) {
		t.Fatalf("/metrics.prom missing ledger series:\n%s", prom)
	}
	if errs := telemetry.LintProm(bytes.NewReader(prom)); len(errs) != 0 {
		t.Fatalf("/metrics.prom fails promlint: %v", errs)
	}
}
