package main

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ssmdvfs/internal/adapt"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/nn"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	identity := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: identity(6),
		CalibScaler:    identity(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

// TestBuildMuxObservabilityEndpoints checks the daemon-only endpoints the
// serving package does not provide: Prometheus exposition, the raw
// telemetry dump, and pprof — layered over the serving API.
func TestBuildMuxObservabilityEndpoints(t *testing.T) {
	srv, err := serve.NewServer(testModel(t), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(256, provenance.MonitorOptions{})
	ctrl, err := adapt.NewController(srv.Engine, adapt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(buildMux(srv, ctrl))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics.prom"); code != http.StatusOK ||
		!strings.Contains(body, "# TYPE serve_decisions_total counter") {
		t.Fatalf("/metrics.prom → %d:\n%s", code, body)
	}
	if code, body := get("/telemetry"); code != http.StatusOK ||
		!strings.Contains(body, "serve_batches_total") {
		t.Fatalf("/telemetry → %d:\n%s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline → %d", code)
	}
	// The serving API still answers underneath; /healthz now reports the
	// degradation state machine.
	if code, body := get("/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"state":"healthy"`) {
		t.Fatalf("/healthz → %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "latency_buckets_us") {
		t.Fatalf("/metrics → %d:\n%s", code, body)
	}
	// With -adapt, the controller's state and transition log are mounted.
	if code, body := get("/debug/adapt"); code != http.StatusOK ||
		!strings.Contains(body, `"state": "monitoring"`) {
		t.Fatalf("/debug/adapt → %d:\n%s", code, body)
	}
}
