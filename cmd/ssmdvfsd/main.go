// Command ssmdvfsd is the SSMDVFS decision daemon: it loads a trained
// Decision-maker + Calibrator model (the plain or compressed artifact,
// optionally fake-quantized) and serves per-epoch DVFS decisions over
// two transports — JSON on HTTP for debuggability and a length-prefixed
// binary protocol on TCP for throughput. The model hot-swaps with zero
// downtime on SIGHUP or POST /reload.
//
// Usage:
//
//	ssmdvfsd -model ssmdvfs-cache/compressed.json [-http :8090] [-tcp :8091]
//	         [-backend int8] [-quant 8] [-workers N] [-budget 200us]
//	         [-flightrec 4096] [-ledger] [-ledger-window 1s]
//	         [-spans ssmdvfsd-spans.jsonl]
//	         [-faults 'serve.infer:panic:every=100'] [-faults-seed 1]
//	         [-adapt] [-adapt-interval 1s] [-adapt-min-rows 512]
//	         [-adapt-shadow-rows 256] [-adapt-canary-rows 256]
//	         [-adapt-margin 0.1] [-adapt-regress 1.5]
//
// -adapt closes the paper's self-calibration loop online: when the
// flight recorder's drift gauges cross their thresholds, the daemon
// harvests realized epochs into a training stream, re-fits the
// Calibrator in place, shadow-scores the candidate on live traffic
// (it never serves), promotes it through the validated hot-swap path
// only if it beats the incumbent's rolling MAPE, canaries the
// promotion against live realized error, and automatically rolls back
// to the retained incumbent on regression. Every transition lands in
// adapt_* telemetry and the /debug/adapt transition log. -adapt implies
// -flightrec (default 4096 when unset).
//
// -backend selects the inference backend ("float64" or "int8",
// overriding the model header's choice): int8 serves quantized weights
// with int32 accumulation for batched throughput, and is parity-validated
// against the float64 reference at load and on every hot-swap. The chosen
// backend is advertised in hello negotiation, so a fleet router pinned
// with -backend refuses mismatched replicas.
//
// The daemon degrades instead of failing: model panics, deadline misses
// (-budget), and malformed feature rows are answered by the analytical
// PCSTALL fallback, and /healthz reports the healthy → degraded →
// fallback-only state machine. -faults arms deterministic fault
// injection for chaos testing (see internal/faults).
//
// Endpoints:
//
//	POST /decide        one decision ({"features":[...47],"preset":0.1}) or a
//	                    batch ({"rows":[...]})
//	GET  /metrics       request/decision counts, latency percentiles, per-level
//	                    decision distribution, reload and error counters (JSON)
//	GET  /metrics.prom  the same counters in Prometheus text exposition format
//	                    (with -flightrec, also the prov_* model-quality series)
//	GET  /telemetry     raw telemetry-registry snapshot (cmd/dvfsstat input)
//	GET  /debug/pprof/  live CPU/heap/goroutine profiling
//	GET  /debug/decisions  flight-recorder dump of the last -flightrec
//	                    decisions as JSONL (cmd/dvfsstat -decisions input;
//	                    ?n=, ?cluster=, ?reason= filter)
//	GET  /debug/ledger  efficiency-ledger snapshot: estimated energy saved and
//	                    perf-loss vs the MaxFreq counterfactual (with -ledger;
//	                    what the fleet router scrapes and dvfstop renders)
//	POST /reload        swap in a new model ({"path":"..."}; path optional)
//	GET  /model         served model info
//	GET  /healthz       liveness + build attribution
//	GET  /debug/adapt   adaptation state + transition log (with -adapt)
//
// Pair it with cmd/dvfsload to measure serving throughput and latency,
// and cmd/dvfsstat to summarize a scraped /telemetry dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ssmdvfs/internal/adapt"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model file (plain or compressed artifact; required)")
		httpAddr  = flag.String("http", ":8090", "HTTP listen address (empty disables)")
		tcpAddr   = flag.String("tcp", ":8091", "binary-protocol listen address (empty disables)")
		backend   = flag.String("backend", "", "inference backend: float64 or int8 (empty = model header, default float64)")
		quantBits = flag.Int("quant", 0, "fake-quantize the model to this bit width (0 = off)")
		workers   = flag.Int("workers", 0, "max concurrent inference batches (0 = GOMAXPROCS)")
		budget    = flag.Duration("budget", 0, "per-decision deadline; rows past it get the analytical fallback (0 = off)")
		flightrec = flag.Int("flightrec", 0, "keep the last N decisions in a provenance flight recorder with online drift monitoring (0 = off)")
		adaptOn   = flag.Bool("adapt", false, "close the self-calibration loop: drift-triggered online re-fit with shadow scoring, canary rollout, and automatic rollback (implies -flightrec)")
		adaptIvl  = flag.Duration("adapt-interval", time.Second, "how often the adaptation controller polls the flight recorder")
		adaptMin  = flag.Int("adapt-min-rows", 512, "harvested training pairs required before a re-fit")
		adaptShad = flag.Int("adapt-shadow-rows", 256, "realized shadow comparisons required to judge a candidate")
		adaptCan  = flag.Int("adapt-canary-rows", 256, "live realized-error samples required to commit a promotion")
		adaptMarg = flag.Float64("adapt-margin", 0.1, "relative shadow-MAPE improvement required to promote a candidate")
		adaptRegr = flag.Float64("adapt-regress", 1.5, "canary rolls back when live MAPE exceeds promise times this factor")
		ledgerOn  = flag.Bool("ledger", false, "account every decision's estimated energy delta and perf-loss versus the MaxFreq counterfactual (ledger_* series on /metrics.prom, snapshot at /debug/ledger)")
		ledgerIvl = flag.Duration("ledger-window", time.Second, "efficiency-ledger time-series window width")
		spansPath = flag.String("spans", "", "write spans for sampled traced requests to this JSONL file (dvfsstat -chrome input; empty = off)")
		faultSpec = flag.String("faults", "", "arm fault injection, e.g. 'serve.infer:panic:every=100;serve.conn:error:rate=0.01' (chaos testing)")
		faultSeed = flag.Int64("faults-seed", 1, "seed for rate-based fault injection")
		verbose   = flag.Bool("v", true, "log progress")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("ssmdvfsd", buildinfo.String())
		return
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	acfg := adaptConfig{
		Enabled:    *adaptOn,
		Interval:   *adaptIvl,
		MinRows:    *adaptMin,
		ShadowRows: *adaptShad,
		CanaryRows: *adaptCan,
		Margin:     *adaptMarg,
		Regress:    *adaptRegr,
	}
	ledgerWindow := time.Duration(0)
	if *ledgerOn {
		ledgerWindow = *ledgerIvl
	}
	if err := run(*modelPath, *httpAddr, *tcpAddr, *spansPath, *backend, *quantBits, *workers, *budget, *flightrec, ledgerWindow, *faultSpec, *faultSeed, acfg, logf); err != nil {
		fmt.Fprintln(os.Stderr, "ssmdvfsd:", err)
		os.Exit(1)
	}
}

// adaptConfig carries the -adapt* flags into run.
type adaptConfig struct {
	Enabled    bool
	Interval   time.Duration
	MinRows    int
	ShadowRows int
	CanaryRows int
	Margin     float64
	Regress    float64
}

// buildMux layers the daemon-only observability endpoints — Prometheus
// exposition, the raw telemetry dump, pprof, and (with -adapt) the
// adaptation controller's transition log — over the serving API.
func buildMux(srv *serve.Server, ctrl *adapt.Controller) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if ctrl != nil {
		mux.Handle("/debug/adapt", ctrl.Handler())
	}
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentTypeProm)
		srv.Telemetry().WriteProm(w)
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
		srv.Telemetry().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(modelPath, httpAddr, tcpAddr, spansPath, backend string, quantBits, workers int, budget time.Duration, flightrec int, ledgerWindow time.Duration, faultSpec string, faultSeed int64, acfg adaptConfig, logf func(string, ...any)) error {
	if modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	if httpAddr == "" && tcpAddr == "" {
		return fmt.Errorf("at least one of -http and -tcp is required")
	}
	m, err := serve.LoadModel(modelPath, quantBits)
	if err != nil {
		return err
	}
	logf("ssmdvfsd: loaded %s: %d levels, %d features, %d params, %d FLOPs (%d effective)",
		modelPath, m.Levels, m.NumFeatures(), m.Params(), m.FLOPs(), m.EffectiveFLOPs())

	inj, err := faults.Parse(faultSpec, faultSeed)
	if err != nil {
		return err
	}
	if inj != nil {
		logf("ssmdvfsd: FAULT INJECTION ARMED: %s (seed %d)", inj, faultSeed)
	}

	srv, err := serve.NewServer(m, serve.Options{
		ModelPath: modelPath,
		Backend:   backend,
		QuantBits: quantBits,
		Workers:   workers,
		Budget:    budget,
		Faults:    inj,
		Logf:      logf,
	})
	if err != nil {
		return err
	}
	logf("ssmdvfsd: serving with the %s inference backend", srv.BackendKind())
	srv.Telemetry().SetBuild(buildinfo.Info())
	var led *ledger.Ledger
	if ledgerWindow > 0 {
		led = ledger.New(ledger.Options{Registry: srv.Telemetry(), Window: ledgerWindow})
		srv.SetLedger(led)
		logf("ssmdvfsd: efficiency ledger armed: energy/perf-loss accounting at /debug/ledger (%s windows)", ledgerWindow)
	}
	var tracer *telemetry.Tracer
	if spansPath != "" {
		sf, err := os.Create(spansPath)
		if err != nil {
			srv.Close()
			return err
		}
		defer sf.Close()
		tracer = telemetry.NewTracer(sf)
		srv.SetTracer(tracer)
		logf("ssmdvfsd: tracing armed: sampled request spans to %s", spansPath)
	}
	if acfg.Enabled && flightrec <= 0 {
		// The flight recorder is the adaptation loop's training stream and
		// drift sensor; -adapt without -flightrec arms a default-sized one.
		flightrec = 4096
		logf("ssmdvfsd: -adapt implies a flight recorder: arming -flightrec %d", flightrec)
	}
	// The drift monitor is wired before the controller exists, so the
	// threshold callback dereferences a pointer filled in below.
	var ctrlRef atomic.Pointer[adapt.Controller]
	if flightrec > 0 {
		mopts := provenance.MonitorOptions{
			Logger: telemetry.NewLoggerFunc(logf, srv.Telemetry()),
		}
		if acfg.Enabled {
			mopts.OnThreshold = func(ev provenance.ThresholdEvent) {
				if c := ctrlRef.Load(); c != nil {
					c.NoteThreshold(ev)
				}
			}
		}
		srv.EnableProvenance(flightrec, mopts)
		logf("ssmdvfsd: flight recorder armed: last %d decisions at /debug/decisions, drift gauges on /telemetry", flightrec)
	}
	var ctrl *adapt.Controller
	var stopCtrl context.CancelFunc
	if acfg.Enabled {
		// Live MAPE feeds both the drift trigger and the canary judge.
		srv.EnablePredFeedback()
		ctrl, err = adapt.NewController(srv.Engine, adapt.Options{
			MinRows:          acfg.MinRows,
			ShadowMinSamples: acfg.ShadowRows,
			CanaryMinSamples: acfg.CanaryRows,
			Margin:           acfg.Margin,
			RegressFactor:    acfg.Regress,
			Logf:             logf,
		})
		if err != nil {
			srv.Close()
			return err
		}
		ctrlRef.Store(ctrl)
		var ctx context.Context
		ctx, stopCtrl = context.WithCancel(context.Background())
		defer stopCtrl()
		go ctrl.Run(ctx, acfg.Interval)
		logf("ssmdvfsd: online adaptation armed: drift-triggered re-fit with shadow + canary every %s, transitions at /debug/adapt", acfg.Interval)
	}

	errc := make(chan error, 2)
	if tcpAddr != "" {
		l, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			return err
		}
		logf("ssmdvfsd: binary protocol on %s", l.Addr())
		go func() { errc <- srv.ServeTCP(l) }()
	}
	var hs *http.Server
	if httpAddr != "" {
		hs = &http.Server{Addr: httpAddr, Handler: buildMux(srv, ctrl)}
		hl, err := net.Listen("tcp", httpAddr)
		if err != nil {
			srv.Close()
			return err
		}
		logf("ssmdvfsd: HTTP on %s", hl.Addr())
		go func() { errc <- hs.Serve(hl) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case err := <-errc:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
		case sig := <-sigc:
			switch sig {
			case syscall.SIGHUP:
				if err := srv.Reload(""); err != nil {
					logf("ssmdvfsd: reload failed (still serving previous model): %v", err)
				}
			default:
				logf("ssmdvfsd: %s, shutting down", sig)
				if stopCtrl != nil {
					stopCtrl()
				}
				if hs != nil {
					hs.Close()
				}
				srv.Close()
				if tracer != nil {
					if err := tracer.Flush(); err != nil {
						logf("ssmdvfsd: span flush: %v", err)
					}
				}
				snap := srv.Metrics().Snapshot(srv.Model().Levels)
				logf("ssmdvfsd: served %d decisions in %d batches, %d reloads, %d errors",
					snap.Decisions, snap.Batches, snap.Reloads, snap.Errors)
				if led != nil {
					ls := led.Snapshot()
					logf("ssmdvfsd: ledger: %s saved vs MaxFreq (%.1f%% of bill) at %.3f%% mean perf loss over %d decisions",
						ledger.FormatEnergyPJ(float64(ls.SavedPJ())), ls.SavedRatio()*100, ls.MeanPerfLoss()*100, ls.Decisions)
				}
				return nil
			}
		}
	}
}
