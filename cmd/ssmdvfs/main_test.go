package main

import "testing"

func TestParsePresets(t *testing.T) {
	got, err := parsePresets("0.10, 0.20,0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.10, 0.20, 0.5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParsePresetsErrors(t *testing.T) {
	if _, err := parsePresets(""); err == nil {
		t.Fatal("empty presets accepted")
	}
	if _, err := parsePresets("abc"); err == nil {
		t.Fatal("non-numeric preset accepted")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run("nope", "", true, 0, "0.1", func(string, ...any) {}); err == nil {
		t.Fatal("unknown command accepted")
	}
}
