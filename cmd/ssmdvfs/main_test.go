package main

import (
	"os"
	"path/filepath"
	"testing"

	"ssmdvfs/internal/telemetry"
)

func TestParsePresets(t *testing.T) {
	got, err := parsePresets("0.10, 0.20,0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.10, 0.20, 0.5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParsePresetsErrors(t *testing.T) {
	if _, err := parsePresets(""); err == nil {
		t.Fatal("empty presets accepted")
	}
	if _, err := parsePresets("abc"); err == nil {
		t.Fatal("non-numeric preset accepted")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	obs, err := newObservability("", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := run("nope", "", true, 0, "0.1", 1, obs); err == nil {
		t.Fatal("unknown command accepted")
	}
}

// TestObservabilityDump runs the quiet observability bundle end to end:
// the registry snapshot and span file must land on disk and be readable
// by the telemetry package (the same readers cmd/dvfsstat uses).
func TestObservabilityDump(t *testing.T) {
	dir := t.TempDir()
	telemPath := filepath.Join(dir, "telemetry.json")
	spansPath := filepath.Join(dir, "spans.jsonl")
	obs, err := newObservability(telemPath, spansPath, false)
	if err != nil {
		t.Fatal(err)
	}
	obs.reg.Counter("demo_total").Add(3)
	obs.tracer.Start("demo").End()
	obs.logger.Logf("line %d", 1)
	if err := obs.close(); err != nil {
		t.Fatal(err)
	}

	snap, err := telemetry.ReadSnapshotFile(telemPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["demo_total"] != 3 {
		t.Fatalf("demo_total = %d, want 3", snap.Counters["demo_total"])
	}
	if snap.Counters["log_lines_total"] != 1 {
		t.Fatalf("log_lines_total = %d, want 1", snap.Counters["log_lines_total"])
	}
	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := telemetry.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "demo" {
		t.Fatalf("spans = %+v, want one span named demo", spans)
	}
}
