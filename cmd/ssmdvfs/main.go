// Command ssmdvfs is the project CLI: it builds the SSMDVFS models
// end-to-end (data generation → training → compression) and runs every
// experiment from the paper's evaluation.
//
// Usage:
//
//	ssmdvfs pipeline -cache DIR [-quick] [-scale F]
//	ssmdvfs fig4     -cache DIR [-quick] [-presets 0.10,0.20]
//	ssmdvfs table1   -cache DIR
//	ssmdvfs table2   -cache DIR [-quick]
//	ssmdvfs fig3     -cache DIR [-quick]
//	ssmdvfs asic     -cache DIR
//	ssmdvfs sweep    -cache DIR [-quick]    (extension: EDP vs preset)
//	ssmdvfs headroom -cache DIR [-quick]    (extension: oracle headroom)
//	ssmdvfs quant    -cache DIR [-quick]    (extension: quantization)
//	ssmdvfs all      -cache DIR [-quick]
//
// The cache directory holds dataset.json, model.json and compressed.json;
// every subcommand builds missing artifacts on demand.
//
// Parallelism (any subcommand):
//
//	-j N              shard independent simulation units (per-kernel
//	                  datagen, per-(preset,kernel) sweeps, fig3/fig4
//	                  grid points) across N workers; defaults to
//	                  runtime.NumCPU(). Output is byte-identical at any
//	                  worker count.
//
// Observability flags (any subcommand):
//
//	-telemetry FILE   write the telemetry-registry snapshot (JSON) at exit;
//	                  summarize with "dvfsstat -metrics FILE"
//	-spans FILE       write pipeline phase spans (JSONL); view with
//	                  "dvfsstat -spans FILE [-chrome out.json]"
//	-cpuprofile FILE  CPU profile of the whole run
//	-memprofile FILE  heap profile at exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"ssmdvfs/internal/asic"
	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/features"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/quant"
	"ssmdvfs/internal/telemetry"
	"ssmdvfs/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "version" || cmd == "-version" || cmd == "--version" {
		fmt.Println("ssmdvfs", buildinfo.String())
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cache := fs.String("cache", "ssmdvfs-cache", "artifact cache directory")
	quick := fs.Bool("quick", false, "small GPU / short kernels (seconds instead of minutes)")
	scale := fs.Float64("scale", 0, "kernel duration scale override (0 = preset default)")
	presets := fs.String("presets", "0.10,0.20", "comma-separated performance-loss presets")
	workers := fs.Int("j", runtime.NumCPU(), "parallel workers for sharded experiment stages")
	verbose := fs.Bool("v", true, "log progress")
	telemOut := fs.String("telemetry", "", "write the telemetry snapshot (JSON) here at exit")
	spansOut := fs.String("spans", "", "write pipeline phase spans (JSONL) here")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile here")
	memProf := fs.String("memprofile", "", "write a heap profile at exit here")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	obs, err := newObservability(*telemOut, *spansOut, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmdvfs:", err)
		os.Exit(1)
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmdvfs:", err)
		os.Exit(1)
	}

	runErr := run(cmd, *cache, *quick, *scale, *presets, *workers, obs)
	stopCPU()
	if err := obs.close(); err != nil && runErr == nil {
		runErr = err
	}
	if err := telemetry.WriteHeapProfile(*memProf); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ssmdvfs:", runErr)
		os.Exit(1)
	}
}

// observability bundles the CLI's optional telemetry sinks: a registry
// dumped to JSON at exit, a span file, and the progress logger.
type observability struct {
	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	logger    *telemetry.Logger
	telemPath string
	spansFile *os.File
}

func newObservability(telemPath, spansPath string, verbose bool) (*observability, error) {
	obs := &observability{telemPath: telemPath}
	if telemPath != "" {
		obs.reg = telemetry.NewRegistry()
	}
	if spansPath != "" {
		f, err := os.Create(spansPath)
		if err != nil {
			return nil, err
		}
		obs.spansFile = f
		obs.tracer = telemetry.NewTracer(f)
	}
	var out io.Writer
	if verbose {
		out = os.Stderr
	}
	obs.logger = telemetry.NewLogger(out, obs.reg)
	return obs, nil
}

// close flushes the span file and writes the telemetry dump.
func (o *observability) close() error {
	if o.tracer != nil {
		if err := o.tracer.Flush(); err != nil {
			return err
		}
		if err := o.spansFile.Close(); err != nil {
			return err
		}
	}
	if o.reg != nil {
		return atomicfile.Write(o.telemPath, o.reg.WriteJSON)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ssmdvfs <pipeline|fig4|table1|table2|fig3|asic|sweep|headroom|quant|all|version> [flags]
run "ssmdvfs <cmd> -h" for flags`)
}

func run(cmd, cache string, quick bool, scale float64, presetsCSV string, workers int, obs *observability) error {
	opts := experiments.DefaultPipelineOptions()
	if quick {
		opts = experiments.QuickPipelineOptions()
	}
	if scale > 0 {
		opts.Scale = scale
	}
	if cache != "" {
		if err := os.MkdirAll(cache, 0o755); err != nil {
			return err
		}
	}
	opts.CacheDir = cache
	opts.Workers = workers
	opts.Logger = obs.logger
	opts.Telemetry = obs.reg
	opts.Tracer = obs.tracer

	presets, err := parsePresets(presetsCSV)
	if err != nil {
		return err
	}

	switch cmd {
	case "pipeline":
		_, err := experiments.RunPipeline(opts)
		return err
	case "fig4":
		return runFig4(opts, presets)
	case "table1":
		return runTable1(opts)
	case "table2":
		return runTable2(opts)
	case "fig3":
		return runFig3(opts, quick)
	case "asic":
		return runASIC(opts)
	case "sweep":
		return runSweep(opts)
	case "headroom":
		return runHeadroom(opts)
	case "quant":
		return runQuant(opts)
	case "all":
		if err := runTable1(opts); err != nil {
			return err
		}
		if err := runTable2(opts); err != nil {
			return err
		}
		if err := runFig3(opts, quick); err != nil {
			return err
		}
		if err := runFig4(opts, presets); err != nil {
			return err
		}
		return runASIC(opts)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parsePresets(csv string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad preset %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no presets given")
	}
	return out, nil
}

func runFig4(opts experiments.PipelineOptions, presets []float64) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	evalKernels := kernels.Evaluation()
	// Paper: the evaluation mix keeps >50% unseen; add a few training
	// kernels so seen programs are represented too.
	evalKernels = append(evalKernels, kernels.Training()[:4]...)
	res, err := experiments.RunFig4(experiments.Fig4Options{
		Sim:        opts.Sim,
		Kernels:    evalKernels,
		Scale:      opts.Scale,
		Presets:    presets,
		Model:      p.Model,
		Compressed: p.Compressed,
		Seed:       1,
		Logger:     opts.Logger,
		Workers:    opts.Workers,
		Telemetry:  opts.Telemetry,
		Tracer:     opts.Tracer,
	})
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 4: normalized EDP and latency ==")
	if err := res.WriteTable(os.Stdout); err != nil {
		return err
	}
	if opts.CacheDir != "" {
		if err := res.SaveFile(filepath.Join(opts.CacheDir, "fig4.json")); err != nil {
			return err
		}
	}
	for _, preset := range presets {
		var bars []viz.Bar
		for _, s := range res.Summaries {
			if s.Preset == preset {
				bars = append(bars, viz.Bar{Label: string(s.Mechanism), Value: s.GMeanEDP})
			}
		}
		fmt.Println()
		if err := viz.BarChart(os.Stdout,
			fmt.Sprintf("gmean normalized EDP at %.0f%% preset (lower is better):", preset*100),
			bars, 40, 1.0); err != nil {
			return err
		}
	}
	for _, variant := range []experiments.Mechanism{experiments.MechSSMDVFS, experiments.MechSSMDVFSComp} {
		h, err := res.ComputeHeadline(variant)
		if err != nil {
			return err
		}
		fmt.Printf("\nheadline (%s): EDP vs baseline %+.2f%%, vs PCSTALL %+.2f%%, vs F-LEMMA %+.2f%%\n",
			variant, h.VsBaselinePct, h.VsPCSTALLPct, h.VsFLEMMAPct)
	}
	return nil
}

func runTable1(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	res, err := experiments.RunTableI(p.Dataset, features.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("== Table I: metrics and performance counters (RFE) ==")
	return res.WriteTable(os.Stdout)
}

func runTable2(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	fmt.Println("== Table II: final model information ==")
	return experiments.RunTableII(p).WriteTable(os.Stdout)
}

func runFig3(opts experiments.PipelineOptions, quick bool) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	fig3 := experiments.DefaultFig3Options()
	fig3.TrainOpts = opts.TrainOpts
	fig3.PruneOpts = opts.PruneOpts
	fig3.Workers = opts.Workers
	fig3.Telemetry = opts.Telemetry
	fig3.Tracer = opts.Tracer
	if quick {
		fig3.Archs = fig3.Archs[:8]
		fig3.X1s = []float64{0.4, 0.6, 0.8}
		fig3.X2s = []float64{0.7, 0.9}
	}
	res, err := experiments.RunFig3(p.Dataset, p.Model, fig3)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 3: FLOPs vs accuracy and MAPE ==")
	return res.WriteTable(os.Stdout)
}

func runSweep(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	points, err := experiments.RunPresetSweep(experiments.PresetSweepOptions{
		Sim:       opts.Sim,
		Kernels:   kernels.Evaluation(),
		Scale:     opts.Scale,
		Presets:   []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50},
		Model:     p.Compressed,
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
		Tracer:    opts.Tracer,
	})
	if err != nil {
		return err
	}
	fmt.Println("== Extension: EDP/latency vs performance-loss preset ==")
	return experiments.WritePresetSweep(os.Stdout, points)
}

func runHeadroom(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	rows, err := experiments.RunHeadroom(experiments.PresetSweepOptions{
		Sim:       opts.Sim,
		Kernels:   kernels.Evaluation()[:6],
		Scale:     opts.Scale,
		Model:     p.Model,
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
		Tracer:    opts.Tracer,
	}, 0.10)
	if err != nil {
		return err
	}
	fmt.Println("== Extension: clairvoyant-oracle headroom at the 10% preset ==")
	return experiments.WriteHeadroom(os.Stdout, rows)
}

func runASIC(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	rep, err := experiments.RunASIC(p.Compressed)
	if err != nil {
		return err
	}
	fmt.Println("== Section V-D: ASIC implementation of the SSMDVFS module ==")
	return experiments.WriteASIC(os.Stdout, rep)
}

func runQuant(opts experiments.PipelineOptions) error {
	p, err := experiments.RunPipeline(opts)
	if err != nil {
		return err
	}
	points, err := quant.Sweep(p.Compressed, p.Dataset, []int{16, 12, 10, 8, 6, 4})
	if err != nil {
		return err
	}
	fmt.Println("== Extension: post-training quantization of the compressed module ==")
	fmt.Printf("%-6s %10s %8s\n", "bits", "accuracy", "mape")
	fmt.Printf("%-6s %9.2f%% %7.2f%%\n", "fp64", p.CompressedReport.Accuracy*100, p.CompressedReport.MAPE)
	for _, pt := range points {
		fmt.Printf("%-6d %9.2f%% %7.2f%%\n", pt.Bits, pt.Accuracy*100, pt.MAPE)
	}

	// Hardware cost with an INT16 MAC array.
	areaF, energyF, err := quant.HardwareScale(16)
	if err != nil {
		return err
	}
	cfg := asic.DefaultConfig()
	cfg.MACAreaUm2 *= areaF
	cfg.MACEnergyPJ *= energyF
	q16, err := quant.QuantizeModel(p.Compressed, 16)
	if err != nil {
		return err
	}
	rep, err := asic.Estimate(q16, cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nINT16 inference engine (same pipeline, integer MAC):")
	return experiments.WriteASIC(os.Stdout, rep)
}
