// Command dvfstrace runs a single kernel under one DVFS mechanism and
// dumps the per-epoch, per-cluster trace (CSV or JSON), plus a terminal
// summary: level histogram, cluster-0 level timeline, and IPC/power
// sparklines. It is the microscope for inspecting what a controller
// actually did.
//
// Usage:
//
//	dvfstrace -kernel rodinia.srad -mech ssmdvfs -preset 0.10 \
//	          -cache ssmdvfs-cache [-quick] [-o trace.csv] [-json]
//
// Mechanisms: baseline, pcstall, flemma, ssmdvfs, ssmdvfs-nocal,
// ssmdvfs-compressed, static-N (fixed level N).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/viz"
)

func main() {
	var (
		kernelName = flag.String("kernel", "rodinia.srad", "kernel name (see internal/kernels)")
		mech       = flag.String("mech", "ssmdvfs", "mechanism: baseline|pcstall|flemma|ssmdvfs|ssmdvfs-nocal|ssmdvfs-compressed|static-N")
		preset     = flag.Float64("preset", 0.10, "performance-loss preset")
		cache      = flag.String("cache", "ssmdvfs-cache", "artifact cache directory (for ssmdvfs mechanisms)")
		quick      = flag.Bool("quick", true, "use the reduced GPU configuration")
		out        = flag.String("o", "", "trace output path (default: stdout summary only)")
		asJSON     = flag.Bool("json", false, "write JSON instead of CSV")
		seed       = flag.Int64("seed", 1, "seed for stochastic mechanisms")
	)
	flag.Parse()

	if err := run(*kernelName, *mech, *preset, *cache, *quick, *out, *asJSON, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
}

func run(kernelName, mech string, preset float64, cache string, quick bool, out string, asJSON bool, seed int64) error {
	opts := experiments.DefaultPipelineOptions()
	if quick {
		opts = experiments.QuickPipelineOptions()
	}
	opts.CacheDir = cache
	opts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	spec, err := kernels.ByName(kernelName)
	if err != nil {
		return err
	}
	kernel := spec.Build(opts.Scale)

	ctrl, err := buildController(mech, preset, opts, seed)
	if err != nil {
		return err
	}

	sim, err := gpusim.New(opts.Sim, kernel)
	if err != nil {
		return err
	}
	trace := &epochtrace.Trace{}
	sim.SetObserver(trace.Observe)
	if ctrl != nil {
		sim.SetController(ctrl)
	}
	res := sim.Run(5_000_000_000_000)
	if !res.Completed {
		return fmt.Errorf("kernel did not complete")
	}

	if out != "" {
		write := trace.WriteCSV
		if asJSON {
			write = trace.WriteJSON
		}
		if err := atomicfile.Write(out, write); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(trace.Records), out)
	}

	return summarize(os.Stdout, kernelName, mech, opts.Sim, trace, res)
}

func buildController(mech string, preset float64, opts experiments.PipelineOptions, seed int64) (gpusim.Controller, error) {
	clusters := opts.Sim.Clusters
	switch {
	case mech == "baseline":
		return nil, nil
	case mech == "pcstall":
		return baselines.NewPCSTALL(opts.Sim.OPs, preset, clusters)
	case mech == "flemma":
		return baselines.NewFLEMMA(opts.Sim.OPs, preset, clusters, seed)
	case strings.HasPrefix(mech, "static-"):
		lvl, err := strconv.Atoi(strings.TrimPrefix(mech, "static-"))
		if err != nil {
			return nil, fmt.Errorf("bad static level in %q: %w", mech, err)
		}
		return &baselines.Static{Level: lvl}, nil
	case strings.HasPrefix(mech, "ssmdvfs"):
		pipeline, err := experiments.RunPipeline(opts)
		if err != nil {
			return nil, err
		}
		model := pipeline.Model
		calibrate := true
		switch mech {
		case "ssmdvfs":
		case "ssmdvfs-nocal":
			calibrate = false
		case "ssmdvfs-compressed":
			model = pipeline.Compressed
		default:
			return nil, fmt.Errorf("unknown mechanism %q", mech)
		}
		return core.NewController(model, preset, clusters, calibrate)
	default:
		return nil, fmt.Errorf("unknown mechanism %q", mech)
	}
}

func summarize(w *os.File, kernel, mech string, cfg gpusim.Config, trace *epochtrace.Trace, res gpusim.Result) error {
	fmt.Fprintf(w, "kernel=%s mechanism=%s\n", kernel, mech)
	fmt.Fprintf(w, "exec=%.1fus energy=%.2fmJ edp=%.3e J·s transitions=%d epochs=%d\n\n",
		float64(res.ExecTimePs)/1e6, res.EnergyPJ/1e9, res.EDP(), res.Transitions, res.Epochs)

	labels := make([]string, cfg.OPs.Len())
	for i := range labels {
		labels[i] = cfg.OPs.Point(i).String()
	}
	if err := viz.Histogram(w, "epochs per operating point:", labels, trace.LevelHistogram(cfg.OPs.Len()), 40); err != nil {
		return err
	}

	c0 := trace.Cluster(0)
	if len(c0) > 0 {
		levels := make([]int, len(c0))
		ipc := make([]float64, len(c0))
		power := make([]float64, len(c0))
		for i, r := range c0 {
			levels[i] = r.Level
			ipc[i] = r.IPC
			power[i] = r.PowerW
		}
		fmt.Fprintf(w, "\ncluster 0 levels: %s\n", viz.LevelTimeline(levels, 8))
		fmt.Fprintf(w, "cluster 0 IPC:    %s\n", viz.Sparkline(ipc))
		fmt.Fprintf(w, "cluster 0 power:  %s  (mean %.1f W)\n", viz.Sparkline(power), trace.MeanPowerW())
	}
	return nil
}
