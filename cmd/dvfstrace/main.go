// Command dvfstrace runs a single kernel under one DVFS mechanism and
// dumps the per-epoch, per-cluster trace (CSV or JSON), plus a terminal
// summary: level histogram, cluster-0 level timeline, and IPC/power
// sparklines. It is the microscope for inspecting what a controller
// actually did.
//
// Usage:
//
//	dvfstrace -kernel rodinia.srad -mech ssmdvfs -preset 0.10 \
//	          -cache ssmdvfs-cache [-quick] [-o trace.csv] [-json]
//	          [-telemetry telem.json] [-v]
//
// Mechanisms: baseline, pcstall, flemma, ssmdvfs, ssmdvfs-nocal,
// ssmdvfs-compressed, static-N (fixed level N).
//
// With -telemetry a gpusim.TelemetryCollector rides along with the trace
// observer and the per-level residency, stall breakdown, and IPC
// histogram land in FILE — summarize with "dvfsstat -metrics FILE".
//
// With -flightrec (ssmdvfs mechanisms only) every controller decision is
// captured in a provenance flight recorder — raw counters, derived
// features, logits, calibration state, reason — and dumped to FILE as
// JSONL at exit; summarize with "dvfsstat -decisions FILE". In the
// simulator the trace itself is ground truth, so the dump supports
// offline audits of exactly what the model saw and answered.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/epochtrace"
	"ssmdvfs/internal/experiments"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
	"ssmdvfs/internal/viz"
)

func main() {
	var (
		kernelName = flag.String("kernel", "rodinia.srad", "kernel name (see internal/kernels)")
		mech       = flag.String("mech", "ssmdvfs", "mechanism: baseline|pcstall|flemma|ssmdvfs|ssmdvfs-nocal|ssmdvfs-compressed|static-N")
		preset     = flag.Float64("preset", 0.10, "performance-loss preset")
		cache      = flag.String("cache", "ssmdvfs-cache", "artifact cache directory (for ssmdvfs mechanisms)")
		quick      = flag.Bool("quick", true, "use the reduced GPU configuration")
		out        = flag.String("o", "", "trace output path (default: stdout summary only)")
		asJSON     = flag.Bool("json", false, "write JSON instead of CSV")
		seed       = flag.Int64("seed", 1, "seed for stochastic mechanisms")
		telemOut   = flag.String("telemetry", "", "write a telemetry snapshot (sim residency/stalls) here")
		flightrec  = flag.String("flightrec", "", "write a decision-provenance flight-recorder dump (JSONL) here (ssmdvfs mechanisms)")
		verbose    = flag.Bool("v", false, "log pipeline progress to stderr")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dvfstrace", buildinfo.String())
		return
	}

	if err := run(*kernelName, *mech, *preset, *cache, *quick, *out, *asJSON, *seed, *telemOut, *flightrec, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "dvfstrace:", err)
		os.Exit(1)
	}
}

// flightrecCap bounds the in-memory flight recorder: the last 64Ki
// decisions, plenty for a quick-config run while keeping the ring flat.
const flightrecCap = 1 << 16

func run(kernelName, mech string, preset float64, cache string, quick bool, out string, asJSON bool, seed int64, telemOut, flightrec string, verbose bool) error {
	opts := experiments.DefaultPipelineOptions()
	if quick {
		opts = experiments.QuickPipelineOptions()
	}
	opts.CacheDir = cache
	var logOut io.Writer
	if verbose {
		logOut = os.Stderr
	}
	var reg *telemetry.Registry
	if telemOut != "" {
		reg = telemetry.NewRegistry()
	}
	opts.Logger = telemetry.NewLogger(logOut, reg)

	spec, err := kernels.ByName(kernelName)
	if err != nil {
		return err
	}
	kernel := spec.Build(opts.Scale)

	ctrl, model, err := buildController(mech, preset, opts, seed)
	if err != nil {
		return err
	}

	var rec *provenance.Recorder
	if flightrec != "" {
		if model == nil {
			return fmt.Errorf("-flightrec needs an ssmdvfs mechanism (%q keeps no decision provenance)", mech)
		}
		rec = provenance.NewRecorder(flightrecCap)
		var mon *provenance.Monitor
		if reg != nil {
			mon = provenance.NewMonitor(reg, provenance.MonitorOptions{Logger: opts.Logger})
			mon.SetTrainingStats(model.TrainingStats())
		}
		if !experiments.AttachProvenance(ctrl, rec, mon) {
			return fmt.Errorf("controller for %q does not record provenance", mech)
		}
	}

	sim, err := gpusim.New(opts.Sim, kernel)
	if err != nil {
		return err
	}
	trace := &epochtrace.Trace{}
	observe := gpusim.EpochObserver(trace.Observe)
	if reg != nil {
		col := gpusim.NewTelemetryCollector(reg, opts.Sim.OPs.Len())
		observe = gpusim.ChainObservers(trace.Observe, col.Observe)
	}
	sim.SetObserver(observe)
	if ctrl != nil {
		sim.SetController(ctrl)
	}
	res := sim.Run(5_000_000_000_000)
	if !res.Completed {
		return fmt.Errorf("kernel did not complete")
	}

	if out != "" {
		write := trace.WriteCSV
		if asJSON {
			write = trace.WriteJSON
		}
		if err := atomicfile.Write(out, write); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(trace.Records), out)
	}
	if reg != nil {
		if err := atomicfile.Write(telemOut, reg.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote telemetry snapshot to %s\n", telemOut)
	}
	if rec != nil {
		if err := provenance.WriteFile(flightrec, experiments.ProvenanceHeader(model), rec); err != nil {
			return err
		}
		kept := int(rec.Head())
		if kept > rec.Cap() {
			kept = rec.Cap()
		}
		fmt.Fprintf(os.Stderr, "wrote %d decision records (of %d made) to %s\n", kept, rec.Head(), flightrec)
	}

	return summarize(os.Stdout, kernelName, mech, opts.Sim, trace, res)
}

// buildController returns the mechanism's controller plus, for ssmdvfs
// mechanisms, the model behind it (the flight-recorder dump needs the
// model's training statistics for its attribution header).
func buildController(mech string, preset float64, opts experiments.PipelineOptions, seed int64) (gpusim.Controller, *core.Model, error) {
	clusters := opts.Sim.Clusters
	switch {
	case mech == "baseline":
		return nil, nil, nil
	case mech == "pcstall":
		ctrl, err := baselines.NewPCSTALL(opts.Sim.OPs, preset, clusters)
		return ctrl, nil, err
	case mech == "flemma":
		ctrl, err := baselines.NewFLEMMA(opts.Sim.OPs, preset, clusters, seed)
		return ctrl, nil, err
	case strings.HasPrefix(mech, "static-"):
		lvl, err := strconv.Atoi(strings.TrimPrefix(mech, "static-"))
		if err != nil {
			return nil, nil, fmt.Errorf("bad static level in %q: %w", mech, err)
		}
		return &baselines.Static{Level: lvl}, nil, nil
	case strings.HasPrefix(mech, "ssmdvfs"):
		pipeline, err := experiments.RunPipeline(opts)
		if err != nil {
			return nil, nil, err
		}
		model := pipeline.Model
		calibrate := true
		switch mech {
		case "ssmdvfs":
		case "ssmdvfs-nocal":
			calibrate = false
		case "ssmdvfs-compressed":
			model = pipeline.Compressed
		default:
			return nil, nil, fmt.Errorf("unknown mechanism %q", mech)
		}
		ctrl, err := experiments.NewSSMDVFS(model, preset, opts.Sim, calibrate)
		return ctrl, model, err
	default:
		return nil, nil, fmt.Errorf("unknown mechanism %q", mech)
	}
}

func summarize(w *os.File, kernel, mech string, cfg gpusim.Config, trace *epochtrace.Trace, res gpusim.Result) error {
	fmt.Fprintf(w, "kernel=%s mechanism=%s\n", kernel, mech)
	fmt.Fprintf(w, "exec=%.1fus energy=%.2fmJ edp=%.3e J·s transitions=%d epochs=%d\n\n",
		float64(res.ExecTimePs)/1e6, res.EnergyPJ/1e9, res.EDP(), res.Transitions, res.Epochs)

	labels := make([]string, cfg.OPs.Len())
	for i := range labels {
		labels[i] = cfg.OPs.Point(i).String()
	}
	if err := viz.Histogram(w, "epochs per operating point:", labels, trace.LevelHistogram(cfg.OPs.Len()), 40); err != nil {
		return err
	}

	c0 := trace.Cluster(0)
	if len(c0) > 0 {
		levels := make([]int, len(c0))
		ipc := make([]float64, len(c0))
		power := make([]float64, len(c0))
		for i, r := range c0 {
			levels[i] = r.Level
			ipc[i] = r.IPC
			power[i] = r.PowerW
		}
		fmt.Fprintf(w, "\ncluster 0 levels: %s\n", viz.LevelTimeline(levels, 8))
		fmt.Fprintf(w, "cluster 0 IPC:    %s\n", viz.Sparkline(ipc))
		fmt.Fprintf(w, "cluster 0 power:  %s  (mean %.1f W)\n", viz.Sparkline(power), trace.MeanPowerW())
	}
	return nil
}
