package main

import (
	"testing"

	"ssmdvfs/internal/experiments"
)

func TestBuildControllerStaticAndAnalytical(t *testing.T) {
	opts := experiments.QuickPipelineOptions()
	cases := map[string]string{
		"baseline": "",
		"pcstall":  "pcstall",
		"flemma":   "flemma",
		"static-2": "static-2",
	}
	for mech, wantName := range cases {
		ctrl, model, err := buildController(mech, 0.10, opts, 1)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if model != nil {
			t.Fatalf("%s: analytical mechanism returned a model", mech)
		}
		if mech == "baseline" {
			if ctrl != nil {
				t.Fatal("baseline must have no controller")
			}
			continue
		}
		if ctrl.Name() != wantName {
			t.Fatalf("%s: Name() = %q", mech, ctrl.Name())
		}
	}
}

func TestBuildControllerRejectsUnknown(t *testing.T) {
	opts := experiments.QuickPipelineOptions()
	if _, _, err := buildController("magic", 0.10, opts, 1); err != nil {
		return
	}
	t.Fatal("unknown mechanism accepted")
}

func TestBuildControllerRejectsBadStaticLevel(t *testing.T) {
	opts := experiments.QuickPipelineOptions()
	if _, _, err := buildController("static-x", 0.10, opts, 1); err == nil {
		t.Fatal("bad static level accepted")
	}
}
