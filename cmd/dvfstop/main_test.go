package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
)

// testSnapshot builds a real ledger, feeds it deterministic decisions,
// and returns its snapshot — so the dashboard is tested against the
// exact shape replicas serve.
func testSnapshot(t *testing.T, n int) ledger.Snapshot {
	t.Helper()
	led := ledger.New(ledger.Options{Now: func() time.Time { return time.Unix(100, 0) }})
	feats := make([]float64, counters.Num)
	for i := range feats {
		feats[i] = float64(i%7) * 0.5
	}
	for i := 0; i < n; i++ {
		led.Observe(int32(i%3), 1, i%6, feats, 0.1)
	}
	return led.Snapshot()
}

func TestParseDetectsReplicaAndFleetShapes(t *testing.T) {
	snap := testSnapshot(t, 12)

	var raw bytes.Buffer
	if err := snap.WriteJSON(&raw); err != nil {
		t.Fatal(err)
	}
	v, err := parse("http://replica", raw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v.fleet {
		t.Fatal("bare snapshot parsed as fleet aggregate")
	}
	if v.merged.Decisions != snap.Decisions {
		t.Fatalf("decisions = %d, want %d", v.merged.Decisions, snap.Decisions)
	}

	agg := fleet.LedgerAggregate{
		AtUnix: 1700000000,
		Merged: snap,
		Replicas: []ledger.ReplicaLedger{
			{Addr: "http://r1", Snapshot: snap},
			{Addr: "http://r2", Err: "connection refused"},
		},
		Alerts: []ledger.AlertState{
			{Rule: ledger.Rule{Name: "burn", Kind: ledger.KindBurn, Threshold: 1.5}, Value: 2.2, Firing: true, Detail: "over budget"},
			{Rule: ledger.Rule{Name: "stale", Kind: ledger.KindStale, Threshold: 15}, Value: 3},
		},
	}
	var aggBuf bytes.Buffer
	if err := agg.WriteJSON(&aggBuf); err != nil {
		t.Fatal(err)
	}
	fv, err := parse("http://router", aggBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !fv.fleet {
		t.Fatal("aggregate not detected as fleet shape")
	}
	if len(fv.replicas) != 2 || len(fv.alerts) != 2 || fv.atUnix != agg.AtUnix {
		t.Fatalf("fleet view = %+v", fv)
	}
}

func TestRenderFleetFrame(t *testing.T) {
	snap := testSnapshot(t, 30)
	v := view{
		src:    "http://router:8093",
		atUnix: 1700000000,
		merged: snap,
		fleet:  true,
		replicas: []ledger.ReplicaLedger{
			{Addr: "http://r1:8090", Snapshot: snap},
			{Addr: "http://r2:8090", Err: "404 Not Found"},
		},
		alerts: []ledger.AlertState{
			{Rule: ledger.Rule{Name: "burn", Threshold: 1.5}, Value: 2.25, Firing: true, Detail: "window burn"},
			{Rule: ledger.Rule{Name: "stale", Threshold: 15}, Value: 0},
		},
	}
	var buf bytes.Buffer
	render(&buf, v)
	out := buf.String()
	for _, want := range []string{
		"fleet efficiency ledger",
		"http://router:8093",
		"energy saved",
		"decisions",
		"alerts: 1/2 firing",
		"FIRING",
		"burn",
		"window burn",
		"level=0",
		"cluster=0",
		"http://r1:8090",
		"ERR 404 Not Found",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}

	// Frames are deterministic: the same view renders byte-identically.
	var again bytes.Buffer
	render(&again, v)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("render is not deterministic for the same view")
	}
}

func TestRenderReplicaFrameOmitsFleetSections(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, view{src: "http://r1", merged: testSnapshot(t, 5)})
	out := buf.String()
	if !strings.Contains(out, "replica efficiency ledger") {
		t.Fatalf("missing replica scope line:\n%s", out)
	}
	for _, nope := range []string{"alerts:", "scraped", "status"} {
		if strings.Contains(out, nope) {
			t.Fatalf("replica frame unexpectedly contains %q:\n%s", nope, out)
		}
	}
}

// TestRunOnceAgainstHTTP drives the full -once path against both server
// shapes over real HTTP.
func TestRunOnceAgainstHTTP(t *testing.T) {
	snap := testSnapshot(t, 8)

	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/ledger" {
			http.NotFound(w, r)
			return
		}
		snap.WriteJSON(w)
	}))
	defer replica.Close()
	var buf bytes.Buffer
	if err := run(&buf, replica.URL+"/", 0, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replica efficiency ledger") {
		t.Fatalf("replica -once frame:\n%s", buf.String())
	}

	agg := fleet.LedgerAggregate{AtUnix: 1700000000, Merged: snap,
		Replicas: []ledger.ReplicaLedger{{Addr: "r1", Snapshot: snap}}}
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agg.WriteJSON(w)
	}))
	defer router.Close()
	buf.Reset()
	if err := run(&buf, router.URL, 0, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fleet efficiency ledger") {
		t.Fatalf("fleet -once frame:\n%s", buf.String())
	}
}

func TestRunOnceSurfacesHTTPError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "ledger disabled", http.StatusNotFound)
	}))
	defer ts.Close()
	err := run(&bytes.Buffer{}, ts.URL, 0, true)
	if err == nil || !strings.Contains(err.Error(), "ledger disabled") {
		t.Fatalf("err = %v, want ledger-disabled error", err)
	}
}
