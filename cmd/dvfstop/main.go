// Command dvfstop is the live terminal dashboard over the fleet
// efficiency ledger: it polls a router's (or a single replica's)
// /debug/ledger endpoint and renders what the system is actually
// optimizing — estimated energy saved versus running everything at
// MaxFreq, mean performance loss against the requested budget, the
// per-level/per-shard breakdown, and any firing alert rules.
//
// Usage:
//
//	dvfstop -url http://router:8093 [-interval 1s] [-once]
//
// Point -url at a dvfsfleet router started with -replica-http for the
// fleet-wide merged view (per-replica rows included), or directly at one
// ssmdvfsd replica started with -ledger for a single-replica view.
// -once renders a single frame without clearing the screen and exits —
// the scriptable mode smoke tests use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/fleet"
	"ssmdvfs/internal/ledger"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8093", "router or replica base URL (its /debug/ledger is polled)")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dvfstop", buildinfo.String())
		return
	}
	if err := run(os.Stdout, *url, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "dvfstop:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, url string, interval time.Duration, once bool) error {
	url = strings.TrimRight(url, "/")
	if once {
		v, err := fetch(url)
		if err != nil {
			return err
		}
		render(w, v)
		return nil
	}
	for {
		v, err := fetch(url)
		fmt.Fprint(w, "\x1b[H\x1b[2J") // home + clear
		if err != nil {
			fmt.Fprintf(w, "dvfstop: %v (retrying every %s)\n", err, interval)
		} else {
			render(w, v)
		}
		time.Sleep(interval)
	}
}

// view is what one frame renders: the merged snapshot plus, when the
// source is a router, the per-replica rows and alert states.
type view struct {
	src      string
	atUnix   int64
	merged   ledger.Snapshot
	replicas []ledger.ReplicaLedger
	alerts   []ledger.AlertState
	fleet    bool
}

// fetch pulls /debug/ledger and accepts either payload shape: a router's
// LedgerAggregate (has a "merged" key) or a bare replica Snapshot.
func fetch(url string) (view, error) {
	resp, err := http.Get(url + "/debug/ledger")
	if err != nil {
		return view{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return view{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return view{}, fmt.Errorf("GET %s/debug/ledger: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return parse(url, body)
}

func parse(src string, body []byte) (view, error) {
	var probe struct {
		Merged *json.RawMessage `json:"merged"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return view{}, fmt.Errorf("parse %s/debug/ledger: %w", src, err)
	}
	if probe.Merged != nil {
		agg, err := fleet.ReadLedgerAggregate(strings.NewReader(string(body)))
		if err != nil {
			return view{}, err
		}
		return view{src: src, atUnix: agg.AtUnix, merged: agg.Merged,
			replicas: agg.Replicas, alerts: agg.Alerts, fleet: true}, nil
	}
	snap, err := ledger.ReadSnapshot(strings.NewReader(string(body)))
	if err != nil {
		return view{}, err
	}
	return view{src: src, merged: snap}, nil
}

// render writes one deterministic dashboard frame.
func render(w io.Writer, v view) {
	scope := "replica"
	if v.fleet {
		scope = "fleet"
	}
	fmt.Fprintf(w, "dvfstop — %s efficiency ledger — %s\n", scope, v.src)
	if v.atUnix > 0 {
		fmt.Fprintf(w, "scraped %s\n", time.Unix(v.atUnix, 0).UTC().Format(time.RFC3339))
	}
	s := v.merged
	fmt.Fprintf(w, "\n  energy saved   %10s   (%.1f%% of the MaxFreq bill)\n",
		ledger.FormatEnergyPJ(float64(s.SavedPJ())), s.SavedRatio()*100)
	fmt.Fprintf(w, "  perf loss      %9.3f%%   mean (budget %.3f%%, burn %.2fx)\n",
		s.MeanPerfLoss()*100, s.MeanPreset()*100, s.BudgetBurn())
	fmt.Fprintf(w, "  decisions      %10d   (%d skipped)\n", s.Decisions, s.Skipped)

	firing := 0
	for _, a := range v.alerts {
		if a.Firing {
			firing++
		}
	}
	switch {
	case len(v.alerts) == 0 && v.fleet:
		fmt.Fprintf(w, "\n  alerts: none configured\n")
	case v.fleet:
		fmt.Fprintf(w, "\n  alerts: %d/%d firing\n", firing, len(v.alerts))
		for _, a := range v.alerts {
			state := "   ok  "
			if a.Firing {
				state = " FIRING"
			}
			fmt.Fprintf(w, "  %s  %-8s value %8.2f  threshold %g", state, a.Rule.Name, a.Value, a.Rule.Threshold)
			if a.Detail != "" {
				fmt.Fprintf(w, "  (%s)", a.Detail)
			}
			fmt.Fprintln(w)
		}
	}

	if levels := groupRows(s, "level="); len(levels) > 0 {
		fmt.Fprintf(w, "\n  %-12s %10s %12s %10s\n", "level", "decisions", "saved", "loss")
		for _, g := range levels {
			fmt.Fprintf(w, "  %-12s %10d %12s %9.3f%%\n", g.key, g.g.Decisions,
				ledger.FormatEnergyPJ(float64(g.g.EnergyMaxPJ-g.g.EnergyPJ)), meanLossPct(g.g))
		}
	}
	if shards := groupRows(s, "cluster="); len(shards) > 0 {
		fmt.Fprintf(w, "\n  %-12s %10s %12s %10s\n", "cluster", "decisions", "saved", "loss")
		for _, g := range shards {
			fmt.Fprintf(w, "  %-12s %10d %12s %9.3f%%\n", g.key, g.g.Decisions,
				ledger.FormatEnergyPJ(float64(g.g.EnergyMaxPJ-g.g.EnergyPJ)), meanLossPct(g.g))
		}
	}

	if len(v.replicas) > 0 {
		fmt.Fprintf(w, "\n  %-28s %10s %12s  %s\n", "replica", "decisions", "saved", "status")
		for _, r := range v.replicas {
			status := "ok"
			if r.Err != "" {
				status = "ERR " + r.Err
			}
			fmt.Fprintf(w, "  %-28s %10d %12s  %s\n", r.Addr, r.Snapshot.Decisions,
				ledger.FormatEnergyPJ(float64(r.Snapshot.SavedPJ())), status)
		}
	}
}

type groupRow struct {
	key string
	g   ledger.Group
}

// groupRows selects one breakdown family out of the snapshot's flat
// group map, sorted by key for a stable frame.
func groupRows(s ledger.Snapshot, prefix string) []groupRow {
	var out []groupRow
	for k, g := range s.Groups {
		if strings.HasPrefix(k, prefix) {
			out = append(out, groupRow{key: k, g: g})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: "level=2" before "level=10".
		a, b := out[i].key, out[j].key
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

func meanLossPct(g ledger.Group) float64 {
	if g.Decisions <= 0 {
		return 0
	}
	return float64(g.PerfLossPpmSum) / 1e6 / float64(g.Decisions) * 100
}
