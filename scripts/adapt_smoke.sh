#!/usr/bin/env bash
# Online-adaptation smoke test, two halves:
#
#   1. Daemon wiring: a race-instrumented ssmdvfsd starts with -adapt,
#      /debug/adapt answers with the controller in its monitoring state
#      and an adapt_state gauge on /telemetry, and the daemon shuts
#      down cleanly — proving the controller loop starts and stops with
#      the process.
#   2. Full lifecycle: the adaptation chaos test under the race
#      detector — live traffic drifts, the controller re-fits, shadow
#      scores, promotes a canary, a forced regression rolls it back,
#      and the test asserts zero errored requests, zero decisions from
#      an unvalidated generation, and the full transition history.
#
# With ADAPT_ARTIFACT_DIR set, the chaos test dumps its /debug/adapt
# transition log there (pass or fail) and the daemon half copies its
# log + scraped /debug/adapt alongside, so CI can upload the whole
# story as artifacts.
#
# Usage: scripts/adapt_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MODEL=testdata/bench-cache/compressed.json
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)"
    # shellcheck disable=SC2086  # one pid per word, not one argument
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    wait 2>/dev/null || true
    if [ -n "${ADAPT_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$ADAPT_ARTIFACT_DIR"
        cp -r "$LOGS"/. "$ADAPT_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$BIN"
    echo "logs kept in $LOGS"
}
trap cleanup EXIT

HTTP=127.0.0.1:19301
TCP=127.0.0.1:19302

wait_port() {
    local host="${1%%:*}" port="${1##*:}"
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "adapt_smoke: timeout waiting for $1" >&2
    return 1
}

echo "== building (race) =="
go build -race -o "$BIN/ssmdvfsd" ./cmd/ssmdvfsd

echo "== starting ssmdvfsd -adapt =="
"$BIN/ssmdvfsd" -model "$MODEL" -http "$HTTP" -tcp "$TCP" -adapt \
    -adapt-interval 100ms >"$LOGS/ssmdvfsd.log" 2>&1 &
DAEMON_PID=$!
wait_port "$HTTP"

echo "== checking /debug/adapt =="
curl -fsS "http://$HTTP/debug/adapt" >"$LOGS/debug-adapt.json"
if ! grep -q '"state": "monitoring"' "$LOGS/debug-adapt.json"; then
    echo "adapt_smoke: FAIL — controller not monitoring:" >&2
    cat "$LOGS/debug-adapt.json" >&2
    exit 1
fi
curl -fsS "http://$HTTP/telemetry" >"$LOGS/telemetry.json"
if ! grep -q 'adapt_state' "$LOGS/telemetry.json"; then
    echo "adapt_smoke: FAIL — adapt_* series missing from /telemetry" >&2
    exit 1
fi

echo "== shutting daemon down =="
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
if ! grep -q 'online adaptation armed' "$LOGS/ssmdvfsd.log"; then
    echo "adapt_smoke: FAIL — daemon never armed the adaptation loop" >&2
    cat "$LOGS/ssmdvfsd.log" >&2
    exit 1
fi

echo "== running adaptation chaos lifecycle (race) =="
ADAPT_ARTIFACT_DIR="$LOGS" \
    go test -race -run TestChaosAdaptationLifecycle -v -count=1 \
    ./internal/adapt/ | tee "$LOGS/chaos.log"

echo "adapt_smoke: PASS"
