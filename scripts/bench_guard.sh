#!/usr/bin/env bash
# bench_guard.sh — decisions/sec/core regression guard.
#
# Runs BenchmarkServe_DecisionThroughput (loopback TCP, one connection
# per core) and compares the batched backends' throughput against the
# row-at-a-time float64/batch1 configuration — the seed serving shape —
# measured in the same run. Guarding the speedup ratio instead of raw
# decisions/s keeps the check meaningful on any runner hardware: a slow
# CI box slows numerator and denominator together.
#
# Against testdata/bench_baseline.json it enforces:
#   1. int8 coalesced batches of 8 stay >= min_speedup_int8_batch8
#      (the PR acceptance floor, never relaxed), and
#   2. every tracked speedup stays within `tolerance` (default 10%) of
#      its committed baseline_* value.
#
# Usage:
#   scripts/bench_guard.sh            # check against the baseline
#   scripts/bench_guard.sh -update    # rewrite baselines from this run
#   BENCHTIME=2s scripts/bench_guard.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=testdata/bench_baseline.json
BENCHTIME=${BENCHTIME:-1s}

out=$(go test -run '^$' -bench 'BenchmarkServe_DecisionThroughput' -benchtime "$BENCHTIME" .)
echo "$out"
echo

# rate <sub-benchmark regex>: the decisions/s metric of one sub-benchmark.
rate() {
  echo "$out" | awk -v name="$1" '$1 ~ name {
    for (i = 1; i < NF; i++) if ($(i+1) == "decisions/s") { print $i; exit }
  }'
}

# jget <key>: a numeric field from the flat baseline JSON.
jget() {
  sed -n 's/.*"'"$1"'": *\([0-9.]*\).*/\1/p' "$BASELINE" | head -1
}

# Sub-benchmark names carry a -GOMAXPROCS suffix only on multi-proc
# runs, so accept both forms.
f64b1=$(rate 'backend=float64/batch1(-[0-9]+)?$')
f64b64=$(rate 'backend=float64/batch64(-[0-9]+)?$')
i8b8=$(rate 'backend=int8/batch8(-[0-9]+)?$')
i8b64=$(rate 'backend=int8/batch64(-[0-9]+)?$')
for v in "$f64b1" "$f64b64" "$i8b8" "$i8b64"; do
  if [ -z "$v" ]; then
    echo "bench_guard: missing decisions/s metric in benchmark output" >&2
    exit 1
  fi
done

speedup() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }
s_i8b8=$(speedup "$i8b8" "$f64b1")
s_i8b64=$(speedup "$i8b64" "$f64b1")
s_f64b64=$(speedup "$f64b64" "$f64b1")

echo "bench_guard: row-at-a-time float64/batch1 = $f64b1 decisions/s/core"
echo "bench_guard: speedup int8/batch8    = ${s_i8b8}x"
echo "bench_guard: speedup int8/batch64   = ${s_i8b64}x"
echo "bench_guard: speedup float64/batch64 = ${s_f64b64}x"

if [ "${1:-}" = "-update" ]; then
  tmp=$(mktemp)
  sed -e 's/\("baseline_speedup_int8_batch8": *\)[0-9.]*/\1'"$s_i8b8"'/' \
      -e 's/\("baseline_speedup_int8_batch64": *\)[0-9.]*/\1'"$s_i8b64"'/' \
      -e 's/\("baseline_speedup_float64_batch64": *\)[0-9.]*/\1'"$s_f64b64"'/' \
      "$BASELINE" > "$tmp"
  mv "$tmp" "$BASELINE"
  echo "bench_guard: baselines updated in $BASELINE"
  exit 0
fi

min_s8=$(jget min_speedup_int8_batch8)
base_s8=$(jget baseline_speedup_int8_batch8)
base_s64=$(jget baseline_speedup_int8_batch64)
base_f64=$(jget baseline_speedup_float64_batch64)
tol=$(jget tolerance)

fail=0
# at_least <label> <current> <floor>
at_least() {
  if ! awk -v c="$2" -v f="$3" 'BEGIN { exit !(c >= f) }'; then
    echo "bench_guard: FAIL: $1 = ${2}x, need >= ${3}x" >&2
    fail=1
  fi
}
floor() { awk -v b="$1" -v t="$2" 'BEGIN { printf "%.2f", b * (1 - t) }'; }

at_least "int8/batch8 acceptance speedup" "$s_i8b8" "$min_s8"
at_least "int8/batch8 speedup vs baseline" "$s_i8b8" "$(floor "$base_s8" "$tol")"
at_least "int8/batch64 speedup vs baseline" "$s_i8b64" "$(floor "$base_s64" "$tol")"
at_least "float64/batch64 speedup vs baseline" "$s_f64b64" "$(floor "$base_f64" "$tol")"

if [ "$fail" -ne 0 ]; then
  echo "bench_guard: decisions/sec/core regressed >$(awk -v t="$tol" 'BEGIN { printf "%.0f", t*100 }')% vs $BASELINE" >&2
  exit 1
fi
echo "bench_guard: OK"
