#!/usr/bin/env bash
# Ledger smoke test: three race-instrumented ssmdvfsd replicas — two with
# the efficiency ledger armed, one deliberately WITHOUT it so its
# /debug/ledger 404s on every scrape — behind a dvfsfleet router whose
# ledger plane scrapes all three, with dvfsload driving keyed traffic
# through the stack. Passes when:
#
#   1. the load run completes with zero errored requests, and its exit
#      report carries the fleet efficiency summary (-ledger);
#   2. the router's merged /metrics.prom exposes the ledger_fleet_*
#      gauges with nonzero decisions and the exposition passes
#      dvfsstat -promlint;
#   3. the deliberately ledger-less replica trips the stale alert:
#      alert_firing{rule="stale"} is 1 on the router (an alert rule fired
#      end to end, not just in unit tests);
#   4. dvfstop -once renders a frame from the router AND from a ledgered
#      replica;
#   5. the offline cross-check agrees: a replica's flight-recorder dump
#      replayed through dvfsstat -ledger matches its own online
#      /debug/ledger snapshot within the documented 2% tolerance.
#
# With FLEET_ARTIFACT_DIR set, all logs and the scraped /debug/ledger
# aggregate are copied there on exit — pass or fail — so CI can upload
# them as artifacts either way.
#
# Usage: scripts/ledger_smoke.sh [duration]   (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-3s}"
MODEL=testdata/bench-cache/compressed.json
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)"
    # shellcheck disable=SC2086  # one pid per word, not one argument
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    wait 2>/dev/null || true
    if [ -n "${FLEET_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$FLEET_ARTIFACT_DIR"
        cp -r "$LOGS"/. "$FLEET_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$BIN"
    echo "logs kept in $LOGS"
}
trap cleanup EXIT

R1=127.0.0.1:19301
R2=127.0.0.1:19302
R3=127.0.0.1:19303
FLEET_TCP=127.0.0.1:19304
FLEET_HTTP=127.0.0.1:19305
R1_HTTP=127.0.0.1:19306
R2_HTTP=127.0.0.1:19307
R3_HTTP=127.0.0.1:19308

wait_port() {
    local host="${1%%:*}" port="${1##*:}"
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "ledger_smoke: timeout waiting for $1" >&2
    return 1
}

echo "== building (race) =="
go build -race -o "$BIN/ssmdvfsd" ./cmd/ssmdvfsd
go build -race -o "$BIN/dvfsfleet" ./cmd/dvfsfleet
go build -race -o "$BIN/dvfsload" ./cmd/dvfsload
go build -o "$BIN/dvfsstat" ./cmd/dvfsstat
go build -o "$BIN/dvfstop" ./cmd/dvfstop

echo "== starting replicas (ledger on r1/r2, deliberately off on r3) =="
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R1" -http "$R1_HTTP" -flightrec 65536 \
    -ledger >"$LOGS/r1.log" 2>&1 &
R1_PID=$!
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R2" -http "$R2_HTTP" -flightrec 65536 \
    -ledger >"$LOGS/r2.log" 2>&1 &
R2_PID=$!
# No -ledger: its /debug/ledger 404s, every scrape errors, and its
# decision watermark never advances — the stale alert must fire.
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R3" -http "$R3_HTTP" \
    >"$LOGS/r3.log" 2>&1 &
R3_PID=$!
wait_port "$R1"
wait_port "$R2"
wait_port "$R3"

echo "== starting router (ledger plane scraping all three) =="
"$BIN/dvfsfleet" -replicas "$R1,$R2,$R3" -tcp "$FLEET_TCP" -http "$FLEET_HTTP" \
    -replica-http "http://$R1_HTTP,http://$R2_HTTP,http://$R3_HTTP" \
    -scrape 200ms -alerts 'burn>1.5;regress>0.5;stale>1' \
    >"$LOGS/fleet.log" 2>&1 &
FLEET_PID=$!
wait_port "$FLEET_TCP"
wait_port "$FLEET_HTTP"

echo "== driving load ($DURATION) with the ledger exit summary armed =="
# dvfsload exits non-zero on any errored request or a failed -ledger
# fetch, which fails the script via set -e.
"$BIN/dvfsload" -fleet -addr "$FLEET_TCP" -conns 4 -batch 8 \
    -duration "$DURATION" -ledger "http://$FLEET_HTTP" \
    | tee "$LOGS/load.log"
grep -q "fleet efficiency ledger" "$LOGS/load.log" || {
    echo "ledger_smoke: FAIL — dvfsload exit report lacks the fleet efficiency summary" >&2
    exit 1
}

# Give the scrape loop time to pass the stale threshold on r3 (its
# watermark started at the first failed scrape and never advances).
sleep 2

echo "== scraping the merged exposition and aggregate =="
curl -fsS "http://$FLEET_HTTP/metrics.prom" >"$LOGS/fleet-metrics.prom"
curl -fsS "http://$FLEET_HTTP/debug/ledger" >"$LOGS/fleet-ledger.json"
curl -fsS "http://$R1_HTTP/debug/ledger" >"$LOGS/r1-ledger.json"
curl -fsS "http://$R1_HTTP/debug/decisions" >"$LOGS/r1-decisions.jsonl"
"$BIN/dvfsstat" -promlint "$LOGS/fleet-metrics.prom"

echo "== checking ledger gauges =="
grep -E '^(ledger_fleet_|ledger_replicas_ok|alert_firing)' "$LOGS/fleet-metrics.prom" || true
DECISIONS="$(awk '/^ledger_fleet_decisions/ {print int($2)}' "$LOGS/fleet-metrics.prom")"
if [ "${DECISIONS:-0}" -lt 1 ]; then
    echo "ledger_smoke: FAIL — merged ledger holds no decisions" >&2
    exit 1
fi

echo "== checking the deliberately-triggered stale alert =="
STALE="$(awk '/^alert_firing\{rule="stale"\}/ {print int($2)}' "$LOGS/fleet-metrics.prom")"
if [ "${STALE:-0}" -ne 1 ]; then
    echo "ledger_smoke: FAIL — ledger-less replica did not trip alert_firing{rule=\"stale\"}" >&2
    exit 1
fi

echo "== rendering dvfstop frames (router and replica) =="
"$BIN/dvfstop" -once -url "http://$FLEET_HTTP" | tee "$LOGS/dvfstop-fleet.txt"
grep -q "fleet efficiency ledger" "$LOGS/dvfstop-fleet.txt"
grep -q "FIRING" "$LOGS/dvfstop-fleet.txt"
"$BIN/dvfstop" -once -url "http://$R1_HTTP" | tee "$LOGS/dvfstop-replica.txt"
grep -q "replica efficiency ledger" "$LOGS/dvfstop-replica.txt"

echo "== cross-checking r1's online ledger against the exact offline replay =="
# Quiesce first so the snapshot and the dump cover the same decisions.
sleep 0.5
curl -fsS "http://$R1_HTTP/debug/ledger" >"$LOGS/r1-ledger.json"
curl -fsS "http://$R1_HTTP/debug/decisions" >"$LOGS/r1-decisions.jsonl"
"$BIN/dvfsstat" -ledger "$LOGS/r1-decisions.jsonl" \
    -ledger-against "$LOGS/r1-ledger.json" | tee "$LOGS/crosscheck.log"

echo "== shutting down =="
kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || true
kill -TERM "$R1_PID" "$R2_PID" "$R3_PID"
wait "$R1_PID" "$R2_PID" "$R3_PID" 2>/dev/null || true

echo "ledger_smoke: PASS ($DECISIONS decisions merged; stale alert fired; online = replay)"
