#!/usr/bin/env bash
# Fleet smoke test: three race-instrumented ssmdvfsd replicas (one made
# deliberately slow with injected decide latency), a dvfsfleet router in
# front of them, and dvfsload -fleet driving keyed traffic through the
# stack. Passes when the load run completes with zero errored requests
# AND the router shed at least one row into the analytical fallback —
# the slow replica guarantees its admission queue backs up, so a zero
# shed counter means admission control is broken, not that the run was
# lucky.
#
# Usage: scripts/fleet_smoke.sh [duration]   (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-3s}"
MODEL=testdata/bench-cache/compressed.json
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)"
    # shellcheck disable=SC2086  # one pid per word, not one argument
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
    echo "logs kept in $LOGS"
}
trap cleanup EXIT

R1=127.0.0.1:19201
R2=127.0.0.1:19202
R3=127.0.0.1:19203
FLEET_TCP=127.0.0.1:19204
FLEET_HTTP=127.0.0.1:19205

wait_port() {
    local host="${1%%:*}" port="${1##*:}"
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "fleet_smoke: timeout waiting for $1" >&2
    return 1
}

echo "== building (race) =="
go build -race -o "$BIN/ssmdvfsd" ./cmd/ssmdvfsd
go build -race -o "$BIN/dvfsfleet" ./cmd/dvfsfleet
go build -race -o "$BIN/dvfsload" ./cmd/dvfsload

echo "== starting replicas =="
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R1" -http "" >"$LOGS/r1.log" 2>&1 &
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R2" -http "" >"$LOGS/r2.log" 2>&1 &
# The slow replica: every decide batch stalls 5ms, far past the router's
# queue deadline, so rows sharded to it must shed or queue-overflow.
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R3" -http "" \
    -faults 'serve.decide:latency:latency=5ms:every=1' >"$LOGS/r3.log" 2>&1 &
wait_port "$R1"
wait_port "$R2"
wait_port "$R3"

echo "== starting router =="
"$BIN/dvfsfleet" -replicas "$R1,$R2,$R3" -tcp "$FLEET_TCP" -http "$FLEET_HTTP" \
    -queue 8 -queue-deadline 1ms -inflight 1 -coalesce-rows 8 \
    >"$LOGS/fleet.log" 2>&1 &
FLEET_PID=$!
wait_port "$FLEET_TCP"
wait_port "$FLEET_HTTP"

echo "== driving load ($DURATION) =="
# dvfsload exits non-zero on any errored request, which fails the script
# via set -e: that is the "0 errored requests" assertion.
"$BIN/dvfsload" -fleet -addr "$FLEET_TCP" -conns 8 -batch 1 \
    -duration "$DURATION" | tee "$LOGS/load.log"

echo "== checking shed counter =="
SHED="$(curl -fsS "http://$FLEET_HTTP/metrics.prom" |
    awk '/^fleet_shed_rows_total/ {s += $2} END {print s + 0}')"
curl -fsS "http://$FLEET_HTTP/metrics.prom" |
    grep -E '^fleet_(shed|rerouted|healthy|shard_rows)' || true
if [ "$SHED" -lt 1 ]; then
    echo "fleet_smoke: FAIL — slow replica injected but fleet_shed_rows_total is 0" >&2
    exit 1
fi

kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || true
echo "fleet_smoke: PASS ($SHED rows shed)"
