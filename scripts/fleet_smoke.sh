#!/usr/bin/env bash
# Fleet smoke test: three race-instrumented ssmdvfsd replicas (one made
# deliberately slow with injected decide latency), a dvfsfleet router in
# front of them, and dvfsload -fleet driving keyed traffic through the
# stack — with end-to-end tracing armed on every process. Passes when:
#
#   1. the load run completes with zero errored requests;
#   2. the router shed at least one row into the analytical fallback —
#      the slow replica guarantees its admission queue backs up, so a
#      zero shed counter means admission control is broken, not that the
#      run was lucky;
#   3. both /metrics.prom expositions (replica and router) pass
#      dvfsstat -promlint — valid names, label escaping, exemplar
#      syntax, no duplicate series;
#   4. at least one sampled trace ID from the client's span capture is
#      queryable live via a replica's /debug/decisions?trace=;
#   5. that trace ID appears in the span captures of at least three
#      processes (client, router, replica), and the merged Chrome trace
#      from dvfsstat -spans a,b,c -chrome contains it.
#
# With FLEET_ARTIFACT_DIR set, all logs, span captures, and scraped
# expositions are copied there on exit — pass or fail — so CI can upload
# them as artifacts either way.
#
# Usage: scripts/fleet_smoke.sh [duration]   (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-3s}"
MODEL=testdata/bench-cache/compressed.json
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)"
    # shellcheck disable=SC2086  # one pid per word, not one argument
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    wait 2>/dev/null || true
    if [ -n "${FLEET_ARTIFACT_DIR:-}" ]; then
        mkdir -p "$FLEET_ARTIFACT_DIR"
        cp -r "$LOGS"/. "$FLEET_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$BIN"
    echo "logs kept in $LOGS"
}
trap cleanup EXIT

R1=127.0.0.1:19201
R2=127.0.0.1:19202
R3=127.0.0.1:19203
FLEET_TCP=127.0.0.1:19204
FLEET_HTTP=127.0.0.1:19205
R1_HTTP=127.0.0.1:19206
R2_HTTP=127.0.0.1:19207
R3_HTTP=127.0.0.1:19208

wait_port() {
    local host="${1%%:*}" port="${1##*:}"
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
            exec 3>&- 3<&-
            return 0
        fi
        sleep 0.1
    done
    echo "fleet_smoke: timeout waiting for $1" >&2
    return 1
}

echo "== building (race) =="
go build -race -o "$BIN/ssmdvfsd" ./cmd/ssmdvfsd
go build -race -o "$BIN/dvfsfleet" ./cmd/dvfsfleet
go build -race -o "$BIN/dvfsload" ./cmd/dvfsload
go build -o "$BIN/dvfsstat" ./cmd/dvfsstat

echo "== starting replicas (tracing + flight recorder armed) =="
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R1" -http "$R1_HTTP" -flightrec 4096 \
    -spans "$LOGS/r1-spans.jsonl" >"$LOGS/r1.log" 2>&1 &
R1_PID=$!
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R2" -http "$R2_HTTP" -flightrec 4096 \
    -spans "$LOGS/r2-spans.jsonl" >"$LOGS/r2.log" 2>&1 &
R2_PID=$!
# The slow replica: every decide batch stalls 5ms, far past the router's
# queue deadline, so rows sharded to it must shed or queue-overflow.
"$BIN/ssmdvfsd" -model "$MODEL" -tcp "$R3" -http "$R3_HTTP" -flightrec 4096 \
    -spans "$LOGS/r3-spans.jsonl" \
    -faults 'serve.decide:latency:latency=5ms:every=1' >"$LOGS/r3.log" 2>&1 &
R3_PID=$!
wait_port "$R1"
wait_port "$R2"
wait_port "$R3"

echo "== starting router (tracing armed) =="
"$BIN/dvfsfleet" -replicas "$R1,$R2,$R3" -tcp "$FLEET_TCP" -http "$FLEET_HTTP" \
    -queue 8 -queue-deadline 1ms -inflight 1 -coalesce-rows 8 \
    -spans "$LOGS/fleet-spans.jsonl" \
    >"$LOGS/fleet.log" 2>&1 &
FLEET_PID=$!
wait_port "$FLEET_TCP"
wait_port "$FLEET_HTTP"

echo "== driving load ($DURATION, tracing 1 in 8 batches) =="
# dvfsload exits non-zero on any errored request, which fails the script
# via set -e: that is the "0 errored requests" assertion.
"$BIN/dvfsload" -fleet -addr "$FLEET_TCP" -conns 8 -batch 1 \
    -duration "$DURATION" -spans "$LOGS/load-spans.jsonl" -trace-sample 8 \
    | tee "$LOGS/load.log"

echo "== linting Prometheus expositions =="
curl -fsS "http://$FLEET_HTTP/metrics.prom" >"$LOGS/fleet-metrics.prom"
curl -fsS "http://$R1_HTTP/metrics.prom" >"$LOGS/r1-metrics.prom"
"$BIN/dvfsstat" -promlint "$LOGS/fleet-metrics.prom"
"$BIN/dvfsstat" -promlint "$LOGS/r1-metrics.prom"

echo "== checking shed counter =="
SHED="$(awk '/^fleet_shed_rows_total/ {s += $2} END {print s + 0}' \
    "$LOGS/fleet-metrics.prom")"
grep -E '^fleet_(shed|rerouted|healthy|shard_rows)' "$LOGS/fleet-metrics.prom" || true
if [ "$SHED" -lt 1 ]; then
    echo "fleet_smoke: FAIL — slow replica injected but fleet_shed_rows_total is 0" >&2
    exit 1
fi

echo "== looking up a sampled trace in /debug/decisions?trace= =="
# The client flushed its span capture at exit; replicas are still live,
# so any trace ID a replica actually served must be queryable by ID in
# its flight recorder. Shed rows never reach a replica, so scan a few.
TRACE_ID=""
for tid in $(sed -n 's/.*"trace_id":"\([0-9a-f]\{16\}\)".*/\1/p' \
    "$LOGS/load-spans.jsonl" | sort -u | head -50); do
    for hp in "$R1_HTTP" "$R2_HTTP" "$R3_HTTP"; do
        if curl -fsS "http://$hp/debug/decisions?trace=$tid" | grep -q "$tid"; then
            TRACE_ID=$tid
            break 2
        fi
    done
done
if [ -z "$TRACE_ID" ]; then
    echo "fleet_smoke: FAIL — no sampled trace ID found in any replica's /debug/decisions" >&2
    exit 1
fi
echo "trace $TRACE_ID found via /debug/decisions?trace="

echo "== shutting down (flushes span captures) =="
kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || true
kill -TERM "$R1_PID" "$R2_PID" "$R3_PID"
wait "$R1_PID" "$R2_PID" "$R3_PID" 2>/dev/null || true

echo "== merging span captures into one Chrome trace =="
SPAN_FILES="$LOGS/load-spans.jsonl,$LOGS/fleet-spans.jsonl,$LOGS/r1-spans.jsonl,$LOGS/r2-spans.jsonl,$LOGS/r3-spans.jsonl"
"$BIN/dvfsstat" -spans "$SPAN_FILES" -chrome "$LOGS/merged-trace.json" \
    | tee "$LOGS/spans.log"
HOPS="$(grep -l "$TRACE_ID" "$LOGS"/load-spans.jsonl "$LOGS"/fleet-spans.jsonl \
    "$LOGS"/r1-spans.jsonl "$LOGS"/r2-spans.jsonl "$LOGS"/r3-spans.jsonl \
    2>/dev/null | wc -l)"
if [ "$HOPS" -lt 3 ]; then
    echo "fleet_smoke: FAIL — trace $TRACE_ID spans only $HOPS processes, want >=3 (client, router, replica)" >&2
    exit 1
fi
if ! grep -q "$TRACE_ID" "$LOGS/merged-trace.json"; then
    echo "fleet_smoke: FAIL — trace $TRACE_ID missing from merged Chrome trace" >&2
    exit 1
fi

echo "fleet_smoke: PASS ($SHED rows shed; trace $TRACE_ID crosses $HOPS processes)"
