package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func validProgram() Program {
	return Program{
		Body: []Instruction{
			{Op: OpLoadGlobal, Dst: 1, Mem: MemSpec{FootprintBytes: 4096, CoalescedLines: 2}},
			{Op: OpFAlu, Dst: 2, SrcA: 1, SrcB: 2},
			{Op: OpStoreGlobal, SrcA: 2, Mem: MemSpec{FootprintBytes: 4096, CoalescedLines: 1}},
			{Op: OpBranch, SrcA: 2},
		},
		Iterations: 10,
	}
}

func TestProgramValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestProgramValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
	}{
		{"empty body", func(p *Program) { p.Body = nil }},
		{"zero iterations", func(p *Program) { p.Iterations = 0 }},
		{"negative iterations", func(p *Program) { p.Iterations = -1 }},
		{"register out of range", func(p *Program) { p.Body[1].Dst = MaxRegs }},
		{"zero footprint", func(p *Program) { p.Body[0].Mem.FootprintBytes = 0 }},
		{"zero coalesced lines", func(p *Program) { p.Body[0].Mem.CoalescedLines = 0 }},
		{"too many coalesced lines", func(p *Program) { p.Body[0].Mem.CoalescedLines = 33 }},
		{"invalid op", func(p *Program) { p.Body[0].Op = Op(200) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProgram()
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestProgramLen(t *testing.T) {
	p := validProgram()
	if got, want := p.Len(), 4*10; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestKernelValidate(t *testing.T) {
	k := Kernel{Name: "k", WarpsPerCluster: 4, Programs: []Program{validProgram()}}
	if err := k.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	for name, mut := range map[string]func(*Kernel){
		"empty name":  func(k *Kernel) { k.Name = "" },
		"no warps":    func(k *Kernel) { k.WarpsPerCluster = 0 },
		"no programs": func(k *Kernel) { k.Programs = nil },
		"bad program": func(k *Kernel) { k.Programs[0].Iterations = 0 },
	} {
		t.Run(name, func(t *testing.T) {
			kk := Kernel{Name: "k", WarpsPerCluster: 4, Programs: []Program{validProgram()}}
			mut(&kk)
			if err := kk.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestKernelTotalInstructions(t *testing.T) {
	p1 := Program{Body: []Instruction{{Op: OpIAlu, Dst: 1}}, Iterations: 5}
	p2 := Program{Body: []Instruction{{Op: OpIAlu, Dst: 1}, {Op: OpFAlu, Dst: 2}}, Iterations: 3}
	k := Kernel{Name: "k", WarpsPerCluster: 3, Programs: []Program{p1, p2}}
	// Warp 0 -> p1 (5), warp 1 -> p2 (6), warp 2 -> p1 (5).
	if got, want := k.TotalInstructions(), int64(16); got != want {
		t.Fatalf("TotalInstructions = %d, want %d", got, want)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoadGlobal.IsMemory() || !OpStoreGlobal.IsMemory() {
		t.Fatal("global memory ops must be memory")
	}
	if OpLoadShared.IsMemory() {
		t.Fatal("shared load must not traverse the global hierarchy")
	}
	if !OpLoadGlobal.IsLoad() || !OpLoadShared.IsLoad() {
		t.Fatal("loads must be loads")
	}
	if OpStoreGlobal.IsLoad() || OpIAlu.IsLoad() {
		t.Fatal("non-loads classified as loads")
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := 0; op < NumOps; op++ {
		s := Op(op).String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if Op(200).String() == "" {
		t.Fatal("out-of-range op must still print")
	}
}

// TestValidateProperty checks Validate accepts arbitrary structurally
// valid programs.
func TestValidateProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(nBody, iters uint8, seed int64) bool {
		n := int(nBody%16) + 1
		r := rand.New(rand.NewSource(seed))
		body := make([]Instruction, n)
		for i := range body {
			op := Op(r.Intn(NumOps))
			ins := Instruction{Op: op, Dst: Reg(r.Intn(MaxRegs)), SrcA: Reg(r.Intn(MaxRegs))}
			if op.IsMemory() {
				ins.Mem = MemSpec{
					FootprintBytes: uint64(r.Intn(1<<20) + 64),
					CoalescedLines: r.Intn(32) + 1,
					Pattern:        AccessPattern(r.Intn(3)),
				}
			}
			body[i] = ins
		}
		p := Program{Body: body, Iterations: int(iters%100) + 1}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
