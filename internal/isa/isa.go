// Package isa defines the trace-level instruction set executed by the GPU
// simulator. Kernels are expressed as per-warp programs of typed
// instructions; the simulator interprets them cycle by cycle, tracking
// register dependencies through a scoreboard. The ISA is deliberately
// small — it captures the execution classes that matter for DVFS
// (compute vs. special-function vs. memory vs. control) rather than the
// full semantics of SASS/PTX.
package isa

import "fmt"

// Op is an instruction class. The simulator charges each class a
// configurable latency and routes it to the matching execution unit.
type Op uint8

const (
	// OpIAlu is an integer ALU operation (add, shift, compare...).
	OpIAlu Op = iota
	// OpFAlu is a single-precision floating-point operation (FMA, MUL...).
	OpFAlu
	// OpSFU is a special-function operation (rsqrt, sin, exp...).
	OpSFU
	// OpLoadGlobal reads from global memory through L1/L2/DRAM.
	OpLoadGlobal
	// OpStoreGlobal writes to global memory (write-through, no allocate).
	OpStoreGlobal
	// OpLoadShared reads from the cluster's shared memory (fixed, short
	// cycle latency; never touches the cache hierarchy).
	OpLoadShared
	// OpBranch is a control-flow instruction; it may stall the warp for a
	// configurable number of cycles to model divergence re-convergence.
	OpBranch
	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{"IALU", "FALU", "SFU", "LDG", "STG", "LDS", "BRA"}

func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemory reports whether the op traverses the global memory hierarchy.
func (o Op) IsMemory() bool { return o == OpLoadGlobal || o == OpStoreGlobal }

// IsLoad reports whether the op produces a value loaded from memory
// (global or shared).
func (o Op) IsLoad() bool { return o == OpLoadGlobal || o == OpLoadShared }

// Reg identifies a warp-local register. Register 0 is the zero register:
// writes to it are discarded and reads from it are always ready, so use it
// for "no destination" / "no source".
type Reg uint8

// MaxRegs is the size of each warp's register file.
const MaxRegs = 64

// AccessPattern selects how a memory instruction generates addresses
// across loop iterations.
type AccessPattern uint8

const (
	// PatternSequential walks the footprint linearly with the given stride.
	PatternSequential AccessPattern = iota
	// PatternStrided jumps by large strides, defeating spatial locality.
	PatternStrided
	// PatternRandom hashes (warp, iteration) into the footprint,
	// modelling data-dependent irregular access.
	PatternRandom
)

func (p AccessPattern) String() string {
	switch p {
	case PatternSequential:
		return "seq"
	case PatternStrided:
		return "strided"
	case PatternRandom:
		return "random"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// MemSpec describes the address behaviour of a global-memory instruction.
// All sizes are in bytes. Addresses are generated deterministically from
// (warp ID, iteration, instruction index), so simulation is reproducible.
type MemSpec struct {
	// Base is the starting address of the buffer this instruction touches.
	Base uint64
	// FootprintBytes is the working-set size; generated addresses wrap
	// inside [Base, Base+FootprintBytes).
	FootprintBytes uint64
	// StrideBytes advances the address each loop iteration.
	StrideBytes uint64
	// WarpStrideBytes offsets each warp's stream inside the buffer.
	WarpStrideBytes uint64
	// CoalescedLines is how many distinct cache lines one execution of the
	// instruction touches (1 = fully coalesced warp, up to 32 = fully
	// scattered).
	CoalescedLines int
	// Pattern selects the iteration-to-address mapping.
	Pattern AccessPattern
}

// Instruction is one typed operation in a warp program.
type Instruction struct {
	Op   Op
	Dst  Reg
	SrcA Reg
	SrcB Reg
	// Mem is consulted only for OpLoadGlobal/OpStoreGlobal.
	Mem MemSpec
}

// Program is the body a warp executes, repeated Iterations times. A warp
// finishes when it has executed the whole body Iterations times.
type Program struct {
	Body       []Instruction
	Iterations int
}

// Len returns the total dynamic instruction count of the program.
func (p Program) Len() int { return len(p.Body) * p.Iterations }

// Validate checks the program for structural errors: empty body,
// non-positive iteration count, register indices out of range, or memory
// instructions with inconsistent specs.
func (p Program) Validate() error {
	if len(p.Body) == 0 {
		return fmt.Errorf("isa: program has empty body")
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("isa: program iterations must be positive, got %d", p.Iterations)
	}
	for i, ins := range p.Body {
		if int(ins.Op) >= NumOps {
			return fmt.Errorf("isa: instruction %d has invalid op %d", i, ins.Op)
		}
		if ins.Dst >= MaxRegs || ins.SrcA >= MaxRegs || ins.SrcB >= MaxRegs {
			return fmt.Errorf("isa: instruction %d uses register out of range [0,%d)", i, MaxRegs)
		}
		if ins.Op.IsMemory() {
			m := ins.Mem
			if m.FootprintBytes == 0 {
				return fmt.Errorf("isa: memory instruction %d has zero footprint", i)
			}
			if m.CoalescedLines < 1 || m.CoalescedLines > 32 {
				return fmt.Errorf("isa: memory instruction %d has CoalescedLines=%d, want 1..32", i, m.CoalescedLines)
			}
		}
	}
	return nil
}

// Kernel is a complete simulated workload: a name plus the per-warp
// programs each cluster runs. If a cluster hosts more warps than
// len(Programs), programs are assigned round-robin.
type Kernel struct {
	Name string
	// WarpsPerCluster is how many concurrent warps each cluster runs.
	WarpsPerCluster int
	// Programs are assigned to warps round-robin by warp index.
	Programs []Program
}

// Validate checks the kernel and all of its programs.
func (k Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("isa: kernel has empty name")
	}
	if k.WarpsPerCluster <= 0 {
		return fmt.Errorf("isa: kernel %q has WarpsPerCluster=%d, want > 0", k.Name, k.WarpsPerCluster)
	}
	if len(k.Programs) == 0 {
		return fmt.Errorf("isa: kernel %q has no programs", k.Name)
	}
	for i, p := range k.Programs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("isa: kernel %q program %d: %w", k.Name, i, err)
		}
	}
	return nil
}

// TotalInstructions returns the dynamic instruction count of one cluster's
// worth of warps (all warps run to completion).
func (k Kernel) TotalInstructions() int64 {
	var total int64
	for w := 0; w < k.WarpsPerCluster; w++ {
		total += int64(k.Programs[w%len(k.Programs)].Len())
	}
	return total
}
