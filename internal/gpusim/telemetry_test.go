package gpusim

import (
	"strconv"
	"testing"

	"ssmdvfs/internal/telemetry"
)

func TestTelemetryCollectorResidencyAndTotals(t *testing.T) {
	cfg := tinyConfig()
	sim, err := New(cfg, computeTestKernel(3000))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	col := NewTelemetryCollector(reg, cfg.OPs.Len())
	sim.SetObserver(col.Observe)
	res := sim.Run(testMaxPs)
	if !res.Completed {
		t.Fatal("kernel did not complete")
	}

	snap := reg.Snapshot()
	epochs := snap.Counters["sim_epochs_total"]
	if want := int64(res.Epochs * cfg.Clusters); epochs != want {
		t.Fatalf("sim_epochs_total = %d, want %d", epochs, want)
	}
	// With no controller every epoch runs at the default level, so all
	// residency lands there and sums to epochs × EpochPs.
	defID := telemetry.MetricID("sim_level_residency_ps", "level", strconv.Itoa(cfg.OPs.Default()))
	var residency int64
	for id, v := range snap.Counters {
		if name, _ := telemetry.ParseID(id); name == "sim_level_residency_ps" {
			residency += v
			if v != 0 && id != defID {
				t.Fatalf("residency charged to non-default level: %s = %d", id, v)
			}
		}
	}
	if want := epochs * cfg.EpochPs; residency != want {
		t.Fatalf("total residency = %d ps, want %d", residency, want)
	}
	// Finalized-epoch instruction counts are a lower bound on the run
	// total (the tail epoch is charged outside the observer).
	instr := snap.Counters["sim_instructions_total"]
	if instr <= 0 || instr > res.Instructions {
		t.Fatalf("sim_instructions_total = %d, run total %d", instr, res.Instructions)
	}
	if ipc := snap.Histograms["sim_ipc_centis"]; ipc.Count == 0 {
		t.Fatal("IPC histogram empty")
	}
	var stalls int64
	for id, v := range snap.Counters {
		if name, _ := telemetry.ParseID(id); name == "sim_stall_cycles_total" {
			stalls += v
		}
	}
	if stalls < 0 {
		t.Fatalf("negative stall total %d", stalls)
	}
}

// staticSeq is a controller that replays a fixed per-epoch level sequence,
// standing in for any reference policy.
type staticSeq struct{ levels []int }

func (c *staticSeq) Name() string { return "static-seq" }
func (c *staticSeq) Decide(s EpochStats) int {
	// Decide is called at the end of epoch s.Epoch for epoch s.Epoch+1.
	if n := s.Epoch + 1; n < len(c.levels) {
		return c.levels[n]
	}
	return c.levels[len(c.levels)-1]
}

func TestTelemetryCollectorDivergence(t *testing.T) {
	cfg := tinyConfig()
	seq := make([]int, 64)
	for i := range seq {
		seq[i] = cfg.OPs.Default()
		if i%3 == 0 && i > 0 {
			seq[i] = 0 // every third epoch drops to the lowest level
		}
	}
	sim, err := New(cfg, computeTestKernel(3000))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetController(&staticSeq{levels: seq})

	// Reference policy: always the default level. Divergence must then
	// count exactly the epochs where the controller deviated.
	ref := make([]int, len(seq))
	for i := range ref {
		ref[i] = cfg.OPs.Default()
	}
	reg := telemetry.NewRegistry()
	col := NewTelemetryCollector(reg, cfg.OPs.Len())
	col.SetReference(ref)
	sim.SetObserver(col.Observe)
	if res := sim.Run(testMaxPs); !res.Completed {
		t.Fatal("kernel did not complete")
	}

	snap := reg.Snapshot()
	agree := snap.Counters["sim_reference_agree_epochs_total"]
	diverge := snap.Counters["sim_reference_diverge_epochs_total"]
	if agree == 0 || diverge == 0 {
		t.Fatalf("agree=%d diverge=%d, want both nonzero", agree, diverge)
	}
	// Count expected divergent cluster-epochs from the actual level
	// residency: epochs at level 0 diverge, the default level agrees.
	lvl0 := snap.Counters[telemetry.MetricID("sim_level_epochs_total", "level", "0")]
	if diverge != lvl0 {
		t.Fatalf("diverge = %d, want %d (level-0 epochs)", diverge, lvl0)
	}
	// |default - 0| per divergent epoch.
	wantDist := lvl0 * int64(cfg.OPs.Default())
	if got := snap.Counters["sim_reference_diverge_levels_total"]; got != wantDist {
		t.Fatalf("diverge levels = %d, want %d", got, wantDist)
	}
}

func TestChainObservers(t *testing.T) {
	var a, b int
	obs := ChainObservers(nil, func(EpochStats) { a++ }, nil, func(EpochStats) { b++ })
	obs(EpochStats{})
	obs(EpochStats{})
	if a != 2 || b != 2 {
		t.Fatalf("a=%d b=%d, want 2,2", a, b)
	}
	if ChainObservers(nil, nil) != nil {
		t.Fatal("all-nil chain must be nil")
	}
	single := func(EpochStats) { a++ }
	if got := ChainObservers(single); got == nil {
		t.Fatal("single chain must pass through")
	}
}
