package gpusim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64})
	addr := uint64(0x1000)
	if c.lookup(addr) {
		t.Fatal("empty cache must miss")
	}
	c.fill(addr)
	if !c.lookup(addr) {
		t.Fatal("filled line must hit")
	}
	if c.hits != 1 || c.misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.hits, c.misses)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64})
	c.fill(0x1000)
	for off := uint64(0); off < 64; off += 8 {
		if !c.lookup(0x1000 + off) {
			t.Fatalf("offset %d within the filled line missed", off)
		}
	}
	if c.lookup(0x1040) {
		t.Fatal("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: the set holds exactly two lines.
	c := newCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 64})
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.fill(a)
	c.fill(b)
	c.lookup(a) // a is now most recent
	c.fill(d)   // must evict b (LRU)
	if !c.contains(a) {
		t.Fatal("recently used line a was evicted")
	}
	if c.contains(b) {
		t.Fatal("LRU line b survived eviction")
	}
	if !c.contains(d) {
		t.Fatal("newly filled line d missing")
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 1, LineBytes: 64})
	// Lines 0,1,2,3 map to different sets: all four fit despite 1 way.
	for i := uint64(0); i < 4; i++ {
		c.fill(i * 64)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.contains(i * 64) {
			t.Fatalf("line %d missing; set indexing broken", i)
		}
	}
	// Line 4 aliases set 0 and evicts line 0.
	c.fill(4 * 64)
	if c.contains(0) {
		t.Fatal("aliased line not evicted from 1-way set")
	}
}

func TestCacheReset(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64})
	c.fill(0x40)
	c.lookup(0x40)
	c.reset()
	if c.contains(0x40) {
		t.Fatal("reset cache still contains a line")
	}
	if c.hits != 0 || c.misses != 0 {
		t.Fatal("reset did not clear statistics")
	}
}

func TestCacheCloneIndependence(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64})
	c.fill(0x80)
	cp := c.clone()
	cp.fill(0x10000)
	if c.contains(0x10000) {
		t.Fatal("clone mutation leaked into original")
	}
	if !cp.contains(0x80) {
		t.Fatal("clone lost original contents")
	}
}

// TestCacheNeverExceedsCapacity checks the structural invariant that a
// set never holds more valid lines than it has ways, under random fills.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	cfg := CacheConfig{Sets: 8, Ways: 2, LineBytes: 64}
	f := func(addrs []uint32) bool {
		c := newCache(cfg)
		for _, a := range addrs {
			if !c.lookup(uint64(a)) {
				c.fill(uint64(a))
			}
		}
		// Count valid lines per set.
		counts := make(map[int]int)
		for i, v := range c.valid {
			if v {
				counts[i/cfg.Ways]++
			}
		}
		for _, n := range counts {
			if n > cfg.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheInclusionProperty: a line just filled is always present until
// at least Ways further distinct fills to the same set occur.
func TestCacheInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCache(CacheConfig{Sets: 4, Ways: 4, LineBytes: 64})
		for i := 0; i < 100; i++ {
			a := uint64(rng.Intn(1 << 14))
			c.fill(a)
			if !c.contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Sets: 64, Ways: 4, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.Bytes(); got != 64*4*64 {
		t.Fatalf("Bytes = %d", got)
	}
	bad := []CacheConfig{
		{Sets: 0, Ways: 4, LineBytes: 64},
		{Sets: 63, Ways: 4, LineBytes: 64}, // not a power of two
		{Sets: 64, Ways: 0, LineBytes: 64},
		{Sets: 64, Ways: 4, LineBytes: 0},
		{Sets: 64, Ways: 4, LineBytes: 48}, // not a power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v validated, want error", cfg)
		}
	}
}
