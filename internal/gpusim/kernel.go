package gpusim

import "ssmdvfs/internal/isa"

// Kernel and Program re-export the isa workload types so simulator users
// only import one package for the common path.
type (
	Kernel  = isa.Kernel
	Program = isa.Program
)
