package gpusim

import (
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/isa"
)

// epochAccum accumulates raw event counts for the current epoch of one
// cluster. It is reset at every epoch boundary.
type epochAccum struct {
	opCounts     [isa.NumOps]int64
	instructions int64
	cycles       int64
	activeCycles int64

	stallMemLoad   int64 // waiting for global-load data (MH)
	stallMemOther  int64 // LSU busy / MSHR full / store-queue full (MH\L)
	stallCompute   int64 // waiting on ALU/SFU/shared results
	stallControl   int64 // branch pipeline refill
	readyNotIssued int64 // eligible but lost issue-width arbitration
	dvfsStall      int64 // cycles lost to IVR transitions

	l1ReadHits      int64
	l1ReadMisses    int64
	l1WriteAccesses int64
	l2Accesses      int64
	l2Hits          int64
	l2Misses        int64
	dramLines       int64
	sharedLoads     int64
	branches        int64
}

// cluster is one SM cluster: a set of warps, a private L1, execution-unit
// issue limits, and its own clock domain.
type cluster struct {
	id  int
	cfg *Config

	domain *clockdomain.Domain
	warps  []warp
	l1     *cache

	nowPs int64
	rrPtr int
	// greedyWarp is the last successfully issuing warp (GTO policy).
	greedyWarp int

	// Completion times of outstanding load misses / queued stores.
	outstandingLoads  []int64
	outstandingStores []int64

	finishedWarps int
	done          bool
	lastFinishPs  int64

	acc epochAccum
	// epochLevel is the OP level in force for the current epoch (levels
	// change only at epoch boundaries).
	epochLevel int

	// lineBuf is scratch for address generation, reused across cycles.
	lineBuf []uint64
}

func newCluster(id int, cfg *Config, kernel *isa.Kernel) *cluster {
	c := &cluster{
		id:      id,
		cfg:     cfg,
		domain:  clockdomain.NewDomain(cfg.OPs, cfg.IVR),
		l1:      newCache(cfg.L1),
		lineBuf: make([]uint64, 0, 32),
	}
	c.epochLevel = c.domain.Level()
	c.warps = make([]warp, kernel.WarpsPerCluster)
	for i := range c.warps {
		c.warps[i] = warp{
			prog: &kernel.Programs[i%len(kernel.Programs)],
			id:   id*kernel.WarpsPerCluster + i,
		}
	}
	return c
}

// drainQueues removes completed entries from the outstanding-load and
// outstanding-store queues.
func (c *cluster) drainQueues(nowPs int64) {
	c.outstandingLoads = drainDone(c.outstandingLoads, nowPs)
	c.outstandingStores = drainDone(c.outstandingStores, nowPs)
}

func drainDone(q []int64, nowPs int64) []int64 {
	out := q[:0]
	for _, t := range q {
		if t > nowPs {
			out = append(out, t)
		}
	}
	return out
}

// stallReason classifies why a warp could not issue this cycle.
type stallReason uint8

const (
	stallNone stallReason = iota
	stallMemLoadR
	stallMemOtherR
	stallComputeR
	stallControlR
	stallArbR
)

// tryIssue checks whether warp w can issue at nowPs given the remaining
// per-cycle unit budgets, and if so performs the issue (updating the
// scoreboard, caches, and memory system). It returns the stall reason on
// failure and stallNone on success.
func (c *cluster) tryIssue(w *warp, mem *memSystem, nowPs int64, aluLeft, sfuLeft, lsuLeft *int) stallReason {
	if nowPs < w.nextEligiblePs {
		return stallControlR
	}
	ins := w.current()

	// Scoreboard: RAW on sources, WAW on destination.
	for _, r := range [...]isa.Reg{ins.SrcA, ins.SrcB, ins.Dst} {
		if r == 0 {
			continue
		}
		if w.regReadyPs[r] > nowPs {
			if w.regFromLoad[r] {
				return stallMemLoadR
			}
			return stallComputeR
		}
	}

	period := c.domain.PeriodPs()
	cfg := c.cfg

	switch ins.Op {
	case isa.OpIAlu, isa.OpFAlu:
		if *aluLeft == 0 {
			return stallComputeR
		}
		*aluLeft--
		lat := cfg.IAluLatency
		if ins.Op == isa.OpFAlu {
			lat = cfg.FAluLatency
		}
		c.writeReg(w, ins.Dst, nowPs+int64(lat)*period, false)

	case isa.OpSFU:
		if *sfuLeft == 0 {
			return stallComputeR
		}
		*sfuLeft--
		c.writeReg(w, ins.Dst, nowPs+int64(cfg.SFULatency)*period, false)

	case isa.OpLoadShared:
		if *lsuLeft == 0 {
			return stallMemOtherR
		}
		*lsuLeft--
		c.writeReg(w, ins.Dst, nowPs+int64(cfg.SharedLatency)*period, false)
		c.acc.sharedLoads++

	case isa.OpBranch:
		w.nextEligiblePs = nowPs + int64(cfg.BranchLatency)*period
		c.acc.branches++

	case isa.OpLoadGlobal:
		if *lsuLeft == 0 {
			return stallMemOtherR
		}
		if len(c.outstandingLoads) >= cfg.MSHRs {
			return stallMemOtherR
		}
		*lsuLeft--
		done := c.accessLoad(w, ins, mem, nowPs, period)
		c.writeReg(w, ins.Dst, done, true)
		c.outstandingLoads = append(c.outstandingLoads, done)

	case isa.OpStoreGlobal:
		if *lsuLeft == 0 {
			return stallMemOtherR
		}
		if len(c.outstandingStores) >= cfg.StoreQueue {
			return stallMemOtherR
		}
		*lsuLeft--
		done := c.accessStore(w, ins, mem, nowPs)
		c.outstandingStores = append(c.outstandingStores, done)
	}

	c.acc.opCounts[ins.Op]++
	c.acc.instructions++
	w.issued++
	w.advance()
	if w.finished {
		c.finishedWarps++
		if nowPs > c.lastFinishPs {
			c.lastFinishPs = nowPs
		}
	}
	return stallNone
}

// writeReg records a pending register write in the scoreboard.
func (c *cluster) writeReg(w *warp, r isa.Reg, readyPs int64, fromLoad bool) {
	if r == 0 {
		return
	}
	w.regReadyPs[r] = readyPs
	w.regFromLoad[r] = fromLoad
}

// accessLoad walks the load's cache lines through L1 (and L2/DRAM on
// misses) and returns the load's completion time.
func (c *cluster) accessLoad(w *warp, ins *isa.Instruction, mem *memSystem, nowPs int64, period int64) int64 {
	c.lineBuf = lineAddrs(c.lineBuf[:0], &ins.Mem, w.id, w.iter, w.pc, c.cfg.L1.LineBytes)
	hitLat := nowPs + int64(c.cfg.L1HitCycles)*period
	done := hitLat
	for _, addr := range c.lineBuf {
		if c.l1.lookup(addr) {
			c.acc.l1ReadHits++
			continue
		}
		c.acc.l1ReadMisses++
		t, l2Hit, dram := mem.readLine(addr, hitLat)
		c.acc.l2Accesses++
		if l2Hit {
			c.acc.l2Hits++
		} else {
			c.acc.l2Misses++
		}
		if dram {
			c.acc.dramLines++
		}
		c.l1.fill(addr)
		if t > done {
			done = t
		}
	}
	return done
}

// accessStore issues a write-through store (no L1 allocate) and returns
// when the memory system has accepted it.
func (c *cluster) accessStore(w *warp, ins *isa.Instruction, mem *memSystem, nowPs int64) int64 {
	c.lineBuf = lineAddrs(c.lineBuf[:0], &ins.Mem, w.id, w.iter, w.pc, c.cfg.L1.LineBytes)
	done := nowPs
	for _, addr := range c.lineBuf {
		c.acc.l1WriteAccesses++
		t, l2Hit, dram := mem.writeLine(addr, nowPs)
		c.acc.l2Accesses++
		if l2Hit {
			c.acc.l2Hits++
		} else {
			c.acc.l2Misses++
		}
		if dram {
			c.acc.dramLines++
		}
		if t > done {
			done = t
		}
	}
	return done
}

// step executes one clock cycle of the cluster at its current time and
// advances the cluster clock by one period.
func (c *cluster) step(mem *memSystem) {
	nowPs := c.nowPs
	c.acc.cycles++

	if c.domain.Stalled(nowPs) {
		c.acc.dvfsStall++
		c.nowPs += c.domain.PeriodPs()
		return
	}

	c.drainQueues(nowPs)

	aluLeft := c.cfg.ALUUnits
	sfuLeft := c.cfg.SFUUnits
	lsuLeft := c.cfg.LSUUnits
	issueLeft := c.cfg.IssueWidth

	n := len(c.warps)
	issuedAny := false
	for i := 0; i < n; i++ {
		// Candidate order is the scheduling policy: LRR rotates the start
		// position; GTO tries the greedy warp first and then the oldest
		// (lowest-index) warps.
		var idx int
		if c.cfg.Scheduler == SchedGTO {
			switch {
			case i == 0:
				idx = c.greedyWarp
			case i <= c.greedyWarp:
				idx = i - 1
			default:
				idx = i
			}
		} else {
			idx = (c.rrPtr + i) % n
		}
		w := &c.warps[idx]
		if w.finished {
			continue
		}
		if issueLeft == 0 {
			// Remaining warps lost arbitration this cycle; count the
			// eligible ones so occupancy pressure is visible.
			c.acc.readyNotIssued++
			continue
		}
		reason := c.tryIssue(w, mem, nowPs, &aluLeft, &sfuLeft, &lsuLeft)
		switch reason {
		case stallNone:
			issueLeft--
			issuedAny = true
			c.greedyWarp = idx
		case stallMemLoadR:
			c.acc.stallMemLoad++
		case stallMemOtherR:
			c.acc.stallMemOther++
		case stallComputeR:
			c.acc.stallCompute++
		case stallControlR:
			c.acc.stallControl++
		}
	}
	if issuedAny {
		c.acc.activeCycles++
		c.rrPtr = (c.rrPtr + 1) % n
	}
	if c.finishedWarps == n {
		c.done = true
	}
	c.nowPs += c.domain.PeriodPs()
}

// clone deep-copies the cluster for simulator snapshots.
func (c *cluster) clone(cfg *Config) *cluster {
	cp := *c
	cp.cfg = cfg
	cp.warps = append([]warp(nil), c.warps...)
	cp.l1 = c.l1.clone()
	cp.outstandingLoads = append([]int64(nil), c.outstandingLoads...)
	cp.outstandingStores = append([]int64(nil), c.outstandingStores...)
	cp.lineBuf = make([]uint64, 0, cap(c.lineBuf))
	// Domain is a value type over an immutable table; a shallow copy is a
	// correct deep copy.
	d := *c.domain
	cp.domain = &d
	return &cp
}
