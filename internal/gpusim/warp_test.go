package gpusim

import (
	"testing"

	"ssmdvfs/internal/isa"
)

func TestMemAddrDeterministic(t *testing.T) {
	m := &isa.MemSpec{
		Base: 0x1000, FootprintBytes: 1 << 20, StrideBytes: 256,
		WarpStrideBytes: 4096, CoalescedLines: 4, Pattern: isa.PatternRandom,
	}
	a := memAddr(m, 3, 17, 2)
	b := memAddr(m, 3, 17, 2)
	if a != b {
		t.Fatalf("same inputs gave different addresses: %#x vs %#x", a, b)
	}
	if c := memAddr(m, 4, 17, 2); c == a {
		t.Fatal("different warps hashed to the same random address (suspicious)")
	}
}

func TestMemAddrStaysInFootprint(t *testing.T) {
	for _, pattern := range []isa.AccessPattern{isa.PatternSequential, isa.PatternStrided, isa.PatternRandom} {
		m := &isa.MemSpec{
			Base: 0x4000_0000, FootprintBytes: 1 << 16, StrideBytes: 512,
			WarpStrideBytes: 1024, CoalescedLines: 1, Pattern: pattern,
		}
		for warp := 0; warp < 8; warp++ {
			for iter := 0; iter < 1000; iter += 37 {
				a := memAddr(m, warp, iter, 0)
				if a < m.Base || a >= m.Base+m.FootprintBytes {
					t.Fatalf("pattern %v: address %#x outside [%#x,%#x)", pattern, a, m.Base, m.Base+m.FootprintBytes)
				}
			}
		}
	}
}

func TestSequentialAddressesAdvance(t *testing.T) {
	m := &isa.MemSpec{
		Base: 0, FootprintBytes: 1 << 20, StrideBytes: 256,
		CoalescedLines: 1, Pattern: isa.PatternSequential,
	}
	a0 := memAddr(m, 0, 0, 0)
	a1 := memAddr(m, 0, 1, 0)
	if a1-a0 != 256 {
		t.Fatalf("sequential stride = %d, want 256", a1-a0)
	}
}

func TestLineAddrsCount(t *testing.T) {
	for _, lines := range []int{1, 4, 8, 32} {
		m := &isa.MemSpec{
			Base: 0x1000, FootprintBytes: 1 << 20, StrideBytes: 64,
			CoalescedLines: lines, Pattern: isa.PatternSequential,
		}
		got := lineAddrs(nil, m, 0, 0, 0, 64)
		if len(got) != lines {
			t.Fatalf("CoalescedLines=%d produced %d addresses", lines, len(got))
		}
		// Sequential coalesced lines are contiguous.
		for i := 1; i < len(got); i++ {
			if got[i]-got[i-1] != 64 {
				t.Fatalf("coalesced lines not contiguous: %#x then %#x", got[i-1], got[i])
			}
		}
	}
}

func TestLineAddrsRandomStaysInFootprint(t *testing.T) {
	m := &isa.MemSpec{
		Base: 0x8000_0000, FootprintBytes: 1 << 18,
		CoalescedLines: 16, Pattern: isa.PatternRandom,
	}
	got := lineAddrs(nil, m, 5, 99, 1, 64)
	if len(got) != 16 {
		t.Fatalf("got %d lines, want 16", len(got))
	}
	for _, a := range got {
		if a < m.Base || a >= m.Base+m.FootprintBytes {
			t.Fatalf("random line %#x outside footprint", a)
		}
		if a%64 != 0 {
			t.Fatalf("random line %#x not line-aligned", a)
		}
	}
}

func TestWarpAdvanceRetires(t *testing.T) {
	prog := isa.Program{
		Body:       []isa.Instruction{{Op: isa.OpIAlu, Dst: 1}, {Op: isa.OpIAlu, Dst: 2}},
		Iterations: 3,
	}
	w := warp{prog: &prog}
	steps := 0
	for !w.finished {
		w.advance()
		steps++
		if steps > 100 {
			t.Fatal("warp never finished")
		}
	}
	if steps != prog.Len() {
		t.Fatalf("warp retired after %d advances, want %d", steps, prog.Len())
	}
}

func TestSplitmix64Spread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := splitmix64(i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
}
