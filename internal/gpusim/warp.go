package gpusim

import "ssmdvfs/internal/isa"

// warp is the dynamic state of one executing warp: program position,
// scoreboard, and pacing. All times are absolute picoseconds.
type warp struct {
	prog *isa.Program
	id   int // warp index within the cluster (used for address generation)

	pc       int
	iter     int
	finished bool

	// regReadyPs[r] is when register r's pending write completes.
	regReadyPs [isa.MaxRegs]int64
	// regFromLoad[r] records whether the pending writer of r is a global
	// load, to attribute stalls to memory vs. compute hazards.
	regFromLoad [isa.MaxRegs]bool

	// nextEligiblePs paces the warp after branches (pipeline refill).
	nextEligiblePs int64

	issued int64
}

func (w *warp) current() *isa.Instruction {
	return &w.prog.Body[w.pc]
}

// advance moves to the next instruction, retiring the warp when the last
// iteration of the body completes.
func (w *warp) advance() {
	w.pc++
	if w.pc == len(w.prog.Body) {
		w.pc = 0
		w.iter++
		if w.iter >= w.prog.Iterations {
			w.finished = true
		}
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator; used to hash
// (warp, iteration) into irregular addresses deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// memAddr computes the base address one execution of a memory instruction
// touches, deterministically from (warp, iteration, pc).
func memAddr(m *isa.MemSpec, warpID, iter, pc int) uint64 {
	var off uint64
	switch m.Pattern {
	case isa.PatternSequential:
		off = uint64(iter)*m.StrideBytes + uint64(warpID)*m.WarpStrideBytes
	case isa.PatternStrided:
		// A large co-prime stride defeats spatial locality while staying
		// deterministic.
		off = uint64(iter)*(m.StrideBytes*17+64) + uint64(warpID)*m.WarpStrideBytes
	case isa.PatternRandom:
		h := splitmix64(uint64(warpID)<<40 ^ uint64(iter)<<8 ^ uint64(pc))
		off = h
	}
	if m.FootprintBytes > 0 {
		off %= m.FootprintBytes
	}
	// Align to 32 bytes so CoalescedLines spreads across line boundaries
	// predictably.
	off &^= 31
	return m.Base + off
}

// lineAddrs appends the distinct cache-line addresses one execution of a
// memory instruction touches (CoalescedLines of them) to dst and returns
// the extended slice. Scattered accesses spread lines across the
// footprint rather than contiguously.
func lineAddrs(dst []uint64, m *isa.MemSpec, warpID, iter, pc, lineBytes int) []uint64 {
	base := memAddr(m, warpID, iter, pc)
	if m.CoalescedLines <= 1 {
		return append(dst, base)
	}
	if m.Pattern == isa.PatternRandom {
		for i := 0; i < m.CoalescedLines; i++ {
			h := splitmix64(base + uint64(i)*0x9e3779b9)
			off := h % m.FootprintBytes
			dst = append(dst, m.Base+(off&^uint64(lineBytes-1)))
		}
		return dst
	}
	for i := 0; i < m.CoalescedLines; i++ {
		dst = append(dst, base+uint64(i*lineBytes))
	}
	return dst
}
