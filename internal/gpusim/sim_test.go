package gpusim

import (
	"testing"

	"ssmdvfs/internal/isa"
)

// computeTestKernel returns a small compute-bound kernel.
func computeTestKernel(iters int) Kernel {
	prog := isa.Program{
		Body: []isa.Instruction{
			{Op: isa.OpFAlu, Dst: 1, SrcA: 1},
			{Op: isa.OpFAlu, Dst: 2, SrcA: 2},
			{Op: isa.OpFAlu, Dst: 3, SrcA: 3},
			{Op: isa.OpIAlu, Dst: 4, SrcA: 4},
		},
		Iterations: iters,
	}
	return Kernel{Name: "test-compute", WarpsPerCluster: 8, Programs: []isa.Program{prog}}
}

// memoryTestKernel returns a DRAM-streaming kernel.
func memoryTestKernel(iters int) Kernel {
	prog := isa.Program{
		Body: []isa.Instruction{
			{Op: isa.OpLoadGlobal, Dst: 1, Mem: isa.MemSpec{
				Base: 0x1000_0000, FootprintBytes: 64 << 20, StrideBytes: 256,
				WarpStrideBytes: 1 << 16, CoalescedLines: 8, Pattern: isa.PatternSequential,
			}},
			{Op: isa.OpFAlu, Dst: 2, SrcA: 1},
		},
		Iterations: iters,
	}
	return Kernel{Name: "test-memory", WarpsPerCluster: 8, Programs: []isa.Program{prog}}
}

func tinyConfig() Config {
	c := SmallConfig()
	c.Clusters = 2
	return c
}

const testMaxPs = 1_000_000_000_000 // 1 ms

func mustRun(t *testing.T, cfg Config, k Kernel, ctrl Controller) Result {
	t.Helper()
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl != nil {
		sim.SetController(ctrl)
	}
	res := sim.Run(testMaxPs)
	if !res.Completed {
		t.Fatalf("kernel %s did not complete", k.Name)
	}
	return res
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}, computeTestKernel(10)); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := computeTestKernel(10)
	bad.Programs = nil
	if _, err := New(tinyConfig(), bad); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestRunExecutesAllInstructions(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(100)
	res := mustRun(t, cfg, k, nil)
	want := k.TotalInstructions() * int64(cfg.Clusters)
	if res.Instructions != want {
		t.Fatalf("instructions = %d, want %d", res.Instructions, want)
	}
	if res.ExecTimePs <= 0 || res.EnergyPJ <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(50)
	r1 := mustRun(t, cfg, k, nil)
	r2 := mustRun(t, cfg, k, nil)
	if r1 != r2 {
		t.Fatalf("same inputs produced different results:\n%+v\n%+v", r1, r2)
	}
}

func TestComputeKernelFrequencySensitivity(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(2000)

	times := make([]int64, cfg.OPs.Len())
	for lvl := 0; lvl < cfg.OPs.Len(); lvl++ {
		sim, err := New(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		sim.ForceLevel(lvl)
		res := sim.Run(testMaxPs)
		if !res.Completed {
			t.Fatalf("level %d did not complete", lvl)
		}
		times[lvl] = res.ExecTimePs
	}
	// Monotone: lower frequency → no faster.
	for lvl := 1; lvl < len(times); lvl++ {
		if times[lvl] > times[lvl-1] {
			t.Fatalf("level %d (faster) slower than level %d: %d > %d", lvl, lvl-1, times[lvl], times[lvl-1])
		}
	}
	// Compute-bound: slowdown at min level close to the frequency ratio.
	ratio := float64(times[0]) / float64(times[len(times)-1])
	fRatio := cfg.OPs.Point(cfg.OPs.Default()).FrequencyHz / cfg.OPs.Point(0).FrequencyHz
	if ratio < fRatio*0.9 || ratio > fRatio*1.1 {
		t.Fatalf("compute-bound slowdown %.3f, want ≈ frequency ratio %.3f", ratio, fRatio)
	}
}

func TestMemoryKernelFrequencyInsensitive(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(400)

	var tMin, tMax int64
	for _, lvl := range []int{0, cfg.OPs.Default()} {
		sim, err := New(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		sim.ForceLevel(lvl)
		res := sim.Run(testMaxPs)
		if !res.Completed {
			t.Fatalf("level %d did not complete", lvl)
		}
		if lvl == 0 {
			tMin = res.ExecTimePs
		} else {
			tMax = res.ExecTimePs
		}
	}
	slowdown := float64(tMin)/float64(tMax) - 1
	if slowdown > 0.15 {
		t.Fatalf("memory-bound kernel slowed %.1f%% at min frequency, want < 15%%", slowdown*100)
	}
}

func TestMemoryKernelSavesEnergyAtLowFrequency(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(400)
	var eMin, eMax float64
	for _, lvl := range []int{0, cfg.OPs.Default()} {
		sim, err := New(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		sim.ForceLevel(lvl)
		res := sim.Run(testMaxPs)
		if lvl == 0 {
			eMin = res.EnergyPJ
		} else {
			eMax = res.EnergyPJ
		}
	}
	if eMin >= eMax {
		t.Fatalf("memory-bound kernel at min V/f must save energy: %.0f >= %.0f", eMin, eMax)
	}
}

func TestCloneResumesIdentically(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(200)

	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(30_000_000) // 30 µs in
	cl := sim.Clone()

	r1 := sim.Run(testMaxPs)
	r2 := cl.Run(testMaxPs)
	if r1 != r2 {
		t.Fatalf("clone diverged:\noriginal %+v\nclone    %+v", r1, r2)
	}
}

func TestCloneIsolation(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(2000)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(20_000_000)
	cl := sim.Clone()
	cl.ForceLevel(0)
	cl.RunUntil(40_000_000)
	// The original must be unaffected by the clone's progress or level.
	if sim.ClusterLevel(0) != cfg.OPs.Default() {
		t.Fatal("clone ForceLevel leaked into original")
	}
	if sim.NowPs() > 21_000_000 {
		t.Fatalf("original advanced by clone run: now=%d", sim.NowPs())
	}
}

// fixedController always returns the same level.
type fixedController struct{ level int }

func (f *fixedController) Name() string          { return "fixed" }
func (f *fixedController) Decide(EpochStats) int { return f.level }

func TestControllerInvokedPerEpochPerCluster(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)

	var calls int
	counter := controllerFunc(func(s EpochStats) int {
		calls++
		if s.Cycles <= 0 {
			t.Errorf("epoch %d cluster %d has no cycles", s.Epoch, s.Cluster)
		}
		return cfg.OPs.Default()
	})
	res := mustRun(t, cfg, k, counter)
	if res.Epochs == 0 {
		t.Fatal("no epochs elapsed; kernel too short for the test")
	}
	want := res.Epochs * cfg.Clusters
	if calls != want {
		t.Fatalf("controller called %d times, want %d (epochs=%d clusters=%d)",
			calls, want, res.Epochs, cfg.Clusters)
	}
}

// controllerFunc adapts a function to the Controller interface.
type controllerFunc func(EpochStats) int

func (f controllerFunc) Name() string            { return "func" }
func (f controllerFunc) Decide(s EpochStats) int { return f(s) }

func TestControllerLevelApplied(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetController(&fixedController{level: 0})
	sim.RunUntil(2 * cfg.EpochPs)
	for c := 0; c < cfg.Clusters; c++ {
		if got := sim.ClusterLevel(c); got != 0 {
			t.Fatalf("cluster %d level = %d after controller epochs, want 0", c, got)
		}
	}
}

func TestObserverSeesEpochs(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	var seen []EpochStats
	sim.SetObserver(func(s EpochStats) { seen = append(seen, s) })
	res := sim.Run(testMaxPs)
	if len(seen) != res.Epochs*cfg.Clusters {
		t.Fatalf("observer saw %d snapshots, want %d", len(seen), res.Epochs*cfg.Clusters)
	}
	for i, s := range seen {
		if s.EndPs-s.StartPs != cfg.EpochPs {
			t.Fatalf("snapshot %d spans %d ps, want %d", i, s.EndPs-s.StartPs, cfg.EpochPs)
		}
	}
}

func TestIVRTransitionCostsTime(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)

	// Oscillating voltage transitions every epoch must cost time vs a
	// static run at the same mean level.
	oscillate := controllerFunc(func(s EpochStats) int {
		if s.Epoch%2 == 0 {
			return 0 // 1.0 V
		}
		return cfg.OPs.Default() // 1.155 V
	})
	rOsc := mustRun(t, cfg, k, oscillate)
	if rOsc.Transitions == 0 {
		t.Fatal("oscillating controller caused no transitions")
	}
	rStatic := mustRun(t, cfg, k, nil)
	if rOsc.ExecTimePs <= rStatic.ExecTimePs {
		t.Fatalf("oscillating DVFS (%d transitions) not slower than static: %d <= %d",
			rOsc.Transitions, rOsc.ExecTimePs, rStatic.ExecTimePs)
	}
}

func TestStallAttributionNonzero(t *testing.T) {
	cfg := tinyConfig()
	var got EpochStats
	sim, err := New(cfg, memoryTestKernel(500))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetObserver(func(s EpochStats) {
		if s.Epoch == 1 && s.Cluster == 0 {
			got = s
		}
	})
	sim.Run(testMaxPs)
	if got.Cycles == 0 {
		t.Fatal("epoch 1 not captured")
	}
	if got.StallMemLoad == 0 {
		t.Fatal("memory-streaming kernel shows no memory-hazard stalls")
	}
	if got.L1ReadMisses == 0 {
		t.Fatal("streaming kernel shows no L1 read misses")
	}
	if got.DRAMLines == 0 {
		t.Fatal("streaming kernel shows no DRAM traffic")
	}
}

func TestComputeKernelStallProfile(t *testing.T) {
	cfg := tinyConfig()
	var got EpochStats
	sim, err := New(cfg, computeTestKernel(5000))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetObserver(func(s EpochStats) {
		if s.Epoch == 1 && s.Cluster == 0 {
			got = s
		}
	})
	sim.Run(testMaxPs)
	if got.Cycles == 0 {
		t.Skip("kernel finished before epoch 1 at this configuration")
	}
	if got.StallMemLoad > got.StallCompute {
		t.Fatalf("compute kernel stalls dominated by memory: MH=%d CH=%d", got.StallMemLoad, got.StallCompute)
	}
	if got.IPC() <= 0 {
		t.Fatal("zero IPC in a busy epoch")
	}
}

func TestForceLevelTakesEffect(t *testing.T) {
	cfg := tinyConfig()
	sim, err := New(cfg, computeTestKernel(100))
	if err != nil {
		t.Fatal(err)
	}
	sim.ForceLevel(2)
	for c := 0; c < cfg.Clusters; c++ {
		if sim.ClusterLevel(c) != 2 {
			t.Fatalf("cluster %d level %d, want 2", c, sim.ClusterLevel(c))
		}
	}
}

func TestRunRespectsTimeLimit(t *testing.T) {
	cfg := tinyConfig()
	sim, err := New(cfg, computeTestKernel(1_000_000)) // enormous
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(50_000_000) // 50 µs
	res := sim.Run(limit)
	if res.Completed {
		t.Fatal("huge kernel reported completion under a tiny limit")
	}
	if res.ExecTimePs != limit {
		t.Fatalf("ExecTimePs = %d, want limit %d", res.ExecTimePs, limit)
	}
}

func TestEnergyAccumulatesMonotonically(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	var energies []float64
	sim.SetObserver(func(s EpochStats) {
		if s.EnergyPJ < 0 {
			t.Errorf("negative epoch energy: %+v", s)
		}
		energies = append(energies, s.EnergyPJ)
	})
	res := sim.Run(testMaxPs)
	var sum float64
	for _, e := range energies {
		sum += e
	}
	// Total includes the tail epoch, so it must be at least the sum of
	// finalized epochs.
	if res.EnergyPJ < sum {
		t.Fatalf("total energy %g below sum of epochs %g", res.EnergyPJ, sum)
	}
}

func TestSchedulerPoliciesBothComplete(t *testing.T) {
	for _, policy := range []SchedulerPolicy{SchedLRR, SchedGTO} {
		cfg := tinyConfig()
		cfg.Scheduler = policy
		k := memoryTestKernel(150)
		res := mustRun(t, cfg, k, nil)
		want := k.TotalInstructions() * int64(cfg.Clusters)
		if res.Instructions != want {
			t.Fatalf("%v: instructions = %d, want %d", policy, res.Instructions, want)
		}
	}
}

func TestSchedulerPolicyChangesTiming(t *testing.T) {
	// The two policies are different machines; on a mixed kernel their
	// interleavings (and thus cache behaviour and timing) should differ.
	mixed := memoryTestKernel(200)
	mixed.Programs[0].Body = append(mixed.Programs[0].Body,
		isa.Instruction{Op: isa.OpFAlu, Dst: 3, SrcA: 2},
		isa.Instruction{Op: isa.OpFAlu, Dst: 4, SrcA: 3},
	)
	times := map[SchedulerPolicy]int64{}
	for _, policy := range []SchedulerPolicy{SchedLRR, SchedGTO} {
		cfg := tinyConfig()
		cfg.Scheduler = policy
		res := mustRun(t, cfg, mixed, nil)
		times[policy] = res.ExecTimePs
	}
	if times[SchedLRR] == times[SchedGTO] {
		t.Logf("warning: LRR and GTO produced identical timing (%d ps); acceptable but suspicious", times[SchedLRR])
	}
}

func TestSchedulerValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scheduler = SchedulerPolicy(9)
	if _, err := New(cfg, computeTestKernel(10)); err == nil {
		t.Fatal("invalid scheduler accepted")
	}
}

// TestInstructionConservation: DVFS decisions change *when* instructions
// execute, never *how many* — any controller must retire exactly the
// kernel's instruction count.
func TestInstructionConservation(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(120)
	want := k.TotalInstructions() * int64(cfg.Clusters)
	controllers := []Controller{
		nil,
		&fixedController{level: 0},
		controllerFunc(func(s EpochStats) int { return (s.Epoch + s.Cluster) % cfg.OPs.Len() }),
		controllerFunc(func(s EpochStats) int { return 5 - s.Epoch%6 }),
	}
	for i, ctrl := range controllers {
		sim, err := New(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if ctrl != nil {
			sim.SetController(ctrl)
		}
		res := sim.Run(testMaxPs)
		if !res.Completed {
			t.Fatalf("controller %d: incomplete", i)
		}
		if res.Instructions != want {
			t.Fatalf("controller %d: %d instructions, want %d (DVFS must conserve work)",
				i, res.Instructions, want)
		}
	}
}

func TestControllerLevelClamped(t *testing.T) {
	cfg := tinyConfig()
	k := computeTestKernel(3000)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	// A controller returning wild levels must be clamped, not crash.
	sim.SetController(controllerFunc(func(s EpochStats) int { return 999 }))
	sim.RunUntil(2 * cfg.EpochPs)
	for c := 0; c < cfg.Clusters; c++ {
		if got := sim.ClusterLevel(c); got != cfg.OPs.Default() {
			t.Fatalf("cluster %d level %d, want clamped %d", c, got, cfg.OPs.Default())
		}
	}
	sim2, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	sim2.SetController(controllerFunc(func(s EpochStats) int { return -50 }))
	sim2.RunUntil(2 * cfg.EpochPs)
	if got := sim2.ClusterLevel(0); got != 0 {
		t.Fatalf("negative level clamped to %d, want 0", got)
	}
}

func TestEpochStatsPowerPositiveWhileRunning(t *testing.T) {
	cfg := tinyConfig()
	sim, err := New(cfg, memoryTestKernel(300))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetObserver(func(s EpochStats) {
		if s.WarpsActive > 0 && s.PowerW() <= 0 {
			t.Errorf("epoch %d cluster %d: power %g with active warps", s.Epoch, s.Cluster, s.PowerW())
		}
		if s.StaticPowerW <= 0 {
			t.Errorf("epoch %d: static power %g", s.Epoch, s.StaticPowerW)
		}
	})
	sim.Run(testMaxPs)
}

// TestLowerFrequencyNeverHelpsLatency is the core physical sanity check
// across the whole kernel suite shape space: for every archetype, exec
// time at the minimum level is >= exec time at the default level.
func TestLowerFrequencyNeverHelpsLatency(t *testing.T) {
	kernelsToTry := []Kernel{computeTestKernel(800), memoryTestKernel(150)}
	for _, k := range kernelsToTry {
		cfg := tinyConfig()
		var tMin, tDef int64
		for _, lvl := range []int{0, cfg.OPs.Default()} {
			sim, err := New(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			sim.ForceLevel(lvl)
			res := sim.Run(testMaxPs)
			if lvl == 0 {
				tMin = res.ExecTimePs
			} else {
				tDef = res.ExecTimePs
			}
		}
		if tMin < tDef {
			t.Fatalf("%s: min frequency finished faster (%d < %d ps)", k.Name, tMin, tDef)
		}
	}
}

// TestEpochStatsInvariants drives a mixed simulation and checks internal
// consistency of every epoch snapshot: op counts sum to the instruction
// count, active cycles never exceed cycles, and cache hits never exceed
// accesses.
func TestEpochStatsInvariants(t *testing.T) {
	cfg := tinyConfig()
	k := memoryTestKernel(300)
	k.Programs[0].Body = append(k.Programs[0].Body,
		isa.Instruction{Op: isa.OpIAlu, Dst: 3, SrcA: 2},
		isa.Instruction{Op: isa.OpBranch, SrcA: 3},
		isa.Instruction{Op: isa.OpLoadShared, Dst: 4},
		isa.Instruction{Op: isa.OpStoreGlobal, SrcA: 4, Mem: isa.MemSpec{
			Base: 0x9000_0000, FootprintBytes: 1 << 20, StrideBytes: 256,
			CoalescedLines: 2, Pattern: isa.PatternSequential,
		}},
	)
	sim, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	sim.SetObserver(func(s EpochStats) {
		checked++
		var opSum int64
		for _, n := range s.OpCounts {
			opSum += n
		}
		if opSum != s.Instructions {
			t.Errorf("epoch %d: op counts sum %d != instructions %d", s.Epoch, opSum, s.Instructions)
		}
		if s.ActiveCycles > s.Cycles {
			t.Errorf("epoch %d: active cycles %d > cycles %d", s.Epoch, s.ActiveCycles, s.Cycles)
		}
		if s.L2Hits > s.L2Accesses || s.L2Hits+s.L2Misses != s.L2Accesses {
			t.Errorf("epoch %d: L2 accounting %d+%d != %d", s.Epoch, s.L2Hits, s.L2Misses, s.L2Accesses)
		}
		if s.DRAMLines > s.L2Misses {
			t.Errorf("epoch %d: DRAM lines %d exceed L2 misses %d", s.Epoch, s.DRAMLines, s.L2Misses)
		}
		if s.EnergyPJ < 0 || s.DynPowerW < 0 || s.StaticPowerW <= 0 {
			t.Errorf("epoch %d: bad power %g/%g/%g", s.Epoch, s.EnergyPJ, s.DynPowerW, s.StaticPowerW)
		}
	})
	res := sim.Run(testMaxPs)
	if !res.Completed || checked == 0 {
		t.Fatalf("completed=%v epochs checked=%d", res.Completed, checked)
	}
}
