package gpusim

import (
	"testing"

	"ssmdvfs/internal/isa"
)

// newTestCluster builds a 1-warp cluster around the given body with its
// own memory system, for direct pipeline-level testing.
func newTestCluster(t *testing.T, cfg Config, body []isa.Instruction, iters, warps int) (*cluster, *memSystem) {
	t.Helper()
	k := isa.Kernel{
		Name:            "unit",
		WarpsPerCluster: warps,
		Programs:        []isa.Program{{Body: body, Iterations: iters}},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	return newCluster(0, &cfg, &k), newMemSystem(cfg)
}

// stepUntilIssued steps the cluster until n instructions have issued or
// the cycle budget runs out, returning cycles spent.
func stepUntilIssued(t *testing.T, c *cluster, mem *memSystem, n int64, budget int) int {
	t.Helper()
	for cycles := 0; cycles < budget; cycles++ {
		if c.acc.instructions >= n {
			return cycles
		}
		c.step(mem)
	}
	t.Fatalf("only %d of %d instructions issued within %d cycles", c.acc.instructions, n, budget)
	return 0
}

func TestRAWHazardDelaysDependent(t *testing.T) {
	cfg := SmallConfig()
	// r1 <- FALU; r2 <- FALU(r1): the second must wait FAluLatency cycles.
	body := []isa.Instruction{
		{Op: isa.OpFAlu, Dst: 1, SrcA: 2},
		{Op: isa.OpFAlu, Dst: 3, SrcA: 1},
	}
	c, mem := newTestCluster(t, cfg, body, 1, 1)
	cycles := stepUntilIssued(t, c, mem, 2, 1000)
	// Issue at cycle 0, dependent ready after FAluLatency cycles.
	if cycles < cfg.FAluLatency {
		t.Fatalf("dependent issued after %d cycles, want >= %d", cycles, cfg.FAluLatency)
	}
	if c.acc.stallCompute == 0 {
		t.Fatal("RAW wait not attributed to compute stalls")
	}
}

func TestDualIssueAcrossWarps(t *testing.T) {
	cfg := SmallConfig()
	// Each warp issues at most one instruction per cycle; with two warps
	// and IssueWidth=2, both issue in the same cycle.
	body := []isa.Instruction{{Op: isa.OpFAlu, Dst: 1}}
	c, mem := newTestCluster(t, cfg, body, 1, 2)
	c.step(mem)
	if c.acc.instructions != 2 {
		t.Fatalf("issued %d instructions in the first cycle, want 2", c.acc.instructions)
	}
	if c.acc.activeCycles != 1 {
		t.Fatalf("activeCycles = %d, want 1", c.acc.activeCycles)
	}
}

func TestSingleWarpIssuesOnePerCycle(t *testing.T) {
	cfg := SmallConfig()
	// One warp with two independent ops still needs two cycles: warps
	// are the unit of issue parallelism.
	body := []isa.Instruction{
		{Op: isa.OpFAlu, Dst: 1},
		{Op: isa.OpIAlu, Dst: 2},
	}
	c, mem := newTestCluster(t, cfg, body, 1, 1)
	c.step(mem)
	if c.acc.instructions != 1 {
		t.Fatalf("single warp issued %d in one cycle, want 1", c.acc.instructions)
	}
	c.step(mem)
	if c.acc.instructions != 2 {
		t.Fatalf("second op not issued on cycle 2: %d", c.acc.instructions)
	}
}

func TestSFUStructuralLimit(t *testing.T) {
	cfg := SmallConfig() // SFUUnits = 1
	// Two warps, both wanting SFU in the same cycle: only one issues.
	body := []isa.Instruction{{Op: isa.OpSFU, Dst: 1}}
	c, mem := newTestCluster(t, cfg, body, 1, 2)
	c.step(mem)
	if c.acc.instructions != 1 {
		t.Fatalf("SFU issued %d in one cycle, want 1 (structural limit)", c.acc.instructions)
	}
	if c.acc.stallCompute == 0 {
		t.Fatal("losing warp not counted as compute-stalled")
	}
	c.step(mem)
	if c.acc.instructions != 2 {
		t.Fatalf("second SFU not issued on the next cycle: %d", c.acc.instructions)
	}
}

func TestLSUStructuralLimitIsMemOther(t *testing.T) {
	cfg := SmallConfig() // LSUUnits = 1
	mem1 := isa.MemSpec{Base: 0, FootprintBytes: 1 << 20, StrideBytes: 64, CoalescedLines: 1, Pattern: isa.PatternSequential}
	body := []isa.Instruction{{Op: isa.OpLoadGlobal, Dst: 1, Mem: mem1}}
	c, memsys := newTestCluster(t, cfg, body, 1, 2)
	c.step(memsys)
	if c.acc.instructions != 1 {
		t.Fatalf("LSU issued %d in one cycle, want 1", c.acc.instructions)
	}
	if c.acc.stallMemOther == 0 {
		t.Fatal("LSU-busy stall not attributed to MH\\L")
	}
}

func TestMSHRLimitBlocksLoads(t *testing.T) {
	cfg := SmallConfig()
	cfg.MSHRs = 2
	// Each warp issues one independent long-latency load; with 2 MSHRs
	// only two loads can be outstanding.
	mem1 := isa.MemSpec{Base: 0, FootprintBytes: 1 << 26, StrideBytes: 4096,
		WarpStrideBytes: 1 << 16, CoalescedLines: 1, Pattern: isa.PatternSequential}
	body := []isa.Instruction{{Op: isa.OpLoadGlobal, Dst: 1, Mem: mem1}}
	c, memsys := newTestCluster(t, cfg, body, 1, 4)
	c.step(memsys)
	c.step(memsys)
	c.step(memsys)
	if len(c.outstandingLoads) > 2 {
		t.Fatalf("%d outstanding loads exceed %d MSHRs", len(c.outstandingLoads), cfg.MSHRs)
	}
	if c.acc.stallMemOther == 0 {
		t.Fatal("MSHR-full stall not attributed to MH\\L")
	}
}

func TestStoreQueueLimit(t *testing.T) {
	cfg := SmallConfig()
	cfg.StoreQueue = 1
	mem1 := isa.MemSpec{Base: 0, FootprintBytes: 1 << 26, StrideBytes: 4096,
		WarpStrideBytes: 1 << 16, CoalescedLines: 1, Pattern: isa.PatternSequential}
	body := []isa.Instruction{{Op: isa.OpStoreGlobal, SrcA: 1, Mem: mem1}}
	c, memsys := newTestCluster(t, cfg, body, 1, 3)
	c.step(memsys)
	c.step(memsys)
	if len(c.outstandingStores) > 1 {
		t.Fatalf("%d outstanding stores exceed the queue of 1", len(c.outstandingStores))
	}
}

func TestBranchPacing(t *testing.T) {
	cfg := SmallConfig()
	body := []isa.Instruction{
		{Op: isa.OpBranch},
		{Op: isa.OpIAlu, Dst: 1},
	}
	c, mem := newTestCluster(t, cfg, body, 1, 1)
	cycles := stepUntilIssued(t, c, mem, 2, 1000)
	if cycles < cfg.BranchLatency {
		t.Fatalf("post-branch instruction issued after %d cycles, want >= %d (refill)",
			cycles, cfg.BranchLatency)
	}
	if c.acc.stallControl == 0 {
		t.Fatal("branch refill not attributed to control stalls")
	}
}

func TestWAWHazardBlocks(t *testing.T) {
	cfg := SmallConfig()
	// Two writes to r1 back to back: the second must wait for the first
	// (in-order writeback through the scoreboard).
	body := []isa.Instruction{
		{Op: isa.OpSFU, Dst: 1},
		{Op: isa.OpIAlu, Dst: 1},
	}
	c, mem := newTestCluster(t, cfg, body, 1, 1)
	c.step(mem)
	if c.acc.instructions != 1 {
		t.Fatalf("both WAW writes issued in one cycle")
	}
	cycles := stepUntilIssued(t, c, mem, 2, 1000)
	if cycles < cfg.SFULatency {
		t.Fatalf("WAW write issued after %d cycles, want >= %d", cycles, cfg.SFULatency)
	}
}

func TestZeroRegisterNeverBlocks(t *testing.T) {
	cfg := SmallConfig()
	// Writes to r0 are discarded: back-to-back r0 writers never conflict
	// through the scoreboard (contrast with TestWAWHazardBlocks).
	body := []isa.Instruction{
		{Op: isa.OpSFU, Dst: 0},
		{Op: isa.OpIAlu, Dst: 0},
	}
	c, mem := newTestCluster(t, cfg, body, 1, 1)
	c.step(mem)
	c.step(mem)
	if c.acc.instructions != 2 {
		t.Fatalf("r0 writers issued %d after two cycles, want 2 (no WAW)", c.acc.instructions)
	}
}

func TestL1HitFasterThanMiss(t *testing.T) {
	cfg := SmallConfig()
	resident := isa.MemSpec{Base: 0x100, FootprintBytes: 64, StrideBytes: 0, CoalescedLines: 1, Pattern: isa.PatternSequential}
	// load r1; consume r1: iteration 2 hits L1 and completes faster.
	body := []isa.Instruction{
		{Op: isa.OpLoadGlobal, Dst: 1, Mem: resident},
		{Op: isa.OpFAlu, Dst: 2, SrcA: 1},
	}
	c, mem := newTestCluster(t, cfg, body, 2, 1)
	missCycles := stepUntilIssued(t, c, mem, 2, 100000)
	start := c.acc.cycles
	stepUntilIssued(t, c, mem, 4, 100000)
	hitCycles := int(c.acc.cycles - start)
	if hitCycles >= missCycles {
		t.Fatalf("L1 hit iteration (%d cycles) not faster than miss iteration (%d)", hitCycles, missCycles)
	}
	if c.acc.l1ReadHits == 0 || c.acc.l1ReadMisses == 0 {
		t.Fatalf("expected both hits (%d) and misses (%d)", c.acc.l1ReadHits, c.acc.l1ReadMisses)
	}
}
