package gpusim

import (
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/power"
)

// EpochStats is the per-cluster snapshot produced at every epoch boundary.
// It is the raw material from which the 47 performance counters (package
// counters) and all controller inputs are derived.
type EpochStats struct {
	Cluster int
	Epoch   int
	StartPs int64
	EndPs   int64

	// Level and OP are the operating point in force during the epoch.
	Level int
	OP    clockdomain.OperatingPoint

	OpCounts     [isa.NumOps]int64
	Instructions int64
	Cycles       int64
	ActiveCycles int64

	StallMemLoad   int64 // MH: warp waiting on global-load data
	StallMemOther  int64 // MH\L: LSU busy / MSHR full / store queue full
	StallCompute   int64 // waiting on ALU/SFU/shared results or units
	StallControl   int64 // branch pipeline refill
	ReadyNotIssued int64
	DVFSStall      int64

	L1ReadHits      int64
	L1ReadMisses    int64
	L1WriteAccesses int64
	L2Accesses      int64
	L2Hits          int64
	L2Misses        int64
	DRAMLines       int64
	SharedLoads     int64
	Branches        int64

	WarpsActive int // warps not yet finished at epoch end

	DynPowerW    float64
	StaticPowerW float64
	EnergyPJ     float64
}

// IPC returns instructions per cycle for the epoch (0 if no cycles ran).
func (s EpochStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// PowerW returns total average power over the epoch.
func (s EpochStats) PowerW() float64 { return s.DynPowerW + s.StaticPowerW }

// L1ReadMissRate returns the L1 read miss ratio (0 if no reads).
func (s EpochStats) L1ReadMissRate() float64 {
	total := s.L1ReadHits + s.L1ReadMisses
	if total == 0 {
		return 0
	}
	return float64(s.L1ReadMisses) / float64(total)
}

// activity converts the accumulated counts into a power.Activity.
func (a *epochAccum) activity() power.Activity {
	return power.Activity{
		OpCounts:   a.opCounts,
		Cycles:     a.cycles,
		L1Accesses: a.l1ReadHits + a.l1ReadMisses + a.l1WriteAccesses,
		L2Accesses: a.l2Accesses,
		DRAMLines:  a.dramLines,
	}
}

// Result summarizes a completed (or time-limited) simulation run.
type Result struct {
	// ExecTimePs is when the last warp finished (or the time limit).
	ExecTimePs int64
	// EnergyPJ is total chip energy over the run.
	EnergyPJ float64
	// Instructions is the total dynamic instruction count executed.
	Instructions int64
	// Epochs is how many full DVFS epochs elapsed.
	Epochs int
	// Completed reports whether every warp ran to completion within the
	// time limit.
	Completed bool
	// Transitions is the total number of V/f changes across clusters.
	Transitions int
}

// EDP returns the run's energy-delay product in joule-seconds.
func (r Result) EDP() float64 { return power.EDP(r.EnergyPJ, r.ExecTimePs) }

// EnergyJ returns the run's energy in joules.
func (r Result) EnergyJ() float64 { return r.EnergyPJ * 1e-12 }
