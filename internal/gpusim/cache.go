package gpusim

// cache is a set-associative cache with true-LRU replacement, keyed by
// line address (byte address >> lineShift). It stores tags only — the
// simulator models timing and occupancy, not data contents.
type cache struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64

	// tags[set*ways+way] holds the line tag; valid[..] its validity.
	tags  []uint64
	valid []bool
	// lru[set*ways+way] is a recency stamp; larger = more recent.
	lru   []uint64
	stamp uint64

	hits   int64
	misses int64
}

func log2i(v int) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

func newCache(cfg CacheConfig) *cache {
	n := cfg.Sets * cfg.Ways
	return &cache{
		sets:      cfg.Sets,
		ways:      cfg.Ways,
		lineShift: log2i(cfg.LineBytes),
		setMask:   uint64(cfg.Sets - 1),
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		lru:       make([]uint64, n),
	}
}

// lookup probes the cache for the line containing addr, updating LRU on a
// hit. It does not allocate on a miss; callers decide allocation policy.
func (c *cache) lookup(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.stamp++
			c.lru[base+w] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// fill inserts the line containing addr, evicting the LRU way if needed.
func (c *cache) fill(addr uint64) {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.stamp++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.stamp
}

// contains probes without touching LRU or hit/miss counters (test helper).
func (c *cache) contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// reset clears contents and statistics.
func (c *cache) reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.stamp = 0
	c.hits = 0
	c.misses = 0
}

// clone returns a deep copy (for simulator state snapshots).
func (c *cache) clone() *cache {
	cp := &cache{
		sets:      c.sets,
		ways:      c.ways,
		lineShift: c.lineShift,
		setMask:   c.setMask,
		tags:      append([]uint64(nil), c.tags...),
		valid:     append([]bool(nil), c.valid...),
		lru:       append([]uint64(nil), c.lru...),
		stamp:     c.stamp,
		hits:      c.hits,
		misses:    c.misses,
	}
	return cp
}
