// Package gpusim implements a deterministic cycle-level multi-cluster
// SIMT GPU simulator, the substrate the paper evaluates on (a GPGPU-Sim
// substitute). Each cluster owns an independent clock domain so DVFS can
// be applied per cluster; core cycles stretch with frequency while the
// L2/DRAM side is timed in wall-clock picoseconds, which is exactly the
// mechanism that gives real GPUs their workload-dependent frequency
// sensitivity.
package gpusim

import (
	"fmt"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/power"
)

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	Sets      int
	Ways      int
	LineBytes int
}

// Bytes returns the cache capacity in bytes.
func (c CacheConfig) Bytes() int { return c.Sets * c.Ways * c.LineBytes }

// Validate checks the geometry: sets must be a power of two so line
// addresses index sets with a mask.
func (c CacheConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("gpusim: cache sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("gpusim: cache ways must be positive, got %d", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("gpusim: cache line bytes must be a positive power of two, got %d", c.LineBytes)
	}
	return nil
}

// SchedulerPolicy selects how the warp scheduler orders candidates each
// cycle.
type SchedulerPolicy uint8

const (
	// SchedLRR is loose round-robin: the start position rotates after
	// every cycle that issued.
	SchedLRR SchedulerPolicy = iota
	// SchedGTO is greedy-then-oldest: keep issuing from the last
	// successful warp until it stalls, then fall back to ascending warp
	// age. GTO typically improves latency hiding on memory-bound kernels
	// by letting one warp run ahead and queue its misses early.
	SchedGTO
)

func (p SchedulerPolicy) String() string {
	switch p {
	case SchedLRR:
		return "lrr"
	case SchedGTO:
		return "gto"
	default:
		return fmt.Sprintf("scheduler(%d)", uint8(p))
	}
}

// Config describes the simulated GPU. The zero value is not usable; start
// from TitanXConfig or SmallConfig.
type Config struct {
	// Clusters is the number of SM clusters (each its own clock domain).
	Clusters int
	// Scheduler is the warp scheduling policy (default loose round-robin).
	Scheduler SchedulerPolicy
	// IssueWidth is how many warps may issue one instruction per cycle.
	IssueWidth int
	// ALUUnits / SFUUnits / LSUUnits bound per-cycle issues per class.
	ALUUnits int
	SFUUnits int
	LSUUnits int

	// Instruction latencies in core cycles (they scale with frequency).
	IAluLatency   int
	FAluLatency   int
	SFULatency    int
	SharedLatency int
	BranchLatency int
	L1HitCycles   int

	// L1 is private per cluster; L2 is shared by all clusters.
	L1 CacheConfig
	L2 CacheConfig

	// Wall-clock memory timing (frequency independent).
	L2LatencyPs   int64
	DRAMLatencyPs int64
	// DRAMLineServicePs is the bandwidth cost of one line per channel:
	// a channel can start a new line transfer every DRAMLineServicePs.
	DRAMLineServicePs int64
	DRAMChannels      int

	// MSHRs is the per-cluster limit on outstanding load misses.
	MSHRs int
	// StoreQueue is the per-cluster limit on outstanding stores.
	StoreQueue int

	// EpochPs is the DVFS decision period (the paper uses 10 µs).
	EpochPs int64

	// OPs is the operating-point table; IVR models transition cost.
	OPs *clockdomain.Table
	IVR clockdomain.IVRModel

	// Power is the activity-based power model.
	Power power.Model
}

// TitanXConfig returns the full 24-cluster configuration matching the
// paper's GTX Titan X setup with 10 µs DVFS epochs.
func TitanXConfig() Config {
	return Config{
		Clusters:   24,
		IssueWidth: 2,
		ALUUnits:   2,
		SFUUnits:   1,
		LSUUnits:   1,

		IAluLatency:   4,
		FAluLatency:   6,
		SFULatency:    16,
		SharedLatency: 24,
		BranchLatency: 8,
		L1HitCycles:   28,

		L1: CacheConfig{Sets: 64, Ways: 4, LineBytes: 64},    // 16 KiB
		L2: CacheConfig{Sets: 2048, Ways: 16, LineBytes: 64}, // 2 MiB

		L2LatencyPs:       180_000, // 180 ns
		DRAMLatencyPs:     320_000, // 320 ns
		DRAMLineServicePs: 1_600,   // 64 B / 1.6 ns ≈ 40 GB/s per channel
		DRAMChannels:      8,

		MSHRs:      32,
		StoreQueue: 16,

		EpochPs: 10_000_000, // 10 µs

		OPs: clockdomain.TitanX(),
		IVR: clockdomain.DefaultIVR(),

		Power: power.Default(),
	}
}

// SmallConfig returns a 4-cluster configuration with the same relative
// timing, for unit tests and fast experiments.
func SmallConfig() Config {
	c := TitanXConfig()
	c.Clusters = 4
	c.L2 = CacheConfig{Sets: 512, Ways: 8, LineBytes: 64} // 256 KiB
	c.DRAMChannels = 4
	return c
}

// Validate checks the whole configuration for consistency.
func (c Config) Validate() error {
	if c.Clusters <= 0 {
		return fmt.Errorf("gpusim: Clusters must be positive, got %d", c.Clusters)
	}
	if c.Scheduler != SchedLRR && c.Scheduler != SchedGTO {
		return fmt.Errorf("gpusim: unknown scheduler policy %d", c.Scheduler)
	}
	if c.IssueWidth <= 0 || c.ALUUnits <= 0 || c.SFUUnits <= 0 || c.LSUUnits <= 0 {
		return fmt.Errorf("gpusim: issue/unit widths must be positive")
	}
	for _, l := range []int{c.IAluLatency, c.FAluLatency, c.SFULatency, c.SharedLatency, c.BranchLatency, c.L1HitCycles} {
		if l <= 0 {
			return fmt.Errorf("gpusim: instruction latencies must be positive")
		}
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("gpusim: L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("gpusim: L2: %w", err)
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("gpusim: L1 and L2 line sizes must match (%d vs %d)", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.L2LatencyPs <= 0 || c.DRAMLatencyPs <= 0 || c.DRAMLineServicePs <= 0 {
		return fmt.Errorf("gpusim: memory latencies must be positive")
	}
	if c.DRAMChannels <= 0 {
		return fmt.Errorf("gpusim: DRAMChannels must be positive, got %d", c.DRAMChannels)
	}
	if c.MSHRs <= 0 || c.StoreQueue <= 0 {
		return fmt.Errorf("gpusim: MSHRs and StoreQueue must be positive")
	}
	if c.EpochPs <= 0 {
		return fmt.Errorf("gpusim: EpochPs must be positive, got %d", c.EpochPs)
	}
	if c.OPs == nil {
		return fmt.Errorf("gpusim: OPs table is nil")
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	return nil
}
