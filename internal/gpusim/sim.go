package gpusim

import (
	"fmt"
	"math"
)

// Controller decides the operating-point level each cluster runs in the
// next epoch, given that cluster's just-completed epoch statistics. It is
// consulted once per cluster per epoch boundary, in ascending cluster
// order (so stateful controllers see a deterministic call sequence).
//
// A nil controller leaves every cluster at the table's default level.
type Controller interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Decide returns the OP level for the cluster's next epoch.
	Decide(stats EpochStats) int
}

// EpochObserver receives every epoch snapshot; used by the data-generation
// pipeline and experiment harness to record traces without influencing
// decisions.
type EpochObserver func(stats EpochStats)

// Simulator drives a kernel over the configured GPU. Create one with New,
// optionally attach a Controller, then Run.
type Simulator struct {
	cfg    Config
	kernel isaKernelRef

	mem      *memSystem
	clusters []*cluster

	controller Controller
	observer   EpochObserver

	epochIdx      int
	totalEnergyPJ float64
	totalInstr    int64
	lastFinishPs  int64
}

// isaKernelRef keeps the kernel by value; programs inside are referenced
// by pointer from warps, so the kernel must not be mutated after New.
type isaKernelRef struct {
	name string
}

// New builds a simulator for the kernel under the given configuration.
func New(cfg Config, kernel Kernel) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := kernel.Validate(); err != nil {
		return nil, err
	}
	// Copy the kernel so callers cannot mutate shared program state.
	k := kernel
	k.Programs = append([]Program(nil), kernel.Programs...)

	s := &Simulator{
		cfg:    cfg,
		kernel: isaKernelRef{name: k.Name},
		mem:    newMemSystem(cfg),
	}
	s.clusters = make([]*cluster, cfg.Clusters)
	for i := range s.clusters {
		s.clusters[i] = newCluster(i, &s.cfg, &k)
	}
	return s, nil
}

// SetController installs the DVFS mechanism consulted at epoch boundaries.
func (s *Simulator) SetController(c Controller) { s.controller = c }

// SetObserver installs a callback invoked with every cluster's epoch
// snapshot at each boundary (after the controller has been consulted).
func (s *Simulator) SetObserver(o EpochObserver) { s.observer = o }

// KernelName returns the name of the kernel being simulated.
func (s *Simulator) KernelName() string { return s.kernel.name }

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// NowPs returns the simulation time: the earliest next tick over active
// clusters, or the last finish time when all clusters are done.
func (s *Simulator) NowPs() int64 {
	minT := int64(math.MaxInt64)
	active := false
	for _, c := range s.clusters {
		if c.done {
			continue
		}
		active = true
		if c.nowPs < minT {
			minT = c.nowPs
		}
	}
	if !active {
		return s.lastFinishPs
	}
	return minT
}

// Done reports whether every warp on every cluster has finished.
func (s *Simulator) Done() bool {
	for _, c := range s.clusters {
		if !c.done {
			return false
		}
	}
	return true
}

// TotalInstructions returns instructions executed so far (finalized epochs
// plus the in-flight epoch).
func (s *Simulator) TotalInstructions() int64 {
	t := s.totalInstr
	for _, c := range s.clusters {
		t += c.acc.instructions
	}
	return t
}

// ClusterLevel returns cluster i's current operating-point level.
func (s *Simulator) ClusterLevel(i int) int { return s.clusters[i].domain.Level() }

// ForceLevel pins every cluster to the given level immediately (used to
// run whole programs at a fixed operating point, e.g. for data
// generation's frequency-scaling window). The IVR transition cost applies.
func (s *Simulator) ForceLevel(level int) {
	now := s.NowPs()
	for _, c := range s.clusters {
		c.domain.SetLevel(level, now)
		c.epochLevel = c.domain.Level()
	}
}

// epochEndPs returns the wall-clock end of the current epoch.
func (s *Simulator) epochEndPs() int64 {
	return int64(s.epochIdx+1) * s.cfg.EpochPs
}

// finalizeEpoch snapshots every cluster's accumulated counters, charges
// energy, consults the controller, and opens the next epoch.
func (s *Simulator) finalizeEpoch() {
	start := int64(s.epochIdx) * s.cfg.EpochPs
	end := s.epochEndPs()

	snaps := make([]EpochStats, len(s.clusters))
	for i, c := range s.clusters {
		op := s.cfg.OPs.Point(c.epochLevel)
		act := c.acc.activity()
		dynW, statW := s.cfg.Power.EpochPowerW(act, op, s.cfg.EpochPs)
		energy := s.cfg.Power.EpochEnergyPJ(act, op, s.cfg.EpochPs)
		s.totalEnergyPJ += energy
		s.totalInstr += c.acc.instructions

		snaps[i] = EpochStats{
			Cluster:         i,
			Epoch:           s.epochIdx,
			StartPs:         start,
			EndPs:           end,
			Level:           c.epochLevel,
			OP:              op,
			OpCounts:        c.acc.opCounts,
			Instructions:    c.acc.instructions,
			Cycles:          c.acc.cycles,
			ActiveCycles:    c.acc.activeCycles,
			StallMemLoad:    c.acc.stallMemLoad,
			StallMemOther:   c.acc.stallMemOther,
			StallCompute:    c.acc.stallCompute,
			StallControl:    c.acc.stallControl,
			ReadyNotIssued:  c.acc.readyNotIssued,
			DVFSStall:       c.acc.dvfsStall,
			L1ReadHits:      c.acc.l1ReadHits,
			L1ReadMisses:    c.acc.l1ReadMisses,
			L1WriteAccesses: c.acc.l1WriteAccesses,
			L2Accesses:      c.acc.l2Accesses,
			L2Hits:          c.acc.l2Hits,
			L2Misses:        c.acc.l2Misses,
			DRAMLines:       c.acc.dramLines,
			SharedLoads:     c.acc.sharedLoads,
			Branches:        c.acc.branches,
			WarpsActive:     len(c.warps) - c.finishedWarps,
			DynPowerW:       dynW,
			StaticPowerW:    statW,
			EnergyPJ:        energy,
		}
		c.acc = epochAccum{}
	}

	for i, c := range s.clusters {
		if s.controller != nil && !c.done {
			level := s.cfg.OPs.Clamp(s.controller.Decide(snaps[i]))
			c.domain.SetLevel(level, end)
		}
		c.epochLevel = c.domain.Level()
	}
	if s.observer != nil {
		for _, snap := range snaps {
			s.observer(snap)
		}
	}
	s.epochIdx++
}

// RunUntil advances the simulation until simulated time reaches targetPs
// or every warp completes. Epoch boundaries strictly before targetPs are
// finalized.
func (s *Simulator) RunUntil(targetPs int64) {
	for {
		// Find the active cluster with the earliest next tick.
		var next *cluster
		for _, c := range s.clusters {
			if c.done {
				continue
			}
			if next == nil || c.nowPs < next.nowPs {
				next = c
			}
		}
		if next == nil {
			return // all finished
		}
		if end := s.epochEndPs(); next.nowPs >= end {
			if end > targetPs {
				return
			}
			s.finalizeEpoch()
			continue
		}
		if next.nowPs >= targetPs {
			return
		}
		next.step(s.mem)
		if next.done && next.lastFinishPs > s.lastFinishPs {
			s.lastFinishPs = next.lastFinishPs
		}
	}
}

// Run executes until completion or maxPs, whichever comes first, and
// returns the run summary. The final partial epoch's energy is charged
// pro-rata for the time actually simulated.
func (s *Simulator) Run(maxPs int64) Result {
	s.RunUntil(maxPs)

	completed := s.Done()
	execPs := s.lastFinishPs
	if !completed {
		execPs = maxPs
	}

	// Charge the unfinalized tail epoch.
	tailStart := int64(s.epochIdx) * s.cfg.EpochPs
	tailPs := execPs - tailStart
	if tailPs > 0 {
		for _, c := range s.clusters {
			op := s.cfg.OPs.Point(c.epochLevel)
			energy := s.cfg.Power.EpochEnergyPJ(c.acc.activity(), op, tailPs)
			s.totalEnergyPJ += energy
			s.totalInstr += c.acc.instructions
			c.acc = epochAccum{}
		}
	}

	transitions := 0
	for _, c := range s.clusters {
		transitions += c.domain.Transitions()
	}
	return Result{
		ExecTimePs:   execPs,
		EnergyPJ:     s.totalEnergyPJ,
		Instructions: s.totalInstr,
		Epochs:       s.epochIdx,
		Completed:    completed,
		Transitions:  transitions,
	}
}

// Clone deep-copies the entire simulator state, enabling the paper's
// data-generation methodology: snapshot at a breakpoint, then replay the
// continuation once per operating point.
func (s *Simulator) Clone() *Simulator {
	cp := &Simulator{
		cfg:           s.cfg,
		kernel:        s.kernel,
		mem:           s.mem.clone(),
		controller:    s.controller,
		observer:      s.observer,
		epochIdx:      s.epochIdx,
		totalEnergyPJ: s.totalEnergyPJ,
		totalInstr:    s.totalInstr,
		lastFinishPs:  s.lastFinishPs,
	}
	cp.clusters = make([]*cluster, len(s.clusters))
	for i, c := range s.clusters {
		cp.clusters[i] = c.clone(&cp.cfg)
	}
	return cp
}

func (s *Simulator) String() string {
	return fmt.Sprintf("sim{kernel=%s clusters=%d t=%dps epoch=%d}",
		s.kernel.name, len(s.clusters), s.NowPs(), s.epochIdx)
}
