package gpusim

// memSystem is the shared side of the memory hierarchy: a unified L2
// cache plus a multi-channel DRAM model. L2 and DRAM are on the memory
// clock, which is not scaled by core DVFS, so all timing here is in
// wall-clock picoseconds. Lowering core frequency therefore does not slow
// this path down — the mechanism behind workload-dependent frequency
// sensitivity.
type memSystem struct {
	l2 *cache

	l2LatencyPs   int64
	dramLatencyPs int64
	lineServicePs int64
	lineShift     uint

	// chanFreePs[i] is the earliest time channel i can accept a new line.
	chanFreePs []int64

	dramReadLines  int64
	dramWriteLines int64
}

func newMemSystem(cfg Config) *memSystem {
	return &memSystem{
		l2:            newCache(cfg.L2),
		l2LatencyPs:   cfg.L2LatencyPs,
		dramLatencyPs: cfg.DRAMLatencyPs,
		lineServicePs: cfg.DRAMLineServicePs,
		lineShift:     log2i(cfg.L2.LineBytes),
		chanFreePs:    make([]int64, cfg.DRAMChannels),
	}
}

func (m *memSystem) channel(addr uint64) int {
	return int((addr >> m.lineShift) % uint64(len(m.chanFreePs)))
}

// readLine services an L1 read miss for the line containing addr issued
// at nowPs. It returns the completion time, whether L2 hit, and whether a
// DRAM line transfer occurred.
func (m *memSystem) readLine(addr uint64, nowPs int64) (donePs int64, l2Hit, dram bool) {
	t := nowPs + m.l2LatencyPs
	if m.l2.lookup(addr) {
		return t, true, false
	}
	ch := m.channel(addr)
	start := t
	if m.chanFreePs[ch] > start {
		start = m.chanFreePs[ch]
	}
	m.chanFreePs[ch] = start + m.lineServicePs
	m.dramReadLines++
	m.l2.fill(addr)
	return start + m.lineServicePs + m.dramLatencyPs, false, true
}

// writeLine services a write-through store of the line containing addr.
// Stores allocate in L2 (write-allocate) and consume DRAM bandwidth on an
// L2 miss. The returned time is when the store has been accepted by the
// memory system (drained from the store queue), not a visibility point —
// the simulator has no consumers of store data.
func (m *memSystem) writeLine(addr uint64, nowPs int64) (donePs int64, l2Hit, dram bool) {
	t := nowPs + m.l2LatencyPs
	if m.l2.lookup(addr) {
		return t, true, false
	}
	ch := m.channel(addr)
	start := t
	if m.chanFreePs[ch] > start {
		start = m.chanFreePs[ch]
	}
	m.chanFreePs[ch] = start + m.lineServicePs
	m.dramWriteLines++
	m.l2.fill(addr)
	return start + m.lineServicePs, false, true
}

func (m *memSystem) clone() *memSystem {
	return &memSystem{
		l2:             m.l2.clone(),
		l2LatencyPs:    m.l2LatencyPs,
		dramLatencyPs:  m.dramLatencyPs,
		lineServicePs:  m.lineServicePs,
		lineShift:      m.lineShift,
		chanFreePs:     append([]int64(nil), m.chanFreePs...),
		dramReadLines:  m.dramReadLines,
		dramWriteLines: m.dramWriteLines,
	}
}
