package gpusim

import (
	"strconv"

	"ssmdvfs/internal/telemetry"
)

// TelemetryCollector is an EpochObserver that folds every epoch snapshot
// into a telemetry.Registry: wall-clock residency per operating level,
// the stall-cycle breakdown, instruction/cycle/energy totals, an IPC
// distribution, and — when a reference level sequence is attached —
// controller-vs-reference divergence counts. cmd/dvfsstat renders the
// resulting dump as residency tables and divergence summaries.
//
// All handles are resolved at construction; Observe performs only atomic
// updates and is safe to share across concurrently-running simulators.
type TelemetryCollector struct {
	epochs       *telemetry.Counter
	instructions *telemetry.Counter
	cycles       *telemetry.Counter
	activeCycles *telemetry.Counter
	energyPJ     *telemetry.Gauge
	transitions  *telemetry.Counter

	residencyPs []*telemetry.Counter // per level
	levelEpochs []*telemetry.Counter // per level
	stalls      map[string]*telemetry.Counter

	// ipcCentis observes 100×IPC so the log-2 histogram resolves the
	// IPC ∈ [0, ~8] range the simulator produces.
	ipcCentis *telemetry.Histogram

	agree       *telemetry.Counter
	diverge     *telemetry.Counter
	divergeDist *telemetry.Counter

	// reference[epoch] is the level an oracle (or any reference policy)
	// chose chip-wide for that epoch; nil disables divergence counting.
	reference []int
}

// stallKinds maps the metric label to the EpochStats accessor.
var stallKinds = []struct {
	kind string
	get  func(EpochStats) int64
}{
	{"mem_load", func(s EpochStats) int64 { return s.StallMemLoad }},
	{"mem_other", func(s EpochStats) int64 { return s.StallMemOther }},
	{"compute", func(s EpochStats) int64 { return s.StallCompute }},
	{"control", func(s EpochStats) int64 { return s.StallControl }},
	{"ready_not_issued", func(s EpochStats) int64 { return s.ReadyNotIssued }},
	{"dvfs", func(s EpochStats) int64 { return s.DVFSStall }},
}

// NewTelemetryCollector builds a collector for a table with the given
// number of operating levels, registering its series in reg.
func NewTelemetryCollector(reg *telemetry.Registry, levels int) *TelemetryCollector {
	c := &TelemetryCollector{
		epochs:       reg.Counter("sim_epochs_total"),
		instructions: reg.Counter("sim_instructions_total"),
		cycles:       reg.Counter("sim_cycles_total"),
		activeCycles: reg.Counter("sim_active_cycles_total"),
		energyPJ:     reg.Gauge("sim_energy_pj"),
		transitions:  reg.Counter("sim_level_changes_total"),
		residencyPs:  make([]*telemetry.Counter, levels),
		levelEpochs:  make([]*telemetry.Counter, levels),
		stalls:       make(map[string]*telemetry.Counter, len(stallKinds)),
		ipcCentis:    reg.HistogramBuckets("sim_ipc_centis", 16),
		agree:        reg.Counter("sim_reference_agree_epochs_total"),
		diverge:      reg.Counter("sim_reference_diverge_epochs_total"),
		divergeDist:  reg.Counter("sim_reference_diverge_levels_total"),
	}
	for l := 0; l < levels; l++ {
		lab := strconv.Itoa(l)
		c.residencyPs[l] = reg.Counter("sim_level_residency_ps", "level", lab)
		c.levelEpochs[l] = reg.Counter("sim_level_epochs_total", "level", lab)
	}
	for _, sk := range stallKinds {
		c.stalls[sk.kind] = reg.Counter("sim_stall_cycles_total", "kind", sk.kind)
	}
	return c
}

// SetReference attaches the per-epoch chip-wide level sequence of a
// reference policy (e.g. oracle.GreedyResult.Levels). Epochs beyond the
// sequence are not counted either way.
func (c *TelemetryCollector) SetReference(levels []int) { c.reference = levels }

// Observe folds one epoch snapshot into the registry. It satisfies
// EpochObserver.
func (c *TelemetryCollector) Observe(s EpochStats) {
	c.epochs.Add(1)
	c.instructions.Add(s.Instructions)
	c.cycles.Add(s.Cycles)
	c.activeCycles.Add(s.ActiveCycles)
	c.energyPJ.Add(s.EnergyPJ)
	if s.Level >= 0 && s.Level < len(c.residencyPs) {
		c.residencyPs[s.Level].Add(s.EndPs - s.StartPs)
		c.levelEpochs[s.Level].Add(1)
	}
	for _, sk := range stallKinds {
		if v := sk.get(s); v != 0 {
			c.stalls[sk.kind].Add(v)
		}
	}
	if s.Cycles > 0 {
		c.ipcCentis.Observe(int64(s.IPC() * 100))
	}
	if c.reference != nil && s.Epoch < len(c.reference) {
		ref := c.reference[s.Epoch]
		if ref == s.Level {
			c.agree.Add(1)
		} else {
			c.diverge.Add(1)
			d := int64(ref - s.Level)
			if d < 0 {
				d = -d
			}
			c.divergeDist.Add(d)
		}
	}
}

// ChainObservers fans one epoch snapshot out to several observers (e.g.
// an epochtrace.Trace and a TelemetryCollector on the same run). Nil
// entries are skipped; chaining zero or one observer returns it directly.
func ChainObservers(obs ...EpochObserver) EpochObserver {
	live := obs[:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	chained := append([]EpochObserver(nil), live...)
	return func(s EpochStats) {
		for _, o := range chained {
			o(s)
		}
	}
}
