package gpusim

import "testing"

func testMemConfig() Config {
	c := SmallConfig()
	return c
}

func TestMemReadMissGoesToDRAM(t *testing.T) {
	m := newMemSystem(testMemConfig())
	now := int64(1000)
	done, l2Hit, dram := m.readLine(0x10000, now)
	if l2Hit {
		t.Fatal("cold L2 must miss")
	}
	if !dram {
		t.Fatal("L2 miss must reach DRAM")
	}
	want := now + m.l2LatencyPs + m.lineServicePs + m.dramLatencyPs
	if done != want {
		t.Fatalf("completion %d, want %d", done, want)
	}
	if m.dramReadLines != 1 {
		t.Fatalf("dramReadLines = %d, want 1", m.dramReadLines)
	}
}

func TestMemReadHitAfterFill(t *testing.T) {
	m := newMemSystem(testMemConfig())
	m.readLine(0x10000, 0) // fills L2
	done, l2Hit, dram := m.readLine(0x10000, 1_000_000)
	if !l2Hit || dram {
		t.Fatalf("second read l2Hit=%v dram=%v, want hit without DRAM", l2Hit, dram)
	}
	if done != 1_000_000+m.l2LatencyPs {
		t.Fatalf("hit completion %d, want %d", done, 1_000_000+m.l2LatencyPs)
	}
}

func TestMemBandwidthQueueing(t *testing.T) {
	m := newMemSystem(testMemConfig())
	nchan := len(m.chanFreePs)
	// Two misses to lines on the same channel at the same instant: the
	// second must wait a full line-service slot behind the first.
	a := uint64(0)
	b := a + uint64(nchan)*64 // same channel, different line and set
	d1, _, _ := m.readLine(a, 0)
	d2, _, _ := m.readLine(b, 0)
	if d2-d1 != m.lineServicePs {
		t.Fatalf("second miss finished %d ps after first, want %d", d2-d1, m.lineServicePs)
	}
}

func TestMemChannelsParallel(t *testing.T) {
	m := newMemSystem(testMemConfig())
	// Misses on different channels at the same instant do not queue.
	d1, _, _ := m.readLine(0, 0)
	d2, _, _ := m.readLine(64, 0) // next line → next channel
	if d1 != d2 {
		t.Fatalf("different channels should complete together: %d vs %d", d1, d2)
	}
}

func TestMemWriteThrough(t *testing.T) {
	m := newMemSystem(testMemConfig())
	done, l2Hit, dram := m.writeLine(0x2000, 0)
	if l2Hit || !dram {
		t.Fatalf("cold write l2Hit=%v dram=%v", l2Hit, dram)
	}
	if m.dramWriteLines != 1 {
		t.Fatalf("dramWriteLines = %d, want 1", m.dramWriteLines)
	}
	// Write-allocate: the following read hits L2.
	_, l2Hit, _ = m.readLine(0x2000, done)
	if !l2Hit {
		t.Fatal("write-allocated line must hit on read")
	}
}

func TestMemCloneIndependence(t *testing.T) {
	m := newMemSystem(testMemConfig())
	m.readLine(0x3000, 0)
	cp := m.clone()
	cp.readLine(0x9000, 0)
	if m.l2.contains(0x9000) {
		t.Fatal("clone read leaked into original L2")
	}
	if cp.dramReadLines != 2 || m.dramReadLines != 1 {
		t.Fatalf("dram counts original=%d clone=%d, want 1/2", m.dramReadLines, cp.dramReadLines)
	}
}
