package ledger

import (
	"bytes"
	"testing"
	"time"

	"ssmdvfs/internal/telemetry"
)

// assertLintClean writes the registry's Prometheus exposition and fails
// on any promlint finding.
func assertLintClean(t *testing.T, reg *telemetry.Registry) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := telemetry.LintProm(bytes.NewReader(buf.Bytes())); len(errs) != 0 {
		t.Fatalf("exposition fails promlint: %v\n%s", errs, buf.String())
	}
}

func TestParseRules(t *testing.T) {
	if rules, err := ParseRules(""); err != nil || len(rules) != 3 {
		t.Fatalf("empty spec: rules=%v err=%v, want the 3 defaults", rules, err)
	}
	if rules, err := ParseRules("none"); err != nil || rules != nil {
		t.Fatalf("none spec: rules=%v err=%v, want nil", rules, err)
	}
	rules, err := ParseRules("burn>1.2@32/100; stale>10")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if r := rules[0]; r.Kind != KindBurn || r.Threshold != 1.2 || r.Windows != 32 || r.MinDecisions != 100 {
		t.Fatalf("burn rule = %+v", r)
	}
	if r := rules[1]; r.Kind != KindStale || r.Threshold != 10 || r.Windows != defaultRuleWindows {
		t.Fatalf("stale rule = %+v", r)
	}
	for _, bad := range []string{"burn", "frobnicate>1", "burn>x", "burn>1@x", "burn>1@4/x"} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// ringOf builds a ring snapshot of consecutive windows with a constant
// per-window count and sum.
func ringOf(start int64, n int, count, sum int64) []telemetry.RingPoint {
	pts := make([]telemetry.RingPoint, n)
	for i := range pts {
		pts[i] = telemetry.RingPoint{Index: start + int64(i), Count: count, Sum: sum}
	}
	return pts
}

func alertHarness(t *testing.T, spec string) (*Alerts, *telemetry.Registry, *telemetry.EventLog) {
	t.Helper()
	rules, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(16, reg)
	return NewAlerts(rules, reg, events), reg, events
}

func gaugeValue(reg *telemetry.Registry, name, rule string) float64 {
	return reg.Gauge(name, "rule", rule).Value()
}

func TestBurnAlertFiresAndClears(t *testing.T) {
	a, reg, events := alertHarness(t, "burn>1.5@4/10")
	now := time.Unix(5000, 0)

	// Recent windows spend 3× the requested budget → fire.
	hot := Snapshot{
		LossRing:   ringOf(100, 4, 25, 300_000),
		PresetRing: ringOf(100, 4, 25, 100_000),
	}
	states := a.Eval(now, hot, nil)
	if !states[0].Firing || states[0].Value < 2.9 || states[0].Value > 3.1 {
		t.Fatalf("hot burn state = %+v, want firing at ~3.0", states[0])
	}
	if gaugeValue(reg, "alert_firing", "burn") != 1 {
		t.Fatal("alert_firing{rule=burn} not set to 1")
	}
	if reg.Counter("alert_transitions_total", "rule", "burn").Load() != 1 {
		t.Fatal("firing transition not counted")
	}
	evs := events.Snapshot(nil)
	if len(evs) != 1 || evs[0].Kind != "alert_fire" {
		t.Fatalf("events after fire = %+v", evs)
	}

	// Spending back under budget → clear.
	cool := Snapshot{
		LossRing:   ringOf(104, 4, 25, 50_000),
		PresetRing: ringOf(104, 4, 25, 100_000),
	}
	states = a.Eval(now.Add(time.Second), cool, nil)
	if states[0].Firing {
		t.Fatalf("cool burn state still firing: %+v", states[0])
	}
	if gaugeValue(reg, "alert_firing", "burn") != 0 {
		t.Fatal("alert_firing{rule=burn} not cleared")
	}
	if reg.Counter("alert_transitions_total", "rule", "burn").Load() != 2 {
		t.Fatal("clear transition not counted")
	}
	evs = events.Snapshot(nil)
	if len(evs) != 2 || evs[1].Kind != "alert_clear" {
		t.Fatalf("events after clear = %+v", evs)
	}

	// Re-evaluating an unchanged state must not re-transition.
	a.Eval(now.Add(2*time.Second), cool, nil)
	if reg.Counter("alert_transitions_total", "rule", "burn").Load() != 2 {
		t.Fatal("steady state produced a spurious transition")
	}
}

func TestBurnAlertFallsBackToLifetimeTotals(t *testing.T) {
	a, _, _ := alertHarness(t, "burn>1.5@4/10")
	// No rings (e.g. merged snapshot with incomparable windows) but
	// lifetime totals show 2× burn.
	merged := Snapshot{Decisions: 100, PerfLossPpmSum: 200_000, PresetPpmSum: 100_000}
	states := a.Eval(time.Unix(0, 0), merged, nil)
	if !states[0].Firing || states[0].Value != 2 {
		t.Fatalf("lifetime-fallback burn = %+v, want firing at 2.0", states[0])
	}
}

func TestBurnAlertRespectsMinDecisions(t *testing.T) {
	a, _, _ := alertHarness(t, "burn>1.5@4/1000")
	hot := Snapshot{
		LossRing:   ringOf(0, 4, 5, 300_000),
		PresetRing: ringOf(0, 4, 5, 100_000),
	}
	if states := a.Eval(time.Unix(0, 0), hot, nil); states[0].Firing {
		t.Fatalf("burn fired on %d decisions with MinDecisions=1000", 4*5)
	}
}

func TestRegressAlertFiresAndClears(t *testing.T) {
	a, reg, _ := alertHarness(t, "regress>0.5@4/10")
	now := time.Unix(0, 0)

	// Baseline windows saved 1000 pJ/decision; recent windows save 100.
	regressed := Snapshot{
		SavedRing: append(ringOf(0, 8, 10, 10_000), ringOf(8, 4, 10, 1_000)...),
	}
	states := a.Eval(now, regressed, nil)
	if !states[0].Firing || states[0].Value < 0.89 || states[0].Value > 0.91 {
		t.Fatalf("regressed state = %+v, want firing at ~0.9", states[0])
	}
	if gaugeValue(reg, "alert_firing", "regress") != 1 {
		t.Fatal("alert_firing{rule=regress} not set")
	}

	// Savings recover → clear.
	healthy := Snapshot{
		SavedRing: append(ringOf(0, 8, 10, 10_000), ringOf(8, 4, 10, 9_500)...),
	}
	if states := a.Eval(now.Add(time.Second), healthy, nil); states[0].Firing {
		t.Fatalf("healthy state still firing: %+v", states[0])
	}
	if gaugeValue(reg, "alert_firing", "regress") != 0 {
		t.Fatal("alert_firing{rule=regress} not cleared")
	}
}

func TestRegressAlertNeedsBaseline(t *testing.T) {
	a, _, _ := alertHarness(t, "regress>0.5@8/10")
	// Only 4 windows with an 8-window recent period: everything is
	// "recent", there is no baseline to regress against.
	s := Snapshot{SavedRing: ringOf(0, 4, 10, 100)}
	if states := a.Eval(time.Unix(0, 0), s, nil); states[0].Firing {
		t.Fatalf("regress fired without a baseline: %+v", states[0])
	}
}

func TestStaleAlertFiresAndClears(t *testing.T) {
	a, reg, events := alertHarness(t, "stale>10")
	now := time.Unix(10_000, 0)

	reps := []ReplicaLedger{
		{Addr: "127.0.0.1:1", LastAdvanceUnix: now.Unix() - 2},
		{Addr: "127.0.0.1:2", LastAdvanceUnix: now.Unix() - 60, Err: "connection refused"},
	}
	states := a.Eval(now, Snapshot{}, reps)
	if !states[0].Firing || states[0].Value != 60 {
		t.Fatalf("stale state = %+v, want firing at 60", states[0])
	}
	if gaugeValue(reg, "alert_value", "stale") != 60 {
		t.Fatal("alert_value{rule=stale} not set")
	}
	evs := events.Snapshot(nil)
	if len(evs) != 1 || evs[0].Kind != "alert_fire" {
		t.Fatalf("events = %+v", evs)
	}
	if detail := states[0].Detail; detail == "" {
		t.Fatal("stale alert has no detail")
	}

	// The replica comes back → clear.
	reps[1].LastAdvanceUnix = now.Unix() - 1
	reps[1].Err = ""
	if states := a.Eval(now.Add(time.Second), Snapshot{}, reps); states[0].Firing {
		t.Fatalf("recovered state still firing: %+v", states[0])
	}
	if gaugeValue(reg, "alert_firing", "stale") != 0 {
		t.Fatal("alert_firing{rule=stale} not cleared")
	}
}

func TestNilAlertsEval(t *testing.T) {
	var a *Alerts
	if got := a.Eval(time.Unix(0, 0), Snapshot{}, nil); got != nil {
		t.Fatalf("nil Alerts.Eval = %v", got)
	}
}

func TestAlertsExpositionLintClean(t *testing.T) {
	a, reg, _ := alertHarness(t, "")
	a.Eval(time.Unix(0, 0), Snapshot{Decisions: 100, PerfLossPpmSum: 400_000, PresetPpmSum: 100_000}, nil)
	assertLintClean(t, reg)
}
