package ledger

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// computeRow builds a full-width counter row for a compute-bound epoch:
// every issue opportunity retires an instruction, no memory stalls.
func computeRow(cycles float64) []float64 {
	row := make([]float64, counters.Num)
	row[counters.IdxInstr] = cycles
	row[counters.IdxMH] = 0
	row[counters.IdxMHNL] = 0
	i, _ := counters.Index("cycles")
	row[i] = cycles
	i, _ = counters.Index("op_ialu")
	row[i] = cycles * 0.6
	i, _ = counters.Index("op_falu")
	row[i] = cycles * 0.4
	return row
}

// memRow builds a row for a memory-bound epoch: issue slots dominated by
// memory-hazard stalls, heavy DRAM traffic.
func memRow(cycles float64) []float64 {
	row := make([]float64, counters.Num)
	row[counters.IdxInstr] = cycles * 0.05
	row[counters.IdxMH] = cycles * 0.9
	row[counters.IdxMHNL] = cycles * 0.05
	i, _ := counters.Index("cycles")
	row[i] = cycles
	i, _ = counters.Index("op_ldg")
	row[i] = cycles * 0.04
	i, _ = counters.Index("l1_read_misses")
	row[i] = cycles * 0.04
	i, _ = counters.Index("l2_accesses")
	row[i] = cycles * 0.04
	i, _ = counters.Index("dram_lines")
	row[i] = cycles * 0.03
	return row
}

func TestMeterAccountComputeBound(t *testing.T) {
	m := NewMeter(nil, nil)
	table := m.Table()
	def := table.Default()

	// At the default (fastest) level the counterfactual is the decision:
	// no loss, no savings.
	a := m.Account(computeRow(1e6), def)
	if !a.OK {
		t.Fatal("full-width row not accounted")
	}
	if a.PerfLoss != 0 {
		t.Fatalf("PerfLoss at default level = %v, want 0", a.PerfLoss)
	}
	if a.SavedPJ() != 0 {
		t.Fatalf("SavedPJ at default level = %v, want 0", a.SavedPJ())
	}

	// A compute-bound epoch slowed to level 0 dilates by ~fmax/f.
	a0 := m.Account(computeRow(1e6), 0)
	fmax := table.Point(def).FrequencyHz
	f0 := table.Point(0).FrequencyHz
	wantLoss := fmax/f0 - 1
	if math.Abs(a0.PerfLoss-wantLoss) > 1e-9 {
		t.Fatalf("compute-bound PerfLoss = %v, want %v", a0.PerfLoss, wantLoss)
	}
	if a0.EnergyMaxPJ <= 0 || a0.EnergyPJ <= 0 {
		t.Fatalf("energies not positive: %+v", a0)
	}
}

func TestMeterAccountMemoryBoundSaves(t *testing.T) {
	m := NewMeter(nil, nil)
	a := m.Account(memRow(1e6), 0)
	if !a.OK {
		t.Fatal("row not accounted")
	}
	// Memory-bound: high sensitivity, so little dilation...
	if a.PerfLoss > 0.2 {
		t.Fatalf("memory-bound PerfLoss = %v, want small", a.PerfLoss)
	}
	// ...and lowering V/f on a nearly-unchanged runtime saves energy.
	if a.SavedPJ() <= 0 {
		t.Fatalf("memory-bound SavedPJ = %v, want > 0", a.SavedPJ())
	}
}

func TestMeterAccountRejectsShortRow(t *testing.T) {
	m := NewMeter(nil, nil)
	if a := m.Account(make([]float64, 5), 0); a.OK {
		t.Fatal("short row accounted")
	}
	if a := m.Account(nil, 0); a.OK {
		t.Fatal("nil row accounted")
	}
}

func TestMeterAccountGarbageRowDefaultsEpoch(t *testing.T) {
	m := NewMeter(nil, nil)
	row := make([]float64, counters.Num)
	for i := range row {
		row[i] = math.NaN()
	}
	a := m.Account(row, 0)
	if !a.OK {
		t.Fatal("NaN row should account as an idle epoch, not fail")
	}
	if math.IsNaN(a.EnergyPJ) || math.IsNaN(a.PerfLoss) {
		t.Fatalf("NaN leaked into attribution: %+v", a)
	}
}

func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func testLedger(seedOffset int64) *Ledger {
	return New(Options{
		Window: time.Second,
		Now:    fakeClock(time.Unix(1000+seedOffset, 0), 100*time.Millisecond),
	})
}

func feed(l *Ledger, n int, cluster int32, gen uint32) {
	for i := 0; i < n; i++ {
		row := computeRow(1e6)
		if i%2 == 0 {
			row = memRow(1e6)
		}
		l.Observe(cluster, gen, i%3, row, 0.1)
	}
}

func TestLedgerObserveAndSnapshot(t *testing.T) {
	l := testLedger(0)
	feed(l, 30, 7, 2)
	l.Observe(7, 2, 0, []float64{1, 2}, 0.1) // short row → skipped

	s := l.Snapshot()
	if s.Decisions != 30 {
		t.Fatalf("Decisions = %d, want 30", s.Decisions)
	}
	if s.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", s.Skipped)
	}
	if s.EnergyMaxPJ <= 0 || s.EnergyPJ <= 0 {
		t.Fatalf("energy totals not positive: %+v", s)
	}
	if s.SavedPJ() <= 0 {
		t.Fatalf("SavedPJ = %d, want > 0 (half the rows are memory-bound)", s.SavedPJ())
	}
	if s.Groups["cluster=7"].Decisions != 30 {
		t.Fatalf("cluster group = %+v", s.Groups["cluster=7"])
	}
	if s.Groups["gen=2"].Decisions != 30 {
		t.Fatalf("gen group = %+v", s.Groups["gen=2"])
	}
	var levelDecisions int64
	for _, k := range []string{"level=0", "level=1", "level=2"} {
		levelDecisions += s.Groups[k].Decisions
	}
	if levelDecisions != 30 {
		t.Fatalf("level groups sum to %d, want 30", levelDecisions)
	}
	if len(s.SavedRing) == 0 || len(s.LossRing) == 0 || len(s.PresetRing) == 0 {
		t.Fatalf("rings empty: %+v", s)
	}
	if s.BudgetBurn() <= 0 {
		t.Fatalf("BudgetBurn = %v, want > 0", s.BudgetBurn())
	}
	if s.MeanPreset() < 0.099 || s.MeanPreset() > 0.101 {
		t.Fatalf("MeanPreset = %v, want ~0.1", s.MeanPreset())
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Observe(0, 0, 0, computeRow(1e6), 0.1)
	l.ObserveTagged("kernel=x", 0, 0, 0, computeRow(1e6), 0.1)
	if s := l.Snapshot(); s.Decisions != 0 {
		t.Fatalf("nil ledger snapshot = %+v", s)
	}
	_ = l.Meter()
}

// TestMergePermutationByteIdentical pins the fleet aggregation contract:
// merging replica snapshots in any order serializes to identical bytes.
func TestMergePermutationByteIdentical(t *testing.T) {
	snaps := make([]Snapshot, 3)
	for i := range snaps {
		l := testLedger(int64(i) * 3)
		feed(l, 20+10*i, int32(i), uint32(i))
		snaps[i] = l.Snapshot()
	}
	render := func(order []int) []byte {
		parts := make([]Snapshot, len(order))
		for i, j := range order {
			parts[i] = snaps[j]
		}
		var buf bytes.Buffer
		if err := Merge(parts...).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}, {0, 2, 1}, {1, 2, 0}} {
		if got := render(order); !bytes.Equal(got, want) {
			t.Fatalf("order %v merged to different bytes:\n%s\nvs\n%s", order, got, want)
		}
	}

	merged := Merge(snaps...)
	var wantDecisions int64
	for _, s := range snaps {
		wantDecisions += s.Decisions
	}
	if merged.Decisions != wantDecisions {
		t.Fatalf("merged Decisions = %d, want %d", merged.Decisions, wantDecisions)
	}
	if merged.SavedHist.Count != wantDecisions {
		t.Fatalf("merged SavedHist.Count = %d, want %d", merged.SavedHist.Count, wantDecisions)
	}
}

func TestMergeIsAssociative(t *testing.T) {
	snaps := make([]Snapshot, 3)
	for i := range snaps {
		l := testLedger(int64(i) * 5)
		feed(l, 15, int32(i), 0)
		snaps[i] = l.Snapshot()
	}
	left, _ := json.Marshal(Merge(Merge(snaps[0], snaps[1]), snaps[2]))
	right, _ := json.Marshal(Merge(snaps[0], Merge(snaps[1], snaps[2])))
	if !bytes.Equal(left, right) {
		t.Fatalf("merge not associative:\n%s\nvs\n%s", left, right)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	l := testLedger(0)
	feed(l, 25, 3, 1)
	s := l.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rt bytes.Buffer
	if err := got.WriteJSON(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rt.Bytes()) {
		t.Fatal("snapshot did not round-trip byte-identically")
	}
}

// TestReplayMatchesOnline pins the tentpole invariant: replaying a
// flight-recorder dump through Meter.ReplayRecords reproduces the online
// ledger's integer totals exactly — they are the same arithmetic.
func TestReplayMatchesOnline(t *testing.T) {
	l := testLedger(0)
	var recs []provenance.Record
	for i := 0; i < 40; i++ {
		row := computeRow(5e5 + float64(i)*1e4)
		if i%3 == 0 {
			row = memRow(5e5 + float64(i)*1e4)
		}
		level := i % 4
		l.Observe(int32(i%2), 1, level, row, 0.05)
		var r provenance.Record
		r.Cluster = int32(i % 2)
		r.ModelGen = 1
		r.Level = int32(level)
		r.Preset = 0.05
		r.SetRaw(row)
		recs = append(recs, r)
	}
	online := l.Snapshot()
	replay := l.Meter().ReplayRecords(recs)

	if online.Decisions != replay.Decisions {
		t.Fatalf("decisions: online %d, replay %d", online.Decisions, replay.Decisions)
	}
	if online.EnergyMaxPJ != replay.EnergyMaxPJ {
		t.Fatalf("energy_max_pj: online %d, replay %d", online.EnergyMaxPJ, replay.EnergyMaxPJ)
	}
	if online.EnergyPJ != replay.EnergyPJ {
		t.Fatalf("energy_pj: online %d, replay %d", online.EnergyPJ, replay.EnergyPJ)
	}
	if online.PerfLossPpmSum != replay.PerfLossPpmSum {
		t.Fatalf("perf_loss_ppm: online %d, replay %d", online.PerfLossPpmSum, replay.PerfLossPpmSum)
	}
	for _, k := range []string{"level=0", "level=3", "cluster=0", "cluster=1", "gen=1"} {
		if online.Groups[k] != replay.Groups[k] {
			t.Fatalf("group %s: online %+v, replay %+v", k, online.Groups[k], replay.Groups[k])
		}
	}
}

func TestObserveTaggedAddsGroup(t *testing.T) {
	l := testLedger(0)
	l.ObserveTagged("kernel=backprop", -1, 0, 1, memRow(1e6), 0.1)
	s := l.Snapshot()
	g, ok := s.Groups["kernel=backprop"]
	if !ok || g.Decisions != 1 {
		t.Fatalf("tagged group missing: %+v", s.Groups)
	}
}

func TestLedgerPublishesRegistrySeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := New(Options{Registry: reg, Now: fakeClock(time.Unix(0, 0), time.Millisecond)})
	feed(l, 20, 0, 0)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"ledger_decisions_total", "ledger_energy_max_pj_total",
		"ledger_energy_pj_total", "ledger_energy_saved_ratio",
		"ledger_budget_burn", "ledger_decision_saved_pj",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	if errs := telemetry.LintProm(bytes.NewReader(buf.Bytes())); len(errs) != 0 {
		t.Fatalf("ledger exposition fails promlint: %v", errs)
	}
}

func TestTableWithCustomClockdomain(t *testing.T) {
	tab := clockdomain.TitanX()
	m := NewMeter(tab, nil)
	if m.Table() != tab {
		t.Fatal("meter did not keep the provided table")
	}
}

func TestFormatEnergyPJ(t *testing.T) {
	cases := map[float64]string{
		5:      "5 pJ",
		2500:   "2.5 nJ",
		3.2e6:  "3.2 µJ",
		4.5e9:  "4.5 mJ",
		1.2e12: "1.2 J",
	}
	for in, want := range cases {
		if got := FormatEnergyPJ(in); got != want {
			t.Fatalf("FormatEnergyPJ(%v) = %q, want %q", in, got, want)
		}
	}
}
