package ledger

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ssmdvfs/internal/telemetry"
)

// RuleKind names what an alert rule watches.
type RuleKind string

const (
	// KindBurn fires when the fleet's perf-loss budget burn over the
	// recent ring windows exceeds Threshold (1.0 = spending exactly the
	// requested budget).
	KindBurn RuleKind = "burn"
	// KindRegress fires when recent energy saved per decision has fallen
	// by more than Threshold (a fraction) versus the rolling baseline of
	// the older ring windows.
	KindRegress RuleKind = "regress"
	// KindStale fires when any replica's ledger has not advanced (or its
	// scrape has been failing) for more than Threshold seconds.
	KindStale RuleKind = "stale"
)

// Rule is one declarative alert: fire when the watched value exceeds
// Threshold, evaluated over the most recent Windows ring windows, but
// only once at least MinDecisions decisions back the value (staleness
// needs no volume and ignores MinDecisions).
type Rule struct {
	Name      string   `json:"name"`
	Kind      RuleKind `json:"kind"`
	Threshold float64  `json:"threshold"`
	Windows   int      `json:"windows,omitempty"`
	// MinDecisions gates volume-sensitive rules (default 32).
	MinDecisions int64 `json:"min_decisions,omitempty"`
}

const (
	defaultRuleWindows   = 16
	defaultMinDecisions  = 32
	defaultBurnThresh    = 1.5
	defaultRegressThresh = 0.5
	defaultStaleThresh   = 15
)

func (r Rule) withDefaults() Rule {
	if r.Windows <= 0 {
		r.Windows = defaultRuleWindows
	}
	if r.MinDecisions <= 0 {
		r.MinDecisions = defaultMinDecisions
	}
	if r.Name == "" {
		r.Name = string(r.Kind)
	}
	return r
}

// DefaultRules is the rule set a router runs when none is configured:
// budget burn > 1.5×, energy-savings regression > 50% vs the rolling
// baseline, replica ledger stale > 15 s.
func DefaultRules() []Rule {
	return []Rule{
		{Kind: KindBurn, Threshold: defaultBurnThresh},
		{Kind: KindRegress, Threshold: defaultRegressThresh},
		{Kind: KindStale, Threshold: defaultStaleThresh},
	}
}

// ParseRules parses a flag-friendly rule spec: semicolon-separated
// `kind>threshold` clauses with optional `@windows` and `/min-decisions`
// suffixes, e.g. "burn>1.2@32;regress>0.5;stale>10". Empty spec returns
// DefaultRules(); "none" disables alerting.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return DefaultRules(), nil
	}
	if spec == "none" {
		return nil, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ">")
		if !ok {
			return nil, fmt.Errorf("ledger: rule %q: want kind>threshold", clause)
		}
		var r Rule
		switch RuleKind(strings.TrimSpace(kind)) {
		case KindBurn, KindRegress, KindStale:
			r.Kind = RuleKind(strings.TrimSpace(kind))
		default:
			return nil, fmt.Errorf("ledger: rule %q: unknown kind %q", clause, kind)
		}
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			tail := rest[at+1:]
			rest = rest[:at]
			if slash := strings.IndexByte(tail, '/'); slash >= 0 {
				md, err := strconv.ParseInt(tail[slash+1:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("ledger: rule %q: bad min-decisions: %w", clause, err)
				}
				r.MinDecisions = md
				tail = tail[:slash]
			}
			w, err := strconv.Atoi(tail)
			if err != nil {
				return nil, fmt.Errorf("ledger: rule %q: bad windows: %w", clause, err)
			}
			r.Windows = w
		}
		thresh, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("ledger: rule %q: bad threshold: %w", clause, err)
		}
		r.Threshold = thresh
		rules = append(rules, r.withDefaults())
	}
	return rules, nil
}

// ReplicaLedger is one replica's view as the evaluator sees it: its last
// good snapshot plus scrape liveness.
type ReplicaLedger struct {
	Addr     string   `json:"addr"`
	Snapshot Snapshot `json:"snapshot"`
	// Err is the last scrape error ("" when the last scrape succeeded).
	Err string `json:"err,omitempty"`
	// LastAdvanceUnix is when the replica's decision count last moved (or
	// the replica was first seen), in Unix seconds.
	LastAdvanceUnix int64 `json:"last_advance_unix,omitempty"`
}

// AlertState is one rule's evaluated state.
type AlertState struct {
	Rule   Rule    `json:"rule"`
	Value  float64 `json:"value"`
	Firing bool    `json:"firing"`
	// Detail explains the value (which replica is stale, the baseline the
	// regression compares against, ...).
	Detail string `json:"detail,omitempty"`
}

// Alerts evaluates a rule set against merged ledger snapshots and
// surfaces the results as alert_firing/alert_value gauges,
// alert_transitions_total counters, and EventLog entries on every
// firing↔clear transition.
type Alerts struct {
	rules  []Rule
	events *telemetry.EventLog
	firing map[string]*telemetry.Gauge
	value  map[string]*telemetry.Gauge
	trans  map[string]*telemetry.Counter
	was    map[string]bool
}

// NewAlerts builds an evaluator. reg hosts the alert_* series (nil uses
// a private registry); events receives transition entries (nil-safe).
func NewAlerts(rules []Rule, reg *telemetry.Registry, events *telemetry.EventLog) *Alerts {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	a := &Alerts{
		events: events,
		firing: make(map[string]*telemetry.Gauge),
		value:  make(map[string]*telemetry.Gauge),
		trans:  make(map[string]*telemetry.Counter),
		was:    make(map[string]bool),
	}
	for _, r := range rules {
		r = r.withDefaults()
		a.rules = append(a.rules, r)
		a.firing[r.Name] = reg.Gauge("alert_firing", "rule", r.Name)
		a.value[r.Name] = reg.Gauge("alert_value", "rule", r.Name)
		a.trans[r.Name] = reg.Counter("alert_transitions_total", "rule", r.Name)
		a.firing[r.Name].Set(0)
	}
	return a
}

// ringTail sums the newest n points of a ring snapshot.
func ringTail(pts []telemetry.RingPoint, n int) (count, sum int64) {
	if n > 0 && len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	for _, p := range pts {
		count += p.Count
		sum += p.Sum
	}
	return count, sum
}

// Eval evaluates every rule against the merged fleet snapshot and the
// per-replica scrape states, updating gauges/counters/events, and
// returns the states in rule order. Not safe for concurrent use (the
// scrape loop is the single caller).
func (a *Alerts) Eval(now time.Time, merged Snapshot, reps []ReplicaLedger) []AlertState {
	if a == nil {
		return nil
	}
	out := make([]AlertState, 0, len(a.rules))
	for _, r := range a.rules {
		st := AlertState{Rule: r}
		switch r.Kind {
		case KindBurn:
			st = a.evalBurn(r, merged)
		case KindRegress:
			st = a.evalRegress(r, merged)
		case KindStale:
			st = a.evalStale(r, now, reps)
		}
		a.value[r.Name].Set(st.Value)
		if st.Firing {
			a.firing[r.Name].Set(1)
		} else {
			a.firing[r.Name].Set(0)
		}
		if st.Firing != a.was[r.Name] {
			a.was[r.Name] = st.Firing
			a.trans[r.Name].Add(1)
			kind := "alert_clear"
			if st.Firing {
				kind = "alert_fire"
			}
			a.events.Append(telemetry.Event{
				Time:   now,
				Kind:   kind,
				Reason: st.Detail,
				Detail: map[string]any{
					"rule":      r.Name,
					"value":     st.Value,
					"threshold": r.Threshold,
				},
			})
		}
		out = append(out, st)
	}
	return out
}

func (a *Alerts) evalBurn(r Rule, merged Snapshot) AlertState {
	st := AlertState{Rule: r}
	n, lossSum := ringTail(merged.LossRing, r.Windows)
	_, presetSum := ringTail(merged.PresetRing, r.Windows)
	if presetSum <= 0 {
		// No windowed budget signal (rings empty or incomparable): fall
		// back to lifetime burn so a cold router still alerts.
		if merged.PresetPpmSum <= 0 {
			return st
		}
		n, lossSum, presetSum = merged.Decisions, merged.PerfLossPpmSum, merged.PresetPpmSum
	}
	st.Value = float64(lossSum) / float64(presetSum)
	st.Detail = fmt.Sprintf("burn %.2f over %d decisions", st.Value, n)
	st.Firing = n >= r.MinDecisions && st.Value > r.Threshold
	return st
}

func (a *Alerts) evalRegress(r Rule, merged Snapshot) AlertState {
	st := AlertState{Rule: r}
	pts := merged.SavedRing
	if len(pts) == 0 {
		return st
	}
	cut := len(pts) - r.Windows
	if cut <= 0 {
		// Not enough history yet to have a baseline distinct from the
		// recent window: nothing to regress against.
		return st
	}
	baseCount, baseSum := ringTail(pts[:cut], 0)
	recentCount, recentSum := ringTail(pts[cut:], 0)
	if baseCount < r.MinDecisions || recentCount < r.MinDecisions || baseSum <= 0 {
		return st
	}
	base := float64(baseSum) / float64(baseCount)
	recent := float64(recentSum) / float64(recentCount)
	st.Value = 1 - recent/base
	st.Detail = fmt.Sprintf("saved/decision %.0f pJ recent vs %.0f pJ baseline", recent, base)
	st.Firing = st.Value > r.Threshold
	return st
}

func (a *Alerts) evalStale(r Rule, now time.Time, reps []ReplicaLedger) AlertState {
	st := AlertState{Rule: r}
	for _, rep := range reps {
		if rep.LastAdvanceUnix == 0 {
			continue
		}
		age := float64(now.Unix() - rep.LastAdvanceUnix)
		if age > st.Value {
			st.Value = age
			st.Detail = fmt.Sprintf("replica %s ledger stale %.0fs", rep.Addr, age)
			if rep.Err != "" {
				st.Detail += " (scrape error: " + rep.Err + ")"
			}
		}
	}
	st.Firing = st.Value > r.Threshold
	return st
}
