// Package ledger is the efficiency ledger: live accounting of the
// objective SSMDVFS actually optimizes. Per served decision it estimates
// the energy delta and performance loss versus the MaxFreq counterfactual
// — "what would this epoch have cost at the table's default (fastest)
// operating point" — from the realized counter row already flowing
// through the serving path and the activity-based power model. The
// estimates accumulate into per-level/per-cluster/per-model-generation
// groups, log-2 histograms, and fixed-size time-series rings whose
// snapshots merge deterministically across replicas, so a fleet router
// can answer "is the fleet saving energy right now, and at what
// performance cost" without offline replay.
//
// The same Meter that accounts decisions online replays a provenance
// flight-recorder dump offline (ReplayRecords) — the fig4-style exact
// cross-check behind `dvfsstat -ledger`.
package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/power"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// Feature-row indices the meter needs beyond the exported canonical set,
// resolved once at init from the counter names so they can never drift
// from the counters package silently.
var (
	idxCycles   = mustIdx("cycles")
	idxL1Hits   = mustIdx("l1_read_hits")
	idxL1Writes = mustIdx("l1_write_accesses")
	idxL2       = mustIdx("l2_accesses")
	idxDRAM     = mustIdx("dram_lines")

	// opFeature maps each ISA op class the power model charges to its
	// per-epoch issue-count feature.
	opFeature = [isa.NumOps]int{
		isa.OpIAlu:        mustIdx("op_ialu"),
		isa.OpFAlu:        mustIdx("op_falu"),
		isa.OpSFU:         mustIdx("op_sfu"),
		isa.OpLoadGlobal:  mustIdx("op_ldg"),
		isa.OpStoreGlobal: mustIdx("op_stg"),
		isa.OpLoadShared:  mustIdx("op_lds"),
		isa.OpBranch:      mustIdx("op_branch"),
	}
)

func mustIdx(name string) int {
	i, err := counters.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// DefaultEpochPs is the epoch duration assumed for rows that carry no
// cycle count (synthetic load-generator rows populate only the five
// Table I counters): the paper's 10 µs epoch, in picoseconds.
const DefaultEpochPs = int64(10_000_000)

// Meter converts one (counter row, decided level) pair into an energy and
// performance attribution. It is a pure value — no state, safe to copy
// and share — so the online ledger and the offline replay cannot diverge:
// they are the same arithmetic.
type Meter struct {
	table *clockdomain.Table
	pow   power.Model
}

// NewMeter builds a meter over an operating-point table (nil = TitanX)
// and power calibration (nil = power.Default()).
func NewMeter(table *clockdomain.Table, pm *power.Model) Meter {
	if table == nil {
		table = clockdomain.TitanX()
	}
	p := power.Default()
	if pm != nil {
		p = *pm
	}
	return Meter{table: table, pow: p}
}

// Table returns the operating-point table the meter accounts against.
func (m Meter) Table() *clockdomain.Table { return m.table }

// Attribution is one decision's estimated cost versus the MaxFreq
// counterfactual. Energies are picojoules for the epoch; PerfLoss is the
// fractional execution-time dilation the chosen level is predicted to
// cause (0 at the default level).
type Attribution struct {
	EnergyMaxPJ float64
	EnergyPJ    float64
	PerfLoss    float64
	OK          bool
}

// SavedPJ is the estimated energy saved by the chosen level (negative
// when the slower level spends more — possible when leakage over the
// dilated epoch outweighs the dynamic savings).
func (a Attribution) SavedPJ() float64 { return a.EnergyMaxPJ - a.EnergyPJ }

// count reads a feature as a non-negative event count; NaN, negatives
// and absurd magnitudes read as 0 so garbage rows account as empty.
func count(v float64) int64 {
	if !(v > 0) || v > 1e15 {
		return 0
	}
	return int64(v)
}

// Account attributes one decision: given the finished epoch's counter row
// and the level decided for the next epoch, it estimates that workload's
// energy at the chosen level versus at the table's default (fastest)
// point. The workload's events (issued ops, cache and DRAM traffic) are
// frequency-invariant; execution time dilates by the PCSTALL slowdown
// model ((1-s)·f_max/f + s with s the row's memory-boundedness), the
// clock tree is charged for the cycles actually run at each point, and
// leakage integrates over each point's duration. Rows shorter than the
// counter vector account as not-OK (skipped); rows without a cycle count
// assume the paper's 10 µs epoch.
func (m Meter) Account(features []float64, level int) Attribution {
	if len(features) < counters.Num {
		return Attribution{}
	}
	level = m.table.Clamp(level)
	opMax := m.table.Point(m.table.Default())
	opL := m.table.Point(level)

	var act power.Activity
	for op, fi := range opFeature {
		act.OpCounts[op] = count(features[fi])
	}
	act.L1Accesses = count(features[counters.IdxL1CRM]) +
		count(features[idxL1Hits]) + count(features[idxL1Writes])
	act.L2Accesses = count(features[idxL2])
	act.DRAMLines = count(features[idxDRAM])
	act.Cycles = count(features[idxCycles])

	durMax := act.Cycles * opMax.PeriodPs()
	if durMax <= 0 {
		durMax = DefaultEpochPs
		act.Cycles = durMax / opMax.PeriodPs()
	}
	energyMax := m.pow.EpochEnergyPJ(act, opMax, durMax)

	s := baselines.RowSensitivity(features)
	slowdown := (1-s)*(opMax.FrequencyHz/opL.FrequencyHz) + s
	durL := int64(float64(durMax) * slowdown)
	actL := act
	actL.Cycles = durL / opL.PeriodPs()
	energyL := m.pow.EpochEnergyPJ(actL, opL, durL)

	return Attribution{EnergyMaxPJ: energyMax, EnergyPJ: energyL, PerfLoss: slowdown - 1, OK: true}
}

// maxLevels bounds the per-level breakdown, matching the serving tier's
// metrics limit.
const maxLevels = 64

// Group is one breakdown bucket of a Snapshot (a level, a cluster, or a
// model generation). All fields are integer sums, so cross-replica merge
// is exact.
type Group struct {
	Decisions      int64 `json:"decisions"`
	EnergyMaxPJ    int64 `json:"energy_max_pj"`
	EnergyPJ       int64 `json:"energy_pj"`
	PerfLossPpmSum int64 `json:"perf_loss_ppm_sum"`
}

func (g *Group) add(savedFrom Attribution, lossPpm int64) {
	g.Decisions++
	g.EnergyMaxPJ += int64(savedFrom.EnergyMaxPJ)
	g.EnergyPJ += int64(savedFrom.EnergyPJ)
	g.PerfLossPpmSum += lossPpm
}

func (g Group) merge(o Group) Group {
	g.Decisions += o.Decisions
	g.EnergyMaxPJ += o.EnergyMaxPJ
	g.EnergyPJ += o.EnergyPJ
	g.PerfLossPpmSum += o.PerfLossPpmSum
	return g
}

// Snapshot is the ledger's JSON exposition (/debug/ledger): integer
// totals, breakdown groups, per-decision histograms, and the time-series
// rings. Everything is integer-summed and map keys marshal sorted, so
// Merge over any replica permutation serializes to identical bytes.
type Snapshot struct {
	// WindowNs is the ring window width; merged snapshots of disagreeing
	// widths carry 0 (rings incomparable, totals still exact).
	WindowNs int64 `json:"window_ns,omitempty"`
	RingCap  int   `json:"ring_cap,omitempty"`

	Decisions int64 `json:"decisions"`
	// Skipped counts rows the meter could not account (short rows).
	Skipped int64 `json:"skipped,omitempty"`

	EnergyMaxPJ    int64 `json:"energy_max_pj"`
	EnergyPJ       int64 `json:"energy_pj"`
	PerfLossPpmSum int64 `json:"perf_loss_ppm_sum"`
	PresetPpmSum   int64 `json:"preset_ppm_sum"`

	// Groups breaks totals down by "level=N", "cluster=N", and "gen=N"
	// (and "kernel=NAME" in offline replays that know kernel identity).
	Groups map[string]Group `json:"groups,omitempty"`

	SavedHist telemetry.HistogramSnapshot `json:"saved_hist"`
	LossHist  telemetry.HistogramSnapshot `json:"loss_hist"`

	// SavedRing/LossRing/PresetRing are per-window sums of saved pJ,
	// perf-loss ppm, and preset ppm (Count = decisions in the window):
	// the counter-rate view behind burn-rate and regression alerts.
	SavedRing  []telemetry.RingPoint `json:"saved_ring,omitempty"`
	LossRing   []telemetry.RingPoint `json:"loss_ring,omitempty"`
	PresetRing []telemetry.RingPoint `json:"preset_ring,omitempty"`
}

// SavedPJ is the net energy saved versus running everything at MaxFreq.
func (s Snapshot) SavedPJ() int64 { return s.EnergyMaxPJ - s.EnergyPJ }

// SavedRatio is the fraction of the MaxFreq energy bill avoided.
func (s Snapshot) SavedRatio() float64 {
	if s.EnergyMaxPJ <= 0 {
		return 0
	}
	return float64(s.SavedPJ()) / float64(s.EnergyMaxPJ)
}

// MeanPerfLoss is the mean predicted performance loss, as a fraction.
func (s Snapshot) MeanPerfLoss() float64 {
	if s.Decisions <= 0 {
		return 0
	}
	return float64(s.PerfLossPpmSum) / 1e6 / float64(s.Decisions)
}

// MeanPreset is the mean requested loss budget, as a fraction.
func (s Snapshot) MeanPreset() float64 {
	if s.Decisions <= 0 {
		return 0
	}
	return float64(s.PresetPpmSum) / 1e6 / float64(s.Decisions)
}

// BudgetBurn is how much of the requested loss budget the fleet is
// spending: mean perf-loss over mean preset (1.0 = exactly on budget).
func (s Snapshot) BudgetBurn() float64 {
	if s.PresetPpmSum <= 0 {
		return 0
	}
	return float64(s.PerfLossPpmSum) / float64(s.PresetPpmSum)
}

// WriteJSON writes the snapshot as indented JSON, the /debug/ledger
// payload. Map keys sort, so equal snapshots are equal bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a WriteJSON payload.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("ledger: %w", err)
	}
	return s, nil
}

// ReadSnapshotFile reads a WriteJSON payload from disk.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Merge folds any number of replica snapshots into the fleet view:
// integer sums per field and group, bucket-summed histograms, index-
// aligned ring merges. Commutative and associative, so the merged bytes
// are identical for every replica permutation.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	first := true
	ringCap := 0
	for _, s := range snaps {
		if first {
			out.WindowNs = s.WindowNs
			first = false
		} else if out.WindowNs != s.WindowNs {
			out.WindowNs = 0
		}
		if s.RingCap > ringCap {
			ringCap = s.RingCap
		}
		out.Decisions += s.Decisions
		out.Skipped += s.Skipped
		out.EnergyMaxPJ += s.EnergyMaxPJ
		out.EnergyPJ += s.EnergyPJ
		out.PerfLossPpmSum += s.PerfLossPpmSum
		out.PresetPpmSum += s.PresetPpmSum
		for k, g := range s.Groups {
			if out.Groups == nil {
				out.Groups = make(map[string]Group)
			}
			out.Groups[k] = out.Groups[k].merge(g)
		}
		out.SavedHist = telemetry.MergeHistogramSnapshots(out.SavedHist, s.SavedHist)
		out.LossHist = telemetry.MergeHistogramSnapshots(out.LossHist, s.LossHist)
		out.SavedRing = telemetry.MergeRingPoints(out.SavedRing, s.SavedRing, ringCap)
		out.LossRing = telemetry.MergeRingPoints(out.LossRing, s.LossRing, ringCap)
		out.PresetRing = telemetry.MergeRingPoints(out.PresetRing, s.PresetRing, ringCap)
	}
	out.RingCap = ringCap
	return out
}

// Options configures a Ledger.
type Options struct {
	// Table and Power configure the meter (nil = TitanX / power.Default).
	Table *clockdomain.Table
	Power *power.Model
	// Window is the time-series ring window width (default 1 s); Windows
	// is the ring capacity (default telemetry.DefaultRingWindows).
	Window  time.Duration
	Windows int
	// Registry hosts the ledger_* series (so a replica's /metrics.prom
	// carries them); nil uses a private registry.
	Registry *telemetry.Registry
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// Ledger is the online accountant: Observe is called once per served
// decision. Counter and histogram updates are atomic; the breakdown
// groups and ppm sums take one short mutex. A nil *Ledger is a valid
// no-op, which is how the serving engine keeps the disabled path
// zero-cost.
type Ledger struct {
	meter    Meter
	windowNs int64
	ringCap  int
	now      func() time.Time

	decisions *telemetry.Counter
	skipped   *telemetry.Counter
	energyMax *telemetry.Counter
	energy    *telemetry.Counter
	savedHist *telemetry.Histogram
	lossHist  *telemetry.Histogram

	savedRatio *telemetry.Gauge
	lossMean   *telemetry.Gauge
	burn       *telemetry.Gauge

	savedRing  *telemetry.Ring
	lossRing   *telemetry.Ring
	presetRing *telemetry.Ring

	mu         sync.Mutex
	lossPpm    int64
	presetPpm  int64
	levels     [maxLevels]Group
	clusters   map[int32]*Group
	gens       map[uint32]*Group
	extraGroup map[string]*Group
}

// New builds a ledger. The returned ledger is ready for concurrent
// Observe calls.
func New(opts Options) *Ledger {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if opts.Windows <= 0 {
		opts.Windows = telemetry.DefaultRingWindows
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := opts.Registry
	return &Ledger{
		meter:      NewMeter(opts.Table, opts.Power),
		windowNs:   int64(opts.Window),
		ringCap:    opts.Windows,
		now:        opts.Now,
		decisions:  reg.Counter("ledger_decisions_total"),
		skipped:    reg.Counter("ledger_skipped_total"),
		energyMax:  reg.Counter("ledger_energy_max_pj_total"),
		energy:     reg.Counter("ledger_energy_pj_total"),
		savedHist:  reg.Histogram("ledger_decision_saved_pj"),
		lossHist:   reg.Histogram("ledger_decision_perf_loss_ppm"),
		savedRatio: reg.Gauge("ledger_energy_saved_ratio"),
		lossMean:   reg.Gauge("ledger_perf_loss_mean_ppm"),
		burn:       reg.Gauge("ledger_budget_burn"),
		savedRing:  telemetry.NewRing(opts.Windows),
		lossRing:   telemetry.NewRing(opts.Windows),
		presetRing: telemetry.NewRing(opts.Windows),
		clusters:   make(map[int32]*Group),
		gens:       make(map[uint32]*Group),
	}
}

// Meter returns the ledger's meter — the arithmetic offline replays must
// share.
func (l *Ledger) Meter() Meter {
	if l == nil {
		return NewMeter(nil, nil)
	}
	return l.meter
}

func ppm(v float64) int64 {
	if !(v > 0) {
		return 0
	}
	if v > 1000 {
		v = 1000
	}
	return int64(v * 1e6)
}

// maxTrackedKeys bounds the cluster/generation breakdown maps; key churn
// beyond it folds into the existing buckets' complement (new keys are
// simply not tracked), keeping the hot path allocation-bounded.
const maxTrackedKeys = 1 << 10

// Observe accounts one served decision: the finished epoch's counter row,
// the level decided for the next epoch, the requesting cluster (-1 for
// unkeyed rows), the serving model generation, and the row's preset.
// Nil-safe; unaccountable rows count as skipped.
func (l *Ledger) Observe(cluster int32, gen uint32, level int, features []float64, preset float64) {
	if l == nil {
		return
	}
	a := l.meter.Account(features, level)
	if !a.OK {
		l.skipped.Add(1)
		return
	}
	lossPpm := ppm(a.PerfLoss)
	presetPpm := ppm(preset)
	savedPJ := int64(a.SavedPJ())

	l.decisions.Add(1)
	l.energyMax.Add(int64(a.EnergyMaxPJ))
	l.energy.Add(int64(a.EnergyPJ))
	if savedPJ > 0 {
		l.savedHist.Observe(savedPJ)
	} else {
		l.savedHist.Observe(0)
	}
	l.lossHist.Observe(lossPpm)

	w := l.now().UnixNano() / l.windowNs
	l.savedRing.Observe(w, savedPJ)
	l.lossRing.Observe(w, lossPpm)
	l.presetRing.Observe(w, presetPpm)

	l.mu.Lock()
	l.lossPpm += lossPpm
	l.presetPpm += presetPpm
	if level >= 0 && level < maxLevels {
		l.levels[level].add(a, lossPpm)
	}
	if cluster >= 0 {
		g := l.clusters[cluster]
		if g == nil && len(l.clusters) < maxTrackedKeys {
			g = &Group{}
			l.clusters[cluster] = g
		}
		if g != nil {
			g.add(a, lossPpm)
		}
	}
	g := l.gens[gen]
	if g == nil && len(l.gens) < maxTrackedKeys {
		g = &Group{}
		l.gens[gen] = g
	}
	if g != nil {
		g.add(a, lossPpm)
	}
	lossSum, presetSum := l.lossPpm, l.presetPpm
	l.mu.Unlock()

	// Derived gauges ride the same scrape as the counters; computed from
	// running totals so they are always current without a flush loop.
	totMax, tot := l.energyMax.Load(), l.energy.Load()
	if totMax > 0 {
		l.savedRatio.Set(float64(totMax-tot) / float64(totMax))
	}
	if n := l.decisions.Load(); n > 0 {
		l.lossMean.Set(float64(lossSum) / float64(n))
	}
	if presetSum > 0 {
		l.burn.Set(float64(lossSum) / float64(presetSum))
	}
}

// ObserveTagged is Observe for offline replays that also know a free-form
// group identity (e.g. "kernel=backprop"), breaking the totals down by it
// alongside the standard level/cluster/generation groups.
func (l *Ledger) ObserveTagged(tag string, cluster int32, gen uint32, level int, features []float64, preset float64) {
	if l == nil {
		return
	}
	l.Observe(cluster, gen, level, features, preset)
	a := l.meter.Account(features, level)
	if !a.OK || tag == "" {
		return
	}
	lossPpm := ppm(a.PerfLoss)
	l.mu.Lock()
	if l.extraGroup == nil {
		l.extraGroup = make(map[string]*Group)
	}
	g := l.extraGroup[tag]
	if g == nil && len(l.extraGroup) < maxTrackedKeys {
		g = &Group{}
		l.extraGroup[tag] = g
	}
	if g != nil {
		g.add(a, lossPpm)
	}
	l.mu.Unlock()
}

// Snapshot captures the ledger. Totals and groups are read under the
// ledger's own synchronization; under concurrent traffic the counters and
// sums may straddle a decision or two, which the fleet's merge tolerance
// absorbs.
func (l *Ledger) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	s := Snapshot{
		WindowNs:    l.windowNs,
		RingCap:     l.ringCap,
		Decisions:   l.decisions.Load(),
		Skipped:     l.skipped.Load(),
		EnergyMaxPJ: l.energyMax.Load(),
		EnergyPJ:    l.energy.Load(),
		SavedHist:   l.savedHist.Snapshot(),
		LossHist:    l.lossHist.Snapshot(),
		SavedRing:   l.savedRing.Snapshot(nil),
		LossRing:    l.lossRing.Snapshot(nil),
		PresetRing:  l.presetRing.Snapshot(nil),
		Groups:      make(map[string]Group),
	}
	l.mu.Lock()
	s.PerfLossPpmSum = l.lossPpm
	s.PresetPpmSum = l.presetPpm
	for lvl, g := range l.levels {
		if g.Decisions > 0 {
			s.Groups[fmt.Sprintf("level=%d", lvl)] = g
		}
	}
	for c, g := range l.clusters {
		s.Groups[fmt.Sprintf("cluster=%d", c)] = *g
	}
	for gen, g := range l.gens {
		s.Groups[fmt.Sprintf("gen=%d", gen)] = *g
	}
	for tag, g := range l.extraGroup {
		s.Groups[tag] = *g
	}
	l.mu.Unlock()
	if len(s.Groups) == 0 {
		s.Groups = nil
	}
	return s
}

// ReplayRecords replays a provenance flight-recorder dump through the
// exact per-decision accounting — the offline cross-check for the online
// ledger. Records account with the same Meter arithmetic, so a dump that
// covers every served decision reproduces the online integer totals
// exactly; the documented ≤2 % tolerance in `dvfsstat -ledger` exists for
// dumps whose ring capacity dropped the oldest decisions or that were
// scraped mid-traffic.
func (m Meter) ReplayRecords(recs []provenance.Record) Snapshot {
	l := New(Options{Table: m.table, Power: &m.pow,
		Now: func() time.Time { return time.Unix(0, 0) }})
	for i := range recs {
		r := &recs[i]
		l.Observe(r.Cluster, r.ModelGen, int(r.Level), r.RawFeatures(), r.Preset)
	}
	return l.Snapshot()
}

// FormatEnergyPJ renders a picojoule quantity with a human unit.
func FormatEnergyPJ(pj float64) string {
	abs := math.Abs(pj)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.3g J", pj/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.3g mJ", pj/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3g µJ", pj/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g nJ", pj/1e3)
	default:
		return fmt.Sprintf("%.3g pJ", pj)
	}
}
