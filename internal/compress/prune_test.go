package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssmdvfs/internal/nn"
)

func newNet(t *testing.T, sizes []int, seed int64) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMagnitudePruneFraction(t *testing.T) {
	m := newNet(t, []int{10, 20, 10, 6}, 1)
	total := 0
	for _, l := range m.Layers {
		total += len(l.W)
	}
	if err := MagnitudePrune(m, 0.6); err != nil {
		t.Fatal(err)
	}
	nz := 0
	for _, l := range m.Layers {
		nz += l.NonzeroWeights()
	}
	frac := 1 - float64(nz)/float64(total)
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("pruned fraction = %.3f, want ≈ 0.6", frac)
	}
}

func TestMagnitudePruneKeepsLargest(t *testing.T) {
	m := newNet(t, []int{4, 4}, 2)
	l := m.Layers[0]
	for i := range l.W {
		l.W[i] = float64(i + 1) // magnitudes 1..16
	}
	if err := MagnitudePrune(m, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if l.W[i] != 0 {
			t.Fatalf("small weight %d survived: %g", i, l.W[i])
		}
	}
	for i := 9; i < 16; i++ {
		if l.W[i] == 0 {
			t.Fatalf("large weight %d pruned", i)
		}
	}
}

func TestMagnitudePruneZeroIsNoop(t *testing.T) {
	m := newNet(t, []int{5, 8, 3}, 3)
	before := m.Clone()
	if err := MagnitudePrune(m, 0); err != nil {
		t.Fatal(err)
	}
	for li := range m.Layers {
		for wi := range m.Layers[li].W {
			if m.Layers[li].W[wi] != before.Layers[li].W[wi] {
				t.Fatal("zero-fraction prune modified weights")
			}
		}
	}
}

func TestMagnitudePruneBadFraction(t *testing.T) {
	m := newNet(t, []int{3, 3}, 4)
	if err := MagnitudePrune(m, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if err := MagnitudePrune(m, 1.1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestNeuronPrunePreservesIO(t *testing.T) {
	m := newNet(t, []int{7, 16, 12, 4}, 5)
	if err := MagnitudePrune(m, 0.8); err != nil {
		t.Fatal(err)
	}
	pruned, err := NeuronPrune(m, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.InputSize() != 7 || pruned.OutputSize() != 4 {
		t.Fatalf("I/O dims changed: in=%d out=%d", pruned.InputSize(), pruned.OutputSize())
	}
	// Hidden layers must have shrunk under this much sparsity.
	if pruned.Params() >= m.Params() {
		t.Fatalf("neuron pruning did not shrink the network: %d >= %d", pruned.Params(), m.Params())
	}
	// The network must remain connected and runnable.
	out := pruned.Forward(make([]float64, 7))
	if len(out) != 4 {
		t.Fatalf("pruned forward output size %d", len(out))
	}
}

func TestNeuronPruneZeroThresholdRemovesAll(t *testing.T) {
	// zeroFrac 0 marks every neuron as "too sparse" (every neuron has
	// ≥ 0 fraction zeros) — the implementation must keep at least one
	// neuron per layer rather than collapsing.
	m := newNet(t, []int{4, 8, 3}, 6)
	pruned, err := NeuronPrune(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range pruned.Layers[:len(pruned.Layers)-1] {
		if l.Out < 1 {
			t.Fatalf("layer %d collapsed to %d neurons", i, l.Out)
		}
	}
}

func TestNeuronPruneIdentityWhenDense(t *testing.T) {
	// With no zeros and threshold 1.0, nothing is removed and the
	// function must preserve behaviour exactly.
	m := newNet(t, []int{5, 9, 3}, 7)
	pruned, err := NeuronPrune(m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, -0.3, 0.4, -0.5}
	a, b := m.Forward(x), pruned.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("dense NeuronPrune changed outputs: %v vs %v", a, b)
		}
	}
}

func TestPruneReducesEffectiveFLOPs(t *testing.T) {
	m := newNet(t, []int{6, 12, 12, 6}, 8)
	pruned, err := Prune(m, 0.6, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.EffectiveFLOPs() >= m.FLOPs() {
		t.Fatalf("pruning did not reduce FLOPs: %d >= %d", pruned.EffectiveFLOPs(), m.FLOPs())
	}
	if pruned.InputSize() != 6 || pruned.OutputSize() != 6 {
		t.Fatal("Prune changed I/O dims")
	}
}

func TestPruneProperty(t *testing.T) {
	f := func(seed int64, x1raw, x2raw uint8) bool {
		x1 := float64(x1raw) / 255 * 0.9
		x2 := float64(x2raw)/255*0.8 + 0.2
		m, err := nn.NewMLP([]int{5, 10, 8, 4}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		pruned, err := Prune(m, x1, x2)
		if err != nil {
			return false
		}
		if pruned.InputSize() != 5 || pruned.OutputSize() != 4 {
			return false
		}
		// Forward pass must stay finite.
		out := pruned.Forward([]float64{1, -1, 0.5, 2, -0.3})
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return pruned.EffectiveFLOPs() <= m.FLOPs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardGridShapes(t *testing.T) {
	grid := StandardGrid()
	if len(grid) == 0 {
		t.Fatal("empty grid")
	}
	for _, a := range grid {
		if len(a.DecisionHidden) < 1 || len(a.CalibratorHidden) < 1 {
			t.Fatalf("degenerate architecture %+v", a)
		}
	}
}
