// Package compress implements the paper's Section IV model-compression
// pipeline: a layer-wise architecture sweep that trades FLOPs against
// accuracy/MAPE (Fig. 3's layer-wise curve), and two-stage pruning —
// fine-grained magnitude pruning of a fraction x₁ of the smallest
// weights, followed by neuron-level pruning that removes hidden neurons
// whose incoming weight vectors are at least x₂ zero (Fig. 3's pruning
// curve and the final Table II model).
package compress

import (
	"fmt"
	"math"
	"sort"

	"ssmdvfs/internal/nn"
)

// MagnitudePrune zeroes the fraction frac of smallest-magnitude weights
// across all layers of the network (a single global threshold, as in
// classic fine-grained pruning) by installing masks. Biases are kept.
func MagnitudePrune(m *nn.MLP, frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("compress: prune fraction %g out of [0,1]", frac)
	}
	if frac == 0 {
		return nil
	}
	var mags []float64
	for _, l := range m.Layers {
		for _, w := range l.W {
			mags = append(mags, math.Abs(w))
		}
	}
	sort.Float64s(mags)
	k := int(frac * float64(len(mags)))
	if k >= len(mags) {
		k = len(mags) - 1
	}
	threshold := mags[k]
	for _, l := range m.Layers {
		mask := make([]float64, len(l.W))
		for i, w := range l.W {
			if math.Abs(w) > threshold {
				mask[i] = 1
			}
		}
		if err := l.SetMask(mask); err != nil {
			return err
		}
	}
	return nil
}

// NeuronPrune removes hidden neurons whose incoming weight vector is at
// least zeroFrac zero-valued (after magnitude pruning), rebuilding the
// network with smaller layers: removing neuron j of layer L deletes row j
// of layer L and column j of layer L+1. Input and output dimensions are
// preserved, and each hidden layer keeps at least one neuron. It returns
// the pruned network.
func NeuronPrune(m *nn.MLP, zeroFrac float64) (*nn.MLP, error) {
	if zeroFrac < 0 || zeroFrac > 1 {
		return nil, fmt.Errorf("compress: neuron zero fraction %g out of [0,1]", zeroFrac)
	}
	cur := m.Clone()
	// Walk hidden layers: the output neurons of layer i (for every layer
	// except the last) are candidates.
	for li := 0; li+1 < len(cur.Layers); li++ {
		l := cur.Layers[li]
		next := cur.Layers[li+1]

		keep := make([]int, 0, l.Out)
		for o := 0; o < l.Out; o++ {
			zeros := 0
			for i := 0; i < l.In; i++ {
				w := l.W[o*l.In+i]
				masked := l.Mask != nil && l.Mask[o*l.In+i] == 0
				if w == 0 || masked {
					zeros++
				}
			}
			if float64(zeros)/float64(l.In) < zeroFrac {
				keep = append(keep, o)
			}
		}
		if len(keep) == 0 {
			// Keep the neuron with the fewest zeros so the network stays
			// connected.
			best, bestZeros := 0, l.In+1
			for o := 0; o < l.Out; o++ {
				zeros := 0
				for i := 0; i < l.In; i++ {
					if l.W[o*l.In+i] == 0 {
						zeros++
					}
				}
				if zeros < bestZeros {
					best, bestZeros = o, zeros
				}
			}
			keep = []int{best}
		}
		if len(keep) == l.Out {
			continue
		}
		cur.Layers[li] = shrinkRows(l, keep)
		cur.Layers[li+1] = shrinkCols(next, keep)
	}
	return cur, nil
}

// shrinkRows keeps only the given output neurons of a layer.
func shrinkRows(l *nn.Dense, keep []int) *nn.Dense {
	out := &nn.Dense{
		In:    l.In,
		Out:   len(keep),
		W:     make([]float64, l.In*len(keep)),
		B:     make([]float64, len(keep)),
		GradW: make([]float64, l.In*len(keep)),
		GradB: make([]float64, len(keep)),
	}
	if l.Mask != nil {
		out.Mask = make([]float64, len(out.W))
	}
	for newO, o := range keep {
		copy(out.W[newO*l.In:(newO+1)*l.In], l.W[o*l.In:(o+1)*l.In])
		if l.Mask != nil {
			copy(out.Mask[newO*l.In:(newO+1)*l.In], l.Mask[o*l.In:(o+1)*l.In])
		}
		out.B[newO] = l.B[o]
	}
	return out
}

// shrinkCols keeps only the given input columns of a layer.
func shrinkCols(l *nn.Dense, keep []int) *nn.Dense {
	out := &nn.Dense{
		In:    len(keep),
		Out:   l.Out,
		W:     make([]float64, len(keep)*l.Out),
		B:     append([]float64(nil), l.B...),
		GradW: make([]float64, len(keep)*l.Out),
		GradB: make([]float64, l.Out),
	}
	if l.Mask != nil {
		out.Mask = make([]float64, len(out.W))
	}
	for o := 0; o < l.Out; o++ {
		for newI, i := range keep {
			out.W[o*len(keep)+newI] = l.W[o*l.In+i]
			if l.Mask != nil {
				out.Mask[o*len(keep)+newI] = l.Mask[o*l.In+i]
			}
		}
	}
	return out
}

// Prune applies the paper's two-stage pruning to a network: magnitude
// pruning at x1 followed by neuron pruning at x2.
func Prune(m *nn.MLP, x1, x2 float64) (*nn.MLP, error) {
	cp := m.Clone()
	if err := MagnitudePrune(cp, x1); err != nil {
		return nil, err
	}
	return NeuronPrune(cp, x2)
}

// MagnitudePruneLayerwise zeroes the fraction frac of smallest-magnitude
// weights independently within each layer (per-layer thresholds), which
// protects small but critical layers — e.g. a regression head's output
// layer — from a global threshold dominated by large hidden layers.
func MagnitudePruneLayerwise(m *nn.MLP, frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("compress: prune fraction %g out of [0,1]", frac)
	}
	if frac == 0 {
		return nil
	}
	for _, l := range m.Layers {
		mags := make([]float64, len(l.W))
		for i, w := range l.W {
			mags[i] = math.Abs(w)
		}
		sort.Float64s(mags)
		k := int(frac * float64(len(mags)))
		if k >= len(mags) {
			k = len(mags) - 1
		}
		threshold := mags[k]
		mask := make([]float64, len(l.W))
		for i, w := range l.W {
			if math.Abs(w) > threshold {
				mask[i] = 1
			}
		}
		if err := l.SetMask(mask); err != nil {
			return err
		}
	}
	return nil
}
