package compress

import (
	"fmt"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/nn"
)

// Point is one (FLOPs, accuracy, MAPE) sample on a compression curve.
type Point struct {
	// Label identifies the configuration ("5+4x20", "x1=0.6 x2=0.9", ...).
	Label string
	// FLOPs is the combined model inference cost (effective/sparse FLOPs
	// for pruning points).
	FLOPs int
	// Accuracy is Decision-maker accuracy; MAPE is Calibrator error (%).
	Accuracy float64
	MAPE     float64
}

// LayerwisePoint trains the combined model at one architecture and
// returns its curve point — one independent shard of the layer-wise
// sweep.
func LayerwisePoint(ds *datagen.Dataset, arch core.Architecture, opts core.TrainOptions) (Point, error) {
	opts.Arch = arch
	m, rep, err := core.Train(ds, opts)
	if err != nil {
		return Point{}, fmt.Errorf("compress: training %v: %w", arch, err)
	}
	return Point{
		Label:    archLabel(arch),
		FLOPs:    m.FLOPs(),
		Accuracy: rep.Accuracy,
		MAPE:     rep.MAPE,
	}, nil
}

// LayerwiseSweep trains the combined model across an architecture grid
// and returns the FLOPs-vs-quality curve of Fig. 3's layer-wise series.
// Each architecture is trained with the same options (apart from Arch).
func LayerwiseSweep(ds *datagen.Dataset, archs []core.Architecture, opts core.TrainOptions) ([]Point, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("compress: empty architecture grid")
	}
	points := make([]Point, 0, len(archs))
	for _, a := range archs {
		p, err := LayerwisePoint(ds, a, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

func archLabel(a core.Architecture) string {
	width := 0
	if len(a.DecisionHidden) > 0 {
		width = a.DecisionHidden[0]
	}
	return fmt.Sprintf("%d+%dx%d", len(a.DecisionHidden)+1, len(a.CalibratorHidden)+1, width)
}

// StandardGrid returns the paper-style layer-wise grid: decision depths
// 5..2 (hidden layers 4..1), calibrator depths 4..2, widths 20..4.
func StandardGrid() []core.Architecture {
	widths := []int{20, 16, 12, 8, 6, 4}
	var grid []core.Architecture
	for _, w := range widths {
		for dh := 4; dh >= 1; dh-- {
			ch := dh - 1
			if ch < 1 {
				ch = 1
			}
			grid = append(grid, core.Architecture{
				DecisionHidden:   repeat(w, dh),
				CalibratorHidden: repeat(w, ch),
			})
		}
	}
	return grid
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// PruneOptions configures PruneModel.
type PruneOptions struct {
	// X1 is the fine-grained magnitude pruning fraction; X2 the
	// neuron-level zero-fraction threshold. The paper selects (0.6, 0.9).
	X1, X2 float64
	// FineTuneEpochs retrains the pruned heads (masks enforced) to recover
	// accuracy; 0 skips fine-tuning.
	FineTuneEpochs int
	BatchSize      int
	LearningRate   float64
	Seed           int64
}

// DefaultPruneOptions returns the paper's selected pruning point with a
// short fine-tune.
func DefaultPruneOptions() PruneOptions {
	return PruneOptions{X1: 0.6, X2: 0.9, FineTuneEpochs: 20, BatchSize: 32, LearningRate: 0.001, Seed: 7}
}

// PruneModel applies the paper's two-stage pruning to both heads of the
// combined model, fine-tuning after each stage (masks in force) so the
// surviving weights absorb what the pruned ones carried — without the
// intermediate fine-tune, neuron-level pruning removes units whose
// weights merely *looked* dead right after magnitude pruning, and the
// Calibrator's regression quality collapses. It returns the pruned model
// and its evaluation on ds.
func PruneModel(m *core.Model, ds *datagen.Dataset, opts PruneOptions) (*core.Model, core.Report, error) {
	var rep core.Report
	pruned := m.Clone()

	// Stage 1: fine-grained magnitude pruning of the smallest x1 weights.
	if err := MagnitudePrune(pruned.Decision, opts.X1); err != nil {
		return nil, rep, err
	}
	if err := MagnitudePrune(pruned.Calibrator, opts.X1); err != nil {
		return nil, rep, err
	}
	if opts.FineTuneEpochs > 0 {
		if err := fineTune(pruned, ds, opts); err != nil {
			return nil, rep, err
		}
	}

	// Stage 2: neuron-level pruning of units that stayed ≥ x2 zero.
	var err error
	if pruned.Decision, err = NeuronPrune(pruned.Decision, opts.X2); err != nil {
		return nil, rep, err
	}
	if pruned.Calibrator, err = NeuronPrune(pruned.Calibrator, opts.X2); err != nil {
		return nil, rep, err
	}
	if opts.FineTuneEpochs > 0 {
		if err := fineTune(pruned, ds, opts); err != nil {
			return nil, rep, err
		}
	}
	rep = core.Evaluate(pruned, ds)
	rep.FLOPs = pruned.EffectiveFLOPs()
	return pruned, rep, nil
}

// fineTune retrains both pruned heads with masks in force, using the
// model's existing scalers.
func fineTune(m *core.Model, ds *datagen.Dataset, opts PruneOptions) error {
	dRows, dLabels := m.DecisionRowsFor(ds, opts.Seed+2)
	dSet := nn.ClassificationSet{X: m.DecisionScaler.TransformAll(dRows), Labels: dLabels}
	if _, err := nn.TrainClassifier(m.Decision, dSet, nn.TrainConfig{
		Epochs: opts.FineTuneEpochs, BatchSize: opts.BatchSize,
		Optimizer: nn.NewAdam(opts.LearningRate), Seed: opts.Seed,
	}); err != nil {
		return err
	}
	cRows, cTargets := ds.CalibratorRows(m.FeatureIdx)
	y := make([]float64, len(cTargets))
	for i, t := range cTargets {
		y[i] = t / m.TargetScale
	}
	cSet := nn.RegressionSet{X: m.CalibScaler.TransformAll(cRows), Y: y}
	_, err := nn.TrainRegressor(m.Calibrator, cSet, nn.TrainConfig{
		Epochs: opts.FineTuneEpochs, BatchSize: opts.BatchSize,
		Optimizer: nn.NewAdam(opts.LearningRate), Seed: opts.Seed + 1,
	})
	return err
}

// PrunePoint prunes a trained model at one (x1, x2) grid point and
// returns its curve point with effective (sparse) FLOPs — one
// independent shard of the pruning sweep.
func PrunePoint(m *core.Model, ds *datagen.Dataset, x1, x2 float64, opts PruneOptions) (Point, error) {
	opts.X1, opts.X2 = x1, x2
	pruned, rep, err := PruneModel(m, ds, opts)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Label:    fmt.Sprintf("x1=%.2f x2=%.2f", x1, x2),
		FLOPs:    pruned.EffectiveFLOPs(),
		Accuracy: rep.Accuracy,
		MAPE:     rep.MAPE,
	}, nil
}

// PruningSweep evaluates a grid of (x1, x2) pruning parameters on a
// trained model, returning Fig. 3's pruning series. Points are evaluated
// with effective (sparse) FLOPs.
func PruningSweep(m *core.Model, ds *datagen.Dataset, x1s, x2s []float64, opts PruneOptions) ([]Point, error) {
	if len(x1s) == 0 || len(x2s) == 0 {
		return nil, fmt.Errorf("compress: empty pruning grid")
	}
	var points []Point
	for _, x1 := range x1s {
		for _, x2 := range x2s {
			p, err := PrunePoint(m, ds, x1, x2, opts)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}
