// Package counters derives the 47 per-epoch performance counters the
// paper's data-generation process collects, groups them into the three
// metric categories of Section III-B (instruction, execution-stall, and
// power metrics), and provides the feature scaling used for model
// training. The five counters of Table I — IPC, PPC, MH, MH\L and
// L1CRM — are exposed as the canonical selected subset.
package counters

import (
	"fmt"
	"math"

	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
)

// Category is one of the paper's three metric groups.
type Category uint8

const (
	// Instruction counters describe what executed.
	Instruction Category = iota
	// Stall counters describe why execution waited.
	Stall
	// Power counters are the direct features.
	Power
)

func (c Category) String() string {
	switch c {
	case Instruction:
		return "instruction"
	case Stall:
		return "stall"
	case Power:
		return "power"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// Counter describes one of the 47 performance counters.
type Counter struct {
	Name     string
	Category Category
}

// Num is the number of performance counters, matching the paper's 47.
const Num = 47

// Canonical counter indices used across the project. The five Table I
// counters come first so the selected subset is a stable prefix-free set.
const (
	IdxIPC   = 0 // instructions per core per cycle
	IdxPPC   = 1 // total power per core (W)
	IdxMH    = 2 // memory hazard stalls (waiting on load data)
	IdxMHNL  = 3 // memory hazards from other than load
	IdxL1CRM = 4 // L1 cache read misses

	// Indices consumed by the analytical fallback path, which must be able
	// to reconstruct PCSTALL's sensitivity estimate from a raw feature row.
	IdxInstr        = 5  // instructions executed in the epoch
	IdxStallCompute = 21 // compute-dependency stalls
	IdxStallControl = 22 // control-dependency stalls
)

var defs = [Num]Counter{
	{Name: "ipc", Category: Instruction},
	{Name: "ppc_total_w", Category: Power},
	{Name: "stall_mem_hazard", Category: Stall},
	{Name: "stall_mem_other", Category: Stall},
	{Name: "l1_read_misses", Category: Stall},

	// Remaining instruction metrics.
	{Name: "instructions", Category: Instruction},
	{Name: "op_ialu", Category: Instruction},
	{Name: "op_falu", Category: Instruction},
	{Name: "op_sfu", Category: Instruction},
	{Name: "op_ldg", Category: Instruction},
	{Name: "op_stg", Category: Instruction},
	{Name: "op_lds", Category: Instruction},
	{Name: "op_branch", Category: Instruction},
	{Name: "frac_falu", Category: Instruction},
	{Name: "frac_mem", Category: Instruction},
	{Name: "frac_branch", Category: Instruction},
	{Name: "active_cycle_frac", Category: Instruction},
	{Name: "instr_per_warp", Category: Instruction},
	{Name: "warps_active", Category: Instruction},
	{Name: "issue_util", Category: Instruction},
	{Name: "cycles", Category: Instruction},

	// Remaining stall metrics.
	{Name: "stall_compute", Category: Stall},
	{Name: "stall_control", Category: Stall},
	{Name: "ready_not_issued", Category: Stall},
	{Name: "dvfs_stall", Category: Stall},
	{Name: "stall_total", Category: Stall},
	{Name: "stall_mem_frac", Category: Stall},
	{Name: "stall_compute_frac", Category: Stall},
	{Name: "l1_read_hits", Category: Stall},
	{Name: "l1_read_miss_rate", Category: Stall},
	{Name: "l1_write_accesses", Category: Stall},
	{Name: "l2_accesses", Category: Stall},
	{Name: "l2_hits", Category: Stall},
	{Name: "l2_misses", Category: Stall},
	{Name: "l2_miss_rate", Category: Stall},
	{Name: "dram_lines", Category: Stall},
	{Name: "dram_bytes_per_instr", Category: Stall},
	{Name: "l1_mpki", Category: Stall},
	{Name: "l2_mpki", Category: Stall},
	{Name: "shared_loads", Category: Stall},

	// Remaining power metrics and operating-state inputs.
	{Name: "ppc_dynamic_w", Category: Power},
	{Name: "ppc_static_w", Category: Power},
	{Name: "energy_pj", Category: Power},
	{Name: "energy_per_instr_pj", Category: Power},
	{Name: "freq_mhz", Category: Power},
	{Name: "voltage_v", Category: Power},
	{Name: "op_level", Category: Power},
}

// Names returns the 47 counter names in index order.
func Names() []string {
	out := make([]string, Num)
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}

// Def returns counter i's definition.
func Def(i int) Counter { return defs[i] }

// Index returns the index of the named counter, or an error.
func Index(name string) (int, error) {
	for i, d := range defs {
		if d.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("counters: unknown counter %q", name)
}

// SelectedFive returns the indices of the paper's Table I counters:
// IPC, PPC, MH, MH\L, L1CRM.
func SelectedFive() []int {
	return []int{IdxIPC, IdxPPC, IdxMH, IdxMHNL, IdxL1CRM}
}

// PowerOnly returns the indices of the direct (power) features, used by
// the feature-set ablation.
func PowerOnly() []int {
	var out []int
	for i, d := range defs {
		if d.Category == Power {
			out = append(out, i)
		}
	}
	return out
}

// FromStats computes the 47-counter vector from one cluster epoch.
func FromStats(s gpusim.EpochStats) []float64 {
	v := make([]float64, Num)
	instr := float64(s.Instructions)
	cycles := float64(s.Cycles)
	stallTotal := s.StallMemLoad + s.StallMemOther + s.StallCompute + s.StallControl

	v[IdxIPC] = s.IPC()
	v[IdxPPC] = s.PowerW()
	v[IdxMH] = float64(s.StallMemLoad)
	v[IdxMHNL] = float64(s.StallMemOther)
	v[IdxL1CRM] = float64(s.L1ReadMisses)

	v[5] = instr
	v[6] = float64(s.OpCounts[isa.OpIAlu])
	v[7] = float64(s.OpCounts[isa.OpFAlu])
	v[8] = float64(s.OpCounts[isa.OpSFU])
	v[9] = float64(s.OpCounts[isa.OpLoadGlobal])
	v[10] = float64(s.OpCounts[isa.OpStoreGlobal])
	v[11] = float64(s.OpCounts[isa.OpLoadShared])
	v[12] = float64(s.OpCounts[isa.OpBranch])
	if instr > 0 {
		v[13] = float64(s.OpCounts[isa.OpFAlu]) / instr
		v[14] = float64(s.OpCounts[isa.OpLoadGlobal]+s.OpCounts[isa.OpStoreGlobal]) / instr
		v[15] = float64(s.OpCounts[isa.OpBranch]) / instr
	}
	if cycles > 0 {
		v[16] = float64(s.ActiveCycles) / cycles
	}
	if s.WarpsActive > 0 {
		v[17] = instr / float64(s.WarpsActive)
	}
	v[18] = float64(s.WarpsActive)
	if cycles > 0 {
		v[19] = instr / (cycles * 2) // issue slots assuming dual issue
	}
	v[20] = cycles

	v[21] = float64(s.StallCompute)
	v[22] = float64(s.StallControl)
	v[23] = float64(s.ReadyNotIssued)
	v[24] = float64(s.DVFSStall)
	v[25] = float64(stallTotal)
	if stallTotal > 0 {
		v[26] = float64(s.StallMemLoad+s.StallMemOther) / float64(stallTotal)
		v[27] = float64(s.StallCompute) / float64(stallTotal)
	}
	v[28] = float64(s.L1ReadHits)
	v[29] = s.L1ReadMissRate()
	v[30] = float64(s.L1WriteAccesses)
	v[31] = float64(s.L2Accesses)
	v[32] = float64(s.L2Hits)
	v[33] = float64(s.L2Misses)
	if s.L2Accesses > 0 {
		v[34] = float64(s.L2Misses) / float64(s.L2Accesses)
	}
	v[35] = float64(s.DRAMLines)
	if instr > 0 {
		v[36] = float64(s.DRAMLines) * 64 / instr
		v[37] = float64(s.L1ReadMisses) / instr * 1000
		v[38] = float64(s.L2Misses) / instr * 1000
	}
	v[39] = float64(s.SharedLoads)

	v[40] = s.DynPowerW
	v[41] = s.StaticPowerW
	v[42] = s.EnergyPJ
	if instr > 0 {
		v[43] = s.EnergyPJ / instr
	}
	v[44] = s.OP.FrequencyHz / 1e6
	v[45] = s.OP.VoltageV
	v[46] = float64(s.Level)
	return v
}

// Scaler standardizes feature vectors to zero mean and unit variance,
// fitted on a training set. Features with zero variance pass through
// centred only.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-column mean and standard deviation over rows.
// All rows must share the same length.
func FitScaler(rows [][]float64) (*Scaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("counters: cannot fit scaler on empty data")
	}
	n := len(rows[0])
	mean := make([]float64, n)
	std := make([]float64, n)
	for _, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("counters: inconsistent row length %d vs %d", len(r), n)
		}
		for j, x := range r {
			mean[j] += x
		}
	}
	for j := range mean {
		mean[j] /= float64(len(rows))
	}
	for _, r := range rows {
		for j, x := range r {
			d := x - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(rows)))
		if std[j] < 1e-12 {
			std[j] = 1
		}
	}
	return &Scaler{Mean: mean, Std: std}, nil
}

// Transform returns a standardized copy of row.
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	s.TransformInto(row, out)
	return out
}

// TransformInto standardizes row into dst (len(dst) must equal len(row)),
// allocating nothing. The scaler itself is read-only and safe for
// concurrent use.
func (s *Scaler) TransformInto(row, dst []float64) {
	for j, x := range row {
		dst[j] = (x - s.Mean[j]) / s.Std[j]
	}
}

// TransformAll standardizes every row, returning new slices.
func (s *Scaler) TransformAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Transform(r)
	}
	return out
}

// Subset returns a scaler restricted to the given column indices, for use
// after feature selection.
func (s *Scaler) Subset(idx []int) *Scaler {
	sub := &Scaler{Mean: make([]float64, len(idx)), Std: make([]float64, len(idx))}
	for i, j := range idx {
		sub.Mean[i] = s.Mean[j]
		sub.Std[i] = s.Std[j]
	}
	return sub
}

// Select extracts the given columns from row.
func Select(row []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	SelectInto(row, idx, out)
	return out
}

// SelectInto extracts the given columns from row into dst, whose first
// len(idx) elements are overwritten.
func SelectInto(row []float64, idx []int, dst []float64) {
	for i, j := range idx {
		dst[i] = row[j]
	}
}

// SelectAll extracts the given columns from every row.
func SelectAll(rows [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = Select(r, idx)
	}
	return out
}
