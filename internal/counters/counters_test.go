package counters

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
)

func sampleStats() gpusim.EpochStats {
	s := gpusim.EpochStats{
		Cluster:      1,
		Epoch:        3,
		Level:        4,
		OP:           clockdomain.TitanX().Point(4),
		Instructions: 20000,
		Cycles:       11000,
		ActiveCycles: 9000,
		StallMemLoad: 3000, StallMemOther: 500,
		StallCompute: 2000, StallControl: 400,
		L1ReadHits: 1500, L1ReadMisses: 500,
		L1WriteAccesses: 200,
		L2Accesses:      700, L2Hits: 400, L2Misses: 300,
		DRAMLines:   300,
		SharedLoads: 50,
		WarpsActive: 16,
		DynPowerW:   4.5, StaticPowerW: 1.8,
		EnergyPJ: 6.3e7,
	}
	s.OpCounts[isa.OpIAlu] = 6000
	s.OpCounts[isa.OpFAlu] = 10000
	s.OpCounts[isa.OpLoadGlobal] = 2000
	s.OpCounts[isa.OpStoreGlobal] = 1000
	s.OpCounts[isa.OpBranch] = 1000
	return s
}

func TestExactly47Counters(t *testing.T) {
	names := Names()
	if len(names) != 47 || Num != 47 {
		t.Fatalf("counter count = %d, want 47", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("empty or duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for i, name := range Names() {
		got, err := Index(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Fatalf("Index(%q) = %d, want %d", name, got, i)
		}
	}
	if _, err := Index("nope"); err == nil {
		t.Fatal("unknown counter accepted")
	}
}

func TestSelectedFiveMatchesTableI(t *testing.T) {
	five := SelectedFive()
	wantNames := []string{"ipc", "ppc_total_w", "stall_mem_hazard", "stall_mem_other", "l1_read_misses"}
	if len(five) != len(wantNames) {
		t.Fatalf("SelectedFive has %d entries", len(five))
	}
	for i, idx := range five {
		if Def(idx).Name != wantNames[i] {
			t.Fatalf("selected[%d] = %q, want %q", i, Def(idx).Name, wantNames[i])
		}
	}
	// Category split per Table I: IPC instruction, PPC power, rest stall.
	if Def(five[0]).Category != Instruction || Def(five[1]).Category != Power {
		t.Fatal("IPC/PPC categories wrong")
	}
	for _, idx := range five[2:] {
		if Def(idx).Category != Stall {
			t.Fatalf("%q category = %v, want stall", Def(idx).Name, Def(idx).Category)
		}
	}
}

func TestFromStatsValues(t *testing.T) {
	s := sampleStats()
	v := FromStats(s)
	if len(v) != Num {
		t.Fatalf("vector length %d", len(v))
	}
	if got, want := v[IdxIPC], 20000.0/11000.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("IPC = %g, want %g", got, want)
	}
	if got, want := v[IdxPPC], 6.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PPC = %g, want %g", got, want)
	}
	if v[IdxMH] != 3000 || v[IdxMHNL] != 500 || v[IdxL1CRM] != 500 {
		t.Fatalf("MH/MH\\L/L1CRM = %g/%g/%g", v[IdxMH], v[IdxMHNL], v[IdxL1CRM])
	}
	// Spot-check a few derived counters by name.
	check := func(name string, want float64) {
		t.Helper()
		i, err := Index(name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[i]-want) > 1e-9 {
			t.Fatalf("%s = %g, want %g", name, v[i], want)
		}
	}
	check("instructions", 20000)
	check("l1_read_miss_rate", 0.25)
	check("l2_miss_rate", 300.0/700.0)
	check("frac_mem", 3000.0/20000.0)
	check("freq_mhz", 1100)
	check("voltage_v", 1.1)
	check("op_level", 4)
}

func TestFromStatsZeroSafe(t *testing.T) {
	v := FromStats(gpusim.EpochStats{OP: clockdomain.TitanX().Point(0)})
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("counter %d (%s) is not finite on zero stats", i, Def(i).Name)
		}
	}
}

func TestScalerNormalizes(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.TransformAll(rows)
	for col := 0; col < 2; col++ {
		var mean, varsum float64
		for _, r := range out {
			mean += r[col]
		}
		mean /= float64(len(out))
		for _, r := range out {
			d := r[col] - mean
			varsum += d * d
		}
		std := math.Sqrt(varsum / float64(len(out)))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Fatalf("column %d: mean=%g std=%g after scaling", col, mean, std)
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	rows := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s, err := FitScaler(rows)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{5, 2})
	if out[0] != 0 {
		t.Fatalf("constant column transformed to %g, want 0", out[0])
	}
	if math.IsNaN(out[1]) {
		t.Fatal("NaN in scaled output")
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestSelectAndSubset(t *testing.T) {
	row := []float64{10, 11, 12, 13, 14}
	got := Select(row, []int{4, 0, 2})
	want := []float64{14, 10, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Select = %v, want %v", got, want)
		}
	}
	s := &Scaler{Mean: []float64{0, 1, 2, 3, 4}, Std: []float64{1, 2, 3, 4, 5}}
	sub := s.Subset([]int{4, 0})
	if sub.Mean[0] != 4 || sub.Std[0] != 5 || sub.Mean[1] != 0 || sub.Std[1] != 1 {
		t.Fatalf("Subset wrong: %+v", sub)
	}
}

func TestScalerFinitenessProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, int(n%20)+2)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64() * 1e6, rng.Float64(), 42}
		}
		s, err := FitScaler(rows)
		if err != nil {
			return false
		}
		for _, r := range s.TransformAll(rows) {
			for _, x := range r {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
