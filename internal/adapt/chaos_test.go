package adapt

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
)

// dumpAdaptArtifact writes the controller's transition log (the
// /debug/adapt history) to $ADAPT_ARTIFACT_DIR so CI attaches the full
// adaptation story — drift signals, refits, promotion, rollback — to the
// run. A no-op when the variable is unset.
func dumpAdaptArtifact(t *testing.T, c *Controller) {
	dir := os.Getenv("ADAPT_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("adapt artifact: %v", err)
		return
	}
	path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+"-transitions.json")
	f, err := os.Create(path)
	if err != nil {
		t.Logf("adapt artifact: %v", err)
		return
	}
	defer f.Close()
	if err := c.Events().WriteJSON(f); err != nil {
		t.Logf("adapt artifact: %v", err)
		return
	}
	t.Logf("adapt artifact: transition log at %s", path)
}

// TestChaosAdaptationLifecycle is the closed-loop chaos harness: live
// keyed traffic (with injected inference panics degrading random rows)
// drifts away from the incumbent's calibration, the controller re-fits,
// shadow-scores, and promotes a candidate, then the workload shifts
// again under the canary and the controller rolls back — all while the
// decision path keeps answering. The contract:
//
//   - every request is answered with a valid level (zero errored
//     requests, even with panics injected);
//   - no decision is ever served by an unvalidated model: served records
//     only carry the incumbent's generation or, strictly between
//     promotion and rollback (plus bounded in-flight skew), the
//     promoted candidate's;
//   - the transition log tells the full story in order: drift signal,
//     shadow, canary, rollback.
//
// Designed to run under -race on a single-CPU box: the main goroutine
// never touches the controller mutex while traffic flows — it watches
// the loop through lock-free telemetry counters, and reads the
// promotion/rollback recorder heads from the transition log afterwards.
func TestChaosAdaptationLifecycle(t *testing.T) {
	inj := faults.New(43)
	if err := inj.Arm(serve.FaultInfer, faults.Spec{Kind: faults.KindPanic, Every: 89}); err != nil {
		t.Fatal(err)
	}
	e, err := serve.NewEngine(adaptModel(t, 90), serve.Options{Workers: 2, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	// The controller does not exist yet when the monitor is wired, so the
	// threshold hook resolves it through an atomic — the same shape the
	// daemon uses.
	var ctrlRef atomic.Pointer[Controller]
	e.EnableProvenance(8192, provenance.MonitorOptions{
		Window: 64,
		OnThreshold: func(ev provenance.ThresholdEvent) {
			if c := ctrlRef.Load(); c != nil {
				c.NoteThreshold(ev)
			}
		},
	})
	e.EnablePredFeedback()
	c, err := NewController(e, Options{
		MinRows:          64,
		ShadowMinSamples: 48,
		// The shadow and canary windows are unbounded in steps and the
		// canary needs more samples than clean traffic can deliver before
		// the test flips the workload: the test script decides when the
		// canary regresses, not a step-count race.
		ShadowMaxSteps:   1 << 30,
		CanaryMinSamples: 1 << 20,
		CanaryMaxSteps:   1 << 30,
		CooldownSteps:    2,
		Refit:            core.RefitOptions{Epochs: 150, BatchSize: 32, LearningRate: 0.02, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrlRef.Store(c)
	defer dumpAdaptArtifact(t, c)

	reg := e.Telemetry()
	cRefits := reg.Counter("adapt_refits_total")
	cPromotes := reg.Counter("adapt_promotions_total")
	cRollbacks := reg.Counter("adapt_rollbacks_total")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrlDone := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		c.Run(ctx, 4*time.Millisecond)
	}()

	// instrBits is the workload knob the chaos flips mid-canary.
	var instrBits atomic.Uint64
	setInstr := func(v float64) { instrBits.Store(uint64(v * 16)) }
	getInstr := func() float64 { return float64(instrBits.Load()) / 16 }
	setInstr(instrBase)

	const workers = 2
	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		answered  atomic.Int64
		badLevel  atomic.Int64
		shortResp atomic.Int64
	)
	levels := e.Model().Levels
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(900 + int64(g)))
			rows := make([]serve.Request, 8)
			var decs []serve.Decision
			for {
				select {
				case <-stop:
					return
				default:
				}
				instr := getInstr()
				for i := range rows {
					rows[i] = trafficRow(rng, int32(g*8+i), instr)
					rows[i].GPU = int32(g)
				}
				decs = e.DecideBatch(rows, decs[:0])
				if len(decs) != len(rows) {
					shortResp.Add(1)
					continue
				}
				for _, d := range decs {
					if d.Level < 0 || d.Level >= levels {
						badLevel.Add(1)
					}
					answered.Add(1)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(g)
	}

	// waitFor polls a lock-free condition while traffic flows.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("chaos: %s never happened: %+v", what, c.Status())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1: the incumbent drifts (its calibrator predicts ~1000
	// against ~3000 realized) and a candidate is re-fit into shadow.
	waitFor("candidate refit", func() bool { return cRefits.Load() >= 1 })
	if cPromotes.Load() == 0 && e.Generation() != 0 {
		t.Fatal("chaos: candidate serving during shadow")
	}

	// Phase 2: promotion, once shadow scoring clears its sample gate.
	waitFor("promotion", func() bool { return cPromotes.Load() >= 1 })
	if got := e.Generation(); got != 1 {
		t.Fatalf("chaos: canary serving generation %d, want 1", got)
	}

	// Phase 3: the workload shifts 10× under the canary; its live error
	// blows the shadow promise and the controller rolls back.
	setInstr(instrBase * 10)
	waitFor("rollback", func() bool { return cRollbacks.Load() >= 1 })
	close(stop)
	wg.Wait()
	cancel()
	<-ctrlDone

	if got := e.Generation(); got != 0 {
		t.Fatalf("chaos: serving generation after rollback = %d, want 0", got)
	}

	// Zero errored requests: every row of every batch answered, every
	// level valid, even with inference panics injected throughout.
	if answered.Load() == 0 {
		t.Fatal("chaos: no traffic served")
	}
	if n := shortResp.Load(); n != 0 {
		t.Fatalf("chaos: %d batches came back short", n)
	}
	if n := badLevel.Load(); n != 0 {
		t.Fatalf("chaos: %d decisions carried an out-of-range level", n)
	}

	// The transition log tells the full story, in order, and carries the
	// recorder heads bounding the canary's serving window.
	evs := c.Events().Snapshot(nil)
	var story []string
	var promoteHead, rollbackHead uint64
	for _, ev := range evs {
		switch ev.Kind {
		case "drift_signal", string(StateShadow), string(StateCanary):
			story = append(story, ev.Kind)
			if ev.Kind == string(StateCanary) {
				promoteHead, _ = ev.Detail["head"].(uint64)
			}
		case string(StateCooldown):
			if ev.Detail["restored_generation"] != nil {
				story = append(story, "rollback")
				rollbackHead, _ = ev.Detail["head"].(uint64)
			} else {
				story = append(story, ev.Kind)
			}
		}
	}
	wantOrder := []string{"drift_signal", "shadow", "canary", "rollback"}
	pos := 0
	for _, s := range story {
		if pos < len(wantOrder) && s == wantOrder[pos] {
			pos++
		}
	}
	if pos != len(wantOrder) {
		t.Fatalf("chaos: transition history %v missing ordered subsequence %v", story, wantOrder)
	}
	if promoteHead == 0 || rollbackHead == 0 || rollbackHead <= promoteHead {
		t.Fatalf("chaos: transition heads promote=%d rollback=%d", promoteHead, rollbackHead)
	}

	// Generation audit: walk the flight recorder. Model-path decisions
	// may carry generation 0 (incumbent, before promotion or after
	// rollback) or generation 1 — but generation 1 only in the window
	// between the promotion and rollback heads. A bounded skew on both
	// edges covers batches in flight while the swap landed (the head is
	// read moments after the swap, under the controller's step); nothing
	// may carry a generation that never passed validation.
	const inflightSlack = workers * 8 * 4
	recs := e.FlightRecorder().Snapshot(nil)
	var gen1 int
	for i := range recs {
		r := &recs[i]
		if r.Reason != provenance.ReasonModel {
			continue
		}
		switch r.ModelGen {
		case 0:
		case 1:
			gen1++
			if r.Seq+inflightSlack < promoteHead {
				t.Fatalf("chaos: record %d served by generation 1 before promotion (head %d)",
					r.Seq, promoteHead)
			}
			if r.Seq > rollbackHead+inflightSlack {
				t.Fatalf("chaos: record %d served by generation 1 after rollback (head %d + slack %d)",
					r.Seq, rollbackHead, inflightSlack)
			}
		default:
			t.Fatalf("chaos: record %d served by unvalidated generation %d", r.Seq, r.ModelGen)
		}
	}
	if gen1 == 0 {
		t.Fatal("chaos: canary never actually served")
	}

	// The log round-trips as JSON (what the smoke script uploads).
	var buf strings.Builder
	if err := c.Events().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("transition log not valid JSON: %v", err)
	}
	if len(decoded) != len(evs) {
		t.Fatalf("transition log JSON has %d events, want %d", len(decoded), len(evs))
	}
	t.Logf("chaos: %d requests answered, %d served by the canary, story %v",
		answered.Load(), gen1, story)
}
