package adapt

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

// State is the adaptation state machine's current phase.
type State string

const (
	// StateMonitoring watches the drift monitor and accumulates the
	// training stream; nothing is being evaluated.
	StateMonitoring State = "monitoring"
	// StateShadow runs a re-fit candidate alongside the incumbent on live
	// traffic; the incumbent serves every decision.
	StateShadow State = "shadow"
	// StateCanary serves the promoted candidate while its live error is
	// compared against the promise it made in shadow.
	StateCanary State = "canary"
	// StateCooldown paces the loop after a completed (or aborted) cycle.
	StateCooldown State = "cooldown"
)

// stateCode maps states onto the adapt_state gauge (monitoring=0,
// shadow=1, canary=2, cooldown=3).
func stateCode(s State) float64 {
	switch s {
	case StateShadow:
		return 1
	case StateCanary:
		return 2
	case StateCooldown:
		return 3
	}
	return 0
}

// Options tunes the adaptation controller; zero values take defaults.
type Options struct {
	// MinRows is how many harvested training pairs a re-fit needs
	// (default 512).
	MinRows int
	// MaxRows bounds the retained training stream (default 4096).
	MaxRows int
	// ShadowMinSamples is how many realized shadow comparisons are needed
	// before the candidate is judged (default 256).
	ShadowMinSamples int
	// ShadowMaxSteps aborts a shadow evaluation that cannot gather its
	// samples within this many controller steps (default 50) — traffic
	// died down, the candidate is discarded rather than parked forever.
	ShadowMaxSteps int
	// Margin is the relative improvement the candidate's shadow MAPE must
	// show over the incumbent's to be promoted (default 0.05 = 5%).
	Margin float64
	// MinAgreeRate is the fraction of shadow decisions whose level must
	// match the served level (default 0 = not gated): a calibrator re-fit
	// shares the incumbent's decision head, so disagreement indicates the
	// candidate diverged structurally.
	MinAgreeRate float64
	// CanaryMinSamples is how many live realized-error samples the canary
	// needs before the promotion commits (default 256).
	CanaryMinSamples int
	// CanaryMaxSteps bounds the canary phase the same way ShadowMaxSteps
	// bounds shadow (default 50); an expired canary commits (no evidence
	// of regression).
	CanaryMaxSteps int
	// RegressFactor: the canary rolls back when its live MAPE exceeds
	// promise*RegressFactor (default 1.5), where promise is the
	// candidate's shadow MAPE at promotion.
	RegressFactor float64
	// AbsRegress floors the rollback threshold (default 0.10) so a
	// near-zero promise does not make the canary hair-triggered.
	AbsRegress float64
	// CooldownSteps paces the loop after any cycle outcome (default 4).
	CooldownSteps int
	// Refit tunes the Calibrator re-fit; Generation is managed by the
	// controller and ignored here.
	Refit core.RefitOptions
	// Events bounds the transition log (default
	// telemetry.DefaultEventCapacity).
	Events int
	// Logf receives progress messages; nil silences them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MinRows <= 0 {
		o.MinRows = 512
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 4096
	}
	if o.ShadowMinSamples <= 0 {
		o.ShadowMinSamples = 256
	}
	if o.ShadowMaxSteps <= 0 {
		o.ShadowMaxSteps = 50
	}
	if o.Margin <= 0 {
		o.Margin = 0.05
	}
	if o.CanaryMinSamples <= 0 {
		o.CanaryMinSamples = 256
	}
	if o.CanaryMaxSteps <= 0 {
		o.CanaryMaxSteps = 50
	}
	if o.RegressFactor <= 0 {
		o.RegressFactor = 1.5
	}
	if o.AbsRegress <= 0 {
		o.AbsRegress = 0.10
	}
	if o.CooldownSteps <= 0 {
		o.CooldownSteps = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Controller drives the drift → re-fit → shadow → canary → promote /
// rollback loop over a serving engine. It is poll-driven: each Step
// scans the flight recorder for new traffic and advances the state
// machine at most one transition; Run wraps Step in a ticker. All
// methods are safe for concurrent use with serving.
type Controller struct {
	e    *serve.Engine
	opts Options

	events *telemetry.EventLog

	// edge-triggered drift hint from the monitor's OnThreshold callback;
	// the level-triggered DriftState poll is the backbone, this just
	// timestamps crossings into the transition log.
	edge atomic.Bool

	mu         sync.Mutex
	state      State
	stream     *streamBuilder
	scorer     *shadowScorer
	candidate  *core.Model
	incumbent  *core.Model // snapshot serving when the candidate promoted
	promise    float64     // candidate's shadow MAPE at promotion
	phaseSteps int
	cooldown   int
	maxGen     int
	canaryN    int
	canarySum  float64
	lastReject string

	gState, gServingGen, gCandGen, gStreamRows *telemetry.Gauge
	gShadowInc, gShadowCand, gCanaryMAPE       *telemetry.Gauge
	cRefits, cPromotes, cRollbacks, cRejects   *telemetry.Counter
	cDropped                                   *telemetry.Counter
	transitions                                map[State]*telemetry.Counter
}

// NewController attaches an adaptation controller to an engine. The
// engine must have provenance enabled (the flight recorder is the
// training stream) and should have prediction feedback enabled (live
// MAPE is both the drift trigger and the canary judge). The controller
// installs nothing on the engine until a candidate exists.
func NewController(e *serve.Engine, opts Options) (*Controller, error) {
	if e == nil {
		return nil, fmt.Errorf("adapt: nil engine")
	}
	if e.FlightRecorder() == nil {
		return nil, fmt.Errorf("adapt: engine has no flight recorder (enable provenance)")
	}
	opts = opts.withDefaults()
	reg := e.Telemetry()
	c := &Controller{
		e:           e,
		opts:        opts,
		events:      telemetry.NewEventLog(opts.Events, reg),
		state:       StateMonitoring,
		stream:      newStreamBuilder(opts.MaxRows),
		maxGen:      e.Generation(),
		gState:      reg.Gauge("adapt_state"),
		gServingGen: reg.Gauge("adapt_serving_generation"),
		gCandGen:    reg.Gauge("adapt_candidate_generation"),
		gStreamRows: reg.Gauge("adapt_stream_rows"),
		gShadowInc:  reg.Gauge("adapt_shadow_mape", "model", "incumbent"),
		gShadowCand: reg.Gauge("adapt_shadow_mape", "model", "candidate"),
		gCanaryMAPE: reg.Gauge("adapt_canary_live_mape"),
		cRefits:     reg.Counter("adapt_refits_total"),
		cPromotes:   reg.Counter("adapt_promotions_total"),
		cRollbacks:  reg.Counter("adapt_rollbacks_total"),
		cRejects:    reg.Counter("adapt_rejects_total"),
		cDropped:    reg.Counter("adapt_shadow_dropped_total"),
		transitions: make(map[State]*telemetry.Counter, 4),
	}
	for _, s := range []State{StateMonitoring, StateShadow, StateCanary, StateCooldown} {
		c.transitions[s] = reg.Counter("adapt_transitions_total", "to", string(s))
	}
	c.gState.Set(stateCode(StateMonitoring))
	c.gServingGen.Set(float64(e.Generation()))
	return c, nil
}

// NoteThreshold is the provenance.MonitorOptions.OnThreshold hook: wire
// it in so drift crossings are timestamped into the transition log the
// moment they happen instead of at the next poll.
func (c *Controller) NoteThreshold(ev provenance.ThresholdEvent) {
	if !ev.High {
		return
	}
	c.edge.Store(true)
	c.events.Append(telemetry.Event{Kind: "drift_signal", Reason: ev.Kind, Detail: map[string]any{
		"feature": ev.Feature, "value": ev.Value, "threshold": ev.Threshold,
	}})
}

// Events exposes the transition log (for /debug/adapt and artifacts).
func (c *Controller) Events() *telemetry.EventLog { return c.events }

// State returns the current phase.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// transitionLocked moves the state machine and records the move; the
// caller holds c.mu.
func (c *Controller) transitionLocked(to State, reason string, detail map[string]any) {
	from := c.state
	c.state = to
	c.phaseSteps = 0
	c.gState.Set(stateCode(to))
	c.transitions[to].Add(1)
	if detail == nil {
		detail = map[string]any{}
	}
	detail["from"] = string(from)
	detail["head"] = c.e.FlightRecorder().Head()
	c.events.Append(telemetry.Event{Kind: string(to), Reason: reason, Detail: detail})
	c.opts.Logf("adapt: %s -> %s: %s", from, to, reason)
}

// Step advances the loop by at most one transition. It is what Run calls
// on every tick, exposed so tests (and callers with their own
// schedulers) can drive the controller deterministically.
func (c *Controller) Step() {
	c.mu.Lock()
	defer c.mu.Unlock()

	// One recorder walk per step feeds both the training stream and, in
	// canary, the live-error account for the candidate generation.
	candGen := 0
	if c.state == StateCanary && c.candidate != nil {
		candGen = c.candidate.Lineage.Generation
	}
	c.stream.Scan(c.e.FlightRecorder(), func(r *provenance.Record) {
		if candGen != 0 && r.ModelGen == uint32(candGen) && r.HasPredErr {
			c.canaryN++
			c.canarySum += abs(r.PredErr)
		}
	})
	c.gStreamRows.Set(float64(c.stream.Len()))
	c.gServingGen.Set(float64(c.e.Generation()))
	c.phaseSteps++

	switch c.state {
	case StateMonitoring:
		c.stepMonitoring()
	case StateShadow:
		c.stepShadow()
	case StateCanary:
		c.stepCanary()
	case StateCooldown:
		c.cooldown--
		if c.cooldown <= 0 {
			c.transitionLocked(StateMonitoring, "cooldown complete", nil)
		}
	}
}

func (c *Controller) stepMonitoring() {
	st := c.e.QualityMonitor().DriftState()
	edge := c.edge.Swap(false)
	if !st.Any() && !edge {
		return
	}
	if c.stream.Len() < c.opts.MinRows {
		return // drifting, but not enough traffic harvested to learn from
	}

	parent := c.e.Model()
	rows, targets := c.stream.Build(parent.FeatureIdx)
	gen := c.maxGen + 1
	refit := c.opts.Refit
	refit.Generation = gen
	cand, rep, err := core.RefitCalibrator(parent, rows, targets, refit)
	c.cRefits.Add(1)
	if err != nil {
		// A diverged re-fit is not an incident: log it, drop the stream
		// (it produced a bad fit), and keep monitoring.
		c.stream.Reset()
		c.events.Append(telemetry.Event{Kind: "refit_failed", Reason: err.Error()})
		c.opts.Logf("adapt: refit failed: %v", err)
		return
	}
	c.maxGen = gen
	c.candidate = cand
	c.gCandGen.Set(float64(gen))
	c.scorer = newShadowScorer(cand)
	c.e.SetShadow(c.scorer)
	c.transitionLocked(StateShadow, "drift detected, candidate refit", map[string]any{
		"generation": gen, "rows": rep.Rows,
		"train_mape_before": rep.MAPEBefore, "train_mape_after": rep.MAPEAfter,
		"drift_mape": st.MAPE, "drift_mape_high": st.MAPEHigh,
		"drifting_features": st.Drifting, "worst_feature": st.WorstFeature, "worst_z": st.WorstZ,
	})
}

func (c *Controller) stepShadow() {
	res := c.scorer.Result()
	c.gShadowInc.Set(res.Incumbent)
	c.gShadowCand.Set(res.Candidate)
	if res.Dropped > 0 {
		c.cDropped.Add(int64(res.Dropped) - c.cDropped.Load())
	}
	if res.Samples < c.opts.ShadowMinSamples {
		if c.phaseSteps > c.opts.ShadowMaxSteps {
			c.rejectLocked("shadow evaluation starved", res)
		}
		return
	}

	// The minimum-sample gate is met: judge. The candidate must beat the
	// incumbent's live MAPE by the configured margin, and (when gated)
	// its decision head must still agree with what served.
	if res.Candidate >= res.Incumbent*(1-c.opts.Margin) {
		c.rejectLocked(fmt.Sprintf("candidate MAPE %.4f did not beat incumbent %.4f by %.0f%%",
			res.Candidate, res.Incumbent, c.opts.Margin*100), res)
		return
	}
	if c.opts.MinAgreeRate > 0 && res.AgreeRate < c.opts.MinAgreeRate {
		c.rejectLocked(fmt.Sprintf("decision agreement %.3f under %.3f", res.AgreeRate, c.opts.MinAgreeRate), res)
		return
	}

	incumbent := c.e.Model()
	if err := c.e.Swap(c.candidate); err != nil {
		// The validated hot-swap gate said no (backend parity, shape, a
		// concurrently injected swap fault): the candidate does not serve.
		c.rejectLocked(fmt.Sprintf("swap rejected: %v", err), res)
		return
	}
	c.incumbent = incumbent
	c.promise = res.Candidate
	c.canaryN, c.canarySum = 0, 0
	c.detachScorerLocked()
	c.stream.Reset() // the stream taught this candidate; the canary judges on fresh traffic
	c.cPromotes.Add(1)
	c.transitionLocked(StateCanary, "candidate promoted", map[string]any{
		"generation": c.candidate.Lineage.Generation,
		"promise":    c.promise, "incumbent_mape": res.Incumbent,
		"samples": res.Samples, "agree_rate": res.AgreeRate,
	})
}

func (c *Controller) stepCanary() {
	live := 0.0
	if c.canaryN > 0 {
		live = c.canarySum / float64(c.canaryN)
	}
	c.gCanaryMAPE.Set(live)
	threshold := c.promise * c.opts.RegressFactor
	if threshold < c.opts.AbsRegress {
		threshold = c.opts.AbsRegress
	}

	// Regression check first — a regressing canary must not be committed
	// just because its sample count also crossed the minimum this step.
	// The check arms at a quarter of the commit gate but never needs more
	// than 64 samples: evidence of a gross regression does not scale with
	// how long a clean canary must bake before committing.
	armAt := c.opts.CanaryMinSamples / 4
	if armAt > 64 {
		armAt = 64
	}
	if c.canaryN >= armAt && live > threshold {
		gen := c.candidate.Lineage.Generation
		back, err := c.e.Rollback()
		if err != nil {
			// Unreachable in practice (a promotion always retains the
			// incumbent), but never leave a regressing model serving
			// silently: keep the canary and re-check next step.
			c.events.Append(telemetry.Event{Kind: "rollback_failed", Reason: err.Error()})
			return
		}
		c.cRollbacks.Add(1)
		c.clearCandidateLocked()
		c.cooldown = c.opts.CooldownSteps
		c.transitionLocked(StateCooldown, "canary regressed, rolled back", map[string]any{
			"generation": gen, "restored_generation": back.Lineage.Generation,
			"live_mape": live, "promise": c.promise, "threshold": threshold,
			"samples": c.canaryN,
		})
		return
	}
	if c.canaryN >= c.opts.CanaryMinSamples || c.phaseSteps > c.opts.CanaryMaxSteps {
		reason := "canary committed"
		if c.canaryN < c.opts.CanaryMinSamples {
			reason = "canary expired without evidence of regression"
		}
		gen := c.candidate.Lineage.Generation
		c.clearCandidateLocked()
		c.incumbent = nil
		c.cooldown = c.opts.CooldownSteps
		c.transitionLocked(StateCooldown, reason, map[string]any{
			"generation": gen, "live_mape": live, "promise": c.promise, "samples": c.canaryN,
		})
	}
}

// rejectLocked abandons the current candidate without it ever serving.
func (c *Controller) rejectLocked(reason string, res ShadowResult) {
	c.cRejects.Add(1)
	c.lastReject = reason
	gen := 0
	if c.candidate != nil {
		gen = c.candidate.Lineage.Generation
	}
	c.detachScorerLocked()
	c.clearCandidateLocked()
	c.stream.Reset()
	c.cooldown = c.opts.CooldownSteps
	c.transitionLocked(StateCooldown, "candidate rejected: "+reason, map[string]any{
		"generation": gen, "incumbent_mape": res.Incumbent, "candidate_mape": res.Candidate,
		"samples": res.Samples,
	})
}

func (c *Controller) detachScorerLocked() {
	if c.scorer != nil {
		c.e.SetShadow(nil)
		c.scorer.Stop()
		c.scorer = nil
	}
}

func (c *Controller) clearCandidateLocked() {
	c.candidate = nil
	c.gCandGen.Set(0)
}

// Run drives Step on the given interval until ctx is cancelled.
func (c *Controller) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.detachScorerLocked()
			c.mu.Unlock()
			return
		case <-t.C:
			c.Step()
		}
	}
}

// Status is the /debug/adapt JSON payload.
type Status struct {
	State             State                 `json:"state"`
	ServingGeneration int                   `json:"serving_generation"`
	ServingLineage    string                `json:"serving_lineage"`
	CandidateGen      int                   `json:"candidate_generation,omitempty"`
	StreamRows        int                   `json:"stream_rows"`
	Drift             provenance.DriftState `json:"drift"`
	Shadow            *ShadowResult         `json:"shadow,omitempty"`
	CanarySamples     int                   `json:"canary_samples,omitempty"`
	CanaryLiveMAPE    float64               `json:"canary_live_mape,omitempty"`
	CanaryPromise     float64               `json:"canary_promise,omitempty"`
	LastReject        string                `json:"last_reject,omitempty"`
	Transitions       []telemetry.Event     `json:"transitions"`
}

// Status snapshots the controller for debugging.
func (c *Controller) Status() Status {
	c.mu.Lock()
	st := Status{
		State:             c.state,
		ServingGeneration: c.e.Generation(),
		ServingLineage:    c.e.Model().Lineage.String(),
		StreamRows:        c.stream.Len(),
		LastReject:        c.lastReject,
	}
	if c.candidate != nil {
		st.CandidateGen = c.candidate.Lineage.Generation
	}
	if c.scorer != nil {
		res := c.scorer.Result()
		st.Shadow = &res
	}
	if c.state == StateCanary {
		st.CanarySamples = c.canaryN
		if c.canaryN > 0 {
			st.CanaryLiveMAPE = c.canarySum / float64(c.canaryN)
		}
		st.CanaryPromise = c.promise
	}
	c.mu.Unlock()
	st.Drift = c.e.QualityMonitor().DriftState()
	st.Transitions = c.events.Snapshot(nil)
	if st.Transitions == nil {
		st.Transitions = []telemetry.Event{}
	}
	return st
}

// Handler serves the controller state as JSON — mounted at /debug/adapt.
func (c *Controller) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Status())
	})
}
