// Package adapt closes the paper's self-calibration loop online: it
// turns the decision flight recorder into a training stream, re-fits the
// Calibrator when the quality monitor reports drift, scores the
// candidate in shadow mode on live traffic, promotes it through a canary
// window, and automatically rolls back to the retained incumbent when
// the promoted model regresses. The controller never blocks the decision
// path: it polls the recorder, shadow scoring rides a bounded queue, and
// every model change goes through the engine's validated hot-swap gate.
package adapt

import (
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/provenance"
)

// streamRow is one (input, target) training pair harvested from live
// traffic: the full counter vector, preset and served level of epoch N,
// labelled with the realized instruction count epoch N+1 reported for
// the same (GPU, cluster) key.
type streamRow struct {
	raw    [counters.Num]float64
	preset float64
	level  float64
	target float64
}

// pendingPred is a model-path decision waiting for its next-epoch
// realization.
type pendingPred struct {
	raw    [counters.Num]float64
	preset float64
	level  float64
}

// streamBuilder incrementally converts flight-recorder records into
// training pairs. It tracks the recorder sequence it has consumed so
// each Scan call only folds new records, and pairs consecutive
// model-path records per (GPU-agnostic) cluster key exactly the way the
// engine's prediction feedback does: the instruction counter of a key's
// next record is the realized target for its previous record's inputs.
// Rows accumulate into a bounded ring (newest win), so a long monitoring
// phase cannot grow memory without bound.
type streamBuilder struct {
	lastSeq uint64
	pending map[int32]*pendingPred
	rows    []streamRow
	pos     int
	n       int
	scratch []provenance.Record
}

func newStreamBuilder(capRows int) *streamBuilder {
	if capRows <= 0 {
		capRows = 4096
	}
	return &streamBuilder{
		pending: make(map[int32]*pendingPred, 64),
		rows:    make([]streamRow, capRows),
	}
}

// Scan folds every record the recorder gained since the previous call.
// visit, when non-nil, is called for each new record (the controller's
// canary accounting rides along so the ring is walked once per step).
// Returns how many new records were seen.
func (b *streamBuilder) Scan(rec *provenance.Recorder, visit func(*provenance.Record)) int {
	if rec == nil {
		return 0
	}
	b.scratch = rec.Snapshot(b.scratch[:0])
	seen := 0
	for i := range b.scratch {
		r := &b.scratch[i]
		if r.Seq <= b.lastSeq {
			continue
		}
		b.lastSeq = r.Seq
		seen++
		if visit != nil {
			visit(r)
		}
		b.fold(r)
	}
	return seen
}

// fold pairs one record with the key's pending prediction, if any, and
// leaves the record pending when it is a model decision with full
// features.
func (b *streamBuilder) fold(r *provenance.Record) {
	if r.Cluster < 0 {
		return // unkeyed rows carry no epoch continuity
	}
	key := r.Cluster
	if p, ok := b.pending[key]; ok {
		if int(r.NumRaw) > counters.IdxInstr {
			if target := r.Raw[counters.IdxInstr]; target > 0 {
				row := &b.rows[b.pos]
				row.raw = p.raw
				row.preset = p.preset
				row.level = p.level
				row.target = target
				b.pos = (b.pos + 1) % len(b.rows)
				if b.n < len(b.rows) {
					b.n++
				}
			}
		}
		if r.Reason != provenance.ReasonModel {
			delete(b.pending, key)
			return
		}
	}
	if r.Reason == provenance.ReasonModel && int(r.NumRaw) >= counters.Num {
		p := b.pending[key]
		if p == nil {
			p = &pendingPred{}
			b.pending[key] = p
		}
		copy(p.raw[:], r.Raw[:counters.Num])
		p.preset = r.Preset
		p.level = float64(r.Level)
	}
}

// Len returns how many training pairs are currently retained.
func (b *streamBuilder) Len() int { return b.n }

// Reset drops the retained pairs and pending predictions (the consumed
// sequence watermark is kept, so already-used traffic is not re-learned
// by the next cycle).
func (b *streamBuilder) Reset() {
	b.n, b.pos = 0, 0
	for k := range b.pending {
		delete(b.pending, k)
	}
}

// Build materializes the Calibrator training set for a model selecting
// featureIdx: X rows are [selected features..., preset, level], y the
// realized next-epoch instruction counts.
func (b *streamBuilder) Build(featureIdx []int) (rows [][]float64, targets []float64) {
	start := b.pos - b.n
	if start < 0 {
		start += len(b.rows)
	}
	rows = make([][]float64, 0, b.n)
	targets = make([]float64, 0, b.n)
	for i := 0; i < b.n; i++ {
		sr := &b.rows[(start+i)%len(b.rows)]
		x := make([]float64, 0, len(featureIdx)+2)
		for _, idx := range featureIdx {
			x = append(x, sr.raw[idx])
		}
		x = append(x, sr.preset, sr.level)
		rows = append(rows, x)
		targets = append(targets, sr.target)
	}
	return rows, targets
}
