package adapt

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/nn"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
)

// trafficMean/Std describe the synthetic live feature distribution the
// adapt tests serve; the model's scalers carry the same statistics so
// the only drift signal is the calibration error.
const (
	trafficMean = 3000.0
	trafficStd  = 1000.0
	instrBase   = 3000.0
)

// adaptModel hand-crafts the test incumbent: a random (but shared-able)
// Decision head, and a Calibrator whose hidden layers are all zero with
// an output bias of 1.0 — it predicts exactly TargetScale (1000)
// instructions for any input. Live traffic realizes ~3000, so the
// incumbent's live MAPE sits at ~2.0 (miles over the 0.25 threshold) and
// a warm-started re-fit deterministically learns the output bias toward
// 3.0, because zero hidden weights leave the bias as the only parameter
// with gradient flow.
func adaptModel(tb testing.TB, seed int64) *core.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	for _, l := range cal.Layers {
		for i := range l.W {
			l.W[i] = 0
		}
		for i := range l.B {
			l.B[i] = 0
		}
	}
	cal.Layers[len(cal.Layers)-1].B[0] = 1.0

	scaler := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := 0; i < 5; i++ {
			s.Mean[i] = trafficMean
			s.Std[i] = trafficStd
		}
		for i := 5; i < n; i++ {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: scaler(6),
		CalibScaler:    scaler(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

// trafficRow builds one keyed epoch row: selected features on the
// training distribution, realized instructions around instr.
func trafficRow(rng *rand.Rand, cluster int32, instr float64) serve.Request {
	feats := make([]float64, counters.Num)
	for _, idx := range counters.SelectedFive() {
		feats[idx] = trafficMean + trafficStd*0.01*(rng.Float64()-0.5)
	}
	feats[counters.IdxInstr] = instr * (1 + 0.01*(rng.Float64()-0.5))
	return serve.Request{Preset: 0.1, Features: feats, GPU: 0, Cluster: cluster}
}

// adaptEngine builds the serving engine + controller pair the tests
// drive deterministically via Step().
func adaptEngine(tb testing.TB, opts Options) (*serve.Engine, *Controller) {
	tb.Helper()
	e, err := serve.NewEngine(adaptModel(tb, 70), serve.Options{Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	e.EnableProvenance(8192, provenance.MonitorOptions{Window: 64})
	e.EnablePredFeedback()
	c, err := NewController(e, opts)
	if err != nil {
		tb.Fatal(err)
	}
	// The monitor's edge events feed the transition log.
	return e, c
}

func testOpts() Options {
	return Options{
		MinRows:          64,
		ShadowMinSamples: 32,
		CanaryMinSamples: 32,
		CooldownSteps:    2,
		Margin:           0.05,
		Refit:            core.RefitOptions{Epochs: 150, BatchSize: 32, LearningRate: 0.02, Seed: 1},
	}
}

// serveBatches pushes n keyed batches through the engine.
func serveBatches(e *serve.Engine, rng *rand.Rand, n int, instr float64) {
	rows := make([]serve.Request, 8)
	var decs []serve.Decision
	for b := 0; b < n; b++ {
		for i := range rows {
			rows[i] = trafficRow(rng, int32(i), instr)
		}
		decs = e.DecideBatch(rows, decs[:0])
	}
}

// waitState steps the controller (serving traffic between steps) until
// it reaches want or the deadline passes.
func waitState(t *testing.T, e *serve.Engine, c *Controller, rng *rand.Rand, instr float64, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("controller stuck in %s (want %s): %+v", c.State(), want, c.Status())
		}
		serveBatches(e, rng, 4, instr)
		time.Sleep(time.Millisecond) // let the shadow worker drain
		c.Step()
	}
}

func TestStreamBuilderPairsEpochs(t *testing.T) {
	rec := provenance.NewRecorder(64)
	b := newStreamBuilder(32)
	mk := func(cluster int32, reason provenance.Reason, instr float64) {
		r := provenance.Record{Cluster: cluster, Reason: reason, Preset: 0.1, Level: 2}
		raw := make([]float64, counters.Num)
		for i := range raw {
			raw[i] = float64(i)
		}
		raw[counters.IdxInstr] = instr
		r.SetRaw(raw)
		rec.Record(&r)
	}
	mk(0, provenance.ReasonModel, 100)
	mk(1, provenance.ReasonModel, 200)
	mk(0, provenance.ReasonModel, 150) // pairs with cluster 0's first epoch
	mk(1, provenance.ReasonFallback, 250) // pairs, then breaks cluster 1's chain
	mk(1, provenance.ReasonModel, 300) // fresh start: no pending to pair with
	if n := b.Scan(rec, nil); n != 5 {
		t.Fatalf("scanned %d records, want 5", n)
	}
	if b.Len() != 2 {
		t.Fatalf("stream holds %d pairs, want 2", b.Len())
	}
	rows, targets := b.Build([]int{0, 1})
	if len(rows) != 2 || len(rows[0]) != 4 {
		t.Fatalf("built %d rows of width %d, want 2 of 4", len(rows), len(rows[0]))
	}
	if targets[0] != 150 || targets[1] != 250 {
		t.Fatalf("targets = %v, want [150 250]", targets)
	}
	// Re-scanning sees nothing new; a later record resumes cluster 1.
	if n := b.Scan(rec, nil); n != 0 {
		t.Fatalf("re-scan saw %d records, want 0", n)
	}
	mk(1, provenance.ReasonModel, 400)
	b.Scan(rec, nil)
	if b.Len() != 3 {
		t.Fatalf("stream holds %d pairs after resume, want 3", b.Len())
	}
}

// TestControllerFullCycleCommit drives the loop end to end on clean
// post-drift traffic: drift → refit → shadow → promote → canary →
// commit, with the serving generation advanced and every transition in
// the log.
func TestControllerFullCycleCommit(t *testing.T) {
	e, c := adaptEngine(t, testOpts())
	rng := rand.New(rand.NewSource(80))

	if c.State() != StateMonitoring {
		t.Fatalf("initial state %s", c.State())
	}
	// Clean traffic until the MAPE window fills and the stream has rows.
	waitState(t, e, c, rng, instrBase, StateShadow)
	st := c.Status()
	if st.CandidateGen != 1 {
		t.Fatalf("candidate generation = %d, want 1", st.CandidateGen)
	}
	if e.Generation() != 0 {
		t.Fatal("candidate is serving during shadow")
	}

	waitState(t, e, c, rng, instrBase, StateCanary)
	if e.Generation() != 1 {
		t.Fatalf("serving generation after promotion = %d, want 1", e.Generation())
	}
	if e.Model().Lineage.Source != core.SourceRefit {
		t.Fatalf("promoted lineage = %+v", e.Model().Lineage)
	}

	waitState(t, e, c, rng, instrBase, StateCooldown)
	if e.Generation() != 1 {
		t.Fatalf("serving generation after commit = %d, want 1 (no rollback)", e.Generation())
	}
	// Cooldown drains back to monitoring without traffic.
	c.Step()
	c.Step()
	if c.State() != StateMonitoring {
		t.Fatalf("state after cooldown = %s", c.State())
	}

	// The transition log tells the whole story in order.
	var kinds []string
	for _, ev := range c.Events().Snapshot(nil) {
		if ev.Kind == string(StateShadow) || ev.Kind == string(StateCanary) ||
			ev.Kind == string(StateCooldown) || ev.Kind == string(StateMonitoring) {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []string{"shadow", "canary", "cooldown", "monitoring"}
	if len(kinds) != len(want) {
		t.Fatalf("transitions = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, kinds[i], want[i])
		}
	}

	// Telemetry saw the same history.
	snap := e.Telemetry().Snapshot()
	if snap.Counters["adapt_refits_total"] != 1 || snap.Counters["adapt_promotions_total"] != 1 {
		t.Fatalf("refits/promotions = %d/%d, want 1/1",
			snap.Counters["adapt_refits_total"], snap.Counters["adapt_promotions_total"])
	}
	if snap.Counters["adapt_rollbacks_total"] != 0 {
		t.Fatal("clean commit recorded a rollback")
	}
}

// TestControllerRollbackOnRegression forces a post-promotion workload
// shift: the canary's live MAPE blows its shadow promise and the
// controller rolls back to the retained incumbent without touching disk.
func TestControllerRollbackOnRegression(t *testing.T) {
	e, c := adaptEngine(t, testOpts())
	rng := rand.New(rand.NewSource(81))

	waitState(t, e, c, rng, instrBase, StateShadow)
	waitState(t, e, c, rng, instrBase, StateCanary)
	if e.Generation() != 1 {
		t.Fatalf("canary generation = %d, want 1", e.Generation())
	}

	// The workload shifts 10×: every live prediction is now off by ~9×
	// its value, far over max(promise*1.5, 0.10).
	waitState(t, e, c, rng, instrBase*10, StateCooldown)
	if e.Generation() != 0 {
		t.Fatalf("serving generation after regression = %d, want 0 (rolled back)", e.Generation())
	}
	snap := e.Telemetry().Snapshot()
	if snap.Counters["adapt_rollbacks_total"] != 1 {
		t.Fatalf("rollbacks = %d, want 1", snap.Counters["adapt_rollbacks_total"])
	}
	var sawRollback bool
	for _, ev := range c.Events().Snapshot(nil) {
		if ev.Kind == string(StateCooldown) && ev.Detail["restored_generation"] != nil {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatal("rollback transition missing from the event log")
	}
}

// TestControllerRejectsByMargin pins the promotion gate: with an
// unreachable margin the candidate is discarded after scoring and never
// serves.
func TestControllerRejectsByMargin(t *testing.T) {
	opts := testOpts()
	opts.Margin = 0.999999 // incumbent MAPE * (1-margin) ≈ 0: unbeatable
	e, c := adaptEngine(t, opts)
	rng := rand.New(rand.NewSource(82))

	waitState(t, e, c, rng, instrBase, StateShadow)
	waitState(t, e, c, rng, instrBase, StateCooldown)
	if e.Generation() != 0 {
		t.Fatalf("rejected candidate is serving (generation %d)", e.Generation())
	}
	snap := e.Telemetry().Snapshot()
	if snap.Counters["adapt_rejects_total"] != 1 || snap.Counters["adapt_promotions_total"] != 0 {
		t.Fatalf("rejects/promotions = %d/%d, want 1/0",
			snap.Counters["adapt_rejects_total"], snap.Counters["adapt_promotions_total"])
	}
	if c.Status().LastReject == "" {
		t.Fatal("reject reason not recorded")
	}
	// A later cycle must not reuse the rejected candidate's generation.
	waitState(t, e, c, rng, instrBase, StateMonitoring)
	waitState(t, e, c, rng, instrBase, StateShadow)
	if got := c.Status().CandidateGen; got != 2 {
		t.Fatalf("second candidate generation = %d, want 2", got)
	}
}

// TestControllerHandler pins the /debug/adapt payload shape.
func TestControllerHandler(t *testing.T) {
	e, c := adaptEngine(t, testOpts())
	rng := rand.New(rand.NewSource(83))
	serveBatches(e, rng, 4, instrBase)
	c.Step()

	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/adapt", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("payload not JSON: %v\n%s", err, rr.Body.String())
	}
	if st.State != StateMonitoring || st.Transitions == nil {
		t.Fatalf("status = %+v", st)
	}
}

// TestControllerRequiresProvenance pins the constructor contract.
func TestControllerRequiresProvenance(t *testing.T) {
	e, err := serve.NewEngine(adaptModel(t, 71), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(e, Options{}); err == nil {
		t.Fatal("controller accepted an engine without provenance")
	}
	if _, err := NewController(nil, Options{}); err == nil {
		t.Fatal("controller accepted a nil engine")
	}
}

// TestNoteThreshold pins the edge hook: a high crossing lands in the
// transition log, a recovery does not.
func TestNoteThreshold(t *testing.T) {
	_, c := adaptEngine(t, testOpts())
	c.NoteThreshold(provenance.ThresholdEvent{Kind: "mape", Value: 0.5, Threshold: 0.25, High: true})
	c.NoteThreshold(provenance.ThresholdEvent{Kind: "mape", Value: 0.1, Threshold: 0.25, High: false})
	evs := c.Events().Snapshot(nil)
	if len(evs) != 1 || evs[0].Kind != "drift_signal" {
		t.Fatalf("events = %+v", evs)
	}
	if !c.edge.Load() {
		t.Fatal("edge flag not set by a high crossing")
	}
}
