package adapt

import (
	"sync"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/serve"
)

// shadowItem is one served model-path decision handed from the decision
// path to the scoring worker. Features ride by value so the hot path
// never shares its scratch slice with the worker.
type shadowItem struct {
	raw    [counters.Num]float64
	preset float64
	level  int
	pred   float64 // the incumbent's instruction prediction (what served)
	key    int64
}

// shadowPair is a key's last scored decision, waiting for its next-epoch
// realization.
type shadowPair struct {
	predInc  float64
	predCand float64
	level    int
}

// ShadowResult is a point-in-time view of shadow scoring: rolling MAPE
// of the incumbent's and the candidate's instruction predictions against
// realized traffic, how many realized samples back them, how often the
// candidate's decision head agreed with the served level, and how many
// observations the bounded queue dropped.
type ShadowResult struct {
	Samples   int     `json:"samples"`
	Incumbent float64 `json:"incumbent_mape"`
	Candidate float64 `json:"candidate_mape"`
	AgreeRate float64 `json:"agree_rate"`
	Dropped   uint64  `json:"dropped,omitempty"`
}

// shadowScorer scores a candidate model on live traffic without ever
// letting it serve: it implements serve.ShadowObserver, queues each
// model-path decision onto a bounded channel (dropping, never blocking,
// when scoring falls behind), and a worker goroutine runs the candidate
// on the same inputs. When a key's next epoch arrives, the realized
// instruction count grades both models' predictions — the incumbent's
// prediction is the one that actually served, the candidate's was
// computed for the same features and the same served level, so the two
// MAPEs are directly comparable on identical traffic.
type shadowScorer struct {
	cand *core.Model
	inf  *core.Inference

	ch   chan shadowItem
	quit chan struct{}
	done chan struct{}

	mu        sync.Mutex
	pairs     map[int64]shadowPair
	samples   int
	sumAbsInc float64
	sumAbsCan float64
	agree     int
	decided   int
	dropped   uint64
}

const shadowQueue = 1024

func newShadowScorer(cand *core.Model) *shadowScorer {
	s := &shadowScorer{
		cand:  cand,
		inf:   core.NewInference(cand),
		ch:    make(chan shadowItem, shadowQueue),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		pairs: make(map[int64]shadowPair, 64),
	}
	go s.run()
	return s
}

// ObserveServed implements serve.ShadowObserver on the decision path:
// copy, enqueue, never block.
func (s *shadowScorer) ObserveServed(row serve.Request, d serve.Decision) {
	if row.Cluster < 0 || len(row.Features) < counters.Num {
		return
	}
	it := shadowItem{
		preset: row.Preset,
		level:  d.Level,
		pred:   d.PredInstr,
		key:    int64(uint32(row.GPU))<<32 | int64(uint32(row.Cluster)),
	}
	copy(it.raw[:], row.Features[:counters.Num])
	select {
	case s.ch <- it:
	default:
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
	}
}

// Stop terminates the worker. The caller must have detached the scorer
// from the engine first (serve.Engine.SetShadow(nil)); late in-flight
// ObserveServed calls after Stop are still safe — the channel is never
// closed, their items are simply no longer drained.
func (s *shadowScorer) Stop() {
	close(s.quit)
	<-s.done
}

func (s *shadowScorer) run() {
	defer close(s.done)
	for {
		select {
		case it := <-s.ch:
			s.score(&it)
		case <-s.quit:
			return
		}
	}
}

// score grades the key's previous decision against this epoch's realized
// instruction count, then runs the candidate on this epoch's inputs and
// parks the new pair.
func (s *shadowScorer) score(it *shadowItem) {
	// Candidate inference happens on the worker, off the decision path.
	candLevel := s.inf.DecideLevel(it.raw[:], it.preset)
	candPred := s.inf.PredictInstructions(it.raw[:], it.preset, it.level)
	actual := it.raw[counters.IdxInstr]

	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pairs[it.key]; ok && actual > 0 && p.predInc > 0 && p.predCand > 0 {
		s.samples++
		s.sumAbsInc += abs((p.predInc - actual) / p.predInc)
		s.sumAbsCan += abs((p.predCand - actual) / p.predCand)
	}
	s.decided++
	if candLevel == it.level {
		s.agree++
	}
	s.pairs[it.key] = shadowPair{predInc: it.pred, predCand: candPred, level: candLevel}
}

// Result returns the current scoring state.
func (s *shadowScorer) Result() ShadowResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := ShadowResult{Samples: s.samples, Dropped: s.dropped}
	if s.samples > 0 {
		r.Incumbent = s.sumAbsInc / float64(s.samples)
		r.Candidate = s.sumAbsCan / float64(s.samples)
	}
	if s.decided > 0 {
		r.AgreeRate = float64(s.agree) / float64(s.decided)
	}
	return r
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
