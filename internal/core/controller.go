package core

import (
	"fmt"
	"math"
	"time"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/provenance"
)

// FaultDecide is the controller's fault-injection site, fired once per
// model decision (error kinds degrade that epoch to the fallback; panic
// kinds exercise the recovery path).
const FaultDecide = "core.decide"

// Controller is the SSMDVFS runtime (Fig. 1 of the paper). At every 10 µs
// epoch boundary it:
//
//  1. compares the epoch's actual instruction count against the
//     Calibrator's prediction made one epoch earlier and nudges the
//     effective performance-loss preset (self-calibration);
//  2. feeds the epoch's counters and the calibrated preset to the
//     Decision-maker to pick the next epoch's operating point;
//  3. asks the Calibrator — always with the *originally set* preset —
//     to predict the next epoch's instruction count for step 1.
//
// The controller keeps independent calibration state per cluster, since
// DVFS domains are per-cluster.
type Controller struct {
	model  *Model
	preset float64

	// Calibrate enables the self-calibration loop (disabled for the
	// "SSMDVFS without Calibrator" configuration in Fig. 4).
	calibrate bool

	// Gain is the calibration step size; Floor bounds how far the
	// effective preset may be tightened below the user preset; Deadband
	// is the relative prediction error tolerated before tightening (set
	// near the Calibrator's MAPE so model noise does not masquerade as a
	// slowdown).
	gain     float64
	floor    float64
	deadband float64

	state      []clusterCalib
	inferences int64

	// fallback, when set, answers epochs whose model step failed (panic,
	// non-finite counters, or injected fault); without it the controller
	// holds the cluster's current operating point. fallbacks counts the
	// epochs answered this way.
	fallback  gpusim.Controller
	injector  *faults.Injector
	fallbacks int64

	// inf is the controller's reusable inference context; Decide is
	// called from a single simulation goroutine, so one context serves
	// every cluster and exposes the last decision's logits for
	// provenance capture.
	inf *Inference

	// prov/mon, when set, receive a provenance record per decision and
	// fold it into the online model-quality statistics. Both are
	// nil-safe; rec is the per-controller scratch so recording does not
	// allocate.
	prov *provenance.Recorder
	mon  *provenance.Monitor
	rec  provenance.Record
}

type clusterCalib struct {
	effPreset float64
	predicted float64
	// predWarps is the active warp count when the prediction was made;
	// warps retiring mid-epoch legitimately shrink the instruction count
	// and must not read as "running too slowly".
	predWarps int
	hasPred   bool
}

// NewController builds the SSMDVFS controller for a GPU with the given
// cluster count. preset is the user's maximum acceptable performance loss
// (e.g. 0.10 for 10%).
func NewController(model *Model, preset float64, clusters int, calibrate bool) (*Controller, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if preset < 0 {
		return nil, fmt.Errorf("core: preset must be non-negative, got %g", preset)
	}
	if clusters <= 0 {
		return nil, fmt.Errorf("core: clusters must be positive, got %d", clusters)
	}
	// Build (and validate) the model's inference backends up front: a
	// model whose declared backend cannot be built — or whose int8
	// quantization fails parity — must be rejected here, not discovered
	// as a panic in the decision loop.
	if err := model.EnsureBackends(); err != nil {
		return nil, err
	}
	c := &Controller{
		model:     model,
		preset:    preset,
		calibrate: calibrate,
		gain:      0.5,
		floor:     0,
		deadband:  0.05,
		state:     make([]clusterCalib, clusters),
		inf:       NewInference(model),
	}
	for i := range c.state {
		c.state[i].effPreset = preset
	}
	return c, nil
}

// Name implements gpusim.Controller.
func (c *Controller) Name() string {
	if c.calibrate {
		return "ssmdvfs"
	}
	return "ssmdvfs-nocal"
}

// Preset returns the user-set performance-loss preset.
func (c *Controller) Preset() float64 { return c.preset }

// Inferences returns how many combined model inferences the controller
// has performed (one decision + one calibration per epoch per cluster).
func (c *Controller) Inferences() int64 { return c.inferences }

// EffectivePreset returns cluster i's current calibrated preset (test and
// analysis hook).
func (c *Controller) EffectivePreset(i int) float64 { return c.state[i].effPreset }

// SetFallback installs a safety-net controller (typically the analytical
// PCSTALL baseline) consulted when the model path fails. Must be set
// before the first Decide call.
func (c *Controller) SetFallback(fb gpusim.Controller) { c.fallback = fb }

// SetFaults installs a fault injector firing at the FaultDecide site.
// Must be set before the first Decide call; nil (the default) is free.
func (c *Controller) SetFaults(inj *faults.Injector) { c.injector = inj }

// Fallbacks returns how many epochs were answered by the fallback (or by
// holding the current operating point when no fallback is set).
func (c *Controller) Fallbacks() int64 { return c.fallbacks }

// SetProvenance installs a flight recorder and/or model-quality monitor
// that receive one record per Decide call. Either may be nil; both nil
// (the default) keeps the decision path free of provenance work. Must be
// set before the first Decide call.
func (c *Controller) SetProvenance(rec *provenance.Recorder, mon *provenance.Monitor) {
	c.prov = rec
	c.mon = mon
}

// Decide implements gpusim.Controller.
func (c *Controller) Decide(stats gpusim.EpochStats) int {
	tracing := c.prov != nil || c.mon != nil
	var start time.Time
	if tracing {
		start = time.Now()
	}
	cs := &c.state[stats.Cluster]

	// Step 1: self-calibration against last epoch's prediction. The
	// prediction error is computed whenever a usable prediction exists —
	// it is the provenance ground truth even when calibration is off —
	// but only calibration acts on it.
	var relErr float64
	haveErr := false
	if cs.hasPred && cs.predicted > 0 && stats.WarpsActive > 0 {
		pred := cs.predicted
		// Scale the expectation down when warps retired since the
		// prediction: less work in flight means fewer instructions, not
		// a slower core.
		if cs.predWarps > 0 && stats.WarpsActive < cs.predWarps {
			pred *= float64(stats.WarpsActive) / float64(cs.predWarps)
		}
		actual := float64(stats.Instructions)
		relErr = (pred - actual) / pred
		haveErr = true
	}
	if c.calibrate && haveErr {
		if relErr > c.deadband {
			// Running slower than the Calibrator expected: tighten the
			// preset so the Decision-maker chooses a faster point.
			cs.effPreset -= c.gain * (relErr - c.deadband) * c.preset
			if cs.effPreset < c.floor {
				cs.effPreset = c.floor
			}
		} else if relErr < 0 {
			// Running at or ahead of prediction: relax back toward the
			// user preset.
			cs.effPreset += c.gain * (-relErr) * c.preset
			if cs.effPreset > c.preset {
				cs.effPreset = c.preset
			}
		}
	}

	feats := counters.FromStats(stats)

	// Steps 2+3: decision and prediction for the next epoch. A failed
	// model step (panic, non-finite counters, injected fault) must not
	// take the DVFS loop down with it — the epoch degrades to the
	// analytical fallback (or holds the current point) and the stale
	// prediction is dropped so self-calibration does not act on it.
	level, ok := c.modelDecide(cs, feats, stats.WarpsActive)
	if !ok {
		cs.hasPred = false
		c.fallbacks++
		reason := provenance.ReasonHold
		if c.fallback != nil {
			level = c.fallback.Decide(stats)
			reason = provenance.ReasonFallback
		} else {
			level = stats.Level
		}
		if tracing {
			c.record(stats, feats, level, reason, cs, relErr, haveErr, false, start)
		}
		return level
	}
	if tracing {
		c.record(stats, feats, level, provenance.ReasonModel, cs, relErr, haveErr, true, start)
	}
	return level
}

// record fills the controller's scratch provenance record for the epoch
// just decided and hands it to the recorder and monitor. modelOK reports
// whether the model path produced the decision (its inference scratch
// then holds this epoch's derived row and logits).
func (c *Controller) record(stats gpusim.EpochStats, feats []float64, level int,
	reason provenance.Reason, cs *clusterCalib, relErr float64, haveErr, modelOK bool, start time.Time) {
	rec := &c.rec
	rec.Cluster = int32(stats.Cluster)
	rec.Epoch = int32(stats.Epoch)
	rec.Level = int32(level)
	rec.Reason = reason
	rec.Preset = c.preset
	rec.EffPreset = cs.effPreset
	rec.PredErr, rec.HasPredErr = relErr, haveErr
	rec.SetRaw(feats)
	if modelOK {
		rec.PredInstr = cs.predicted
		n := len(c.model.FeatureIdx)
		rec.SetDerived(c.inf.DecisionRow()[:n])
		rec.SetLogits(c.inf.Logits())
	} else {
		rec.PredInstr = 0
		rec.SetDerived(nil)
		rec.SetLogits(nil)
	}
	rec.LatencyNs = int64(time.Since(start))
	c.prov.Record(rec)
	c.mon.ObserveRecord(rec)
}

// modelDecide runs the model's decision and calibration inferences,
// converting panics and non-finite inputs into ok=false.
func (c *Controller) modelDecide(cs *clusterCalib, feats []float64, warps int) (level int, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	for _, f := range feats {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false
		}
	}
	if err := c.injector.Inject(FaultDecide); err != nil {
		return 0, false
	}

	// Step 2: decision for the next epoch.
	level = c.inf.DecideLevel(feats, cs.effPreset)

	// Step 3: prediction for the next epoch, always under the original
	// preset.
	cs.predicted = c.inf.PredictInstructions(feats, c.preset, level)
	cs.predWarps = warps
	cs.hasPred = true
	c.inferences++
	return level, true
}

var _ gpusim.Controller = (*Controller)(nil)
