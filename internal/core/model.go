// Package core implements SSMDVFS, the paper's contribution: a combined
// supervised model — a Decision-maker classifier that picks the minimum
// V/f operating point satisfying a performance-loss preset, and a
// Calibrator regressor that predicts the next epoch's instruction count —
// plus the runtime controller that closes the loop with self-calibration
// at every 10 µs DVFS epoch.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/nn"
)

// Model is the combined Decision-maker + Calibrator network. The paper
// fuses both heads into one network; here each head is an MLP whose
// shared preprocessing (feature selection and scaling) is identical, and
// FLOPs/compression are reported over the pair.
type Model struct {
	// FeatureIdx are the counter indices the model consumes (Table I's
	// five by default).
	FeatureIdx []int
	// Levels is the number of operating-point classes.
	Levels int

	// Decision maps [scaled features..., scaled preset] to level logits.
	Decision *nn.MLP
	// Calibrator maps [scaled features..., scaled preset, scaled level]
	// to the predicted next-epoch instruction count (scaled).
	Calibrator *nn.MLP

	// DecisionScaler / CalibScaler standardize each head's inputs.
	DecisionScaler *counters.Scaler
	CalibScaler    *counters.Scaler
	// TargetScale converts the Calibrator's output back to instructions.
	TargetScale float64
	// PresetSamples records the Decision head's training formulation
	// (see TrainOptions.PresetSamples), so evaluation matches it.
	PresetSamples int

	// Backend declares the inference backend this model serves with
	// ("float64" or "int8"; empty means float64). It rides in the saved
	// artifact so a model trained and parity-validated for int8 keeps
	// that property through hot swaps, and is overridable per daemon via
	// the -backend flag.
	Backend infer.Kind

	// Lineage tracks where this model came from across online
	// recalibration: its generation number, parent generation, and how it
	// was produced. The zero value means an unversioned offline artifact,
	// and is omitted from saved files so pre-lineage artifacts round-trip
	// byte-identically.
	Lineage Lineage

	// bk caches the built backend pair (see backend.go). A plain pointer
	// rather than a sync type so Clone's shallow copy stays vet-clean;
	// access is guarded by the package-level backendMu.
	bk *modelBackends
}

// NumFeatures returns the number of counter features the model consumes.
func (m *Model) NumFeatures() int { return len(m.FeatureIdx) }

// TrainingStats returns the names and training-set mean/σ of the model's
// selected features, read from the Decision scaler stored in the
// artifact — the reference distribution online drift monitoring compares
// live traffic against. The preset column the scaler also carries is
// excluded (it is an operator input, not a workload feature).
func (m *Model) TrainingStats() (names []string, mean, std []float64) {
	n := len(m.FeatureIdx)
	names = make([]string, n)
	for i, idx := range m.FeatureIdx {
		names[i] = counters.Def(idx).Name
	}
	return names, m.DecisionScaler.Mean[:n:n], m.DecisionScaler.Std[:n:n]
}

// DecideLevel returns the operating-point level for the next epoch given
// the full 47-counter vector of the just-finished epoch and the (possibly
// calibrated) performance-loss preset. It routes through the model's
// declared inference backend, so offline evaluation sees the same
// numerics the serving tier does (int8 included).
func (m *Model) DecideLevel(fullFeatures []float64, preset float64) int {
	return NewInference(m).DecideLevel(fullFeatures, preset)
}

// PredictInstructions returns the Calibrator's estimate of the next
// epoch's instruction count given the counters, the *originally set*
// preset (per the paper, the Calibrator always sees the uncalibrated
// preset), and the level the Decision-maker chose. Like DecideLevel it
// routes through the model's declared inference backend.
func (m *Model) PredictInstructions(fullFeatures []float64, preset float64, level int) float64 {
	return NewInference(m).PredictInstructions(fullFeatures, preset, level)
}

// FLOPs returns the dense inference cost of one combined decision +
// calibration step.
func (m *Model) FLOPs() int { return m.Decision.FLOPs() + m.Calibrator.FLOPs() }

// EffectiveFLOPs returns the sparse inference cost after pruning.
func (m *Model) EffectiveFLOPs() int {
	return m.Decision.EffectiveFLOPs() + m.Calibrator.EffectiveFLOPs()
}

// Params returns the combined parameter count.
func (m *Model) Params() int { return m.Decision.Params() + m.Calibrator.Params() }

// Clone deep-copies the model. The backend cache is deliberately not
// carried over: a clone is usually about to be mutated (pruned,
// fake-quantized), and stale backends would serve the pre-mutation
// weights.
func (m *Model) Clone() *Model {
	cp := *m
	cp.FeatureIdx = append([]int(nil), m.FeatureIdx...)
	cp.Decision = m.Decision.Clone()
	cp.Calibrator = m.Calibrator.Clone()
	cp.bk = nil
	return &cp
}

// Validate checks the model's structural and numerical sanity: head
// shapes consistent with the feature set and level count, scalers of the
// right length with finite statistics and positive spread, and every
// weight finite. It is the gate a model must pass before being swapped
// into a serving or control path — a corrupt or truncated artifact must
// keep the previous model serving, not poison decisions with NaNs.
func (m *Model) Validate() error {
	if m.Decision == nil || m.Calibrator == nil {
		return fmt.Errorf("core: model is missing a head")
	}
	if m.Levels <= 0 {
		return fmt.Errorf("core: model has %d levels", m.Levels)
	}
	if len(m.FeatureIdx) == 0 {
		return fmt.Errorf("core: model selects no features")
	}
	for _, i := range m.FeatureIdx {
		if i < 0 || i >= counters.Num {
			return fmt.Errorf("core: feature index %d out of range", i)
		}
	}
	n := len(m.FeatureIdx)
	if got := m.Decision.InputSize(); got != n+1 {
		return fmt.Errorf("core: decision head input %d, want %d", got, n+1)
	}
	if got := m.Decision.OutputSize(); got != m.Levels {
		return fmt.Errorf("core: decision head output %d, want %d levels", got, m.Levels)
	}
	if got := m.Calibrator.InputSize(); got != n+2 {
		return fmt.Errorf("core: calibrator head input %d, want %d", got, n+2)
	}
	if got := m.Calibrator.OutputSize(); got != 1 {
		return fmt.Errorf("core: calibrator head output %d, want 1", got)
	}
	if !(m.TargetScale > 0) || math.IsInf(m.TargetScale, 0) {
		return fmt.Errorf("core: target scale %g is not positive and finite", m.TargetScale)
	}
	for _, sc := range []struct {
		name string
		s    *counters.Scaler
		dim  int
	}{
		{"decision", m.DecisionScaler, n + 1},
		{"calibrator", m.CalibScaler, n + 2},
	} {
		if sc.s == nil {
			return fmt.Errorf("core: model is missing the %s scaler", sc.name)
		}
		if len(sc.s.Mean) != sc.dim || len(sc.s.Std) != sc.dim {
			return fmt.Errorf("core: %s scaler has %d/%d stats, want %d", sc.name, len(sc.s.Mean), len(sc.s.Std), sc.dim)
		}
		for i := range sc.s.Mean {
			if math.IsNaN(sc.s.Mean[i]) || math.IsInf(sc.s.Mean[i], 0) {
				return fmt.Errorf("core: %s scaler mean[%d] is non-finite", sc.name, i)
			}
			if !(sc.s.Std[i] > 0) || math.IsInf(sc.s.Std[i], 0) {
				return fmt.Errorf("core: %s scaler std[%d] = %g, want positive and finite", sc.name, i, sc.s.Std[i])
			}
		}
	}
	if err := m.Decision.CheckFinite(); err != nil {
		return fmt.Errorf("core: decision head: %w", err)
	}
	if err := m.Calibrator.CheckFinite(); err != nil {
		return fmt.Errorf("core: calibrator head: %w", err)
	}
	if _, err := infer.ParseKind(string(m.Backend)); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// serializedModel mirrors Model for JSON round-trips; the MLPs are
// embedded via their own serialization.
type serializedModel struct {
	FeatureIdx     []float64        `json:"feature_idx"`
	Levels         int              `json:"levels"`
	Decision       json.RawMessage  `json:"decision"`
	Calibrator     json.RawMessage  `json:"calibrator"`
	DecisionScaler *counters.Scaler `json:"decision_scaler"`
	CalibScaler    *counters.Scaler `json:"calib_scaler"`
	TargetScale    float64          `json:"target_scale"`
	PresetSamples  int              `json:"preset_samples"`
	Backend        string           `json:"backend,omitempty"`
	Lineage        *Lineage         `json:"lineage,omitempty"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	var dBuf, cBuf bytes.Buffer
	if err := m.Decision.Save(&dBuf); err != nil {
		return err
	}
	if err := m.Calibrator.Save(&cBuf); err != nil {
		return err
	}
	s := serializedModel{
		Levels:         m.Levels,
		PresetSamples:  m.PresetSamples,
		Backend:        string(m.Backend),
		Decision:       json.RawMessage(dBuf.Bytes()),
		Calibrator:     json.RawMessage(cBuf.Bytes()),
		DecisionScaler: m.DecisionScaler,
		CalibScaler:    m.CalibScaler,
		TargetScale:    m.TargetScale,
	}
	if m.Lineage != (Lineage{}) {
		lin := m.Lineage
		s.Lineage = &lin
	}
	for _, i := range m.FeatureIdx {
		s.FeatureIdx = append(s.FeatureIdx, float64(i))
	}
	return json.NewEncoder(w).Encode(s)
}

// Load reads a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var s serializedModel
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if s.Levels <= 0 || s.TargetScale <= 0 {
		return nil, fmt.Errorf("core: model has invalid levels/target scale")
	}
	if s.DecisionScaler == nil || s.CalibScaler == nil {
		return nil, fmt.Errorf("core: model is missing scalers")
	}
	if _, err := infer.ParseKind(s.Backend); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Model{Levels: s.Levels, TargetScale: s.TargetScale,
		DecisionScaler: s.DecisionScaler, CalibScaler: s.CalibScaler,
		PresetSamples: s.PresetSamples, Backend: infer.Kind(s.Backend)}
	if s.Lineage != nil {
		m.Lineage = *s.Lineage
	}
	for _, f := range s.FeatureIdx {
		i := int(f)
		if i < 0 || i >= counters.Num {
			return nil, fmt.Errorf("core: feature index %d out of range", i)
		}
		m.FeatureIdx = append(m.FeatureIdx, i)
	}
	var err error
	if m.Decision, err = nn.Load(bytes.NewReader(s.Decision)); err != nil {
		return nil, err
	}
	if m.Calibrator, err = nn.Load(bytes.NewReader(s.Calibrator)); err != nil {
		return nil, err
	}
	if m.Decision.InputSize() != len(m.FeatureIdx)+1 {
		return nil, fmt.Errorf("core: decision head input %d does not match %d features",
			m.Decision.InputSize(), len(m.FeatureIdx))
	}
	if m.Calibrator.InputSize() != len(m.FeatureIdx)+2 {
		return nil, fmt.Errorf("core: calibrator head input %d does not match %d features",
			m.Calibrator.InputSize(), len(m.FeatureIdx))
	}
	return m, nil
}

// SaveFile writes the model to path atomically (temp file + rename), so
// a hot-reloading reader can never observe a torn model file.
func (m *Model) SaveFile(path string) error {
	return atomicfile.Write(path, m.Save)
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	return atomicfile.ReadWith(path, Load)
}
