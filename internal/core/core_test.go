package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/gpusim"
)

// syntheticDataset builds a corpus whose structure mirrors the real one:
// a "memory-boundedness" parameter m ∈ [0,1] drives both the counters and
// the window-normalized loss of each level, loss(level) = (1-m)·(fDef/f − 1).
func syntheticDataset(n int, seed int64) *datagen.Dataset {
	rng := rand.New(rand.NewSource(seed))
	tbl := clockdomain.TitanX()
	ds := &datagen.Dataset{CounterNames: counters.Names(), Levels: tbl.Len()}
	fDef := tbl.Point(tbl.Default()).FrequencyHz
	for i := 0; i < n; i++ {
		m := rng.Float64()
		feats := make([]float64, counters.Num)
		feats[counters.IdxIPC] = 2.0*(1-m) + rng.NormFloat64()*0.02
		feats[counters.IdxPPC] = 3 + 4*(1-m) + rng.NormFloat64()*0.05
		feats[counters.IdxMH] = 60000*m + rng.NormFloat64()*500
		feats[counters.IdxMHNL] = 5000*m + rng.NormFloat64()*100
		feats[counters.IdxL1CRM] = 2000*m + rng.NormFloat64()*50
		for level := 0; level < tbl.Len(); level++ {
			f := tbl.Point(level).FrequencyHz
			loss := (1 - m) * (fDef/f - 1)
			instr := 20000 * (1 - loss/2) * (0.5 + 0.5*(1-m))
			ds.Samples = append(ds.Samples, datagen.Sample{
				Kernel:       "synthetic",
				Cluster:      0,
				Level:        level,
				Features:     feats,
				PerfLoss:     loss + rng.NormFloat64()*0.002,
				ScalingInstr: instr,
			})
		}
	}
	return ds
}

func quickOpts() TrainOptions {
	o := DefaultTrainOptions()
	o.Epochs = 40
	return o
}

func TestTrainReachesUsefulAccuracy(t *testing.T) {
	ds := syntheticDataset(300, 1)
	m, rep, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Six classes, monotone structure: well above the 1/6 chance floor,
	// in the regime the paper reports (~70%).
	if rep.Accuracy < 0.55 {
		t.Fatalf("decision accuracy = %.2f, want >= 0.55", rep.Accuracy)
	}
	if rep.MAPE > 20 {
		t.Fatalf("calibrator MAPE = %.1f%%, want <= 20%%", rep.MAPE)
	}
	if m.FLOPs() != rep.FLOPs || m.FLOPs() <= 0 {
		t.Fatalf("FLOPs inconsistent: model %d report %d", m.FLOPs(), rep.FLOPs)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(&datagen.Dataset{}, quickOpts()); err == nil {
		t.Fatal("empty dataset accepted")
	}
	ds := syntheticDataset(10, 2)
	bad := quickOpts()
	bad.ValFraction = 1.5
	if _, _, err := Train(ds, bad); err == nil {
		t.Fatal("bad ValFraction accepted")
	}
	bad = quickOpts()
	bad.Epochs = 0
	if _, _, err := Train(ds, bad); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestDecideLevelRespondsToPreset(t *testing.T) {
	ds := syntheticDataset(300, 3)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A fully compute-bound feature vector: loss at min level ≈ 70%.
	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 2.0
	feats[counters.IdxPPC] = 7
	tight := m.DecideLevel(feats, 0.02)
	loose := m.DecideLevel(feats, 0.60)
	if tight < loose {
		t.Fatalf("tight preset chose slower level than loose: %d < %d", tight, loose)
	}
	if tight < 4 {
		t.Fatalf("compute-bound at 2%% preset chose level %d, want fast level", tight)
	}
	// A fully memory-bound vector: every level is nearly free.
	mem := make([]float64, counters.Num)
	mem[counters.IdxPPC] = 3
	mem[counters.IdxMH] = 60000
	mem[counters.IdxMHNL] = 5000
	mem[counters.IdxL1CRM] = 2000
	if lvl := m.DecideLevel(mem, 0.10); lvl > 1 {
		t.Fatalf("memory-bound at 10%% preset chose level %d, want near 0", lvl)
	}
}

func TestPredictInstructionsPositiveAndSane(t *testing.T) {
	ds := syntheticDataset(300, 4)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.0
	feats[counters.IdxPPC] = 5
	feats[counters.IdxMH] = 30000
	got := m.PredictInstructions(feats, 0.1, 3)
	if got < 0 || math.IsNaN(got) {
		t.Fatalf("prediction = %g", got)
	}
	if got < 1000 || got > 100000 {
		t.Fatalf("prediction %g outside plausible range for synthetic targets ~10-20k", got)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds := syntheticDataset(100, 5)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.2
	feats[counters.IdxPPC] = 5.5
	if a, b := m.DecideLevel(feats, 0.1), got.DecideLevel(feats, 0.1); a != b {
		t.Fatalf("loaded model decides %d, original %d", b, a)
	}
	pa := m.PredictInstructions(feats, 0.1, 2)
	pb := got.PredictInstructions(feats, 0.1, 2)
	if math.Abs(pa-pb) > 1e-9 {
		t.Fatalf("loaded model predicts %g, original %g", pb, pa)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	for i, c := range []string{``, `{}`, `{"levels":6,"target_scale":1}`} {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("corrupt model %d accepted", i)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	ds := syntheticDataset(50, 6)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(nil, 0.1, 4, true); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewController(m, -0.1, 4, true); err == nil {
		t.Fatal("negative preset accepted")
	}
	if _, err := NewController(m, 0.1, 0, true); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

// statsWith builds EpochStats whose counter projection matches the given
// feature intent.
func statsWith(cluster int, instr int64, memBound bool) gpusim.EpochStats {
	s := gpusim.EpochStats{
		Cluster:      cluster,
		Instructions: instr,
		Cycles:       11000,
		OP:           clockdomain.TitanX().Point(5),
		Level:        5,
		WarpsActive:  8,
		DynPowerW:    4, StaticPowerW: 2,
	}
	if memBound {
		s.StallMemLoad = 60000
		s.StallMemOther = 5000
		s.L1ReadMisses = 2000
	}
	return s
}

func TestControllerCalibrationTightensOnSlowdown(t *testing.T) {
	ds := syntheticDataset(200, 7)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// First epoch: establishes a prediction.
	ctrl.Decide(statsWith(0, 20000, true))
	if ctrl.EffectivePreset(0) != 0.10 {
		t.Fatalf("preset moved before any comparison: %g", ctrl.EffectivePreset(0))
	}
	// Second epoch: far fewer instructions than any plausible prediction
	// → the effective preset must tighten.
	ctrl.Decide(statsWith(0, 10, true))
	if got := ctrl.EffectivePreset(0); got >= 0.10 {
		t.Fatalf("effective preset = %g after underrun, want < 0.10", got)
	}
	if ctrl.Inferences() != 2 {
		t.Fatalf("inferences = %d, want 2", ctrl.Inferences())
	}
}

func TestControllerCalibrationRecovers(t *testing.T) {
	ds := syntheticDataset(200, 8)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Decide(statsWith(0, 20000, true))
	ctrl.Decide(statsWith(0, 10, true)) // tighten
	tightened := ctrl.EffectivePreset(0)
	// Now run far ahead of prediction repeatedly: preset must relax back
	// toward (but never beyond) the user preset.
	for i := 0; i < 20; i++ {
		ctrl.Decide(statsWith(0, 10_000_000, true))
	}
	if got := ctrl.EffectivePreset(0); got <= tightened {
		t.Fatalf("preset did not recover: %g <= %g", got, tightened)
	}
	if got := ctrl.EffectivePreset(0); got > 0.10+1e-12 {
		t.Fatalf("preset overshot the user setting: %g", got)
	}
}

func TestControllerNoCalibrationKeepsPreset(t *testing.T) {
	ds := syntheticDataset(200, 9)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(m, 0.10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ctrl.Decide(statsWith(0, int64(10+i*1000), true))
	}
	if got := ctrl.EffectivePreset(0); got != 0.10 {
		t.Fatalf("nocal controller moved the preset to %g", got)
	}
	if ctrl.Name() != "ssmdvfs-nocal" {
		t.Fatalf("Name = %q", ctrl.Name())
	}
}

func TestControllerPerClusterIsolation(t *testing.T) {
	ds := syntheticDataset(200, 10)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(m, 0.10, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	// Starve only cluster 0.
	ctrl.Decide(statsWith(0, 20000, true))
	ctrl.Decide(statsWith(1, 20000, true))
	ctrl.Decide(statsWith(0, 10, true))
	ctrl.Decide(statsWith(1, 20000, true))
	if ctrl.EffectivePreset(0) >= 0.10 {
		t.Fatal("cluster 0 did not tighten")
	}
	if ctrl.EffectivePreset(1) > 0.10+1e-12 || ctrl.EffectivePreset(1) < 0.099 {
		t.Fatalf("cluster 1 preset drifted to %g", ctrl.EffectivePreset(1))
	}
}

func TestArchitectures(t *testing.T) {
	init := PaperInitial()
	if len(init.DecisionHidden) != 4 || len(init.CalibratorHidden) != 3 {
		t.Fatalf("PaperInitial = %+v, want 4+3 hidden layers (5+4 FC layers)", init)
	}
	comp := PaperCompressed()
	if len(comp.DecisionHidden) != 2 || len(comp.CalibratorHidden) != 1 {
		t.Fatalf("PaperCompressed = %+v, want 2+1 hidden layers (3+2 FC layers)", comp)
	}
}

func TestEvaluateMatchesTrainReport(t *testing.T) {
	ds := syntheticDataset(200, 11)
	m, _, err := Train(ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(m, ds)
	if rep.Accuracy <= 0.3 {
		t.Fatalf("full-set evaluation accuracy %.2f suspiciously low", rep.Accuracy)
	}
	if rep.FLOPs != m.FLOPs() {
		t.Fatal("Evaluate FLOPs mismatch")
	}
}
