package core

import (
	"fmt"
	"sync"

	"ssmdvfs/internal/infer"
)

// Parity gate for quantized backends, applied once at build time: the
// int8 decision head must agree with float64 argmax on all but a small
// fraction of synthetic standardized rows, and the int8 calibrator's
// worst relative output error must stay bounded. The synthetic gate is
// deliberately looser than the ≤0.5% oracle-dataset bound the serving
// tier is held to — standard-normal rows land closer to decision
// boundaries than real standardized traffic does — while still rejecting
// artifacts whose quantization genuinely went wrong.
const (
	parityRows        = 2048
	paritySeed        = 17
	maxDecisionFlips  = 0.02
	maxCalibratorRelE = 0.15
)

// modelBackends is the built inference-backend pair for one model. It is
// immutable after construction and shared by every Inference context
// bound to the model.
type modelBackends struct {
	kind       infer.Kind
	decision   infer.Backend
	calibrator infer.Backend
}

// backendMu guards lazy backend construction on every Model. Builds are
// rare (model load / hot swap); the per-decision path never takes it —
// Inference.Bind short-circuits when the bound model is unchanged.
var backendMu sync.Mutex

// EnsureBackends builds and memoizes the inference backends for the
// model's declared Backend kind, validating int8 parity against the
// float64 reference. Serving paths call it before publishing a model
// (load, hot swap), so a corrupt or badly-quantizing artifact is
// rejected with a structured error instead of serving garbage.
func (m *Model) EnsureBackends() error {
	_, err := m.backends()
	return err
}

// BackendKind returns the resolved backend kind the model serves with
// (the declared kind, with "" resolving to float64).
func (m *Model) BackendKind() infer.Kind {
	if m.Backend == "" {
		return infer.KindFloat64
	}
	return m.Backend
}

func (m *Model) backends() (*modelBackends, error) {
	backendMu.Lock()
	defer backendMu.Unlock()
	kind, err := infer.ParseKind(string(m.Backend))
	if err != nil {
		return nil, err
	}
	if m.bk != nil && m.bk.kind == kind {
		return m.bk, nil
	}
	d, err := infer.New(m.Decision, kind)
	if err != nil {
		return nil, fmt.Errorf("core: decision head: %w", err)
	}
	c, err := infer.New(m.Calibrator, kind)
	if err != nil {
		return nil, fmt.Errorf("core: calibrator head: %w", err)
	}
	if kind != infer.KindFloat64 {
		if rep := infer.CheckParity(m.Decision, d, parityRows, paritySeed); rep.FlipRate > maxDecisionFlips {
			return nil, &infer.Error{Kind: kind, Stage: "parity", Layer: -1,
				Err: fmt.Errorf("decision head flips argmax on %d/%d synthetic rows (%.2f%%), limit %.2f%%",
					rep.Flips, rep.Rows, 100*rep.FlipRate, 100*maxDecisionFlips)}
		}
		if rep := infer.CheckParity(m.Calibrator, c, parityRows, paritySeed+1); rep.MaxRelErr > maxCalibratorRelE {
			return nil, &infer.Error{Kind: kind, Stage: "parity", Layer: -1,
				Err: fmt.Errorf("calibrator max relative error %.4f over %d synthetic rows, limit %.2f",
					rep.MaxRelErr, rep.Rows, maxCalibratorRelE)}
		}
	}
	m.bk = &modelBackends{kind: kind, decision: d, calibrator: c}
	return m.bk, nil
}
