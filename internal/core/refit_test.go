package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// refitStream builds a calibrator training stream [selected feats...,
// preset, level] whose targets are the parent's own predictions shifted
// by a multiplicative factor — a pure calibration drift, exactly what an
// online re-fit is meant to absorb.
func refitStream(m *Model, n int, factor float64, seed int64) (rows [][]float64, targets []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		feats := randomFeatures(rng)
		preset := 0.05 + 0.10*rng.Float64()
		level := rng.Intn(m.Levels)
		row := make([]float64, 0, len(m.FeatureIdx)+2)
		for _, idx := range m.FeatureIdx {
			row = append(row, feats[idx])
		}
		row = append(row, preset, float64(level))
		pred := m.PredictInstructions(feats, preset, level)
		rows = append(rows, row)
		targets = append(targets, pred*factor)
	}
	return rows, targets
}

func TestRefitCalibratorAbsorbsDrift(t *testing.T) {
	parent := trainedModel(t, 31)
	before := parent.Clone()
	rows, targets := refitStream(parent, 400, 2.0, 7)

	cand, rep, err := RefitCalibrator(parent, rows, targets, RefitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != len(rows) {
		t.Fatalf("report rows = %d, want %d", rep.Rows, len(rows))
	}
	// The targets are the parent's predictions doubled, so the parent is
	// off by ~50% and a warm-started re-fit must close most of that gap.
	if rep.MAPEBefore < 40 {
		t.Fatalf("MAPE before = %.1f%%, expected a large calibration gap", rep.MAPEBefore)
	}
	if rep.MAPEAfter >= rep.MAPEBefore/2 {
		t.Fatalf("MAPE after = %.1f%% (before %.1f%%): re-fit did not converge", rep.MAPEAfter, rep.MAPEBefore)
	}

	// Lineage: candidate bumped, parent untouched.
	if cand.Lineage.Generation != 1 || cand.Lineage.Parent != 0 ||
		cand.Lineage.Source != SourceRefit || cand.Lineage.Refits != 1 {
		t.Fatalf("candidate lineage = %+v", cand.Lineage)
	}
	if parent.Lineage != (Lineage{}) {
		t.Fatalf("parent lineage mutated: %+v", parent.Lineage)
	}

	// The parent's weights must be untouched by the candidate's training.
	var pBuf, bBuf bytes.Buffer
	if err := parent.Calibrator.Save(&pBuf); err != nil {
		t.Fatal(err)
	}
	if err := before.Calibrator.Save(&bBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pBuf.Bytes(), bBuf.Bytes()) {
		t.Fatal("refit mutated the parent's calibrator weights")
	}

	// The decision head is inherited verbatim: same logits, same levels.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		feats := randomFeatures(rng)
		if got, want := cand.DecideLevel(feats, 0.1), parent.DecideLevel(feats, 0.1); got != want {
			t.Fatalf("decision level diverged after refit: %d vs %d", got, want)
		}
	}
}

func TestRefitCalibratorGenerationAssignment(t *testing.T) {
	parent := trainedModel(t, 32)
	rows, targets := refitStream(parent, 64, 1.5, 3)
	opts := RefitOptions{Epochs: 2, Seed: 3, Generation: 7}
	cand, _, err := RefitCalibrator(parent, rows, targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Lineage.Generation != 7 {
		t.Fatalf("explicit generation not honored: got %d", cand.Lineage.Generation)
	}
	// A second-order refit chains parent generation and the refit count.
	grand, _, err := RefitCalibrator(cand, rows, targets, RefitOptions{Epochs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if grand.Lineage.Generation != 8 || grand.Lineage.Parent != 7 || grand.Lineage.Refits != 2 {
		t.Fatalf("chained lineage = %+v", grand.Lineage)
	}
}

func TestRefitCalibratorRejectsBadInput(t *testing.T) {
	parent := trainedModel(t, 33)
	rows, targets := refitStream(parent, 16, 1.0, 1)
	if _, _, err := RefitCalibrator(nil, rows, targets, RefitOptions{}); err == nil {
		t.Fatal("nil parent accepted")
	}
	if _, _, err := RefitCalibrator(parent, nil, nil, RefitOptions{}); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, _, err := RefitCalibrator(parent, rows, targets[:8], RefitOptions{}); err == nil {
		t.Fatal("mismatched rows/targets accepted")
	}
	if _, _, err := RefitCalibrator(parent, [][]float64{{1, 2}}, []float64{1}, RefitOptions{}); err == nil {
		t.Fatal("short row accepted")
	}
	bad := append([][]float64(nil), rows...)
	badTargets := append([]float64(nil), targets...)
	badTargets[0] = math.NaN()
	if _, _, err := RefitCalibrator(parent, bad, badTargets, RefitOptions{Epochs: 2}); err == nil {
		t.Fatal("NaN target produced a servable model")
	}
}

func TestLineageSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t, 34)

	// Zero lineage is omitted from the artifact entirely, so pre-lineage
	// artifacts and tools keep seeing byte-identical files.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lineage") {
		t.Fatal("zero lineage was serialized")
	}

	m.Lineage = Lineage{Generation: 3, Parent: 2, Source: SourceRefit, Refits: 3}
	buf.Reset()
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lineage != m.Lineage {
		t.Fatalf("lineage round-trip: got %+v, want %+v", got.Lineage, m.Lineage)
	}
	if s := got.Lineage.String(); !strings.Contains(s, "gen 3") || !strings.Contains(s, SourceRefit) {
		t.Fatalf("lineage string = %q", s)
	}
}
