package core

import (
	"math"
	"testing"

	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// TestControllerProvenanceRecords drives the controller through model,
// fallback, and hold epochs and checks that every decision left a full
// provenance record behind.
func TestControllerProvenanceRecords(t *testing.T) {
	m := trainedModel(t, 61)
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetFallback(pcstallFallback(t, 0.10, 1))
	inj := faults.New(9)
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindError, Every: 4}); err != nil {
		t.Fatal(err)
	}
	ctrl.SetFaults(inj)

	reg := telemetry.NewRegistry()
	rec := provenance.NewRecorder(64)
	mon := provenance.NewMonitor(reg, provenance.MonitorOptions{Window: 16})
	names, mean, std := m.TrainingStats()
	mon.SetTrainingStats(names, mean, std)
	ctrl.SetProvenance(rec, mon)

	const epochs = 12
	for epoch := 0; epoch < epochs; epoch++ {
		s := statsWith(0, 20000, epoch%2 == 0)
		s.Epoch = epoch
		ctrl.Decide(s)
	}

	recs := rec.Snapshot(nil)
	if len(recs) != epochs {
		t.Fatalf("recorded %d decisions, want %d", len(recs), epochs)
	}
	var modelN, fallbackN int
	n := m.NumFeatures()
	for i, r := range recs {
		if r.Epoch != int32(i) || r.Cluster != 0 {
			t.Fatalf("record %d has epoch/cluster %d/%d", i, r.Epoch, r.Cluster)
		}
		if r.Preset != 0.10 {
			t.Fatalf("record %d preset = %g", i, r.Preset)
		}
		if int(r.NumRaw) == 0 {
			t.Fatalf("record %d has no raw counters", i)
		}
		switch r.Reason {
		case provenance.ReasonModel:
			modelN++
			if int(r.NumDerived) != n || int(r.NumLogits) != m.Levels {
				t.Fatalf("record %d: derived/logits %d/%d, want %d/%d",
					i, r.NumDerived, r.NumLogits, n, m.Levels)
			}
			if !(r.PredInstr > 0) {
				t.Fatalf("record %d: model decision with PredInstr %g", i, r.PredInstr)
			}
		case provenance.ReasonFallback:
			fallbackN++
			if r.NumDerived != 0 || r.NumLogits != 0 {
				t.Fatalf("record %d: fallback decision carries model internals", i)
			}
		default:
			t.Fatalf("record %d: unexpected reason %v", i, r.Reason)
		}
	}
	if fallbackN != 3 || modelN != epochs-3 {
		t.Fatalf("model/fallback = %d/%d, want %d/3", modelN, fallbackN, epochs-3)
	}

	// Epoch 1 follows a clean model epoch, so its record must carry the
	// realized prediction error of epoch 0's forecast.
	if !recs[1].HasPredErr {
		t.Fatal("record 1 is missing the realized prediction error")
	}
	if math.IsNaN(recs[1].PredErr) || math.IsInf(recs[1].PredErr, 0) {
		t.Fatalf("record 1 PredErr = %g", recs[1].PredErr)
	}

	snap := reg.Snapshot()
	id := telemetry.MetricID("prov_decisions_total", "reason", provenance.ReasonFallback.String())
	if got := snap.Counters[id]; got != 3 {
		t.Fatalf("%s = %d, want 3", id, got)
	}
	if s := mon.Stats(); s.ErrSamples == 0 {
		t.Fatal("monitor folded no prediction-error samples")
	}
}

// TestControllerProvenanceDisabledMatches pins that installing no
// provenance hooks leaves decisions identical to a provenance-enabled
// twin — recording observes, never perturbs.
func TestControllerProvenanceDisabledMatches(t *testing.T) {
	m := trainedModel(t, 62)
	mk := func(withProv bool) *Controller {
		ctrl, err := NewController(m, 0.10, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if withProv {
			ctrl.SetProvenance(provenance.NewRecorder(32),
				provenance.NewMonitor(telemetry.NewRegistry(), provenance.MonitorOptions{}))
		}
		return ctrl
	}
	plain, traced := mk(false), mk(true)
	for epoch := 0; epoch < 20; epoch++ {
		s := statsWith(0, 15000+int64(epoch)*500, epoch%3 != 0)
		s.Epoch = epoch
		if a, b := plain.Decide(s), traced.Decide(s); a != b {
			t.Fatalf("epoch %d: plain=%d traced=%d", epoch, a, b)
		}
	}
	if a, b := plain.EffectivePreset(0), traced.EffectivePreset(0); a != b {
		t.Fatalf("effective presets diverged: %g vs %g", a, b)
	}
}
