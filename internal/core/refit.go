package core

import (
	"fmt"

	"ssmdvfs/internal/nn"
)

// Lineage sources.
const (
	// SourceOffline marks a model produced by the offline training
	// pipeline (also what an unversioned artifact implies).
	SourceOffline = "offline"
	// SourceRefit marks a model produced by an online Calibrator re-fit
	// from flight-recorder traffic.
	SourceRefit = "refit"
	// SourceRollback marks an incumbent snapshot restored after a
	// promoted candidate regressed.
	SourceRollback = "rollback"
)

// Lineage is a model's provenance across online adaptation: which
// generation it is, which generation it was refit from, how it was
// produced, and how many online re-fits are in its ancestry. Generation
// numbers are assigned by whoever produces models (the adaptation
// controller keeps them monotonically increasing per serving process);
// generation 0 is the unversioned offline artifact.
type Lineage struct {
	Generation int    `json:"generation,omitempty"`
	Parent     int    `json:"parent,omitempty"`
	Source     string `json:"source,omitempty"`
	Refits     int    `json:"refits,omitempty"`
}

func (l Lineage) String() string {
	src := l.Source
	if src == "" {
		src = SourceOffline
	}
	return fmt.Sprintf("gen %d (%s, parent %d, %d refits)", l.Generation, src, l.Parent, l.Refits)
}

// RefitOptions tunes an online Calibrator re-fit; zero values take the
// defaults, which are sized for a few hundred to a few thousand stream
// rows.
type RefitOptions struct {
	Epochs       int     // default 40
	BatchSize    int     // default 32 (clamped to the row count)
	LearningRate float64 // default 0.005
	Seed         int64
	// Generation is the lineage generation the candidate gets; 0 assigns
	// parent generation + 1. Callers that survive rollbacks should assign
	// monotonically themselves so a re-refit never reuses the generation
	// of a rejected candidate.
	Generation int
}

func (o RefitOptions) withDefaults() RefitOptions {
	if o.Epochs <= 0 {
		o.Epochs = 40
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.005
	}
	return o
}

// RefitReport summarizes one re-fit: stream MAPE (%) of the parent and
// the candidate on the training rows, and the final training loss.
type RefitReport struct {
	Rows       int
	MAPEBefore float64
	MAPEAfter  float64
	Loss       float64
}

// RefitCalibrator incrementally re-fits the Calibrator head on a stream
// of observed (row, realized-instruction-count) pairs — the online
// learning step of the paper's self-calibration loop. Each row is the
// Calibrator's raw input [selected features..., preset, level] exactly
// as the serving path assembles it; targets are the next epoch's
// realized instruction counts in instructions (unscaled).
//
// The parent is never mutated: the candidate is a deep clone whose
// Calibrator is warm-started from the parent's weights and trained
// in place, so a handful of epochs over a few hundred stream rows is
// enough to track drift instead of relearning from scratch. The
// Decision head, scalers, and TargetScale are inherited unchanged (the
// input distribution reference stays the training set's, which is what
// drift is measured against). The candidate's lineage records the
// parent generation and bumps the refit count; the candidate is
// validated before being returned, so a re-fit that diverged (non-
// finite weights) comes back as an error, never as a servable model.
func RefitCalibrator(parent *Model, rows [][]float64, targets []float64, opts RefitOptions) (*Model, RefitReport, error) {
	rep := RefitReport{Rows: len(rows)}
	if parent == nil {
		return nil, rep, fmt.Errorf("core: refit needs a parent model")
	}
	if len(rows) == 0 || len(rows) != len(targets) {
		return nil, rep, fmt.Errorf("core: refit got %d rows and %d targets", len(rows), len(targets))
	}
	wantDim := len(parent.FeatureIdx) + 2
	for i, r := range rows {
		if len(r) != wantDim {
			return nil, rep, fmt.Errorf("core: refit row %d has %d values, want %d", i, len(r), wantDim)
		}
	}
	opts = opts.withDefaults()
	if opts.BatchSize > len(rows) {
		opts.BatchSize = len(rows)
	}

	set := nn.RegressionSet{
		X: parent.CalibScaler.TransformAll(rows),
		Y: scaleAll(targets, 1/parent.TargetScale),
	}
	rep.MAPEBefore = nn.EvalRegressor(parent.Calibrator, set)

	cand := parent.Clone()
	loss, err := nn.TrainRegressor(cand.Calibrator, set, nn.TrainConfig{
		Epochs: opts.Epochs, BatchSize: opts.BatchSize,
		Optimizer: nn.NewAdam(opts.LearningRate), Seed: opts.Seed,
	})
	if err != nil {
		return nil, rep, fmt.Errorf("core: refit training: %w", err)
	}
	rep.Loss = loss
	rep.MAPEAfter = nn.EvalRegressor(cand.Calibrator, set)

	gen := opts.Generation
	if gen <= 0 {
		gen = parent.Lineage.Generation + 1
	}
	cand.Lineage = Lineage{
		Generation: gen,
		Parent:     parent.Lineage.Generation,
		Source:     SourceRefit,
		Refits:     parent.Lineage.Refits + 1,
	}
	if err := cand.Validate(); err != nil {
		return nil, rep, fmt.Errorf("core: refit produced an invalid model: %w", err)
	}
	return cand, rep, nil
}
