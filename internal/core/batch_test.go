package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ssmdvfs/internal/infer"
)

// TestDecideBatchMatchesRowAtATime pins the batched decision path to
// per-row Decide, bit for bit, for both backend kinds and across batch
// sizes that hit the tile body and the remainder loop.
func TestDecideBatchMatchesRowAtATime(t *testing.T) {
	base := trainedModel(t, 31)
	for _, kind := range []infer.Kind{infer.KindFloat64, infer.KindInt8} {
		m := base.Clone()
		m.Backend = kind
		if err := m.EnsureBackends(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		inf := NewInference(m)
		ref := NewInference(m)
		rng := rand.New(rand.NewSource(8))
		for _, n := range []int{1, 2, 4, 5, 8, 31, 64} {
			feats := make([][]float64, n)
			presets := make([]float64, n)
			inf.BeginBatch(n)
			for i := 0; i < n; i++ {
				feats[i] = randomFeatures(rng)
				presets[i] = rng.Float64() * 0.3
				inf.SetBatchRow(i, feats[i], presets[i])
			}
			inf.DecideBatch()
			if inf.BatchLen() != n {
				t.Fatalf("%s n=%d: BatchLen %d", kind, n, inf.BatchLen())
			}
			for i := 0; i < n; i++ {
				wantLevel, wantPred := ref.Decide(feats[i], presets[i])
				if inf.BatchLevel(i) != wantLevel || inf.BatchPredInstr(i) != wantPred {
					t.Fatalf("%s n=%d row %d: batch (%d, %g) != row (%d, %g)",
						kind, n, i, inf.BatchLevel(i), inf.BatchPredInstr(i), wantLevel, wantPred)
				}
				wantLogits := ref.Logits()
				gotLogits := inf.BatchLogits(i)
				for k := range wantLogits {
					if gotLogits[k] != wantLogits[k] {
						t.Fatalf("%s n=%d row %d logit %d: %g != %g", kind, n, i, k, gotLogits[k], wantLogits[k])
					}
				}
				wantRow := ref.DecisionRow()
				gotRow := inf.BatchDerived(i)
				for k := range wantRow {
					if gotRow[k] != wantRow[k] {
						t.Fatalf("%s n=%d row %d derived %d: %g != %g", kind, n, i, k, gotRow[k], wantRow[k])
					}
				}
			}
		}
	}
}

func TestDecideBatchSteadyStateAllocs(t *testing.T) {
	m := trainedModel(t, 32)
	inf := NewInference(m)
	rng := rand.New(rand.NewSource(9))
	const n = 32
	feats := make([][]float64, n)
	for i := range feats {
		feats[i] = randomFeatures(rng)
	}
	run := func() {
		inf.BeginBatch(n)
		for i := 0; i < n; i++ {
			inf.SetBatchRow(i, feats[i], 0.1)
		}
		inf.DecideBatch()
	}
	run() // grow the buffers
	if allocs := testing.AllocsPerRun(200, run); allocs > 0 {
		t.Fatalf("DecideBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEnsureBackendsRejectsCorruptInt8 is the hot-swap gate: a model
// declaring the int8 backend whose decision head has an all-zero layer
// must fail EnsureBackends with the structured infer error, and
// NewController must refuse it.
func TestEnsureBackendsRejectsCorruptInt8(t *testing.T) {
	m := trainedModel(t, 33)
	m.Backend = infer.KindInt8
	for i := range m.Decision.Layers[0].W {
		m.Decision.Layers[0].W[i] = 0
	}
	err := m.EnsureBackends()
	if err == nil || !strings.Contains(err.Error(), "quantize") {
		t.Fatalf("EnsureBackends = %v, want quantize-stage error", err)
	}
	if _, err := NewController(m, 0.1, 4, true); err == nil {
		t.Fatal("NewController accepted a model whose int8 backend cannot be built")
	}
}

// TestBackendFieldRoundTrips: the backend kind rides in the saved-model
// header and an unknown kind is rejected at load.
func TestBackendFieldRoundTrips(t *testing.T) {
	m := trainedModel(t, 34)
	m.Backend = infer.KindInt8
	var buf strings.Builder
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != infer.KindInt8 {
		t.Fatalf("loaded backend %q, want int8", got.Backend)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := strings.Replace(buf.String(), `"backend":"int8"`, `"backend":"fp7"`, 1)
	if bad == buf.String() {
		t.Fatal("test did not find the backend field to corrupt")
	}
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("Load accepted an unknown backend kind")
	}

	// Clone drops the cache but keeps the declared kind.
	if err := got.EnsureBackends(); err != nil {
		t.Fatal(err)
	}
	cp := got.Clone()
	if cp.bk != nil {
		t.Fatal("Clone carried the backend cache across")
	}
	if cp.Backend != infer.KindInt8 {
		t.Fatalf("Clone backend %q, want int8", cp.Backend)
	}
}

// TestConcurrentLazyBackendBuild binds 16 fresh Inference contexts to one
// unbuilt model at once; with -race this pins the package-mutex-guarded
// lazy construction.
func TestConcurrentLazyBackendBuild(t *testing.T) {
	m := trainedModel(t, 35)
	m.Backend = infer.KindInt8
	feats := randomFeatures(rand.New(rand.NewSource(10)))
	want := -1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inf := NewInference(m)
			level := inf.DecideLevel(feats, 0.1)
			mu.Lock()
			defer mu.Unlock()
			if want == -1 {
				want = level
			} else if level != want {
				t.Errorf("level %d != %d", level, want)
			}
		}()
	}
	wg.Wait()
}
