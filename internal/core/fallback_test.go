package core

import (
	"math"
	"testing"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/gpusim"
)

func pcstallFallback(t *testing.T, preset float64, clusters int) gpusim.Controller {
	t.Helper()
	fb, err := baselines.NewPCSTALL(clockdomain.TitanX(), preset, clusters)
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

// TestControllerFallbackOnInjectedError checks that model-path faults
// degrade single epochs to the fallback controller without disturbing the
// epochs around them.
func TestControllerFallbackOnInjectedError(t *testing.T) {
	m := trainedModel(t, 51)
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetFallback(pcstallFallback(t, 0.10, 1))
	inj := faults.New(5)
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindError, Every: 3}); err != nil {
		t.Fatal(err)
	}
	ctrl.SetFaults(inj)

	levels := clockdomain.TitanX().Len()
	for epoch := 0; epoch < 12; epoch++ {
		level := ctrl.Decide(statsWith(0, 20000, epoch%2 == 0))
		if level < 0 || level >= levels {
			t.Fatalf("epoch %d: level %d out of range", epoch, level)
		}
	}
	if got := ctrl.Fallbacks(); got != 4 {
		t.Fatalf("fallbacks = %d, want 4 (every 3rd of 12 epochs)", got)
	}
	if got := ctrl.Inferences(); got != 8 {
		t.Fatalf("inferences = %d, want 8 (the epochs the model answered)", got)
	}
}

// TestControllerFallbackOnPanic arms a panic fault: Decide must recover
// and still return a safe level.
func TestControllerFallbackOnPanic(t *testing.T) {
	m := trainedModel(t, 52)
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetFallback(pcstallFallback(t, 0.10, 1))
	inj := faults.New(6)
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindPanic, Every: 2}); err != nil {
		t.Fatal(err)
	}
	ctrl.SetFaults(inj)

	levels := clockdomain.TitanX().Len()
	for epoch := 0; epoch < 6; epoch++ {
		level := ctrl.Decide(statsWith(0, 20000, true))
		if level < 0 || level >= levels {
			t.Fatalf("epoch %d: level %d out of range", epoch, level)
		}
	}
	if got := ctrl.Fallbacks(); got != 3 {
		t.Fatalf("fallbacks = %d, want 3", got)
	}
}

// TestControllerFallbackOnNonFiniteCounters feeds an epoch whose stats
// project to non-finite features: the model must be bypassed.
func TestControllerFallbackOnNonFiniteCounters(t *testing.T) {
	m := trainedModel(t, 53)
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	fb := pcstallFallback(t, 0.10, 1)
	ctrl.SetFallback(fb)

	bad := statsWith(0, 20000, true)
	bad.DynPowerW = math.NaN()
	level := ctrl.Decide(bad)
	if level < 0 || level >= clockdomain.TitanX().Len() {
		t.Fatalf("level %d out of range", level)
	}
	if got := ctrl.Fallbacks(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
	if ctrl.Inferences() != 0 {
		t.Fatal("model ran on non-finite features")
	}

	// A degraded epoch drops the stale prediction, so the next clean
	// epoch must not self-calibrate against it.
	ctrl.Decide(statsWith(0, 10, true)) // tiny instr count would tighten if a pred survived
	if got := ctrl.EffectivePreset(0); got != 0.10 {
		t.Fatalf("effective preset = %g, want 0.10 (no calibration against a dropped prediction)", got)
	}
}

// TestControllerFallbackHoldsLevelWithoutFallback pins the last-resort
// behaviour: with no fallback installed, a failed epoch holds the
// cluster's current operating point.
func TestControllerFallbackHoldsLevelWithoutFallback(t *testing.T) {
	m := trainedModel(t, 54)
	ctrl, err := NewController(m, 0.10, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7)
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindError}); err != nil {
		t.Fatal(err)
	}
	ctrl.SetFaults(inj)

	stats := statsWith(0, 20000, true)
	stats.Level = 2
	if got := ctrl.Decide(stats); got != 2 {
		t.Fatalf("level = %d, want held level 2", got)
	}
	if got := ctrl.Fallbacks(); got != 1 {
		t.Fatalf("fallbacks = %d, want 1", got)
	}
}
