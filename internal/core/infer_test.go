package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ssmdvfs/internal/counters"
)

func trainedModel(t *testing.T, seed int64) *Model {
	t.Helper()
	ds := syntheticDataset(200, seed)
	o := quickOpts()
	o.Epochs = 10
	m, _, err := Train(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomFeatures(rng *rand.Rand) []float64 {
	feats := make([]float64, counters.Num)
	m := rng.Float64()
	feats[counters.IdxIPC] = 2.0 * (1 - m)
	feats[counters.IdxPPC] = 3 + 4*(1-m)
	feats[counters.IdxMH] = 60000 * m
	feats[counters.IdxMHNL] = 5000 * m
	feats[counters.IdxL1CRM] = 2000 * m
	return feats
}

// TestInferenceMatchesModel pins the allocation-free path to the plain
// allocating one.
func TestInferenceMatchesModel(t *testing.T) {
	m := trainedModel(t, 21)
	inf := NewInference(m)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		feats := randomFeatures(rng)
		preset := rng.Float64() * 0.3
		wantLevel := m.DecideLevel(feats, preset)
		gotLevel, gotPred := inf.Decide(feats, preset)
		if gotLevel != wantLevel {
			t.Fatalf("iter %d: Inference level %d, Model level %d", i, gotLevel, wantLevel)
		}
		wantPred := m.PredictInstructions(feats, preset, wantLevel)
		if gotPred != wantPred {
			t.Fatalf("iter %d: Inference pred %g, Model pred %g", i, gotPred, wantPred)
		}
	}
}

func TestInferenceSteadyStateAllocs(t *testing.T) {
	m := trainedModel(t, 22)
	inf := NewInference(m)
	feats := randomFeatures(rand.New(rand.NewSource(1)))
	allocs := testing.AllocsPerRun(200, func() {
		inf.Decide(feats, 0.1)
	})
	if allocs > 0 {
		t.Fatalf("Inference.Decide allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentInferenceMatchesSerial hammers one *Model from 16
// goroutines — through both the plain methods and pooled Inference
// contexts — and asserts every output is identical to the serial path.
// Run under -race this is the audit that the forward pass shares no
// mutable state.
func TestConcurrentInferenceMatchesSerial(t *testing.T) {
	m := trainedModel(t, 23)

	const rows = 512
	feats := make([][]float64, rows)
	presets := make([]float64, rows)
	rng := rand.New(rand.NewSource(7))
	for i := range feats {
		feats[i] = randomFeatures(rng)
		presets[i] = rng.Float64() * 0.3
	}
	// Serial reference.
	wantLevel := make([]int, rows)
	wantPred := make([]float64, rows)
	for i := range feats {
		wantLevel[i] = m.DecideLevel(feats[i], presets[i])
		wantPred[i] = m.PredictInstructions(feats[i], presets[i], wantLevel[i])
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inf := NewInference(m)
			for rep := 0; rep < 4; rep++ {
				for i := range feats {
					var level int
					var pred float64
					if (g+rep)%2 == 0 {
						level, pred = inf.Decide(feats[i], presets[i])
					} else {
						level = m.DecideLevel(feats[i], presets[i])
						pred = m.PredictInstructions(feats[i], presets[i], level)
					}
					if level != wantLevel[i] || pred != wantPred[i] {
						t.Errorf("goroutine %d row %d: (%d, %g) != serial (%d, %g)",
							g, i, level, pred, wantLevel[i], wantPred[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSaveFileAtomicUnderConcurrentLoads saves a model to one path from
// several writers while readers continuously LoadFile it: thanks to the
// temp-file + rename write, every load must yield a complete, valid
// model (this is the hot-reload daemon's contract).
func TestSaveFileAtomicUnderConcurrentLoads(t *testing.T) {
	a := trainedModel(t, 24)
	b := a.Clone()
	for _, l := range b.Decision.Layers {
		for i := range l.W {
			l.W[i] *= 1.0001
		}
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w, m := range []*Model{a, b} {
		wg.Add(1)
		go func(w int, m *Model) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if err := m.SaveFile(path); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w, m)
	}
	var readerWg sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, err := LoadFile(path)
				if err != nil {
					t.Errorf("torn read: %v", err)
					return
				}
				if m.Levels != a.Levels || m.NumFeatures() != a.NumFeatures() {
					t.Errorf("loaded model malformed: %d levels, %d features", m.Levels, m.NumFeatures())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()

	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want just the model file", len(ents))
	}
}
