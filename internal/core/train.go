package core

import (
	"fmt"
	"math/rand"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/nn"
)

// Architecture specifies both heads' hidden layers. The paper's initial
// network dedicates five FC layers (four hidden + output) to the
// Decision-maker and four (three hidden + output) to the Calibrator, all
// 20 neurons wide; the compressed network is 3+2 layers, 12 wide.
type Architecture struct {
	DecisionHidden   []int
	CalibratorHidden []int
}

// PaperInitial returns the pre-compression architecture of Section III-D.
func PaperInitial() Architecture {
	return Architecture{
		DecisionHidden:   []int{20, 20, 20, 20},
		CalibratorHidden: []int{20, 20, 20},
	}
}

// PaperCompressed returns the layer-wise compressed architecture of
// Section IV-B (before pruning): 3 decision layers and 2 calibrator
// layers, 12 hidden neurons each.
func PaperCompressed() Architecture {
	return Architecture{
		DecisionHidden:   []int{12, 12},
		CalibratorHidden: []int{12},
	}
}

// TrainOptions configures Train.
type TrainOptions struct {
	// FeatureIdx selects the counters to use (defaults to Table I's five).
	FeatureIdx []int
	// Arch selects the head shapes (defaults to PaperInitial).
	Arch Architecture
	// Epochs / BatchSize / LearningRate drive both heads' training.
	Epochs       int
	BatchSize    int
	LearningRate float64
	Seed         int64
	// ValFraction is held out for the reported metrics.
	ValFraction float64
	// PresetSamples > 0 trains the Decision head on preset-sampled rows
	// (the min-level-satisfying-preset rule, PresetSamples rows per
	// feature-window group); 0 uses the paper's actual-loss rows.
	PresetSamples int
}

// DefaultTrainOptions returns a configuration that trains both heads to
// the paper's accuracy regime in a few seconds.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		FeatureIdx:    counters.SelectedFive(),
		Arch:          PaperInitial(),
		Epochs:        60,
		BatchSize:     32,
		LearningRate:  0.003,
		Seed:          42,
		ValFraction:   0.2,
		PresetSamples: 8,
	}
}

// Report carries the trained model's validation metrics, matching the
// quantities in the paper's Table II.
type Report struct {
	// Accuracy is Decision-maker validation classification accuracy.
	Accuracy float64
	// MAPE is Calibrator validation mean absolute percentage error (%).
	MAPE float64
	// FLOPs is the combined dense inference cost.
	FLOPs int
	// TrainSamples / ValSamples are the split sizes.
	TrainSamples int
	ValSamples   int
}

// Train fits the combined model on the dataset and returns it with its
// validation report.
func Train(ds *datagen.Dataset, opts TrainOptions) (*Model, Report, error) {
	var rep Report
	if len(ds.Samples) == 0 {
		return nil, rep, fmt.Errorf("core: empty dataset")
	}
	if opts.FeatureIdx == nil {
		opts.FeatureIdx = counters.SelectedFive()
	}
	if opts.Arch.DecisionHidden == nil {
		opts.Arch = PaperInitial()
	}
	if opts.Epochs <= 0 || opts.BatchSize <= 0 || opts.LearningRate <= 0 {
		return nil, rep, fmt.Errorf("core: Epochs, BatchSize and LearningRate must be positive")
	}
	if opts.ValFraction <= 0 || opts.ValFraction >= 1 {
		return nil, rep, fmt.Errorf("core: ValFraction must be in (0,1)")
	}

	train, val := ds.Split(1-opts.ValFraction, opts.Seed)
	if train.Samples == nil || val.Samples == nil {
		return nil, rep, fmt.Errorf("core: dataset too small to split (%d samples)", len(ds.Samples))
	}
	rep.TrainSamples = len(train.Samples)
	rep.ValSamples = len(val.Samples)

	m := &Model{
		FeatureIdx: append([]int(nil), opts.FeatureIdx...),
		Levels:     ds.Levels,
	}

	m.PresetSamples = opts.PresetSamples

	// Decision head. Preset-sampled rows need each feature window's
	// complete per-level loss vector, so they are generated from the full
	// dataset and split at row granularity; the paper-faithful rows split
	// at sample granularity.
	var dTrainRows, dValRows [][]float64
	var dTrainLabels, dValLabels []int
	if opts.PresetSamples > 0 {
		rows, labels := ds.DecisionRowsPresetSampled(m.FeatureIdx, opts.PresetSamples, opts.Seed+11)
		if len(rows) == 0 {
			return nil, rep, fmt.Errorf("core: no complete feature-window groups for preset sampling")
		}
		perm := rand.New(rand.NewSource(opts.Seed + 12)).Perm(len(rows))
		nTrain := int(float64(len(rows)) * (1 - opts.ValFraction))
		for i, idx := range perm {
			if i < nTrain {
				dTrainRows = append(dTrainRows, rows[idx])
				dTrainLabels = append(dTrainLabels, labels[idx])
			} else {
				dValRows = append(dValRows, rows[idx])
				dValLabels = append(dValLabels, labels[idx])
			}
		}
	} else {
		dTrainRows, dTrainLabels = train.DecisionRows(m.FeatureIdx)
		dValRows, dValLabels = val.DecisionRows(m.FeatureIdx)
	}
	if len(dTrainRows) == 0 || len(dValRows) == 0 {
		return nil, rep, fmt.Errorf("core: dataset too small for a train/val split")
	}
	var err error
	if m.DecisionScaler, err = counters.FitScaler(dTrainRows); err != nil {
		return nil, rep, err
	}
	dSizes := append([]int{len(m.FeatureIdx) + 1}, opts.Arch.DecisionHidden...)
	dSizes = append(dSizes, ds.Levels)
	if m.Decision, err = nn.NewMLP(dSizes, rand.New(rand.NewSource(opts.Seed))); err != nil {
		return nil, rep, err
	}
	dTrainSet := nn.ClassificationSet{X: m.DecisionScaler.TransformAll(dTrainRows), Labels: dTrainLabels}
	dValSet := nn.ClassificationSet{X: m.DecisionScaler.TransformAll(dValRows), Labels: dValLabels}
	if _, err = nn.TrainClassifier(m.Decision, dTrainSet, nn.TrainConfig{
		Epochs: opts.Epochs, BatchSize: opts.BatchSize,
		Optimizer: nn.NewAdam(opts.LearningRate), Seed: opts.Seed + 1,
	}); err != nil {
		return nil, rep, err
	}
	rep.Accuracy = nn.EvalClassifier(m.Decision, dValSet)

	// Calibrator head.
	cTrainRows, cTrainTargets := train.CalibratorRows(m.FeatureIdx)
	cValRows, cValTargets := val.CalibratorRows(m.FeatureIdx)
	if m.CalibScaler, err = counters.FitScaler(cTrainRows); err != nil {
		return nil, rep, err
	}
	m.TargetScale = meanAbs(cTrainTargets)
	if m.TargetScale <= 0 {
		m.TargetScale = 1
	}
	cSizes := append([]int{len(m.FeatureIdx) + 2}, opts.Arch.CalibratorHidden...)
	cSizes = append(cSizes, 1)
	if m.Calibrator, err = nn.NewMLP(cSizes, rand.New(rand.NewSource(opts.Seed+2))); err != nil {
		return nil, rep, err
	}
	cTrainSet := nn.RegressionSet{X: m.CalibScaler.TransformAll(cTrainRows), Y: scaleAll(cTrainTargets, 1/m.TargetScale)}
	if _, err = nn.TrainRegressor(m.Calibrator, cTrainSet, nn.TrainConfig{
		Epochs: opts.Epochs, BatchSize: opts.BatchSize,
		Optimizer: nn.NewAdam(opts.LearningRate), Seed: opts.Seed + 3,
	}); err != nil {
		return nil, rep, err
	}
	cValSet := nn.RegressionSet{X: m.CalibScaler.TransformAll(cValRows), Y: scaleAll(cValTargets, 1/m.TargetScale)}
	rep.MAPE = nn.EvalRegressor(m.Calibrator, cValSet)

	rep.FLOPs = m.FLOPs()
	return m, rep, nil
}

// decisionRows picks the Decision head's row formulation.
func decisionRows(ds *datagen.Dataset, featureIdx []int, presetSamples int, seed int64) ([][]float64, []int) {
	if presetSamples > 0 {
		return ds.DecisionRowsPresetSampled(featureIdx, presetSamples, seed)
	}
	return ds.DecisionRows(featureIdx)
}

// DecisionRowsFor assembles Decision-head rows and labels from ds using
// the same formulation m was trained with — required by any further
// training of the head (e.g. fine-tuning after pruning) so its task does
// not silently change.
func (m *Model) DecisionRowsFor(ds *datagen.Dataset, seed int64) ([][]float64, []int) {
	return decisionRows(ds, m.FeatureIdx, m.PresetSamples, seed)
}

// Evaluate recomputes a model's accuracy and MAPE on a dataset (e.g.
// after compression or pruning), using the same Decision-row formulation
// the model was trained with.
func Evaluate(m *Model, ds *datagen.Dataset) Report {
	rep := Report{FLOPs: m.FLOPs(), ValSamples: len(ds.Samples)}
	dRows, dLabels := decisionRows(ds, m.FeatureIdx, m.PresetSamples, 12345)
	rep.Accuracy = nn.EvalClassifier(m.Decision, nn.ClassificationSet{
		X: m.DecisionScaler.TransformAll(dRows), Labels: dLabels,
	})
	cRows, cTargets := ds.CalibratorRows(m.FeatureIdx)
	rep.MAPE = nn.EvalRegressor(m.Calibrator, nn.RegressionSet{
		X: m.CalibScaler.TransformAll(cRows), Y: scaleAll(cTargets, 1/m.TargetScale),
	})
	return rep
}

func meanAbs(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s / float64(len(v))
}

func scaleAll(v []float64, k float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}
