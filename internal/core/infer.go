package core

import (
	"fmt"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/nn"
)

// Inference is a reusable inference context over a Model: it owns the
// feature-selection, scaling, and backend scratch buffers so that
// steady-state decisions allocate nothing — the serving hot path. All
// inference routes through the model's infer.Backend pair (float64 or
// int8), never nn.MLP directly. The underlying Model and its backends
// are only read, so any number of Inference contexts may share one Model
// concurrently; the Inference itself belongs to a single goroutine at a
// time (pool one per worker, e.g. with sync.Pool).
type Inference struct {
	m   *Model
	dBk infer.Backend // decision head
	cBk infer.Backend // calibrator head

	dRow, cRow []float64 // raw [features..., preset(, level)] rows
	dStd, cStd []float64 // standardized copies
	dScratch   infer.Scratch
	cScratch   infer.Scratch
	lastLogits []float64 // decision-head output of the last DecideLevel

	// Batch state (BeginBatch/SetBatchRow/DecideBatch). dIn and cIn are
	// standardized backend inputs; raws keeps each row's raw derived
	// features + preset for provenance capture.
	dIn     nn.Batch
	cIn     nn.Batch
	raws    nn.Batch
	bLevels []int
	bPreds  []float64
	bLogits *nn.Batch
	bRows   int
}

// NewInference builds an inference context bound to m.
func NewInference(m *Model) *Inference {
	inf := &Inference{}
	inf.Bind(m)
	return inf
}

// Model returns the currently bound model.
func (inf *Inference) Model() *Model { return inf.m }

// Bind points the context at a (possibly different) model, resizing the
// scratch buffers if the feature set changed. Buffers are retained across
// rebinds, so hot-swapping models keeps the path allocation-free; binding
// the already-bound model is a pointer compare and nothing else, which is
// what the serving engine does once per batch.
//
// Bind panics if the model's declared backend cannot be built — serving
// paths validate with Model.EnsureBackends before publishing a model, so
// the panic only fires when that contract is broken (and the serving
// engine's per-batch recovery degrades it to a fallback decision).
func (inf *Inference) Bind(m *Model) {
	if inf.m == m && inf.dBk != nil {
		return
	}
	bk, err := m.backends()
	if err != nil {
		panic(fmt.Sprintf("core: binding unvalidated model (call EnsureBackends first): %v", err))
	}
	inf.m = m
	inf.dBk, inf.cBk = bk.decision, bk.calibrator
	nd, nc := m.NumFeatures()+1, m.NumFeatures()+2
	if cap(inf.dRow) < nd {
		inf.dRow = make([]float64, nd)
		inf.dStd = make([]float64, nd)
	}
	if cap(inf.cRow) < nc {
		inf.cRow = make([]float64, nc)
		inf.cStd = make([]float64, nc)
	}
	inf.dRow, inf.dStd = inf.dRow[:nd], inf.dStd[:nd]
	inf.cRow, inf.cStd = inf.cRow[:nc], inf.cStd[:nc]
}

// Backend returns the kind of backend the context currently infers with.
func (inf *Inference) Backend() infer.Kind { return inf.dBk.Describe().Kind }

// DecideLevel is Model.DecideLevel without allocations.
func (inf *Inference) DecideLevel(fullFeatures []float64, preset float64) int {
	m := inf.m
	n := len(m.FeatureIdx)
	counters.SelectInto(fullFeatures, m.FeatureIdx, inf.dRow)
	inf.dRow[n] = preset
	m.DecisionScaler.TransformInto(inf.dRow, inf.dStd)
	logits := inf.dBk.Forward(inf.dStd, &inf.dScratch)
	inf.lastLogits = logits
	return nn.Argmax(logits)
}

// Logits returns the Decision head's raw output from the most recent
// DecideLevel/Decide call (one score per level), for provenance capture.
// The slice aliases the inference scratch: read it before the next call
// and do not retain it.
func (inf *Inference) Logits() []float64 { return inf.lastLogits }

// DecisionRow returns the raw (unscaled) input row of the most recent
// DecideLevel/Decide call: the selected features followed by the preset.
// Like Logits, it aliases scratch and must not be retained.
func (inf *Inference) DecisionRow() []float64 { return inf.dRow }

// PredictInstructions is Model.PredictInstructions without allocations.
func (inf *Inference) PredictInstructions(fullFeatures []float64, preset float64, level int) float64 {
	m := inf.m
	n := len(m.FeatureIdx)
	counters.SelectInto(fullFeatures, m.FeatureIdx, inf.cRow)
	inf.cRow[n] = preset
	inf.cRow[n+1] = float64(level)
	m.CalibScaler.TransformInto(inf.cRow, inf.cStd)
	out := inf.cBk.Forward(inf.cStd, &inf.cScratch)
	pred := out[0] * m.TargetScale
	if pred < 0 {
		return 0
	}
	return pred
}

// Decide runs one combined serving step: pick the next epoch's operating
// level and predict its instruction count (the pair the ASIC engine
// produces per 10 µs epoch).
func (inf *Inference) Decide(fullFeatures []float64, preset float64) (level int, predInstr float64) {
	level = inf.DecideLevel(fullFeatures, preset)
	return level, inf.PredictInstructions(fullFeatures, preset, level)
}

// BeginBatch prepares the context for a decision batch of up to n rows.
// Fill rows with SetBatchRow, run them with DecideBatch, then read the
// per-row results through the Batch* accessors. Steady-state batches
// allocate nothing once the buffers have grown to the engine's chunk
// size. Row i of every accessor corresponds to SetBatchRow's i, and each
// row's results are identical to what Decide would return for it.
func (inf *Inference) BeginBatch(n int) {
	m := inf.m
	nf := m.NumFeatures()
	inf.dIn.Reset(n, nf+1)
	inf.cIn.Reset(n, nf+2)
	inf.raws.Reset(n, nf+1)
	if cap(inf.bLevels) < n {
		inf.bLevels = make([]int, n)
		inf.bPreds = make([]float64, n)
	}
	inf.bLevels = inf.bLevels[:n]
	inf.bPreds = inf.bPreds[:n]
	inf.bLogits = nil
	inf.bRows = 0
}

// SetBatchRow stages row i: selects and standardizes the decision-head
// input and keeps the raw derived row for provenance. Rows 0..n-1 must
// all be set before DecideBatch.
func (inf *Inference) SetBatchRow(i int, fullFeatures []float64, preset float64) {
	m := inf.m
	nf := len(m.FeatureIdx)
	raw := inf.raws.Row(i)
	counters.SelectInto(fullFeatures, m.FeatureIdx, raw)
	raw[nf] = preset
	m.DecisionScaler.TransformInto(raw, inf.dIn.Row(i))
	if i >= inf.bRows {
		inf.bRows = i + 1
	}
}

// DecideBatch runs the staged rows through both heads: one batched
// decision inference (argmax per row), then one batched calibration
// inference with each row's chosen level appended — each row under the
// preset it was staged with, matching what per-row Decide calls would
// produce.
func (inf *Inference) DecideBatch() {
	m := inf.m
	n := inf.bRows
	nf := len(m.FeatureIdx)
	if n != inf.dIn.Rows {
		// Partial batches run with exactly the staged rows.
		inf.dIn.Rows = n
		inf.dIn.Data = inf.dIn.Data[:n*(nf+1)]
		inf.cIn.Rows = n
		inf.cIn.Data = inf.cIn.Data[:n*(nf+2)]
		inf.raws.Rows = n
		inf.raws.Data = inf.raws.Data[:n*(nf+1)]
		inf.bLevels = inf.bLevels[:n]
		inf.bPreds = inf.bPreds[:n]
	}
	logits := inf.dBk.ForwardBatch(&inf.dIn, &inf.dScratch)
	inf.bLogits = logits
	for i := 0; i < n; i++ {
		inf.bLevels[i] = nn.Argmax(logits.Row(i))
	}
	// Stage the calibrator batch: same raw features + preset, plus the
	// level just chosen, standardized by the calibrator's scaler.
	for i := 0; i < n; i++ {
		raw := inf.raws.Row(i)
		inf.cRow = inf.cRow[:nf+2]
		copy(inf.cRow, raw[:nf])
		inf.cRow[nf] = raw[nf]
		inf.cRow[nf+1] = float64(inf.bLevels[i])
		m.CalibScaler.TransformInto(inf.cRow, inf.cIn.Row(i))
	}
	preds := inf.cBk.ForwardBatch(&inf.cIn, &inf.cScratch)
	for i := 0; i < n; i++ {
		pred := preds.Row(i)[0] * m.TargetScale
		if pred < 0 {
			pred = 0
		}
		inf.bPreds[i] = pred
	}
}

// BatchLen returns how many rows the last DecideBatch ran.
func (inf *Inference) BatchLen() int { return inf.bRows }

// BatchLevel returns row i's chosen operating level.
func (inf *Inference) BatchLevel(i int) int { return inf.bLevels[i] }

// BatchPredInstr returns row i's predicted next-epoch instruction count.
func (inf *Inference) BatchPredInstr(i int) float64 { return inf.bPreds[i] }

// BatchLogits returns row i's decision logits. Like Logits, the slice
// aliases scratch: read before the next inference, do not retain.
func (inf *Inference) BatchLogits(i int) []float64 { return inf.bLogits.Row(i) }

// BatchDerived returns row i's raw derived row (selected features then
// preset), aliasing scratch like DecisionRow.
func (inf *Inference) BatchDerived(i int) []float64 { return inf.raws.Row(i) }
