package core

import (
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/nn"
)

// Inference is a reusable inference context over a Model: it owns the
// feature-selection, scaling, and activation scratch buffers so that
// steady-state decisions allocate nothing — the serving hot path. The
// underlying Model is only read, so any number of Inference contexts may
// share one Model concurrently; the Inference itself belongs to a single
// goroutine at a time (pool one per worker, e.g. with sync.Pool).
type Inference struct {
	m *Model

	dRow, cRow []float64 // raw [features..., preset(, level)] rows
	dStd, cStd []float64 // standardized copies
	dScratch   nn.Scratch
	cScratch   nn.Scratch
	lastLogits []float64 // decision-head output of the last DecideLevel
}

// NewInference builds an inference context bound to m.
func NewInference(m *Model) *Inference {
	inf := &Inference{}
	inf.Bind(m)
	return inf
}

// Model returns the currently bound model.
func (inf *Inference) Model() *Model { return inf.m }

// Bind points the context at a (possibly different) model, resizing the
// scratch buffers if the feature set changed. Buffers are retained across
// rebinds, so hot-swapping models keeps the path allocation-free.
func (inf *Inference) Bind(m *Model) {
	inf.m = m
	nd, nc := m.NumFeatures()+1, m.NumFeatures()+2
	if cap(inf.dRow) < nd {
		inf.dRow = make([]float64, nd)
		inf.dStd = make([]float64, nd)
	}
	if cap(inf.cRow) < nc {
		inf.cRow = make([]float64, nc)
		inf.cStd = make([]float64, nc)
	}
	inf.dRow, inf.dStd = inf.dRow[:nd], inf.dStd[:nd]
	inf.cRow, inf.cStd = inf.cRow[:nc], inf.cStd[:nc]
}

// DecideLevel is Model.DecideLevel without allocations.
func (inf *Inference) DecideLevel(fullFeatures []float64, preset float64) int {
	m := inf.m
	n := len(m.FeatureIdx)
	counters.SelectInto(fullFeatures, m.FeatureIdx, inf.dRow)
	inf.dRow[n] = preset
	m.DecisionScaler.TransformInto(inf.dRow, inf.dStd)
	logits := m.Decision.ForwardScratch(inf.dStd, &inf.dScratch)
	inf.lastLogits = logits
	return nn.Argmax(logits)
}

// Logits returns the Decision head's raw output from the most recent
// DecideLevel/Decide call (one score per level), for provenance capture.
// The slice aliases the inference scratch: read it before the next call
// and do not retain it.
func (inf *Inference) Logits() []float64 { return inf.lastLogits }

// DecisionRow returns the raw (unscaled) input row of the most recent
// DecideLevel/Decide call: the selected features followed by the preset.
// Like Logits, it aliases scratch and must not be retained.
func (inf *Inference) DecisionRow() []float64 { return inf.dRow }

// PredictInstructions is Model.PredictInstructions without allocations.
func (inf *Inference) PredictInstructions(fullFeatures []float64, preset float64, level int) float64 {
	m := inf.m
	n := len(m.FeatureIdx)
	counters.SelectInto(fullFeatures, m.FeatureIdx, inf.cRow)
	inf.cRow[n] = preset
	inf.cRow[n+1] = float64(level)
	m.CalibScaler.TransformInto(inf.cRow, inf.cStd)
	out := m.Calibrator.ForwardScratch(inf.cStd, &inf.cScratch)
	pred := out[0] * m.TargetScale
	if pred < 0 {
		return 0
	}
	return pred
}

// Decide runs one combined serving step: pick the next epoch's operating
// level and predict its instruction count (the pair the ASIC engine
// produces per 10 µs epoch).
func (inf *Inference) Decide(fullFeatures []float64, preset float64) (level int, predInstr float64) {
	level = inf.DecideLevel(fullFeatures, preset)
	return level, inf.PredictInstructions(fullFeatures, preset, level)
}
