package datagen

import (
	"bytes"
	"sync"
	"testing"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
)

// testKernel is memory+compute mixed, long enough for a few epochs on the
// tiny config.
func testKernel() isa.Kernel {
	prog := isa.Program{
		Body: []isa.Instruction{
			{Op: isa.OpLoadGlobal, Dst: 1, Mem: isa.MemSpec{
				Base: 0x1000_0000, FootprintBytes: 8 << 20, StrideBytes: 256,
				WarpStrideBytes: 1 << 14, CoalescedLines: 4, Pattern: isa.PatternSequential,
			}},
			{Op: isa.OpFAlu, Dst: 2, SrcA: 1},
			{Op: isa.OpFAlu, Dst: 3, SrcA: 2},
			{Op: isa.OpFAlu, Dst: 4, SrcA: 3},
			{Op: isa.OpIAlu, Dst: 5, SrcA: 5},
		},
		Iterations: 2500,
	}
	return isa.Kernel{Name: "dg-test", WarpsPerCluster: 8, Programs: []isa.Program{prog}}
}

var (
	sharedOnce sync.Once
	sharedDS   *Dataset
	sharedErr  error
)

// sharedDataset generates the test corpus once; several tests only read it.
func sharedDataset(t *testing.T) *Dataset {
	t.Helper()
	sharedOnce.Do(func() {
		sharedDS = &Dataset{}
		sharedErr = Generate(testConfig(), testKernel(), sharedDS, nil)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDS
}

func testConfig() Config {
	sim := gpusim.SmallConfig()
	sim.Clusters = 2
	cfg := DefaultConfig(sim)
	cfg.BreakpointPs = 30_000_000 // 30 µs
	cfg.MaxBreakpoints = 1
	cfg.FeatureLevels = []int{0, sim.OPs.Default()}
	return cfg
}

func TestGenerateShape(t *testing.T) {
	cfg := testConfig()
	ds := sharedDataset(t)
	_ = cfg
	levels := cfg.Sim.OPs.Len()
	// 1 breakpoint × 2 feature levels × 6 levels × 2 clusters.
	want := 1 * 2 * levels * cfg.Sim.Clusters
	if len(ds.Samples) != want {
		t.Fatalf("got %d samples, want %d", len(ds.Samples), want)
	}
	if len(ds.CounterNames) != counters.Num {
		t.Fatalf("counter names = %d, want %d", len(ds.CounterNames), counters.Num)
	}
	for i, s := range ds.Samples {
		if len(s.Features) != counters.Num {
			t.Fatalf("sample %d has %d features", i, len(s.Features))
		}
		if s.Level < 0 || s.Level >= levels {
			t.Fatalf("sample %d level %d out of range", i, s.Level)
		}
	}
}

func TestGenerateDefaultLevelHasZeroLoss(t *testing.T) {
	cfg := testConfig()
	ds := sharedDataset(t)
	_ = cfg
	def := cfg.Sim.OPs.Default()
	for _, s := range ds.Samples {
		if s.Level == def && (s.PerfLoss > 1e-9 || s.PerfLoss < -1e-9) {
			t.Fatalf("default-level sample has loss %g, want 0 (it is its own reference)", s.PerfLoss)
		}
	}
}

func TestGenerateLossMonotoneTendency(t *testing.T) {
	// Window-normalized loss at the minimum level must be at least the
	// loss at the default level for the same breakpoint/feature window.
	cfg := testConfig()
	ds := sharedDataset(t)
	_ = cfg
	type key struct {
		bp, cluster int
		featIPC     float64
	}
	byKey := map[key]map[int]float64{}
	for _, s := range ds.Samples {
		k := key{s.Breakpoint, s.Cluster, s.Features[counters.IdxIPC]}
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][s.Level] = s.PerfLoss
	}
	for k, losses := range byKey {
		if losses[0] < losses[cfg.Sim.OPs.Default()]-0.02 {
			t.Fatalf("group %+v: min-level loss %g below default-level loss %g", k, losses[0], losses[cfg.Sim.OPs.Default()])
		}
	}
}

func TestGenerateScalingInstrPositive(t *testing.T) {
	cfg := testConfig()
	ds := sharedDataset(t)
	_ = cfg
	positive := 0
	for _, s := range ds.Samples {
		if s.ScalingInstr > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("no sample recorded scaling-window instructions")
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := testConfig()
	cfg.BreakpointPs = 15_000_000 // not a multiple of 10 µs epochs
	if err := Generate(cfg, testKernel(), &Dataset{}, nil); err == nil {
		t.Fatal("non-epoch-aligned breakpoint accepted")
	}
	cfg = testConfig()
	cfg.ClusterStride = 0
	if err := Generate(cfg, testKernel(), &Dataset{}, nil); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	ds := sharedDataset(t)
	_ = cfg
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(ds.Samples) {
		t.Fatalf("round trip lost samples: %d vs %d", len(got.Samples), len(ds.Samples))
	}
	if got.Samples[3].PerfLoss != ds.Samples[3].PerfLoss {
		t.Fatal("sample data corrupted in round trip")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{"levels":6,"samples":[]}`, // no counter names
		`{"counter_names":["a"],"levels":6,"samples":[{"features":[1,2]}]}`,         // feature len mismatch
		`{"counter_names":["a"],"levels":2,"samples":[{"level":5,"features":[1]}]}`, // level out of range
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("corrupt dataset %d accepted", i)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	ds := &Dataset{CounterNames: []string{"a"}, Levels: 2}
	for i := 0; i < 100; i++ {
		ds.Samples = append(ds.Samples, Sample{Level: i % 2, Features: []float64{float64(i)}})
	}
	train, val := ds.Split(0.8, 1)
	if len(train.Samples) != 80 || len(val.Samples) != 20 {
		t.Fatalf("split sizes %d/%d, want 80/20", len(train.Samples), len(val.Samples))
	}
	// Same seed → same split.
	train2, _ := ds.Split(0.8, 1)
	for i := range train.Samples {
		if train.Samples[i].Features[0] != train2.Samples[i].Features[0] {
			t.Fatal("split not deterministic")
		}
	}
	// Union check: every original feature value appears exactly once.
	seen := map[float64]int{}
	for _, s := range train.Samples {
		seen[s.Features[0]]++
	}
	for _, s := range val.Samples {
		seen[s.Features[0]]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("sample %g appears %d times", v, n)
		}
	}
}

func TestDecisionAndCalibratorRows(t *testing.T) {
	ds := &Dataset{CounterNames: []string{"a", "b", "c"}, Levels: 3}
	ds.Samples = append(ds.Samples, Sample{
		Level: 2, Features: []float64{10, 20, 30}, PerfLoss: 0.15, ScalingInstr: 999,
	})
	rows, labels := ds.DecisionRows([]int{0, 2})
	if len(rows) != 1 || len(rows[0]) != 3 {
		t.Fatalf("decision row shape wrong: %v", rows)
	}
	if rows[0][0] != 10 || rows[0][1] != 30 || rows[0][2] != 0.15 || labels[0] != 2 {
		t.Fatalf("decision row content wrong: %v label %d", rows[0], labels[0])
	}
	crows, targets := ds.CalibratorRows([]int{1})
	if len(crows[0]) != 3 || crows[0][0] != 20 || crows[0][1] != 0.15 || crows[0][2] != 2 {
		t.Fatalf("calibrator row wrong: %v", crows[0])
	}
	if targets[0] != 999 {
		t.Fatalf("calibrator target = %g", targets[0])
	}
}

func TestFilterKernels(t *testing.T) {
	ds := &Dataset{CounterNames: []string{"a"}, Levels: 2}
	ds.Samples = []Sample{
		{Kernel: "x", Features: []float64{1}},
		{Kernel: "y", Features: []float64{2}},
		{Kernel: "x", Features: []float64{3}},
	}
	got := ds.FilterKernels(func(name string) bool { return name == "x" })
	if len(got.Samples) != 2 {
		t.Fatalf("filtered %d samples, want 2", len(got.Samples))
	}
}

func TestDecisionRowsPresetSampled(t *testing.T) {
	// One complete group with known, monotone losses per level.
	ds := &Dataset{CounterNames: counters.Names(), Levels: 4}
	feats := make([]float64, counters.Num)
	feats[counters.IdxIPC] = 1.5
	losses := []float64{0.30, 0.15, 0.05, 0.0}
	for lvl, loss := range losses {
		ds.Samples = append(ds.Samples, Sample{
			Kernel: "k", Breakpoint: 1, Cluster: 0, Level: lvl,
			Features: feats, PerfLoss: loss, ScalingInstr: 100,
		})
	}
	rows, labels := ds.DecisionRowsPresetSampled(nil, 16, 1)
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	for i, row := range rows {
		p := row[len(row)-1]
		// Recompute the expected label: minimum level with loss <= p.
		want := ds.Levels - 1
		for lvl, loss := range losses {
			if loss <= p {
				want = lvl
				break
			}
		}
		if labels[i] != want {
			t.Fatalf("row %d preset %.3f: label %d, want %d", i, p, labels[i], want)
		}
	}
}

func TestDecisionRowsPresetSampledSkipsIncompleteGroups(t *testing.T) {
	ds := &Dataset{CounterNames: counters.Names(), Levels: 4}
	feats := make([]float64, counters.Num)
	// Only 2 of 4 levels present: the group is incomplete and must be
	// skipped rather than mislabelled.
	for _, lvl := range []int{0, 3} {
		ds.Samples = append(ds.Samples, Sample{
			Kernel: "k", Level: lvl, Features: feats, PerfLoss: 0.1,
		})
	}
	rows, _ := ds.DecisionRowsPresetSampled(nil, 8, 1)
	if len(rows) != 0 {
		t.Fatalf("incomplete group produced %d rows", len(rows))
	}
}

func TestDecisionRowsPresetSampledSeparatesWindows(t *testing.T) {
	// Two groups sharing (kernel, breakpoint, cluster) but with different
	// feature vectors (e.g. feature windows at different OPs) must not
	// merge.
	ds := &Dataset{CounterNames: counters.Names(), Levels: 2}
	for g := 0; g < 2; g++ {
		feats := make([]float64, counters.Num)
		feats[counters.IdxIPC] = float64(g + 1)
		for lvl := 0; lvl < 2; lvl++ {
			ds.Samples = append(ds.Samples, Sample{
				Kernel: "k", Breakpoint: 1, Cluster: 0, Level: lvl,
				Features: feats, PerfLoss: float64(1-lvl) * 0.2,
			})
		}
	}
	rows, _ := ds.DecisionRowsPresetSampled(nil, 4, 1)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (two separate groups)", len(rows))
	}
}
