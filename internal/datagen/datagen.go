// Package datagen implements the paper's data-generation methodology
// (Section III-A): run each benchmark at the default V/f point; every
// ~100 µs establish a breakpoint; use the next 10 µs epoch as the feature
// collection window; then replay the following 10 µs once per operating
// point (the frequency-scaling window), reverting to the default
// afterwards so total workload stays constant; and label each replay with
// the window-normalized performance loss (T_f − T_ref)/T_window, with the
// numerator measured over the *whole remaining execution*, not just the
// 20 µs — capturing the delayed effects of a frequency change. Beyond the
// paper, feature windows are additionally collected at every operating
// point so the corpus covers the closed-loop feature distribution the
// runtime controller actually observes.
//
// The simulator's Clone support makes the replay exact: every operating
// point continues from the identical architectural state.
package datagen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/runner"
	"ssmdvfs/internal/telemetry"
)

// Sample is one training example: the feature window's counters for one
// cluster, the operating point applied in the scaling window, the
// resulting program-level performance loss, and the instructions that
// cluster executed during the scaling window (the Calibrator target).
type Sample struct {
	Kernel     string    `json:"kernel"`
	Breakpoint int       `json:"breakpoint"`
	Cluster    int       `json:"cluster"`
	Level      int       `json:"level"`
	Features   []float64 `json:"features"`
	PerfLoss   float64   `json:"perf_loss"`
	// ScalingInstr is the instruction count this cluster completed during
	// the 10 µs frequency-scaling window.
	ScalingInstr float64 `json:"scaling_instr"`
}

// Dataset is the full generated corpus.
type Dataset struct {
	CounterNames []string `json:"counter_names"`
	Levels       int      `json:"levels"`
	Samples      []Sample `json:"samples"`
}

// Config controls generation.
type Config struct {
	// Sim is the GPU configuration; Sim.EpochPs is both the feature window
	// and the scaling window length (the paper's 10 µs).
	Sim gpusim.Config
	// BreakpointPs is the interval between breakpoints (the paper's
	// ~100 µs).
	BreakpointPs int64
	// MaxBreakpoints bounds breakpoints per kernel (0 = unlimited).
	MaxBreakpoints int
	// MaxRunPs is a safety bound on any single simulation.
	MaxRunPs int64
	// ClusterStride records samples from every k-th cluster (1 = all);
	// clusters at the same breakpoint see near-identical dynamics, so
	// subsampling cuts dataset size without losing diversity.
	ClusterStride int
	// FeatureLevels are the operating points at which feature windows are
	// collected (nil = every level). The paper collects features only at
	// the default OP; the runtime controller, however, observes feature
	// windows executed at whatever level it previously chose, so covering
	// all levels closes the train/inference distribution gap.
	FeatureLevels []int
}

func allLevels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// DefaultConfig returns the paper's setup on the given GPU configuration.
func DefaultConfig(sim gpusim.Config) Config {
	return Config{
		Sim:           sim,
		BreakpointPs:  100_000_000, // 100 µs
		MaxRunPs:      5_000_000_000_000,
		ClusterStride: 1,
	}
}

func (c Config) validate() error {
	if c.BreakpointPs <= 0 {
		return fmt.Errorf("datagen: BreakpointPs must be positive")
	}
	if c.BreakpointPs%c.Sim.EpochPs != 0 {
		return fmt.Errorf("datagen: BreakpointPs (%d) must be a multiple of the epoch length (%d)",
			c.BreakpointPs, c.Sim.EpochPs)
	}
	if c.MaxRunPs <= 0 {
		return fmt.Errorf("datagen: MaxRunPs must be positive")
	}
	if c.ClusterStride <= 0 {
		return fmt.Errorf("datagen: ClusterStride must be positive")
	}
	return c.Sim.Validate()
}

// epochRecorder captures per-cluster stats for a single epoch index.
type epochRecorder struct {
	epoch int
	stats map[int]gpusim.EpochStats
}

func newEpochRecorder(epoch int) *epochRecorder {
	return &epochRecorder{epoch: epoch, stats: make(map[int]gpusim.EpochStats)}
}

func (r *epochRecorder) observe(s gpusim.EpochStats) {
	if s.Epoch == r.epoch {
		r.stats[s.Cluster] = s
	}
}

// generate runs the methodology over one kernel and appends samples to
// the dataset. It is a pure shard function: its output depends only on
// cfg and kernel, which is what lets RunSuite farm kernels out to a
// worker pool and still merge a byte-identical corpus.
func generate(cfg Config, kernel isa.Kernel, ds *Dataset, log *telemetry.Logger) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	logf := log.Logf
	epochPs := cfg.Sim.EpochPs
	levels := cfg.Sim.OPs.Len()
	defaultLevel := cfg.Sim.OPs.Default()

	if ds.CounterNames == nil {
		ds.CounterNames = counters.Names()
		ds.Levels = levels
	}

	// Reference run: the whole program at the default operating point.
	ref, err := gpusim.New(cfg.Sim, kernel)
	if err != nil {
		return err
	}
	master := ref.Clone()
	refRes := ref.Run(cfg.MaxRunPs)
	if !refRes.Completed {
		return fmt.Errorf("datagen: kernel %q did not complete within MaxRunPs at default OP", kernel.Name)
	}
	t0 := refRes.ExecTimePs
	logf("datagen: %s T0=%.1fus", kernel.Name, float64(t0)/1e6)

	// Walk the master simulation breakpoint by breakpoint. A breakpoint at
	// time b uses epoch [b, b+10µs) as the feature window and epoch
	// [b+10µs, b+20µs) as the scaling window, so the last usable
	// breakpoint leaves at least two epochs before completion. Programs
	// too short for the configured interval fall back to one breakpoint
	// per epoch so short-duration tasks still contribute data.
	interval := cfg.BreakpointPs
	if interval+2*epochPs >= t0 {
		interval = epochPs
	}
	nBreaks := 0
	for b := interval; b+2*epochPs < t0; b += interval {
		if cfg.MaxBreakpoints > 0 && nBreaks >= cfg.MaxBreakpoints {
			break
		}
		nBreaks++

		// Advance the master (always at the default OP) to the breakpoint.
		master.RunUntil(b)

		featEpoch := int(b / epochPs)
		scaleEpoch := featEpoch + 1
		featureLevels := cfg.FeatureLevels
		if len(featureLevels) == 0 {
			featureLevels = allLevels(levels)
		}

		// Runtime feature windows execute at whatever OP the controller
		// last chose, not only the default, so the corpus covers feature
		// windows at every requested level (the paper collects only at
		// the default; see DESIGN.md for why the closed-loop distribution
		// needs the extension).
		for _, featLevel := range featureLevels {
			fsim := master.Clone()
			fsim.ForceLevel(featLevel)
			rec := newEpochRecorder(featEpoch)
			fsim.SetObserver(rec.observe)
			fsim.RunUntil(b + epochPs + 1)
			fsim.SetObserver(nil)
			if len(rec.stats) == 0 {
				return fmt.Errorf("datagen: %s breakpoint %d: feature window epoch %d not observed",
					kernel.Name, nBreaks, featEpoch)
			}

			// Replay the continuation once per operating point, recording
			// completion time and scaling-window instruction counts.
			execPs := make([]int64, levels)
			screcs := make([]*epochRecorder, levels)
			for level := 0; level < levels; level++ {
				replay := fsim.Clone()
				srec := newEpochRecorder(scaleEpoch)
				replay.SetObserver(srec.observe)
				replay.ForceLevel(level)
				replay.RunUntil(b + 2*epochPs + 1)
				replay.ForceLevel(defaultLevel)
				replay.SetObserver(nil)
				res := replay.Run(cfg.MaxRunPs)
				if !res.Completed {
					return fmt.Errorf("datagen: %s breakpoint %d level %d: replay did not complete",
						kernel.Name, nBreaks, level)
				}
				execPs[level] = res.ExecTimePs
				screcs[level] = srec
			}

			// The label is the *window-normalized* performance loss: the
			// extra execution time caused by scaling one 10 µs window —
			// measured over the whole remaining run, so delayed effects
			// (stalled warps resuming epochs later) are included — divided
			// by the window length, relative to the replay whose scaling
			// window ran at the default OP. Normalizing by the window
			// rather than by T0 makes the label compose: if every epoch's
			// decision keeps its window-local loss under the preset,
			// program-level loss stays under the preset too, which is
			// exactly the contract the runtime controller needs.
			refPs := execPs[defaultLevel]
			for level := 0; level < levels; level++ {
				perfLoss := float64(execPs[level]-refPs) / float64(epochPs)
				for c := 0; c < cfg.Sim.Clusters; c += cfg.ClusterStride {
					fs, ok := rec.stats[c]
					if !ok {
						continue
					}
					ss := screcs[level].stats[c]
					ds.Samples = append(ds.Samples, Sample{
						Kernel:       kernel.Name,
						Breakpoint:   nBreaks,
						Cluster:      c,
						Level:        level,
						Features:     counters.FromStats(fs),
						PerfLoss:     perfLoss,
						ScalingInstr: float64(ss.Instructions),
					})
				}
				logf("datagen: %s bp=%d feat=%d level=%d loss=%+.3f%%",
					kernel.Name, nBreaks, featLevel, level, perfLoss*100)
			}
		}
	}
	if nBreaks == 0 {
		return fmt.Errorf("datagen: kernel %q too short for any breakpoint (T0=%d ps, interval=%d ps)",
			kernel.Name, t0, cfg.BreakpointPs)
	}
	return nil
}

// SuiteOptions configures a corpus build over a kernel set, mirroring
// experiments.PipelineOptions.
type SuiteOptions struct {
	// Config controls generation for every kernel.
	Config Config
	// Kernels contribute samples in order; each kernel is one shard of
	// the parallel run.
	Kernels []isa.Kernel
	// Logger receives progress lines (nil = quiet). It is shared across
	// shards, so lines from different kernels interleave under
	// parallelism; the dataset itself does not.
	Logger *telemetry.Logger
	// Telemetry, when non-nil, receives the runner's shard/utilization
	// metrics.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records one span per kernel plus the
	// runner's per-worker shard spans.
	Tracer *telemetry.Tracer
	// Workers bounds the worker pool (<= 0 = GOMAXPROCS). The merged
	// dataset is byte-identical at any worker count.
	Workers int
}

// RunSuite generates the corpus for every kernel in opts, sharding
// kernels across a bounded worker pool. Each shard generates into a
// private dataset; the shards are merged in kernel order, so the result
// serializes byte-identically to a serial run regardless of Workers.
// The first failing kernel cancels the remaining shards and is reported
// with its shard identity.
func RunSuite(opts SuiteOptions) (*Dataset, error) {
	if len(opts.Kernels) == 0 {
		return nil, fmt.Errorf("datagen: suite has no kernels")
	}
	if err := opts.Config.validate(); err != nil {
		return nil, err
	}
	parts, err := runner.Map(context.Background(), len(opts.Kernels), runner.Options{
		Name:      "datagen",
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
		Tracer:    opts.Tracer,
	}, func(_ context.Context, s runner.Shard) (*Dataset, error) {
		kernel := opts.Kernels[s.Index]
		sp := opts.Tracer.Start("datagen:" + kernel.Name)
		sp.SetCat("pipeline")
		defer sp.End()
		part := &Dataset{}
		if err := generate(opts.Config, kernel, part, opts.Logger); err != nil {
			return nil, err
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}
	return Merge(parts), nil
}

// Merge concatenates per-kernel datasets in order into one corpus. All
// parts must share the counter layout (they do when produced by
// generate); the first non-empty header wins.
func Merge(parts []*Dataset) *Dataset {
	out := &Dataset{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.CounterNames == nil {
			out.CounterNames = p.CounterNames
			out.Levels = p.Levels
		}
		out.Samples = append(out.Samples, p.Samples...)
	}
	return out
}

// Generate runs the methodology over one kernel and appends samples to
// the dataset.
//
// Deprecated: use RunSuite with a single-kernel SuiteOptions; this
// wrapper remains for pre-SuiteOptions callers.
func Generate(cfg Config, kernel isa.Kernel, ds *Dataset, logf func(format string, args ...any)) error {
	return generate(cfg, kernel, ds, telemetry.NewLoggerFunc(logf, nil))
}

// GenerateSuite runs the methodology over every kernel and returns the
// combined dataset.
//
// Deprecated: use RunSuite, which adds parallelism and telemetry.
func GenerateSuite(cfg Config, kernelList []isa.Kernel, logf func(string, ...any)) (*Dataset, error) {
	return RunSuite(SuiteOptions{
		Config:  cfg,
		Kernels: kernelList,
		Logger:  telemetry.NewLoggerFunc(logf, nil),
		Workers: 1,
	})
}

// FeatureMatrix returns all sample features as rows (shared backing with
// the dataset; callers must not mutate).
func (d *Dataset) FeatureMatrix() [][]float64 {
	rows := make([][]float64, len(d.Samples))
	for i := range d.Samples {
		rows[i] = d.Samples[i].Features
	}
	return rows
}

// Save writes the dataset as JSON.
func (d *Dataset) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(d)
}

// validate checks the decoded shape invariants Load and LoadFile rely
// on.
func (d *Dataset) validate() error {
	if len(d.CounterNames) == 0 {
		return fmt.Errorf("datagen: dataset has no counter names")
	}
	for i, s := range d.Samples {
		if len(s.Features) != len(d.CounterNames) {
			return fmt.Errorf("datagen: sample %d has %d features, want %d", i, len(s.Features), len(d.CounterNames))
		}
		if s.Level < 0 || s.Level >= d.Levels {
			return fmt.Errorf("datagen: sample %d level %d out of range [0,%d)", i, s.Level, d.Levels)
		}
	}
	return nil
}

// Load reads a dataset saved with Save and validates its shape.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("datagen: decoding dataset: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveFile writes the dataset to path atomically (temp file + rename).
func (d *Dataset) SaveFile(path string) error {
	return atomicfile.WriteJSON(path, d)
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	return atomicfile.ReadWith(path, Load)
}
