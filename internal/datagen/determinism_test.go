package datagen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/telemetry"
)

// suiteKernels returns a few distinct kernels so the parallel runner has
// real sharding to do.
func suiteKernels() []isa.Kernel {
	base := testKernel()
	var ks []isa.Kernel
	for i, name := range []string{"det-a", "det-b", "det-c"} {
		k := base
		k.Name = name
		k.WarpsPerCluster = 4 + 2*i
		ks = append(ks, k)
	}
	return ks
}

// suiteBytes runs the suite at the given worker count and returns the
// serialized dataset.
func suiteBytes(t *testing.T, workers int) []byte {
	t.Helper()
	ds, err := RunSuite(SuiteOptions{
		Config:  testConfig(),
		Kernels: suiteKernels(),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRunSuiteDeterministicAcrossWorkers is the tentpole's contract:
// sharding data generation across workers must produce byte-identical
// serialized output, regardless of worker count or scheduling. Run under
// -race in CI, it also proves the shards share no mutable state.
func TestRunSuiteDeterministicAcrossWorkers(t *testing.T) {
	serial := suiteBytes(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty serialized dataset")
	}
	for _, workers := range []int{2, 8} {
		if par := suiteBytes(t, workers); !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d produced different bytes than workers=1 (%d vs %d bytes)",
				workers, len(par), len(serial))
		}
	}
}

// TestRunSuiteMatchesDeprecatedGenerateSuite pins the compatibility
// wrapper: the old API must yield exactly the dataset the new one does.
func TestRunSuiteMatchesDeprecatedGenerateSuite(t *testing.T) {
	cfg := testConfig()
	ks := suiteKernels()
	oldDS, err := GenerateSuite(cfg, ks, nil)
	if err != nil {
		t.Fatal(err)
	}
	newDS, err := RunSuite(SuiteOptions{Config: cfg, Kernels: ks, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	oldRaw, err := oldDS.marshal()
	if err != nil {
		t.Fatal(err)
	}
	newRaw, err := newDS.marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oldRaw, newRaw) {
		t.Fatalf("deprecated wrapper and RunSuite disagree (%d vs %d bytes)", len(oldRaw), len(newRaw))
	}
}

// marshal serializes a dataset through Save for byte comparisons.
func (d *Dataset) marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestRunSuiteLoggerAndErrors exercises the options surface: a nil
// logger is quiet but valid, a func logger receives per-kernel lines
// (the Logger serializes concurrent shards), and invalid inputs fail up
// front.
func TestRunSuiteLoggerAndErrors(t *testing.T) {
	var lines []string
	logger := telemetry.NewLoggerFunc(func(format string, args ...any) {
		lines = append(lines, format)
	}, nil)
	if _, err := RunSuite(SuiteOptions{Config: testConfig(), Kernels: suiteKernels(), Workers: 4, Logger: logger}); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("logger saw no output")
	}
	if _, err := RunSuite(SuiteOptions{Config: testConfig()}); err == nil {
		t.Fatal("empty kernel list accepted")
	}
	bad := testConfig()
	bad.BreakpointPs = -1
	if _, err := RunSuite(SuiteOptions{Config: bad, Kernels: suiteKernels()[:1]}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
