package datagen

import (
	"math"
	"math/rand"

	"ssmdvfs/internal/counters"
)

// hashFeatures fingerprints a feature vector (FNV-1a over the float bits)
// so samples born from the same feature window group together even after
// dataset shuffles.
func hashFeatures(feats []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, f := range feats {
		b := math.Float64bits(f)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (b >> shift) & 0xff
			h *= prime
		}
	}
	return h
}

// DecisionRows assembles the Decision-maker's training matrix: each row is
// the selected feature columns followed by the sample's actual performance
// loss (the quantity that becomes the "performance loss preset" input at
// inference time). Labels are the operating-point levels applied in the
// scaling window.
func (d *Dataset) DecisionRows(featureIdx []int) (rows [][]float64, labels []int) {
	rows = make([][]float64, len(d.Samples))
	labels = make([]int, len(d.Samples))
	for i, s := range d.Samples {
		row := make([]float64, len(featureIdx)+1)
		copy(row, counters.Select(s.Features, featureIdx))
		row[len(featureIdx)] = s.PerfLoss
		rows[i] = row
		labels[i] = s.Level
	}
	return rows, labels
}

// DecisionRowsPresetSampled assembles a Decision-maker training matrix
// that targets the paper's classification criterion directly: "select
// the minimum frequency that satisfies a given performance loss preset".
// Samples generated from the same feature window carry the complete
// per-level loss vector, so for sampled presets p the exact label —
// the minimum level whose measured loss stays within p — is known. Each
// group contributes perGroup rows with presets spread over [0, maxLoss·1.1]
// plus deterministic jitter. Compared with DecisionRows (whose input is
// the actual loss each level caused), this covers the preset input space
// densely and teaches the min-level rule rather than the inverse
// loss→level mapping.
func (d *Dataset) DecisionRowsPresetSampled(featureIdx []int, perGroup int, seed int64) (rows [][]float64, labels []int) {
	if perGroup <= 0 {
		perGroup = 8
	}
	rng := rand.New(rand.NewSource(seed))

	type groupKey struct {
		kernel  string
		bp      int
		cluster int
		// Samples from the same feature window share an identical feature
		// vector; hashing it separates windows that share (kernel,
		// breakpoint, cluster) — e.g. feature windows collected at
		// different operating points.
		featHash uint64
	}
	type group struct {
		features []float64
		losses   []float64 // indexed by level
		have     []bool
	}
	groups := map[groupKey]*group{}
	var order []groupKey
	for i := range d.Samples {
		s := &d.Samples[i]
		k := groupKey{kernel: s.Kernel, bp: s.Breakpoint, cluster: s.Cluster, featHash: hashFeatures(s.Features)}
		g := groups[k]
		if g == nil {
			g = &group{
				features: s.Features,
				losses:   make([]float64, d.Levels),
				have:     make([]bool, d.Levels),
			}
			groups[k] = g
			order = append(order, k)
		}
		g.losses[s.Level] = s.PerfLoss
		g.have[s.Level] = true
	}

	for _, k := range order {
		g := groups[k]
		complete := true
		maxLoss := 0.0
		for lvl := 0; lvl < d.Levels; lvl++ {
			if !g.have[lvl] {
				complete = false
				break
			}
			if g.losses[lvl] > maxLoss {
				maxLoss = g.losses[lvl]
			}
		}
		if !complete {
			continue
		}
		span := maxLoss * 1.1
		if span <= 0 {
			span = 0.02
		}
		for s := 0; s < perGroup; s++ {
			// Stratified presets with jitter: cover [0, span] evenly but
			// not on a fixed grid.
			p := (float64(s) + rng.Float64()) / float64(perGroup) * span
			label := d.Levels - 1
			for lvl := 0; lvl < d.Levels; lvl++ {
				if g.losses[lvl] <= p {
					label = lvl
					break
				}
			}
			row := make([]float64, len(featureIdx)+1)
			copy(row, counters.Select(g.features, featureIdx))
			row[len(featureIdx)] = p
			rows = append(rows, row)
			labels = append(labels, label)
		}
	}
	return rows, labels
}

// CalibratorRows assembles the Calibrator's training matrix: the decision
// inputs plus the chosen level, with the scaling-window instruction count
// as the regression target.
func (d *Dataset) CalibratorRows(featureIdx []int) (rows [][]float64, targets []float64) {
	rows = make([][]float64, len(d.Samples))
	targets = make([]float64, len(d.Samples))
	for i, s := range d.Samples {
		row := make([]float64, len(featureIdx)+2)
		copy(row, counters.Select(s.Features, featureIdx))
		row[len(featureIdx)] = s.PerfLoss
		row[len(featureIdx)+1] = float64(s.Level)
		rows[i] = row
		targets[i] = s.ScalingInstr
	}
	return rows, targets
}

// Split partitions the dataset into train and validation subsets with the
// given train fraction, shuffling deterministically by seed. Samples from
// the same breakpoint stay correlated, so the shuffle is over samples —
// adequate for model selection, while kernel-level generalization is
// assessed by the held-out evaluation kernels.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, val *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(len(d.Samples))
	nTrain := int(float64(len(d.Samples)) * trainFrac)
	train = &Dataset{CounterNames: d.CounterNames, Levels: d.Levels}
	val = &Dataset{CounterNames: d.CounterNames, Levels: d.Levels}
	for i, idx := range order {
		if i < nTrain {
			train.Samples = append(train.Samples, d.Samples[idx])
		} else {
			val.Samples = append(val.Samples, d.Samples[idx])
		}
	}
	return train, val
}

// FilterKernels returns the subset of samples whose kernel name passes
// keep.
func (d *Dataset) FilterKernels(keep func(string) bool) *Dataset {
	out := &Dataset{CounterNames: d.CounterNames, Levels: d.Levels}
	for _, s := range d.Samples {
		if keep(s.Kernel) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}
