package epochtrace

import (
	"bytes"
	"strings"
	"testing"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
)

func sampleStats(epoch, cluster, level int) gpusim.EpochStats {
	return gpusim.EpochStats{
		Epoch:        epoch,
		Cluster:      cluster,
		StartPs:      int64(epoch) * 10_000_000,
		EndPs:        int64(epoch+1) * 10_000_000,
		Level:        level,
		OP:           clockdomain.TitanX().Point(level),
		Instructions: 12345,
		Cycles:       11000,
		ActiveCycles: 9000,
		StallMemLoad: 500,
		L1ReadHits:   300, L1ReadMisses: 100,
		DRAMLines: 42,
		DynPowerW: 4.5, StaticPowerW: 1.5,
		EnergyPJ:    6e7,
		WarpsActive: 8,
	}
}

func sampleTrace() *Trace {
	t := &Trace{}
	for e := 0; e < 5; e++ {
		for c := 0; c < 2; c++ {
			t.Observe(sampleStats(e, c, e%3))
		}
	}
	return t
}

func TestFromStats(t *testing.T) {
	r := FromStats(sampleStats(3, 1, 4))
	if r.Epoch != 3 || r.Cluster != 1 || r.Level != 4 {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.FreqMHz != 1100 || r.VoltageV != 1.1 {
		t.Fatalf("OP fields wrong: %+v", r)
	}
	if r.IPC <= 0 || r.PowerW != 6.0 || r.ActiveFrac <= 0 {
		t.Fatalf("derived fields wrong: %+v", r)
	}
	if r.L1MissRate != 0.25 {
		t.Fatalf("L1MissRate = %g, want 0.25", r.L1MissRate)
	}
	if r.StartUs != 30 {
		t.Fatalf("StartUs = %g, want 30", r.StartUs)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	trace := sampleTrace()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(trace.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(trace.Records))
	}
	for i := range got.Records {
		if got.Records[i] != trace.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got.Records[i], trace.Records[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	trace := sampleTrace()
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(trace.Records) || got.Records[3] != trace.Records[3] {
		t.Fatal("JSON round trip corrupted records")
	}
}

func TestReadCSVRejectsCorrupt(t *testing.T) {
	for i, c := range []string{
		"",
		"a,b,c\n1,2,3\n",
		strings.Join(csvHeader, ",") + "\nnot,enough,columns\n",
	} {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("corrupt CSV %d accepted", i)
		}
	}
}

func TestClusterFilterAndHistogram(t *testing.T) {
	trace := sampleTrace()
	c0 := trace.Cluster(0)
	if len(c0) != 5 {
		t.Fatalf("cluster 0 has %d records, want 5", len(c0))
	}
	for i, r := range c0 {
		if r.Cluster != 0 || r.Epoch != i {
			t.Fatalf("cluster filter wrong at %d: %+v", i, r)
		}
	}
	hist := trace.LevelHistogram(6)
	// Epochs 0..4 at level e%3 across 2 clusters: levels 0,1,2,0,1.
	if hist[0] != 4 || hist[1] != 4 || hist[2] != 2 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestSortAndMeanPower(t *testing.T) {
	trace := &Trace{}
	trace.Observe(sampleStats(2, 1, 0))
	trace.Observe(sampleStats(0, 0, 0))
	trace.Observe(sampleStats(2, 0, 0))
	trace.Sort()
	if trace.Records[0].Epoch != 0 || trace.Records[1].Cluster != 0 || trace.Records[2].Cluster != 1 {
		t.Fatalf("sort order wrong: %+v", trace.Records)
	}
	if got := trace.MeanPowerW(); got != 6.0 {
		t.Fatalf("mean power = %g, want 6", got)
	}
}

// TestTraceFromSimulator wires the observer into a real simulation.
func TestTraceFromSimulator(t *testing.T) {
	cfg := gpusim.SmallConfig()
	cfg.Clusters = 2
	prog := isa.Program{
		Body:       []isa.Instruction{{Op: isa.OpFAlu, Dst: 1, SrcA: 1}},
		Iterations: 30000,
	}
	sim, err := gpusim.New(cfg, gpusim.Kernel{Name: "t", WarpsPerCluster: 4, Programs: []isa.Program{prog}})
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	sim.SetObserver(trace.Observe)
	res := sim.Run(1_000_000_000_000)
	if !res.Completed {
		t.Fatal("kernel incomplete")
	}
	if len(trace.Records) != res.Epochs*cfg.Clusters {
		t.Fatalf("trace has %d records, want %d", len(trace.Records), res.Epochs*cfg.Clusters)
	}
}
