// Package epochtrace records per-epoch, per-cluster simulator snapshots
// and exports them as CSV or JSON for offline analysis and plotting —
// the raw material behind the paper's time-series style figures (per-
// epoch operating levels, IPC, power, stall breakdowns).
package epochtrace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ssmdvfs/internal/gpusim"
)

// Record is one flattened epoch snapshot.
type Record struct {
	Epoch        int     `json:"epoch"`
	Cluster      int     `json:"cluster"`
	StartUs      float64 `json:"start_us"`
	Level        int     `json:"level"`
	FreqMHz      float64 `json:"freq_mhz"`
	VoltageV     float64 `json:"voltage_v"`
	Instructions int64   `json:"instructions"`
	IPC          float64 `json:"ipc"`
	ActiveFrac   float64 `json:"active_frac"`
	StallMem     int64   `json:"stall_mem"`
	StallMemOth  int64   `json:"stall_mem_other"`
	StallCompute int64   `json:"stall_compute"`
	L1MissRate   float64 `json:"l1_miss_rate"`
	L1Misses     int64   `json:"l1_read_misses"`
	DRAMLines    int64   `json:"dram_lines"`
	PowerW       float64 `json:"power_w"`
	EnergyPJ     float64 `json:"energy_pj"`
	WarpsActive  int     `json:"warps_active"`
}

// FromStats flattens a simulator snapshot.
func FromStats(s gpusim.EpochStats) Record {
	activeFrac := 0.0
	if s.Cycles > 0 {
		activeFrac = float64(s.ActiveCycles) / float64(s.Cycles)
	}
	return Record{
		Epoch:        s.Epoch,
		Cluster:      s.Cluster,
		StartUs:      float64(s.StartPs) / 1e6,
		Level:        s.Level,
		FreqMHz:      s.OP.FrequencyHz / 1e6,
		VoltageV:     s.OP.VoltageV,
		Instructions: s.Instructions,
		IPC:          s.IPC(),
		ActiveFrac:   activeFrac,
		StallMem:     s.StallMemLoad,
		StallMemOth:  s.StallMemOther,
		StallCompute: s.StallCompute,
		L1MissRate:   s.L1ReadMissRate(),
		L1Misses:     s.L1ReadMisses,
		DRAMLines:    s.DRAMLines,
		PowerW:       s.PowerW(),
		EnergyPJ:     s.EnergyPJ,
		WarpsActive:  s.WarpsActive,
	}
}

// Trace accumulates records; attach Observe to a simulator.
type Trace struct {
	Records []Record
}

// Observe is a gpusim.EpochObserver that appends a record.
func (t *Trace) Observe(s gpusim.EpochStats) {
	t.Records = append(t.Records, FromStats(s))
}

// Sort orders records by (epoch, cluster); simulators emit them in order,
// but merged traces may not be.
func (t *Trace) Sort() {
	sort.Slice(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.Cluster < b.Cluster
	})
}

// Cluster returns the sub-trace of one cluster, in epoch order.
func (t *Trace) Cluster(c int) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.Cluster == c {
			out = append(out, r)
		}
	}
	return out
}

// LevelHistogram counts epochs spent at each operating level.
func (t *Trace) LevelHistogram(levels int) []int {
	hist := make([]int, levels)
	for _, r := range t.Records {
		if r.Level >= 0 && r.Level < levels {
			hist[r.Level]++
		}
	}
	return hist
}

// MeanPowerW returns the average cluster power over the trace.
func (t *Trace) MeanPowerW() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range t.Records {
		sum += r.PowerW
	}
	return sum / float64(len(t.Records))
}

var csvHeader = []string{
	"epoch", "cluster", "start_us", "level", "freq_mhz", "voltage_v",
	"instructions", "ipc", "active_frac", "stall_mem", "stall_mem_other",
	"stall_compute", "l1_miss_rate", "l1_read_misses", "dram_lines",
	"power_w", "energy_pj", "warps_active",
}

// WriteCSV writes the trace with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	// Precision -1 uses the minimal digits that round-trip exactly.
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, r := range t.Records {
		row := []string{
			strconv.Itoa(r.Epoch), strconv.Itoa(r.Cluster), f(r.StartUs),
			strconv.Itoa(r.Level), f(r.FreqMHz), f(r.VoltageV),
			d(r.Instructions), f(r.IPC), f(r.ActiveFrac),
			d(r.StallMem), d(r.StallMemOth), d(r.StallCompute),
			f(r.L1MissRate), d(r.L1Misses), d(r.DRAMLines),
			f(r.PowerW), f(r.EnergyPJ), strconv.Itoa(r.WarpsActive),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("epochtrace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("epochtrace: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("epochtrace: header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	t := &Trace{}
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("epochtrace: row %d: %w", i+1, err)
		}
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

func parseRow(row []string) (Record, error) {
	var r Record
	if len(row) != len(csvHeader) {
		return r, fmt.Errorf("have %d columns, want %d", len(row), len(csvHeader))
	}
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	getd := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	r.Epoch = geti(row[0])
	r.Cluster = geti(row[1])
	r.StartUs = getf(row[2])
	r.Level = geti(row[3])
	r.FreqMHz = getf(row[4])
	r.VoltageV = getf(row[5])
	r.Instructions = getd(row[6])
	r.IPC = getf(row[7])
	r.ActiveFrac = getf(row[8])
	r.StallMem = getd(row[9])
	r.StallMemOth = getd(row[10])
	r.StallCompute = getd(row[11])
	r.L1MissRate = getf(row[12])
	r.L1Misses = getd(row[13])
	r.DRAMLines = getd(row[14])
	r.PowerW = getf(row[15])
	r.EnergyPJ = getf(row[16])
	r.WarpsActive = geti(row[17])
	return r, err
}

// WriteJSON writes the trace as a JSON array.
func (t *Trace) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Records)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := json.NewDecoder(r).Decode(&t.Records); err != nil {
		return nil, fmt.Errorf("epochtrace: %w", err)
	}
	return t, nil
}
