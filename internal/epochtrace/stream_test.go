package epochtrace

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ssmdvfs/internal/counters"
)

func TestRecordFeaturesRestoresSelectedCounters(t *testing.T) {
	s := sampleStats(3, 1, 4)
	want := counters.FromStats(s)
	got := FromStats(s).Features()
	if len(got) != counters.Num {
		t.Fatalf("feature vector has %d entries, want %d", len(got), counters.Num)
	}
	// The five Table I counters must round-trip exactly through the
	// flattened record — they are what a replayed model consumes.
	for _, idx := range counters.SelectedFive() {
		if got[idx] != want[idx] {
			t.Fatalf("counter %d (%s): %g != %g", idx, counters.Def(idx).Name, got[idx], want[idx])
		}
	}
	// Spot-check derived and operating-state counters.
	for _, idx := range []int{5, 16, 18, 29, 35, 42, 44, 45, 46} {
		if got[idx] != want[idx] {
			t.Fatalf("counter %d (%s): %g != %g", idx, counters.Def(idx).Name, got[idx], want[idx])
		}
	}
}

func TestFeatureStreamCyclesConcurrently(t *testing.T) {
	trace := sampleTrace()
	s, err := NewFeatureStream(trace)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(trace.Records) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(trace.Records))
	}
	// Serial: Next cycles through all rows then wraps.
	first := s.Next()
	for i := 1; i < s.Len(); i++ {
		s.Next()
	}
	if wrapped := s.Next(); &wrapped[0] != &first[0] {
		t.Fatal("stream did not wrap to the first row")
	}

	// Concurrent: every Next must return a valid row.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				row := s.Next()
				if len(row) != counters.Num {
					t.Errorf("row has %d entries", len(row))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFeatureStreamRejectsEmpty(t *testing.T) {
	if _, err := NewFeatureStream(&Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewFeatureStream(nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestOpenFeatureStream(t *testing.T) {
	trace := sampleTrace()
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "trace.csv")
	fc, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(fc); err != nil {
		t.Fatal(err)
	}
	fc.Close()

	jsonPath := filepath.Join(dir, "trace.json")
	fj, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(fj); err != nil {
		t.Fatal(err)
	}
	fj.Close()

	for _, path := range []string{csvPath, jsonPath} {
		s, err := OpenFeatureStream(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if s.Len() != len(trace.Records) {
			t.Fatalf("%s: Len = %d, want %d", path, s.Len(), len(trace.Records))
		}
		want := trace.Records[0].Features()
		got := s.Row(0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row 0 counter %d: %g != %g", path, i, got[i], want[i])
			}
		}
	}

	if _, err := OpenFeatureStream(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
