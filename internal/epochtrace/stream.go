package epochtrace

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"ssmdvfs/internal/counters"
)

// Features reconstructs the 47-counter feature vector the SSMDVFS model
// consumes from a flattened trace record. Every counter the record
// carries is restored exactly — in particular the five Table I features
// (IPC, PPC, MH, MH\L, L1CRM) — and cheap derived counters (cycles, stall
// fractions, MPKI, energy per instruction) are recomputed; counters the
// flattened record does not capture (instruction-mix ops, L2 statistics,
// the dynamic/static power split) stay zero. That is sufficient for
// replaying a trace against any model trained on the selected feature
// subset, which is what the dvfsload generator does.
func (r Record) Features() []float64 {
	v := make([]float64, counters.Num)
	instr := float64(r.Instructions)
	stallTotal := r.StallMem + r.StallMemOth + r.StallCompute

	v[counters.IdxIPC] = r.IPC
	v[counters.IdxPPC] = r.PowerW
	v[counters.IdxMH] = float64(r.StallMem)
	v[counters.IdxMHNL] = float64(r.StallMemOth)
	v[counters.IdxL1CRM] = float64(r.L1Misses)

	v[5] = instr
	v[16] = r.ActiveFrac
	if r.WarpsActive > 0 {
		v[17] = instr / float64(r.WarpsActive)
	}
	v[18] = float64(r.WarpsActive)
	var cycles float64
	if r.IPC > 0 {
		cycles = instr / r.IPC
		v[19] = instr / (cycles * 2)
	}
	v[20] = cycles

	v[21] = float64(r.StallCompute)
	v[25] = float64(stallTotal)
	if stallTotal > 0 {
		v[26] = float64(r.StallMem+r.StallMemOth) / float64(stallTotal)
		v[27] = float64(r.StallCompute) / float64(stallTotal)
	}
	if r.L1MissRate > 0 {
		v[28] = float64(r.L1Misses) * (1 - r.L1MissRate) / r.L1MissRate
	}
	v[29] = r.L1MissRate
	v[35] = float64(r.DRAMLines)
	if instr > 0 {
		v[36] = float64(r.DRAMLines) * 64 / instr
		v[37] = float64(r.L1Misses) / instr * 1000
	}

	v[42] = r.EnergyPJ
	if instr > 0 {
		v[43] = r.EnergyPJ / instr
	}
	v[44] = r.FreqMHz
	v[45] = r.VoltageV
	v[46] = float64(r.Level)
	return v
}

// FeatureStream replays a trace's feature vectors in a cycle, serving any
// number of concurrent readers — the feed for load generators and serving
// benchmarks. Rows are precomputed once; Next hands them out round-robin
// with a single atomic increment.
type FeatureStream struct {
	rows [][]float64
	next atomic.Uint64
}

// NewFeatureStream precomputes the feature vectors of every record in t.
func NewFeatureStream(t *Trace) (*FeatureStream, error) {
	if t == nil || len(t.Records) == 0 {
		return nil, fmt.Errorf("epochtrace: cannot stream an empty trace")
	}
	s := &FeatureStream{rows: make([][]float64, len(t.Records))}
	for i, r := range t.Records {
		s.rows[i] = r.Features()
	}
	return s, nil
}

// Len returns the number of distinct rows in the cycle.
func (s *FeatureStream) Len() int { return len(s.rows) }

// Row returns row i (i is taken modulo Len). The returned slice is shared
// and must not be modified.
func (s *FeatureStream) Row(i int) []float64 {
	return s.rows[i%len(s.rows)]
}

// Next returns the next feature vector in the cycle. Safe for concurrent
// use; the returned slice is shared and must not be modified.
func (s *FeatureStream) Next() []float64 {
	n := s.next.Add(1) - 1
	return s.rows[n%uint64(len(s.rows))]
}

// OpenFeatureStream reads a trace file written by WriteCSV or WriteJSON
// (chosen by the .json extension) and returns its feature stream.
func OpenFeatureStream(path string) (*FeatureStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("epochtrace: %w", err)
	}
	defer f.Close()
	var t *Trace
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		t, err = ReadJSON(f)
	} else {
		t, err = ReadCSV(f)
	}
	if err != nil {
		return nil, err
	}
	return NewFeatureStream(t)
}
