// Package atomicfile writes files atomically: content is staged in a
// temporary file in the destination directory and moved into place with
// os.Rename, so concurrent readers — in particular a hot-reloading
// ssmdvfsd daemon watching a model file — can never observe a torn or
// partially written artifact.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write stages the output of write in a temporary file next to path and
// renames it over path once the content is fully flushed. On any error
// the temporary file is removed and path is left untouched.
func Write(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		tmp = ""
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp = ""
	return nil
}
