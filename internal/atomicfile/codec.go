package atomicfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteJSON encodes v as one JSON document and writes it to path
// atomically — the shared file codec behind every Save/SaveFile pair
// (datasets, models, experiment results), so all artifacts get the same
// torn-write guarantee and encoding.
func WriteJSON(path string, v any) error {
	return Write(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(v)
	})
}

// ReadJSON reads path and decodes its JSON content into v, the inverse
// of WriteJSON for types without bespoke validation.
func ReadJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("atomicfile: decoding %s: %w", filepath.Base(path), err)
	}
	return nil
}

// ReadWith opens path and hands its contents to load — the shared
// open/close plumbing behind LoadFile wrappers whose formats carry
// bespoke decode-time validation (nn.Load, core.Load, datagen.Load).
func ReadWith[T any](path string, load func(io.Reader) (T, error)) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, fmt.Errorf("atomicfile: %w", err)
	}
	defer f.Close()
	return load(f)
}
