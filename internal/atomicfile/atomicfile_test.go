package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
}

func TestWriteErrorLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "original")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("writer failed")
	err := Write(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("content = %q, want untouched original", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

// TestConcurrentWritersNeverTear hammers one path from several writers
// while a reader polls: every read must observe one complete payload.
func TestConcurrentWritersNeverTear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	payload := func(i int) string {
		return fmt.Sprintf("writer-%d:%s", i, strings.Repeat("x", 4096))
	}
	var wg sync.WaitGroup
	const writers, rounds = 4, 25
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := Write(path, func(w io.Writer) error {
					_, err := io.WriteString(w, payload(i))
					return err
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
		}
		got, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for i := 0; i < writers; i++ {
			if string(got) == payload(i) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("observed torn file of %d bytes", len(got))
		}
	}
}
