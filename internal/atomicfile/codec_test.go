package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	want := payload{Name: "x", Values: []float64{1, 2.5, -3}}
	if err := WriteJSON(path, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadJSON(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Values) != 3 || got.Values[1] != 2.5 {
		t.Fatalf("round trip corrupted: %+v", got)
	}
}

func TestWriteJSONMatchesPlainEncoder(t *testing.T) {
	// The codec must be byte-compatible with the hand-rolled
	// json.NewEncoder(w).Encode pairs it replaces, so old artifacts load.
	path := filepath.Join(t.TempDir(), "p.json")
	if err := WriteJSON(path, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\"name\":\"x\",\"values\":null}\n"; string(raw) != want {
		t.Fatalf("encoding drifted: %q, want %q", raw, want)
	}
}

func TestReadJSONErrors(t *testing.T) {
	dir := t.TempDir()
	var v payload
	if err := ReadJSON(filepath.Join(dir, "missing.json"), &v); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadJSON(bad, &v); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
}

func TestReadWith(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWith(path, func(r io.Reader) (string, error) {
		b, err := io.ReadAll(r)
		return string(b), err
	})
	if err != nil || got != "hello" {
		t.Fatalf("ReadWith = (%q, %v)", got, err)
	}
	// Validation errors from the load func must flow through.
	if _, err := ReadWith(path, func(io.Reader) (string, error) {
		return "", fmt.Errorf("shape mismatch")
	}); err == nil {
		t.Fatal("load error swallowed")
	}
	if _, err := ReadWith(filepath.Join(dir, "missing"), func(io.Reader) (string, error) {
		return "", nil
	}); err == nil {
		t.Fatal("missing file accepted")
	}
}
