package fleet

import (
	"encoding/json"
	"math/rand"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/nn"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
)

// testModel builds a small untrained (but deterministic) model — routing
// correctness is about sharding and transport, not accuracy.
func testModel(tb testing.TB, seed int64) *core.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	identity := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: identity(6),
		CalibScaler:    identity(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

func featureRow(rng *rand.Rand) []float64 {
	row := make([]float64, counters.Num)
	for j := range row {
		row[j] = rng.Float64() * 2
	}
	return row
}

// startReplica runs one in-process ssmdvfsd-equivalent on loopback.
func startReplica(tb testing.TB, seed int64, opts serve.Options) (addr string, srv *serve.Server) {
	tb.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	srv, err := serve.NewServer(testModel(tb, seed), opts)
	if err != nil {
		tb.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.ServeTCP(l)
	tb.Cleanup(srv.Close)
	return l.Addr().String(), srv
}

func startFleet(tb testing.TB, n int, opts Options) (*Router, []*serve.Server) {
	tb.Helper()
	srvs := make([]*serve.Server, n)
	for i := range srvs {
		var addr string
		addr, srvs[i] = startReplica(tb, int64(100+i), serve.Options{})
		opts.Replicas = append(opts.Replicas, addr)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(rt.Close)
	return rt, srvs
}

// TestRouterRoutesByKey checks the whole tier end to end over the wire:
// negotiation reports a router, every keyed row is answered by the model
// on the shard the ring owns its key to, and v2 clients work unchanged.
func TestRouterRoutesByKey(t *testing.T) {
	rt, _ := startFleet(t, 3, Options{Seed: 42})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.ServeTCP(l)

	cl, err := serve.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hello, err := cl.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if !hello.Router || hello.Shards != 3 || hello.Version != serve.VersionMax {
		t.Fatalf("negotiation = %+v, want router with 3 shards at v%d", hello, serve.VersionMax)
	}

	rng := rand.New(rand.NewSource(1))
	rows := make([]serve.Request, 32)
	for i := range rows {
		rows[i] = serve.Request{
			Preset: 0.1, Features: featureRow(rng),
			GPU: int32(i / 4), Cluster: int32(i % 24),
		}
	}
	decs, err := cl.DecideKeyed(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(rows) {
		t.Fatalf("%d decisions for %d rows", len(decs), len(rows))
	}
	for i, d := range decs {
		if d.Reason != provenance.ReasonModel {
			t.Fatalf("row %d answered by %v, want model", i, d.Reason)
		}
		want, ok := rt.Ring().Lookup(Key(42, rows[i].GPU, rows[i].Cluster))
		if !ok || d.Shard != want {
			t.Fatalf("row %d answered by shard %d, ring owns it to %d", i, d.Shard, want)
		}
		if d.Rerouted {
			t.Fatalf("row %d marked rerouted on a healthy fleet", i)
		}
	}

	// The same connection still speaks v2; identity is synthesized
	// router-side so the rows shard and the response drops shard info.
	v2, err := cl.Decide(rows[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range v2 {
		if d.Reason != provenance.ReasonModel || d.Shard != -1 {
			t.Fatalf("v2 row %d = %+v", i, d)
		}
	}
	if got := rt.Metrics().Rows.Load(); got != int64(len(rows)+4) {
		t.Fatalf("fleet_rows_total = %d, want %d", got, len(rows)+4)
	}
}

// TestRouterCoalesces floods the router from many goroutines and checks
// rows actually share frames — far fewer dispatched batches than rows —
// and that those frames stay batched through the replica's engine into
// the inference backend instead of decaying to row-at-a-time.
func TestRouterCoalesces(t *testing.T) {
	rt, srvs := startFleet(t, 1, Options{
		CoalesceWait: 2 * time.Millisecond,
		CoalesceRows: 64,
		// One slot in flight so batches queue up behind the wire and
		// coalescing has time to fill frames.
		MaxInFlight:   1,
		QueueDeadline: time.Second,
	})
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			row := serve.Request{Preset: 0.1, Features: featureRow(rng), GPU: int32(w), Cluster: 0}
			for i := 0; i < perWorker; i++ {
				decs := rt.Decide([]serve.Request{row}, nil)
				if len(decs) != 1 {
					t.Errorf("worker %d: %d decisions", w, len(decs))
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := rt.Telemetry().Snapshot()
	h, ok := snap.Histograms["fleet_batch_rows"]
	if !ok {
		t.Fatal("fleet_batch_rows histogram missing")
	}
	rows := workers * perWorker
	if h.Sum != int64(rows) {
		t.Fatalf("dispatched %d rows, want %d", h.Sum, rows)
	}
	if h.Count >= int64(rows) {
		t.Fatalf("%d batches for %d rows: nothing coalesced", h.Count, rows)
	}

	// The replica engine must have answered those frames with multi-row
	// ForwardBatch calls: every row accounted for, fewer backend calls
	// than rows, and the batch-size histogram showing calls of >= 2 rows
	// (buckets [2^(i-1), 2^i); index 1 is single-row, >= 2 is multi-row).
	esnap := srvs[0].Metrics().Snapshot(0)
	if esnap.InferRowsFloat64 != int64(rows) {
		t.Fatalf("backend saw %d rows, want %d", esnap.InferRowsFloat64, rows)
	}
	if esnap.InferBatchesFloat64 >= int64(rows) {
		t.Fatalf("%d backend calls for %d rows: frames decayed to row-at-a-time inference",
			esnap.InferBatchesFloat64, rows)
	}
	var multi int64
	for i := 2; i < len(esnap.InferBatchRows); i++ {
		multi += esnap.InferBatchRows[i]
	}
	if multi == 0 {
		t.Fatalf("no multi-row backend call recorded: batch-rows histogram %v", esnap.InferBatchRows)
	}
}

// TestRouterExpectBackend pins the fleet-wide backend contract: a router
// that requires int8 serves from int8 replicas, refuses a replica
// advertising other numerics at negotiation (rows shed, shard down), and
// the prober never restores a mismatched replica.
func TestRouterExpectBackend(t *testing.T) {
	if _, err := NewRouter(Options{Replicas: []string{"127.0.0.1:1"}, ExpectBackend: "fp7"}); err == nil {
		t.Fatal("unknown ExpectBackend accepted")
	}

	rng := rand.New(rand.NewSource(30))
	row := serve.Request{Preset: 0.1, Features: featureRow(rng), GPU: 1, Cluster: 1}

	addr, _ := startReplica(t, 30, serve.Options{Backend: "int8"})
	rt, err := NewRouter(Options{
		Replicas: []string{addr}, ExpectBackend: "int8",
		QueueDeadline: time.Second, ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if decs := rt.Decide([]serve.Request{row}, nil); decs[0].Reason != provenance.ReasonModel {
		t.Fatalf("matching int8 fleet answered %v, want model", decs[0].Reason)
	}

	// Same router config against a float64 replica: the dial-time
	// negotiation must refuse it, so the row sheds and the shard is down.
	addr2, _ := startReplica(t, 31, serve.Options{})
	rt2, err := NewRouter(Options{
		Replicas: []string{addr2}, ExpectBackend: "int8",
		QueueDeadline: time.Second, ProbeInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if decs := rt2.Decide([]serve.Request{row}, nil); decs[0].Reason != provenance.ReasonShed {
		t.Fatalf("mismatched fleet answered %v, want shed", decs[0].Reason)
	}
	if rt2.Ring().Healthy() != 0 {
		t.Fatalf("mismatched replica still healthy: %d", rt2.Ring().Healthy())
	}
	// Give the prober several cycles: a live TCP endpoint with the wrong
	// backend must stay out of the ring.
	time.Sleep(50 * time.Millisecond)
	if rt2.Ring().Healthy() != 0 {
		t.Fatal("prober restored a replica advertising the wrong backend")
	}
}

// TestRouterChaosReplicaDeath is the chaos drill: a replica dies mid-load
// and every request must still complete with a decision — rerouted to a
// surviving replica or shed to the fallback, never errored.
func TestRouterChaosReplicaDeath(t *testing.T) {
	rt, srvs := startFleet(t, 3, Options{
		Seed:          9,
		CoalesceWait:  100 * time.Microsecond,
		QueueDeadline: time.Second,
		ProbeInterval: time.Hour, // keep the dead replica dead
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.ServeTCP(l)

	const workers, perWorker = 6, 60
	var answered, degraded atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := serve.Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				rows := []serve.Request{{
					Preset: 0.1, Features: featureRow(rng),
					GPU: int32(w*perWorker + i), Cluster: int32(i % 24),
				}}
				decs, err := cl.DecideKeyed(rows)
				if err != nil {
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
				answered.Add(1)
				if decs[0].Rerouted || decs[0].Reason == provenance.ReasonShed {
					degraded.Add(1)
				}
				if w == 0 && i == perWorker/3 {
					srvs[1].Close() // kill a replica mid-load
				}
			}
		}(w)
	}
	wg.Wait()

	if got := answered.Load(); got != workers*perWorker {
		t.Fatalf("answered %d of %d requests", got, workers*perWorker)
	}
	if rt.Metrics().Down.Load() == 0 {
		t.Fatal("replica death never detected")
	}
	if rt.Ring().Healthy() != 2 {
		t.Fatalf("healthy = %d after one death, want 2", rt.Ring().Healthy())
	}
	// Degradation is load-timing dependent, but the dead replica owned
	// ~1/3 of keys: something must have been rerouted or shed.
	if degraded.Load() == 0 && rt.Metrics().Rerouted.Load() == 0 && rt.Metrics().ShedTotal() == 0 {
		t.Fatal("a replica died under load yet nothing rerouted or shed")
	}
}

// TestRouterRecovery kills a replica, waits for the prober to mark it
// down, restarts it on the same address, and checks keys move home.
func TestRouterRecovery(t *testing.T) {
	addr, srv := startReplica(t, 1, serve.Options{})
	rt, err := NewRouter(Options{
		Replicas:      []string{addr},
		ProbeInterval: 5 * time.Millisecond,
		QueueDeadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(2))
	row := serve.Request{Preset: 0.1, Features: featureRow(rng), GPU: 1, Cluster: 1}
	if decs := rt.Decide([]serve.Request{row}, nil); decs[0].Reason != provenance.ReasonModel {
		t.Fatalf("healthy fleet answered %v", decs[0].Reason)
	}

	srv.Close()
	// Drive until the death is noticed; these shed (no replica left).
	deadline := time.Now().Add(5 * time.Second)
	for rt.Ring().Healthy() != 0 {
		rt.Decide([]serve.Request{row}, nil)
		if time.Now().After(deadline) {
			t.Fatal("replica death never detected")
		}
	}
	if decs := rt.Decide([]serve.Request{row}, nil); decs[0].Reason != provenance.ReasonShed || decs[0].Shard != -1 {
		t.Fatalf("decision with no replicas = %+v, want shed", decs[0])
	}

	// Resurrect on the same address; the prober must restore the shard.
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2, err := serve.NewServer(testModel(t, 1), serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv2.ServeTCP(l)
	defer srv2.Close()

	for deadline := time.Now().Add(5 * time.Second); rt.Ring().Healthy() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("replica recovery never detected")
		}
		time.Sleep(time.Millisecond)
	}
	if rt.Metrics().Up.Load() == 0 {
		t.Fatal("fleet_replica_up_total not incremented")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if decs := rt.Decide([]serve.Request{row}, nil); decs[0].Reason == provenance.ReasonModel {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("model path never came back after recovery")
		}
	}
}

// TestRouterShedsUnderOverload arms a latency fault on the only replica
// and floods the router with a tiny queue: admission control must shed
// (fallback answers) instead of queueing past the deadline.
func TestRouterShedsUnderOverload(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(serve.FaultDecide, faults.Spec{Kind: faults.KindLatency, Latency: 20 * time.Millisecond, Every: 1}); err != nil {
		t.Fatal(err)
	}
	addr, _ := startReplica(t, 5, serve.Options{Faults: inj})
	rt, err := NewRouter(Options{
		Replicas:      []string{addr},
		CoalesceWait:  50 * time.Microsecond,
		CoalesceRows:  4,
		MaxInFlight:   1,
		QueueLen:      4,
		QueueDeadline: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	var sheds atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				row := serve.Request{Preset: 0.1, Features: featureRow(rng), GPU: int32(w), Cluster: int32(i)}
				decs := rt.Decide([]serve.Request{row}, nil)
				if len(decs) != 1 {
					t.Errorf("worker %d: %d decisions", w, len(decs))
					return
				}
				if decs[0].Reason == provenance.ReasonShed {
					sheds.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if sheds.Load() == 0 || rt.Metrics().ShedTotal() == 0 {
		t.Fatalf("no sheds under a 20 ms-per-batch replica with a 2 ms deadline (counter=%d)", rt.Metrics().ShedTotal())
	}
}

// benchFleet measures router round-trip throughput with a given coalesce
// ceiling; coalesceRows == 1 is the single-row-framing baseline.
func benchFleet(b *testing.B, coalesceRows int) {
	addr, _ := startReplica(b, 7, serve.Options{Workers: 4})
	rt, err := NewRouter(Options{
		Replicas:      []string{addr},
		CoalesceWait:  200 * time.Microsecond,
		CoalesceRows:  coalesceRows,
		MaxInFlight:   2,
		QueueLen:      4096,
		QueueDeadline: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(7))
	feats := featureRow(rng)
	var seq atomic.Int64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int32(seq.Add(1))
		row := serve.Request{Preset: 0.1, Features: feats, GPU: id, Cluster: 0}
		var decs []serve.Decision
		for pb.Next() {
			decs = rt.Decide([]serve.Request{row}, decs[:0])
			if decs[0].Reason == provenance.ReasonShed {
				b.Error("shed under benchmark load")
				return
			}
		}
	})
}

// BenchmarkFleet_CoalescedThroughput vs _SingleRow quantifies the win of
// multi-row v3 frames: same router, same replica, the only difference is
// whether concurrent rows share frames.
func BenchmarkFleet_CoalescedThroughput(b *testing.B) { benchFleet(b, 64) }

func BenchmarkFleet_SingleRowThroughput(b *testing.B) { benchFleet(b, 1) }

// TestRouterModelLineage checks the fleet surfaces per-replica model
// lineage: the prober refreshes the generation each replica advertises
// in hello negotiation, /healthz reports it per replica, and a replica
// whose generation trails the newest one in the fleet is flagged stale
// — the signature of an online promotion that missed it.
func TestRouterModelLineage(t *testing.T) {
	// Replica 0 serves generation 0; replica 1 serves generation 3, as
	// if three online refits were promoted there but never here.
	mOld := testModel(t, 100)
	mNew := testModel(t, 101)
	mNew.Lineage = core.Lineage{Generation: 3, Parent: 2, Source: core.SourceRefit, Refits: 3}

	var addrs []string
	for _, m := range []*core.Model{mOld, mNew} {
		srv, err := serve.NewServer(m, serve.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeTCP(l)
		t.Cleanup(srv.Close)
		addrs = append(addrs, l.Addr().String())
	}

	rt, err := NewRouter(Options{
		Replicas:      addrs,
		Seed:          7,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	// The ring orders shards by its own hash, not by the Replicas slice;
	// expectations key on address.
	wantGen := map[string]int64{addrs[0]: 0, addrs[1]: 3}

	// The prober learns generations on its own — no traffic needed.
	deadline := time.Now().Add(5 * time.Second)
	for rt.shards[0].gen.Load() < 0 || rt.shards[1].gen.Load() < 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never learned generations: shard0=%d shard1=%d",
				rt.shards[0].gen.Load(), rt.shards[1].gen.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, s := range rt.shards {
		if g := s.gen.Load(); g != wantGen[s.addr] {
			t.Fatalf("shard %d (%s): generation = %d, want %d", s.idx, s.addr, g, wantGen[s.addr])
		}
	}

	// /healthz reports lineage and flags the trailing replica.
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d: %s", rec.Code, rec.Body.String())
	}
	var health struct {
		Healthy  int `json:"healthy_replicas"`
		Replicas []struct {
			Shard      int    `json:"shard"`
			Addr       string `json:"addr"`
			Healthy    bool   `json:"healthy"`
			Generation int    `json:"generation"`
			Stale      bool   `json:"stale"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if health.Healthy != 2 || len(health.Replicas) != 2 {
		t.Fatalf("healthz = %+v, want 2 healthy replicas", health)
	}
	for _, r := range health.Replicas {
		want := int(wantGen[r.Addr])
		wantStale := want == 0 // generation 0 trails the fleet max of 3
		if r.Generation != want || r.Stale != wantStale {
			t.Errorf("shard %d (%s): generation=%d stale=%v, want %d/%v",
				r.Shard, r.Addr, r.Generation, r.Stale, want, wantStale)
		}
	}

	// The per-shard gauge mirrors what /healthz reports.
	snap := rt.Metrics().Registry().Snapshot()
	for _, s := range rt.shards {
		id := `fleet_replica_generation{shard="` + itoa(s.idx) + `"}`
		want := float64(wantGen[s.addr])
		if got, ok := snap.Gauges[id]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", id, got, ok, want)
		}
	}
}
