package fleet

import (
	"testing"
)

func testKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		// (gpu, cluster) pairs the way a fleet sees them: many GPUs, 24
		// clusters each.
		keys[i] = Key(seed, int32(i/24), int32(i%24))
	}
	return keys
}

var testReplicas = []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000", "10.0.0.5:9000"}

// TestRingDeterministicAssignments pins the determinism contract: the
// same seed and replica set produce identical assignments regardless of
// input order or process, and a different seed shards differently.
func TestRingDeterministicAssignments(t *testing.T) {
	keys := testKeys(20000, 7)
	r1, err := NewRing(RingOptions{Replicas: testReplicas, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{testReplicas[2], testReplicas[0], testReplicas[4], testReplicas[1], testReplicas[3]}
	r2, err := NewRing(RingOptions{Replicas: shuffled, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := r1.Assignments(keys), r2.Assignments(keys)
	for i := range keys {
		if a1[i] != a2[i] {
			t.Fatalf("key %d: assignment %d vs %d despite same seed+set", i, a1[i], a2[i])
		}
	}

	r3, err := NewRing(RingOptions{Replicas: testReplicas, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, s := range r3.Assignments(keys) {
		if s != a1[i] {
			diff++
		}
	}
	// A different seed is a different ring: most keys should land
	// elsewhere (4/5 in expectation for 5 replicas).
	if diff < len(keys)/2 {
		t.Fatalf("seed change moved only %d/%d keys", diff, len(keys))
	}

	// And no replica should be starved: with 128 vnodes each of 5
	// replicas should hold a meaningful share.
	counts := make([]int, len(testReplicas))
	for _, s := range a1 {
		counts[s]++
	}
	for i, c := range counts {
		if c < len(keys)/20 { // ≥ 5% each (ideal is 20%)
			t.Fatalf("replica %d owns only %d/%d keys", i, c, len(keys))
		}
	}
}

// TestRingRebalanceBounds pins the consistent-hashing guarantee: a ring
// built without one of N replicas reassigns exactly the keys that
// replica owned — every other key keeps its owner — and the removed
// replica owned roughly 1/N of the space.
func TestRingRebalanceBounds(t *testing.T) {
	keys := testKeys(20000, 3)
	full, err := NewRing(RingOptions{Replicas: testReplicas, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	without := append([]string(nil), testReplicas[:2]...)
	without = append(without, testReplicas[3:]...) // drop replica index 2
	smaller, err := NewRing(RingOptions{Replicas: without, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fullNames, smallNames := full.Replicas(), smaller.Replicas()
	removed := testReplicas[2]

	moved, owned := 0, 0
	for _, k := range keys {
		a, _ := full.Lookup(k)
		b, _ := smaller.Lookup(k)
		if fullNames[a] == removed {
			owned++
			continue
		}
		if fullNames[a] != smallNames[b] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("removing one replica moved %d keys owned by others; want 0", moved)
	}
	n := len(testReplicas)
	ideal := len(keys) / n
	if owned < ideal/2 || owned > 2*ideal {
		t.Fatalf("removed replica owned %d keys; want ~%d (1/%d of %d)", owned, ideal, n, len(keys))
	}
}

// TestRingHealthFlipMovesOnlyFlippedKeys checks that marking a replica
// unhealthy moves exactly its keys to successors, and recovery restores
// the original assignment byte for byte.
func TestRingHealthFlipMovesOnlyFlippedKeys(t *testing.T) {
	keys := testKeys(10000, 11)
	r, err := NewRing(RingOptions{Replicas: testReplicas, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	before := r.Assignments(keys)

	const down = 2
	if !r.SetHealthy(down, false) {
		t.Fatal("SetHealthy(false) reported no change")
	}
	if r.Healthy() != len(testReplicas)-1 {
		t.Fatalf("healthy = %d", r.Healthy())
	}
	during := r.Assignments(keys)
	for i := range keys {
		if before[i] == down {
			if during[i] == down {
				t.Fatalf("key %d still assigned to unhealthy replica", i)
			}
		} else if during[i] != before[i] {
			t.Fatalf("key %d moved from healthy replica %d to %d", i, before[i], during[i])
		}
	}

	if !r.SetHealthy(down, true) {
		t.Fatal("SetHealthy(true) reported no change")
	}
	for i, s := range r.Assignments(keys) {
		if s != before[i] {
			t.Fatalf("key %d did not move home after recovery", i)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(RingOptions{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewRing(RingOptions{Replicas: []string{"a", "a"}}); err == nil {
		t.Fatal("duplicate replicas accepted")
	}
}

func TestRingAllUnhealthy(t *testing.T) {
	r, err := NewRing(RingOptions{Replicas: testReplicas[:2], Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.SetHealthy(0, false)
	r.SetHealthy(1, false)
	if _, ok := r.Lookup(12345); ok {
		t.Fatal("lookup succeeded with no healthy replicas")
	}
	if _, ok := r.LookupName(12345); ok {
		t.Fatal("LookupName succeeded with no healthy replicas")
	}
}
