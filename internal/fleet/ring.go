// Package fleet is the multi-replica serving tier: a consistent-hash
// ring shards (gpu, cluster) decision keys across N ssmdvfsd replicas, a
// router coalesces rows bound for the same shard into one v3 keyed frame
// per syscall, and admission control sheds overload into the analytical
// PCSTALL fallback instead of queuing past the decision deadline. One
// daemon serves one GPU's 24 clusters; this package is how thousands of
// GPUs get microsecond-scale decisions from a bounded set of replicas —
// and the architecture the later scaling work (batched inference, online
// learning rollout) inherits.
package fleet

import (
	"fmt"
	"sort"
	"sync"

	"ssmdvfs/internal/faults"
)

// DefaultVNodes is the virtual-node count per replica: enough points
// that removing one of N replicas moves close to the ideal 1/N of keys,
// cheap enough that ring rebuilds are sub-millisecond.
const DefaultVNodes = 128

// Key folds a (gpu, cluster) identity into the ring's 64-bit hash space.
// The mix is seeded so two fleets with different seeds shard the same
// keys differently.
func Key(seed uint64, gpu, cluster int32) uint64 {
	return faults.Mix64(seed ^ uint64(uint32(gpu))<<21 ^ uint64(uint32(cluster)))
}

// point is one virtual node on the ring.
type point struct {
	hash  uint64
	shard int // index into the replica table
}

// Ring is a consistent-hash ring with virtual nodes and per-replica
// health states. Placement is deterministic: the same seed, replica set,
// and vnode count produce byte-identical assignments on every run and
// every machine. Removing a replica (or flipping it unhealthy) moves
// only the keys it owned — every other key keeps its shard — so a
// rebalance touches ~1/N of the key space, not all of it.
//
// Lookup is lock-free on the hot path apart from an RWMutex read lock;
// mutation (Add/Remove/SetHealthy) is rare control-plane work.
type Ring struct {
	seed   uint64
	vnodes int

	mu       sync.RWMutex
	names    []string // stable shard index → replica name
	healthy  []bool   // by shard index
	points   []point  // sorted by hash; includes unhealthy replicas
	nHealthy int
}

// RingOptions configures a Ring.
type RingOptions struct {
	// Replicas is the initial replica set (addresses or names). Order
	// does not matter: the ring sorts them for stable shard indices.
	Replicas []string
	// VNodes is the virtual-node count per replica (default DefaultVNodes).
	VNodes int
	// Seed perturbs every hash, so distinct fleets shard differently.
	Seed uint64
}

// NewRing builds a ring over the given replica set, all healthy.
func NewRing(opts RingOptions) (*Ring, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one replica")
	}
	if opts.VNodes <= 0 {
		opts.VNodes = DefaultVNodes
	}
	names := append([]string(nil), opts.Replicas...)
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return nil, fmt.Errorf("fleet: duplicate replica %q", names[i])
		}
	}
	r := &Ring{seed: opts.Seed, vnodes: opts.VNodes, names: names,
		healthy: make([]bool, len(names)), nHealthy: len(names)}
	for i := range r.healthy {
		r.healthy[i] = true
	}
	r.rebuild()
	return r, nil
}

// rebuild recomputes the sorted vnode points; callers hold mu.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for shard, name := range r.names {
		base := faults.Mix64(r.seed ^ faults.HashString(name))
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{
				hash:  faults.Mix64(base ^ uint64(v)*0x9e3779b97f4a7c15),
				shard: shard,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare) break on shard index so placement
		// stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
}

// Seed returns the ring's hash seed (for Key).
func (r *Ring) Seed() uint64 { return r.seed }

// Replicas returns the stable shard-index → name table.
func (r *Ring) Replicas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// NumReplicas returns the replica count.
func (r *Ring) NumReplicas() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Healthy returns how many replicas are currently healthy.
func (r *Ring) Healthy() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nHealthy
}

// IsHealthy reports one shard's health state.
func (r *Ring) IsHealthy(shard int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return shard >= 0 && shard < len(r.healthy) && r.healthy[shard]
}

// SetHealthy flips one shard's health state, reporting whether the state
// changed. Unhealthy replicas keep their ring points — their keys simply
// skip forward to the next healthy successor, and move back the moment
// the replica recovers, so a health flap moves only that replica's keys.
func (r *Ring) SetHealthy(shard int, healthy bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= len(r.healthy) || r.healthy[shard] == healthy {
		return false
	}
	r.healthy[shard] = healthy
	if healthy {
		r.nHealthy++
	} else {
		r.nHealthy--
	}
	return true
}

// Lookup maps a key to its owning shard: the first healthy replica at or
// clockwise after the key's position. ok is false when no replica is
// healthy.
func (r *Ring) Lookup(key uint64) (shard int, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.nHealthy == 0 || len(r.points) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if r.healthy[p.shard] {
			return p.shard, true
		}
	}
	return 0, false
}

// LookupName is Lookup returning the replica name.
func (r *Ring) LookupName(key uint64) (string, bool) {
	shard, ok := r.Lookup(key)
	if !ok {
		return "", false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[shard], true
}

// Assignments maps every key to its shard index (-1 when no replica is
// healthy) — the bulk form tests and rebalance audits use.
func (r *Ring) Assignments(keys []uint64) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		if shard, ok := r.Lookup(k); ok {
			out[i] = shard
		} else {
			out[i] = -1
		}
	}
	return out
}
