package fleet

import (
	"time"

	"ssmdvfs/internal/telemetry"
)

// Shed causes, the `cause` label on fleet_shed_rows_total. Admission
// control refuses work for exactly these reasons; anything else is a bug.
const (
	ShedQueueFull = "queue-full" // the shard's queue was full at submit
	ShedDeadline  = "deadline"   // the row waited past QueueDeadline
	ShedNoReplica = "no-replica" // no healthy replica on the ring
	ShedShutdown  = "shutdown"   // the router was closing
)

// shedCauses enumerates the label values so all series exist from the
// first scrape (a zero shed counter is a signal, not a missing metric).
var shedCauses = []string{ShedQueueFull, ShedDeadline, ShedNoReplica, ShedShutdown}

// batchHistBuckets sizes the coalesced-batch-size histogram: bucket i
// counts batches of [2^(i-1), 2^i) rows, and MaxBatch is 1024 = 2^10.
const batchHistBuckets = 12

// The fleet shed-rate SLO: at most sloShedBudget of admitted-or-shed rows
// may be refused by admission control over the rolling sloShedWindow.
// Exposed as slo_burn_rate{slo="fleet-shed"} (1.0 = shedding exactly at
// budget).
const (
	sloShedBudget = 0.01
	sloShedWindow = time.Minute
)

// Metrics aggregates the router's counters on a telemetry.Registry, so
// the fleet tier exposes the same JSON snapshot + Prometheus exposition
// surface as a single daemon. Handles are resolved up front; every hot
// path update is one atomic.
type Metrics struct {
	Requests *telemetry.Counter // frames / Decide calls answered
	Rows     *telemetry.Counter // rows admitted into shard queues
	Rerouted *telemetry.Counter // rows re-submitted after a replica failure
	Down     *telemetry.Counter // healthy→unhealthy replica transitions
	Up       *telemetry.Counter // unhealthy→healthy replica transitions
	Healthy  *telemetry.Gauge   // healthy replicas right now

	shed      map[string]*telemetry.Counter // by cause
	shedSLO   *telemetry.SLO                // shed-rate error budget
	batchRows *telemetry.Histogram          // rows per dispatched batch

	shards []shardMetrics
	reg    *telemetry.Registry
}

// shardMetrics is the per-shard slice of the fleet counters — the
// per-shard throughput and tail latency the load reports print.
type shardMetrics struct {
	Rows    *telemetry.Counter   // rows dispatched to this replica
	Errors  *telemetry.Counter   // failed dispatches (dial or round-trip)
	Latency *telemetry.Histogram // round-trip µs per dispatched batch
	// Generation is the model lineage generation the replica last
	// advertised in hello negotiation (-1 until one is known), so a fleet
	// dashboard can spot a replica serving a stale model after an online
	// promotion rolled through the rest of the fleet.
	Generation *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry, nShards int) *Metrics {
	m := &Metrics{
		Requests: reg.Counter("fleet_requests_total"),
		Rows:     reg.Counter("fleet_rows_total"),
		Rerouted: reg.Counter("fleet_rerouted_rows_total"),
		Down:     reg.Counter("fleet_replica_down_total"),
		Up:       reg.Counter("fleet_replica_up_total"),
		Healthy:  reg.Gauge("fleet_healthy_replicas"),
		shed:     make(map[string]*telemetry.Counter, len(shedCauses)),
		shedSLO:  telemetry.NewSLO(reg, "fleet-shed", sloShedBudget, sloShedWindow),
		batchRows: reg.HistogramBuckets("fleet_batch_rows",
			batchHistBuckets),
		shards: make([]shardMetrics, nShards),
		reg:    reg,
	}
	for _, cause := range shedCauses {
		m.shed[cause] = reg.Counter("fleet_shed_rows_total", "cause", cause)
	}
	for i := range m.shards {
		label := itoa(i)
		m.shards[i] = shardMetrics{
			Rows:       reg.Counter("fleet_shard_rows_total", "shard", label),
			Errors:     reg.Counter("fleet_shard_errors_total", "shard", label),
			Latency:    reg.Histogram("fleet_shard_latency_us", "shard", label),
			Generation: reg.Gauge("fleet_replica_generation", "shard", label),
		}
		m.shards[i].Generation.Set(-1)
	}
	return m
}

// Registry exposes the registry hosting the fleet metrics.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// Shed counts one refused row against its cause and the shed-rate SLO.
func (m *Metrics) Shed(cause string) {
	if c, ok := m.shed[cause]; ok {
		c.Add(1)
	}
	m.shedSLO.Observe(true)
}

// Admitted counts one row accepted into a shard queue toward the
// shed-rate SLO denominator.
func (m *Metrics) Admitted() { m.shedSLO.Observe(false) }

// ShedTotal sums the shed counters across causes.
func (m *Metrics) ShedTotal() int64 {
	var n int64
	for _, c := range m.shed {
		n += c.Load()
	}
	return n
}

// ObserveDispatch records one batch sent to a shard: n rows, round-trip d.
func (m *Metrics) ObserveDispatch(shard, n int, d time.Duration) {
	m.ObserveDispatchTraced(shard, n, d, 0)
}

// ObserveDispatchTraced is ObserveDispatch carrying a sampled batch's
// trace ID: the shard-latency bucket the round trip lands in keeps the
// ID as its exemplar (traceID 0 is exactly ObserveDispatch).
func (m *Metrics) ObserveDispatchTraced(shard, n int, d time.Duration, traceID uint64) {
	m.batchRows.Observe(int64(n))
	m.shards[shard].Rows.Add(int64(n))
	m.shards[shard].Latency.ObserveExemplar(d.Microseconds(), traceID)
}

// itoa formats a small non-negative int without pulling in strconv.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [6]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
