package fleet

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

// ledgeredReplica runs one in-process replica with the efficiency ledger
// enabled and its HTTP surface on loopback.
func ledgeredReplica(tb testing.TB, seed int64) (tcpAddr, httpURL string, srv *serve.Server) {
	tb.Helper()
	var addr string
	addr, srv = startReplica(tb, seed, serve.Options{})
	srv.SetLedger(ledger.New(ledger.Options{}))
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return addr, ts.URL, srv
}

func feedReplica(tb testing.TB, srv *serve.Server, n int, seed int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]serve.Request, n)
	for i := range rows {
		rows[i] = serve.Request{Preset: 0.1, Features: featureRow(rng), GPU: int32(i), Cluster: 0}
	}
	if got := srv.DecideBatch(rows, nil); len(got) != n {
		tb.Fatalf("%d decisions for %d rows", len(got), n)
	}
}

// TestRouterLedgerScrapeAndMerge drives the aggregation plane end to
// end: two ledgered replicas serve traffic, the router scrapes both over
// HTTP, and the merged aggregate (decision sums, fleet gauges,
// /debug/ledger payload, prom exposition) reflects the whole fleet.
func TestRouterLedgerScrapeAndMerge(t *testing.T) {
	tcp1, url1, srv1 := ledgeredReplica(t, 100)
	tcp2, url2, srv2 := ledgeredReplica(t, 101)
	feedReplica(t, srv1, 30, 1)
	feedReplica(t, srv2, 50, 2)

	rt, err := NewRouter(Options{
		Replicas:       []string{tcp1, tcp2},
		ReplicaHTTP:    []string{url1, url2},
		ScrapeInterval: time.Hour, // tests step the plane explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	now := time.Unix(50_000, 0)
	if !rt.ScrapeLedgers(now) {
		t.Fatal("ledger plane not enabled despite ReplicaHTTP")
	}
	agg := rt.LedgerAggregate()
	if agg == nil {
		t.Fatal("no aggregate after scrape")
	}
	if agg.Merged.Decisions != 80 {
		t.Fatalf("merged decisions = %d, want 80", agg.Merged.Decisions)
	}
	if len(agg.Replicas) != 2 || agg.Replicas[0].Err != "" || agg.Replicas[1].Err != "" {
		t.Fatalf("replica states = %+v", agg.Replicas)
	}
	if agg.Merged.EnergyMaxPJ <= 0 {
		t.Fatalf("merged snapshot has no energy accounting: %+v", agg.Merged)
	}

	// Fleet gauges ride the router registry.
	reg := rt.Telemetry()
	if got := reg.Gauge("ledger_fleet_decisions").Value(); got != 80 {
		t.Fatalf("ledger_fleet_decisions = %v, want 80", got)
	}
	if got := reg.Gauge("ledger_replicas_ok").Value(); got != 2 {
		t.Fatalf("ledger_replicas_ok = %v, want 2", got)
	}

	// /debug/ledger serves the aggregate with the right Content-Type.
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentTypeJSON {
		t.Fatalf("/debug/ledger Content-Type = %q, want %q", got, telemetry.ContentTypeJSON)
	}
	got, err := ReadLedgerAggregate(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Merged.Decisions != 80 {
		t.Fatalf("served aggregate decisions = %d, want 80", got.Merged.Decisions)
	}
}

// TestRouterLedgerStaleAlertFiresAndClears exercises a full alert
// lifecycle through the plane: a replica whose ledger stops advancing
// goes stale (fire), then advances again (clear).
func TestRouterLedgerStaleAlertFiresAndClears(t *testing.T) {
	// A stub replica whose ledger snapshot the test scripts directly.
	decisions := int64(10)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/ledger" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
		ledger.Snapshot{Decisions: decisions, EnergyMaxPJ: 1000, EnergyPJ: 800}.WriteJSON(w)
	}))
	defer stub.Close()

	rt, err := NewRouter(Options{
		Replicas:       []string{"127.0.0.1:1"}, // never dialed by this test
		ReplicaHTTP:    []string{stub.URL},
		ScrapeInterval: time.Hour,
		AlertRules:     []ledger.Rule{{Kind: ledger.KindStale, Threshold: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	base := time.Unix(80_000, 0)
	rt.ScrapeLedgers(base) // first contact: watermark starts
	if agg := rt.LedgerAggregate(); agg.Alerts[0].Firing {
		t.Fatalf("stale fired immediately: %+v", agg.Alerts[0])
	}

	// The ledger stops advancing for 30 s of scrapes → fire.
	rt.ScrapeLedgers(base.Add(30 * time.Second))
	agg := rt.LedgerAggregate()
	if !agg.Alerts[0].Firing {
		t.Fatalf("stale alert did not fire: %+v", agg.Alerts[0])
	}
	if got := rt.Telemetry().Gauge("alert_firing", "rule", "stale").Value(); got != 1 {
		t.Fatalf("alert_firing{rule=stale} = %v, want 1", got)
	}
	if got := rt.Telemetry().Gauge("ledger_alerts_firing").Value(); got != 1 {
		t.Fatalf("ledger_alerts_firing = %v, want 1", got)
	}

	// Decisions advance again → clear.
	decisions = 500
	rt.ScrapeLedgers(base.Add(31 * time.Second))
	agg = rt.LedgerAggregate()
	if agg.Alerts[0].Firing {
		t.Fatalf("stale alert did not clear: %+v", agg.Alerts[0])
	}
	if got := rt.Telemetry().Gauge("alert_firing", "rule", "stale").Value(); got != 0 {
		t.Fatalf("alert_firing{rule=stale} = %v, want 0", got)
	}

	// Both transitions are on the event log.
	evs := rt.LedgerEvents().Snapshot(nil)
	if len(evs) != 2 || evs[0].Kind != "alert_fire" || evs[1].Kind != "alert_clear" {
		t.Fatalf("transition events = %+v", evs)
	}
}

// TestRouterLedgerScrapeErrorCountsAndGoesStale: a replica without a
// ledger (404) is a scrape error and eventually a stale alert — the
// deliberate-trigger path ledger_smoke.sh uses.
func TestRouterLedgerScrapeErrorCountsAndGoesStale(t *testing.T) {
	noLedger := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer noLedger.Close()

	rt, err := NewRouter(Options{
		Replicas:       []string{"127.0.0.1:1"},
		ReplicaHTTP:    []string{noLedger.URL},
		ScrapeInterval: time.Hour,
		AlertRules:     []ledger.Rule{{Kind: ledger.KindStale, Threshold: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	base := time.Unix(90_000, 0)
	rt.ScrapeLedgers(base)
	rt.ScrapeLedgers(base.Add(10 * time.Second))
	if got := rt.Telemetry().Counter("ledger_scrape_errors_total").Load(); got != 2 {
		t.Fatalf("ledger_scrape_errors_total = %d, want 2", got)
	}
	agg := rt.LedgerAggregate()
	if !agg.Alerts[0].Firing {
		t.Fatalf("stale alert did not fire for ledger-less replica: %+v", agg.Alerts[0])
	}
	if agg.Replicas[0].Err == "" {
		t.Fatal("replica state does not carry the scrape error")
	}
}

// TestRouterLedgerDisabled pins the off state: no ReplicaHTTP → no
// plane, /debug/ledger 404s, ScrapeLedgers reports disabled.
func TestRouterLedgerDisabled(t *testing.T) {
	rt, err := NewRouter(Options{Replicas: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.ScrapeLedgers(time.Now()) {
		t.Fatal("ScrapeLedgers reported enabled without ReplicaHTTP")
	}
	if rt.LedgerAggregate() != nil {
		t.Fatal("aggregate non-nil without ReplicaHTTP")
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/ledger = %d without plane, want 404", resp.StatusCode)
	}
}

// TestRouterHandlerContentTypes is the table-driven header satellite for
// the router surface.
func TestRouterHandlerContentTypes(t *testing.T) {
	tcp1, url1, srv1 := ledgeredReplica(t, 104)
	feedReplica(t, srv1, 10, 3)
	rt, err := NewRouter(Options{
		Replicas:       []string{tcp1},
		ReplicaHTTP:    []string{url1},
		ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.ScrapeLedgers(time.Unix(1_000_000, 0))

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	cases := []struct {
		path string
		want string
	}{
		{"/metrics", telemetry.ContentTypeJSON},
		{"/metrics.prom", telemetry.ContentTypeProm},
		{"/healthz", telemetry.ContentTypeJSON},
		{"/debug/ledger", telemetry.ContentTypeJSON},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Fatalf("GET %s: Content-Type %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestFleetPromExpositionLintClean runs the promlint satellite over the
// router registry with the ledger plane active.
func TestFleetPromExpositionLintClean(t *testing.T) {
	tcp1, url1, srv1 := ledgeredReplica(t, 105)
	feedReplica(t, srv1, 20, 4)
	rt, err := NewRouter(Options{
		Replicas:       []string{tcp1},
		ReplicaHTTP:    []string{url1},
		ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.ScrapeLedgers(time.Unix(1_000_000, 0))

	var buf bytes.Buffer
	if err := rt.Telemetry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := telemetry.LintProm(bytes.NewReader(buf.Bytes())); len(errs) != 0 {
		t.Fatalf("fleet exposition fails promlint: %v\n%s", errs, buf.String())
	}
	for _, name := range []string{"ledger_fleet_decisions", "ledger_fleet_energy_saved_pj", "alert_firing"} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("fleet exposition missing %s", name)
		}
	}
}
