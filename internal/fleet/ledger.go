package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/telemetry"
)

// LedgerAggregate is the router's fleet-wide efficiency view: the merged
// snapshot across every scraped replica, the per-replica states behind
// it, and the alert evaluation — the /debug/ledger payload and what
// dvfstop renders.
type LedgerAggregate struct {
	// AtUnix is when the scrape completed, Unix seconds.
	AtUnix   int64                  `json:"at_unix"`
	Merged   ledger.Snapshot        `json:"merged"`
	Replicas []ledger.ReplicaLedger `json:"replicas"`
	Alerts   []ledger.AlertState    `json:"alerts,omitempty"`
}

// WriteJSON writes the aggregate as indented JSON.
func (a *LedgerAggregate) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadLedgerAggregate parses a WriteJSON payload.
func ReadLedgerAggregate(r io.Reader) (*LedgerAggregate, error) {
	var a LedgerAggregate
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("fleet: ledger aggregate: %w", err)
	}
	return &a, nil
}

// replicaLedgerState is the scrape loop's memory of one replica: its
// last good snapshot plus the watermark deciding staleness (when its
// decision count last advanced).
type replicaLedgerState struct {
	url           string
	snap          ledger.Snapshot
	haveSnap      bool
	lastDecisions int64
	lastAdvance   time.Time
	err           string
}

// ledgerPlane is the router's ledger aggregation plane: a scrape loop
// over the replicas' /debug/ledger endpoints, the deterministic merge,
// the alert evaluator, and the fleet-level gauges. The loop goroutine is
// the only writer; readers go through the atomic aggregate pointer.
type ledgerPlane struct {
	rt       *Router
	interval time.Duration
	client   *http.Client
	alerts   *ledger.Alerts
	events   *telemetry.EventLog
	states   []replicaLedgerState
	agg      atomic.Pointer[LedgerAggregate]

	scrapes      *telemetry.Counter
	scrapeErrors *telemetry.Counter
	replicasOK   *telemetry.Gauge
	decisions    *telemetry.Gauge
	savedPJ      *telemetry.Gauge
	savedRatio   *telemetry.Gauge
	lossMean     *telemetry.Gauge
	burn         *telemetry.Gauge
	firing       *telemetry.Gauge
}

func newLedgerPlane(rt *Router, opts Options) *ledgerPlane {
	reg := rt.Telemetry()
	p := &ledgerPlane{
		rt:       rt,
		interval: opts.ScrapeInterval,
		client:   &http.Client{Timeout: opts.ScrapeInterval},
		events:   telemetry.NewEventLog(0, reg),
		states:   make([]replicaLedgerState, len(opts.ReplicaHTTP)),

		scrapes:      reg.Counter("ledger_scrapes_total"),
		scrapeErrors: reg.Counter("ledger_scrape_errors_total"),
		replicasOK:   reg.Gauge("ledger_replicas_ok"),
		decisions:    reg.Gauge("ledger_fleet_decisions"),
		savedPJ:      reg.Gauge("ledger_fleet_energy_saved_pj"),
		savedRatio:   reg.Gauge("ledger_fleet_energy_saved_ratio"),
		lossMean:     reg.Gauge("ledger_fleet_perf_loss_mean_ppm"),
		burn:         reg.Gauge("ledger_fleet_budget_burn"),
		firing:       reg.Gauge("ledger_alerts_firing"),
	}
	p.alerts = ledger.NewAlerts(opts.AlertRules, reg, p.events)
	for i, u := range opts.ReplicaHTTP {
		p.states[i].url = strings.TrimRight(u, "/")
	}
	return p
}

func (p *ledgerPlane) loop() {
	defer p.rt.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.rt.stop:
			return
		case <-t.C:
			p.scrapeOnce(time.Now())
		}
	}
}

// scrapeOnce pulls every replica's ledger, merges, evaluates alerts, and
// publishes the aggregate. It is the loop body, exported to tests via
// Router.ScrapeLedgers for deterministic single-step evaluation; it must
// only run from one goroutine at a time.
func (p *ledgerPlane) scrapeOnce(now time.Time) {
	p.scrapes.Add(1)
	ok := 0
	for i := range p.states {
		st := &p.states[i]
		snap, err := p.fetch(st.url + "/debug/ledger")
		if st.lastAdvance.IsZero() {
			// First contact (successful or not) starts the staleness clock;
			// a replica that never answers must still go stale.
			st.lastAdvance = now
		}
		if err != nil {
			st.err = err.Error()
			p.scrapeErrors.Add(1)
			continue
		}
		st.err = ""
		st.snap = snap
		st.haveSnap = true
		ok++
		if snap.Decisions > st.lastDecisions {
			st.lastDecisions = snap.Decisions
			st.lastAdvance = now
		}
	}
	p.replicasOK.Set(float64(ok))

	reps := make([]ledger.ReplicaLedger, len(p.states))
	snaps := make([]ledger.Snapshot, 0, len(p.states))
	for i, st := range p.states {
		reps[i] = ledger.ReplicaLedger{
			Addr:            st.url,
			Snapshot:        st.snap,
			Err:             st.err,
			LastAdvanceUnix: st.lastAdvance.Unix(),
		}
		if st.haveSnap {
			snaps = append(snaps, st.snap)
		}
	}
	merged := ledger.Merge(snaps...)
	states := p.alerts.Eval(now, merged, reps)

	p.decisions.Set(float64(merged.Decisions))
	p.savedPJ.Set(float64(merged.SavedPJ()))
	p.savedRatio.Set(merged.SavedRatio())
	p.lossMean.Set(merged.MeanPerfLoss() * 1e6)
	p.burn.Set(merged.BudgetBurn())
	nFiring := 0
	for _, st := range states {
		if st.Firing {
			nFiring++
		}
	}
	p.firing.Set(float64(nFiring))

	p.agg.Store(&LedgerAggregate{
		AtUnix:   now.Unix(),
		Merged:   merged,
		Replicas: reps,
		Alerts:   states,
	})
}

func (p *ledgerPlane) fetch(url string) (ledger.Snapshot, error) {
	resp, err := p.client.Get(url)
	if err != nil {
		return ledger.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return ledger.Snapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return ledger.ReadSnapshot(io.LimitReader(resp.Body, 16<<20))
}

// ScrapeLedgers runs one synchronous ledger scrape+merge+alert pass
// (normally the background loop's job) and reports whether the plane is
// enabled. Tests use it to step the plane deterministically; it must not
// race the background loop, so call it only on routers built with a very
// long ScrapeInterval.
func (rt *Router) ScrapeLedgers(now time.Time) bool {
	if rt.plane == nil {
		return false
	}
	rt.plane.scrapeOnce(now)
	return true
}

// LedgerAggregate returns the newest merged fleet ledger view, or nil
// when the plane is disabled or has not completed a scrape yet.
func (rt *Router) LedgerAggregate() *LedgerAggregate {
	if rt.plane == nil {
		return nil
	}
	return rt.plane.agg.Load()
}

// LedgerEvents returns the alert transition log, or nil when the ledger
// plane is disabled.
func (rt *Router) LedgerEvents() *telemetry.EventLog {
	if rt.plane == nil {
		return nil
	}
	return rt.plane.events
}

// handleLedger serves the merged fleet ledger at /debug/ledger. 404 when
// the plane is disabled, 503 before the first scrape completes.
func (rt *Router) handleLedger(w http.ResponseWriter, r *http.Request) {
	if rt.plane == nil {
		http.Error(w, "ledger aggregation disabled (no -replica-http)", http.StatusNotFound)
		return
	}
	agg := rt.plane.agg.Load()
	if agg == nil {
		http.Error(w, "no ledger scrape completed yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	if err := agg.WriteJSON(w); err != nil {
		rt.opts.Logf("fleet: ledger write: %v", err)
	}
}
