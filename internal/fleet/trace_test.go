package fleet

import (
	"bytes"
	"math/rand"
	"net"
	"testing"

	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

// TestFleetTracingEndToEnd drives one sampled traced request through the
// full tier — client → router → replica — and checks that every hop's
// spans share the request's trace ID, the router attributes queue /
// coalesce / dispatch time, the replica attributes inference time, and
// the replica's flight recorder stamps the trace ID.
func TestFleetTracingEndToEnd(t *testing.T) {
	var routerSpans bytes.Buffer
	replicaTracers := make([]*telemetry.Tracer, 3)
	replicaBufs := make([]*bytes.Buffer, 3)

	opts := Options{Seed: 42, Tracer: telemetry.NewTracer(&routerSpans)}
	srvs := make([]*serve.Server, 3)
	for i := range srvs {
		var addr string
		addr, srvs[i] = startReplica(t, int64(100+i), serve.Options{})
		replicaBufs[i] = &bytes.Buffer{}
		replicaTracers[i] = telemetry.NewTracer(replicaBufs[i])
		srvs[i].SetTracer(replicaTracers[i])
		srvs[i].EnableProvenance(64, provenance.MonitorOptions{})
		opts.Replicas = append(opts.Replicas, addr)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rt.ServeTCP(l)

	var clientSpans bytes.Buffer
	cl, err := serve.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTracer(telemetry.NewTracer(&clientSpans))

	hello, err := cl.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if !hello.Router || !hello.Tracing {
		t.Fatalf("router hello = %+v, want Router and Tracing", hello)
	}

	rng := rand.New(rand.NewSource(7))
	rows := []serve.Request{
		{Preset: 0.1, Features: featureRow(rng), GPU: 4, Cluster: 2},
		{Preset: 0.3, Features: featureRow(rng), GPU: 9, Cluster: 1},
	}
	tc := telemetry.NewSampler(1, 99).Next()
	decs, hops, err := cl.DecideKeyedTraced(rows, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(rows) {
		t.Fatalf("got %d decisions", len(decs))
	}
	for i, d := range decs {
		if d.Reason != provenance.ReasonModel || d.Shard < 0 {
			t.Fatalf("decision %d = %+v, want model answer with a shard", i, d)
		}
	}
	if hops.DispatchUs == 0 {
		t.Fatalf("no dispatch time attributed: %+v", hops)
	}

	wantID := telemetry.FormatTraceID(tc.TraceID)
	names := map[string]bool{}
	collect := func(tr *telemetry.Tracer, buf *bytes.Buffer) {
		t.Helper()
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		spans, err := telemetry.ReadSpans(buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range spans {
			if sp.TraceID != wantID {
				t.Fatalf("span %s carries trace %q, want %q", sp.Name, sp.TraceID, wantID)
			}
			names[sp.Name] = true
		}
	}
	collect(rt.opts.Tracer, &routerSpans)
	for i, tr := range replicaTracers {
		collect(tr, replicaBufs[i])
	}
	for _, want := range []string{
		"router.queue", "router.coalesce", "router.dispatch",
		"engine.decode", "engine.batch", "engine.inference",
	} {
		if !names[want] {
			t.Fatalf("missing span %q across all hops (got %v)", want, names)
		}
	}

	// The replicas that answered stamped the trace ID into provenance.
	stamped := 0
	for _, srv := range srvs {
		for _, rec := range srv.FlightRecorder().Snapshot(nil) {
			if rec.TraceID == tc.TraceID {
				stamped++
			}
		}
	}
	if stamped != len(rows) {
		t.Fatalf("%d provenance records stamped, want %d", stamped, len(rows))
	}

	// An unsampled context still routes — the plain keyed path.
	decs, hops, err = cl.DecideKeyedTraced(rows, telemetry.TraceContext{})
	if err != nil || len(decs) != len(rows) {
		t.Fatalf("unsampled call: %v %+v", err, decs)
	}
	if hops != (serve.HopTimings{}) {
		t.Fatalf("unsampled call returned hops %+v", hops)
	}
}

// TestShedSLOAndShedSpans checks the shed-rate SLO burn gauge moves when
// admission control refuses rows, and a sampled shed row gets a
// router.shed span with its cause.
func TestShedSLOAndShedSpans(t *testing.T) {
	var spans bytes.Buffer
	rt, err := NewRouter(Options{
		Replicas: []string{"127.0.0.1:1"}, // nothing listens: dial fails
		Seed:     7,
		MaxHops:  1,
		Tracer:   telemetry.NewTracer(&spans),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rng := rand.New(rand.NewSource(8))
	rows := []serve.Request{{Preset: 0.2, Features: featureRow(rng), GPU: 1, Cluster: 1}}
	tc := telemetry.NewSampler(1, 3).Next()
	decs, hops := rt.DecideTraced(rows, nil, tc)
	if decs[0].Reason != provenance.ReasonShed {
		t.Fatalf("decision = %+v, want shed", decs[0])
	}
	if hops.QueueUs == 0 {
		t.Fatalf("shed row attributed no queue time: %+v", hops)
	}
	if rt.Metrics().ShedTotal() == 0 {
		t.Fatal("shed counter did not move")
	}
	if err := rt.opts.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ReadSpans(&spans)
	if err != nil {
		t.Fatal(err)
	}
	foundShed := false
	for _, sp := range got {
		if sp.Name == "router.shed" {
			foundShed = true
			if sp.Attrs["cause"] == "" {
				t.Fatalf("shed span has no cause attr: %+v", sp)
			}
		}
	}
	if !foundShed {
		t.Fatalf("no router.shed span in %v", got)
	}
}
