package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/serve"
	"ssmdvfs/internal/telemetry"
)

// Options configures a Router.
type Options struct {
	// Replicas are the binary-protocol addresses of the ssmdvfsd replicas
	// behind this router. Required.
	Replicas []string
	// VNodes and Seed configure the consistent-hash ring (see RingOptions).
	VNodes int
	Seed   uint64

	// CoalesceWait bounds how long a non-full batch may linger absorbing
	// more rows before it ships regardless (default 200 µs). Batching is
	// adaptive below that bound: a batch dispatches the moment a slot is
	// free and only grows while every slot is busy, so coalescing costs
	// no latency under light load. CoalesceRows bounds the batch size
	// (default 64, capped at serve.MaxBatch).
	CoalesceWait time.Duration
	CoalesceRows int

	// MaxInFlight is how many coalesced batches one shard may have on the
	// wire at once; each slot owns its own connection (default 2).
	MaxInFlight int
	// QueueLen is the per-shard admission queue capacity (default 1024).
	// A full queue sheds at submit time.
	QueueLen int
	// QueueDeadline sheds rows that waited longer than this between
	// submit and dispatch (default 2 ms); a row that stale is answered by
	// the analytical fallback rather than a late model decision. Zero
	// disables the deadline.
	QueueDeadline time.Duration
	// MaxHops bounds how many times one row may be rerouted to another
	// replica after dispatch failures before it sheds (default 1).
	MaxHops int

	// ExpectBackend, when non-empty, is the inference backend every
	// replica must advertise in hello negotiation ("float64" or "int8").
	// A replica answering with a different backend — including a legacy
	// peer that advertises none — is treated as failed and taken out of
	// the ring, so a fleet pinned to int8 never silently mixes numerics
	// across shards. Empty accepts any replica.
	ExpectBackend string

	// Table is the operating-point table shed rows fall back to; nil
	// means the TitanX table used throughout the project.
	Table *clockdomain.Table
	// Dial configures the router→replica connections. Zero values get a
	// 1 s connect timeout and no retries (the router's reroute path is
	// its retry policy).
	Dial serve.DialOptions
	// ProbeInterval is how often every replica is re-dialed — unhealthy
	// ones for recovery, healthy ones to refresh the model lineage
	// generation they advertise (default 250 ms).
	ProbeInterval time.Duration
	// Tracer, when set, emits router-hop spans (router.queue,
	// router.coalesce, router.dispatch, router.reroute, router.shed) for
	// sampled traced requests. Nil keeps the routing path span-free; the
	// unsampled path pays only a flag check either way.
	Tracer *telemetry.Tracer
	// Logf receives progress messages; nil silences them.
	Logf func(format string, args ...any)

	// ReplicaHTTP lists the replicas' HTTP base URLs (e.g.
	// "http://127.0.0.1:8080"); when non-empty the router runs a ledger
	// scrape loop that pulls every replica's /debug/ledger snapshot,
	// merges them, evaluates AlertRules, and serves the fleet view at
	// /debug/ledger + ledger_fleet_*/alert_* series on /metrics.prom.
	// Empty (the default) disables the aggregation plane entirely.
	ReplicaHTTP []string
	// ScrapeInterval is the ledger scrape cadence (default 1 s).
	ScrapeInterval time.Duration
	// AlertRules are evaluated against the merged ledger every scrape;
	// nil runs ledger.DefaultRules() (pass an empty non-nil slice to
	// scrape without alerting).
	AlertRules []ledger.Rule
}

func (o Options) withDefaults() Options {
	if o.CoalesceWait <= 0 {
		o.CoalesceWait = 200 * time.Microsecond
	}
	if o.CoalesceRows <= 0 {
		o.CoalesceRows = 64
	}
	if o.CoalesceRows > serve.MaxBatch {
		o.CoalesceRows = serve.MaxBatch
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.QueueDeadline < 0 {
		o.QueueDeadline = 0
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 1
	}
	if o.Table == nil {
		o.Table = clockdomain.TitanX()
	}
	if o.Dial.Timeout <= 0 {
		o.Dial.Timeout = time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = time.Second
	}
	if o.AlertRules == nil {
		o.AlertRules = ledger.DefaultRules()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// call is one row in flight through the router: submitted to a shard
// queue, coalesced into a batch, dispatched, and answered (by a replica,
// a reroute, or the shed fallback). done closes exactly once, after dec
// is final.
type call struct {
	req  serve.Request
	enq  time.Time
	hops int
	dec  serve.Decision
	done chan struct{}

	// tc is the front-end trace context the row arrived under (zero for
	// untraced rows); deq is when the coalescer pulled the row off the
	// queue (stamped only for sampled rows); hop accumulates the row's
	// per-hop latency attribution for the traced response.
	tc  telemetry.TraceContext
	deq time.Time
	hop serve.HopTimings
}

// shard is one replica's routing state: the admission queue, the
// coalescer feeding batches, and the dispatchers draining them.
type shard struct {
	idx     int
	addr    string
	queue   chan *call
	batches chan []*call
	// gen is the model lineage generation the replica last advertised in
	// hello negotiation; -1 until a hello has been seen. Refreshed on
	// every dispatch-slot connect and on every prober tick (healthy
	// replicas included), so a replica left behind by an online promotion
	// is flagged within one probe interval.
	gen atomic.Int64
}

// Router is the fleet serving tier: it owns the consistent-hash ring,
// one coalescer+dispatcher pipeline per replica, admission control, and
// the v2/v3 front-end transport. Rows enter via Decide (in-process) or
// ServeConn (wire), are routed by their (gpu, cluster) key, coalesced
// into multi-row v3 frames per replica, and always come back with a
// decision — model, rerouted, or shed-to-fallback — never an error.
type Router struct {
	opts    Options
	expect  infer.Kind // parsed Options.ExpectBackend; "" accepts any
	ring    *Ring
	metrics *Metrics
	shards  []*shard

	stop    chan struct{}
	stopMu  sync.RWMutex // guards stopped against racing submits
	stopped bool
	wg      sync.WaitGroup

	synthSeq atomic.Int64 // synthetic identity for unkeyed rows
	connSeq  atomic.Int64

	conns sync.Map // net.Conn → struct{}, for Close
	ls    sync.Map // net.Listener → struct{}, for Close

	// plane is the ledger aggregation plane, nil unless ReplicaHTTP was
	// configured.
	plane *ledgerPlane
}

// NewRouter builds and starts a router over the replica set: the ring,
// one coalescer and MaxInFlight dispatchers per shard, and the health
// prober all start immediately.
func NewRouter(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	var expect infer.Kind
	if opts.ExpectBackend != "" {
		k, err := infer.ParseKind(opts.ExpectBackend)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		expect = k
	}
	ring, err := NewRing(RingOptions{Replicas: opts.Replicas, VNodes: opts.VNodes, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	names := ring.Replicas()
	rt := &Router{
		opts:    opts,
		expect:  expect,
		ring:    ring,
		metrics: newMetrics(telemetry.NewRegistry(), len(names)),
		shards:  make([]*shard, len(names)),
		stop:    make(chan struct{}),
	}
	rt.metrics.Healthy.Set(float64(ring.Healthy()))
	for i, addr := range names {
		s := &shard{
			idx:     i,
			addr:    addr,
			queue:   make(chan *call, opts.QueueLen),
			batches: make(chan []*call, opts.MaxInFlight),
		}
		s.gen.Store(-1)
		rt.shards[i] = s
		rt.wg.Add(1 + opts.MaxInFlight)
		go rt.coalesce(s)
		for d := 0; d < opts.MaxInFlight; d++ {
			go rt.dispatch(s)
		}
	}
	rt.wg.Add(1)
	go rt.probe()
	if len(opts.ReplicaHTTP) > 0 {
		rt.plane = newLedgerPlane(rt, opts)
		rt.wg.Add(1)
		go rt.plane.loop()
	}
	return rt, nil
}

// Ring exposes the router's consistent-hash ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Metrics exposes the router's counters.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// Telemetry exposes the registry hosting the fleet metrics.
func (rt *Router) Telemetry() *telemetry.Registry { return rt.metrics.Registry() }

// NumShards returns the replica count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Decide routes every row through the fleet and appends one Decision per
// row to decs, in row order. It blocks until all rows are answered; rows
// the fleet cannot serve in time come back shed to the analytical
// fallback (Reason == ReasonShed), never as an error. Rows without a
// (gpu, cluster) identity get a synthetic one so they still shard.
func (rt *Router) Decide(rows []serve.Request, decs []serve.Decision) []serve.Decision {
	decs, _ = rt.DecideTraced(rows, decs, telemetry.TraceContext{})
	return decs
}

// DecideTraced is Decide carrying distributed-trace context: sampled
// rows emit router.queue/coalesce/dispatch spans, propagate the context
// to replicas that advertised tracing, and return the batch's per-hop
// latency attribution (merged across rows as a per-field max). A zero
// context is exactly Decide.
func (rt *Router) DecideTraced(rows []serve.Request, decs []serve.Decision, tc telemetry.TraceContext) ([]serve.Decision, serve.HopTimings) {
	rt.metrics.Requests.Add(1)
	calls := make([]*call, len(rows))
	for i := range rows {
		c := &call{req: rows[i], enq: time.Now(), tc: tc, done: make(chan struct{})}
		if c.req.GPU < 0 || c.req.Cluster < 0 {
			seq := rt.synthSeq.Add(1)
			c.req.GPU = int32(seq % (1 << 30))
			c.req.Cluster = int32(i)
		}
		calls[i] = c
		rt.submit(c)
	}
	var hops serve.HopTimings
	for _, c := range calls {
		<-c.done
		decs = append(decs, c.dec)
		hops.Merge(c.hop)
	}
	return decs, hops
}

// submit routes one call to its shard's admission queue, shedding on a
// full queue, an empty ring, or a closing router. After submit the call
// is guaranteed to complete.
func (rt *Router) submit(c *call) {
	rt.stopMu.RLock()
	defer rt.stopMu.RUnlock()
	if rt.stopped {
		rt.shedCall(c, ShedShutdown)
		return
	}
	shardIdx, ok := rt.ring.Lookup(Key(rt.ring.Seed(), c.req.GPU, c.req.Cluster))
	if !ok {
		rt.shedCall(c, ShedNoReplica)
		return
	}
	select {
	case rt.shards[shardIdx].queue <- c:
		rt.metrics.Rows.Add(1)
		rt.metrics.Admitted()
	default:
		rt.shedCall(c, ShedQueueFull)
	}
}

// shedCall answers one call from the analytical fallback and counts why.
// Shed rows carry ReasonShed and no shard, so clients and the flight
// recorder can tell an admission-control answer from a model answer.
func (rt *Router) shedCall(c *call, cause string) {
	level, pred := baselines.FallbackDecision(rt.opts.Table, c.req.Features, c.req.Preset)
	c.dec = serve.Decision{
		Level: level, Reason: provenance.ReasonShed, PredInstr: pred,
		Shard: -1, Rerouted: c.hops > 0,
	}
	rt.metrics.Shed(cause)
	if c.tc.Sampled() {
		now := time.Now()
		c.hop.QueueUs = serve.DurUs32(now.Sub(c.enq))
		sp := rt.opts.Tracer.StartSpanAt(c.tc, "router.shed", c.enq, "cause", cause)
		sp.EndAt(now)
	}
	close(c.done)
}

// coalesce is one shard's batching loop. Batching is adaptive: a batch
// is handed off the moment a dispatch slot is free (no added latency
// under light load), keeps absorbing queued rows while all slots are
// busy (frames grow exactly when the wire is the bottleneck), and ships
// regardless once it is CoalesceRows full or has lingered CoalesceWait.
// On shutdown it sheds whatever is still queued.
func (rt *Router) coalesce(s *shard) {
	defer rt.wg.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		var first *call
		select {
		case first = <-s.queue:
		case <-rt.stop:
			rt.drainQueue(s)
			return
		}
		stampDeq(first)
		batch := make([]*call, 1, rt.opts.CoalesceRows)
		batch[0] = first
		timer.Reset(rt.opts.CoalesceWait)
		sent, expired := false, false
		for !sent && !expired && len(batch) < rt.opts.CoalesceRows {
			select {
			case s.batches <- batch:
				sent = true
			case c := <-s.queue:
				stampDeq(c)
				batch = append(batch, c)
			case <-timer.C:
				expired = true
			case <-rt.stop:
				for _, c := range batch {
					rt.shedCall(c, ShedShutdown)
				}
				rt.drainQueue(s)
				return
			}
		}
		if !timer.Stop() && !expired {
			<-timer.C
		}
		if !sent {
			// Full or past the linger bound: block until a slot frees.
			select {
			case s.batches <- batch:
			case <-rt.stop:
				for _, c := range batch {
					rt.shedCall(c, ShedShutdown)
				}
				rt.drainQueue(s)
				return
			}
		}
	}
}

// drainQueue sheds everything still queued on a closing shard. Safe to
// run to empty: Close flips stopped before closing the stop channel, so
// no new calls can enter the queue afterwards.
func (rt *Router) drainQueue(s *shard) {
	for {
		select {
		case c := <-s.queue:
			rt.shedCall(c, ShedShutdown)
		default:
			return
		}
	}
}

// stampDeq records when the coalescer pulled a sampled call off its
// shard queue — the boundary between queue wait and coalesce linger.
// Unsampled calls skip the clock read.
func stampDeq(c *call) {
	if c.tc.Sampled() {
		c.deq = time.Now()
	}
}

// dispatch is one in-flight slot for a shard: it owns one connection and
// drains coalesced batches onto it. A failed round-trip marks the
// replica unhealthy and reroutes the batch through the ring; rows past
// their queue deadline shed before any bytes move.
func (rt *Router) dispatch(s *shard) {
	defer rt.wg.Done()
	var cl *serve.Client
	tracing := false // did this slot's replica advertise tracing?
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	var rows []serve.Request
	for batch := range s.batches {
		// Admission deadline: a row that waited past QueueDeadline is
		// answered by the fallback now — a late DVFS decision is worse
		// than a safe analytical one.
		live := batch[:0]
		if dl := rt.opts.QueueDeadline; dl > 0 {
			now := time.Now()
			for _, c := range batch {
				if now.Sub(c.enq) > dl {
					rt.shedCall(c, ShedDeadline)
				} else {
					live = append(live, c)
				}
			}
		} else {
			live = batch
		}
		if len(live) == 0 {
			continue
		}

		if cl == nil {
			c, tr, err := rt.dialReplica(s)
			if err != nil {
				rt.replicaFailed(s, live, err)
				continue
			}
			cl, tracing = c, tr
		}
		rows = rows[:0]
		for _, c := range live {
			rows = append(rows, c.req)
		}
		// The first sampled call's context parents this batch's dispatch
		// span and rides to the replica (coalesced batches share one
		// downstream trace; every sampled row still gets its own queue
		// and coalesce spans below).
		var parentTC telemetry.TraceContext
		for _, c := range live {
			if c.tc.Sampled() {
				parentTC = c.tc
				break
			}
		}
		dspSp := rt.opts.Tracer.StartSpan(parentTC, "router.dispatch", "shard", s.addr)
		var (
			decs    []serve.Decision
			repHops serve.HopTimings
			err     error
		)
		start := time.Now()
		if tracing && parentTC.Sampled() {
			childTC := parentTC
			if dspSp != nil {
				childTC = dspSp.Context()
			}
			decs, repHops, err = cl.DecideKeyedTraced(rows, childTC)
		} else {
			decs, err = cl.DecideKeyed(rows)
		}
		rtt := time.Since(start)
		dspSp.End()
		if err != nil {
			cl.Close()
			cl = nil
			rt.replicaFailed(s, live, err)
			continue
		}
		rt.metrics.ObserveDispatchTraced(s.idx, len(live), rtt, parentTC.TraceID)
		for i, c := range live {
			c.dec = decs[i]
			c.dec.Shard = s.idx
			c.dec.Rerouted = c.hops > 0
			if c.tc.Sampled() {
				c.hop.QueueUs = serve.DurUs32(c.deq.Sub(c.enq))
				c.hop.CoalesceUs = serve.DurUs32(start.Sub(c.deq))
				c.hop.DispatchUs = serve.DurUs32(rtt)
				c.hop.InferUs = repHops.InferUs
				if tr := rt.opts.Tracer; tr != nil {
					qs := tr.StartSpanAt(c.tc, "router.queue", c.enq)
					qs.EndAt(c.deq)
					cs := tr.StartSpanAt(c.tc, "router.coalesce", c.deq)
					cs.EndAt(start)
				}
			}
			close(c.done)
		}
	}
}

// dialReplica connects one dispatch slot to its replica and negotiates
// the protocol, reporting whether the peer advertised the tracing
// capability. Traced frames are only sent to peers that did — v2/v3
// replicas without tracing keep getting plain keyed frames. When the
// router pins a backend, a replica advertising any other is a dial
// failure: it leaves the ring rather than answer with the wrong numerics.
func (rt *Router) dialReplica(s *shard) (*serve.Client, bool, error) {
	cl, err := serve.DialContext(context.Background(), s.addr, rt.opts.Dial)
	if err != nil {
		return nil, false, err
	}
	hello, err := cl.Negotiate()
	if err != nil {
		cl.Close()
		return nil, false, err
	}
	if err := rt.checkBackend(hello); err != nil {
		cl.Close()
		return nil, false, err
	}
	rt.noteGeneration(s, hello)
	return cl, hello.Tracing, nil
}

// noteGeneration records the model lineage generation a replica
// advertised in hello negotiation.
func (rt *Router) noteGeneration(s *shard, hello serve.Hello) {
	s.gen.Store(int64(hello.Generation))
	rt.metrics.shards[s.idx].Generation.Set(float64(hello.Generation))
}

// checkBackend verifies a replica's advertised backend against the
// router's pin. A legacy peer advertises nothing and fails a pinned
// check — it might be serving anything.
func (rt *Router) checkBackend(hello serve.Hello) error {
	if rt.opts.ExpectBackend == "" || hello.Backend == rt.expect {
		return nil
	}
	got := string(hello.Backend)
	if got == "" {
		got = "none (legacy peer)"
	}
	return fmt.Errorf("fleet: replica advertises backend %s, router requires %q", got, rt.expect)
}

// replicaFailed marks a shard unhealthy and reroutes its in-flight calls
// through the ring (which now skips it). Calls out of hops shed instead.
func (rt *Router) replicaFailed(s *shard, calls []*call, err error) {
	rt.metrics.shards[s.idx].Errors.Add(1)
	if rt.ring.SetHealthy(s.idx, false) {
		rt.metrics.Down.Add(1)
		rt.metrics.Healthy.Set(float64(rt.ring.Healthy()))
		rt.opts.Logf("fleet: replica %s (shard %d) down: %v", s.addr, s.idx, err)
	}
	for _, c := range calls {
		if c.hops >= rt.opts.MaxHops {
			rt.shedCall(c, ShedNoReplica)
			continue
		}
		c.hops++
		rt.metrics.Rerouted.Add(1)
		if c.tc.Sampled() {
			sp := rt.opts.Tracer.StartSpan(c.tc, "router.reroute", "from", s.addr)
			sp.End()
		}
		rt.submit(c)
	}
}

// probe periodically re-dials every replica: unhealthy ones are restored
// to the ring on a successful re-negotiation (moving their keys back
// home), and healthy ones have their advertised model lineage refreshed
// so a replica serving a stale generation is flagged within one probe
// interval even when no dispatch slot has reconnected to it.
func (rt *Router) probe() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		for _, s := range rt.shards {
			healthy := rt.ring.IsHealthy(s.idx)
			cl, err := serve.DialContext(context.Background(), s.addr, rt.opts.Dial)
			if err != nil {
				// An unreachable healthy replica is the dispatch path's
				// problem (it owns failure detection); an unreachable
				// unhealthy one just stays out of the ring.
				continue
			}
			// Recovery and lineage refresh both re-negotiate instead of
			// trusting a bare TCP accept: a replica that came back with the
			// wrong backend (say, a bad restart flag) must stay out of the
			// ring, and the hello is where the generation rides.
			hello, err := cl.Negotiate()
			if err != nil || rt.checkBackend(hello) != nil {
				cl.Close()
				continue
			}
			cl.Close()
			rt.noteGeneration(s, hello)
			if !healthy && rt.ring.SetHealthy(s.idx, true) {
				rt.metrics.Up.Add(1)
				rt.metrics.Healthy.Set(float64(rt.ring.Healthy()))
				rt.opts.Logf("fleet: replica %s (shard %d) recovered", s.addr, s.idx)
			}
		}
	}
}

// Close shuts the router down: no new admissions, queued rows shed to
// the fallback, listeners and front-end connections closed, and all
// pipeline goroutines joined.
func (rt *Router) Close() {
	rt.stopMu.Lock()
	if rt.stopped {
		rt.stopMu.Unlock()
		return
	}
	rt.stopped = true
	rt.stopMu.Unlock()
	close(rt.stop)
	rt.ls.Range(func(k, _ any) bool {
		k.(net.Listener).Close()
		return true
	})
	rt.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
	rt.wg.Wait()
}

// ServeTCP accepts front-end connections on l, one goroutine per
// connection, until the listener closes.
func (rt *Router) ServeTCP(l net.Listener) error {
	rt.ls.Store(l, struct{}{})
	defer rt.ls.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go rt.ServeConn(conn)
	}
}

// connBuffers is per-connection front-end scratch.
type connBuffers struct {
	frame []byte
	rows  []serve.Request
	out   []byte
	decs  []serve.Decision
}

// ServeConn speaks the binary protocol to one client: v3 keyed frames
// route per row through the ring; v2 unkeyed frames get a synthetic
// per-connection identity so they still shard; MsgHello answers with the
// router flag and the shard count. Mismatched peers get a structured
// MsgError, exactly like a single daemon.
func (rt *Router) ServeConn(conn net.Conn) {
	rt.conns.Store(conn, struct{}{})
	defer func() {
		rt.conns.Delete(conn)
		conn.Close()
	}()
	connID := int32(rt.connSeq.Add(1) % (1 << 30))
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	bufs := &connBuffers{}
	for {
		frame, err := serve.ReadFrame(br, bufs.frame)
		if err != nil {
			return
		}
		bufs.frame = frame[:cap(frame)]
		if !rt.serveFrame(bw, bufs, connID, frame) {
			return
		}
	}
}

// serveFrame answers one front-end frame, reporting whether the
// connection is still usable.
func (rt *Router) serveFrame(bw *bufio.Writer, bufs *connBuffers, connID int32, frame []byte) bool {
	_, msgType, err := serve.ParseHeader(frame)
	if err != nil {
		rt.writeError(bw, err)
		return false
	}
	switch msgType {
	case serve.MsgHello:
		minVer, maxVer, err := serve.DecodeHelloFrame(frame)
		if err != nil {
			rt.writeError(bw, err)
			return false
		}
		if int(minVer) > serve.VersionMax || int(maxVer) < serve.VersionMin {
			rt.writeError(bw, &serve.ProtoError{Code: serve.ErrCodeVersion,
				Msg: fmt.Sprintf("no common version: client %d..%d, router %d..%d",
					minVer, maxVer, serve.VersionMin, serve.VersionMax)})
			return false
		}
		ver := serve.VersionMax
		if int(maxVer) < ver {
			ver = int(maxVer)
		}
		bufs.out = serve.AppendHelloAckFrame(bufs.out[:0],
			serve.Hello{Version: ver, Router: true, Shards: len(rt.shards),
				Tracing: ver >= serve.Version3})
		return serve.WriteFrame(bw, bufs.out) == nil && bw.Flush() == nil

	case serve.MsgDecide, serve.MsgDecideKeyed, serve.MsgDecideTraced:
		keyed := msgType != serve.MsgDecide
		var rows []serve.Request
		var tc telemetry.TraceContext
		switch msgType {
		case serve.MsgDecideTraced:
			rows, tc, err = serve.DecodeTracedRequestFrame(frame, bufs.rows)
		case serve.MsgDecideKeyed:
			rows, err = serve.DecodeKeyedRequestFrame(frame, bufs.rows)
		default:
			rows, err = serve.DecodeRequestFrame(frame, bufs.rows)
		}
		if err != nil {
			rt.writeError(bw, &serve.ProtoError{Code: serve.ErrCodeBadFrame, Msg: err.Error()})
			return false
		}
		bufs.rows = rows
		if !keyed {
			// v2 rows carry no identity: synthesize a stable one from the
			// connection and row index so they shard consistently.
			for i := range rows {
				rows[i].GPU = connID
				rows[i].Cluster = int32(i)
			}
		}
		var hops serve.HopTimings
		bufs.decs, hops = rt.DecideTraced(rows, bufs.decs[:0], tc)
		var out []byte
		switch msgType {
		case serve.MsgDecideTraced:
			out, err = serve.AppendTracedResponseFrame(bufs.out[:0], serve.StatusOK, bufs.decs, tc.TraceID, hops)
		case serve.MsgDecideKeyed:
			out, err = serve.AppendKeyedResponseFrame(bufs.out[:0], serve.StatusOK, bufs.decs)
		default:
			out, err = serve.AppendResponseFrame(bufs.out[:0], serve.StatusOK, bufs.decs)
		}
		if err != nil {
			return false
		}
		bufs.out = out
		return serve.WriteFrame(bw, out) == nil && bw.Flush() == nil

	default:
		rt.writeError(bw, &serve.ProtoError{Code: serve.ErrCodeBadFrame,
			Msg: fmt.Sprintf("unexpected message type %d", msgType)})
		return false
	}
}

// writeError best-effort sends a structured protocol error frame.
func (rt *Router) writeError(bw *bufio.Writer, err error) {
	var pe *serve.ProtoError
	if !errors.As(err, &pe) {
		pe = &serve.ProtoError{Code: serve.ErrCodeBadFrame, Msg: err.Error()}
	}
	if werr := serve.WriteFrame(bw, serve.AppendErrorFrame(nil, pe.Code, pe.Msg)); werr == nil {
		bw.Flush()
	}
}

// Handler returns the router's HTTP surface:
//
//	GET /metrics       fleet counters as a telemetry JSON snapshot
//	GET /metrics.prom  the same in Prometheus text exposition 0.0.4
//	GET /healthz       per-replica health (503 when no replica is healthy)
//	GET /debug/ledger  merged fleet efficiency ledger (404 when disabled)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
		rt.Telemetry().WriteJSON(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentTypeProm)
		rt.Telemetry().WriteProm(w)
	})
	mux.HandleFunc("/debug/ledger", rt.handleLedger)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		type replica struct {
			Shard   int    `json:"shard"`
			Addr    string `json:"addr"`
			Healthy bool   `json:"healthy"`
			// Generation is the model lineage the replica last advertised
			// (-1 before any hello); Stale flags a replica whose known
			// generation trails the newest one known anywhere in the fleet
			// — the signature of an online promotion that missed it.
			Generation int  `json:"generation"`
			Stale      bool `json:"stale,omitempty"`
		}
		reps := make([]replica, len(rt.shards))
		maxGen := int64(-1)
		for _, s := range rt.shards {
			if g := s.gen.Load(); g > maxGen {
				maxGen = g
			}
		}
		for i, s := range rt.shards {
			g := s.gen.Load()
			reps[i] = replica{
				Shard:      i,
				Addr:       s.addr,
				Healthy:    rt.ring.IsHealthy(i),
				Generation: int(g),
				Stale:      g >= 0 && g < maxGen,
			}
		}
		w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
		if rt.ring.Healthy() == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(struct {
			Healthy  int       `json:"healthy_replicas"`
			Replicas []replica `json:"replicas"`
		}{rt.ring.Healthy(), reps})
	})
	return mux
}
