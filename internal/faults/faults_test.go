package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Inject("anything"); err != nil {
		t.Fatalf("nil injector returned error: %v", err)
	}
	if inj.Corrupt("anything") {
		t.Fatal("nil injector fired corruption")
	}
	if inj.Fired("anything") != 0 || inj.Calls("anything") != 0 {
		t.Fatal("nil injector has counts")
	}
	if inj.Snapshot() != nil {
		t.Fatal("nil injector snapshot not nil")
	}
	if inj.String() != "faults: disabled" {
		t.Fatalf("nil injector String = %q", inj.String())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = inj.Inject("serve.infer")
		_ = inj.Corrupt("serve.reload")
	})
	if allocs != 0 {
		t.Fatalf("nil injector allocates %.1f per call, want 0", allocs)
	}
}

func TestEveryAndLimit(t *testing.T) {
	inj := New(1)
	if err := inj.Arm("s", Spec{Kind: KindError, Every: 3, Limit: 2}); err != nil {
		t.Fatal(err)
	}
	var errs int
	for i := 1; i <= 12; i++ {
		err := inj.Inject("s")
		if err != nil {
			errs++
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Site != "s" {
				t.Fatalf("unexpected error value %v", err)
			}
		}
		if wantFire := i%3 == 0 && i <= 6; (err != nil) != wantFire {
			t.Fatalf("call %d: fired=%v, want %v", i, err != nil, wantFire)
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", errs)
	}
	if inj.Fired("s") != 2 || inj.Calls("s") != 12 {
		t.Fatalf("counts fired=%d calls=%d", inj.Fired("s"), inj.Calls("s"))
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := New(seed)
		if err := inj.Arm("s", Spec{Kind: KindError, Rate: 0.3}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.Inject("s") != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("rate 0.3 fired %d/200 times, implausible", fires)
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestConcurrentFireCountMatchesSerial(t *testing.T) {
	const calls = 900
	serial := New(3)
	if err := serial.Arm("s", Spec{Kind: KindError, Every: 9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < calls; i++ {
		serial.Inject("s")
	}

	conc := New(3)
	if err := conc.Arm("s", Spec{Kind: KindError, Every: 9}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls/9; i++ {
				conc.Inject("s")
			}
		}()
	}
	wg.Wait()
	if serial.Fired("s") != conc.Fired("s") {
		t.Fatalf("concurrent fired %d, serial %d", conc.Fired("s"), serial.Fired("s"))
	}
}

func TestPanicAndLatencyAndCorrupt(t *testing.T) {
	inj := New(1)
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	for name, sp := range map[string]Spec{
		"p": {Kind: KindPanic},
		"l": {Kind: KindLatency, Latency: 5 * time.Millisecond},
		"c": {Kind: KindCorrupt, Every: 2},
	} {
		if err := inj.Arm(name, sp); err != nil {
			t.Fatal(err)
		}
	}

	func() {
		defer func() {
			r := recover()
			if !IsInjectedPanic(r) {
				t.Errorf("recover() = %v, want *InjectedPanic", r)
			}
		}()
		inj.Inject("p")
		t.Error("panic site did not panic")
	}()

	if err := inj.Inject("l"); err != nil {
		t.Fatal(err)
	}
	if slept != 5*time.Millisecond {
		t.Fatalf("latency site slept %v", slept)
	}

	if inj.Corrupt("c") {
		t.Fatal("corrupt every=2 fired on call 1")
	}
	if !inj.Corrupt("c") {
		t.Fatal("corrupt every=2 did not fire on call 2")
	}
	if err := inj.Inject("c"); err != nil {
		t.Fatal("Inject fired a corrupt site")
	}
	if inj.Corrupt("p") {
		t.Fatal("Corrupt fired a panic site")
	}
}

func TestArmValidation(t *testing.T) {
	inj := New(1)
	bad := []Spec{
		{Kind: 0},
		{Kind: KindError, Rate: 1.5},
		{Kind: KindError, Every: -1},
		{Kind: KindLatency}, // no latency value
	}
	for i, sp := range bad {
		if err := inj.Arm("s", sp); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, sp)
		}
	}
	if err := (*Injector)(nil).Arm("s", Spec{Kind: KindError}); err == nil {
		t.Fatal("arming nil injector accepted")
	}
}

func TestParse(t *testing.T) {
	inj, err := Parse("a:panic:every=97; b:latency:latency=2ms:rate=0.05 ;c:corrupt", 42)
	if err != nil {
		t.Fatal(err)
	}
	m := *inj.sites.Load()
	if len(m) != 3 {
		t.Fatalf("parsed %d sites, want 3", len(m))
	}
	if sp := m["a"].spec; sp.Kind != KindPanic || sp.Every != 97 {
		t.Fatalf("site a spec %+v", sp)
	}
	if sp := m["b"].spec; sp.Kind != KindLatency || sp.Latency != 2*time.Millisecond || sp.Rate != 0.05 {
		t.Fatalf("site b spec %+v", sp)
	}
	if sp := m["c"].spec; sp.Kind != KindCorrupt || sp.Every != 1 {
		t.Fatalf("site c spec %+v (want default every=1)", sp)
	}

	if inj, err := Parse("", 1); inj != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", inj, err)
	}
	for _, bad := range []string{"justasite", "a:nosuchkind", "a:error:every", "a:error:bogus=1", "a:error:rate=x"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
