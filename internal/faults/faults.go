// Package faults is a seeded, deterministic fault-injection framework.
// Code under test (or under chaos in production-like runs) declares named
// injection sites — "serve.infer", "core.decide", "client.io" — and an
// Injector armed with per-site Specs decides, deterministically for a
// given seed and call sequence, when each site fires an error, a panic,
// extra latency, or a corruption flag.
//
// The Injector is nil-safe: every method on a nil *Injector is a cheap
// no-op, so injection sites can be threaded through hot paths
// unconditionally — the disabled path costs one nil check and allocates
// nothing. Arm sites before the injector is shared between goroutines;
// firing itself is concurrency-safe (atomic call counters), and for a
// fixed total number of calls to a site the set of call indices that fire
// is the same regardless of goroutine interleaving.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies what a site does when it fires.
type Kind uint8

const (
	// KindError makes Inject return an *InjectedError.
	KindError Kind = iota + 1
	// KindPanic makes Inject panic with an *InjectedPanic.
	KindPanic
	// KindLatency makes Inject sleep for Spec.Latency before returning nil.
	KindLatency
	// KindCorrupt makes Corrupt return true; Inject ignores corrupt sites,
	// so the caller decides what "corrupt" means for its payload.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a spec-string kind name back to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "latency":
		return KindLatency, nil
	case "corrupt":
		return KindCorrupt, nil
	default:
		return 0, fmt.Errorf("faults: unknown kind %q (want error|panic|latency|corrupt)", s)
	}
}

// Spec arms one site. A site fires on every Every-th call and/or with
// probability Rate per call (deterministic given the seed and the call
// index); if neither is set the site fires on every call. Limit, when
// positive, caps total fires.
type Spec struct {
	Kind    Kind
	Every   int64
	Rate    float64
	Latency time.Duration
	Limit   int64
}

type site struct {
	name  string
	spec  Spec
	calls atomic.Int64
	fired atomic.Int64
}

// Injector decides when armed sites fire. The zero-cost disabled state is
// a nil *Injector.
type Injector struct {
	seed  uint64
	sleep func(time.Duration) // test hook; time.Sleep by default

	mu    sync.Mutex
	sites atomic.Pointer[map[string]*site]
}

// New returns an injector with no armed sites.
func New(seed int64) *Injector {
	inj := &Injector{seed: uint64(seed), sleep: time.Sleep}
	m := map[string]*site{}
	inj.sites.Store(&m)
	return inj
}

// Arm installs (or replaces) the spec for the named site. Arming resets
// the site's call and fire counters.
func (inj *Injector) Arm(name string, sp Spec) error {
	if inj == nil {
		return fmt.Errorf("faults: cannot arm a nil injector")
	}
	if name == "" {
		return fmt.Errorf("faults: empty site name")
	}
	if sp.Kind < KindError || sp.Kind > KindCorrupt {
		return fmt.Errorf("faults: site %s has invalid kind %d", name, sp.Kind)
	}
	if sp.Rate < 0 || sp.Rate > 1 {
		return fmt.Errorf("faults: site %s rate %g outside [0,1]", name, sp.Rate)
	}
	if sp.Every < 0 || sp.Limit < 0 || sp.Latency < 0 {
		return fmt.Errorf("faults: site %s has negative every/limit/latency", name)
	}
	if sp.Kind == KindLatency && sp.Latency <= 0 {
		return fmt.Errorf("faults: latency site %s needs a positive latency", name)
	}
	if sp.Every == 0 && sp.Rate == 0 {
		sp.Every = 1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	old := *inj.sites.Load()
	m := make(map[string]*site, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = &site{name: name, spec: sp}
	inj.sites.Store(&m)
	return nil
}

func (inj *Injector) lookup(name string) *site {
	return (*inj.sites.Load())[name]
}

// shouldFire advances the site's call counter and reports whether this
// call fires, honouring the fire limit exactly even under concurrency.
func (st *site) shouldFire(seed uint64) bool {
	n := st.calls.Add(1)
	sp := &st.spec
	fire := sp.Every > 0 && n%sp.Every == 0
	if !fire && sp.Rate > 0 {
		h := Mix64(seed ^ HashString(st.name) ^ uint64(n)*0x9e3779b97f4a7c15)
		fire = float64(h>>11)*(1.0/(1<<53)) < sp.Rate
	}
	if !fire {
		return false
	}
	if sp.Limit > 0 {
		for {
			f := st.fired.Load()
			if f >= sp.Limit {
				return false
			}
			if st.fired.CompareAndSwap(f, f+1) {
				return true
			}
		}
	}
	st.fired.Add(1)
	return true
}

// InjectedError is the error returned by a fired error-kind site.
type InjectedError struct {
	Site string
	N    int64 // 1-based fire index at this site
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected error at %s (fire %d)", e.Site, e.N)
}

// InjectedPanic is the value a fired panic-kind site panics with.
type InjectedPanic struct {
	Site string
	N    int64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (fire %d)", p.Site, p.N)
}

// IsInjectedPanic reports whether a recover() value came from a fired
// panic site.
func IsInjectedPanic(v any) bool {
	_, ok := v.(*InjectedPanic)
	return ok
}

// Inject evaluates the named site. Error sites return a non-nil error,
// panic sites panic with an *InjectedPanic, latency sites sleep for the
// armed latency; corrupt sites (and unarmed or non-firing sites) return
// nil. Nil-safe.
func (inj *Injector) Inject(name string) error {
	if inj == nil {
		return nil
	}
	st := inj.lookup(name)
	if st == nil || st.spec.Kind == KindCorrupt || !st.shouldFire(inj.seed) {
		return nil
	}
	switch st.spec.Kind {
	case KindPanic:
		panic(&InjectedPanic{Site: name, N: st.fired.Load()})
	case KindLatency:
		inj.sleep(st.spec.Latency)
		return nil
	default:
		return &InjectedError{Site: name, N: st.fired.Load()}
	}
}

// Corrupt reports whether a corruption-kind site fires on this call; the
// caller then corrupts its own payload. Non-corrupt sites never fire
// through Corrupt. Nil-safe.
func (inj *Injector) Corrupt(name string) bool {
	if inj == nil {
		return false
	}
	st := inj.lookup(name)
	if st == nil || st.spec.Kind != KindCorrupt {
		return false
	}
	return st.shouldFire(inj.seed)
}

// Fired returns how many times the named site has fired. Nil-safe.
func (inj *Injector) Fired(name string) int64 {
	if inj == nil {
		return 0
	}
	if st := inj.lookup(name); st != nil {
		return st.fired.Load()
	}
	return 0
}

// Calls returns how many times the named site has been evaluated. Nil-safe.
func (inj *Injector) Calls(name string) int64 {
	if inj == nil {
		return 0
	}
	if st := inj.lookup(name); st != nil {
		return st.calls.Load()
	}
	return 0
}

// Snapshot returns fired counts per armed site. Nil-safe (returns nil).
func (inj *Injector) Snapshot() map[string]int64 {
	if inj == nil {
		return nil
	}
	m := *inj.sites.Load()
	out := make(map[string]int64, len(m))
	for name, st := range m {
		out[name] = st.fired.Load()
	}
	return out
}

// String renders the armed sites and their fire counts, sorted by name.
func (inj *Injector) String() string {
	if inj == nil {
		return "faults: disabled"
	}
	m := *inj.sites.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("faults:")
	for _, name := range names {
		st := m[name]
		fmt.Fprintf(&b, " %s=%s(%d/%d)", name, st.spec.Kind, st.fired.Load(), st.calls.Load())
	}
	return b.String()
}

// Mix64 is the SplitMix64 finalizer, exported so callers (e.g. backoff
// jitter) can derive deterministic pseudo-randomness from the same
// arithmetic the injector uses.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString is FNV-1a over s, allocation-free.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
