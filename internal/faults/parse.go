package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds an injector from a flag-friendly spec string:
//
//	site:kind[:key=value]...  entries separated by ';'
//
// where kind is error|panic|latency|corrupt and the keys are every=N
// (fire on every Nth call), rate=F (probability per call, deterministic
// for the seed), latency=DUR (sleep for latency kinds, e.g. 2ms), and
// limit=N (cap total fires). With neither every nor rate the site fires
// on every call. Examples:
//
//	serve.infer:panic:every=97
//	serve.decide:latency:latency=2ms:rate=0.05;serve.reload:corrupt
//
// An empty spec returns a nil injector — the disabled, zero-cost state —
// so a flag value can be passed straight through.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faults: entry %q needs at least site:kind", entry)
		}
		kind, err := ParseKind(fields[1])
		if err != nil {
			return nil, err
		}
		sp := Spec{Kind: kind}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: entry %q: parameter %q is not key=value", entry, kv)
			}
			switch key {
			case "every":
				if sp.Every, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("faults: entry %q: bad every: %w", entry, err)
				}
			case "rate":
				if sp.Rate, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("faults: entry %q: bad rate: %w", entry, err)
				}
			case "latency":
				var d time.Duration
				if d, err = time.ParseDuration(val); err != nil {
					return nil, fmt.Errorf("faults: entry %q: bad latency: %w", entry, err)
				}
				sp.Latency = d
			case "limit":
				if sp.Limit, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("faults: entry %q: bad limit: %w", entry, err)
				}
			default:
				return nil, fmt.Errorf("faults: entry %q: unknown parameter %q", entry, key)
			}
		}
		if err := inj.Arm(fields[0], sp); err != nil {
			return nil, err
		}
	}
	return inj, nil
}
