package viz_test

import (
	"fmt"
	"os"

	"ssmdvfs/internal/viz"
)

func ExampleSparkline() {
	ipc := []float64{0.3, 0.5, 1.2, 1.9, 2.0, 1.1, 0.4, 0.3}
	fmt.Println(viz.Sparkline(ipc))
	// Output: ▁▁▄▇█▄▁▁
}

func ExampleLevelTimeline() {
	levels := []int{5, 5, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 5}
	fmt.Println(viz.LevelTimeline(levels, 6))
	// Output: 552 0x10 35
}

func ExampleHistogram() {
	labels := []string{"683MHz", "1165MHz"}
	_ = viz.Histogram(os.Stdout, "epochs per level", labels, []int{12, 4}, 12)
	// Output:
	// epochs per level
	//   683MHz  ████████████ 12.000
	//   1165MHz ████         4.000
}

func ExampleBarChart() {
	bars := []viz.Bar{
		{Label: "baseline", Value: 1.0},
		{Label: "ssmdvfs", Value: 0.82},
	}
	_ = viz.BarChart(os.Stdout, "normalized EDP", bars, 20, 1.0)
	// Output:
	// normalized EDP
	//   baseline ████████████████████ 1.000
	//   ssmdvfs  ████████████████   | 0.820
}
