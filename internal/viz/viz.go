// Package viz renders small terminal visualizations — horizontal bar
// charts, sparklines, and level timelines — used by the CLI and the
// examples to show Fig. 4-style comparisons and per-epoch traces without
// leaving the terminal.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters, with the
// value printed after each bar. A reference line (e.g. baseline = 1.0)
// can be marked with refValue > 0: a '|' is drawn at its position.
func BarChart(w io.Writer, title string, bars []Bar, width int, refValue float64) error {
	if width <= 0 {
		width = 40
	}
	if len(bars) == 0 {
		return fmt.Errorf("viz: no bars")
	}
	maxVal := refValue
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	if maxVal <= 0 {
		return fmt.Errorf("viz: all values non-positive")
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	refCol := -1
	if refValue > 0 {
		refCol = int(refValue / maxVal * float64(width))
		if refCol >= width {
			refCol = width - 1
		}
	}
	for _, b := range bars {
		n := int(b.Value / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		row := []rune(strings.Repeat("█", n) + strings.Repeat(" ", width-n))
		if refCol >= 0 && refCol < len(row) && row[refCol] == ' ' {
			row[refCol] = '|'
		}
		fmt.Fprintf(w, "  %-*s %s %.3f\n", maxLabel, b.Label, string(row), b.Value)
	}
	return nil
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline, scaled
// between the series min and max (flat series render as mid-height).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// LevelTimeline renders a sequence of small non-negative integers (DVFS
// levels) as digits, compressing runs longer than runLimit into
// "<digit>x<count>" tokens. Levels above 9 print as '+'.
func LevelTimeline(levels []int, runLimit int) string {
	if runLimit <= 0 {
		runLimit = 8
	}
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	i := 0
	for i < len(levels) {
		j := i
		for j < len(levels) && levels[j] == levels[i] {
			j++
		}
		run := j - i
		ch := byte('+')
		if levels[i] >= 0 && levels[i] <= 9 {
			ch = byte('0' + levels[i])
		}
		if run > runLimit {
			// Compressed runs are standalone tokens so "55" followed by
			// "0x10" cannot read as "550x10".
			flush()
			tokens = append(tokens, fmt.Sprintf("%cx%d", ch, run))
		} else {
			for k := 0; k < run; k++ {
				cur.WriteByte(ch)
			}
		}
		i = j
	}
	flush()
	return strings.Join(tokens, " ")
}

// Histogram renders counts per bucket as a vertical profile with labels.
func Histogram(w io.Writer, title string, labels []string, counts []int, width int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("viz: %d labels for %d counts", len(labels), len(counts))
	}
	bars := make([]Bar, len(labels))
	for i := range labels {
		bars[i] = Bar{Label: labels[i], Value: float64(counts[i])}
	}
	return BarChart(w, title, bars, width, 0)
}
