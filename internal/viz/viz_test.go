package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "title", []Bar{
		{Label: "baseline", Value: 1.0},
		{Label: "ssmdvfs", Value: 0.88},
	}, 20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "baseline") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.880") {
		t.Fatalf("missing value:\n%s", out)
	}
	// The shorter bar must contain the reference marker.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "ssmdvfs") && !strings.Contains(line, "|") {
			t.Fatalf("reference marker missing on shorter bar:\n%s", out)
		}
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "", nil, 20, 0); err == nil {
		t.Fatal("empty bars accepted")
	}
	if err := BarChart(&buf, "", []Bar{{Label: "x", Value: 0}}, 20, 0); err == nil {
		t.Fatal("all-zero values accepted")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline has %d runes, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	// Flat series must not panic and renders mid-height.
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestLevelTimeline(t *testing.T) {
	if got := LevelTimeline([]int{5, 5, 5, 0, 1}, 8); got != "55501" {
		t.Fatalf("timeline = %q", got)
	}
	got := LevelTimeline([]int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3}, 4)
	if !strings.Contains(got, "2x10") || !strings.Contains(got, "3") {
		t.Fatalf("run compression wrong: %q", got)
	}
	if got := LevelTimeline([]int{12}, 8); got != "+" {
		t.Fatalf("overflow level = %q, want +", got)
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, "h", []string{"a", "b"}, []int{3, 1}, 10); err != nil {
		t.Fatal(err)
	}
	if err := Histogram(&buf, "h", []string{"a"}, []int{1, 2}, 10); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
