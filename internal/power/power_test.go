package power

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/isa"
)

// sampleActivity is a busy compute cluster's 10 µs epoch at 1165 MHz:
// 11650 cycles with close to dual issue.
func sampleActivity() Activity {
	var a Activity
	a.OpCounts[isa.OpIAlu] = 6000
	a.OpCounts[isa.OpFAlu] = 12000
	a.OpCounts[isa.OpLoadGlobal] = 1500
	a.Cycles = 11650
	a.L1Accesses = 1800
	a.L2Accesses = 200
	a.DRAMLines = 60
	return a
}

func TestDefaultModelValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	for name, mut := range map[string]func(*Model){
		"negative op energy": func(m *Model) { m.EnergyPerOpPJ[0] = -1 },
		"zero vnom":          func(m *Model) { m.VNom = 0 },
		"negative leakage":   func(m *Model) { m.LeakageWAtVNom = -1 },
		"zero leakage exp":   func(m *Model) { m.LeakageExp = 0 },
		"negative dram":      func(m *Model) { m.DRAMLinePJ = -5 },
	} {
		t.Run(name, func(t *testing.T) {
			m := Default()
			mut(&m)
			if err := m.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDynamicEnergyScalesWithVSquared(t *testing.T) {
	m := Default()
	act := sampleActivity()
	hi := clockdomain.OperatingPoint{VoltageV: 1.155, FrequencyHz: 1165e6}
	lo := clockdomain.OperatingPoint{VoltageV: 1.0, FrequencyHz: 683e6}
	eHi := m.DynamicEnergyPJ(act, hi)
	eLo := m.DynamicEnergyPJ(act, lo)
	wantRatio := (1.0 / 1.155) * (1.0 / 1.155)
	gotRatio := eLo / eHi
	if diff := gotRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("V² scaling ratio = %g, want %g", gotRatio, wantRatio)
	}
}

func TestStaticPowerMonotoneInVoltage(t *testing.T) {
	m := Default()
	tbl := clockdomain.TitanX()
	prev := -1.0
	for i := 0; i < tbl.Len(); i++ {
		p := m.StaticPowerW(tbl.Point(i))
		if p < prev {
			t.Fatalf("static power decreased with level: %g after %g", p, prev)
		}
		prev = p
	}
}

func TestEpochEnergyCombinesDynAndStatic(t *testing.T) {
	m := Default()
	act := sampleActivity()
	op := clockdomain.TitanX().Point(5)
	durPs := int64(10_000_000)
	dyn := m.DynamicEnergyPJ(act, op)
	static := m.StaticPowerW(op) * float64(durPs)
	total := m.EpochEnergyPJ(act, op, durPs)
	if diff := total - (dyn + static); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("EpochEnergyPJ = %g, want %g", total, dyn+static)
	}
}

func TestEpochPowerWConsistency(t *testing.T) {
	m := Default()
	act := sampleActivity()
	op := clockdomain.TitanX().Point(3)
	durPs := int64(10_000_000)
	dynW, statW := m.EpochPowerW(act, op, durPs)
	// Power × time must equal energy.
	wantE := m.EpochEnergyPJ(act, op, durPs)
	gotE := (dynW + statW) * float64(durPs)
	if rel := (gotE - wantE) / wantE; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("power×time = %g pJ, want %g pJ", gotE, wantE)
	}
}

func TestEpochPowerZeroDuration(t *testing.T) {
	m := Default()
	dynW, statW := m.EpochPowerW(sampleActivity(), clockdomain.TitanX().Point(0), 0)
	if dynW != 0 {
		t.Fatalf("dyn power at zero duration = %g, want 0", dynW)
	}
	if statW <= 0 {
		t.Fatalf("static power = %g, want > 0", statW)
	}
}

func TestEDPUnits(t *testing.T) {
	// 1 J over 1 s → EDP 1 J·s.
	if got := EDP(1e12, 1e12); got != 1.0 {
		t.Fatalf("EDP(1e12 pJ, 1e12 ps) = %g, want 1", got)
	}
}

func TestEnergyNonNegativeProperty(t *testing.T) {
	m := Default()
	tbl := clockdomain.TitanX()
	f := func(ialu, falu, ldg uint16, cycles uint32, level uint8) bool {
		var a Activity
		a.OpCounts[isa.OpIAlu] = int64(ialu)
		a.OpCounts[isa.OpFAlu] = int64(falu)
		a.OpCounts[isa.OpLoadGlobal] = int64(ldg)
		a.Cycles = int64(cycles)
		op := tbl.Point(int(level) % tbl.Len())
		return m.EpochEnergyPJ(a, op, 10_000_000) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// TestRacingToIdleTradeoff documents the physics that makes DVFS
// worthwhile here: for a fixed amount of work, lower V/f reduces dynamic
// energy, but leakage accrues over the longer runtime.
func TestRacingToIdleTradeoff(t *testing.T) {
	m := Default()
	tbl := clockdomain.TitanX()
	hi := tbl.Point(tbl.Default())
	lo := tbl.Point(0)
	act := sampleActivity()
	// Same work at low V/f: same event counts, longer duration.
	durHi := int64(10_000_000)
	durLo := int64(float64(durHi) * hi.FrequencyHz / lo.FrequencyHz)
	eHi := m.EpochEnergyPJ(act, hi, durHi)
	eLo := m.EpochEnergyPJ(act, lo, durLo)
	if eLo >= eHi {
		t.Fatalf("compute-bound work at min V/f should save energy: %g >= %g", eLo, eHi)
	}
}
