// Package power provides an activity-based GPU power model in the spirit
// of McPAT: per-event dynamic energies that scale with V², a per-cycle
// clock/pipeline base cost, and voltage-dependent leakage. The model is
// calibrated to land a fully active 24-cluster GTX-Titan-X-class GPU in
// the neighbourhood of its 250 W TDP; DVFS studies consume normalized
// energy-delay products, so the shape (V²f dynamic scaling, V^k leakage)
// matters more than the absolute calibration.
package power

import (
	"fmt"
	"math"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/isa"
)

// Activity is the per-epoch, per-cluster event tally the model converts
// into energy. All counts are events within one epoch.
type Activity struct {
	// OpCounts is the number of issued instructions per class.
	OpCounts [isa.NumOps]int64
	// Cycles is the number of clock cycles the cluster ran in the epoch.
	Cycles int64
	// L1Accesses counts L1 data-cache lookups (read and write).
	L1Accesses int64
	// L2Accesses counts L2 lookups caused by this cluster.
	L2Accesses int64
	// DRAMLines counts 64-byte DRAM line transfers caused by this cluster.
	DRAMLines int64
}

// Model holds the calibration constants. All energies are picojoules at
// nominal voltage; leakage is watts per cluster at nominal voltage.
type Model struct {
	// EnergyPerOpPJ is the switching energy of one issued instruction of
	// each class across a 32-lane warp.
	EnergyPerOpPJ [isa.NumOps]float64
	// L1AccessPJ, L2AccessPJ, DRAMLinePJ are per-event memory energies.
	L1AccessPJ float64
	L2AccessPJ float64
	DRAMLinePJ float64
	// ClockPJPerCycle is the clock-tree + pipeline-latch energy charged
	// every cycle the cluster's clock runs, active or not.
	ClockPJPerCycle float64
	// LeakageWAtVNom is static power per cluster at nominal voltage.
	LeakageWAtVNom float64
	// VNom is the voltage at which the PJ constants were characterized.
	VNom float64
	// LeakageExp is the exponent of leakage's voltage dependence:
	// P_static = LeakageWAtVNom * (V/VNom)^LeakageExp.
	LeakageExp float64
}

// Default returns the model calibrated for the Titan-X-class GPU used in
// the paper's evaluation.
func Default() Model {
	// Per-op energies are for a full 32-lane warp instruction (≈ tens of
	// pJ per lane), sized so a busy cluster draws 4-6 W dynamic against
	// 2 W leakage — in line with a ~250 W-class 24-cluster GPU.
	m := Model{
		L1AccessPJ:      80,
		L2AccessPJ:      240,
		DRAMLinePJ:      8000,
		ClockPJPerCycle: 840,
		LeakageWAtVNom:  2.0,
		VNom:            1.155,
		LeakageExp:      3.0,
	}
	m.EnergyPerOpPJ[isa.OpIAlu] = 720
	m.EnergyPerOpPJ[isa.OpFAlu] = 1280
	m.EnergyPerOpPJ[isa.OpSFU] = 2560
	m.EnergyPerOpPJ[isa.OpLoadGlobal] = 960
	m.EnergyPerOpPJ[isa.OpStoreGlobal] = 960
	m.EnergyPerOpPJ[isa.OpLoadShared] = 560
	m.EnergyPerOpPJ[isa.OpBranch] = 360
	return m
}

// Validate checks that every calibration constant is physically sensible
// (strictly positive where required).
func (m Model) Validate() error {
	for op, e := range m.EnergyPerOpPJ {
		if e < 0 {
			return fmt.Errorf("power: negative energy for op %v", isa.Op(op))
		}
	}
	if m.VNom <= 0 {
		return fmt.Errorf("power: VNom must be positive, got %g", m.VNom)
	}
	if m.LeakageWAtVNom < 0 || m.L1AccessPJ < 0 || m.L2AccessPJ < 0 ||
		m.DRAMLinePJ < 0 || m.ClockPJPerCycle < 0 {
		return fmt.Errorf("power: calibration constants must be non-negative")
	}
	if m.LeakageExp <= 0 {
		return fmt.Errorf("power: LeakageExp must be positive, got %g", m.LeakageExp)
	}
	return nil
}

// vScale returns the dynamic-energy voltage scaling factor (V/VNom)².
func (m Model) vScale(v float64) float64 {
	r := v / m.VNom
	return r * r
}

// DynamicEnergyPJ returns the dynamic energy in picojoules consumed by the
// given activity at operating point op.
func (m Model) DynamicEnergyPJ(act Activity, op clockdomain.OperatingPoint) float64 {
	var pj float64
	for i, n := range act.OpCounts {
		pj += float64(n) * m.EnergyPerOpPJ[i]
	}
	pj += float64(act.L1Accesses) * m.L1AccessPJ
	pj += float64(act.L2Accesses) * m.L2AccessPJ
	pj += float64(act.DRAMLines) * m.DRAMLinePJ
	pj += float64(act.Cycles) * m.ClockPJPerCycle
	return pj * m.vScale(op.VoltageV)
}

// StaticPowerW returns leakage power in watts per cluster at the given
// operating point.
func (m Model) StaticPowerW(op clockdomain.OperatingPoint) float64 {
	return m.LeakageWAtVNom * math.Pow(op.VoltageV/m.VNom, m.LeakageExp)
}

// EpochEnergyPJ returns total (dynamic + static) energy in picojoules for
// an epoch of the given duration at operating point op.
func (m Model) EpochEnergyPJ(act Activity, op clockdomain.OperatingPoint, durationPs int64) float64 {
	dyn := m.DynamicEnergyPJ(act, op)
	// watts × picoseconds = picojoules.
	static := m.StaticPowerW(op) * float64(durationPs)
	return dyn + static
}

// EpochPowerW returns the average (dynamic, static) power in watts over an
// epoch of the given duration.
func (m Model) EpochPowerW(act Activity, op clockdomain.OperatingPoint, durationPs int64) (dynW, staticW float64) {
	if durationPs <= 0 {
		return 0, m.StaticPowerW(op)
	}
	// picojoules / picoseconds = watts.
	dynW = m.DynamicEnergyPJ(act, op) / float64(durationPs)
	return dynW, m.StaticPowerW(op)
}

// EDP returns the energy-delay product for a run consuming totalEnergyPJ
// over totalTimePs, in joule-seconds.
func EDP(totalEnergyPJ float64, totalTimePs int64) float64 {
	return totalEnergyPJ * 1e-12 * float64(totalTimePs) * 1e-12
}
