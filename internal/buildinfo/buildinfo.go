// Package buildinfo exposes the running binary's build attribution —
// Go toolchain, module version, and VCS state — read once from
// runtime/debug.ReadBuildInfo. Every observability surface (healthz,
// telemetry snapshots, provenance dump headers, -version flags) reports
// the same map, so a metrics scrape or a flight-recorder dump can always
// be traced back to the binary that produced it.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// Info returns the binary's build attribution as a flat string map:
//
//	go        Go toolchain version
//	module    main module path
//	version   main module version (omitted for (devel) builds)
//	revision  VCS commit hash, when built from a checkout
//	time      VCS commit time
//	modified  "true" when the checkout was dirty at build time
//
// The map is freshly allocated per call so callers may annotate it.
func Info() map[string]string {
	m := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return m
	}
	if bi.Main.Path != "" {
		m["module"] = bi.Main.Path
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		m["version"] = v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				m["revision"] = s.Value
			}
		case "vcs.time":
			if s.Value != "" {
				m["time"] = s.Value
			}
		case "vcs.modified":
			if s.Value == "true" {
				m["modified"] = "true"
			}
		}
	}
	return m
}

// String renders Info as space-separated key=value pairs in sorted key
// order — the one-line form the cmds' -version flags print.
func String() string {
	m := Info()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
	}
	return b.String()
}
