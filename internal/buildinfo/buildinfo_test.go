package buildinfo

import (
	"strings"
	"testing"
)

func TestInfoAlwaysHasGoVersion(t *testing.T) {
	m := Info()
	if !strings.HasPrefix(m["go"], "go") {
		t.Fatalf("go version = %q", m["go"])
	}
	// Callers may annotate the map; a second call must not see the edit.
	m["extra"] = "x"
	if _, ok := Info()["extra"]; ok {
		t.Fatal("Info returned a shared map")
	}
}

func TestStringIsSortedPairs(t *testing.T) {
	s := String()
	if s == "" {
		t.Fatal("empty build string")
	}
	var prev string
	for _, pair := range strings.Split(s, " ") {
		k, _, ok := strings.Cut(pair, "=")
		if !ok {
			t.Fatalf("pair %q is not key=value", pair)
		}
		if k < prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
	}
}
