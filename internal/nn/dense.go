// Package nn is a from-scratch, stdlib-only neural-network library
// sufficient for the paper's models: fully connected ReLU MLPs trained
// with minibatch SGD/Adam on softmax-cross-entropy (classification) and
// mean-squared-error (regression) losses, with weight masking to support
// fine-grained pruning, FLOPs accounting, and JSON serialization.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer: y = W·x + b. W is stored row-major as
// W[o*In+i]. An optional Mask with the same shape as W freezes pruned
// weights at zero: masked weights neither contribute to the forward pass
// nor receive updates.
type Dense struct {
	In, Out int
	W       []float64
	B       []float64
	// Mask is nil for dense layers; otherwise 0/1 per weight.
	Mask []float64

	// Gradients, populated by Backward.
	GradW []float64
	GradB []float64
}

// NewDense creates a layer with He-uniform initialization (suited to the
// ReLU activations used throughout).
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:    in,
		Out:   out,
		W:     make([]float64, in*out),
		B:     make([]float64, out),
		GradW: make([]float64, in*out),
		GradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes y = W·x + b into a fresh slice.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Out)
	d.ForwardInto(x, y)
	return y
}

// ForwardInto computes y = W·x + b into the provided slice.
func (d *Dense) ForwardInto(x, y []float64) {
	if len(x) != d.In || len(y) != d.Out {
		panic(fmt.Sprintf("nn: Dense %dx%d forward with |x|=%d |y|=%d", d.In, d.Out, len(x), len(y)))
	}
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
}

// Backward accumulates gradients given the layer input x and the upstream
// gradient dy, and returns dx. Call ZeroGrad before each minibatch.
func (d *Dense) Backward(x, dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.GradB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GradW[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += row[i] * g
		}
	}
	return dx
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW {
		d.GradW[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// ApplyMask zeroes masked weights (and their gradients). A nil mask is a
// no-op. Called after every optimizer step while pruning is in force.
func (d *Dense) ApplyMask() {
	if d.Mask == nil {
		return
	}
	for i, m := range d.Mask {
		if m == 0 {
			d.W[i] = 0
			d.GradW[i] = 0
		}
	}
}

// SetMask installs a pruning mask (must match the weight shape) and
// immediately applies it.
func (d *Dense) SetMask(mask []float64) error {
	if len(mask) != len(d.W) {
		return fmt.Errorf("nn: mask size %d does not match weights %d", len(mask), len(d.W))
	}
	d.Mask = mask
	d.ApplyMask()
	return nil
}

// Params returns the number of parameters (weights + biases).
func (d *Dense) Params() int { return len(d.W) + len(d.B) }

// NonzeroWeights counts weights that survive the mask.
func (d *Dense) NonzeroWeights() int {
	n := 0
	for i, w := range d.W {
		if w != 0 && (d.Mask == nil || d.Mask[i] != 0) {
			n++
		}
	}
	return n
}

// FLOPs returns the dense cost of the layer: one multiply-accumulate (2
// FLOPs) per weight.
func (d *Dense) FLOPs() int { return 2 * d.In * d.Out }

// EffectiveFLOPs returns the cost counting only surviving weights, the
// number a sparse inference engine would execute.
func (d *Dense) EffectiveFLOPs() int { return 2 * d.NonzeroWeights() }

// Clone deep-copies the layer.
func (d *Dense) Clone() *Dense {
	cp := &Dense{
		In:    d.In,
		Out:   d.Out,
		W:     append([]float64(nil), d.W...),
		B:     append([]float64(nil), d.B...),
		GradW: make([]float64, len(d.W)),
		GradB: make([]float64, len(d.B)),
	}
	if d.Mask != nil {
		cp.Mask = append([]float64(nil), d.Mask...)
	}
	return cp
}
