package nn

import (
	"fmt"
	"math/rand"
)

// MLP is a multi-layer perceptron: Dense layers with ReLU between them
// and a linear final layer (callers apply softmax or use raw outputs for
// regression).
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes, e.g. [6, 20, 20, 6]
// creates two hidden layers. len(sizes) must be at least 2.
func NewMLP(sizes []int, rng *rand.Rand) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output sizes, got %v", sizes)
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: MLP size %d is %d, want > 0", i, s)
		}
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], rng))
	}
	return m, nil
}

// Sizes returns the layer sizes [in, h1, ..., out].
func (m *MLP) Sizes() []int {
	out := []int{m.Layers[0].In}
	for _, l := range m.Layers {
		out = append(out, l.Out)
	}
	return out
}

// InputSize returns the expected input dimension.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the output dimension.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

func relu(v []float64) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Forward runs inference, returning the final linear outputs (logits for
// classification heads, raw values for regression heads). Forward only
// reads the network's weights, so one MLP may serve any number of
// concurrent Forward callers (training mutates weights and must not run
// concurrently with inference).
//
// Deprecated: serving-path callers outside internal/nn and internal/infer
// should go through an infer.Backend (infer.New), which routes to this
// method for the float64 backend and to the quantized kernels for int8,
// and adds ForwardBatch for multi-row work. Forward remains for training
// loops and one-off offline evaluation.
func (m *MLP) Forward(x []float64) []float64 {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i+1 < len(m.Layers) {
			relu(h)
		}
	}
	return h
}

// Scratch holds reusable per-layer activation buffers for ForwardScratch
// so steady-state inference allocates nothing. A Scratch belongs to one
// goroutine at a time (pool one per worker); the MLP itself stays
// read-only and may be shared.
type Scratch struct {
	bufs [][]float64
}

// ForwardScratch is Forward using s's buffers for every intermediate and
// final activation. The returned slice aliases s and is valid until the
// next ForwardScratch call with the same Scratch.
//
// Deprecated: serving-path callers outside internal/nn and internal/infer
// should go through an infer.Backend (infer.New), which keeps this
// allocation-free path for the float64 backend and adds the batched and
// int8 variants behind the same interface.
func (m *MLP) ForwardScratch(x []float64, s *Scratch) []float64 {
	if len(s.bufs) < len(m.Layers) {
		s.bufs = append(s.bufs, make([][]float64, len(m.Layers)-len(s.bufs))...)
	}
	h := x
	for i, l := range m.Layers {
		if cap(s.bufs[i]) < l.Out {
			s.bufs[i] = make([]float64, l.Out)
		}
		y := s.bufs[i][:l.Out]
		l.ForwardInto(h, y)
		if i+1 < len(m.Layers) {
			relu(y)
		}
		h = y
	}
	return h
}

// forwardCache runs inference keeping every layer's input (post-ReLU
// activation) for backprop. acts[i] is the input to layer i; the returned
// slice is the network output.
func (m *MLP) forwardCache(x []float64) (acts [][]float64, out []float64) {
	acts = make([][]float64, len(m.Layers))
	h := x
	for i, l := range m.Layers {
		acts[i] = h
		h = l.Forward(h)
		if i+1 < len(m.Layers) {
			relu(h)
		}
	}
	return acts, h
}

// backward backpropagates dOut (gradient of loss w.r.t. network output)
// through the cached activations, accumulating layer gradients.
func (m *MLP) backward(acts [][]float64, dOut []float64) {
	g := dOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		// Gradient through the ReLU that followed layer i (none after the
		// final layer). ReLU derivative is 1 where the activation passed
		// through, i.e. where the *input to the next layer* is positive.
		if i+1 < len(m.Layers) {
			next := acts[i+1]
			for j := range g {
				if next[j] <= 0 {
					g[j] = 0
				}
			}
		}
		g = m.Layers[i].Backward(acts[i], g)
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// ApplyMasks re-applies all pruning masks.
func (m *MLP) ApplyMasks() {
	for _, l := range m.Layers {
		l.ApplyMask()
	}
}

// Params returns total parameter count.
func (m *MLP) Params() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Params()
	}
	return n
}

// FLOPs returns dense inference cost.
func (m *MLP) FLOPs() int {
	n := 0
	for _, l := range m.Layers {
		n += l.FLOPs()
	}
	return n
}

// EffectiveFLOPs returns sparse inference cost after pruning.
func (m *MLP) EffectiveFLOPs() int {
	n := 0
	for _, l := range m.Layers {
		n += l.EffectiveFLOPs()
	}
	return n
}

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	cp := &MLP{Layers: make([]*Dense, len(m.Layers))}
	for i, l := range m.Layers {
		cp.Layers[i] = l.Clone()
	}
	return cp
}
