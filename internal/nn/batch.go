package nn

import "fmt"

// Batch is a row-major block of input or activation rows: row r occupies
// Data[r*Cols : (r+1)*Cols]. Batches are plain buffers — they carry no
// synchronization and belong to one goroutine at a time, like Scratch.
type Batch struct {
	Rows, Cols int
	Data       []float64
}

// Reset shapes the batch to rows×cols, reusing the backing array when it
// is large enough. Contents after Reset are unspecified; callers fill
// every row before reading.
func (b *Batch) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: Batch.Reset(%d, %d)", rows, cols))
	}
	n := rows * cols
	if cap(b.Data) < n {
		b.Data = make([]float64, n)
	}
	b.Data = b.Data[:n]
	b.Rows, b.Cols = rows, cols
}

// Row returns row r, aliasing the batch's backing array.
func (b *Batch) Row(r int) []float64 {
	return b.Data[r*b.Cols : (r+1)*b.Cols : (r+1)*b.Cols]
}

// BatchScratch holds per-layer activation batches for ForwardBatch so
// steady-state batched inference allocates nothing. Like Scratch, a
// BatchScratch belongs to one goroutine at a time; the MLP stays
// read-only and may be shared.
type BatchScratch struct {
	bufs []Batch
}

// ForwardBatch runs inference over every row of x at once, returning the
// final linear outputs as a Rows×OutputSize batch. The returned batch
// aliases s and is valid until the next ForwardBatch call with the same
// BatchScratch. Row order is preserved: output row r corresponds to input
// row r, and each row equals what ForwardScratch would produce for it.
func (m *MLP) ForwardBatch(x *Batch, s *BatchScratch) *Batch {
	if x.Cols != m.Layers[0].In {
		panic(fmt.Sprintf("nn: ForwardBatch with %d cols, model wants %d", x.Cols, m.Layers[0].In))
	}
	if len(s.bufs) < len(m.Layers) {
		s.bufs = append(s.bufs, make([]Batch, len(m.Layers)-len(s.bufs))...)
	}
	h := x
	for i, l := range m.Layers {
		y := &s.bufs[i]
		y.Reset(h.Rows, l.Out)
		l.forwardBatchInto(h, y, i+1 < len(m.Layers))
		h = y
	}
	return h
}

// forwardBatchInto computes y = X·Wᵀ + b over every row of x, applying
// ReLU in the same pass when fuseReLU is set. The kernel is tiled four
// rows at a time so each weight row is loaded once per tile instead of
// once per input row, and every slice is re-sliced to its exact extent up
// front so the compiler hoists bounds checks out of the inner loops.
func (d *Dense) forwardBatchInto(x, y *Batch, fuseReLU bool) {
	in, out := d.In, d.Out
	if x.Cols != in || y.Cols != out || x.Rows != y.Rows {
		panic(fmt.Sprintf("nn: Dense %dx%d batch forward with x %dx%d y %dx%d",
			d.In, d.Out, x.Rows, x.Cols, y.Rows, y.Cols))
	}
	w := d.W[:out*in]
	b := d.B[:out]
	r := 0
	for ; r+4 <= x.Rows; r += 4 {
		x0 := x.Data[(r+0)*in : (r+1)*in : (r+1)*in]
		x1 := x.Data[(r+1)*in : (r+2)*in : (r+2)*in]
		x2 := x.Data[(r+2)*in : (r+3)*in : (r+3)*in]
		x3 := x.Data[(r+3)*in : (r+4)*in : (r+4)*in]
		y0 := y.Data[(r+0)*out : (r+1)*out : (r+1)*out]
		y1 := y.Data[(r+1)*out : (r+2)*out : (r+2)*out]
		y2 := y.Data[(r+2)*out : (r+3)*out : (r+3)*out]
		y3 := y.Data[(r+3)*out : (r+4)*out : (r+4)*out]
		for o := 0; o < out; o++ {
			wo := w[o*in : o*in+in : o*in+in]
			s0, s1, s2, s3 := b[o], b[o], b[o], b[o]
			for i, wi := range wo {
				s0 += wi * x0[i]
				s1 += wi * x1[i]
				s2 += wi * x2[i]
				s3 += wi * x3[i]
			}
			if fuseReLU {
				// Same comparison form as relu(), not max(): the builtin
				// normalizes -0.0 to +0.0, which would break bit-identical
				// parity with the row-at-a-time path.
				if s0 < 0 {
					s0 = 0
				}
				if s1 < 0 {
					s1 = 0
				}
				if s2 < 0 {
					s2 = 0
				}
				if s3 < 0 {
					s3 = 0
				}
			}
			y0[o], y1[o], y2[o], y3[o] = s0, s1, s2, s3
		}
	}
	for ; r < x.Rows; r++ {
		xr := x.Data[r*in : (r+1)*in : (r+1)*in]
		yr := y.Data[r*out : (r+1)*out : (r+1)*out]
		for o := 0; o < out; o++ {
			wo := w[o*in : o*in+in : o*in+in]
			sum := b[o]
			for i, wi := range wo {
				sum += wi * xr[i]
			}
			if fuseReLU && sum < 0 {
				sum = 0
			}
			yr[o] = sum
		}
	}
}
