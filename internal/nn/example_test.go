package nn_test

import (
	"fmt"
	"math/rand"

	"ssmdvfs/internal/nn"
)

// Example_trainClassifier fits a small MLP on a toy two-feature,
// two-class problem (sign of the first feature) and evaluates it.
func Example_trainClassifier() {
	rng := rand.New(rand.NewSource(1))
	var set nn.ClassificationSet
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if x[0] > 0 {
			label = 1
		}
		set.X = append(set.X, x)
		set.Labels = append(set.Labels, label)
	}

	m, _ := nn.NewMLP([]int{2, 8, 2}, rand.New(rand.NewSource(2)))
	_, err := nn.TrainClassifier(m, set, nn.TrainConfig{
		Epochs: 40, BatchSize: 16, Optimizer: nn.NewAdam(0.01), Seed: 3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("accuracy >= 0.95: %v\n", nn.EvalClassifier(m, set) >= 0.95)
	// Output: accuracy >= 0.95: true
}
