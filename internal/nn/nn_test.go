package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMLPShapes(t *testing.T) {
	m, err := NewMLP([]int{5, 20, 20, 6}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.InputSize() != 5 || m.OutputSize() != 6 {
		t.Fatalf("in=%d out=%d", m.InputSize(), m.OutputSize())
	}
	want := []int{5, 20, 20, 6}
	got := m.Sizes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if got, want := m.FLOPs(), 2*(5*20+20*20+20*6); got != want {
		t.Fatalf("FLOPs = %d, want %d", got, want)
	}
	if got, want := m.Params(), (5*20+20)+(20*20+20)+(20*6+6); got != want {
		t.Fatalf("Params = %d, want %d", got, want)
	}
}

func TestNewMLPErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP([]int{5}, rng); err == nil {
		t.Fatal("single size accepted")
	}
	if _, err := NewMLP([]int{5, 0, 3}, rng); err == nil {
		t.Fatal("zero layer size accepted")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(a, b, c float64) bool {
		logits := []float64{clamp(a), clamp(b), clamp(c)}
		p := Softmax(logits)
		var sum float64
		for _, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	for _, x := range p {
		if math.IsNaN(x) {
			t.Fatal("softmax overflowed on large logits")
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("Argmax ties = %d, want 0 (lowest index)", got)
	}
}

// TestClassifierGradientCheck verifies analytical gradients against
// central finite differences through the full network + softmax CE loss.
func TestClassifierGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewMLP([]int{4, 7, 5, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -1.2, 0.8, 2.1}
	label := 2

	m.ZeroGrad()
	acts, out := m.forwardCache(x)
	_, dOut := CrossEntropyLoss(out, label)
	m.backward(acts, dOut)

	const eps = 1e-6
	lossAt := func() float64 {
		l, _ := CrossEntropyLoss(m.Forward(x), label)
		return l
	}
	for li, layer := range m.Layers {
		for wi := 0; wi < len(layer.W); wi += 7 { // sample weights
			orig := layer.W[wi]
			layer.W[wi] = orig + eps
			lp := lossAt()
			layer.W[wi] = orig - eps
			lm := lossAt()
			layer.W[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := layer.GradW[wi]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: analytic %g vs numeric %g", li, wi, analytic, numeric)
			}
		}
		for bi := range layer.B {
			orig := layer.B[bi]
			layer.B[bi] = orig + eps
			lp := lossAt()
			layer.B[bi] = orig - eps
			lm := lossAt()
			layer.B[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-layer.GradB[bi]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d bias %d: analytic %g vs numeric %g", li, bi, layer.GradB[bi], numeric)
			}
		}
	}
}

// TestRegressorGradientCheck does the same through the MSE loss.
func TestRegressorGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, err := NewMLP([]int{3, 6, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -0.4, 0.2}
	target := []float64{0.7}

	m.ZeroGrad()
	acts, out := m.forwardCache(x)
	_, dOut := MSELoss(out, target)
	m.backward(acts, dOut)

	const eps = 1e-6
	lossAt := func() float64 {
		l, _ := MSELoss(m.Forward(x), target)
		return l
	}
	for li, layer := range m.Layers {
		for wi := range layer.W {
			orig := layer.W[wi]
			layer.W[wi] = orig + eps
			lp := lossAt()
			layer.W[wi] = orig - eps
			lm := lossAt()
			layer.W[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-layer.GradW[wi]) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: analytic %g vs numeric %g", li, wi, layer.GradW[wi], numeric)
			}
		}
	}
}

// makeBlobs builds a linearly separable 3-class dataset.
func makeBlobs(n int, seed int64) ClassificationSet {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{2, 0}, {-2, 2}, {0, -3}}
	var set ClassificationSet
	for i := 0; i < n; i++ {
		c := i % 3
		set.X = append(set.X, []float64{
			centers[c][0] + rng.NormFloat64()*0.4,
			centers[c][1] + rng.NormFloat64()*0.4,
		})
		set.Labels = append(set.Labels, c)
	}
	return set
}

func TestTrainClassifierLearnsBlobs(t *testing.T) {
	train := makeBlobs(300, 11)
	test := makeBlobs(90, 12)
	m, err := NewMLP([]int{2, 16, 3}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainClassifier(m, train, TrainConfig{
		Epochs: 60, BatchSize: 16, Optimizer: NewAdam(0.01), Seed: 14,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := EvalClassifier(m, test); acc < 0.95 {
		t.Fatalf("blob accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestTrainRegressorLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var set RegressionSet
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		set.X = append(set.X, x)
		set.Y = append(set.Y, 0.5*x[0]-0.8*x[1]+0.3)
	}
	m, err := NewMLP([]int{2, 16, 1}, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	loss, err := TrainRegressor(m, set, TrainConfig{
		Epochs: 80, BatchSize: 16, Optimizer: NewAdam(0.01), Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Fatalf("final MSE = %g, want < 1e-3", loss)
	}
}

func TestTrainDeterministic(t *testing.T) {
	train := makeBlobs(120, 18)
	build := func() *MLP {
		m, _ := NewMLP([]int{2, 8, 3}, rand.New(rand.NewSource(19)))
		_, err := TrainClassifier(m, train, TrainConfig{
			Epochs: 10, BatchSize: 8, Optimizer: NewSGD(0.05, 0.9), Seed: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := build(), build()
	for li := range m1.Layers {
		for wi := range m1.Layers[li].W {
			if m1.Layers[li].W[wi] != m2.Layers[li].W[wi] {
				t.Fatal("identical seeds produced different weights")
			}
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	m, _ := NewMLP([]int{2, 3}, rand.New(rand.NewSource(1)))
	set := makeBlobs(9, 1)
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 4, Optimizer: NewAdam(0.01)},
		{Epochs: 5, BatchSize: 0, Optimizer: NewAdam(0.01)},
		{Epochs: 5, BatchSize: 4},
	}
	for i, cfg := range bad {
		if _, err := TrainClassifier(m, set, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	// Label out of range.
	set.Labels[0] = 3
	if _, err := TrainClassifier(m, set, TrainConfig{Epochs: 1, BatchSize: 4, Optimizer: NewAdam(0.01)}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestMaskBlocksWeightAndGradient(t *testing.T) {
	m, _ := NewMLP([]int{2, 4, 3}, rand.New(rand.NewSource(21)))
	l := m.Layers[0]
	mask := make([]float64, len(l.W))
	mask[0] = 1 // keep only the first weight
	if err := l.SetMask(mask); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(l.W); i++ {
		if l.W[i] != 0 {
			t.Fatalf("masked weight %d = %g, want 0", i, l.W[i])
		}
	}
	// Training must not resurrect masked weights.
	set := makeBlobs(60, 22)
	if _, err := TrainClassifier(m, set, TrainConfig{
		Epochs: 5, BatchSize: 8, Optimizer: NewAdam(0.01), Seed: 23,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(l.W); i++ {
		if l.W[i] != 0 {
			t.Fatalf("masked weight %d became %g after training", i, l.W[i])
		}
	}
	if l.NonzeroWeights() > 1 {
		t.Fatalf("NonzeroWeights = %d, want <= 1", l.NonzeroWeights())
	}
	if got := l.EffectiveFLOPs(); got > 2 {
		t.Fatalf("EffectiveFLOPs = %d, want <= 2", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _ := NewMLP([]int{3, 5, 2}, rand.New(rand.NewSource(24)))
	mask := make([]float64, len(m.Layers[0].W))
	for i := range mask {
		mask[i] = float64(i % 2)
	}
	if err := m.Layers[0].SetMask(mask); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 0.9}
	a, b := m.Forward(x), got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded model diverges: %v vs %v", a, b)
		}
	}
	if got.Layers[0].Mask == nil {
		t.Fatal("mask not round-tripped")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"layers":[{"in":2,"out":3,"w":[1,2],"b":[0,0,0]}]}`,                                  // wrong W size
		`{"layers":[{"in":2,"out":1,"w":[1,2],"b":[0]},{"in":3,"out":1,"w":[1,2,3],"b":[0]}]}`, // shape mismatch
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("corrupt model %d accepted", i)
		}
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("MAPE = %g, want 10", got)
	}
	// Near-zero targets are skipped.
	if got := MAPE([]float64{5}, []float64{0}); got != 0 {
		t.Fatalf("MAPE with zero target = %g, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := NewMLP([]int{2, 4, 2}, rand.New(rand.NewSource(25)))
	cp := m.Clone()
	cp.Layers[0].W[0] += 100
	if m.Layers[0].W[0] == cp.Layers[0].W[0] {
		t.Fatal("clone shares weight storage")
	}
}

func TestSGDAndAdamBothConverge(t *testing.T) {
	train := makeBlobs(200, 26)
	for name, opt := range map[string]Optimizer{
		"sgd":  NewSGD(0.05, 0.9),
		"adam": NewAdam(0.01),
	} {
		m, _ := NewMLP([]int{2, 12, 3}, rand.New(rand.NewSource(27)))
		loss, err := TrainClassifier(m, train, TrainConfig{
			Epochs: 40, BatchSize: 16, Optimizer: opt, Seed: 28,
		})
		if err != nil {
			t.Fatal(err)
		}
		if loss > 0.2 {
			t.Fatalf("%s final loss %g, want < 0.2", name, loss)
		}
	}
}

func TestLoadRejectsNonFiniteWeights(t *testing.T) {
	// 1e999 overflows float64; the decoder or the finiteness check must
	// reject it either way.
	corrupt := `{"layers":[{"in":1,"out":1,"w":[1e999],"b":[0]}]}`
	if _, err := Load(bytes.NewReader([]byte(corrupt))); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

func TestOnEpochEarlyStop(t *testing.T) {
	m, _ := NewMLP([]int{2, 4, 3}, rand.New(rand.NewSource(30)))
	set := makeBlobs(60, 31)
	calls := 0
	_, err := TrainClassifier(m, set, TrainConfig{
		Epochs: 50, BatchSize: 8, Optimizer: NewAdam(0.01), Seed: 32,
		OnEpoch: func(epoch int, loss float64) bool {
			calls++
			return epoch < 2 // stop after 3 callbacks
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("OnEpoch called %d times, want 3 (early stop)", calls)
	}
}
