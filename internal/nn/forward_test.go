package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestForwardScratchMatchesForward pins the scratch-buffer path to the
// allocating one, across reuse and a network swap (buffer resize).
func TestForwardScratchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small, err := NewMLP([]int{6, 12, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewMLP([]int{6, 20, 20, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for i := 0; i < 50; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for _, m := range []*MLP{small, big, small} {
			want := m.Forward(x)
			got := m.ForwardScratch(x, &s)
			if len(got) != len(want) {
				t.Fatalf("iter %d: length %d vs %d", i, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("iter %d output %d: %g != %g", i, k, got[k], want[k])
				}
			}
		}
	}
}

func TestForwardScratchSteadyStateAllocs(t *testing.T) {
	m, err := NewMLP([]int{6, 20, 20, 6}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	var s Scratch
	allocs := testing.AllocsPerRun(200, func() {
		m.ForwardScratch(x, &s)
	})
	if allocs > 0 {
		t.Fatalf("ForwardScratch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentForwardMatchesSerial hammers one read-only MLP from 16
// goroutines, each with its own Scratch, asserting bit-identical outputs
// to the serial pass. Run with -race this verifies inference shares no
// mutable state across callers.
func TestConcurrentForwardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP([]int{6, 20, 20, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 256
	xs := make([][]float64, rows)
	want := make([][]float64, rows)
	for i := range xs {
		xs[i] = make([]float64, 6)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
		want[i] = m.Forward(xs[i])
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var s Scratch
			for rep := 0; rep < 8; rep++ {
				for i := range xs {
					var got []float64
					if (g+rep)%2 == 0 {
						got = m.ForwardScratch(xs[i], &s)
					} else {
						got = m.Forward(xs[i])
					}
					for k := range got {
						if got[k] != want[i][k] {
							t.Errorf("goroutine %d row %d out %d: %g != %g", g, i, k, got[k], want[i][k])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
