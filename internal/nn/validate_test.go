package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestCheckFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMLP([]int{4, 8, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFinite(); err != nil {
		t.Fatalf("fresh model rejected: %v", err)
	}

	m.Layers[1].W[5] = math.NaN()
	if err := m.CheckFinite(); err == nil {
		t.Fatal("NaN weight accepted")
	}
	m.Layers[1].W[5] = 0

	m.Layers[0].B[2] = math.Inf(-1)
	if err := m.CheckFinite(); err == nil {
		t.Fatal("-Inf bias accepted")
	}
	m.Layers[0].B[2] = 0

	m.Layers[0].Mask = make([]float64, len(m.Layers[0].W))
	m.Layers[0].Mask[0] = math.Inf(1)
	if err := m.CheckFinite(); err == nil {
		t.Fatal("+Inf mask accepted")
	}
	m.Layers[0].Mask = nil

	// Truncated weight slice (a torn/corrupt artifact shape).
	w := m.Layers[1].W
	m.Layers[1].W = w[:len(w)-1]
	if err := m.CheckFinite(); err == nil {
		t.Fatal("truncated weights accepted")
	}
	m.Layers[1].W = w

	// Mismatched inter-layer shape.
	m2, _ := NewMLP([]int{4, 8, 3}, rng)
	m2.Layers[1] = NewDense(7, 3, rng)
	if err := m2.CheckFinite(); err == nil {
		t.Fatal("layer shape mismatch accepted")
	}

	if err := (&MLP{}).CheckFinite(); err == nil {
		t.Fatal("empty MLP accepted")
	}
}
