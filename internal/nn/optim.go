package nn

import "math"

// Optimizer updates an MLP's parameters from its accumulated gradients.
// Implementations hold per-parameter state keyed by layer order, so one
// optimizer instance must be used with exactly one network.
type Optimizer interface {
	// Step applies one update using the gradients accumulated since the
	// last ZeroGrad, scaled by 1/batchSize.
	Step(m *MLP, batchSize int)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vw [][]float64
	vb [][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

func (s *SGD) ensure(m *MLP) {
	if s.vw != nil {
		return
	}
	for _, l := range m.Layers {
		s.vw = append(s.vw, make([]float64, len(l.W)))
		s.vb = append(s.vb, make([]float64, len(l.B)))
	}
}

// Step implements Optimizer.
func (s *SGD) Step(m *MLP, batchSize int) {
	s.ensure(m)
	scale := 1.0 / float64(batchSize)
	for li, l := range m.Layers {
		vw, vb := s.vw[li], s.vb[li]
		for i := range l.W {
			vw[i] = s.Momentum*vw[i] - s.LR*l.GradW[i]*scale
			l.W[i] += vw[i]
		}
		for i := range l.B {
			vb[i] = s.Momentum*vb[i] - s.LR*l.GradB[i]*scale
			l.B[i] += vb[i]
		}
		l.ApplyMask()
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t  int
	mw [][]float64
	vw [][]float64
	mb [][]float64
	vb [][]float64
}

// NewAdam returns Adam with the standard (0.9, 0.999, 1e-8) moments.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

func (a *Adam) ensure(m *MLP) {
	if a.mw != nil {
		return
	}
	for _, l := range m.Layers {
		a.mw = append(a.mw, make([]float64, len(l.W)))
		a.vw = append(a.vw, make([]float64, len(l.W)))
		a.mb = append(a.mb, make([]float64, len(l.B)))
		a.vb = append(a.vb, make([]float64, len(l.B)))
	}
}

// Step implements Optimizer.
func (a *Adam) Step(m *MLP, batchSize int) {
	a.ensure(m)
	a.t++
	scale := 1.0 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for li, l := range m.Layers {
		mw, vw, mb, vb := a.mw[li], a.vw[li], a.mb[li], a.vb[li]
		for i := range l.W {
			g := l.GradW[i] * scale
			mw[i] = a.Beta1*mw[i] + (1-a.Beta1)*g
			vw[i] = a.Beta2*vw[i] + (1-a.Beta2)*g*g
			l.W[i] -= a.LR * (mw[i] / bc1) / (math.Sqrt(vw[i]/bc2) + a.Epsilon)
		}
		for i := range l.B {
			g := l.GradB[i] * scale
			mb[i] = a.Beta1*mb[i] + (1-a.Beta1)*g
			vb[i] = a.Beta2*vb[i] + (1-a.Beta2)*g*g
			l.B[i] -= a.LR * (mb[i] / bc1) / (math.Sqrt(vb[i]/bc2) + a.Epsilon)
		}
		l.ApplyMask()
	}
}
