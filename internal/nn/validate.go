package nn

import (
	"fmt"
	"math"
)

// CheckFinite reports an error if any weight, bias, or mask entry of any
// layer is NaN or ±Inf, or if consecutive layers disagree on their shared
// dimension. A model that fails this check must never be swapped into a
// serving path: a single non-finite weight poisons every downstream
// activation and turns decisions into garbage.
func (m *MLP) CheckFinite() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("nn: MLP has no layers")
	}
	for i, l := range m.Layers {
		if l == nil {
			return fmt.Errorf("nn: layer %d is nil", i)
		}
		if l.In <= 0 || l.Out <= 0 {
			return fmt.Errorf("nn: layer %d has shape %dx%d", i, l.In, l.Out)
		}
		if i > 0 && m.Layers[i-1].Out != l.In {
			return fmt.Errorf("nn: layer %d input %d does not match layer %d output %d",
				i, l.In, i-1, m.Layers[i-1].Out)
		}
		if len(l.W) != l.In*l.Out || len(l.B) != l.Out {
			return fmt.Errorf("nn: layer %d weight/bias lengths %d/%d do not match shape %dx%d",
				i, len(l.W), len(l.B), l.In, l.Out)
		}
		if l.Mask != nil && len(l.Mask) != len(l.W) {
			return fmt.Errorf("nn: layer %d mask length %d does not match %d weights", i, len(l.Mask), len(l.W))
		}
		for _, vs := range [][]float64{l.W, l.B, l.Mask} {
			for j, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("nn: layer %d has non-finite parameter at index %d: %g", i, j, v)
				}
			}
		}
	}
	return nil
}
