package nn

import (
	"fmt"
	"math/rand"
)

// ClassificationSet is a labelled dataset for a classifier head.
type ClassificationSet struct {
	X      [][]float64
	Labels []int
}

// Len returns the number of samples.
func (s ClassificationSet) Len() int { return len(s.X) }

// Validate checks shape consistency against a class count.
func (s ClassificationSet) Validate(classes int) error {
	if len(s.X) != len(s.Labels) {
		return fmt.Errorf("nn: %d inputs vs %d labels", len(s.X), len(s.Labels))
	}
	for i, l := range s.Labels {
		if l < 0 || l >= classes {
			return fmt.Errorf("nn: sample %d label %d out of range [0,%d)", i, l, classes)
		}
	}
	return nil
}

// RegressionSet is a dataset for a regression head with scalar targets.
type RegressionSet struct {
	X [][]float64
	Y []float64
}

// Len returns the number of samples.
func (s RegressionSet) Len() int { return len(s.X) }

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Seed drives the shuffle order; training is fully deterministic.
	Seed int64
	// OnEpoch, if set, is called after each epoch with the epoch index and
	// mean training loss (e.g. for logging or early stopping); returning
	// false stops training.
	OnEpoch func(epoch int, loss float64) bool
}

func (c TrainConfig) validate() error {
	if c.Epochs <= 0 {
		return fmt.Errorf("nn: Epochs must be positive, got %d", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("nn: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.Optimizer == nil {
		return fmt.Errorf("nn: Optimizer is required")
	}
	return nil
}

// TrainClassifier fits m on the dataset with softmax-cross-entropy and
// returns the final epoch's mean loss.
func TrainClassifier(m *MLP, set ClassificationSet, cfg TrainConfig) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if err := set.Validate(m.OutputSize()); err != nil {
		return 0, err
	}
	if set.Len() == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, set.Len())
	for i := range order {
		order[i] = i
	}
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			m.ZeroGrad()
			for _, idx := range order[start:end] {
				acts, out := m.forwardCache(set.X[idx])
				loss, dOut := CrossEntropyLoss(out, set.Labels[idx])
				epochLoss += loss
				m.backward(acts, dOut)
			}
			cfg.Optimizer.Step(m, end-start)
		}
		epochLoss /= float64(set.Len())
		if cfg.OnEpoch != nil && !cfg.OnEpoch(e, epochLoss) {
			break
		}
	}
	return epochLoss, nil
}

// TrainRegressor fits m on the dataset with MSE and returns the final
// epoch's mean loss. Targets are scalar; m must have OutputSize 1.
func TrainRegressor(m *MLP, set RegressionSet, cfg TrainConfig) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if m.OutputSize() != 1 {
		return 0, fmt.Errorf("nn: TrainRegressor requires a scalar head, got %d outputs", m.OutputSize())
	}
	if len(set.X) != len(set.Y) {
		return 0, fmt.Errorf("nn: %d inputs vs %d targets", len(set.X), len(set.Y))
	}
	if set.Len() == 0 {
		return 0, fmt.Errorf("nn: empty training set")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, set.Len())
	for i := range order {
		order[i] = i
	}
	target := make([]float64, 1)
	var epochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			m.ZeroGrad()
			for _, idx := range order[start:end] {
				acts, out := m.forwardCache(set.X[idx])
				target[0] = set.Y[idx]
				loss, dOut := MSELoss(out, target)
				epochLoss += loss
				m.backward(acts, dOut)
			}
			cfg.Optimizer.Step(m, end-start)
		}
		epochLoss /= float64(set.Len())
		if cfg.OnEpoch != nil && !cfg.OnEpoch(e, epochLoss) {
			break
		}
	}
	return epochLoss, nil
}

// EvalClassifier returns accuracy of m on the set.
func EvalClassifier(m *MLP, set ClassificationSet) float64 {
	preds := make([]int, set.Len())
	for i, x := range set.X {
		preds[i] = Argmax(m.Forward(x))
	}
	return Accuracy(preds, set.Labels)
}

// EvalRegressor returns the MAPE (%) of m on the set.
func EvalRegressor(m *MLP, set RegressionSet) float64 {
	preds := make([]float64, set.Len())
	for i, x := range set.X {
		preds[i] = m.Forward(x)[0]
	}
	return MAPE(preds, set.Y)
}
