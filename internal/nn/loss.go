package nn

import (
	"fmt"
	"math"
)

// Softmax returns the softmax of logits in a fresh slice, computed
// stably by subtracting the max logit.
func Softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Argmax returns the index of the largest element (ties: lowest index).
func Argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// CrossEntropyLoss computes softmax-cross-entropy loss for one sample and
// the gradient w.r.t. the logits.
func CrossEntropyLoss(logits []float64, label int) (loss float64, dLogits []float64) {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, len(logits)))
	}
	p := Softmax(logits)
	loss = -math.Log(math.Max(p[label], 1e-15))
	dLogits = p
	dLogits[label] -= 1
	return loss, dLogits
}

// MSELoss computes mean-squared-error loss for one sample and the
// gradient w.r.t. the prediction.
func MSELoss(pred, target []float64) (loss float64, dPred []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: MSE with |pred|=%d |target|=%d", len(pred), len(target)))
	}
	dPred = make([]float64, len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		dPred[i] = 2 * d / float64(len(pred))
	}
	return loss / float64(len(pred)), dPred
}

// Accuracy returns the fraction of samples whose argmax prediction
// matches the label.
func Accuracy(preds []int, labels []int) float64 {
	if len(preds) == 0 {
		return 0
	}
	hit := 0
	for i, p := range preds {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(preds))
}

// MAPE returns the mean absolute percentage error of predictions against
// targets, in percent. Targets with magnitude below eps are skipped to
// avoid division blow-ups; if all are skipped MAPE is 0.
func MAPE(preds, targets []float64) float64 {
	const eps = 1e-9
	var sum float64
	n := 0
	for i, t := range targets {
		if math.Abs(t) < eps {
			continue
		}
		sum += math.Abs((preds[i] - t) / t)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 100
}
