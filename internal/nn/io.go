package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ssmdvfs/internal/atomicfile"
)

// serialized mirrors MLP for JSON round-trips.
type serialized struct {
	Layers []serializedLayer `json:"layers"`
}

type serializedLayer struct {
	In   int       `json:"in"`
	Out  int       `json:"out"`
	W    []float64 `json:"w"`
	B    []float64 `json:"b"`
	Mask []float64 `json:"mask,omitempty"`
}

// Save writes the network as JSON.
func (m *MLP) Save(w io.Writer) error {
	s := serialized{}
	for _, l := range m.Layers {
		s.Layers = append(s.Layers, serializedLayer{In: l.In, Out: l.Out, W: l.W, B: l.B, Mask: l.Mask})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*MLP, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: model has no layers")
	}
	m := &MLP{}
	prevOut := -1
	for i, sl := range s.Layers {
		if sl.In <= 0 || sl.Out <= 0 {
			return nil, fmt.Errorf("nn: layer %d has invalid shape %dx%d", i, sl.In, sl.Out)
		}
		if len(sl.W) != sl.In*sl.Out || len(sl.B) != sl.Out {
			return nil, fmt.Errorf("nn: layer %d parameter sizes do not match shape", i)
		}
		if sl.Mask != nil && len(sl.Mask) != len(sl.W) {
			return nil, fmt.Errorf("nn: layer %d mask size does not match weights", i)
		}
		if prevOut >= 0 && sl.In != prevOut {
			return nil, fmt.Errorf("nn: layer %d input %d does not match previous output %d", i, sl.In, prevOut)
		}
		prevOut = sl.Out
		for _, w := range sl.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("nn: layer %d contains non-finite weights", i)
			}
		}
		d := &Dense{
			In:    sl.In,
			Out:   sl.Out,
			W:     sl.W,
			B:     sl.B,
			Mask:  sl.Mask,
			GradW: make([]float64, len(sl.W)),
			GradB: make([]float64, len(sl.B)),
		}
		m.Layers = append(m.Layers, d)
	}
	return m, nil
}

// SaveFile writes the network to path atomically (temp file + rename).
func (m *MLP) SaveFile(path string) error {
	return atomicfile.Write(path, m.Save)
}

// LoadFile reads a network from path.
func LoadFile(path string) (*MLP, error) {
	return atomicfile.ReadWith(path, Load)
}
