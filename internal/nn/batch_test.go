package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func fillRows(b *Batch, rows, cols int, rng *rand.Rand) {
	b.Reset(rows, cols)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
}

// TestForwardBatchMatchesScratch pins the tiled batch kernel to the
// row-at-a-time path, bit for bit, across row counts that exercise the
// 4-row tile body, the remainder loop, and both together — plus scratch
// reuse across networks of different shapes (buffer resize).
func TestForwardBatchMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small, err := NewMLP([]int{6, 12, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewMLP([]int{6, 20, 20, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x Batch
	var bs BatchScratch
	var s Scratch
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 64} {
		for _, m := range []*MLP{small, big, small} {
			fillRows(&x, rows, m.InputSize(), rng)
			y := m.ForwardBatch(&x, &bs)
			if y.Rows != rows || y.Cols != m.OutputSize() {
				t.Fatalf("rows=%d: got %dx%d output, want %dx%d", rows, y.Rows, y.Cols, rows, m.OutputSize())
			}
			for r := 0; r < rows; r++ {
				want := m.ForwardScratch(x.Row(r), &s)
				got := y.Row(r)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("rows=%d row %d out %d: batch %g != scratch %g", rows, r, k, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestForwardBatchSteadyStateAllocs(t *testing.T) {
	m, err := NewMLP([]int{6, 20, 20, 6}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var x Batch
	x.Reset(16, 6)
	var s BatchScratch
	m.ForwardBatch(&x, &s) // warm the scratch buffers
	allocs := testing.AllocsPerRun(200, func() {
		m.ForwardBatch(&x, &s)
	})
	if allocs > 0 {
		t.Fatalf("ForwardBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentForwardBatchMatchesRowAtATime hammers one read-only MLP
// from 16 goroutines, each alternating between ForwardBatch and the
// row-at-a-time ForwardScratch over the same rows, asserting bit-identical
// outputs to the serial pass. With -race this verifies the batched kernel
// shares no mutable state across callers.
func TestConcurrentForwardBatchMatchesRowAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP([]int{6, 20, 20, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 61 // odd on purpose: tiles plus a remainder
	var x Batch
	fillRows(&x, rows, 6, rng)
	want := make([][]float64, rows)
	for r := range want {
		want[r] = m.Forward(x.Row(r))
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var bs BatchScratch
			var s Scratch
			for rep := 0; rep < 8; rep++ {
				if (g+rep)%2 == 0 {
					y := m.ForwardBatch(&x, &bs)
					for r := 0; r < rows; r++ {
						got := y.Row(r)
						for k := range got {
							if got[k] != want[r][k] {
								t.Errorf("goroutine %d batch row %d out %d: %g != %g", g, r, k, got[k], want[r][k])
								return
							}
						}
					}
				} else {
					for r := 0; r < rows; r++ {
						got := m.ForwardScratch(x.Row(r), &s)
						for k := range got {
							if got[k] != want[r][k] {
								t.Errorf("goroutine %d row %d out %d: %g != %g", g, r, k, got[k], want[r][k])
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkForwardBatch is the zero-alloc guard for the batched hot path:
// it fails (not just reports) if a steady-state ForwardBatch allocates.
// CI runs it with -benchtime=1x -benchmem so the numbers stay visible.
func BenchmarkForwardBatch(b *testing.B) {
	m, err := NewMLP([]int{6, 20, 20, 6}, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			var x Batch
			fillRows(&x, rows, 6, rand.New(rand.NewSource(5)))
			var s BatchScratch
			m.ForwardBatch(&x, &s)
			if allocs := testing.AllocsPerRun(100, func() { m.ForwardBatch(&x, &s) }); allocs > 0 {
				b.Fatalf("steady-state ForwardBatch allocates %.1f objects/op, want 0", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardBatch(&x, &s)
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
