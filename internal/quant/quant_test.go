package quant

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ssmdvfs/internal/nn"
)

func newNet(t *testing.T, seed int64) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP([]int{6, 12, 6}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuantizeMLPGridProperty(t *testing.T) {
	m := newNet(t, 1)
	q, err := QuantizeMLP(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every quantized weight must be an integer multiple of its layer's
	// scale, and the grid must have at most 2^7-1 positive levels.
	for li, l := range q.Layers {
		maxAbs := 0.0
		for _, w := range m.Layers[li].W {
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
		for _, b := range m.Layers[li].B {
			if a := math.Abs(b); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		for i, w := range l.W {
			steps := w / scale
			if math.Abs(steps-math.Round(steps)) > 1e-9 {
				t.Fatalf("layer %d weight %d = %g is not on the grid (scale %g)", li, i, w, scale)
			}
		}
	}
}

func TestQuantizeErrorShrinksWithBits(t *testing.T) {
	m := newNet(t, 2)
	prev := math.Inf(1)
	for _, bits := range []int{4, 8, 12, 16} {
		q, err := QuantizeMLP(m, bits)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for li := range m.Layers {
			for i := range m.Layers[li].W {
				if e := math.Abs(m.Layers[li].W[i] - q.Layers[li].W[i]); e > maxErr {
					maxErr = e
				}
			}
		}
		if maxErr > prev+1e-12 {
			t.Fatalf("%d bits has larger error (%g) than fewer bits (%g)", bits, maxErr, prev)
		}
		prev = maxErr
	}
}

func TestQuantize16BitNearLossless(t *testing.T) {
	m := newNet(t, 3)
	q, err := QuantizeMLP(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 0.9, 0.2, -0.3, 0.7}
	a, b := m.Forward(x), q.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-3*(1+math.Abs(a[i])) {
			t.Fatalf("16-bit output diverges: %g vs %g", a[i], b[i])
		}
	}
}

func TestQuantizePreservesMask(t *testing.T) {
	m := newNet(t, 4)
	mask := make([]float64, len(m.Layers[0].W))
	for i := range mask {
		mask[i] = float64(i % 2)
	}
	if err := m.Layers[0].SetMask(mask); err != nil {
		t.Fatal(err)
	}
	q, err := QuantizeMLP(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, mv := range mask {
		if mv == 0 && q.Layers[0].W[i] != 0 {
			t.Fatalf("masked weight %d became %g after quantization", i, q.Layers[0].W[i])
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	m := newNet(t, 5)
	if _, err := QuantizeMLP(m, 1); err == nil {
		t.Fatal("1 bit accepted")
	}
	if _, err := QuantizeMLP(m, 40); err == nil {
		t.Fatal("40 bits accepted")
	}
}

// TestQuantizeRejectsDegenerateScales: a corrupt artifact — an all-zero
// layer or a non-finite parameter — must fail quantization with a
// structured *ScaleError naming the layer, not pass through silently
// (all-zero) or poison the grid (NaN).
func TestQuantizeRejectsDegenerateScales(t *testing.T) {
	zero := newNet(t, 6)
	for i := range zero.Layers[1].W {
		zero.Layers[1].W[i] = 0
	}
	for i := range zero.Layers[1].B {
		zero.Layers[1].B[i] = 0
	}
	_, err := QuantizeMLP(zero, 8)
	var se *ScaleError
	if !errors.As(err, &se) || se.Layer != 1 || se.Scale != 0 {
		t.Fatalf("all-zero layer: got %v, want *ScaleError{Layer:1, Scale:0}", err)
	}

	nan := newNet(t, 7)
	nan.Layers[0].W[2] = math.NaN()
	if _, err := QuantizeMLP(nan, 8); !errors.As(err, &se) || se.Layer != 0 {
		t.Fatalf("NaN weight: got %v, want *ScaleError{Layer:0}", err)
	}

	// A NaN bias slips past nn.Load's weight check, so the scale path
	// must catch it too.
	nanB := newNet(t, 8)
	nanB.Layers[1].B[0] = math.Inf(1)
	if _, err := QuantizeMLP(nanB, 8); !errors.As(err, &se) || se.Layer != 1 {
		t.Fatalf("Inf bias: got %v, want *ScaleError{Layer:1}", err)
	}
}

func TestHardwareScale(t *testing.T) {
	a16, e16, err := HardwareScale(16)
	if err != nil {
		t.Fatal(err)
	}
	if a16 >= 1 || e16 >= 1 {
		t.Fatalf("INT16 not cheaper than FP32: area %g energy %g", a16, e16)
	}
	a8, _, err := HardwareScale(8)
	if err != nil {
		t.Fatal(err)
	}
	if a8 >= a16 {
		t.Fatalf("INT8 (%g) not cheaper than INT16 (%g)", a8, a16)
	}
	if _, _, err := HardwareScale(0); err == nil {
		t.Fatal("0 bits accepted")
	}
}
