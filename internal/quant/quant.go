// Package quant implements post-training weight quantization for the
// SSMDVFS module — an extension beyond the paper, whose ASIC is FP32
// (Section V-D). Quantization is simulated with fake-quant: weights are
// rounded to a symmetric b-bit integer grid per layer and dequantized,
// so the Go inference path measures exactly the accuracy a fixed-point
// engine would see, while the asic package can cost integer MACs.
package quant

import (
	"fmt"
	"math"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/nn"
)

// QuantizeMLP rounds every layer's weights and biases to a symmetric
// signed b-bit grid scaled by that layer's max |w|, in place on a clone.
// Pruning masks survive (zeros quantize to zero).
func QuantizeMLP(m *nn.MLP, bits int) (*nn.MLP, error) {
	if bits < 2 || bits > 31 {
		return nil, fmt.Errorf("quant: bits must be in [2,31], got %d", bits)
	}
	q := m.Clone()
	levels := float64(int64(1)<<(bits-1)) - 1
	for _, l := range q.Layers {
		maxAbs := 0.0
		for _, w := range l.W {
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
		for _, b := range l.B {
			if a := math.Abs(b); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / levels
		for i, w := range l.W {
			l.W[i] = math.Round(w/scale) * scale
		}
		for i, b := range l.B {
			l.B[i] = math.Round(b/scale) * scale
		}
		l.ApplyMask()
	}
	return q, nil
}

// QuantizeModel quantizes both heads of a combined model.
func QuantizeModel(m *core.Model, bits int) (*core.Model, error) {
	q := m.Clone()
	var err error
	if q.Decision, err = QuantizeMLP(m.Decision, bits); err != nil {
		return nil, err
	}
	if q.Calibrator, err = QuantizeMLP(m.Calibrator, bits); err != nil {
		return nil, err
	}
	return q, nil
}

// Point is one bit-width on the quantization curve.
type Point struct {
	Bits     int
	Accuracy float64
	MAPE     float64
}

// Sweep quantizes the model at each bit width and evaluates it on the
// dataset, producing the accuracy/MAPE-vs-bits curve.
func Sweep(m *core.Model, ds *datagen.Dataset, bitWidths []int) ([]Point, error) {
	if len(bitWidths) == 0 {
		return nil, fmt.Errorf("quant: no bit widths")
	}
	var out []Point
	for _, bits := range bitWidths {
		q, err := QuantizeModel(m, bits)
		if err != nil {
			return nil, err
		}
		rep := core.Evaluate(q, ds)
		out = append(out, Point{Bits: bits, Accuracy: rep.Accuracy, MAPE: rep.MAPE})
	}
	return out, nil
}

// HardwareScale returns rough area and energy multipliers for a b-bit
// integer MAC relative to the FP32 MAC the asic package is calibrated
// for: multiplier area/energy grow roughly quadratically with operand
// width, and an INT16 MAC is commonly ~5× smaller than FP32.
func HardwareScale(bits int) (areaFactor, energyFactor float64, err error) {
	if bits < 2 || bits > 32 {
		return 0, 0, fmt.Errorf("quant: bits must be in [2,32], got %d", bits)
	}
	r := float64(bits) / 32.0
	// FP32 carries exponent-alignment overhead an integer MAC avoids;
	// fold that into a 0.65 integer discount at equal width.
	factor := 0.65 * r * r
	return factor, factor, nil
}
