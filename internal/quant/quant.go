// Package quant implements post-training weight quantization for the
// SSMDVFS module — an extension beyond the paper, whose ASIC is FP32
// (Section V-D). Quantization is simulated with fake-quant: weights are
// rounded to a symmetric b-bit integer grid per layer and dequantized,
// so the Go inference path measures exactly the accuracy a fixed-point
// engine would see, while the asic package can cost integer MACs.
package quant

import (
	"fmt"
	"math"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/nn"
)

// ScaleError reports a layer whose quantization scale factor is
// degenerate — zero (an all-zero layer, so every parameter would
// quantize to zero and the head would emit constant logits forever) or
// NaN/Inf (a corrupt artifact with non-finite parameters). Like
// serve.ReloadError it is a structured error: the layer index and the
// offending scale survive up the stack so a rejected artifact names
// exactly what was wrong instead of silently serving garbage.
type ScaleError struct {
	Layer int
	Scale float64
	Err   error
}

func (e *ScaleError) Error() string {
	return fmt.Sprintf("quant: layer %d scale %g: %v", e.Layer, e.Scale, e.Err)
}

func (e *ScaleError) Unwrap() error { return e.Err }

// QuantizeMLP rounds every layer's weights and biases to a symmetric
// signed b-bit grid scaled by that layer's max |w|, in place on a clone.
// Pruning masks survive (zeros quantize to zero). A layer whose scale
// would be zero or non-finite fails with a *ScaleError rather than
// passing through unquantized or poisoning the grid with NaNs.
func QuantizeMLP(m *nn.MLP, bits int) (*nn.MLP, error) {
	if bits < 2 || bits > 31 {
		return nil, fmt.Errorf("quant: bits must be in [2,31], got %d", bits)
	}
	q := m.Clone()
	levels := float64(int64(1)<<(bits-1)) - 1
	for li, l := range q.Layers {
		maxAbs := 0.0
		for _, w := range l.W {
			// NaN loses every comparison, so check it explicitly — a
			// single NaN weight would otherwise leave maxAbs finite and
			// quantize the rest of the layer around a poisoned grid.
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, &ScaleError{Layer: li, Scale: math.NaN(),
					Err: fmt.Errorf("non-finite weight %v", w)}
			}
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
		for _, b := range l.B {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return nil, &ScaleError{Layer: li, Scale: math.NaN(),
					Err: fmt.Errorf("non-finite bias %v", b)}
			}
			if a := math.Abs(b); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			return nil, &ScaleError{Layer: li, Scale: 0,
				Err: fmt.Errorf("all parameters are zero")}
		}
		scale := maxAbs / levels
		for i, w := range l.W {
			l.W[i] = math.Round(w/scale) * scale
		}
		for i, b := range l.B {
			l.B[i] = math.Round(b/scale) * scale
		}
		l.ApplyMask()
	}
	return q, nil
}

// QuantizeModel quantizes both heads of a combined model.
func QuantizeModel(m *core.Model, bits int) (*core.Model, error) {
	q := m.Clone()
	var err error
	if q.Decision, err = QuantizeMLP(m.Decision, bits); err != nil {
		return nil, fmt.Errorf("quant: decision head: %w", err)
	}
	if q.Calibrator, err = QuantizeMLP(m.Calibrator, bits); err != nil {
		return nil, fmt.Errorf("quant: calibrator head: %w", err)
	}
	return q, nil
}

// Point is one bit-width on the quantization curve.
type Point struct {
	Bits     int
	Accuracy float64
	MAPE     float64
}

// Sweep quantizes the model at each bit width and evaluates it on the
// dataset, producing the accuracy/MAPE-vs-bits curve.
func Sweep(m *core.Model, ds *datagen.Dataset, bitWidths []int) ([]Point, error) {
	if len(bitWidths) == 0 {
		return nil, fmt.Errorf("quant: no bit widths")
	}
	var out []Point
	for _, bits := range bitWidths {
		q, err := QuantizeModel(m, bits)
		if err != nil {
			return nil, err
		}
		rep := core.Evaluate(q, ds)
		out = append(out, Point{Bits: bits, Accuracy: rep.Accuracy, MAPE: rep.MAPE})
	}
	return out, nil
}

// HardwareScale returns rough area and energy multipliers for a b-bit
// integer MAC relative to the FP32 MAC the asic package is calibrated
// for: multiplier area/energy grow roughly quadratically with operand
// width, and an INT16 MAC is commonly ~5× smaller than FP32.
func HardwareScale(bits int) (areaFactor, energyFactor float64, err error) {
	if bits < 2 || bits > 32 {
		return 0, 0, fmt.Errorf("quant: bits must be in [2,32], got %d", bits)
	}
	r := float64(bits) / 32.0
	// FP32 carries exponent-alignment overhead an integer MAC avoids;
	// fold that into a 0.65 integer discount at equal width.
	factor := 0.65 * r * r
	return factor, factor, nil
}
