package features

import (
	"math/rand"
	"testing"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
)

// informativeDataset builds a corpus where only the Table I counters
// carry signal: labels follow a memory-boundedness parameter expressed
// through IPC/MH/MH\L/L1CRM (and PPC), while every other counter is pure
// noise. RFE must recover the informative indirect features.
func informativeDataset(n int, seed int64) *datagen.Dataset {
	rng := rand.New(rand.NewSource(seed))
	tbl := clockdomain.TitanX()
	fDef := tbl.Point(tbl.Default()).FrequencyHz
	ds := &datagen.Dataset{CounterNames: counters.Names(), Levels: tbl.Len()}
	for i := 0; i < n; i++ {
		m := rng.Float64()
		feats := make([]float64, counters.Num)
		for j := range feats {
			feats[j] = rng.NormFloat64() // noise everywhere...
		}
		// ...except the paper's five.
		feats[counters.IdxIPC] = 2.0 * (1 - m)
		feats[counters.IdxPPC] = 3 + 4*(1-m)
		feats[counters.IdxMH] = 60000 * m
		feats[counters.IdxMHNL] = 5000 * m
		feats[counters.IdxL1CRM] = 2000 * m
		for level := 0; level < tbl.Len(); level++ {
			f := tbl.Point(level).FrequencyHz
			loss := (1 - m) * (fDef/f - 1)
			ds.Samples = append(ds.Samples, datagen.Sample{
				Kernel: "syn", Level: level, Features: feats,
				PerfLoss: loss, ScalingInstr: 10000,
			})
		}
	}
	return ds
}

func TestRFESelectsInformativeFeatures(t *testing.T) {
	ds := informativeDataset(250, 1)
	cfg := DefaultConfig()
	cfg.Epochs = 25
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedIndirect) != cfg.TargetIndirect {
		t.Fatalf("selected %d indirect features, want %d", len(res.SelectedIndirect), cfg.TargetIndirect)
	}
	// PPC must always be kept (direct feature).
	foundPPC := false
	for _, i := range res.Selected {
		if i == counters.IdxPPC {
			foundPPC = true
		}
	}
	if !foundPPC {
		t.Fatal("direct feature PPC was dropped")
	}
	// At least three of the paper's four informative indirect features
	// must survive — the signal is unambiguous by construction.
	informative := map[int]bool{
		counters.IdxIPC: true, counters.IdxMH: true,
		counters.IdxMHNL: true, counters.IdxL1CRM: true,
	}
	hits := 0
	for _, i := range res.SelectedIndirect {
		if informative[i] {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("only %d informative features selected: %v", hits, res.SelectedIndirect)
	}
	// Refinement must not destroy accuracy (paper: 0.48% drop).
	if res.SelectedAccuracy < res.FullAccuracy-0.10 {
		t.Fatalf("selected accuracy %.3f fell more than 10pp below full %.3f",
			res.SelectedAccuracy, res.FullAccuracy)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no elimination rounds recorded")
	}
}

func TestRFEValidation(t *testing.T) {
	ds := informativeDataset(20, 2)
	cfg := DefaultConfig()
	cfg.TargetIndirect = 0
	if _, err := Run(ds, cfg); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := Run(&datagen.Dataset{}, DefaultConfig()); err == nil {
		t.Fatal("empty dataset accepted")
	}
	cfg = DefaultConfig()
	cfg.Hidden = 0
	if _, err := Run(ds, cfg); err == nil {
		t.Fatal("zero hidden accepted")
	}
}

func TestRFEDropsNoDirectFeatures(t *testing.T) {
	ds := informativeDataset(100, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	res, err := Run(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		for _, d := range r.Dropped {
			if counters.Def(d).Category == counters.Power {
				t.Fatalf("power counter %q was eliminated", counters.Def(d).Name)
			}
			if d == counters.IdxPPC {
				t.Fatal("PPC eliminated")
			}
		}
	}
}
