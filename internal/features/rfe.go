// Package features implements Recursive Feature Elimination (RFE) with
// permutation importance, the technique the paper uses (Section IV-A) to
// refine the 47 performance counters down to the Table I set. Power
// counters are "direct features" and are never eliminated; RFE runs over
// the indirect (instruction and stall) counters only.
package features

import (
	"fmt"
	"math/rand"
	"sort"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/nn"
)

// Round records one elimination round.
type Round struct {
	// Remaining are the indirect feature indices still in play after the
	// round's elimination.
	Remaining []int
	// Dropped are the indices eliminated this round.
	Dropped []int
	// ValAccuracy is the validation accuracy of the model trained on the
	// features available at the start of the round.
	ValAccuracy float64
}

// Result summarizes an RFE run.
type Result struct {
	// Selected is the final feature set (direct power features plus the
	// surviving indirect features), in counter-index order.
	Selected []int
	// SelectedIndirect is the surviving indirect subset.
	SelectedIndirect []int
	// Rounds is the elimination trajectory.
	Rounds []Round
	// FullAccuracy is validation accuracy with all indirect features.
	FullAccuracy float64
	// SelectedAccuracy is validation accuracy with the final set.
	SelectedAccuracy float64
}

// Config controls the RFE run.
type Config struct {
	// TargetIndirect is how many indirect features to keep (the paper
	// keeps 4: IPC, MH, MH\L, L1CRM).
	TargetIndirect int
	// DropPerRound eliminates the k least important features each round
	// (with a final trim to hit TargetIndirect exactly).
	DropPerRound int
	// Direct are feature indices always kept (defaults to PPC).
	Direct []int
	// Hidden is the proxy model's hidden width; Epochs its training
	// length. The proxy is deliberately small: RFE ranks features, it
	// does not need the final model's accuracy.
	Hidden int
	Epochs int
	Seed   int64
}

// DefaultConfig mirrors the paper: keep PPC directly, select 4 indirect
// features.
func DefaultConfig() Config {
	return Config{
		TargetIndirect: 4,
		DropPerRound:   6,
		Direct:         []int{counters.IdxPPC},
		Hidden:         16,
		Epochs:         30,
		Seed:           1,
	}
}

// Run executes RFE over the dataset.
func Run(ds *datagen.Dataset, cfg Config) (*Result, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("features: empty dataset")
	}
	if cfg.TargetIndirect <= 0 {
		return nil, fmt.Errorf("features: TargetIndirect must be positive")
	}
	if cfg.DropPerRound <= 0 {
		cfg.DropPerRound = 1
	}
	if cfg.Hidden <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("features: Hidden and Epochs must be positive")
	}

	directSet := map[int]bool{}
	for _, d := range cfg.Direct {
		directSet[d] = true
	}
	// Indirect candidates: every instruction/stall counter not pinned.
	var remaining []int
	for i := 0; i < counters.Num; i++ {
		if directSet[i] {
			continue
		}
		if counters.Def(i).Category == counters.Power {
			continue // all power counters are direct by definition
		}
		remaining = append(remaining, i)
	}
	if len(remaining) < cfg.TargetIndirect {
		return nil, fmt.Errorf("features: only %d indirect candidates for target %d", len(remaining), cfg.TargetIndirect)
	}

	train, val := ds.Split(0.8, cfg.Seed)
	res := &Result{}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	for roundIdx := 0; ; roundIdx++ {
		feats := append(append([]int{}, cfg.Direct...), remaining...)
		sort.Ints(feats)
		acc, importance, err := trainAndRank(train, val, feats, remaining, cfg, rng)
		if err != nil {
			return nil, err
		}
		if roundIdx == 0 {
			res.FullAccuracy = acc
		}
		if len(remaining) == cfg.TargetIndirect {
			res.SelectedAccuracy = acc
			res.SelectedIndirect = append([]int{}, remaining...)
			res.Selected = feats
			res.Rounds = append(res.Rounds, Round{Remaining: append([]int{}, remaining...), ValAccuracy: acc})
			return res, nil
		}

		// Drop the least important indirect features.
		drop := cfg.DropPerRound
		if len(remaining)-drop < cfg.TargetIndirect {
			drop = len(remaining) - cfg.TargetIndirect
		}
		type imp struct {
			idx  int
			gain float64
		}
		ranked := make([]imp, len(remaining))
		for i, f := range remaining {
			ranked[i] = imp{idx: f, gain: importance[f]}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].gain != ranked[j].gain {
				return ranked[i].gain < ranked[j].gain
			}
			return ranked[i].idx < ranked[j].idx
		})
		dropped := make([]int, 0, drop)
		dropSet := map[int]bool{}
		for i := 0; i < drop; i++ {
			dropped = append(dropped, ranked[i].idx)
			dropSet[ranked[i].idx] = true
		}
		next := remaining[:0]
		for _, f := range remaining {
			if !dropSet[f] {
				next = append(next, f)
			}
		}
		remaining = next
		res.Rounds = append(res.Rounds, Round{
			Remaining:   append([]int{}, remaining...),
			Dropped:     dropped,
			ValAccuracy: acc,
		})
	}
}

// trainAndRank trains the proxy classifier on the given feature set and
// returns validation accuracy plus per-feature permutation importance
// (accuracy drop when that feature's column is shuffled).
func trainAndRank(train, val *datagen.Dataset, feats, rankFeats []int, cfg Config, rng *rand.Rand) (float64, map[int]float64, error) {
	trainRows, trainLabels := train.DecisionRows(feats)
	valRows, valLabels := val.DecisionRows(feats)

	scaler, err := counters.FitScaler(trainRows)
	if err != nil {
		return 0, nil, err
	}
	trainX := scaler.TransformAll(trainRows)
	valX := scaler.TransformAll(valRows)

	model, err := nn.NewMLP([]int{len(feats) + 1, cfg.Hidden, cfg.Hidden, train.Levels}, rand.New(rand.NewSource(cfg.Seed+7)))
	if err != nil {
		return 0, nil, err
	}
	_, err = nn.TrainClassifier(model, nn.ClassificationSet{X: trainX, Labels: trainLabels}, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 64,
		Optimizer: nn.NewAdam(0.003),
		Seed:      cfg.Seed + 13,
	})
	if err != nil {
		return 0, nil, err
	}
	baseAcc := nn.EvalClassifier(model, nn.ClassificationSet{X: valX, Labels: valLabels})

	// Permutation importance on the validation set.
	importance := make(map[int]float64, len(rankFeats))
	for col, f := range feats {
		inRank := false
		for _, rf := range rankFeats {
			if rf == f {
				inRank = true
				break
			}
		}
		if !inRank {
			continue
		}
		perm := rng.Perm(len(valX))
		shuffled := make([][]float64, len(valX))
		for i := range valX {
			row := append([]float64(nil), valX[i]...)
			row[col] = valX[perm[i]][col]
			shuffled[i] = row
		}
		permAcc := nn.EvalClassifier(model, nn.ClassificationSet{X: shuffled, Labels: valLabels})
		importance[f] = baseAcc - permAcc
	}
	return baseAcc, importance, nil
}
