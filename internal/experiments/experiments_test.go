package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ssmdvfs/internal/features"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/telemetry"
)

// The pipeline is expensive (tens of seconds), so tests share one build.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func testPipelineOpts() PipelineOptions {
	opts := QuickPipelineOptions()
	// Trim further for tests: fewer kernels, fewer feature levels.
	opts.TrainKernels = kernels.Training()[:6]
	return opts
}

func sharedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	if testing.Short() {
		t.Skip("pipeline build is slow")
	}
	pipeOnce.Do(func() {
		pipe, pipeErr = RunPipeline(testPipelineOpts())
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestPipelineArtifacts(t *testing.T) {
	p := sharedPipeline(t)
	if len(p.Dataset.Samples) == 0 {
		t.Fatal("empty dataset")
	}
	if p.Model == nil || p.Compressed == nil {
		t.Fatal("missing models")
	}
	// The decision model must do considerably better than the 1/6 chance
	// floor, and the compressed model must be dramatically cheaper.
	if p.Report.Accuracy < 0.40 {
		t.Fatalf("decision accuracy %.2f below sanity floor", p.Report.Accuracy)
	}
	if p.Compressed.EffectiveFLOPs() >= p.Model.FLOPs()/4 {
		t.Fatalf("compression too weak: %d vs %d FLOPs",
			p.Compressed.EffectiveFLOPs(), p.Model.FLOPs())
	}
}

func TestPipelineCaching(t *testing.T) {
	p := sharedPipeline(t)
	dir := t.TempDir()
	if err := p.Dataset.SaveFile(filepath.Join(dir, "dataset.json")); err != nil {
		t.Fatal(err)
	}
	if err := p.Model.SaveFile(filepath.Join(dir, "model.json")); err != nil {
		t.Fatal(err)
	}
	if err := p.Compressed.SaveFile(filepath.Join(dir, "compressed.json")); err != nil {
		t.Fatal(err)
	}
	opts := testPipelineOpts()
	opts.CacheDir = dir
	var logs []string
	opts.Logger = telemetry.NewLoggerFunc(func(format string, args ...any) { logs = append(logs, format) }, nil)
	p2, err := RunPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Dataset.Samples) != len(p.Dataset.Samples) {
		t.Fatal("cached dataset differs")
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "cached") {
		t.Fatalf("cache not used; logs: %s", joined)
	}
}

func TestFig4EndToEnd(t *testing.T) {
	p := sharedPipeline(t)
	evalSpecs := kernels.Evaluation()[:4]
	res, err := RunFig4(Fig4Options{
		Sim:        testPipelineOpts().Sim,
		Kernels:    evalSpecs,
		Scale:      testPipelineOpts().Scale,
		Presets:    []float64{0.10, 0.20},
		Model:      p.Model,
		Compressed: p.Compressed,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(evalSpecs) * 2 * len(AllMechanisms())
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}

	// Baseline rows are exactly 1.0 by construction.
	for _, r := range res.Rows {
		if r.Mechanism == MechBaseline && (r.NormEDP != 1.0 || r.NormLatency != 1.0) {
			t.Fatalf("baseline row not normalized: %+v", r)
		}
		if r.NormEDP <= 0 || r.NormLatency <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}

	// Shape checks mirroring the paper's findings.
	get := func(mech Mechanism, preset float64) Fig4Summary {
		for _, s := range res.Summaries {
			if s.Mechanism == mech && s.Preset == preset {
				return s
			}
		}
		t.Fatalf("summary %s@%.2f missing", mech, preset)
		return Fig4Summary{}
	}
	for _, preset := range []float64{0.10, 0.20} {
		ssm := get(MechSSMDVFS, preset)
		if ssm.GMeanEDP >= 1.0 {
			t.Errorf("SSMDVFS EDP at %.0f%% = %.3f, want < 1 (beats baseline)", preset*100, ssm.GMeanEDP)
		}
		if ssm.GMeanEDP >= get(MechFLEMMA, preset).GMeanEDP {
			t.Errorf("SSMDVFS (%.3f) does not beat F-LEMMA (%.3f) at %.0f%%",
				ssm.GMeanEDP, get(MechFLEMMA, preset).GMeanEDP, preset*100)
		}
		// SSMDVFS keeps losses under control (small tolerance: the paper
		// itself shows occasional threshold crossings pulled back by the
		// Calibrator).
		if ssm.MaxLoss > preset+0.10 {
			t.Errorf("SSMDVFS max loss %.2f far exceeds preset %.2f", ssm.MaxLoss, preset)
		}
	}

	// Rendering shouldn't error and must mention every mechanism.
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMechanisms() {
		if !strings.Contains(buf.String(), string(m)) {
			t.Fatalf("table missing mechanism %s", m)
		}
	}

	if _, err := res.ComputeHeadline(MechSSMDVFSComp); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Validation(t *testing.T) {
	if _, err := RunFig4(Fig4Options{}); err == nil {
		t.Fatal("missing model accepted")
	}
	p := sharedPipeline(t)
	if _, err := RunFig4(Fig4Options{Model: p.Model}); err == nil {
		t.Fatal("missing kernels accepted")
	}
}

func TestTableIOnPipeline(t *testing.T) {
	p := sharedPipeline(t)
	cfg := features.DefaultConfig()
	cfg.Epochs = 15
	res, err := RunTableI(p.Dataset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedNames) != 5 {
		t.Fatalf("selected %d counters, want 5 (PPC + 4 indirect)", len(res.SelectedNames))
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ppc_total_w") {
		t.Fatal("table missing the direct power counter")
	}
}

func TestTableIIOnPipeline(t *testing.T) {
	p := sharedPipeline(t)
	res := RunTableII(p)
	if res.CompressionPct < 50 {
		t.Fatalf("FLOPs compression %.1f%%, want > 50%% (paper: 94.7%%)", res.CompressionPct)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FLOPs") {
		t.Fatal("table missing FLOPs row")
	}
}

func TestFig3Reduced(t *testing.T) {
	p := sharedPipeline(t)
	opts := DefaultFig3Options()
	opts.TrainOpts = testPipelineOpts().TrainOpts
	opts.TrainOpts.Epochs = 12
	opts.Archs = opts.Archs[:3]
	opts.X1s = []float64{0.5}
	opts.X2s = []float64{0.9}
	opts.PruneOpts.FineTuneEpochs = 5
	res, err := RunFig3(p.Dataset, p.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layerwise) != 3 || len(res.Pruning) != 1 {
		t.Fatalf("series sizes %d/%d", len(res.Layerwise), len(res.Pruning))
	}
	for _, pt := range append(res.Layerwise, res.Pruning...) {
		if pt.FLOPs <= 0 || pt.Accuracy < 0 || pt.Accuracy > 1 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestASICOnPipeline(t *testing.T) {
	p := sharedPipeline(t)
	rep, err := RunASIC(p.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	// The module must comfortably fit a 10 µs epoch and stay tiny, as in
	// Section V-D.
	if rep.EpochFraction > 0.10 {
		t.Fatalf("inference takes %.1f%% of an epoch", rep.EpochFraction*100)
	}
	if rep.AreaMM2 > 0.1 {
		t.Fatalf("area %.4f mm² implausibly large", rep.AreaMM2)
	}
	if err := WriteASIC(os.Stderr, rep); err != nil {
		t.Fatal(err)
	}
}
