package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ssmdvfs/internal/kernels"
)

func TestPresetSweepMonotoneTendency(t *testing.T) {
	p := sharedPipeline(t)
	opts := testPipelineOpts()
	points, err := RunPresetSweep(PresetSweepOptions{
		Sim:     opts.Sim,
		Kernels: kernels.Evaluation()[:3],
		Scale:   opts.Scale,
		Presets: []float64{0.02, 0.10, 0.30},
		Model:   p.Model,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// A looser budget should never *increase* EDP much: the controller
	// can always fall back to faster levels. Allow small noise.
	if points[2].GMeanEDP > points[0].GMeanEDP+0.05 {
		t.Fatalf("EDP at 30%% preset (%.3f) much worse than at 2%% (%.3f)",
			points[2].GMeanEDP, points[0].GMeanEDP)
	}
	// Latency grows (or stays flat) with the budget.
	if points[2].MeanLatency+0.02 < points[0].MeanLatency {
		t.Fatalf("latency at 30%% (%.3f) below latency at 2%% (%.3f)",
			points[2].MeanLatency, points[0].MeanLatency)
	}
	var buf bytes.Buffer
	if err := WritePresetSweep(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gmean_edp") {
		t.Fatal("table missing header")
	}
}

func TestPresetSweepValidation(t *testing.T) {
	if _, err := RunPresetSweep(PresetSweepOptions{}); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestHeadroomOraclesDominate(t *testing.T) {
	p := sharedPipeline(t)
	opts := testPipelineOpts()
	rows, err := RunHeadroom(PresetSweepOptions{
		Sim:     opts.Sim,
		Kernels: kernels.Evaluation()[:2],
		Scale:   opts.Scale,
		Model:   p.Model,
	}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SSMDVFSEDP <= 0 || r.StaticBestEDP <= 0 || r.GreedyEDP <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The static-best oracle optimizes EDP under the same loss budget
		// with perfect knowledge; online SSMDVFS should not beat it by a
		// wide margin (small tolerance: SSMDVFS may exceed the loss budget
		// slightly where the oracle may not).
		if r.SSMDVFSEDP < r.StaticBestEDP-0.08 {
			t.Fatalf("%s: SSMDVFS (%.3f) implausibly beats the static oracle (%.3f)",
				r.Kernel, r.SSMDVFSEDP, r.StaticBestEDP)
		}
	}
	var buf bytes.Buffer
	if err := WriteHeadroom(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "greedy_oracle_edp") {
		t.Fatal("table missing header")
	}
}

func TestFig4SaveLoadRoundTrip(t *testing.T) {
	res := &Fig4Result{
		Rows:      []Fig4Row{{Kernel: "k", Mechanism: MechSSMDVFS, Preset: 0.1, NormEDP: 0.85, NormLatency: 1.02}},
		Summaries: []Fig4Summary{{Mechanism: MechSSMDVFS, Preset: 0.1, GMeanEDP: 0.85, Kernels: 1}},
	}
	path := t.TempDir() + "/fig4.json"
	if err := res.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFig4File(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].NormEDP != 0.85 || got.Summaries[0].Mechanism != MechSSMDVFS {
		t.Fatalf("round trip corrupted: %+v", got)
	}
	if _, err := LoadFig4File(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
