package experiments

import (
	"math/rand"
	"testing"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/provenance"
)

// tinyModel trains the cheapest model that passes validation, enough to
// exercise the provenance plumbing without the full pipeline.
func tinyModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	tbl := clockdomain.TitanX()
	ds := &datagen.Dataset{CounterNames: counters.Names(), Levels: tbl.Len()}
	fDef := tbl.Point(tbl.Default()).FrequencyHz
	for i := 0; i < 120; i++ {
		m := rng.Float64()
		feats := make([]float64, counters.Num)
		feats[counters.IdxIPC] = 2.0 * (1 - m)
		feats[counters.IdxPPC] = 3 + 4*(1-m)
		feats[counters.IdxMH] = 60000 * m
		feats[counters.IdxMHNL] = 5000 * m
		feats[counters.IdxL1CRM] = 2000 * m
		for level := 0; level < tbl.Len(); level++ {
			f := tbl.Point(level).FrequencyHz
			loss := (1 - m) * (fDef/f - 1)
			ds.Samples = append(ds.Samples, datagen.Sample{
				Kernel: "synthetic", Level: level, Features: feats,
				PerfLoss:     loss,
				ScalingInstr: 20000 * (1 - loss/2),
			})
		}
	}
	opts := core.DefaultTrainOptions()
	opts.Epochs = 5
	model, _, err := core.Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestAttachProvenance(t *testing.T) {
	model := tinyModel(t)
	cfg := gpusim.Config{OPs: clockdomain.TitanX(), Clusters: 1}
	ctrl, err := NewSSMDVFS(model, 0.10, cfg, true)
	if err != nil {
		t.Fatal(err)
	}

	rec := provenance.NewRecorder(16)
	if !AttachProvenance(ctrl, rec, nil) {
		t.Fatal("SSMDVFS controller must accept provenance")
	}
	if AttachProvenance(&baselines.Static{Level: 2}, rec, nil) {
		t.Fatal("static baseline must not claim provenance support")
	}

	for epoch := 0; epoch < 3; epoch++ {
		ctrl.Decide(gpusim.EpochStats{
			Cluster: 0, Epoch: epoch, Instructions: 20000, Cycles: 11000,
			OP: cfg.OPs.Point(5), Level: 5, WarpsActive: 8,
			DynPowerW: 4, StaticPowerW: 2,
		})
	}
	if got := len(rec.Snapshot(nil)); got != 3 {
		t.Fatalf("recorded %d decisions, want 3", got)
	}
}

func TestProvenanceHeader(t *testing.T) {
	model := tinyModel(t)
	hdr := ProvenanceHeader(model)
	names, mean, std := model.TrainingStats()
	if len(hdr.Features) == 0 || len(hdr.Features) != len(names) {
		t.Fatalf("header features = %v", hdr.Features)
	}
	if len(hdr.TrainMean) != len(mean) || len(hdr.TrainStd) != len(std) {
		t.Fatal("header training stats misaligned")
	}
	if hdr.Levels != model.Levels || hdr.ModelParams != model.Params() {
		t.Fatalf("header model attribution = %d levels %d params", hdr.Levels, hdr.ModelParams)
	}
	if hdr.Build["go"] == "" {
		t.Fatal("header missing build info")
	}
}
