package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"ssmdvfs/internal/telemetry"
)

// TestPipelineTelemetry runs the pipeline from warm caches with a
// registry and tracer attached: every phase must leave a span, the cache
// hits must be counted, and the dump must round-trip through the JSON
// snapshot the dvfsstat tool consumes.
func TestPipelineTelemetry(t *testing.T) {
	p := sharedPipeline(t)
	dir := t.TempDir()
	if err := p.Dataset.SaveFile(filepath.Join(dir, "dataset.json")); err != nil {
		t.Fatal(err)
	}
	if err := p.Model.SaveFile(filepath.Join(dir, "model.json")); err != nil {
		t.Fatal(err)
	}
	if err := p.Compressed.SaveFile(filepath.Join(dir, "compressed.json")); err != nil {
		t.Fatal(err)
	}

	var spansBuf bytes.Buffer
	opts := testPipelineOpts()
	opts.CacheDir = dir
	opts.Telemetry = telemetry.NewRegistry()
	opts.Tracer = telemetry.NewTracer(&spansBuf)
	opts.Logger = telemetry.NewLogger(nil, opts.Telemetry) // quiet mode
	if _, err := RunPipeline(opts); err != nil {
		t.Fatal(err)
	}
	if err := opts.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	spans, err := telemetry.ReadSpans(&spansBuf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	for _, phase := range []string{"datagen", "train", "compress"} {
		sp, ok := byName[phase]
		if !ok {
			t.Fatalf("no span for phase %q (got %v)", phase, byName)
		}
		if sp.Cat != "pipeline" || sp.DurUs < 0 {
			t.Fatalf("bad span %+v", sp)
		}
		if sp.Attrs["cached"] != "true" {
			t.Fatalf("phase %q should have hit the cache: %+v", phase, sp)
		}
	}

	snap := opts.Telemetry.Snapshot()
	for _, artifact := range []string{"dataset", "model", "compressed"} {
		id := telemetry.MetricID("pipeline_cache_hits_total", "artifact", artifact)
		if snap.Counters[id] != 1 {
			t.Fatalf("%s = %d, want 1", id, snap.Counters[id])
		}
	}
	for _, phase := range []string{"datagen", "train", "compress"} {
		id := telemetry.MetricID("pipeline_phase_ms", "phase", phase)
		if snap.Histograms[id].Count != 1 {
			t.Fatalf("phase histogram %s missing", id)
		}
	}
	// The quiet logger still counted its progress lines.
	if snap.Counters["log_lines_total"] == 0 {
		t.Fatal("quiet logger recorded no lines")
	}
	// The whole dump must survive the JSON round trip dvfsstat relies on.
	var dump bytes.Buffer
	if err := opts.Telemetry.WriteJSON(&dump); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadSnapshot(&dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != len(snap.Counters) || len(back.Histograms) != len(snap.Histograms) {
		t.Fatal("dump round trip lost metrics")
	}
}
