package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"ssmdvfs/internal/asic"
	"ssmdvfs/internal/compress"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/features"
	"ssmdvfs/internal/runner"
	"ssmdvfs/internal/telemetry"
)

// TableIResult is the feature-selection experiment (Table I): the RFE
// outcome over the 47 counters and its agreement with the paper's set.
type TableIResult struct {
	RFE *features.Result
	// SelectedNames are the final counters by name.
	SelectedNames []string
	// PaperAgreement is how many of the paper's five counters RFE also
	// selected.
	PaperAgreement int
	// AccuracyDropPct is the accuracy cost of the refinement (paper:
	// 0.48%).
	AccuracyDropPct float64
}

// RunTableI performs RFE on the dataset.
func RunTableI(ds *datagen.Dataset, cfg features.Config) (*TableIResult, error) {
	rfe, err := features.Run(ds, cfg)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{RFE: rfe}
	paper := map[int]bool{}
	for _, i := range counters.SelectedFive() {
		paper[i] = true
	}
	for _, i := range rfe.Selected {
		res.SelectedNames = append(res.SelectedNames, counters.Def(i).Name)
		if paper[i] {
			res.PaperAgreement++
		}
	}
	res.AccuracyDropPct = (rfe.FullAccuracy - rfe.SelectedAccuracy) * 100
	return res, nil
}

// WriteTable renders the Table I result.
func (t *TableIResult) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric category\tselected counter")
	for _, i := range t.RFE.Selected {
		d := counters.Def(i)
		fmt.Fprintf(tw, "%s\t%s\n", d.Category, d.Name)
	}
	fmt.Fprintf(tw, "\nfull-set accuracy\t%.2f%%\n", t.RFE.FullAccuracy*100)
	fmt.Fprintf(tw, "selected accuracy\t%.2f%%\n", t.RFE.SelectedAccuracy*100)
	fmt.Fprintf(tw, "accuracy drop\t%.2f%%\n", t.AccuracyDropPct)
	fmt.Fprintf(tw, "agreement with paper's five\t%d/%d\n", t.PaperAgreement, len(counters.SelectedFive()))
	return tw.Flush()
}

// TableIIResult compares the model before and after compression, the
// quantities of the paper's Table II.
type TableIIResult struct {
	Before core.Report
	After  core.Report
	// BeforeSizes / AfterSizes describe both heads' layer shapes.
	BeforeDecision   []int
	BeforeCalibrator []int
	AfterDecision    []int
	AfterCalibrator  []int
	// CompressionPct is the FLOPs reduction (paper: 94.74%).
	CompressionPct float64
}

// RunTableII builds the before/after comparison from the pipeline
// artifacts.
func RunTableII(p *Pipeline) *TableIIResult {
	res := &TableIIResult{
		Before:           p.Report,
		After:            p.CompressedReport,
		BeforeDecision:   p.Model.Decision.Sizes(),
		BeforeCalibrator: p.Model.Calibrator.Sizes(),
		AfterDecision:    p.Compressed.Decision.Sizes(),
		AfterCalibrator:  p.Compressed.Calibrator.Sizes(),
	}
	if p.Report.FLOPs > 0 {
		res.CompressionPct = (1 - float64(p.Compressed.EffectiveFLOPs())/float64(p.Report.FLOPs)) * 100
	}
	return res
}

// WriteTable renders the Table II comparison.
func (t *TableIIResult) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model information\tbefore compression\tafter compression")
	fmt.Fprintf(tw, "decision layers\t%v\t%v\n", t.BeforeDecision, t.AfterDecision)
	fmt.Fprintf(tw, "calibrator layers\t%v\t%v\n", t.BeforeCalibrator, t.AfterCalibrator)
	fmt.Fprintf(tw, "FLOPs\t%d\t%d\n", t.Before.FLOPs, t.After.FLOPs)
	fmt.Fprintf(tw, "accuracy\t%.2f%%\t%.2f%%\n", t.Before.Accuracy*100, t.After.Accuracy*100)
	fmt.Fprintf(tw, "MAPE\t%.2f%%\t%.2f%%\n", t.Before.MAPE, t.After.MAPE)
	fmt.Fprintf(tw, "FLOPs compression\t\t%.2f%%\n", t.CompressionPct)
	return tw.Flush()
}

// Fig3Result carries both compression curves of Fig. 3.
type Fig3Result struct {
	Layerwise []compress.Point
	Pruning   []compress.Point
}

// Fig3Options configures the sweeps.
type Fig3Options struct {
	// Archs is the layer-wise grid (defaults to compress.StandardGrid).
	Archs []core.Architecture
	// X1s / X2s form the pruning grid.
	X1s, X2s  []float64
	TrainOpts core.TrainOptions
	PruneOpts compress.PruneOptions
	// Workers bounds the parallel runner sharding the independent grid
	// points (<= 0 = GOMAXPROCS); results are byte-identical at any
	// worker count.
	Workers int
	// Telemetry / Tracer, when non-nil, receive the runner's shard
	// metrics and per-worker spans.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// DefaultFig3Options returns the paper-style sweep grids.
func DefaultFig3Options() Fig3Options {
	return Fig3Options{
		Archs:     compress.StandardGrid(),
		X1s:       []float64{0.2, 0.4, 0.6, 0.8},
		X2s:       []float64{0.5, 0.7, 0.9},
		TrainOpts: core.DefaultTrainOptions(),
		PruneOpts: compress.DefaultPruneOptions(),
	}
}

// RunFig3 executes both sweeps: layer-wise over architectures, pruning
// over (x1, x2) starting from the given trained model. Every grid point
// is an independent training run, sharded across the worker pool; the
// curves come back in grid order, identical at any worker count.
func RunFig3(ds *datagen.Dataset, base *core.Model, opts Fig3Options) (*Fig3Result, error) {
	if len(opts.Archs) == 0 {
		return nil, fmt.Errorf("compress: empty architecture grid")
	}
	if len(opts.X1s) == 0 || len(opts.X2s) == 0 {
		return nil, fmt.Errorf("compress: empty pruning grid")
	}
	runnerOpts := func(name string) runner.Options {
		return runner.Options{
			Name:      name,
			Workers:   opts.Workers,
			Telemetry: opts.Telemetry,
			Tracer:    opts.Tracer,
		}
	}
	ctx := context.Background()
	lw, err := runner.Map(ctx, len(opts.Archs), runnerOpts("fig3:layerwise"),
		func(_ context.Context, s runner.Shard) (compress.Point, error) {
			return compress.LayerwisePoint(ds, opts.Archs[s.Index], opts.TrainOpts)
		})
	if err != nil {
		return nil, err
	}
	// Pruning grid flattened x1-major, matching the serial nesting.
	n2 := len(opts.X2s)
	pr, err := runner.Map(ctx, len(opts.X1s)*n2, runnerOpts("fig3:pruning"),
		func(_ context.Context, s runner.Shard) (compress.Point, error) {
			return compress.PrunePoint(base, ds, opts.X1s[s.Index/n2], opts.X2s[s.Index%n2], opts.PruneOpts)
		})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Layerwise: lw, Pruning: pr}, nil
}

// WriteTable renders both Fig. 3 series.
func (f *Fig3Result) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "series\tconfig\tflops\taccuracy\tmape")
	for _, p := range f.Layerwise {
		fmt.Fprintf(tw, "layerwise\t%s\t%d\t%.2f%%\t%.2f%%\n", p.Label, p.FLOPs, p.Accuracy*100, p.MAPE)
	}
	for _, p := range f.Pruning {
		fmt.Fprintf(tw, "pruning\t%s\t%d\t%.2f%%\t%.2f%%\n", p.Label, p.FLOPs, p.Accuracy*100, p.MAPE)
	}
	return tw.Flush()
}

// RunASIC estimates the Section V-D hardware implementation for the
// compressed model.
func RunASIC(m *core.Model) (asic.Report, error) {
	return asic.Estimate(m, asic.DefaultConfig())
}

// WriteASIC renders the hardware estimate.
func WriteASIC(w io.Writer, rep asic.Report) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cycles per inference\t%d\n", rep.CyclesPerInference)
	fmt.Fprintf(tw, "latency\t%.3f us\n", rep.LatencyUs)
	fmt.Fprintf(tw, "fraction of 10us epoch\t%.2f%%\n", rep.EpochFraction*100)
	fmt.Fprintf(tw, "area @28nm\t%.4f mm^2\n", rep.AreaMM2)
	fmt.Fprintf(tw, "energy per inference\t%.1f pJ\n", rep.EnergyPJ)
	fmt.Fprintf(tw, "power during inference\t%.4f W\n", rep.PowerW)
	fmt.Fprintf(tw, "weight storage\t%d bytes\n", rep.WeightBytes)
	return tw.Flush()
}
