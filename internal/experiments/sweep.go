package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/oracle"
	"ssmdvfs/internal/runner"
	"ssmdvfs/internal/stats"
	"ssmdvfs/internal/telemetry"
)

// PresetSweepOptions configures the preset-sensitivity extension
// experiment: how EDP and latency respond as the performance-loss budget
// grows (the paper evaluates only 10% and 20%).
type PresetSweepOptions struct {
	Sim      gpusim.Config
	Kernels  []kernels.Spec
	Scale    float64
	Presets  []float64
	Model    *core.Model
	MaxRunPs int64
	// Workers bounds the parallel runner sharding the independent
	// (preset, kernel) simulations (<= 0 = GOMAXPROCS); results are
	// byte-identical at any worker count.
	Workers int
	// Telemetry / Tracer, when non-nil, receive the runner's shard
	// metrics and per-worker spans.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// runnerOptions builds the shared runner config for one sweep stage.
func (opts *PresetSweepOptions) runnerOptions(name string) runner.Options {
	return runner.Options{
		Name:      name,
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
		Tracer:    opts.Tracer,
	}
}

// PresetSweepPoint aggregates one preset across kernels.
type PresetSweepPoint struct {
	Preset      float64
	GMeanEDP    float64
	MeanLatency float64
	MaxLoss     float64
	Violations  int
}

// RunPresetSweep runs SSMDVFS at each preset over the kernel set. The
// per-kernel baselines and the (preset × kernel) controller runs are
// independent simulations, sharded across the worker pool; aggregation
// happens in (preset, kernel) order so the points match a serial run
// exactly.
func RunPresetSweep(opts PresetSweepOptions) ([]PresetSweepPoint, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("experiments: preset sweep requires a model")
	}
	if len(opts.Kernels) == 0 || len(opts.Presets) == 0 {
		return nil, fmt.Errorf("experiments: preset sweep requires kernels and presets")
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}

	built := make([]gpusim.Kernel, len(opts.Kernels))
	for i, spec := range opts.Kernels {
		built[i] = spec.Build(opts.Scale)
	}
	ctx := context.Background()
	bases, err := runner.Map(ctx, len(built), opts.runnerOptions("sweep:baseline"),
		func(_ context.Context, s runner.Shard) (gpusim.Result, error) {
			res, err := runOnce(opts.Sim, built[s.Index], nil, opts.MaxRunPs)
			if err != nil {
				return gpusim.Result{}, fmt.Errorf("experiments: baseline %s: %w", opts.Kernels[s.Index].Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	// One shard per (preset, kernel) cell, flattened preset-major so the
	// merged order matches the serial nesting.
	type cell struct{ edp, lat float64 }
	nk := len(built)
	cells, err := runner.Map(ctx, len(opts.Presets)*nk, opts.runnerOptions("sweep"),
		func(_ context.Context, s runner.Shard) (cell, error) {
			preset := opts.Presets[s.Index/nk]
			i := s.Index % nk
			ctrl, err := NewSSMDVFS(opts.Model, preset, opts.Sim, true)
			if err != nil {
				return cell{}, err
			}
			res, err := runOnce(opts.Sim, built[i], ctrl, opts.MaxRunPs)
			if err != nil {
				return cell{}, fmt.Errorf("experiments: %s at preset %.2f: %w", opts.Kernels[i].Name, preset, err)
			}
			return cell{
				edp: res.EDP() / bases[i].EDP(),
				lat: float64(res.ExecTimePs) / float64(bases[i].ExecTimePs),
			}, nil
		})
	if err != nil {
		return nil, err
	}

	var points []PresetSweepPoint
	for pi, preset := range opts.Presets {
		var edps, lats []float64
		maxLoss := 0.0
		violations := 0
		for i := 0; i < nk; i++ {
			c := cells[pi*nk+i]
			edps = append(edps, c.edp)
			lats = append(lats, c.lat)
			loss := c.lat - 1
			if loss > maxLoss {
				maxLoss = loss
			}
			if loss > preset+1e-9 {
				violations++
			}
		}
		g, err := stats.GeoMean(edps)
		if err != nil {
			return nil, err
		}
		points = append(points, PresetSweepPoint{
			Preset:      preset,
			GMeanEDP:    g,
			MeanLatency: stats.Mean(lats),
			MaxLoss:     maxLoss,
			Violations:  violations,
		})
	}
	return points, nil
}

// WritePresetSweep renders the sweep as a table.
func WritePresetSweep(w io.Writer, points []PresetSweepPoint) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "preset\tgmean_edp\tmean_latency\tmax_loss\tviolations")
	for _, p := range points {
		fmt.Fprintf(tw, "%.0f%%\t%.3f\t%.3f\t%.2f%%\t%d\n",
			p.Preset*100, p.GMeanEDP, p.MeanLatency, p.MaxLoss*100, p.Violations)
	}
	return tw.Flush()
}

// HeadroomRow compares SSMDVFS against the clairvoyant oracle policies on
// one kernel.
type HeadroomRow struct {
	Kernel string
	// All EDPs normalized to the default-OP baseline.
	SSMDVFSEDP    float64
	StaticBestEDP float64
	GreedyEDP     float64
	StaticLevel   int
}

// RunHeadroom measures how much EDP the clairvoyant policies leave on the
// table relative to SSMDVFS at the given preset. Each kernel's row —
// baseline, SSMDVFS, and both oracle probes — is one shard of the
// parallel run; rows come back in kernel order.
func RunHeadroom(opts PresetSweepOptions, preset float64) ([]HeadroomRow, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("experiments: headroom requires a model")
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}
	return runner.Map(context.Background(), len(opts.Kernels), opts.runnerOptions("headroom"),
		func(_ context.Context, s runner.Shard) (HeadroomRow, error) {
			spec := opts.Kernels[s.Index]
			k := spec.Build(opts.Scale)
			base, err := runOnce(opts.Sim, k, nil, opts.MaxRunPs)
			if err != nil {
				return HeadroomRow{}, err
			}

			ctrl, err := NewSSMDVFS(opts.Model, preset, opts.Sim, true)
			if err != nil {
				return HeadroomRow{}, err
			}
			ssm, err := runOnce(opts.Sim, k, ctrl, opts.MaxRunPs)
			if err != nil {
				return HeadroomRow{}, err
			}

			staticRes, bestLvl, err := oracle.StaticBest(opts.Sim, k, preset, oracle.EDPObjective, opts.MaxRunPs)
			if err != nil {
				return HeadroomRow{}, err
			}
			greedy, err := oracle.Greedy(opts.Sim, k, oracle.GreedyOptions{
				Preset: preset, MaxRunPs: opts.MaxRunPs,
				// A bounded horizon keeps the probe cost manageable; the
				// greedy oracle remains an upper-bound estimate.
				HorizonPs: 5 * opts.Sim.EpochPs,
			})
			if err != nil {
				return HeadroomRow{}, err
			}

			return HeadroomRow{
				Kernel:        spec.Name,
				SSMDVFSEDP:    ssm.EDP() / base.EDP(),
				StaticBestEDP: staticRes[bestLvl].EDP() / base.EDP(),
				GreedyEDP:     greedy.Result.EDP() / base.EDP(),
				StaticLevel:   bestLvl,
			}, nil
		})
}

// WriteHeadroom renders the oracle comparison.
func WriteHeadroom(w io.Writer, rows []HeadroomRow) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tssmdvfs_edp\tstatic_best_edp\tgreedy_oracle_edp\tstatic_level")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\n",
			r.Kernel, r.SSMDVFSEDP, r.StaticBestEDP, r.GreedyEDP, r.StaticLevel)
	}
	return tw.Flush()
}
