package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/oracle"
	"ssmdvfs/internal/stats"
)

// PresetSweepOptions configures the preset-sensitivity extension
// experiment: how EDP and latency respond as the performance-loss budget
// grows (the paper evaluates only 10% and 20%).
type PresetSweepOptions struct {
	Sim      gpusim.Config
	Kernels  []kernels.Spec
	Scale    float64
	Presets  []float64
	Model    *core.Model
	MaxRunPs int64
}

// PresetSweepPoint aggregates one preset across kernels.
type PresetSweepPoint struct {
	Preset      float64
	GMeanEDP    float64
	MeanLatency float64
	MaxLoss     float64
	Violations  int
}

// RunPresetSweep runs SSMDVFS at each preset over the kernel set.
func RunPresetSweep(opts PresetSweepOptions) ([]PresetSweepPoint, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("experiments: preset sweep requires a model")
	}
	if len(opts.Kernels) == 0 || len(opts.Presets) == 0 {
		return nil, fmt.Errorf("experiments: preset sweep requires kernels and presets")
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}

	type baseRun struct {
		res gpusim.Result
	}
	bases := make([]baseRun, len(opts.Kernels))
	built := make([]gpusim.Kernel, len(opts.Kernels))
	for i, spec := range opts.Kernels {
		built[i] = spec.Build(opts.Scale)
		res, err := runOnce(opts.Sim, built[i], nil, opts.MaxRunPs)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", spec.Name, err)
		}
		bases[i] = baseRun{res: res}
	}

	var points []PresetSweepPoint
	for _, preset := range opts.Presets {
		var edps, lats []float64
		maxLoss := 0.0
		violations := 0
		for i := range built {
			ctrl, err := core.NewController(opts.Model, preset, opts.Sim.Clusters, true)
			if err != nil {
				return nil, err
			}
			res, err := runOnce(opts.Sim, built[i], ctrl, opts.MaxRunPs)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at preset %.2f: %w", opts.Kernels[i].Name, preset, err)
			}
			edps = append(edps, res.EDP()/bases[i].res.EDP())
			lat := float64(res.ExecTimePs) / float64(bases[i].res.ExecTimePs)
			lats = append(lats, lat)
			loss := lat - 1
			if loss > maxLoss {
				maxLoss = loss
			}
			if loss > preset+1e-9 {
				violations++
			}
		}
		g, err := stats.GeoMean(edps)
		if err != nil {
			return nil, err
		}
		points = append(points, PresetSweepPoint{
			Preset:      preset,
			GMeanEDP:    g,
			MeanLatency: stats.Mean(lats),
			MaxLoss:     maxLoss,
			Violations:  violations,
		})
	}
	return points, nil
}

// WritePresetSweep renders the sweep as a table.
func WritePresetSweep(w io.Writer, points []PresetSweepPoint) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "preset\tgmean_edp\tmean_latency\tmax_loss\tviolations")
	for _, p := range points {
		fmt.Fprintf(tw, "%.0f%%\t%.3f\t%.3f\t%.2f%%\t%d\n",
			p.Preset*100, p.GMeanEDP, p.MeanLatency, p.MaxLoss*100, p.Violations)
	}
	return tw.Flush()
}

// HeadroomRow compares SSMDVFS against the clairvoyant oracle policies on
// one kernel.
type HeadroomRow struct {
	Kernel string
	// All EDPs normalized to the default-OP baseline.
	SSMDVFSEDP    float64
	StaticBestEDP float64
	GreedyEDP     float64
	StaticLevel   int
}

// RunHeadroom measures how much EDP the clairvoyant policies leave on the
// table relative to SSMDVFS at the given preset.
func RunHeadroom(opts PresetSweepOptions, preset float64) ([]HeadroomRow, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("experiments: headroom requires a model")
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}
	var rows []HeadroomRow
	for _, spec := range opts.Kernels {
		k := spec.Build(opts.Scale)
		base, err := runOnce(opts.Sim, k, nil, opts.MaxRunPs)
		if err != nil {
			return nil, err
		}

		ctrl, err := core.NewController(opts.Model, preset, opts.Sim.Clusters, true)
		if err != nil {
			return nil, err
		}
		ssm, err := runOnce(opts.Sim, k, ctrl, opts.MaxRunPs)
		if err != nil {
			return nil, err
		}

		staticRes, bestLvl, err := oracle.StaticBest(opts.Sim, k, preset, oracle.EDPObjective, opts.MaxRunPs)
		if err != nil {
			return nil, err
		}
		greedy, err := oracle.Greedy(opts.Sim, k, oracle.GreedyOptions{
			Preset: preset, MaxRunPs: opts.MaxRunPs,
			// A bounded horizon keeps the probe cost manageable; the
			// greedy oracle remains an upper-bound estimate.
			HorizonPs: 5 * opts.Sim.EpochPs,
		})
		if err != nil {
			return nil, err
		}

		rows = append(rows, HeadroomRow{
			Kernel:        spec.Name,
			SSMDVFSEDP:    ssm.EDP() / base.EDP(),
			StaticBestEDP: staticRes[bestLvl].EDP() / base.EDP(),
			GreedyEDP:     greedy.Result.EDP() / base.EDP(),
			StaticLevel:   bestLvl,
		})
	}
	return rows, nil
}

// WriteHeadroom renders the oracle comparison.
func WriteHeadroom(w io.Writer, rows []HeadroomRow) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tssmdvfs_edp\tstatic_best_edp\tgreedy_oracle_edp\tstatic_level")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\n",
			r.Kernel, r.SSMDVFSEDP, r.StaticBestEDP, r.GreedyEDP, r.StaticLevel)
	}
	return tw.Flush()
}
