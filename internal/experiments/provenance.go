package experiments

import (
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/provenance"
)

// provenanceSink is the optional capability a controller implements to
// accept a decision flight recorder and quality monitor.
type provenanceSink interface {
	SetProvenance(*provenance.Recorder, *provenance.Monitor)
}

// AttachProvenance installs rec and/or mon on ctrl if it records decision
// provenance (core.Controller does; the analytical baselines do not) and
// reports whether the attachment took. Call it before the controller's
// first decision.
func AttachProvenance(ctrl gpusim.Controller, rec *provenance.Recorder, mon *provenance.Monitor) bool {
	s, ok := ctrl.(provenanceSink)
	if !ok {
		return false
	}
	s.SetProvenance(rec, mon)
	return true
}

// ProvenanceHeader builds the dump header attributing a recorder's
// contents to this binary and model — the same shape the daemon's
// /debug/decisions endpoint emits, so cmd/dvfsstat's -decisions view
// treats simulator and serving captures alike.
func ProvenanceHeader(model *core.Model) provenance.Header {
	names, mean, std := model.TrainingStats()
	return provenance.Header{
		Build:       buildinfo.Info(),
		Features:    names,
		TrainMean:   mean,
		TrainStd:    std,
		Levels:      model.Levels,
		ModelParams: model.Params(),
	}
}
