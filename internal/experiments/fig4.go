package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/runner"
	"ssmdvfs/internal/stats"
	"ssmdvfs/internal/telemetry"
)

// Mechanism names the DVFS policies compared in Fig. 4.
type Mechanism string

const (
	MechBaseline     Mechanism = "baseline"
	MechPCSTALL      Mechanism = "pcstall"
	MechFLEMMA       Mechanism = "flemma"
	MechSSMDVFS      Mechanism = "ssmdvfs"
	MechSSMDVFSNoCal Mechanism = "ssmdvfs-nocal"
	MechSSMDVFSComp  Mechanism = "ssmdvfs-compressed"
)

// AllMechanisms lists the Fig. 4 comparison set in display order.
func AllMechanisms() []Mechanism {
	return []Mechanism{MechBaseline, MechPCSTALL, MechFLEMMA,
		MechSSMDVFSNoCal, MechSSMDVFS, MechSSMDVFSComp}
}

// Fig4Options configures the full-system comparison.
type Fig4Options struct {
	Sim gpusim.Config
	// Kernels are the evaluation programs (the paper randomly selects a
	// mix with >50% unseen in training).
	Kernels []kernels.Spec
	// Scale shortens kernels for quick runs.
	Scale float64
	// Presets are the performance-loss budgets (paper: 0.10 and 0.20).
	Presets []float64
	// Model / Compressed are the trained SSMDVFS models.
	Model      *core.Model
	Compressed *core.Model
	// Mechanisms restricts the comparison (nil = all).
	Mechanisms []Mechanism
	// MaxRunPs bounds each simulation.
	MaxRunPs int64
	Seed     int64
	// Logger is the nil-safe progress logger (nil = quiet). Adapt
	// printf-style callbacks with telemetry.NewLoggerFunc.
	Logger *telemetry.Logger
	// Workers bounds the parallel runner sharding the independent
	// (kernel, preset, mechanism) simulations (<= 0 = GOMAXPROCS);
	// results are byte-identical at any worker count.
	Workers int
	// Telemetry / Tracer, when non-nil, receive the runner's shard
	// metrics and per-worker spans.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// runnerOptions builds the runner config for one fig4 stage.
func (opts *Fig4Options) runnerOptions(name string) runner.Options {
	return runner.Options{
		Name:      name,
		Workers:   opts.Workers,
		Telemetry: opts.Telemetry,
		Tracer:    opts.Tracer,
	}
}

// Fig4Row is one (kernel, mechanism, preset) measurement.
type Fig4Row struct {
	Kernel    string
	Mechanism Mechanism
	Preset    float64

	ExecPs   int64
	EnergyPJ float64
	EDP      float64

	// NormEDP and NormLatency are relative to the default-OP baseline run
	// of the same kernel (baseline = 1.0).
	NormEDP     float64
	NormLatency float64
	// PerfLoss is NormLatency − 1.
	PerfLoss float64
	// WithinPreset reports whether the loss stayed under the preset.
	WithinPreset bool
	Transitions  int
}

// Fig4Summary aggregates one mechanism at one preset across kernels.
type Fig4Summary struct {
	Mechanism   Mechanism
	Preset      float64
	GMeanEDP    float64
	MeanLatency float64
	MaxLoss     float64
	ViolationN  int
	Kernels     int
}

// Fig4Result is the full comparison.
type Fig4Result struct {
	Rows      []Fig4Row
	Summaries []Fig4Summary
}

// RunFig4 executes the comparison: for each kernel a default-OP baseline
// run, then each mechanism at each preset. The baselines and the
// (kernel, preset, mechanism) grid are each sharded across the worker
// pool; rows are merged in the serial nesting order so the result is
// identical at any worker count.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("experiments: Fig4 requires a trained model")
	}
	if len(opts.Kernels) == 0 {
		return nil, fmt.Errorf("experiments: Fig4 requires evaluation kernels")
	}
	if len(opts.Presets) == 0 {
		opts.Presets = []float64{0.10, 0.20}
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}
	mechs := opts.Mechanisms
	if mechs == nil {
		mechs = AllMechanisms()
	}
	log := opts.Logger

	built := make([]gpusim.Kernel, len(opts.Kernels))
	for i, spec := range opts.Kernels {
		built[i] = spec.Build(opts.Scale)
	}
	ctx := context.Background()
	bases, err := runner.Map(ctx, len(built), opts.runnerOptions("fig4:baseline"),
		func(_ context.Context, s runner.Shard) (gpusim.Result, error) {
			spec := opts.Kernels[s.Index]
			base, err := runOnce(opts.Sim, built[s.Index], nil, opts.MaxRunPs)
			if err != nil {
				return gpusim.Result{}, fmt.Errorf("experiments: baseline run of %s: %w", spec.Name, err)
			}
			log.Logf("fig4: %-24s baseline T=%.1fus E=%.2fmJ", spec.Name,
				float64(base.ExecTimePs)/1e6, base.EnergyPJ/1e9)
			return base, nil
		})
	if err != nil {
		return nil, err
	}

	// One shard per (kernel, preset, mechanism) cell, flattened
	// kernel-major so the merged rows reproduce the serial append order.
	np, nm := len(opts.Presets), len(mechs)
	rows, err := runner.Map(ctx, len(built)*np*nm, opts.runnerOptions("fig4"),
		func(_ context.Context, s runner.Shard) (Fig4Row, error) {
			k := s.Index / (np * nm)
			preset := opts.Presets[(s.Index%(np*nm))/nm]
			mech := mechs[s.Index%nm]
			spec := opts.Kernels[k]
			base := bases[k]

			var row Fig4Row
			if mech == MechBaseline {
				row = makeRow(spec.Name, mech, preset, base, base.ExecTimePs, base.EDP())
			} else {
				ctrl, err := buildController(mech, opts, preset)
				if err != nil {
					return Fig4Row{}, err
				}
				r, err := runOnce(opts.Sim, built[k], ctrl, opts.MaxRunPs)
				if err != nil {
					return Fig4Row{}, fmt.Errorf("experiments: %s on %s: %w", mech, spec.Name, err)
				}
				row = makeRow(spec.Name, mech, preset, r, base.ExecTimePs, base.EDP())
			}
			log.Logf("fig4: %-24s %-18s preset=%.0f%% edp=%.3f lat=%.3f",
				spec.Name, mech, preset*100, row.NormEDP, row.NormLatency)
			return row, nil
		})
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{Rows: rows}
	res.Summaries, err = summarize(res.Rows, mechs, opts.Presets)
	return res, err
}

func runOnce(cfg gpusim.Config, kernel gpusim.Kernel, ctrl gpusim.Controller, maxPs int64) (gpusim.Result, error) {
	sim, err := gpusim.New(cfg, kernel)
	if err != nil {
		return gpusim.Result{}, err
	}
	if ctrl != nil {
		sim.SetController(ctrl)
	}
	r := sim.Run(maxPs)
	if !r.Completed {
		return r, fmt.Errorf("run did not complete within %d ps", maxPs)
	}
	return r, nil
}

func buildController(mech Mechanism, opts Fig4Options, preset float64) (gpusim.Controller, error) {
	clusters := opts.Sim.Clusters
	switch mech {
	case MechPCSTALL:
		return baselines.NewPCSTALL(opts.Sim.OPs, preset, clusters)
	case MechFLEMMA:
		return baselines.NewFLEMMA(opts.Sim.OPs, preset, clusters, opts.Seed)
	case MechSSMDVFS:
		return NewSSMDVFS(opts.Model, preset, opts.Sim, true)
	case MechSSMDVFSNoCal:
		return NewSSMDVFS(opts.Model, preset, opts.Sim, false)
	case MechSSMDVFSComp:
		if opts.Compressed == nil {
			return nil, fmt.Errorf("experiments: %s requires a compressed model", mech)
		}
		return NewSSMDVFS(opts.Compressed, preset, opts.Sim, true)
	default:
		return nil, fmt.Errorf("experiments: unknown mechanism %q", mech)
	}
}

// NewSSMDVFS builds the SSMDVFS controller with the analytical PCSTALL
// baseline installed as its degradation fallback, so a model failure
// mid-run degrades that epoch to a safe analytical decision instead of
// crashing the simulation.
func NewSSMDVFS(model *core.Model, preset float64, cfg gpusim.Config, calibrate bool) (gpusim.Controller, error) {
	ctrl, err := core.NewController(model, preset, cfg.Clusters, calibrate)
	if err != nil {
		return nil, err
	}
	fb, err := baselines.NewPCSTALL(cfg.OPs, preset, cfg.Clusters)
	if err != nil {
		return nil, err
	}
	ctrl.SetFallback(fb)
	return ctrl, nil
}

func makeRow(kernel string, mech Mechanism, preset float64, r gpusim.Result, baseT int64, baseEDP float64) Fig4Row {
	row := Fig4Row{
		Kernel:      kernel,
		Mechanism:   mech,
		Preset:      preset,
		ExecPs:      r.ExecTimePs,
		EnergyPJ:    r.EnergyPJ,
		EDP:         r.EDP(),
		Transitions: r.Transitions,
	}
	row.NormEDP = row.EDP / baseEDP
	row.NormLatency = float64(r.ExecTimePs) / float64(baseT)
	row.PerfLoss = row.NormLatency - 1
	row.WithinPreset = row.PerfLoss <= preset+1e-9
	return row
}

func summarize(rows []Fig4Row, mechs []Mechanism, presets []float64) ([]Fig4Summary, error) {
	var out []Fig4Summary
	for _, preset := range presets {
		for _, mech := range mechs {
			var edps, lats []float64
			violations := 0
			maxLoss := 0.0
			for _, r := range rows {
				if r.Mechanism != mech || r.Preset != preset {
					continue
				}
				edps = append(edps, r.NormEDP)
				lats = append(lats, r.NormLatency)
				if !r.WithinPreset {
					violations++
				}
				if r.PerfLoss > maxLoss {
					maxLoss = r.PerfLoss
				}
			}
			if len(edps) == 0 {
				continue
			}
			g, err := stats.GeoMean(edps)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig4Summary{
				Mechanism:   mech,
				Preset:      preset,
				GMeanEDP:    g,
				MeanLatency: stats.Mean(lats),
				MaxLoss:     maxLoss,
				ViolationN:  violations,
				Kernels:     len(edps),
			})
		}
	}
	return out, nil
}

// Headline computes the paper's headline comparisons from a Fig. 4 run:
// the EDP improvement of the given SSMDVFS variant over the baseline,
// PCSTALL, and F-LEMMA, averaged across presets. Positive percentages
// mean the variant is better (lower EDP).
type Headline struct {
	Variant       Mechanism
	VsBaselinePct float64
	VsPCSTALLPct  float64
	VsFLEMMAPct   float64
}

// ComputeHeadline derives headline EDP improvements for variant from the
// result's summaries.
func (r *Fig4Result) ComputeHeadline(variant Mechanism) (Headline, error) {
	h := Headline{Variant: variant}
	mean := func(m Mechanism) (float64, error) {
		var vals []float64
		for _, s := range r.Summaries {
			if s.Mechanism == m {
				vals = append(vals, s.GMeanEDP)
			}
		}
		if len(vals) == 0 {
			return 0, fmt.Errorf("experiments: no summaries for mechanism %q", m)
		}
		return stats.Mean(vals), nil
	}
	v, err := mean(variant)
	if err != nil {
		return h, err
	}
	base, err := mean(MechBaseline)
	if err != nil {
		return h, err
	}
	h.VsBaselinePct = (1 - v/base) * 100
	if pc, err := mean(MechPCSTALL); err == nil {
		h.VsPCSTALLPct = (1 - v/pc) * 100
	}
	if fl, err := mean(MechFLEMMA); err == nil {
		h.VsFLEMMAPct = (1 - v/fl) * 100
	}
	return h, nil
}

// WriteTable renders rows and summaries as text tables.
func (r *Fig4Result) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tmechanism\tpreset\tnorm_edp\tnorm_latency\tperf_loss\twithin")
	rows := append([]Fig4Row(nil), r.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Preset != rows[j].Preset {
			return rows[i].Preset < rows[j].Preset
		}
		if rows[i].Kernel != rows[j].Kernel {
			return rows[i].Kernel < rows[j].Kernel
		}
		return rows[i].Mechanism < rows[j].Mechanism
	})
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.3f\t%.3f\t%+.2f%%\t%v\n",
			row.Kernel, row.Mechanism, row.Preset*100,
			row.NormEDP, row.NormLatency, row.PerfLoss*100, row.WithinPreset)
	}
	fmt.Fprintln(tw, "\nmechanism\tpreset\tgmean_edp\tmean_latency\tmax_loss\tviolations")
	for _, s := range r.Summaries {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.3f\t%.3f\t%.2f%%\t%d/%d\n",
			s.Mechanism, s.Preset*100, s.GMeanEDP, s.MeanLatency,
			s.MaxLoss*100, s.ViolationN, s.Kernels)
	}
	return tw.Flush()
}

// SaveFile writes the full result (rows + summaries) as JSON atomically,
// so plots and later analysis do not need to re-run the simulations.
func (r *Fig4Result) SaveFile(path string) error {
	return atomicfile.WriteJSON(path, r)
}

// LoadFig4File reads a result saved with SaveFile.
func LoadFig4File(path string) (*Fig4Result, error) {
	var r Fig4Result
	if err := atomicfile.ReadJSON(path, &r); err != nil {
		return nil, fmt.Errorf("experiments: fig4 result: %w", err)
	}
	return &r, nil
}
