// Package experiments is the harness that reproduces every table and
// figure in the paper's evaluation: the end-to-end pipeline (data
// generation → training → compression), the Table I feature selection,
// the Table II compression summary, the Fig. 3 FLOPs-vs-quality sweeps,
// the Fig. 4 full-system comparison, the Section V-D hardware estimate,
// and the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ssmdvfs/internal/compress"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
	"ssmdvfs/internal/kernels"
	"ssmdvfs/internal/telemetry"
)

// PipelineOptions configures the end-to-end build of the SSMDVFS models.
type PipelineOptions struct {
	// Sim is the GPU configuration used for data generation.
	Sim gpusim.Config
	// Scale shortens (<1) or lengthens (>1) every kernel.
	Scale float64
	// TrainKernels generate the dataset (defaults to kernels.Training()).
	TrainKernels []kernels.Spec
	// BreakpointPs / MaxBreakpoints / ClusterStride feed datagen.Config.
	BreakpointPs   int64
	MaxBreakpoints int
	ClusterStride  int

	// TrainOpts configures the uncompressed model's training.
	TrainOpts core.TrainOptions
	// PruneOpts configures compression of the deployed model.
	PruneOpts compress.PruneOptions

	// CacheDir, when non-empty, caches the dataset and models as JSON so
	// repeated experiment runs skip regeneration.
	CacheDir string
	// Workers bounds the parallel runner that shards per-kernel data
	// generation (<= 0 = GOMAXPROCS). Output is byte-identical at any
	// worker count.
	Workers int
	// Logger is the telemetry-backed progress logger; a nil *Logger is
	// valid and keeps the run quiet. Adapt printf-style callbacks with
	// telemetry.NewLoggerFunc.
	Logger *telemetry.Logger
	// Telemetry, when non-nil, receives pipeline counters (samples
	// generated, cache hits/misses) and per-phase duration histograms.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records one span per pipeline phase
	// (datagen → train → compress → prune), exportable to Chrome
	// trace-event format.
	Tracer *telemetry.Tracer
}

// DefaultPipelineOptions returns the paper-faithful full-scale setup.
func DefaultPipelineOptions() PipelineOptions {
	opts := PipelineOptions{
		Sim:           gpusim.TitanXConfig(),
		Scale:         1.0,
		BreakpointPs:  100_000_000,
		ClusterStride: 2,
		TrainOpts:     core.DefaultTrainOptions(),
		PruneOpts:     compress.DefaultPruneOptions(),
	}
	// Full-scale datasets are large enough that the pruned model needs a
	// longer fine-tune to recover the Calibrator's regression quality.
	opts.PruneOpts.FineTuneEpochs = 60
	return opts
}

// QuickPipelineOptions returns a reduced setup (small GPU, short kernels,
// subsampled clusters) that builds in seconds, for tests and benchmarks.
func QuickPipelineOptions() PipelineOptions {
	opts := DefaultPipelineOptions()
	opts.Sim = gpusim.SmallConfig()
	opts.Scale = 0.4
	opts.BreakpointPs = 50_000_000
	opts.MaxBreakpoints = 2
	opts.ClusterStride = 1
	opts.TrainKernels = kernels.Training()
	opts.TrainOpts.Epochs = 50
	opts.PruneOpts.FineTuneEpochs = 30
	return opts
}

// Pipeline holds the build artifacts.
type Pipeline struct {
	Dataset *datagen.Dataset
	// Model is the uncompressed (paper-initial architecture) model with
	// its validation report; Compressed is the deployed pruned model.
	Model            *core.Model
	Report           core.Report
	Compressed       *core.Model
	CompressedReport core.Report
}

// phaseSpan opens one pipeline-phase span (nil-safe on a nil tracer).
func (opts *PipelineOptions) phaseSpan(name string, attrs ...string) *telemetry.Span {
	sp := opts.Tracer.Start(name, attrs...)
	sp.SetCat("pipeline")
	return sp
}

// observePhase records a finished phase's wall-clock duration.
func (opts *PipelineOptions) observePhase(name string, start time.Time) {
	if opts.Telemetry != nil {
		opts.Telemetry.Histogram("pipeline_phase_ms", "phase", name).Observe(time.Since(start).Milliseconds())
	}
}

// countCache records an artifact cache hit or miss.
func (opts *PipelineOptions) countCache(artifact string, hit bool) {
	if opts.Telemetry == nil {
		return
	}
	name := "pipeline_cache_misses_total"
	if hit {
		name = "pipeline_cache_hits_total"
	}
	opts.Telemetry.Counter(name, "artifact", artifact).Add(1)
}

// RunPipeline executes (or loads from cache) the full build.
func RunPipeline(opts PipelineOptions) (*Pipeline, error) {
	log := opts.Logger
	logf := log.Logf
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("experiments: Scale must be positive")
	}
	trainKernels := opts.TrainKernels
	if trainKernels == nil {
		trainKernels = kernels.Training()
	}
	if len(trainKernels) == 0 {
		return nil, fmt.Errorf("experiments: no training kernels")
	}
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}

	p := &Pipeline{}

	// Dataset.
	dsPath := cachePath(opts.CacheDir, "dataset.json")
	dsStart := time.Now()
	dsSpan := opts.phaseSpan("datagen", "kernels", strconv.Itoa(len(trainKernels)))
	if ds, err := loadCachedDataset(dsPath); err == nil {
		opts.countCache("dataset", true)
		dsSpan.SetAttr("cached", "true")
		logf("experiments: loaded cached dataset (%d samples)", len(ds.Samples))
		p.Dataset = ds
	} else {
		opts.countCache("dataset", false)
		dgCfg := datagen.DefaultConfig(opts.Sim)
		if opts.BreakpointPs > 0 {
			dgCfg.BreakpointPs = opts.BreakpointPs
		}
		dgCfg.MaxBreakpoints = opts.MaxBreakpoints
		if opts.ClusterStride > 0 {
			dgCfg.ClusterStride = opts.ClusterStride
		}
		built := make([]isa.Kernel, len(trainKernels))
		for i, spec := range trainKernels {
			built[i] = spec.Build(opts.Scale)
		}
		ds, err := datagen.RunSuite(datagen.SuiteOptions{
			Config:    dgCfg,
			Kernels:   built,
			Logger:    log,
			Telemetry: opts.Telemetry,
			Tracer:    opts.Tracer,
			Workers:   opts.Workers,
		})
		if err != nil {
			dsSpan.End()
			return nil, err
		}
		p.Dataset = ds
		if opts.Telemetry != nil {
			opts.Telemetry.Counter("pipeline_samples_total").Add(int64(len(ds.Samples)))
		}
		logf("experiments: generated dataset with %d samples", len(ds.Samples))
		if dsPath != "" {
			if err := ds.SaveFile(dsPath); err != nil {
				dsSpan.End()
				return nil, err
			}
		}
	}
	dsSpan.SetAttr("samples", strconv.Itoa(len(p.Dataset.Samples)))
	dsSpan.End()
	opts.observePhase("datagen", dsStart)

	// Uncompressed model.
	modelPath := cachePath(opts.CacheDir, "model.json")
	trainStart := time.Now()
	trainSpan := opts.phaseSpan("train", "epochs", strconv.Itoa(opts.TrainOpts.Epochs))
	var err error
	if m, lerr := loadCachedModel(modelPath); lerr == nil {
		opts.countCache("model", true)
		trainSpan.SetAttr("cached", "true")
		p.Model = m
		p.Report = core.Evaluate(m, p.Dataset)
		logf("experiments: loaded cached model (acc=%.2f%%)", p.Report.Accuracy*100)
	} else {
		opts.countCache("model", false)
		if p.Model, p.Report, err = core.Train(p.Dataset, opts.TrainOpts); err != nil {
			trainSpan.End()
			return nil, err
		}
		logf("experiments: trained model acc=%.2f%% mape=%.2f%% flops=%d",
			p.Report.Accuracy*100, p.Report.MAPE, p.Report.FLOPs)
		if modelPath != "" {
			if err := p.Model.SaveFile(modelPath); err != nil {
				trainSpan.End()
				return nil, err
			}
		}
	}
	trainSpan.End()
	opts.observePhase("train", trainStart)

	// Compressed model: retrain at the compressed architecture, then
	// prune, as in Section IV.
	compPath := cachePath(opts.CacheDir, "compressed.json")
	compStart := time.Now()
	compSpan := opts.phaseSpan("compress")
	if m, lerr := loadCachedModel(compPath); lerr == nil {
		opts.countCache("compressed", true)
		compSpan.SetAttr("cached", "true")
		p.Compressed = m
		p.CompressedReport = core.Evaluate(m, p.Dataset)
		p.CompressedReport.FLOPs = m.EffectiveFLOPs()
		logf("experiments: loaded cached compressed model (acc=%.2f%%)", p.CompressedReport.Accuracy*100)
	} else {
		opts.countCache("compressed", false)
		smallOpts := opts.TrainOpts
		smallOpts.Arch = core.PaperCompressed()
		smallSpan := opts.phaseSpan("compress:train-small")
		smallModel, _, err := core.Train(p.Dataset, smallOpts)
		smallSpan.End()
		if err != nil {
			compSpan.End()
			return nil, err
		}
		pruneSpan := opts.phaseSpan("compress:prune")
		p.Compressed, p.CompressedReport, err = compress.PruneModel(smallModel, p.Dataset, opts.PruneOpts)
		pruneSpan.End()
		if err != nil {
			compSpan.End()
			return nil, err
		}
		logf("experiments: compressed model acc=%.2f%% mape=%.2f%% effective flops=%d",
			p.CompressedReport.Accuracy*100, p.CompressedReport.MAPE, p.Compressed.EffectiveFLOPs())
		if compPath != "" {
			if err := p.Compressed.SaveFile(compPath); err != nil {
				compSpan.End()
				return nil, err
			}
		}
	}
	compSpan.End()
	opts.observePhase("compress", compStart)
	return p, nil
}

func cachePath(dir, name string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, name)
}

func loadCachedDataset(path string) (*datagen.Dataset, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	return datagen.LoadFile(path)
}

func loadCachedModel(path string) (*core.Model, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	return core.LoadFile(path)
}
