// Package experiments is the harness that reproduces every table and
// figure in the paper's evaluation: the end-to-end pipeline (data
// generation → training → compression), the Table I feature selection,
// the Table II compression summary, the Fig. 3 FLOPs-vs-quality sweeps,
// the Fig. 4 full-system comparison, the Section V-D hardware estimate,
// and the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"ssmdvfs/internal/compress"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/datagen"
	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/kernels"
)

// PipelineOptions configures the end-to-end build of the SSMDVFS models.
type PipelineOptions struct {
	// Sim is the GPU configuration used for data generation.
	Sim gpusim.Config
	// Scale shortens (<1) or lengthens (>1) every kernel.
	Scale float64
	// TrainKernels generate the dataset (defaults to kernels.Training()).
	TrainKernels []kernels.Spec
	// BreakpointPs / MaxBreakpoints / ClusterStride feed datagen.Config.
	BreakpointPs   int64
	MaxBreakpoints int
	ClusterStride  int

	// TrainOpts configures the uncompressed model's training.
	TrainOpts core.TrainOptions
	// PruneOpts configures compression of the deployed model.
	PruneOpts compress.PruneOptions

	// CacheDir, when non-empty, caches the dataset and models as JSON so
	// repeated experiment runs skip regeneration.
	CacheDir string
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...any)
}

// DefaultPipelineOptions returns the paper-faithful full-scale setup.
func DefaultPipelineOptions() PipelineOptions {
	opts := PipelineOptions{
		Sim:           gpusim.TitanXConfig(),
		Scale:         1.0,
		BreakpointPs:  100_000_000,
		ClusterStride: 2,
		TrainOpts:     core.DefaultTrainOptions(),
		PruneOpts:     compress.DefaultPruneOptions(),
	}
	// Full-scale datasets are large enough that the pruned model needs a
	// longer fine-tune to recover the Calibrator's regression quality.
	opts.PruneOpts.FineTuneEpochs = 60
	return opts
}

// QuickPipelineOptions returns a reduced setup (small GPU, short kernels,
// subsampled clusters) that builds in seconds, for tests and benchmarks.
func QuickPipelineOptions() PipelineOptions {
	opts := DefaultPipelineOptions()
	opts.Sim = gpusim.SmallConfig()
	opts.Scale = 0.4
	opts.BreakpointPs = 50_000_000
	opts.MaxBreakpoints = 2
	opts.ClusterStride = 1
	opts.TrainKernels = kernels.Training()
	opts.TrainOpts.Epochs = 50
	opts.PruneOpts.FineTuneEpochs = 30
	return opts
}

// Pipeline holds the build artifacts.
type Pipeline struct {
	Dataset *datagen.Dataset
	// Model is the uncompressed (paper-initial architecture) model with
	// its validation report; Compressed is the deployed pruned model.
	Model            *core.Model
	Report           core.Report
	Compressed       *core.Model
	CompressedReport core.Report
}

// RunPipeline executes (or loads from cache) the full build.
func RunPipeline(opts PipelineOptions) (*Pipeline, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("experiments: Scale must be positive")
	}
	trainKernels := opts.TrainKernels
	if trainKernels == nil {
		trainKernels = kernels.Training()
	}
	if len(trainKernels) == 0 {
		return nil, fmt.Errorf("experiments: no training kernels")
	}
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}

	p := &Pipeline{}

	// Dataset.
	dsPath := cachePath(opts.CacheDir, "dataset.json")
	if ds, err := loadCachedDataset(dsPath); err == nil {
		logf("experiments: loaded cached dataset (%d samples)", len(ds.Samples))
		p.Dataset = ds
	} else {
		dgCfg := datagen.DefaultConfig(opts.Sim)
		if opts.BreakpointPs > 0 {
			dgCfg.BreakpointPs = opts.BreakpointPs
		}
		dgCfg.MaxBreakpoints = opts.MaxBreakpoints
		if opts.ClusterStride > 0 {
			dgCfg.ClusterStride = opts.ClusterStride
		}
		ds := &datagen.Dataset{}
		for _, spec := range trainKernels {
			if err := datagen.Generate(dgCfg, spec.Build(opts.Scale), ds, logf); err != nil {
				return nil, err
			}
		}
		p.Dataset = ds
		logf("experiments: generated dataset with %d samples", len(ds.Samples))
		if dsPath != "" {
			if err := ds.SaveFile(dsPath); err != nil {
				return nil, err
			}
		}
	}

	// Uncompressed model.
	modelPath := cachePath(opts.CacheDir, "model.json")
	var err error
	if m, lerr := loadCachedModel(modelPath); lerr == nil {
		p.Model = m
		p.Report = core.Evaluate(m, p.Dataset)
		logf("experiments: loaded cached model (acc=%.2f%%)", p.Report.Accuracy*100)
	} else {
		if p.Model, p.Report, err = core.Train(p.Dataset, opts.TrainOpts); err != nil {
			return nil, err
		}
		logf("experiments: trained model acc=%.2f%% mape=%.2f%% flops=%d",
			p.Report.Accuracy*100, p.Report.MAPE, p.Report.FLOPs)
		if modelPath != "" {
			if err := p.Model.SaveFile(modelPath); err != nil {
				return nil, err
			}
		}
	}

	// Compressed model: retrain at the compressed architecture, then
	// prune, as in Section IV.
	compPath := cachePath(opts.CacheDir, "compressed.json")
	if m, lerr := loadCachedModel(compPath); lerr == nil {
		p.Compressed = m
		p.CompressedReport = core.Evaluate(m, p.Dataset)
		p.CompressedReport.FLOPs = m.EffectiveFLOPs()
		logf("experiments: loaded cached compressed model (acc=%.2f%%)", p.CompressedReport.Accuracy*100)
	} else {
		smallOpts := opts.TrainOpts
		smallOpts.Arch = core.PaperCompressed()
		smallModel, _, err := core.Train(p.Dataset, smallOpts)
		if err != nil {
			return nil, err
		}
		if p.Compressed, p.CompressedReport, err = compress.PruneModel(smallModel, p.Dataset, opts.PruneOpts); err != nil {
			return nil, err
		}
		logf("experiments: compressed model acc=%.2f%% mape=%.2f%% effective flops=%d",
			p.CompressedReport.Accuracy*100, p.CompressedReport.MAPE, p.Compressed.EffectiveFLOPs())
		if compPath != "" {
			if err := p.Compressed.SaveFile(compPath); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

func cachePath(dir, name string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, name)
}

func loadCachedDataset(path string) (*datagen.Dataset, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	return datagen.LoadFile(path)
}

func loadCachedModel(path string) (*core.Model, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	return core.LoadFile(path)
}
