package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"ssmdvfs/internal/kernels"
)

// marshalAt runs fn and JSON-serializes its result, failing the test on
// any error.
func marshalAt(t *testing.T, fn func() (any, error)) []byte {
	t.Helper()
	v, err := fn()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestPresetSweepDeterministicAcrossWorkers asserts the tentpole
// contract on the preset sweep: the aggregated points are byte-identical
// whether the (preset, kernel) grid runs serially or sharded. Runs under
// -race in CI to also prove shard isolation.
func TestPresetSweepDeterministicAcrossWorkers(t *testing.T) {
	p := sharedPipeline(t)
	sweep := func(workers int) (any, error) {
		return RunPresetSweep(PresetSweepOptions{
			Sim:     testPipelineOpts().Sim,
			Kernels: kernels.Evaluation()[:3],
			Scale:   testPipelineOpts().Scale,
			Presets: []float64{0.10, 0.20},
			Model:   p.Compressed,
			Workers: workers,
		})
	}
	serial := marshalAt(t, func() (any, error) { return sweep(1) })
	for _, workers := range []int{3, 8} {
		w := workers
		if par := marshalAt(t, func() (any, error) { return sweep(w) }); !bytes.Equal(serial, par) {
			t.Fatalf("sweep at workers=%d differs from serial:\n%s\nvs\n%s", w, par, serial)
		}
	}
}

// TestFig4DeterministicAcrossWorkers asserts the same contract on the
// full-system comparison: rows and summaries must not depend on how the
// (kernel, preset, mechanism) grid was sharded.
func TestFig4DeterministicAcrossWorkers(t *testing.T) {
	p := sharedPipeline(t)
	fig4 := func(workers int) (any, error) {
		return RunFig4(Fig4Options{
			Sim:        testPipelineOpts().Sim,
			Kernels:    kernels.Evaluation()[:3],
			Scale:      testPipelineOpts().Scale,
			Presets:    []float64{0.10},
			Model:      p.Model,
			Compressed: p.Compressed,
			Seed:       1,
			Workers:    workers,
		})
	}
	serial := marshalAt(t, func() (any, error) { return fig4(1) })
	if par := marshalAt(t, func() (any, error) { return fig4(6) }); !bytes.Equal(serial, par) {
		t.Fatal("fig4 result differs between workers=1 and workers=6")
	}
}
