package serve

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// TestLedgerOnlineAgreesWithReplay pins the tentpole acceptance
// criterion: a trace served through the full decision path (model,
// fallback, validation — whatever each row got) is re-accounted offline
// by replaying the flight recorder through the same Meter, and the
// energy-delta and perf-loss totals agree within the documented ≤2%
// tolerance. In this in-process setup nothing is scraped mid-flight and
// the recorder ring is large enough to hold every decision, so the
// integer totals in fact match exactly — the 2% headroom exists for
// production dumps with ring eviction or mid-traffic snapshots.
func TestLedgerOnlineAgreesWithReplay(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(4096, provenance.MonitorOptions{})
	led := ledger.New(ledger.Options{})
	srv.SetLedger(led)

	rng := rand.New(rand.NewSource(99))
	rows := make([]Request, 64)
	var decs []Decision
	for batch := 0; batch < 8; batch++ {
		for i := range rows {
			rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: int32(i), Cluster: int32(batch)}
		}
		decs = srv.DecideBatch(rows, decs[:0])
		if len(decs) != len(rows) {
			t.Fatalf("batch %d: %d decisions for %d rows", batch, len(decs), len(rows))
		}
	}

	online := led.Snapshot()
	if online.Decisions != 8*64 {
		t.Fatalf("online ledger saw %d decisions, want %d", online.Decisions, 8*64)
	}

	recs := srv.FlightRecorder().Snapshot(nil)
	if len(recs) != 8*64 {
		t.Fatalf("flight recorder holds %d records, want %d", len(recs), 8*64)
	}
	replay := led.Meter().ReplayRecords(recs)

	within := func(name string, online, replay int64) {
		t.Helper()
		if online == replay {
			return
		}
		diff := math.Abs(float64(online-replay)) / math.Max(math.Abs(float64(replay)), 1)
		if diff > 0.02 {
			t.Fatalf("%s: online %d vs replay %d (%.2f%% > 2%% tolerance)", name, online, replay, diff*100)
		}
	}
	within("decisions", online.Decisions, replay.Decisions)
	within("energy_max_pj", online.EnergyMaxPJ, replay.EnergyMaxPJ)
	within("energy_pj", online.EnergyPJ, replay.EnergyPJ)
	within("saved_pj", online.SavedPJ(), replay.SavedPJ())
	within("perf_loss_ppm_sum", online.PerfLossPpmSum, replay.PerfLossPpmSum)
}

// TestLedgerDisabledPathZeroAlloc pins the acceptance criterion that a
// server without a ledger pays nothing for the feature existing.
func TestLedgerDisabledPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under -race (sync.Pool bypasses its caches)")
	}
	srv, err := NewServer(testModel(t, 3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	decs := make([]Decision, 0, len(rows))
	decs = srv.decideBatch(rows, decs[:0]) // warm the pools

	allocs := testing.AllocsPerRun(200, func() {
		decs = srv.decideBatch(rows, decs[:0])
	})
	if allocs != 0 {
		t.Fatalf("decideBatch allocates %.1f objects/op with the ledger disabled, want 0", allocs)
	}
}

// BenchmarkDecide_LedgerDisabled is the alloc-guard benchmark CI runs
// (-benchmem must report 0 B/op).
func BenchmarkDecide_LedgerDisabled(b *testing.B) {
	srv, err := NewServer(testModel(b, 3), Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	decs := srv.decideBatch(rows, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decs = srv.decideBatch(rows, decs[:0])
	}
}

// TestHandlerContentTypes is the table-driven exposition-header test:
// every HTTP endpoint must declare its exact Content-Type.
func TestHandlerContentTypes(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(16, provenance.MonitorOptions{})
	srv.SetLedger(ledger.New(ledger.Options{}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want string
	}{
		{"/healthz", telemetry.ContentTypeJSON},
		{"/metrics", telemetry.ContentTypeJSON},
		{"/model", telemetry.ContentTypeJSON},
		{"/debug/ledger", telemetry.ContentTypeJSON},
		{"/debug/decisions", telemetry.ContentTypeNDJSON},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Fatalf("GET %s: Content-Type %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestLedgerEndpointDisabled404s distinguishes "no ledger configured"
// from "ledger empty" for scrapers.
func TestLedgerEndpointDisabled404s(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled ledger endpoint returned %d, want 404", resp.StatusCode)
	}
}

// TestLedgerEndpointServesSnapshot exercises the enabled endpoint end to
// end: decisions flow, the scraped snapshot parses, and it carries them.
func TestLedgerEndpointServesSnapshot(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	led := ledger.New(ledger.Options{})
	srv.SetLedger(led)
	rng := rand.New(rand.NewSource(5))
	rows := make([]Request, 16)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	srv.DecideBatch(rows, nil)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	snap, err := ledger.ReadSnapshot(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Decisions != 16 {
		t.Fatalf("scraped snapshot has %d decisions, want 16", snap.Decisions)
	}
	if snap.EnergyMaxPJ <= 0 {
		t.Fatalf("scraped snapshot has no energy accounting: %+v", snap)
	}
}

// TestServePromExpositionLintClean runs the promlint satellite in unit
// tests: the serving registry (including ledger series) must expose
// lint-clean Prometheus text.
func TestServePromExpositionLintClean(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(64, provenance.MonitorOptions{})
	srv.SetLedger(ledger.New(ledger.Options{Registry: srv.Telemetry()}))
	rng := rand.New(rand.NewSource(11))
	rows := make([]Request, 32)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	srv.DecideBatch(rows, nil)

	var buf bytes.Buffer
	if err := srv.Telemetry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := telemetry.LintProm(bytes.NewReader(buf.Bytes())); len(errs) != 0 {
		t.Fatalf("serve exposition fails promlint: %v", errs)
	}
	if !bytes.Contains(buf.Bytes(), []byte("ledger_decisions_total")) {
		t.Fatal("serve exposition missing ledger series")
	}
}

// TestLedgerAccountsFallbackDecisions: the ledger accounts every
// answered row, including degraded ones — the objective is what the
// fleet actually did, not only what the model did.
func TestLedgerAccountsFallbackDecisions(t *testing.T) {
	srv, err := NewServer(testModel(t, 1), Options{Workers: 1, Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	led := ledger.New(ledger.Options{})
	srv.SetLedger(led)
	rng := rand.New(rand.NewSource(21))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	decs := srv.DecideBatch(rows, nil)
	if len(decs) != len(rows) {
		t.Fatalf("%d decisions for %d rows", len(decs), len(rows))
	}
	if got := led.Snapshot().Decisions; got != int64(len(rows)) {
		t.Fatalf("ledger accounted %d decisions, want %d", got, len(rows))
	}
}
