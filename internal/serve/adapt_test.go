package serve

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
)

// TestRollbackNeverReadsDisk pins the canary escape hatch: after a swap,
// the pre-swap model is retained in memory, so rollback works even when
// every model artifact has been deleted from disk.
func TestRollbackNeverReadsDisk(t *testing.T) {
	m1 := testModel(t, 50)
	m1.Lineage = core.Lineage{Generation: 1, Source: core.SourceOffline}
	e, err := NewEngine(m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rollback(); err == nil {
		t.Fatal("rollback before any swap succeeded")
	}

	m2 := testModel(t, 51)
	m2.Lineage = core.Lineage{Generation: 2, Parent: 1, Source: core.SourceRefit, Refits: 1}
	path := filepath.Join(t.TempDir(), "m2.json")
	if err := m2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := e.Reload(path); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != 2 {
		t.Fatalf("generation after reload = %d, want 2", e.Generation())
	}
	if p := e.PrevModel(); p != m1 {
		t.Fatal("pre-swap model not retained")
	}

	// The artifact is gone: rollback must not care.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	back, err := e.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != m1 || e.Model() != m1 || e.Generation() != 1 {
		t.Fatalf("rollback served gen %d, want the retained gen 1", e.Generation())
	}
	// A rollback is itself reversible: the rolled-away model is retained.
	if _, err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != 2 {
		t.Fatalf("double rollback served gen %d, want 2", e.Generation())
	}
	if n := e.Metrics().Rollbacks.Load(); n != 2 {
		t.Fatalf("rollback counter = %d, want 2", n)
	}

	// The engine still decides after the round trip.
	rng := rand.New(rand.NewSource(1))
	decs := e.DecideBatch([]Request{{Preset: 0.1, Features: featureRow(rng)}}, nil)
	if len(decs) != 1 || decs[0].Reason != provenance.ReasonModel {
		t.Fatalf("post-rollback decision = %+v", decs)
	}
}

// TestModelGenStamping pins per-decision lineage attribution: every
// provenance record carries the generation of the model serving when it
// was recorded, across swaps.
func TestModelGenStamping(t *testing.T) {
	m := testModel(t, 52)
	m.Lineage = core.Lineage{Generation: 3, Source: core.SourceRefit}
	e, err := NewEngine(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableProvenance(64, provenance.MonitorOptions{})
	rng := rand.New(rand.NewSource(2))
	rows := []Request{
		{Preset: 0.1, Features: featureRow(rng)},
		{Preset: math.NaN(), Features: featureRow(rng)}, // rejected → fallback
	}
	e.DecideBatch(rows, nil)

	next := testModel(t, 53)
	next.Lineage = core.Lineage{Generation: 4, Parent: 3, Source: core.SourceRefit}
	if err := e.Swap(next); err != nil {
		t.Fatal(err)
	}
	e.DecideBatch(rows[:1], nil)

	recs := e.FlightRecorder().Snapshot(nil)
	if len(recs) != 3 {
		t.Fatalf("recorded %d decisions, want 3", len(recs))
	}
	for i, want := range []uint32{3, 3, 4} {
		if recs[i].ModelGen != want {
			t.Fatalf("record %d: ModelGen = %d, want %d (reason %s)", i, recs[i].ModelGen, want, recs[i].Reason)
		}
	}
}

// TestPredFeedback pins self-measured prediction error: a keyed client's
// next epoch stamps the realized error of the previous prediction, and a
// degraded epoch breaks the chain instead of fabricating an error.
func TestPredFeedback(t *testing.T) {
	e, err := NewEngine(testModel(t, 54), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableProvenance(64, provenance.MonitorOptions{})
	e.EnablePredFeedback()
	rng := rand.New(rand.NewSource(3))
	keyed := func() Request {
		return Request{Preset: 0.1, Features: featureRow(rng), GPU: 0, Cluster: 2}
	}

	// Epoch 1: no previous prediction, no error.
	r1 := keyed()
	d1 := e.DecideBatch([]Request{r1}, nil)[0]
	if d1.Reason != provenance.ReasonModel {
		t.Fatalf("epoch 1 reason = %s", d1.Reason)
	}

	// Epoch 2: realized instructions vs epoch 1's prediction.
	r2 := keyed()
	actual := d1.PredInstr * 1.25 // model under-predicted by 25%
	r2.Features[counters.IdxInstr] = actual
	d2 := e.DecideBatch([]Request{r2}, nil)[0]

	// An unkeyed row never participates.
	e.DecideBatch([]Request{{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}}, nil)

	// Epoch 3 for the key is degraded (hostile preset): epoch 2's
	// prediction is still realized by epoch 3's counters, but the chain
	// breaks — degraded epoch 3 makes no model prediction, so epoch 4
	// must carry no error again.
	r3 := keyed()
	r3.Preset = math.NaN()
	actual3 := d2.PredInstr * 0.8
	r3.Features[counters.IdxInstr] = actual3
	e.DecideBatch([]Request{r3}, nil)
	e.DecideBatch([]Request{keyed()}, nil)

	recs := e.FlightRecorder().Snapshot(nil)
	if len(recs) != 5 {
		t.Fatalf("recorded %d decisions, want 5", len(recs))
	}
	if recs[0].HasPredErr {
		t.Fatal("first epoch carries a prediction error")
	}
	if !recs[1].HasPredErr {
		t.Fatal("second epoch missing the realized prediction error")
	}
	want := (d1.PredInstr - actual) / d1.PredInstr
	if math.Abs(recs[1].PredErr-want) > 1e-12 {
		t.Fatalf("PredErr = %g, want %g", recs[1].PredErr, want)
	}
	if recs[2].HasPredErr {
		t.Fatal("unkeyed row carries a prediction error")
	}
	want3 := (d2.PredInstr - actual3) / d2.PredInstr
	if !recs[3].HasPredErr || math.Abs(recs[3].PredErr-want3) > 1e-12 {
		t.Fatalf("degraded epoch PredErr = %v/%g, want true/%g (epoch 2's realized prediction)",
			recs[3].HasPredErr, recs[3].PredErr, want3)
	}
	if recs[4].HasPredErr {
		t.Fatalf("epoch after chain break carries PredErr %g", recs[4].PredErr)
	}
	// The monitor's rolling MAPE is fed from the same feedback.
	wantMAPE := (math.Abs(want) + math.Abs(want3)) / 2
	if s := e.QualityMonitor().Stats(); s.ErrSamples != 2 || math.Abs(s.MAPE-wantMAPE) > 1e-12 {
		t.Fatalf("monitor stats = %+v, want 2 samples, MAPE %g", s, wantMAPE)
	}
}

// shadowRecorder is a test ShadowObserver: it counts observations and
// flags any row that was not a model-path decision — the shadow-mode
// invariant that an unvalidated candidate only ever *watches*.
type shadowRecorder struct {
	served   atomic.Int64
	nonModel atomic.Int64
	badFeats atomic.Int64
}

func (s *shadowRecorder) ObserveServed(row Request, d Decision) {
	s.served.Add(1)
	if d.Reason != provenance.ReasonModel {
		s.nonModel.Add(1)
	}
	for _, f := range row.Features {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			s.badFeats.Add(1)
			return
		}
	}
}

// TestShadowObserverUnderSwapAndFaults runs concurrent batches with
// injected faults and hostile rows while the model is hot-swapped and the
// observer is attached/detached mid-flight: the observer must see only
// model-path decisions with valid features, and detaching must stop the
// flow without disturbing serving.
func TestShadowObserverUnderSwapAndFaults(t *testing.T) {
	inj := faults.New(17)
	if err := inj.Arm(FaultInfer, faults.Spec{Kind: faults.KindPanic, Every: 89}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(testModel(t, 55), Options{Workers: 4, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	e.EnableProvenance(4096, provenance.MonitorOptions{})
	obs := &shadowRecorder{}
	e.SetShadow(obs)

	const (
		workers = 6
		batches = 50
		rowsPer = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			rows := make([]Request, rowsPer)
			var decs []Decision
			for b := 0; b < batches; b++ {
				for i := range rows {
					rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
				}
				if b%7 == 3 {
					rows[b%rowsPer].Features[0] = math.Inf(1)
				}
				decs = e.DecideBatch(rows, decs[:0])
				if len(decs) != rowsPer {
					t.Errorf("worker %d batch %d: %d decisions", w, b, len(decs))
					return
				}
			}
		}(w)
	}
	// Concurrent churn: hot-swaps and observer attach/detach cycles.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if err := e.Swap(testModel(t, int64(60+i))); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
			if i%5 == 4 {
				e.SetShadow(nil)
				time.Sleep(100 * time.Microsecond)
				e.SetShadow(obs)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}

	if obs.served.Load() == 0 {
		t.Fatal("shadow observer saw no traffic")
	}
	if n := obs.nonModel.Load(); n != 0 {
		t.Fatalf("shadow observer saw %d non-model decisions", n)
	}
	if n := obs.badFeats.Load(); n != 0 {
		t.Fatalf("shadow observer saw %d rows with invalid features", n)
	}
	// The observer sees a subset (detach windows), never more than the
	// model-path record count.
	var modelRecs int64
	for _, rec := range e.FlightRecorder().Snapshot(nil) {
		if rec.Reason == provenance.ReasonModel {
			modelRecs++
		}
	}
	if obs.served.Load() > modelRecs {
		t.Fatalf("observer saw %d rows, more than the %d model decisions", obs.served.Load(), modelRecs)
	}
}
