package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
)

func TestKeyedFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := []Request{
		{Preset: 0.1, Features: featureRow(rng), GPU: 0, Cluster: 0},
		{Preset: 0.2, Features: featureRow(rng), GPU: 17, Cluster: 23},
		{Preset: 0.3, Features: featureRow(rng), GPU: 1 << 20, Cluster: 5},
	}
	payload, err := AppendKeyedRequestFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeKeyedRequestFrame(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range got {
		if got[i].GPU != rows[i].GPU || got[i].Cluster != rows[i].Cluster || got[i].Preset != rows[i].Preset {
			t.Fatalf("row %d = (%d,%d,%g), want (%d,%d,%g)",
				i, got[i].GPU, got[i].Cluster, got[i].Preset, rows[i].GPU, rows[i].Cluster, rows[i].Preset)
		}
		for j := range got[i].Features {
			if got[i].Features[j] != rows[i].Features[j] {
				t.Fatalf("row %d feature %d differs", i, j)
			}
		}
	}

	decs := []Decision{
		{Level: 3, Reason: provenance.ReasonModel, PredInstr: 42.5, Shard: 0},
		{Level: 5, Reason: provenance.ReasonShed, PredInstr: 17, Shard: -1},
		{Level: 1, Reason: provenance.ReasonModel, PredInstr: 9, Shard: 2, Rerouted: true},
	}
	rp, err := AppendKeyedResponseFrame(nil, StatusOK, decs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeKeyedResponseFrame(rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != decs[i] {
			t.Fatalf("decision %d = %+v, want %+v", i, back[i], decs[i])
		}
	}
}

func TestKeyedRequestRejectsMissingIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: 3}}
	if _, err := AppendKeyedRequestFrame(nil, rows); err == nil {
		t.Fatal("keyed frame without gpu identity accepted")
	}
}

// TestServeConnSpeaksBothVersions drives one connection through hello
// negotiation, a v2 request, and a v3 keyed request — the same engine
// must answer all three.
func TestServeConnSpeaksBothVersions(t *testing.T) {
	srv, err := NewServer(testModel(t, 31), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hello, err := cl.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Version != VersionMax {
		t.Fatalf("negotiated version %d, want %d", hello.Version, VersionMax)
	}
	if hello.Router {
		t.Fatal("daemon claims to be a router")
	}

	rng := rand.New(rand.NewSource(31))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: 2, Cluster: 7}}

	// v2 on the same connection: identity is dropped on the wire.
	decs, err := cl.Decide(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 || decs[0].Shard != -1 {
		t.Fatalf("v2 decision = %+v", decs)
	}

	// v3 keyed on the same connection: a plain daemon answers with no
	// shard identity but accepts the keys.
	decs, err = cl.DecideKeyed(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 || decs[0].Shard != -1 || decs[0].Rerouted {
		t.Fatalf("keyed decision = %+v", decs)
	}
	if decs[0].Reason != provenance.ReasonModel {
		t.Fatalf("keyed decision reason = %v", decs[0].Reason)
	}
}

// TestKeyedRowsCarryClusterIntoProvenance sends keyed frames and checks
// the flight recorder attributes decisions to the requesting cluster.
func TestKeyedRowsCarryClusterIntoProvenance(t *testing.T) {
	srv, err := NewServer(testModel(t, 32), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(16, provenance.MonitorOptions{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(32))
	if _, err := cl.DecideKeyed([]Request{{Preset: 0.1, Features: featureRow(rng), GPU: 1, Cluster: 19}}); err != nil {
		t.Fatal(err)
	}
	recs := srv.FlightRecorder().Snapshot(nil)
	if len(recs) != 1 || recs[0].Cluster != 19 {
		t.Fatalf("recorded %d records, cluster %d; want 1 record for cluster 19", len(recs), recs[0].Cluster)
	}
}

// TestBadMagicGetsStructuredError sends garbage with a valid length
// prefix and expects a typed MsgError refusal, not a silent close.
func TestBadMagicGetsStructuredError(t *testing.T) {
	srv, err := NewServer(testModel(t, 33), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("GET / HTTP/1.1\r\n") // not our protocol
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(payload)))
	conn.Write(pre[:])
	conn.Write(payload)

	frame, err := readFrame(conn, nil)
	if err != nil {
		t.Fatalf("no structured error frame: %v", err)
	}
	perr := DecodeErrorFrame(frame)
	var pe *ProtoError
	if !errors.As(perr, &pe) || pe.Code != ErrCodeBadMagic {
		t.Fatalf("got %v, want ProtoError code %d", perr, ErrCodeBadMagic)
	}
}

// TestVersionMismatchGetsStructuredError offers a version range the
// server does not speak.
func TestVersionMismatchGetsStructuredError(t *testing.T) {
	srv, err := NewServer(testModel(t, 34), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A hello offering only versions far beyond what we implement.
	hello := AppendHelloFrame(nil, VersionMax+1, VersionMax+9)
	var pre [4]byte
	binary.BigEndian.PutUint32(pre[:], uint32(len(hello)))
	conn.Write(pre[:])
	conn.Write(hello)

	frame, err := readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pe *ProtoError
	if perr := DecodeErrorFrame(frame); !errors.As(perr, &pe) || pe.Code != ErrCodeVersion {
		t.Fatalf("got %v, want ProtoError code %d", perr, ErrCodeVersion)
	}
}

// TestDecide503InFallbackOnly forces the health machine into
// fallback-only and expects HTTP /decide to refuse with 503 +
// Retry-After (binary transport keeps serving fallback decisions).
func TestDecide503InFallbackOnly(t *testing.T) {
	inj := faults.New(7)
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindError, Every: 1}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(testModel(t, 35), Options{
		Faults: inj,
		Health: HealthOptions{FailThreshold: 2, ProbeEvery: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}}
	srv.decideBatch(rows, nil)
	srv.decideBatch(rows, nil)
	if got := srv.Health(); got != FallbackOnly {
		t.Fatalf("health = %s, want fallback-only", got)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"features": rows[0].Features, "preset": 0.1})
	resp, err := http.Post(ts.URL+"/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/decide in fallback-only: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	if got := srv.Metrics().Unavailable.Load(); got != 1 {
		t.Fatalf("unavailable counter = %d, want 1", got)
	}

	// The binary path still answers (fallback decisions), so the µs-scale
	// control loop is never starved.
	decs := srv.decideBatch(rows, nil)
	if len(decs) != 1 || decs[0].Reason != provenance.ReasonFallbackOnly {
		t.Fatalf("binary-path decision in fallback-only = %+v", decs)
	}
}
