package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/faults"
)

// TestDegradeInvalidRowsBinary feeds NaN/Inf/out-of-range rows through the
// binary protocol: every row must still get a decision, with the invalid
// ones answered by the analytical fallback and counted.
func TestDegradeInvalidRowsBinary(t *testing.T) {
	srv, err := NewServer(testModel(t, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	defer client.Close()

	rng := rand.New(rand.NewSource(20))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
	}
	rows[1].Features[3] = math.NaN()
	rows[3].Features[0] = math.Inf(1)
	rows[5].Features[10] = -2e15 // beyond ±maxFeature
	rows[6].Preset = math.NaN()

	decs, err := NewClient(client).Decide(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(rows) {
		t.Fatalf("got %d decisions for %d rows", len(decs), len(rows))
	}
	m := srv.Model()
	for i, d := range decs {
		if d.Level < 0 || d.Level >= m.Levels {
			t.Fatalf("row %d: level %d out of range", i, d.Level)
		}
	}
	if got := srv.Metrics().RejectedRows.Load(); got != 4 {
		t.Fatalf("rejected rows = %d, want 4", got)
	}
	if got := srv.Metrics().Fallbacks.Load(); got != 4 {
		t.Fatalf("fallback decisions = %d, want 4", got)
	}
	// The fallback must agree with the analytical baseline directly.
	wantLevel, _ := baselines.FallbackDecision(srv.table, rows[1].Features, rows[1].Preset)
	if decs[1].Level != wantLevel {
		t.Fatalf("fallback level = %d, want %d", decs[1].Level, wantLevel)
	}
	// A clean validation pass is not a model failure: health stays intact.
	if got := srv.Health(); got != Healthy {
		t.Fatalf("health = %s after rejected rows, want healthy", got)
	}
}

// TestDegradeInvalidRowsHTTP sends a finite but out-of-range feature over
// HTTP (JSON cannot carry NaN): the request succeeds via the fallback.
func TestDegradeInvalidRowsHTTP(t *testing.T) {
	srv, err := NewServer(testModel(t, 21), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(21))
	feats := featureRow(rng)
	feats[2] = 1e20 // beyond maxFeature
	body, _ := json.Marshal(map[string]any{"features": feats, "preset": 0.1})
	resp, err := http.Post(ts.URL+"/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decide with out-of-range feature: status %d, want 200 (fallback)", resp.StatusCode)
	}
	var dec httpDecision
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if dec.Level < 0 || dec.Level >= srv.Model().Levels {
		t.Fatalf("fallback level %d out of range", dec.Level)
	}
	if got := srv.Metrics().RejectedRows.Load(); got != 1 {
		t.Fatalf("rejected rows = %d, want 1", got)
	}
}

// TestDegradePanicRecovery arms a panic fault inside the model loop: the
// batch must still be fully answered and the panic counted.
func TestDegradePanicRecovery(t *testing.T) {
	inj := faults.New(1)
	if err := inj.Arm(FaultInfer, faults.Spec{Kind: faults.KindPanic, Every: 3}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(testModel(t, 22), Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
	}
	decs := srv.decideBatch(rows, nil)
	if len(decs) != len(rows) {
		t.Fatalf("got %d decisions for %d rows", len(decs), len(rows))
	}
	if got := srv.Metrics().RecoveredPanics.Load(); got == 0 {
		t.Fatal("no recovered panics counted")
	}
	if got := srv.Metrics().Fallbacks.Load(); got == 0 {
		t.Fatal("rows after the panic were not degraded to the fallback")
	}
	if got := srv.Health(); got == Healthy {
		t.Fatal("health still healthy after a model panic")
	}
}

// TestDegradeDeadlineBudget sets an unmeetable budget: the batch degrades
// to the fallback and the miss is counted.
func TestDegradeDeadlineBudget(t *testing.T) {
	srv, err := NewServer(testModel(t, 23), Options{Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	rows := make([]Request, 4)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
	}
	decs := srv.decideBatch(rows, nil)
	if len(decs) != len(rows) {
		t.Fatalf("got %d decisions for %d rows", len(decs), len(rows))
	}
	if got := srv.Metrics().DeadlineMisses.Load(); got == 0 {
		t.Fatal("no deadline misses counted")
	}
	if got := srv.Metrics().Fallbacks.Load(); got == 0 {
		t.Fatal("no fallback decisions counted")
	}
}

// TestHealthStateMachine drives the server through the full healthy →
// degraded → fallback-only → healthy cycle with a fire-limited fault.
func TestHealthStateMachine(t *testing.T) {
	inj := faults.New(2)
	// Exactly 3 failures, then clean forever.
	if err := inj.Arm(FaultDecide, faults.Spec{Kind: faults.KindError, Every: 1, Limit: 3}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(testModel(t, 24), Options{
		Faults: inj,
		Health: HealthOptions{FailThreshold: 3, RestoreProbes: 2, ProbeEvery: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng)}}
	batch := func() {
		t.Helper()
		if decs := srv.decideBatch(rows, nil); len(decs) != 1 {
			t.Fatalf("batch not fully answered: %d decisions", len(decs))
		}
	}

	batch()
	if got := srv.Health(); got != Degraded {
		t.Fatalf("after 1 failure: %s, want degraded", got)
	}
	batch()
	batch()
	if got := srv.Health(); got != FallbackOnly {
		t.Fatalf("after 3 failures: %s, want fallback-only", got)
	}

	// Fallback-only must report 503 while still serving decisions.
	rec := httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz in fallback-only: %d, want 503", rec.Code)
	}
	var hz struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.State != "fallback-only" {
		t.Fatalf("/healthz state = %q", hz.State)
	}

	// The fault is exhausted; probe batches (every 2nd) must restore
	// health after 2 clean probes within a handful of batches.
	for i := 0; i < 8 && srv.Health() != Healthy; i++ {
		batch()
	}
	if got := srv.Health(); got != Healthy {
		t.Fatalf("server did not recover: %s", got)
	}
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz after recovery: %d, want 200", rec.Code)
	}
}

// TestReloadKeepsOldModelOnCorruptFile covers the three corrupt-artifact
// paths: garbage bytes, a truncated valid artifact, and a fault-injected
// post-load corruption that only swap-time validation can catch. In every
// case the old model keeps serving and Reload returns a *ReloadError.
func TestReloadKeepsOldModelOnCorruptFile(t *testing.T) {
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.json")
	if err := testModel(t, 25).SaveFile(goodPath); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	garbagePath := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbagePath, []byte("{not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(truncPath, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(testModel(t, 26), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Model()

	for _, path := range []string{garbagePath, truncPath} {
		err := srv.Reload(path)
		var re *ReloadError
		if !errors.As(err, &re) {
			t.Fatalf("reload of %s: error %v, want *ReloadError", path, err)
		}
		if re.Stage != "load" {
			t.Fatalf("reload of %s failed at %q, want \"load\"", path, re.Stage)
		}
		if srv.Model() != before {
			t.Fatalf("reload of %s replaced the served model", path)
		}
	}

	// A valid file corrupted after loading (simulated bit-flip): the
	// swap-time validation must reject it.
	inj := faults.New(3)
	if err := inj.Arm(FaultReload, faults.Spec{Kind: faults.KindCorrupt, Every: 1}); err != nil {
		t.Fatal(err)
	}
	srv.faults = inj
	err = srv.Reload(goodPath)
	var re *ReloadError
	if !errors.As(err, &re) {
		t.Fatalf("corrupt reload: error %v, want *ReloadError", err)
	}
	if re.Stage != "swap" {
		t.Fatalf("corrupt reload failed at %q, want \"swap\"", re.Stage)
	}
	if srv.Model() != before {
		t.Fatal("corrupt reload replaced the served model")
	}
	if got := srv.Metrics().Reloads.Load(); got != 0 {
		t.Fatalf("failed reloads counted as successes: %d", got)
	}

	// With the fault disarmed the same file swaps in cleanly.
	srv.faults = nil
	if err := srv.Reload(goodPath); err != nil {
		t.Fatal(err)
	}
	if srv.Model() == before {
		t.Fatal("successful reload did not replace the model")
	}
}

// TestSnapshotJSONBackCompat pins the /metrics JSON shape: a server that
// never degrades must not emit the new counter keys at all, so pre-fault
// scrapers see byte-identical output.
func TestSnapshotJSONBackCompat(t *testing.T) {
	srv, err := NewServer(testModel(t, 27), Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := json.Marshal(srv.Metrics().Snapshot(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fallback_decisions", "recovered_panics", "rejected_rows", "deadline_misses"} {
		if bytes.Contains(clean, []byte(key)) {
			t.Fatalf("clean snapshot leaks %q: %s", key, clean)
		}
	}

	srv.Metrics().Fallbacks.Add(1)
	srv.Metrics().RecoveredPanics.Add(1)
	srv.Metrics().RejectedRows.Add(1)
	srv.Metrics().DeadlineMisses.Add(1)
	dirty, err := json.Marshal(srv.Metrics().Snapshot(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fallback_decisions", "recovered_panics", "rejected_rows", "deadline_misses"} {
		if !bytes.Contains(dirty, []byte(key)) {
			t.Fatalf("degraded snapshot missing %q: %s", key, dirty)
		}
	}
}

// TestDecideBatchNoAllocsNilInjector guards the zero-cost contract: with
// no injector armed and clean traffic, the batch path must not allocate.
func TestDecideBatchNoAllocsNilInjector(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector")
	}
	srv, err := NewServer(testModel(t, 28), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(28))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
	}
	decs := make([]Decision, 0, len(rows))
	decs = srv.decideBatch(rows, decs[:0]) // warm the inference pool

	allocs := testing.AllocsPerRun(200, func() {
		decs = srv.decideBatch(rows, decs[:0])
	})
	if allocs != 0 {
		t.Fatalf("decideBatch allocates %.1f objects/op with nil injector, want 0", allocs)
	}
}
