//go:build race

package serve

// raceEnabled lets allocation-count guards skip under the race detector,
// which makes sync.Pool deliberately drop and bypass its caches.
const raceEnabled = true
