package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/quant"
	"ssmdvfs/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// ModelPath, when set, is the file Reload re-reads on SIGHUP or
	// POST /reload without an explicit path.
	ModelPath string
	// QuantBits, when non-zero, fake-quantizes every loaded model to the
	// given symmetric bit width (the INT-MAC deployment configuration).
	QuantBits int
	// Workers bounds concurrent inference batches across all transports;
	// 0 means GOMAXPROCS.
	Workers int
	// Logf receives progress messages; nil silences them.
	Logf func(format string, args ...any)
}

// Server serves DVFS decisions from a hot-swappable model. One Server
// may simultaneously serve the binary TCP protocol (ServeConn/ServeTCP)
// and HTTP (Handler); all transports share the model pointer, the
// bounded worker pool, and the metrics.
type Server struct {
	opts    Options
	model   atomic.Pointer[core.Model]
	metrics *Metrics
	sem     chan struct{}

	infPool sync.Pool // *core.Inference
	bufPool sync.Pool // *connBuffers

	mu    sync.Mutex // serializes Reload
	conns sync.Map   // net.Conn → struct{}, for Close
	ls    sync.Map   // net.Listener → struct{}, for Close
}

// connBuffers is the per-batch scratch a transport needs: frame bytes,
// decoded rows, and encoded decisions.
type connBuffers struct {
	frame []byte
	rows  []Request
	decs  []Decision
	out   []byte
}

// NewServer builds a server around an initial model.
func NewServer(m *core.Model, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:    opts,
		metrics: newMetrics(telemetry.NewRegistry()),
		sem:     make(chan struct{}, opts.Workers),
	}
	s.model.Store(m)
	s.infPool.New = func() any { return core.NewInference(m) }
	s.bufPool.New = func() any { return &connBuffers{} }
	return s, nil
}

// LoadModel reads a model file and, if quantBits > 0, fake-quantizes it —
// the loader behind both daemon startup and hot reload, accepting the
// plain and compressed artifacts interchangeably (they share one format).
func LoadModel(path string, quantBits int) (*core.Model, error) {
	m, err := core.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if quantBits > 0 {
		if m, err = quant.QuantizeModel(m, quantBits); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Model returns the currently served model.
func (s *Server) Model() *core.Model { return s.model.Load() }

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Telemetry exposes the registry hosting the server's metrics, for the
// Prometheus exposition and for daemons that add their own series.
func (s *Server) Telemetry() *telemetry.Registry { return s.metrics.Registry() }

// Swap atomically replaces the served model. In-flight batches finish on
// the model they started with; new batches see the new one immediately.
func (s *Server) Swap(m *core.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	if m.Levels > maxLevels {
		return fmt.Errorf("serve: model has %d levels, metrics support %d", m.Levels, maxLevels)
	}
	s.model.Store(m)
	s.metrics.Reloads.Add(1)
	return nil
}

// Reload loads path (or the configured ModelPath when path is empty) and
// swaps it in. Concurrent reloads are serialized; decisions never block.
func (s *Server) Reload(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if path == "" {
		path = s.opts.ModelPath
	}
	if path == "" {
		return fmt.Errorf("serve: no model path configured for reload")
	}
	m, err := LoadModel(path, s.opts.QuantBits)
	if err != nil {
		s.metrics.Errors.Add(1)
		return err
	}
	if err := s.Swap(m); err != nil {
		s.metrics.Errors.Add(1)
		return err
	}
	s.opts.Logf("serve: reloaded model from %s (%d params, %d FLOPs)", path, m.Params(), m.FLOPs())
	return nil
}

// decideBatch runs the model over rows, appending one Decision per row
// to decs. It acquires a worker-pool slot, so at most Options.Workers
// batches run the model at once regardless of connection count.
func (s *Server) decideBatch(rows []Request, decs []Decision) []Decision {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	inf := s.infPool.Get().(*core.Inference)
	inf.Bind(s.model.Load())
	for _, row := range rows {
		level, pred := inf.Decide(row.Features, row.Preset)
		s.metrics.ObserveLevel(level)
		decs = append(decs, Decision{Level: level, PredInstr: pred})
	}
	s.infPool.Put(inf)
	return decs
}

// ServeConn handles one binary-protocol connection until EOF or error.
func (s *Server) ServeConn(conn net.Conn) {
	s.metrics.Conns.Add(1)
	s.conns.Store(conn, struct{}{})
	defer func() {
		s.conns.Delete(conn)
		s.metrics.Conns.Add(-1)
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	bufs := s.bufPool.Get().(*connBuffers)
	defer s.bufPool.Put(bufs)

	for {
		frame, err := readFrame(br, bufs.frame)
		if err != nil {
			// EOF and closed/truncated connections are normal client
			// departures; anything else (oversized frame) is a protocol
			// error worth counting.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.metrics.Errors.Add(1)
			}
			return
		}
		bufs.frame = frame[:cap(frame)]

		start := time.Now()
		rows, err := DecodeRequestFrame(frame, bufs.rows)
		if err != nil {
			// Protocol violation: report and drop the connection, since
			// framing can no longer be trusted.
			s.metrics.Errors.Add(1)
			if out, eerr := AppendResponseFrame(bufs.out[:0], StatusError, nil); eerr == nil {
				writeFrame(bw, out)
				bw.Flush()
			}
			return
		}
		bufs.rows = rows

		bufs.decs = s.decideBatch(rows, bufs.decs[:0])
		out, err := AppendResponseFrame(bufs.out[:0], StatusOK, bufs.decs)
		if err != nil {
			s.metrics.Errors.Add(1)
			return
		}
		bufs.out = out
		if err := writeFrame(bw, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.metrics.ObserveBatch(len(rows), time.Since(start))
	}
}

// ServeTCP accepts binary-protocol connections on l, one goroutine per
// connection, until the listener is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	s.ls.Store(l, struct{}{})
	defer s.ls.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close shuts down every listener and open binary connection.
func (s *Server) Close() {
	s.ls.Range(func(k, _ any) bool {
		k.(net.Listener).Close()
		return true
	})
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
}

// httpRow mirrors Request in JSON.
type httpRow struct {
	Features []float64 `json:"features"`
	Preset   float64   `json:"preset"`
}

// httpDecision mirrors Decision in JSON.
type httpDecision struct {
	Level     int     `json:"level"`
	PredInstr float64 `json:"predicted_instructions"`
}

// Handler returns the HTTP API:
//
//	POST /decide   {"features":[...47],"preset":0.1} or {"rows":[...]}
//	GET  /metrics  counters + latency histogram + level distribution
//	POST /reload   {"path":"..."} (path optional; defaults to ModelPath)
//	GET  /model    served model info
//	GET  /healthz  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decide", s.handleDecide)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.metrics.Errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		httpRow
		Rows []httpRow `json:"rows"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxFrame)).Decode(&body); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	single := body.Rows == nil
	if single {
		body.Rows = []httpRow{body.httpRow}
	}
	if len(body.Rows) > MaxBatch {
		s.httpError(w, http.StatusBadRequest, "batch of %d rows exceeds %d", len(body.Rows), MaxBatch)
		return
	}
	rows := make([]Request, len(body.Rows))
	for i, hr := range body.Rows {
		if len(hr.Features) != counters.Num {
			s.httpError(w, http.StatusBadRequest, "row %d has %d features, want %d", i, len(hr.Features), counters.Num)
			return
		}
		rows[i] = Request{Preset: hr.Preset, Features: hr.Features}
	}

	start := time.Now()
	decs := s.decideBatch(rows, nil)
	s.metrics.ObserveBatch(len(rows), time.Since(start))

	out := make([]httpDecision, len(decs))
	for i, d := range decs {
		out[i] = httpDecision{Level: d.Level, PredInstr: d.PredInstr}
	}
	w.Header().Set("Content-Type", "application/json")
	if single {
		json.NewEncoder(w).Encode(out[0])
		return
	}
	json.NewEncoder(w).Encode(struct {
		Rows []httpDecision `json:"rows"`
	}{out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.metrics.Snapshot(s.Model().Levels))
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Path string `json:"path"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	if err := s.Reload(body.Path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	m := s.Model()
	json.NewEncoder(w).Encode(struct {
		Reloaded bool  `json:"reloaded"`
		Params   int   `json:"params"`
		Reloads  int64 `json:"reloads"`
	}{true, m.Params(), s.metrics.Reloads.Load()})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.Model()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Levels         int   `json:"levels"`
		Features       int   `json:"features"`
		Params         int   `json:"params"`
		FLOPs          int   `json:"flops"`
		EffectiveFLOPs int   `json:"effective_flops"`
		QuantBits      int   `json:"quant_bits,omitempty"`
		Reloads        int64 `json:"reloads"`
	}{m.Levels, m.NumFeatures(), m.Params(), m.FLOPs(), m.EffectiveFLOPs(), s.opts.QuantBits, s.metrics.Reloads.Load()})
}
