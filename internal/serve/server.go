package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// Canonical fault-injection site names the serving path evaluates. All
// sites are nil-safe no-ops unless Options.Faults arms them.
const (
	// FaultDecide fires once per batch before the model runs — arm a
	// latency kind here to blow the decision budget.
	FaultDecide = "serve.decide"
	// FaultInfer fires once per row inside the model loop — arm panic or
	// error kinds to take down individual inferences.
	FaultInfer = "serve.infer"
	// FaultReload fires on model reload: error kinds fail the load,
	// corrupt kinds poison the freshly loaded model so validation must
	// catch it (the old model keeps serving either way).
	FaultReload = "serve.reload"
	// FaultSwap fires on model swap (error kinds reject the swap).
	FaultSwap = "serve.swap"
	// FaultConn fires once per binary-protocol frame; an error kind drops
	// the connection, exercising client reconnect.
	FaultConn = "serve.conn"
)

// Server is the transport layer around an Engine: it speaks the binary
// protocol (v2 unkeyed and v3 keyed frames, with hello/ack version
// negotiation and structured protocol errors) over TCP and JSON over
// HTTP. One Server may serve both transports simultaneously; they share
// the Engine's model pointer, worker pool, and metrics.
type Server struct {
	*Engine

	bufPool sync.Pool // *connBuffers

	conns sync.Map // net.Conn → struct{}, for Close
	ls    sync.Map // net.Listener → struct{}, for Close
}

// connBuffers is the per-batch scratch a transport needs: frame bytes,
// decoded rows, and encoded decisions.
type connBuffers struct {
	frame []byte
	rows  []Request
	decs  []Decision
	out   []byte
}

// NewServer builds a server around an initial model.
func NewServer(m *core.Model, opts Options) (*Server, error) {
	e, err := NewEngine(m, opts)
	if err != nil {
		return nil, err
	}
	return NewServerEngine(e), nil
}

// NewServerEngine wraps an existing decision engine in the transport
// layer — the constructor for embedders that built the Engine themselves.
func NewServerEngine(e *Engine) *Server {
	s := &Server{Engine: e}
	s.bufPool.New = func() any { return &connBuffers{} }
	return s
}

// ServeConn handles one binary-protocol connection until EOF or error.
// It speaks both frame generations: v2 unkeyed decide frames (old
// clients) and v3 keyed batch frames, answering each request in the
// dialect it arrived in. MsgHello frames negotiate the protocol version;
// frames with a bad magic or an unsupported version are answered with a
// structured MsgError frame before the connection drops, so a mismatched
// peer gets a typed refusal instead of a hung read.
func (s *Server) ServeConn(conn net.Conn) {
	s.metrics.Conns.Add(1)
	s.conns.Store(conn, struct{}{})
	defer func() {
		s.conns.Delete(conn)
		s.metrics.Conns.Add(-1)
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	bufs := s.bufPool.Get().(*connBuffers)
	defer s.bufPool.Put(bufs)

	for {
		// An armed error fault here simulates an infrastructure-level
		// connection drop: the conn closes and the client's reconnect
		// logic takes over. Not counted as a protocol error.
		if err := s.faults.Inject(FaultConn); err != nil {
			return
		}
		frame, err := readFrame(br, bufs.frame)
		if err != nil {
			// EOF and closed/truncated connections are normal client
			// departures; anything else (oversized frame) is a protocol
			// error worth counting.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.metrics.Errors.Add(1)
			}
			return
		}
		bufs.frame = frame[:cap(frame)]

		if !s.serveFrame(bw, bufs, frame) {
			return
		}
	}
}

// serveFrame answers one request frame, reporting whether the connection
// is still usable.
func (s *Server) serveFrame(bw *bufio.Writer, bufs *connBuffers, frame []byte) bool {
	_, msgType, err := parseHeader(frame)
	if err != nil {
		// Not our protocol (or a version we do not speak): refuse with a
		// structured error so the peer does not hang on a silent close.
		s.metrics.Errors.Add(1)
		s.writeError(bw, err)
		return false
	}

	switch msgType {
	case MsgHello:
		minVer, maxVer, err := DecodeHelloFrame(frame)
		if err != nil {
			s.metrics.Errors.Add(1)
			s.writeError(bw, err)
			return false
		}
		if int(minVer) > VersionMax || int(maxVer) < VersionMin {
			s.metrics.Errors.Add(1)
			s.writeError(bw, &ProtoError{Code: ErrCodeVersion,
				Msg: fmt.Sprintf("no common version: client %d..%d, server %d..%d", minVer, maxVer, VersionMin, VersionMax)})
			return false
		}
		ver := VersionMax
		if int(maxVer) < ver {
			ver = int(maxVer)
		}
		bufs.out = AppendHelloAckFrame(bufs.out[:0], s.helloAck(ver))
		return writeFrame(bw, bufs.out) == nil && bw.Flush() == nil

	case MsgDecide, MsgDecideKeyed, MsgDecideTraced:
		start := time.Now()
		var rows []Request
		var tc telemetry.TraceContext
		switch msgType {
		case MsgDecideKeyed:
			rows, err = DecodeKeyedRequestFrame(frame, bufs.rows)
		case MsgDecideTraced:
			rows, tc, err = DecodeTracedRequestFrame(frame, bufs.rows)
		default:
			rows, err = DecodeRequestFrame(frame, bufs.rows)
		}
		if err != nil {
			// Protocol violation: report and drop the connection, since
			// framing can no longer be trusted.
			s.metrics.Errors.Add(1)
			s.writeError(bw, &ProtoError{Code: ErrCodeBadFrame, Msg: err.Error()})
			return false
		}
		bufs.rows = rows
		if tc.Sampled() {
			// Retrospective decode span: the frame's trace context is only
			// known after decoding, so stamp the interval after the fact.
			dsp := s.tracer.StartSpanAt(tc, "engine.decode", start)
			dsp.EndAt(time.Now())
		}

		var out []byte
		var inferUs uint32
		switch msgType {
		case MsgDecideTraced:
			bufs.decs, inferUs = s.DecideBatchTraced(rows, bufs.decs[:0], tc)
			out, err = AppendTracedResponseFrame(bufs.out[:0], StatusOK, bufs.decs, tc.TraceID, HopTimings{InferUs: inferUs})
		case MsgDecideKeyed:
			bufs.decs = s.decideBatch(rows, bufs.decs[:0])
			out, err = AppendKeyedResponseFrame(bufs.out[:0], StatusOK, bufs.decs)
		default:
			bufs.decs = s.decideBatch(rows, bufs.decs[:0])
			out, err = AppendResponseFrame(bufs.out[:0], StatusOK, bufs.decs)
		}
		if err != nil {
			s.metrics.Errors.Add(1)
			return false
		}
		bufs.out = out
		if err := writeFrame(bw, out); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		s.metrics.ObserveBatchTraced(len(rows), time.Since(start), tc.TraceID)
		return true

	default:
		s.metrics.Errors.Add(1)
		s.writeError(bw, &ProtoError{Code: ErrCodeBadFrame,
			Msg: fmt.Sprintf("unexpected message type %d", msgType)})
		return false
	}
}

// helloAck describes this server in version negotiation: a single-GPU
// daemon (routers override this in their own transport). Tracing is a
// protocol capability — advertised whether or not a span tracer is
// currently attached, since traced frames decode fine either way. The
// backend advertisement lets a fleet router verify every replica serves
// with the backend the operator expects before admitting it to the ring.
func (s *Server) helloAck(version int) Hello {
	return Hello{Version: version, Tracing: version >= Version3,
		Backend: s.BackendKind(), Generation: s.Generation()}
}

// writeError best-effort sends a structured protocol error frame. err is
// wrapped into an ErrCodeBadFrame ProtoError when it is not one already.
func (s *Server) writeError(bw *bufio.Writer, err error) {
	var pe *ProtoError
	if !errors.As(err, &pe) {
		pe = &ProtoError{Code: ErrCodeBadFrame, Msg: err.Error()}
	}
	if werr := writeFrame(bw, AppendErrorFrame(nil, pe.Code, pe.Msg)); werr == nil {
		bw.Flush()
	}
}

// ServeTCP accepts binary-protocol connections on l, one goroutine per
// connection, until the listener is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	s.ls.Store(l, struct{}{})
	defer s.ls.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close shuts down every listener and open binary connection.
func (s *Server) Close() {
	s.ls.Range(func(k, _ any) bool {
		k.(net.Listener).Close()
		return true
	})
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
}

// httpRow mirrors Request in JSON.
type httpRow struct {
	Features []float64 `json:"features"`
	Preset   float64   `json:"preset"`
}

// httpDecision mirrors Decision in JSON.
type httpDecision struct {
	Level     int     `json:"level"`
	Reason    string  `json:"reason"`
	PredInstr float64 `json:"predicted_instructions"`
}

// Handler returns the HTTP API:
//
//	POST /decide   {"features":[...47],"preset":0.1} or {"rows":[...]}
//	               (503 + Retry-After while the health state machine is
//	               fallback-only, so fleet routers reroute instead of
//	               accepting degraded answers)
//	GET  /metrics  counters + latency histogram + level distribution
//	POST /reload   {"path":"..."} (path optional; defaults to ModelPath)
//	GET  /model    served model info
//	GET  /healthz  degradation state (healthy/degraded → 200,
//	               fallback-only → 503; decisions are still served)
//	GET  /debug/decisions  flight-recorder ring dump (404 unless
//	               provenance is enabled); ?n= caps the rows returned,
//	               ?cluster=, ?reason= and ?trace= (hex trace ID, as
//	               carried by histogram exemplars) filter them
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decide", s.handleDecide)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/decisions", s.handleDecisions)
	mux.HandleFunc("/debug/ledger", s.handleLedger)
	return mux
}

// handleLedger serves the efficiency ledger snapshot — the per-replica
// payload the fleet router scrapes and merges. 404 when no ledger is
// installed so scrapers can tell "disabled" from "empty".
func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	l := s.Ledger()
	if l == nil {
		http.Error(w, "ledger disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	if err := l.Snapshot().WriteJSON(w); err != nil {
		s.opts.Logf("serve: ledger write: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.health.State()
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	if st == FallbackOnly {
		// Still serving (every request gets a fallback decision), but
		// signal orchestrators that the model path is down.
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	lin := s.Model().Lineage
	json.NewEncoder(w).Encode(struct {
		State               string            `json:"state"`
		Backend             string            `json:"backend"`
		Generation          int               `json:"generation,omitempty"`
		ModelSource         string            `json:"model_source,omitempty"`
		ConsecutiveFailures int64             `json:"consecutive_failures,omitempty"`
		FallbackDecisions   int64             `json:"fallback_decisions,omitempty"`
		RecoveredPanics     int64             `json:"recovered_panics,omitempty"`
		DeadlineMisses      int64             `json:"deadline_misses,omitempty"`
		Build               map[string]string `json:"build,omitempty"`
	}{
		State:               st.String(),
		Backend:             string(s.BackendKind()),
		Generation:          lin.Generation,
		ModelSource:         lin.Source,
		ConsecutiveFailures: s.health.Failures(),
		FallbackDecisions:   s.metrics.Fallbacks.Load(),
		RecoveredPanics:     s.metrics.RecoveredPanics.Load(),
		DeadlineMisses:      s.metrics.DeadlineMisses.Load(),
		Build:               buildinfo.Info(),
	})
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.metrics.Errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.health.State() == FallbackOnly {
		// The model path is down. The binary protocol keeps answering with
		// fallback decisions (a µs-scale DVFS loop needs *an* answer), but
		// HTTP callers are load balancers and fleet routers that can do
		// better than a degraded answer: tell them to reroute and when to
		// come back. Recovery probes keep running on the binary transport.
		s.metrics.Unavailable.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "model path down (fallback-only); reroute or retry", http.StatusServiceUnavailable)
		return
	}
	var body struct {
		httpRow
		Rows []httpRow `json:"rows"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxFrame)).Decode(&body); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	single := body.Rows == nil
	if single {
		body.Rows = []httpRow{body.httpRow}
	}
	if len(body.Rows) > MaxBatch {
		s.httpError(w, http.StatusBadRequest, "batch of %d rows exceeds %d", len(body.Rows), MaxBatch)
		return
	}
	rows := make([]Request, len(body.Rows))
	for i, hr := range body.Rows {
		if len(hr.Features) != counters.Num {
			s.httpError(w, http.StatusBadRequest, "row %d has %d features, want %d", i, len(hr.Features), counters.Num)
			return
		}
		rows[i] = Request{Preset: hr.Preset, Features: hr.Features, GPU: -1, Cluster: -1}
	}

	start := time.Now()
	decs := s.decideBatch(rows, nil)
	s.metrics.ObserveBatch(len(rows), time.Since(start))

	out := make([]httpDecision, len(decs))
	for i, d := range decs {
		out[i] = httpDecision{Level: d.Level, Reason: d.Reason.String(), PredInstr: d.PredInstr}
	}
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	if single {
		json.NewEncoder(w).Encode(out[0])
		return
	}
	json.NewEncoder(w).Encode(struct {
		Rows []httpDecision `json:"rows"`
	}{out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	json.NewEncoder(w).Encode(s.metrics.Snapshot(s.Model().Levels))
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Path string `json:"path"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	if err := s.Reload(body.Path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	m := s.Model()
	json.NewEncoder(w).Encode(struct {
		Reloaded bool  `json:"reloaded"`
		Params   int   `json:"params"`
		Reloads  int64 `json:"reloads"`
	}{true, m.Params(), s.metrics.Reloads.Load()})
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if s.prov == nil {
		http.Error(w, "flight recorder not enabled (start with -flightrec)", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
	}
	var cluster int64
	hasCluster := false
	if v := q.Get("cluster"); v != "" {
		var err error
		if cluster, err = strconv.ParseInt(v, 10, 32); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad cluster %q", v)
			return
		}
		hasCluster = true
	}
	var reason provenance.Reason
	hasReason := false
	if v := q.Get("reason"); v != "" {
		var err error
		if reason, err = provenance.ParseReason(v); err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		hasReason = true
	}
	var traceID uint64
	if v := q.Get("trace"); v != "" {
		var err error
		if traceID, err = telemetry.ParseTraceID(v); err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	recs := s.prov.Snapshot(nil)
	kept := recs[:0]
	for _, rec := range recs {
		if hasCluster && rec.Cluster != int32(cluster) {
			continue
		}
		if hasReason && rec.Reason != reason {
			continue
		}
		if traceID != 0 && rec.TraceID != traceID {
			continue
		}
		kept = append(kept, rec)
	}
	if n > 0 && len(kept) > n {
		kept = kept[len(kept)-n:] // newest n, still oldest-first
	}
	w.Header().Set("Content-Type", telemetry.ContentTypeNDJSON)
	provenance.WriteRecords(w, s.provHeader(), kept)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.Model()
	w.Header().Set("Content-Type", telemetry.ContentTypeJSON)
	json.NewEncoder(w).Encode(struct {
		Levels         int   `json:"levels"`
		Features       int   `json:"features"`
		Params         int   `json:"params"`
		FLOPs          int   `json:"flops"`
		EffectiveFLOPs int   `json:"effective_flops"`
		QuantBits      int   `json:"quant_bits,omitempty"`
		Reloads        int64 `json:"reloads"`
	}{m.Levels, m.NumFeatures(), m.Params(), m.FLOPs(), m.EffectiveFLOPs(), s.opts.QuantBits, s.metrics.Reloads.Load()})
}
