package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/quant"
	"ssmdvfs/internal/telemetry"
)

// Canonical fault-injection site names the serving path evaluates. All
// sites are nil-safe no-ops unless Options.Faults arms them.
const (
	// FaultDecide fires once per batch before the model runs — arm a
	// latency kind here to blow the decision budget.
	FaultDecide = "serve.decide"
	// FaultInfer fires once per row inside the model loop — arm panic or
	// error kinds to take down individual inferences.
	FaultInfer = "serve.infer"
	// FaultReload fires on model reload: error kinds fail the load,
	// corrupt kinds poison the freshly loaded model so validation must
	// catch it (the old model keeps serving either way).
	FaultReload = "serve.reload"
	// FaultSwap fires on model swap (error kinds reject the swap).
	FaultSwap = "serve.swap"
	// FaultConn fires once per binary-protocol frame; an error kind drops
	// the connection, exercising client reconnect.
	FaultConn = "serve.conn"
)

// Options configures a Server.
type Options struct {
	// ModelPath, when set, is the file Reload re-reads on SIGHUP or
	// POST /reload without an explicit path.
	ModelPath string
	// QuantBits, when non-zero, fake-quantizes every loaded model to the
	// given symmetric bit width (the INT-MAC deployment configuration).
	QuantBits int
	// Workers bounds concurrent inference batches across all transports;
	// 0 means GOMAXPROCS.
	Workers int
	// Logf receives progress messages; nil silences them.
	Logf func(format string, args ...any)
	// Table is the operating-point table the analytical fallback decides
	// over; nil means the TitanX table used throughout the project.
	Table *clockdomain.Table
	// Budget, when positive, bounds how long one batch may spend in the
	// model before the remaining rows degrade to the analytical fallback
	// (a deadline miss). Zero disables the budget.
	Budget time.Duration
	// Faults optionally injects deterministic faults at the Fault* sites.
	// Nil (the default) keeps the hot path allocation-free and fault-free.
	Faults *faults.Injector
	// Health tunes the degradation state machine.
	Health HealthOptions
}

// Server serves DVFS decisions from a hot-swappable model. One Server
// may simultaneously serve the binary TCP protocol (ServeConn/ServeTCP)
// and HTTP (Handler); all transports share the model pointer, the
// bounded worker pool, and the metrics.
type Server struct {
	opts    Options
	model   atomic.Pointer[core.Model]
	metrics *Metrics
	sem     chan struct{}
	table   *clockdomain.Table
	health  *health
	faults  *faults.Injector

	// prov/mon, when EnableProvenance installed them, receive one record
	// per decision; both are nil-safe and nil by default, keeping the hot
	// path free of provenance work. recPool holds *provenance.Record
	// scratch so recording does not allocate per batch.
	prov    *provenance.Recorder
	mon     *provenance.Monitor
	recPool sync.Pool // *provenance.Record

	infPool sync.Pool // *core.Inference
	bufPool sync.Pool // *connBuffers

	mu    sync.Mutex // serializes Reload
	conns sync.Map   // net.Conn → struct{}, for Close
	ls    sync.Map   // net.Listener → struct{}, for Close
}

// connBuffers is the per-batch scratch a transport needs: frame bytes,
// decoded rows, and encoded decisions.
type connBuffers struct {
	frame []byte
	rows  []Request
	decs  []Decision
	out   []byte
}

// NewServer builds a server around an initial model.
func NewServer(m *core.Model, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Table == nil {
		opts.Table = clockdomain.TitanX()
	}
	s := &Server{
		opts:    opts,
		metrics: newMetrics(telemetry.NewRegistry()),
		sem:     make(chan struct{}, opts.Workers),
		table:   opts.Table,
		health:  newHealth(opts.Health),
		faults:  opts.Faults,
	}
	s.model.Store(m)
	s.infPool.New = func() any { return core.NewInference(m) }
	s.bufPool.New = func() any { return &connBuffers{} }
	s.recPool.New = func() any { return new(provenance.Record) }
	return s, nil
}

// EnableProvenance installs a decision flight recorder of the given
// capacity (<= 0 means provenance.DefaultCapacity) and an online
// model-quality monitor registered on the server's telemetry registry,
// seeded with the served model's training statistics. Must be called
// before the server starts answering decisions.
func (s *Server) EnableProvenance(capacity int, opts provenance.MonitorOptions) {
	if capacity <= 0 {
		capacity = provenance.DefaultCapacity
	}
	s.prov = provenance.NewRecorder(capacity)
	s.mon = provenance.NewMonitor(s.Telemetry(), opts)
	names, mean, std := s.Model().TrainingStats()
	s.mon.SetTrainingStats(names, mean, std)
}

// FlightRecorder returns the decision flight recorder, or nil when
// provenance is not enabled.
func (s *Server) FlightRecorder() *provenance.Recorder { return s.prov }

// QualityMonitor returns the model-quality monitor, or nil when
// provenance is not enabled.
func (s *Server) QualityMonitor() *provenance.Monitor { return s.mon }

// LoadModel reads a model file and, if quantBits > 0, fake-quantizes it —
// the loader behind both daemon startup and hot reload, accepting the
// plain and compressed artifacts interchangeably (they share one format).
// It validates the result (shapes and finite weights), so a corrupt or
// truncated artifact is rejected here instead of poisoning the serving
// path.
func LoadModel(path string, quantBits int) (*core.Model, error) {
	m, err := core.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if quantBits > 0 {
		if m, err = quant.QuantizeModel(m, quantBits); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serve: model %s failed validation: %w", path, err)
	}
	return m, nil
}

// ReloadError is the structured error Reload returns when a new model
// cannot be swapped in; Stage says how far the reload got ("config",
// "load", "validate", "swap"). The previously served model always stays
// active.
type ReloadError struct {
	Path  string
	Stage string
	Err   error
}

func (e *ReloadError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("serve: reload failed at %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("serve: reload of %s failed at %s: %v", e.Path, e.Stage, e.Err)
}

func (e *ReloadError) Unwrap() error { return e.Err }

// Model returns the currently served model.
func (s *Server) Model() *core.Model { return s.model.Load() }

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Telemetry exposes the registry hosting the server's metrics, for the
// Prometheus exposition and for daemons that add their own series.
func (s *Server) Telemetry() *telemetry.Registry { return s.metrics.Registry() }

// Swap atomically replaces the served model after validating it. A model
// that fails validation is rejected and the current model keeps serving.
// In-flight batches finish on the model they started with; new batches
// see the new one immediately.
func (s *Server) Swap(m *core.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	if m.Levels > maxLevels {
		return fmt.Errorf("serve: model has %d levels, metrics support %d", m.Levels, maxLevels)
	}
	if err := s.faults.Inject(FaultSwap); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	s.model.Store(m)
	s.metrics.Reloads.Add(1)
	if s.mon != nil {
		// The drift reference follows the served model: the monitor's
		// windows reset so the new model is not judged against the old
		// model's training distribution.
		names, mean, std := m.TrainingStats()
		s.mon.SetTrainingStats(names, mean, std)
	}
	return nil
}

// Reload loads path (or the configured ModelPath when path is empty) and
// swaps it in. Concurrent reloads are serialized; decisions never block.
// Any failure — unreadable file, corrupt or truncated artifact, bad
// shapes, non-finite weights — returns a *ReloadError and keeps the old
// model serving.
func (s *Server) Reload(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if path == "" {
		path = s.opts.ModelPath
	}
	if path == "" {
		return &ReloadError{Stage: "config", Err: errors.New("no model path configured")}
	}
	if err := s.faults.Inject(FaultReload); err != nil {
		s.metrics.Errors.Add(1)
		return &ReloadError{Path: path, Stage: "load", Err: err}
	}
	m, err := LoadModel(path, s.opts.QuantBits)
	if err != nil {
		s.metrics.Errors.Add(1)
		return &ReloadError{Path: path, Stage: "load", Err: err}
	}
	if s.faults.Corrupt(FaultReload) {
		// Corruption fault: poison the candidate model so the swap-time
		// validation must reject it — the served model is never touched.
		m.Decision.Layers[0].W[0] = math.NaN()
	}
	if err := s.Swap(m); err != nil {
		s.metrics.Errors.Add(1)
		return &ReloadError{Path: path, Stage: "swap", Err: err}
	}
	s.opts.Logf("serve: reloaded model from %s (%d params, %d FLOPs)", path, m.Params(), m.FLOPs())
	return nil
}

// maxFeature and maxPreset bound what the row validators accept: counter
// values are per-10µs-epoch counts and watt-scale powers, presets are
// performance-loss fractions — anything beyond these magnitudes (or
// non-finite) is garbage that must not reach the model.
const (
	maxFeature = 1e15
	maxPreset  = 1e3
)

// finiteInRange rejects NaN (v != v) and values outside ±limit (which
// also catches ±Inf) with plain comparisons — no allocation, no math
// calls, cheap enough for the per-row hot path.
func finiteInRange(v, limit float64) bool {
	return v == v && v >= -limit && v <= limit
}

// validRow reports whether every feature and the preset are finite and
// within range. Invalid rows are rejected at the transport boundary and
// answered by the analytical fallback instead of the model.
func validRow(row Request) bool {
	if !finiteInRange(row.Preset, maxPreset) {
		return false
	}
	for _, f := range row.Features {
		if !finiteInRange(f, maxFeature) {
			return false
		}
	}
	return true
}

// fallbackRow answers one row from the PCSTALL analytical baseline — the
// guaranteed decision when the model cannot or must not be trusted.
// reason records why the model did not answer.
func (s *Server) fallbackRow(row Request, reason provenance.Reason) Decision {
	level, pred := baselines.FallbackDecision(s.table, row.Features, row.Preset)
	s.metrics.Fallbacks.Add(1)
	s.metrics.ObserveLevel(level)
	return Decision{Level: level, Reason: reason, PredInstr: pred}
}

// observe fills the scratch provenance record for one answered row and
// hands it to the recorder and monitor. rec is nil when provenance is
// disabled; derived and logits are non-nil only on the model path (they
// alias inference scratch and are copied into the record here).
func (s *Server) observe(rec *provenance.Record, row Request, d Decision, derived, logits []float64, start time.Time) {
	if rec == nil {
		return
	}
	// The serving transports carry no cluster or epoch identity; -1 marks
	// the fields as not applicable.
	rec.Cluster = -1
	rec.Epoch = -1
	rec.Level = int32(d.Level)
	rec.Reason = d.Reason
	rec.Preset = row.Preset
	rec.EffPreset = row.Preset
	rec.PredInstr = d.PredInstr
	rec.PredErr, rec.HasPredErr = 0, false
	rec.LatencyNs = int64(time.Since(start))
	rec.SetRaw(row.Features)
	rec.SetDerived(derived)
	rec.SetLogits(logits)
	s.prov.Record(rec)
	s.mon.ObserveRecord(rec)
}

// decideBatch answers every row, appending one Decision per row to decs.
// It acquires a worker-pool slot, so at most Options.Workers batches run
// at once regardless of connection count. The contract is the degradation
// guarantee: decideBatch never returns fewer decisions than rows and
// never panics — rows the model cannot answer (invalid features,
// recovered panic, blown deadline budget, fallback-only health state)
// degrade to the analytical fallback instead.
func (s *Server) decideBatch(rows []Request, decs []Decision) []Decision {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	var rec *provenance.Record
	if s.prov != nil || s.mon != nil {
		rec = s.recPool.Get().(*provenance.Record)
		defer s.recPool.Put(rec)
	}

	start := time.Now()
	done := 0
	// tailReason labels the rows the model never reached: the health state
	// machine bypassing it entirely, or the failure modelRows reports.
	tailReason := provenance.ReasonFallbackOnly
	if s.health.useModel() {
		var failed bool
		decs, done, tailReason, failed = s.modelRows(rows, decs, start, rec)
		if failed {
			s.health.recordFailure()
		} else {
			s.health.recordSuccess()
		}
	}
	for _, row := range rows[done:] {
		d := s.fallbackRow(row, tailReason)
		decs = append(decs, d)
		s.observe(rec, row, d, nil, nil, start)
	}
	return decs
}

// modelRows runs the model over rows until it finishes, fails, or blows
// the budget, returning how many rows were answered (model or per-row
// fallback), the reason the unreached rows should carry, and whether the
// model path failed. A panic anywhere in the model is recovered and
// reported as a failure; the rows it did not reach are the caller's to
// degrade.
func (s *Server) modelRows(rows []Request, decs []Decision, start time.Time, rec *provenance.Record) (out []Decision, done int, failReason provenance.Reason, failed bool) {
	out = decs
	failReason = provenance.ReasonFallback
	// On panic the named returns already hold the last consistent state:
	// out has exactly the decisions of the done rows, because append and
	// the done update are adjacent non-panicking statements.
	defer func() {
		if r := recover(); r != nil {
			s.metrics.RecoveredPanics.Add(1)
			failReason = provenance.ReasonPanic
			failed = true
		}
	}()
	if err := s.faults.Inject(FaultDecide); err != nil {
		return out, 0, provenance.ReasonFallback, true
	}
	inf := s.infPool.Get().(*core.Inference)
	defer s.infPool.Put(inf)
	inf.Bind(s.model.Load())
	nFeat := inf.Model().NumFeatures()
	budget := s.opts.Budget
	for i, row := range rows {
		if budget > 0 && time.Since(start) > budget {
			s.metrics.DeadlineMisses.Add(1)
			return out, i, provenance.ReasonDeadline, true
		}
		if !validRow(row) {
			s.metrics.RejectedRows.Add(1)
			d := s.fallbackRow(row, provenance.ReasonRejected)
			out = append(out, d)
			done = i + 1
			s.observe(rec, row, d, nil, nil, start)
			continue
		}
		if err := s.faults.Inject(FaultInfer); err != nil {
			return out, i, provenance.ReasonFallback, true
		}
		level, pred := inf.Decide(row.Features, row.Preset)
		s.metrics.ObserveLevel(level)
		d := Decision{Level: level, Reason: provenance.ReasonModel, PredInstr: pred}
		out = append(out, d)
		done = i + 1
		s.observe(rec, row, d, inf.DecisionRow()[:nFeat], inf.Logits(), start)
	}
	return out, done, provenance.ReasonModel, false
}

// ServeConn handles one binary-protocol connection until EOF or error.
func (s *Server) ServeConn(conn net.Conn) {
	s.metrics.Conns.Add(1)
	s.conns.Store(conn, struct{}{})
	defer func() {
		s.conns.Delete(conn)
		s.metrics.Conns.Add(-1)
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	bufs := s.bufPool.Get().(*connBuffers)
	defer s.bufPool.Put(bufs)

	for {
		// An armed error fault here simulates an infrastructure-level
		// connection drop: the conn closes and the client's reconnect
		// logic takes over. Not counted as a protocol error.
		if err := s.faults.Inject(FaultConn); err != nil {
			return
		}
		frame, err := readFrame(br, bufs.frame)
		if err != nil {
			// EOF and closed/truncated connections are normal client
			// departures; anything else (oversized frame) is a protocol
			// error worth counting.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				s.metrics.Errors.Add(1)
			}
			return
		}
		bufs.frame = frame[:cap(frame)]

		start := time.Now()
		rows, err := DecodeRequestFrame(frame, bufs.rows)
		if err != nil {
			// Protocol violation: report and drop the connection, since
			// framing can no longer be trusted.
			s.metrics.Errors.Add(1)
			if out, eerr := AppendResponseFrame(bufs.out[:0], StatusError, nil); eerr == nil {
				writeFrame(bw, out)
				bw.Flush()
			}
			return
		}
		bufs.rows = rows

		bufs.decs = s.decideBatch(rows, bufs.decs[:0])
		out, err := AppendResponseFrame(bufs.out[:0], StatusOK, bufs.decs)
		if err != nil {
			s.metrics.Errors.Add(1)
			return
		}
		bufs.out = out
		if err := writeFrame(bw, out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.metrics.ObserveBatch(len(rows), time.Since(start))
	}
}

// ServeTCP accepts binary-protocol connections on l, one goroutine per
// connection, until the listener is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	s.ls.Store(l, struct{}{})
	defer s.ls.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close shuts down every listener and open binary connection.
func (s *Server) Close() {
	s.ls.Range(func(k, _ any) bool {
		k.(net.Listener).Close()
		return true
	})
	s.conns.Range(func(k, _ any) bool {
		k.(net.Conn).Close()
		return true
	})
}

// httpRow mirrors Request in JSON.
type httpRow struct {
	Features []float64 `json:"features"`
	Preset   float64   `json:"preset"`
}

// httpDecision mirrors Decision in JSON.
type httpDecision struct {
	Level     int     `json:"level"`
	Reason    string  `json:"reason"`
	PredInstr float64 `json:"predicted_instructions"`
}

// Handler returns the HTTP API:
//
//	POST /decide   {"features":[...47],"preset":0.1} or {"rows":[...]}
//	GET  /metrics  counters + latency histogram + level distribution
//	POST /reload   {"path":"..."} (path optional; defaults to ModelPath)
//	GET  /model    served model info
//	GET  /healthz  degradation state (healthy/degraded → 200,
//	               fallback-only → 503; decisions are still served)
//	GET  /debug/decisions  flight-recorder ring dump (404 unless
//	               provenance is enabled); ?n= caps the rows returned,
//	               ?cluster= and ?reason= filter them
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/decide", s.handleDecide)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/reload", s.handleReload)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/decisions", s.handleDecisions)
	return mux
}

// Health returns the server's current degradation state.
func (s *Server) Health() HealthState { return s.health.State() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.health.State()
	w.Header().Set("Content-Type", "application/json")
	if st == FallbackOnly {
		// Still serving (every request gets a fallback decision), but
		// signal orchestrators that the model path is down.
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		State               string            `json:"state"`
		ConsecutiveFailures int64             `json:"consecutive_failures,omitempty"`
		FallbackDecisions   int64             `json:"fallback_decisions,omitempty"`
		RecoveredPanics     int64             `json:"recovered_panics,omitempty"`
		DeadlineMisses      int64             `json:"deadline_misses,omitempty"`
		Build               map[string]string `json:"build,omitempty"`
	}{
		State:               st.String(),
		ConsecutiveFailures: s.health.Failures(),
		FallbackDecisions:   s.metrics.Fallbacks.Load(),
		RecoveredPanics:     s.metrics.RecoveredPanics.Load(),
		DeadlineMisses:      s.metrics.DeadlineMisses.Load(),
		Build:               buildinfo.Info(),
	})
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.metrics.Errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		httpRow
		Rows []httpRow `json:"rows"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxFrame)).Decode(&body); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	single := body.Rows == nil
	if single {
		body.Rows = []httpRow{body.httpRow}
	}
	if len(body.Rows) > MaxBatch {
		s.httpError(w, http.StatusBadRequest, "batch of %d rows exceeds %d", len(body.Rows), MaxBatch)
		return
	}
	rows := make([]Request, len(body.Rows))
	for i, hr := range body.Rows {
		if len(hr.Features) != counters.Num {
			s.httpError(w, http.StatusBadRequest, "row %d has %d features, want %d", i, len(hr.Features), counters.Num)
			return
		}
		rows[i] = Request{Preset: hr.Preset, Features: hr.Features}
	}

	start := time.Now()
	decs := s.decideBatch(rows, nil)
	s.metrics.ObserveBatch(len(rows), time.Since(start))

	out := make([]httpDecision, len(decs))
	for i, d := range decs {
		out[i] = httpDecision{Level: d.Level, Reason: d.Reason.String(), PredInstr: d.PredInstr}
	}
	w.Header().Set("Content-Type", "application/json")
	if single {
		json.NewEncoder(w).Encode(out[0])
		return
	}
	json.NewEncoder(w).Encode(struct {
		Rows []httpDecision `json:"rows"`
	}{out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.metrics.Snapshot(s.Model().Levels))
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Path string `json:"path"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	if err := s.Reload(body.Path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	m := s.Model()
	json.NewEncoder(w).Encode(struct {
		Reloaded bool  `json:"reloaded"`
		Params   int   `json:"params"`
		Reloads  int64 `json:"reloads"`
	}{true, m.Params(), s.metrics.Reloads.Load()})
}

// provHeader builds the dump header attributing recorder contents to
// this binary and the currently served model.
func (s *Server) provHeader() provenance.Header {
	m := s.Model()
	names, mean, std := m.TrainingStats()
	return provenance.Header{
		Build:       buildinfo.Info(),
		Features:    names,
		TrainMean:   mean,
		TrainStd:    std,
		Levels:      m.Levels,
		ModelParams: m.Params(),
		Capacity:    s.prov.Cap(),
		Head:        s.prov.Head(),
	}
}

// DumpDecisions writes the flight recorder's current contents as a JSONL
// dump (header + one record per line) — the format cmd/dvfsstat's
// -decisions view reads. It returns false when provenance is disabled.
func (s *Server) DumpDecisions(w io.Writer) (bool, error) {
	if s.prov == nil {
		return false, nil
	}
	return true, provenance.WriteRecords(w, s.provHeader(), s.prov.Snapshot(nil))
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if s.prov == nil {
		http.Error(w, "flight recorder not enabled (start with -flightrec)", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
	}
	var cluster int64
	hasCluster := false
	if v := q.Get("cluster"); v != "" {
		var err error
		if cluster, err = strconv.ParseInt(v, 10, 32); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad cluster %q", v)
			return
		}
		hasCluster = true
	}
	var reason provenance.Reason
	hasReason := false
	if v := q.Get("reason"); v != "" {
		var err error
		if reason, err = provenance.ParseReason(v); err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		hasReason = true
	}

	recs := s.prov.Snapshot(nil)
	kept := recs[:0]
	for _, rec := range recs {
		if hasCluster && rec.Cluster != int32(cluster) {
			continue
		}
		if hasReason && rec.Reason != reason {
			continue
		}
		kept = append(kept, rec)
	}
	if n > 0 && len(kept) > n {
		kept = kept[len(kept)-n:] // newest n, still oldest-first
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	provenance.WriteRecords(w, s.provHeader(), kept)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.Model()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Levels         int   `json:"levels"`
		Features       int   `json:"features"`
		Params         int   `json:"params"`
		FLOPs          int   `json:"flops"`
		EffectiveFLOPs int   `json:"effective_flops"`
		QuantBits      int   `json:"quant_bits,omitempty"`
		Reloads        int64 `json:"reloads"`
	}{m.Levels, m.NumFeatures(), m.Params(), m.FLOPs(), m.EffectiveFLOPs(), s.opts.QuantBits, s.metrics.Reloads.Load()})
}
