package serve

import (
	"testing"
	"time"

	"ssmdvfs/internal/telemetry"
)

// TestObserveHotPathAllocationFree guards the acceptance criterion that
// re-hosting Metrics on the telemetry registry kept the serving hot path
// allocation-free: per-batch and per-decision recording must be pure
// atomics on pre-resolved handles.
func TestObserveHotPathAllocationFree(t *testing.T) {
	m := newMetrics(telemetry.NewRegistry())
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveBatch(24, 37*time.Microsecond)
		m.ObserveLevel(3)
		m.Conns.Add(1)
		m.Conns.Add(-1)
	})
	if allocs != 0 {
		t.Fatalf("metrics hot path allocates %.1f times per batch, want 0", allocs)
	}
}

func BenchmarkObserveBatch(b *testing.B) {
	m := newMetrics(telemetry.NewRegistry())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ObserveBatch(24, time.Duration(i%1000)*time.Microsecond)
		m.ObserveLevel(i % 6)
	}
}

// TestSnapshotShapeUnchanged pins the pre-telemetry /metrics JSON shape:
// 20 latency buckets, level counts capped at the requested model levels,
// and quantiles consistent with the buckets.
func TestSnapshotShapeUnchanged(t *testing.T) {
	m := newMetrics(telemetry.NewRegistry())
	m.ObserveBatch(2, 3*time.Microsecond) // bucket [2,4) µs
	m.ObserveLevel(1)
	m.ObserveLevel(1)
	m.Errors.Add(1)

	snap := m.Snapshot(6)
	if len(snap.LatencyBucketsUs) != histBuckets {
		t.Fatalf("latency buckets = %d, want %d", len(snap.LatencyBucketsUs), histBuckets)
	}
	if len(snap.LevelCounts) != 6 {
		t.Fatalf("level counts = %d, want 6", len(snap.LevelCounts))
	}
	if snap.Decisions != 2 || snap.Batches != 1 || snap.Errors != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LevelCounts[1] != 2 {
		t.Fatalf("level 1 count = %d, want 2", snap.LevelCounts[1])
	}
	if snap.LatencyBucketsUs[2] != 1 {
		t.Fatalf("3µs batch not in bucket 2: %v", snap.LatencyBucketsUs)
	}
	if snap.LatencyP50Us < 2 || snap.LatencyP50Us > 4 {
		t.Fatalf("p50 = %g, want within [2,4)", snap.LatencyP50Us)
	}
	// The registry view carries the same numbers.
	reg := m.Registry().Snapshot()
	if reg.Counters["serve_decisions_total"] != 2 {
		t.Fatalf("registry decisions = %d", reg.Counters["serve_decisions_total"])
	}
	if reg.Counters[`serve_level_decisions_total{level="1"}`] != 2 {
		t.Fatal("per-level counter missing from registry")
	}
}
