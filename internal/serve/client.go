package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a binary-protocol connection to a decision daemon. It is not
// safe for concurrent use — open one Client per load-generator worker
// (requests on one connection are strictly request/response).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	frame []byte
	req   []byte
	decs  []Decision
}

// Dial connects to a daemon's binary-protocol address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests over
// loopback or net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Decide sends one batch and waits for its decisions. The returned slice
// is reused by the next Decide call.
func (c *Client) Decide(rows []Request) ([]Decision, error) {
	req, err := AppendRequestFrame(c.req[:0], rows)
	if err != nil {
		return nil, err
	}
	c.req = req
	if err := writeFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	frame, err := readFrame(c.br, c.frame)
	if err != nil {
		return nil, err
	}
	c.frame = frame[:cap(frame)]
	decs, err := DecodeResponseFrame(frame, c.decs)
	if err != nil {
		return nil, err
	}
	c.decs = decs
	return decs, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
