package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/telemetry"
)

// Client-side fault-injection sites (armed via DialOptions.Faults).
const (
	// FaultClientDial fires per connection attempt (error kinds fail it).
	FaultClientDial = "client.dial"
	// FaultClientIO fires per request round-trip before the write (error
	// kinds poison the connection and trigger reconnect).
	FaultClientIO = "client.io"
)

// DialOptions configures connection and retry behaviour for a Client.
// The zero value reproduces the original Dial: one 5 s connection
// attempt, no retries.
type DialOptions struct {
	// Timeout bounds each individual connection attempt (default 5 s).
	Timeout time.Duration
	// Retries is how many times a failed connect or round-trip is retried
	// after the first attempt, reconnecting between attempts (default 0:
	// fail fast).
	Retries int
	// Backoff is the delay before the first retry; it doubles per attempt
	// (capped at 5 s) with deterministic ±25% jitter derived from the
	// address and attempt number, so a fleet of clients hammering one
	// recovering daemon spreads out the same way on every run
	// (default 50 ms).
	Backoff time.Duration
	// Faults optionally injects client-side faults at the FaultClient*
	// sites. Nil keeps the path fault-free.
	Faults *faults.Injector
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// Client is a binary-protocol connection to a decision daemon. It is not
// safe for concurrent use — open one Client per load-generator worker
// (requests on one connection are strictly request/response). When built
// with DialOptions.Retries > 0 it transparently reconnects with
// exponential backoff after dropped connections and re-sends the
// in-flight request (decision requests are idempotent).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	addr string
	opts DialOptions
	ctx  context.Context

	reconnects int64

	// tracer, when set, emits client.send/client.recv spans for sampled
	// traced requests. lastHops holds the per-hop attribution of the most
	// recent traced response.
	tracer   *telemetry.Tracer
	lastHops HopTimings

	frame []byte
	req   []byte
	decs  []Decision
}

// request kinds for the exchange/roundTrip retry loop.
const (
	kindPlain = iota
	kindKeyed
	kindTraced
)

// Dial connects to a daemon's binary-protocol address with the default
// options (one 5 s attempt, no retries).
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, DialOptions{})
}

// DialContext connects to a daemon's binary-protocol address. ctx bounds
// the initial connection (including retries) and the backoff sleeps of
// later reconnects.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Client{addr: addr, opts: opts.withDefaults(), ctx: ctx}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (useful for tests over
// loopback or net.Pipe). A Client built this way has no address and
// cannot reconnect.
func NewClient(conn net.Conn) *Client {
	c := &Client{ctx: context.Background(), opts: DialOptions{}.withDefaults()}
	c.bind(conn)
	return c
}

// Reconnects returns how many times the client re-established its
// connection.
func (c *Client) Reconnects() int64 { return c.reconnects }

// SetTracer installs a span tracer for this client's traced requests.
func (c *Client) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

func (c *Client) bind(conn net.Conn) {
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 64<<10)
		c.bw = bufio.NewWriterSize(conn, 64<<10)
	} else {
		c.br.Reset(conn)
		c.bw.Reset(conn)
	}
}

func (c *Client) dialOnce() error {
	if err := c.opts.Faults.Inject(FaultClientDial); err != nil {
		return err
	}
	d := net.Dialer{Timeout: c.opts.Timeout}
	conn, err := d.DialContext(c.ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if c.conn != nil {
		c.conn.Close()
		c.reconnects++
	}
	c.bind(conn)
	return nil
}

// connect establishes the connection, retrying with backoff up to
// opts.Retries times.
func (c *Client) connect() error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.dialOnce(); err == nil {
			return nil
		}
		if attempt >= c.opts.Retries {
			return err
		}
		if serr := c.backoffSleep(attempt); serr != nil {
			return serr
		}
	}
}

// backoffSleep waits out the attempt's backoff delay, honouring ctx.
func (c *Client) backoffSleep(attempt int) error {
	t := time.NewTimer(backoffDelay(c.opts.Backoff, attempt, c.addr))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// backoffDelay is base·2^attempt capped at 5 s, scaled by a deterministic
// jitter factor in [0.75, 1.25) derived from the address and attempt —
// the same schedule on every run, but different across clients of
// different addresses and across attempts.
func backoffDelay(base time.Duration, attempt int, addr string) time.Duration {
	if attempt > 16 {
		attempt = 16
	}
	d := base << uint(attempt)
	if d > 5*time.Second || d <= 0 {
		d = 5 * time.Second
	}
	h := faults.Mix64(faults.HashString(addr) ^ uint64(attempt))
	frac := 0.75 + 0.5*float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// Decide sends one batch and waits for its decisions, reconnecting and
// re-sending on connection failures when retries are configured. The
// returned slice is reused by the next Decide call.
func (c *Client) Decide(rows []Request) ([]Decision, error) {
	req, err := AppendRequestFrame(c.req[:0], rows)
	if err != nil {
		// Encoding failures are caller bugs (bad batch shape), not
		// transport faults — never retried.
		return nil, err
	}
	c.req = req
	return c.exchange(req, kindPlain, telemetry.TraceContext{})
}

// DecideKeyed sends one keyed batch over the v3 protocol — every row
// carries its (gpu, cluster) identity, and every returned decision says
// which fleet shard answered it and whether it was rerouted. Against a
// plain daemon the decisions come back with Shard == -1.
func (c *Client) DecideKeyed(rows []Request) ([]Decision, error) {
	req, err := AppendKeyedRequestFrame(c.req[:0], rows)
	if err != nil {
		return nil, err
	}
	c.req = req
	return c.exchange(req, kindKeyed, telemetry.TraceContext{})
}

// DecideKeyedTraced sends one keyed batch carrying distributed-trace
// context and returns the server's per-hop latency attribution alongside
// the decisions. An invalid (zero) context degrades to exactly
// DecideKeyed — the unsampled hot path pays nothing. The peer must have
// advertised tracing in its hello-ack (Negotiate), otherwise the traced
// frame is refused.
func (c *Client) DecideKeyedTraced(rows []Request, tc telemetry.TraceContext) ([]Decision, HopTimings, error) {
	if !tc.Valid() {
		decs, err := c.DecideKeyed(rows)
		return decs, HopTimings{}, err
	}
	req, err := AppendTracedRequestFrame(c.req[:0], rows, tc)
	if err != nil {
		return nil, HopTimings{}, err
	}
	c.req = req
	c.lastHops = HopTimings{}
	decs, err := c.exchange(req, kindTraced, tc)
	return decs, c.lastHops, err
}

// Negotiate performs the v3 hello/ack exchange and returns the server's
// answer: the agreed protocol version, whether the peer is a fleet
// router, and its shard count. A server outside the client's version
// range answers with a structured *ProtoError instead of dropping the
// connection.
func (c *Client) Negotiate() (Hello, error) {
	if err := writeFrame(c.bw, AppendHelloFrame(nil, VersionMin, VersionMax)); err != nil {
		return Hello{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Hello{}, err
	}
	frame, err := readFrame(c.br, c.frame)
	if err != nil {
		return Hello{}, err
	}
	c.frame = frame[:cap(frame)]
	return DecodeHelloAckFrame(frame)
}

// exchange runs the request/response retry loop shared by Decide,
// DecideKeyed and DecideKeyedTraced.
func (c *Client) exchange(req []byte, kind int, tc telemetry.TraceContext) ([]Decision, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := c.backoffSleep(attempt - 1); err != nil {
				return nil, err
			}
			if c.addr == "" {
				return nil, lastErr // NewClient-wrapped conns cannot reconnect
			}
			if err := c.dialOnce(); err != nil {
				lastErr = err
				continue
			}
		}
		decs, err := c.roundTrip(req, kind, tc)
		if err == nil {
			return decs, nil
		}
		var pe *ProtoError
		if errors.As(err, &pe) {
			// A structured refusal is authoritative — the server will say
			// the same thing again; do not burn retries on it.
			return nil, err
		}
		lastErr = err
		// The stream can no longer be trusted (half-written frame,
		// truncated response): drop the connection before retrying.
		c.conn.Close()
	}
	return nil, lastErr
}

func (c *Client) roundTrip(req []byte, kind int, tc telemetry.TraceContext) ([]Decision, error) {
	if err := c.opts.Faults.Inject(FaultClientIO); err != nil {
		return nil, err
	}
	sendSp := c.tracer.StartSpan(tc, "client.send")
	if err := writeFrame(c.bw, req); err != nil {
		sendSp.End()
		return nil, err
	}
	err := c.bw.Flush()
	sendSp.End()
	if err != nil {
		return nil, err
	}
	recvSp := c.tracer.StartSpan(tc, "client.recv")
	frame, err := readFrame(c.br, c.frame)
	recvSp.End()
	if err != nil {
		return nil, err
	}
	c.frame = frame[:cap(frame)]
	var decs []Decision
	switch kind {
	case kindTraced:
		var hops HopTimings
		decs, hops, err = DecodeTracedResponseFrame(frame, c.decs)
		c.lastHops = hops
	case kindKeyed:
		decs, err = DecodeKeyedResponseFrame(frame, c.decs)
	default:
		decs, err = DecodeResponseFrame(frame, c.decs)
	}
	if err != nil {
		return nil, err
	}
	c.decs = decs
	return decs, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }
