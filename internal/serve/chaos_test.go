package serve

import (
	"context"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/provenance"
)

// dumpChaosArtifact writes the flight recorder's contents to
// $CHAOS_ARTIFACT_DIR so CI can attach the last decisions before a chaos
// failure to the run. A no-op when the variable is unset or provenance
// was not enabled.
func dumpChaosArtifact(t *testing.T, srv *Server) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || srv.FlightRecorder() == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact: %v", err)
		return
	}
	path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+"-decisions.jsonl")
	if err := provenance.WriteFile(path, srv.provHeader(), srv.FlightRecorder()); err != nil {
		t.Logf("chaos artifact: %v", err)
		return
	}
	t.Logf("chaos artifact: recorder dump at %s", path)
}

// TestChaosServingUnderFaults is the chaos harness: a live TCP server with
// panics, slow inferences (blowing the deadline budget), dropped
// connections, and a mid-run corrupt model reload, under concurrent
// clients that also send invalid feature rows. The contract under all of
// it: the daemon never exits, every client request is answered, and the
// degradation counters show each fault class was actually exercised.
// Designed to run under -race.
func TestChaosServingUnderFaults(t *testing.T) {
	inj := faults.New(42)
	for site, sp := range map[string]faults.Spec{
		FaultInfer:  {Kind: faults.KindPanic, Every: 97},
		FaultDecide: {Kind: faults.KindLatency, Every: 53, Latency: 2 * time.Millisecond},
		FaultConn:   {Kind: faults.KindError, Every: 41},
	} {
		if err := inj.Arm(site, sp); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(testModel(t, 40), Options{
		Workers: 4,
		Budget:  time.Millisecond,
		Faults:  inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(4096, provenance.MonitorOptions{})
	defer func() {
		if t.Failed() {
			dumpChaosArtifact(t, srv)
		}
	}()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeTCP(l) }()

	garbagePath := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(garbagePath, []byte("definitely not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	const (
		clients = 8
		batches = 60
		rowsPer = 8
	)
	modelBefore := srv.Model()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialContext(context.Background(), l.Addr().String(), DialOptions{
				Retries: 8,
				Backoff: time.Millisecond,
			})
			if err != nil {
				t.Errorf("client %d: dial: %v", c, err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			rows := make([]Request, rowsPer)
			for b := 0; b < batches; b++ {
				for i := range rows {
					rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
				}
				if b%10 == 5 {
					rows[b%rowsPer].Features[3] = math.NaN() // hostile input rides along
				}
				decs, err := cl.Decide(rows)
				if err != nil {
					t.Errorf("client %d batch %d: %v", c, b, err)
					return
				}
				if len(decs) != rowsPer {
					t.Errorf("client %d batch %d: %d decisions, want %d", c, b, len(decs), rowsPer)
					return
				}
				// A corrupt model reload mid-run must fail without
				// interrupting service.
				if c == 0 && b == batches/2 {
					if err := srv.Reload(garbagePath); err == nil {
						t.Error("corrupt reload succeeded")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if srv.Model() != modelBefore {
		t.Fatal("corrupt reload replaced the served model")
	}

	// Every row of every batch was answered despite the chaos.
	snap := srv.Metrics().Snapshot(srv.Model().Levels)
	wantDecisions := int64(clients * batches * rowsPer)
	if snap.Decisions != wantDecisions {
		t.Fatalf("decisions = %d, want %d", snap.Decisions, wantDecisions)
	}
	var levelTotal int64
	for _, n := range snap.LevelCounts {
		levelTotal += n
	}
	if levelTotal != wantDecisions {
		t.Fatalf("level counts sum to %d, want %d", levelTotal, wantDecisions)
	}
	// The only server-side error is the failed reload — dropped
	// connections and recovered faults are not client-visible failures.
	if snap.Errors != 1 {
		t.Fatalf("errors = %d, want exactly 1 (the corrupt reload)", snap.Errors)
	}
	// Each fault class actually fired and was absorbed.
	if snap.RecoveredPanics == 0 {
		t.Fatal("no panics recovered — panic site never exercised")
	}
	if snap.DeadlineMisses == 0 {
		t.Fatal("no deadline misses — latency site never blew the budget")
	}
	if snap.RejectedRows == 0 {
		t.Fatal("no rejected rows — invalid inputs never hit the validator")
	}
	if snap.Fallbacks == 0 {
		t.Fatal("no fallback decisions — degradation path never taken")
	}
	if inj.Fired(FaultConn) == 0 {
		t.Fatal("no connections dropped — reconnect path never exercised")
	}

	// The flight recorder saw every decision and kept the reasons: a
	// post-mortem can tell which rows the model answered, which were
	// rejected at the boundary, and which degraded under faults.
	recs := srv.FlightRecorder().Snapshot(nil)
	if int64(len(recs)) != wantDecisions {
		t.Fatalf("flight recorder holds %d records, want %d", len(recs), wantDecisions)
	}
	var byReason [provenance.NumReasons]int
	for _, rec := range recs {
		byReason[rec.Reason]++
	}
	if byReason[provenance.ReasonModel] == 0 {
		t.Fatal("no model-answered decisions recorded")
	}
	if byReason[provenance.ReasonRejected] == 0 {
		t.Fatal("no rejected rows recorded despite hostile inputs")
	}
	degraded := byReason[provenance.ReasonPanic] + byReason[provenance.ReasonDeadline] +
		byReason[provenance.ReasonFallback] + byReason[provenance.ReasonFallbackOnly]
	if degraded == 0 {
		t.Fatal("no degraded decisions recorded despite injected faults")
	}

	// The daemon is still alive and serving after the storm.
	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("post-chaos dial: %v", err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(99))
	if _, err := cl.Decide([]Request{{Preset: 0.1, Features: featureRow(rng)}}); err != nil {
		t.Fatalf("post-chaos request: %v", err)
	}

	srv.Close()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
}

// TestClientReconnectOnDrop drops the connection server-side on a fixed
// cadence; a retrying client must answer every request and report the
// reconnects.
func TestClientReconnectOnDrop(t *testing.T) {
	inj := faults.New(7)
	if err := inj.Arm(FaultConn, faults.Spec{Kind: faults.KindError, Every: 3}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(testModel(t, 41), Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	cl, err := DialContext(context.Background(), l.Addr().String(), DialOptions{
		Retries: 5,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(41))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng)}}
	for b := 0; b < 12; b++ {
		if _, err := cl.Decide(rows); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if cl.Reconnects() == 0 {
		t.Fatal("no reconnects despite injected connection drops")
	}
}

// TestClientDialRetry arms client-side dial faults: with retries the
// connection eventually establishes; without them it fails fast.
func TestClientDialRetry(t *testing.T) {
	srv, err := NewServer(testModel(t, 42), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	failTwice := func() *faults.Injector {
		inj := faults.New(9)
		if err := inj.Arm(FaultClientDial, faults.Spec{Kind: faults.KindError, Every: 1, Limit: 2}); err != nil {
			t.Fatal(err)
		}
		return inj
	}

	if _, err := DialContext(context.Background(), l.Addr().String(), DialOptions{
		Faults: failTwice(),
	}); err == nil {
		t.Fatal("dial with no retries survived an injected failure")
	}

	cl, err := DialContext(context.Background(), l.Addr().String(), DialOptions{
		Retries: 3,
		Backoff: time.Millisecond,
		Faults:  failTwice(),
	})
	if err != nil {
		t.Fatalf("dial with retries: %v", err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(42))
	if _, err := cl.Decide([]Request{{Preset: 0.1, Features: featureRow(rng)}}); err != nil {
		t.Fatal(err)
	}
}

// TestClientDialContextCancel pins that a cancelled context aborts the
// retry loop instead of sleeping out the full backoff schedule.
func TestClientDialContextCancel(t *testing.T) {
	inj := faults.New(11)
	if err := inj.Arm(FaultClientDial, faults.Spec{Kind: faults.KindError}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := DialContext(ctx, "127.0.0.1:1", DialOptions{
		Retries: 10,
		Backoff: time.Hour,
		Faults:  inj,
	})
	if err == nil {
		t.Fatal("dial succeeded with a cancelled context")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled dial took %s, want immediate return", elapsed)
	}
}

// TestBackoffDelayDeterministic pins the jittered schedule: reproducible
// for one address, growing with attempts, within the ±25% envelope.
func TestBackoffDelayDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		d1 := backoffDelay(base, attempt, "host:1")
		d2 := backoffDelay(base, attempt, "host:1")
		if d1 != d2 {
			t.Fatalf("attempt %d: non-deterministic delay %s vs %s", attempt, d1, d2)
		}
		raw := base << uint(attempt)
		lo := time.Duration(float64(raw) * 0.75)
		hi := time.Duration(float64(raw) * 1.25)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d1, lo, hi)
		}
	}
	if d := backoffDelay(base, 60, "host:1"); d > time.Duration(float64(5*time.Second)*1.25) {
		t.Fatalf("uncapped backoff: %s", d)
	}
	if backoffDelay(base, 2, "host:1") == backoffDelay(base, 2, "host:2") {
		t.Fatal("different addresses share a jitter schedule")
	}
}
