package serve

import (
	"sync/atomic"
)

// HealthState is the server's degradation level. The state machine moves
// healthy → degraded on the first model failure (recovered panic,
// deadline miss, or injected model error), degraded → fallback-only after
// FailThreshold consecutive failures, and back to healthy after
// RestoreProbes consecutive clean model batches. In fallback-only every
// request is answered by the analytical PCSTALL fallback except a probe
// batch every ProbeEvery batches, which tries the model so recovery can
// be detected without exposing ordinary traffic to it.
type HealthState int32

const (
	Healthy HealthState = iota
	Degraded
	FallbackOnly
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case FallbackOnly:
		return "fallback-only"
	default:
		return "unknown"
	}
}

// HealthOptions tunes the degradation state machine; zero values take the
// defaults.
type HealthOptions struct {
	// FailThreshold is how many consecutive model failures demote the
	// server to fallback-only (default 5).
	FailThreshold int
	// RestoreProbes is how many consecutive clean model batches restore
	// the server to healthy (default 3).
	RestoreProbes int
	// ProbeEvery is how often, in batches, the model is probed while in
	// fallback-only (default 16).
	ProbeEvery int64
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.FailThreshold <= 0 {
		o.FailThreshold = 5
	}
	if o.RestoreProbes <= 0 {
		o.RestoreProbes = 3
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 16
	}
	return o
}

// health tracks the state machine with atomics only — it sits on the
// per-batch hot path and must not lock or allocate.
type health struct {
	opts  HealthOptions
	state atomic.Int32
	fails atomic.Int64 // consecutive model failures
	clean atomic.Int64 // consecutive clean model batches
	ticks atomic.Int64 // batch counter scheduling fallback-only probes
}

func newHealth(opts HealthOptions) *health {
	return &health{opts: opts.withDefaults()}
}

// State returns the current degradation level.
func (h *health) State() HealthState { return HealthState(h.state.Load()) }

// Failures returns the consecutive-failure count.
func (h *health) Failures() int64 { return h.fails.Load() }

// useModel reports whether this batch should run the model: always,
// except in fallback-only where only every ProbeEvery-th batch probes it.
func (h *health) useModel() bool {
	if HealthState(h.state.Load()) != FallbackOnly {
		return true
	}
	return h.ticks.Add(1)%h.opts.ProbeEvery == 0
}

// recordFailure notes a model failure and demotes the state.
func (h *health) recordFailure() {
	h.clean.Store(0)
	if f := h.fails.Add(1); f >= int64(h.opts.FailThreshold) {
		h.state.Store(int32(FallbackOnly))
	} else {
		h.state.Store(int32(Degraded))
	}
}

// recordSuccess notes a clean model batch and, after enough of them in a
// row, restores the server to healthy.
func (h *health) recordSuccess() {
	h.fails.Store(0)
	c := h.clean.Add(1)
	if HealthState(h.state.Load()) != Healthy && c >= int64(h.opts.RestoreProbes) {
		h.state.Store(int32(Healthy))
	}
}
