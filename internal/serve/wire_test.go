package serve

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"ssmdvfs/internal/counters"
)

func randRows(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Request, n)
	for i := range rows {
		rows[i].Preset = rng.Float64() * 0.3
		rows[i].Features = make([]float64, counters.Num)
		for j := range rows[i].Features {
			rows[i].Features[j] = rng.NormFloat64() * 1000
		}
	}
	return rows
}

func TestRequestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 64, MaxBatch} {
		rows := randRows(n, int64(n))
		payload, err := AppendRequestFrame(nil, rows)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := DecodeRequestFrame(payload, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d rows", n, len(got))
		}
		for i := range got {
			if got[i].Preset != rows[i].Preset {
				t.Fatalf("row %d preset %g != %g", i, got[i].Preset, rows[i].Preset)
			}
			for j := range got[i].Features {
				if got[i].Features[j] != rows[i].Features[j] {
					t.Fatalf("row %d feature %d differs", i, j)
				}
			}
		}
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	// v2 frames carry no shard identity: decode always yields Shard -1.
	decs := []Decision{{Level: 0, PredInstr: 0, Shard: -1}, {Level: 5, PredInstr: 12345.5, Shard: -1}, {Level: 255, PredInstr: 1e18, Shard: -1}}
	payload, err := AppendResponseFrame(nil, StatusOK, decs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponseFrame(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(decs) {
		t.Fatalf("decoded %d decisions, want %d", len(got), len(decs))
	}
	for i := range got {
		if got[i] != decs[i] {
			t.Fatalf("decision %d = %+v, want %+v", i, got[i], decs[i])
		}
	}
}

func TestEncodeRejectsBadBatches(t *testing.T) {
	if _, err := AppendRequestFrame(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := AppendRequestFrame(nil, randRows(MaxBatch+1, 1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	short := randRows(1, 2)
	short[0].Features = short[0].Features[:10]
	if _, err := AppendRequestFrame(nil, short); err == nil {
		t.Fatal("wrong feature dimension accepted")
	}
	ragged := randRows(2, 3)
	ragged[1].Features = ragged[1].Features[:10]
	if _, err := AppendRequestFrame(nil, ragged); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, err := AppendResponseFrame(nil, StatusOK, []Decision{{Level: 300}}); err == nil {
		t.Fatal("level 300 accepted")
	}
}

// TestDecodeRejectsCorruptFrames walks a table of truncated, oversized,
// and corrupted payloads through both decoders.
func TestDecodeRejectsCorruptFrames(t *testing.T) {
	goodReq, err := AppendRequestFrame(nil, randRows(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	goodResp, err := AppendResponseFrame(nil, StatusOK, []Decision{{Level: 2, PredInstr: 7}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(src []byte, f func([]byte)) []byte {
		b := append([]byte(nil), src...)
		f(b)
		return b
	}
	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"req empty", nil, decodeReq},
		{"req header only", goodReq[:headerLen], decodeReq},
		{"req truncated row", goodReq[:len(goodReq)-8], decodeReq},
		{"req one extra byte", append(append([]byte(nil), goodReq...), 0), decodeReq},
		{"req bad magic", mutate(goodReq, func(b []byte) { b[0] = 'X' }), decodeReq},
		{"req bad version", mutate(goodReq, func(b []byte) { b[4] = 9 }), decodeReq},
		{"req wrong type", mutate(goodReq, func(b []byte) { b[5] = MsgDecisions }), decodeReq},
		{"req zero rows", mutate(goodReq, func(b []byte) { binary.BigEndian.PutUint16(b[6:], 0) }), decodeReq},
		{"req oversized count", mutate(goodReq, func(b []byte) { binary.BigEndian.PutUint16(b[6:], MaxBatch+1) }), decodeReq},
		{"req count/size mismatch", mutate(goodReq, func(b []byte) { binary.BigEndian.PutUint16(b[6:], 2) }), decodeReq},
		{"req wrong dim", mutate(goodReq, func(b []byte) { binary.BigEndian.PutUint16(b[8:], 5) }), decodeReq},
		{"resp empty", nil, decodeResp},
		{"resp truncated", goodResp[:len(goodResp)-1], decodeResp},
		{"resp extra byte", append(append([]byte(nil), goodResp...), 0), decodeResp},
		{"resp wrong type", mutate(goodResp, func(b []byte) { b[5] = MsgDecide }), decodeResp},
		{"resp error status", mutate(goodResp, func(b []byte) { b[6] = StatusError }), decodeResp},
		{"resp count mismatch", mutate(goodResp, func(b []byte) { binary.BigEndian.PutUint16(b[7:], 40) }), decodeResp},
	}
	for _, c := range cases {
		if err := c.decode(c.payload); err == nil {
			t.Errorf("%s: corrupt frame accepted", c.name)
		}
	}
}

func decodeReq(p []byte) error {
	_, err := DecodeRequestFrame(p, nil)
	return err
}

func decodeResp(p []byte) error {
	_, err := DecodeResponseFrame(p, nil)
	return err
}

func TestReadFrameRejectsOversizedAndTruncated(t *testing.T) {
	var huge bytes.Buffer
	binary.Write(&huge, binary.BigEndian, uint32(MaxFrame+1))
	if _, err := readFrame(&huge, nil); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: err = %v", err)
	}

	var trunc bytes.Buffer
	binary.Write(&trunc, binary.BigEndian, uint32(100))
	trunc.WriteString("only a few bytes")
	if _, err := readFrame(&trunc, nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated frame: err = %v", err)
	}
}

// TestFrameScratchReuse verifies decoders reuse caller scratch without
// corrupting earlier results only after the caller hands it back.
func TestFrameScratchReuse(t *testing.T) {
	rows := randRows(8, 7)
	payload, err := AppendRequestFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := DecodeRequestFrame(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-decode into the same scratch: no new feature allocations needed.
	again, err := DecodeRequestFrame(payload, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &scratch[0] {
		t.Fatal("scratch not reused")
	}
}
