package serve

import (
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"testing"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/infer"
)

// TestEngineBackendOption covers backend selection at construction: the
// option overrides the model header, an unknown name is rejected before
// the engine exists, and the served decisions land in the backend's
// per-kind counters with multi-row frames reaching the batched kernel.
func TestEngineBackendOption(t *testing.T) {
	if _, err := NewServer(testModel(t, 20), Options{Backend: "fp7"}); err == nil {
		t.Fatal("unknown backend name accepted")
	}

	srv, err := NewServer(testModel(t, 20), Options{Backend: "int8", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.BackendKind(); got != infer.KindInt8 {
		t.Fatalf("BackendKind = %q, want %q", got, infer.KindInt8)
	}

	rng := rand.New(rand.NewSource(21))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
	}
	decs := srv.DecideBatch(rows, nil)
	if len(decs) != len(rows) {
		t.Fatalf("got %d decisions, want %d", len(decs), len(rows))
	}
	m := srv.Model()
	for i, d := range decs {
		if d.Level < 0 || d.Level >= m.Levels {
			t.Fatalf("row %d: level %d out of range", i, d.Level)
		}
	}

	snap := srv.Metrics().Snapshot(m.Levels)
	if snap.InferRowsInt8 != int64(len(rows)) {
		t.Fatalf("int8 rows = %d, want %d", snap.InferRowsInt8, len(rows))
	}
	if snap.InferRowsFloat64 != 0 {
		t.Fatalf("float64 rows = %d, want 0 on an int8 engine", snap.InferRowsFloat64)
	}
	if snap.InferBatchesInt8 != 1 {
		t.Fatalf("int8 batches = %d, want 1 (the whole frame in one ForwardBatch)", snap.InferBatchesInt8)
	}
	// 8 rows in one call lands in bucket [8,16) = index 4; everything
	// below must be empty or the frame decayed to row-at-a-time.
	if len(snap.InferBatchRows) == 0 || snap.InferBatchRows[4] != 1 {
		t.Fatalf("batch-rows histogram %v, want one call in bucket 4", snap.InferBatchRows)
	}
}

// TestBackendDecisionsMatchDirectInference pins the served int8 answers
// to a direct core.Inference on the same model: the engine's gather loop
// and batch staging must not change the numerics.
func TestBackendDecisionsMatchDirectInference(t *testing.T) {
	m := testModel(t, 22)
	srv, err := NewServer(m, Options{Backend: "int8", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	rows := make([]Request, 32)
	for i := range rows {
		rows[i] = Request{Preset: 0.15, Features: featureRow(rng)}
	}
	decs := srv.DecideBatch(rows, nil)

	ref := core.NewInference(srv.Model())
	for i, row := range rows {
		wantLevel, wantPred := ref.Decide(row.Features, row.Preset)
		if decs[i].Level != wantLevel {
			t.Fatalf("row %d: served level %d, direct %d", i, decs[i].Level, wantLevel)
		}
		if diff := decs[i].PredInstr - wantPred; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d: served prediction %g, direct %g", i, decs[i].PredInstr, wantPred)
		}
	}
}

// TestSwapRejectsCorruptBackend hot-swaps in a model whose decision head
// cannot be quantized (an all-zero layer): the reload must fail at the
// "backend" stage with the old model still serving.
func TestSwapRejectsCorruptBackend(t *testing.T) {
	srv, err := NewServer(testModel(t, 24), Options{Backend: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Model()

	corrupt := testModel(t, 25)
	for i := range corrupt.Decision.Layers[0].W {
		corrupt.Decision.Layers[0].W[i] = 0
	}
	for i := range corrupt.Decision.Layers[0].B {
		corrupt.Decision.Layers[0].B[i] = 0
	}
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := corrupt.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	err = srv.Reload(path)
	var re *ReloadError
	if !errors.As(err, &re) || re.Stage != "backend" {
		t.Fatalf("reload of unquantizable model: got %v, want *ReloadError{Stage:\"backend\"}", err)
	}
	var ie *infer.Error
	if !errors.As(err, &ie) || ie.Stage != "quantize" {
		t.Fatalf("cause = %v, want *infer.Error{Stage:\"quantize\"}", err)
	}
	if srv.Model() != before {
		t.Fatal("failed backend build replaced the serving model")
	}
	if got := srv.Metrics().Reloads.Load(); got != 0 {
		t.Fatalf("failed reload counted as success: reloads = %d", got)
	}
}

// TestHelloAckAdvertisesBackend covers the negotiation advertisement in
// both encodings: a live exchange against an int8 server, the wire-level
// round trip, and a legacy 4-byte ack body decoding with no backend.
func TestHelloAckAdvertisesBackend(t *testing.T) {
	srv, err := NewServer(testModel(t, 26), Options{Backend: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	defer client.Close()

	hello, err := NewClient(client).Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Backend != infer.KindInt8 {
		t.Fatalf("negotiated backend = %q, want %q", hello.Backend, infer.KindInt8)
	}

	frame := AppendHelloAckFrame(nil, Hello{Version: Version3, Backend: infer.KindFloat64})
	got, err := DecodeHelloAckFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend != infer.KindFloat64 {
		t.Fatalf("round-tripped backend = %q, want %q", got.Backend, infer.KindFloat64)
	}

	// A peer that predates the backend byte sends a 4-byte body; the
	// decode must accept it and report no advertisement.
	legacy, err := DecodeHelloAckFrame(frame[:headerLen+4])
	if err != nil {
		t.Fatalf("legacy hello-ack rejected: %v", err)
	}
	if legacy.Backend != "" {
		t.Fatalf("legacy hello-ack backend = %q, want empty", legacy.Backend)
	}
}
