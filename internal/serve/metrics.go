package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency histogram buckets: bucket i counts
// decisions whose batch latency fell in [2^i, 2^(i+1)) microseconds, with
// the first and last buckets absorbing the tails.
const histBuckets = 20

// maxLevels bounds the per-level decision counters; the V/f tables in
// this project have 6 levels, so 64 leaves ample room for future tables
// without resizing atomics on model hot-swap.
const maxLevels = 64

// Metrics aggregates serving counters. All fields are updated with
// atomics; a Snapshot is consistent enough for monitoring (counters are
// read individually, not under a lock).
type Metrics struct {
	Decisions atomic.Int64 // rows served
	Batches   atomic.Int64 // frames / HTTP bodies served
	Errors    atomic.Int64 // malformed frames, bad requests, failed reloads
	Reloads   atomic.Int64 // successful model swaps
	Conns     atomic.Int64 // currently open binary-protocol connections

	levels [maxLevels]atomic.Int64
	hist   [histBuckets]atomic.Int64
}

// ObserveBatch records one served batch: n decisions in d.
func (m *Metrics) ObserveBatch(n int, d time.Duration) {
	m.Batches.Add(1)
	m.Decisions.Add(int64(n))
	us := d.Microseconds()
	b := 0
	if us > 0 {
		b = int(math.Log2(float64(us))) + 1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	m.hist[b].Add(1)
}

// ObserveLevel records one decision outcome.
func (m *Metrics) ObserveLevel(level int) {
	if level >= 0 && level < maxLevels {
		m.levels[level].Add(1)
	}
}

// Snapshot is a point-in-time JSON-friendly view of the metrics.
type Snapshot struct {
	Decisions int64 `json:"decisions"`
	Batches   int64 `json:"batches"`
	Errors    int64 `json:"errors"`
	Reloads   int64 `json:"reloads"`
	Conns     int64 `json:"open_conns"`

	// LatencyBucketsUs[i] counts batches in [2^(i-1), 2^i) µs (index 0 is
	// < 1 µs); LatencyP50Us etc. are estimated from the histogram.
	LatencyBucketsUs []int64 `json:"latency_buckets_us"`
	LatencyP50Us     float64 `json:"latency_p50_us"`
	LatencyP95Us     float64 `json:"latency_p95_us"`
	LatencyP99Us     float64 `json:"latency_p99_us"`

	// LevelCounts[l] counts decisions that chose operating level l.
	LevelCounts []int64 `json:"level_counts"`
}

// Snapshot captures the current counters. levels limits how many
// per-level counters are reported (the serving model's level count).
func (m *Metrics) Snapshot(levels int) Snapshot {
	if levels <= 0 || levels > maxLevels {
		levels = maxLevels
	}
	s := Snapshot{
		Decisions:        m.Decisions.Load(),
		Batches:          m.Batches.Load(),
		Errors:           m.Errors.Load(),
		Reloads:          m.Reloads.Load(),
		Conns:            m.Conns.Load(),
		LatencyBucketsUs: make([]int64, histBuckets),
		LevelCounts:      make([]int64, levels),
	}
	for i := range s.LatencyBucketsUs {
		s.LatencyBucketsUs[i] = m.hist[i].Load()
	}
	for l := 0; l < levels; l++ {
		s.LevelCounts[l] = m.levels[l].Load()
	}
	s.LatencyP50Us = histQuantile(s.LatencyBucketsUs, 0.50)
	s.LatencyP95Us = histQuantile(s.LatencyBucketsUs, 0.95)
	s.LatencyP99Us = histQuantile(s.LatencyBucketsUs, 0.99)
	return s
}

// histQuantile estimates a quantile from the log-2 histogram by linear
// interpolation within the winning bucket (bucket i spans
// [2^(i-1), 2^i) µs; bucket 0 is [0, 1) µs).
func histQuantile(buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if cum+float64(c) >= target {
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	_, hi := bucketBounds(len(buckets) - 1)
	return hi
}

func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Pow(2, float64(i-1)), math.Pow(2, float64(i))
}
