package serve

import (
	"time"

	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/telemetry"
)

// histBuckets is the number of latency histogram buckets: bucket i counts
// decisions whose batch latency fell in [2^(i-1), 2^i) microseconds, with
// the first and last buckets absorbing the tails.
const histBuckets = 20

// maxLevels bounds the per-level decision counters; the V/f tables in
// this project have 6 levels, so 64 leaves ample room for future tables
// without resizing the handle table on model hot-swap.
const maxLevels = 64

// inferRowBuckets sizes the backend batch-size histogram: bucket i counts
// ForwardBatch calls carrying [2^(i-1), 2^i) rows, and inferChunk (64)
// rows lands in bucket 7, so 12 covers any future chunk size comfortably.
const inferRowBuckets = 12

// Metrics aggregates serving counters, hosted on a telemetry.Registry so
// the same numbers are visible through the JSON Snapshot (the original
// /metrics shape), the Prometheus exposition, and cmd/dvfsstat. Every
// update is a single atomic on a pre-resolved handle — the hot path does
// not allocate or lock.
type Metrics struct {
	Decisions *telemetry.Counter // rows served
	Batches   *telemetry.Counter // frames / HTTP bodies served
	Errors    *telemetry.Counter // malformed frames, bad requests, failed reloads
	Reloads   *telemetry.Counter // successful model swaps
	Rollbacks *telemetry.Counter // reversions to the retained pre-swap snapshot
	Conns     *telemetry.Counter // currently open binary-protocol connections

	// Degradation counters: how often the serving path fell back to the
	// analytical baseline and why.
	Fallbacks       *telemetry.Counter // decisions answered by the PCSTALL fallback
	RecoveredPanics *telemetry.Counter // model panics caught mid-batch
	RejectedRows    *telemetry.Counter // NaN/Inf/out-of-range rows rejected at the boundary
	DeadlineMisses  *telemetry.Counter // batches that blew the per-decision budget
	Unavailable     *telemetry.Counter // HTTP /decide requests refused with 503 in fallback-only

	// Inference backend counters: rows and ForwardBatch calls per backend
	// kind, plus a histogram of how many rows each backend call carried —
	// the direct read on whether fleet coalescing actually reaches the
	// batched kernel or decays to row-at-a-time.
	InferRowsF64    *telemetry.Counter
	InferRowsI8     *telemetry.Counter
	InferBatchesF64 *telemetry.Counter
	InferBatchesI8  *telemetry.Counter

	levels    [maxLevels]*telemetry.Counter
	lat       *telemetry.Histogram
	inferRows *telemetry.Histogram
	latSLO    *telemetry.SLO

	reg *telemetry.Registry
}

// The serving latency SLO: batches should finish within
// sloLatencyTarget, and at most sloLatencyBudget of them may miss it
// over the rolling sloWindow. Exposed as slo_burn_rate{slo="serve-latency"}
// (1.0 = consuming the budget exactly as fast as it accrues).
const (
	sloLatencyTarget = time.Millisecond
	sloLatencyBudget = 0.001
	sloWindow        = time.Minute
)

// newMetrics resolves every handle the serving hot path needs up front.
func newMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		Decisions:       reg.Counter("serve_decisions_total"),
		Batches:         reg.Counter("serve_batches_total"),
		Errors:          reg.Counter("serve_errors_total"),
		Reloads:         reg.Counter("serve_reloads_total"),
		Rollbacks:       reg.Counter("serve_rollbacks_total"),
		Conns:           reg.Counter("serve_open_conns"),
		Fallbacks:       reg.Counter("serve_fallback_decisions_total"),
		RecoveredPanics: reg.Counter("serve_recovered_panics_total"),
		RejectedRows:    reg.Counter("serve_rejected_rows_total"),
		DeadlineMisses:  reg.Counter("serve_deadline_misses_total"),
		Unavailable:     reg.Counter("serve_unavailable_total"),
		InferRowsF64:    reg.Counter("serve_infer_rows_total", "backend", string(infer.KindFloat64)),
		InferRowsI8:     reg.Counter("serve_infer_rows_total", "backend", string(infer.KindInt8)),
		InferBatchesF64: reg.Counter("serve_infer_batches_total", "backend", string(infer.KindFloat64)),
		InferBatchesI8:  reg.Counter("serve_infer_batches_total", "backend", string(infer.KindInt8)),
		lat:             reg.HistogramBuckets("serve_batch_latency_us", histBuckets),
		inferRows:       reg.HistogramBuckets("serve_infer_batch_rows", inferRowBuckets),
		latSLO:          telemetry.NewSLO(reg, "serve-latency", sloLatencyBudget, sloWindow),
		reg:             reg,
	}
	for l := range m.levels {
		m.levels[l] = reg.Counter("serve_level_decisions_total", "level", itoa(l))
	}
	return m
}

// itoa avoids strconv in the import set for this tiny range.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Registry exposes the underlying telemetry registry (Prometheus
// exposition, extra daemon-level metrics).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// ObserveBatch records one served batch: n decisions in d.
func (m *Metrics) ObserveBatch(n int, d time.Duration) {
	m.ObserveBatchTraced(n, d, 0)
}

// ObserveBatchTraced is ObserveBatch carrying a sampled request's trace
// ID: the latency bucket the batch lands in gets the ID as its exemplar
// (traceID 0 — the unsampled common case — is exactly ObserveBatch).
func (m *Metrics) ObserveBatchTraced(n int, d time.Duration, traceID uint64) {
	m.Batches.Add(1)
	m.Decisions.Add(int64(n))
	m.lat.ObserveExemplar(d.Microseconds(), traceID)
	m.latSLO.Observe(d > sloLatencyTarget)
}

// ObserveLevel records one decision outcome.
func (m *Metrics) ObserveLevel(level int) {
	if level >= 0 && level < maxLevels {
		m.levels[level].Add(1)
	}
}

// ObserveInfer records one backend inference call: rows rows answered in
// a single Forward/ForwardBatch by the given backend kind.
func (m *Metrics) ObserveInfer(kind infer.Kind, rows int) {
	switch kind {
	case infer.KindInt8:
		m.InferRowsI8.Add(int64(rows))
		m.InferBatchesI8.Add(1)
	default:
		m.InferRowsF64.Add(int64(rows))
		m.InferBatchesF64.Add(1)
	}
	m.inferRows.Observe(int64(rows))
}

// Snapshot is a point-in-time JSON-friendly view of the metrics.
type Snapshot struct {
	Decisions int64 `json:"decisions"`
	Batches   int64 `json:"batches"`
	Errors    int64 `json:"errors"`
	Reloads   int64 `json:"reloads"`
	Conns     int64 `json:"open_conns"`

	// Degradation counters. They carry omitempty so a server that never
	// degrades (injector nil, clean traffic) emits the exact pre-fault
	// /metrics JSON, byte for byte.
	Rollbacks       int64 `json:"rollbacks,omitempty"`
	Fallbacks       int64 `json:"fallback_decisions,omitempty"`
	RecoveredPanics int64 `json:"recovered_panics,omitempty"`
	RejectedRows    int64 `json:"rejected_rows,omitempty"`
	DeadlineMisses  int64 `json:"deadline_misses,omitempty"`
	Unavailable     int64 `json:"unavailable_503,omitempty"`

	// Inference backend counters. omitempty keeps the pre-backend JSON
	// shape for snapshots taken before any decision was served.
	InferRowsFloat64    int64 `json:"infer_rows_float64,omitempty"`
	InferRowsInt8       int64 `json:"infer_rows_int8,omitempty"`
	InferBatchesFloat64 int64 `json:"infer_batches_float64,omitempty"`
	InferBatchesInt8    int64 `json:"infer_batches_int8,omitempty"`

	// InferBatchRows[i] counts backend calls carrying [2^(i-1), 2^i) rows
	// (single-row calls land in index 1, multi-row calls in index >= 2).
	// Present once any inference has run.
	InferBatchRows []int64 `json:"infer_batch_rows,omitempty"`

	// LatencyBucketsUs[i] counts batches in [2^(i-1), 2^i) µs (index 0 is
	// < 1 µs); LatencyP50Us etc. are estimated from the histogram.
	LatencyBucketsUs []int64 `json:"latency_buckets_us"`
	LatencyP50Us     float64 `json:"latency_p50_us"`
	LatencyP95Us     float64 `json:"latency_p95_us"`
	LatencyP99Us     float64 `json:"latency_p99_us"`

	// LevelCounts[l] counts decisions that chose operating level l.
	LevelCounts []int64 `json:"level_counts"`
}

// Snapshot captures the current counters. levels limits how many
// per-level counters are reported (the serving model's level count).
func (m *Metrics) Snapshot(levels int) Snapshot {
	if levels <= 0 || levels > maxLevels {
		levels = maxLevels
	}
	s := Snapshot{
		Decisions:           m.Decisions.Load(),
		Batches:             m.Batches.Load(),
		Errors:              m.Errors.Load(),
		Reloads:             m.Reloads.Load(),
		Conns:               m.Conns.Load(),
		Rollbacks:           m.Rollbacks.Load(),
		Fallbacks:           m.Fallbacks.Load(),
		RecoveredPanics:     m.RecoveredPanics.Load(),
		RejectedRows:        m.RejectedRows.Load(),
		DeadlineMisses:      m.DeadlineMisses.Load(),
		Unavailable:         m.Unavailable.Load(),
		InferRowsFloat64:    m.InferRowsF64.Load(),
		InferRowsInt8:       m.InferRowsI8.Load(),
		InferBatchesFloat64: m.InferBatchesF64.Load(),
		InferBatchesInt8:    m.InferBatchesI8.Load(),
		LatencyBucketsUs:    m.lat.Buckets(),
		LevelCounts:         make([]int64, levels),
	}
	if s.InferBatchesFloat64+s.InferBatchesInt8 > 0 {
		// Only attach the batch-size histogram once an inference has run:
		// omitempty elides nil but not an all-zero slice, and an idle
		// server must keep emitting the pre-backend JSON byte for byte.
		s.InferBatchRows = m.inferRows.Buckets()
	}
	for l := 0; l < levels; l++ {
		s.LevelCounts[l] = m.levels[l].Load()
	}
	s.LatencyP50Us = telemetry.Quantile(s.LatencyBucketsUs, 0.50)
	s.LatencyP95Us = telemetry.Quantile(s.LatencyBucketsUs, 0.95)
	s.LatencyP99Us = telemetry.Quantile(s.LatencyBucketsUs, 0.99)
	return s
}
