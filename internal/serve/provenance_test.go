package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// TestServerProvenanceEndToEnd decides a batch with healthy and hostile
// rows and checks the flight recorder, the drift metrics, and the
// /debug/decisions dump all agree on what happened.
func TestServerProvenanceEndToEnd(t *testing.T) {
	srv, err := NewServer(testModel(t, 70), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(64, provenance.MonitorOptions{})

	rng := rand.New(rand.NewSource(70))
	rows := make([]Request, 6)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	rows[2].Features[5] = math.NaN() // rejected at the boundary
	decs := srv.decideBatch(rows, nil)
	if len(decs) != len(rows) {
		t.Fatalf("%d decisions, want %d", len(decs), len(rows))
	}
	for i, d := range decs {
		want := provenance.ReasonModel
		if i == 2 {
			want = provenance.ReasonRejected
		}
		if d.Reason != want {
			t.Fatalf("row %d reason = %v, want %v", i, d.Reason, want)
		}
	}

	recs := srv.FlightRecorder().Snapshot(nil)
	if len(recs) != len(rows) {
		t.Fatalf("recorded %d decisions, want %d", len(recs), len(rows))
	}
	nFeat := srv.Model().NumFeatures()
	for i, rec := range recs {
		if rec.Cluster != -1 || rec.Epoch != -1 {
			t.Fatalf("record %d: serving record has cluster/epoch %d/%d", i, rec.Cluster, rec.Epoch)
		}
		if rec.Reason == provenance.ReasonModel {
			if int(rec.NumDerived) != nFeat || int(rec.NumLogits) != srv.Model().Levels {
				t.Fatalf("record %d: derived/logits %d/%d", i, rec.NumDerived, rec.NumLogits)
			}
		} else if rec.NumDerived != 0 || rec.NumLogits != 0 {
			t.Fatalf("record %d: degraded record carries model internals", i)
		}
	}

	snap := srv.Telemetry().Snapshot()
	id := telemetry.MetricID("prov_decisions_total", "reason", "rejected")
	if got := snap.Counters[id]; got != 1 {
		t.Fatalf("%s = %d, want 1", id, got)
	}

	// /debug/decisions: full dump, then filtered by reason and capped.
	h := srv.Handler()
	get := func(url string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w
	}
	w := get("/debug/decisions")
	if w.Code != 200 {
		t.Fatalf("/debug/decisions = %d: %s", w.Code, w.Body.String())
	}
	hdr, dumped, err := provenance.ReadRecords(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != len(rows) {
		t.Fatalf("dump has %d records, want %d", len(dumped), len(rows))
	}
	if len(hdr.Features) != nFeat || hdr.Levels != srv.Model().Levels || hdr.Build["go"] == "" {
		t.Fatalf("dump header incomplete: %+v", hdr)
	}

	w = get("/debug/decisions?reason=rejected")
	_, dumped, err = provenance.ReadRecords(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != 1 || dumped[0].Reason != provenance.ReasonRejected {
		t.Fatalf("reason filter returned %d records", len(dumped))
	}

	w = get("/debug/decisions?n=2")
	_, dumped, err = provenance.ReadRecords(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != 2 || dumped[1].Seq != recs[len(recs)-1].Seq {
		t.Fatalf("n=2 did not return the newest two records")
	}

	if w := get("/debug/decisions?reason=bogus"); w.Code != 400 {
		t.Fatalf("bogus reason filter = %d, want 400", w.Code)
	}
	if w := get("/debug/decisions?cluster=-1"); w.Code != 200 {
		t.Fatalf("cluster filter = %d, want 200", w.Code)
	}
}

// TestDebugDecisionsDisabled pins the 404 contract when provenance is
// off, and that /healthz carries build attribution either way.
func TestDebugDecisionsDisabled(t *testing.T) {
	srv, err := NewServer(testModel(t, 71), Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/decisions", nil))
	if w.Code != 404 {
		t.Fatalf("/debug/decisions without provenance = %d, want 404", w.Code)
	}
	if ok, _ := srv.DumpDecisions(&bytes.Buffer{}); ok {
		t.Fatal("DumpDecisions reported success without a recorder")
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	var hz struct {
		Build map[string]string `json:"build"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hz.Build["go"], "go") {
		t.Fatalf("healthz build attribution missing: %v", hz.Build)
	}
}

// TestSwapRefreshesDriftReference hot-swaps a model with shifted training
// statistics and checks the monitor re-anchors to the new reference.
func TestSwapRefreshesDriftReference(t *testing.T) {
	srv, err := NewServer(testModel(t, 72), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(32, provenance.MonitorOptions{Window: 4, DriftZThreshold: -1, MAPEThreshold: -1})

	next := testModel(t, 73)
	for i := range next.DecisionScaler.Mean {
		next.DecisionScaler.Mean[i] = 10
	}
	if err := srv.Swap(next); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(72))
	rows := make([]Request, 4)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	srv.decideBatch(rows, nil)

	// Features are ~U[0,2]; against the swapped-in mean of 10 (σ=1) every
	// z gauge must sit far below zero — proof the new reference is live.
	snap := srv.Telemetry().Snapshot()
	names, _, _ := next.TrainingStats()
	id := telemetry.MetricID("prov_feature_mean_z", "feature", names[0])
	z, ok := snap.Gauges[id]
	if !ok {
		t.Fatalf("gauge %s missing after swap", id)
	}
	if z > -5 {
		t.Fatalf("z = %g, want far negative against the swapped reference", z)
	}
}

// TestDecideBatchNoAllocsWithProvenance extends the hot-path allocation
// guard: recording provenance must stay allocation-free too.
func TestDecideBatchNoAllocsWithProvenance(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector")
	}
	srv, err := NewServer(testModel(t, 74), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(256, provenance.MonitorOptions{})
	rng := rand.New(rand.NewSource(74))
	rows := make([]Request, 8)
	for i := range rows {
		rows[i] = Request{Preset: 0.1, Features: featureRow(rng), GPU: -1, Cluster: -1}
	}
	decs := make([]Decision, 0, len(rows))
	decs = srv.decideBatch(rows, decs[:0]) // warm the pools

	allocs := testing.AllocsPerRun(200, func() {
		decs = srv.decideBatch(rows, decs[:0])
	})
	if allocs != 0 {
		t.Fatalf("decideBatch allocates %.1f objects/op with provenance enabled, want 0", allocs)
	}
}
