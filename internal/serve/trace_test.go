package serve

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

func TestTracedFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	rows := []Request{
		{Preset: 0.1, Features: featureRow(rng), GPU: 3, Cluster: 9},
		{Preset: 0.2, Features: featureRow(rng), GPU: 1, Cluster: 0},
	}
	tc := telemetry.TraceContext{TraceID: 0xabcdef, SpanID: 0x1234, Flags: telemetry.FlagSampled}
	payload, err := AppendTracedRequestFrame(nil, rows, tc)
	if err != nil {
		t.Fatal(err)
	}
	got, backTC, err := DecodeTracedRequestFrame(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if backTC != tc {
		t.Fatalf("trace context = %+v, want %+v", backTC, tc)
	}
	if len(got) != 2 || got[0].GPU != 3 || got[0].Cluster != 9 || got[1].Preset != 0.2 {
		t.Fatalf("rows round trip: %+v", got)
	}
	for j, f := range got[0].Features {
		if f != rows[0].Features[j] {
			t.Fatalf("feature %d differs", j)
		}
	}

	decs := []Decision{
		{Level: 2, Reason: provenance.ReasonModel, PredInstr: 11, Shard: 1},
		{Level: 4, Reason: provenance.ReasonShed, PredInstr: 7, Shard: -1, Rerouted: true},
	}
	hops := HopTimings{QueueUs: 5, CoalesceUs: 9, DispatchUs: 140, InferUs: 80}
	rp, err := AppendTracedResponseFrame(nil, StatusOK, decs, tc.TraceID, hops)
	if err != nil {
		t.Fatal(err)
	}
	if id := TracedResponseTraceID(rp); id != tc.TraceID {
		t.Fatalf("echoed trace ID %x, want %x", id, tc.TraceID)
	}
	back, backHops, err := DecodeTracedResponseFrame(rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if backHops != hops {
		t.Fatalf("hops = %+v, want %+v", backHops, hops)
	}
	for i := range back {
		if back[i] != decs[i] {
			t.Fatalf("decision %d = %+v, want %+v", i, back[i], decs[i])
		}
	}
}

func TestHopTimingsMergeTakesMax(t *testing.T) {
	h := HopTimings{QueueUs: 5, InferUs: 100}
	h.Merge(HopTimings{QueueUs: 8, CoalesceUs: 3, InferUs: 40})
	want := HopTimings{QueueUs: 8, CoalesceUs: 3, InferUs: 100}
	if h != want {
		t.Fatalf("merged = %+v, want %+v", h, want)
	}
	if DurUs32(-time.Second) != 0 {
		t.Fatal("negative duration must clamp to 0")
	}
	if DurUs32(100*time.Hour) != 1<<32-1 {
		t.Fatal("huge duration must saturate")
	}
}

// TestTracedDecideEndToEnd drives a traced request through a live
// server: the hello-ack advertises tracing, the traced response carries
// inference attribution, engine spans share the request's trace ID, and
// the flight recorder stamps it so /debug/decisions?trace= can find it.
func TestTracedDecideEndToEnd(t *testing.T) {
	srv, err := NewServer(testModel(t, 61), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableProvenance(64, provenance.MonitorOptions{})
	var spanBuf bytes.Buffer
	tracer := telemetry.NewTracer(&spanBuf)
	srv.SetTracer(tracer)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	defer srv.Close()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hello, err := cl.Negotiate()
	if err != nil {
		t.Fatal(err)
	}
	if !hello.Tracing {
		t.Fatal("v3 daemon must advertise tracing capability")
	}

	rng := rand.New(rand.NewSource(61))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: 2, Cluster: 5}}
	tc := telemetry.NewSampler(1, 77).Next()
	decs, hops, err := cl.DecideKeyedTraced(rows, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 1 || decs[0].Reason != provenance.ReasonModel {
		t.Fatalf("traced decisions = %+v", decs)
	}
	if hops.QueueUs != 0 || hops.CoalesceUs != 0 {
		t.Fatalf("daemon invented router hops: %+v", hops)
	}

	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadSpans(&spanBuf)
	if err != nil {
		t.Fatal(err)
	}
	wantID := telemetry.FormatTraceID(tc.TraceID)
	byName := map[string]telemetry.SpanRecord{}
	for _, sp := range spans {
		if sp.TraceID != wantID {
			t.Fatalf("span %s carries trace %q, want %q", sp.Name, sp.TraceID, wantID)
		}
		byName[sp.Name] = sp
	}
	for _, name := range []string{"engine.decode", "engine.batch", "engine.inference"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing span %s (got %v)", name, spans)
		}
	}

	recs := srv.FlightRecorder().Snapshot(nil)
	if len(recs) != 1 || recs[0].TraceID != tc.TraceID {
		t.Fatalf("flight recorder trace stamp: %+v", recs)
	}

	// An unsampled context must follow the plain keyed path.
	decs, hops, err = cl.DecideKeyedTraced(rows, telemetry.TraceContext{})
	if err != nil || len(decs) != 1 {
		t.Fatalf("unsampled traced call: %v %+v", err, decs)
	}
	if hops != (HopTimings{}) {
		t.Fatalf("unsampled call returned hops %+v", hops)
	}
}

// TestTracingDisabledDecideBatchZeroAlloc pins the acceptance criterion:
// the tracing-disabled decision path (no tracer, zero trace context)
// allocates nothing.
func TestTracingDisabledDecideBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	srv, err := NewServer(testModel(t, 62), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: 1, Cluster: 1}}
	decs := make([]Decision, 0, 4)
	decs, _ = srv.DecideBatchTraced(rows, decs[:0], telemetry.TraceContext{}) // warm pools
	allocs := testing.AllocsPerRun(200, func() {
		decs, _ = srv.DecideBatchTraced(rows, decs[:0], telemetry.TraceContext{})
	})
	if allocs != 0 {
		t.Fatalf("tracing-disabled DecideBatchTraced allocates %v/op, want 0", allocs)
	}
}

// BenchmarkDecide_TracingDisabled measures (and, via -benchmem, proves
// allocation-free) the decision path with tracing compiled in but
// disabled — the CI zero-alloc step asserts 0 allocs/op on this.
func BenchmarkDecide_TracingDisabled(b *testing.B) {
	srv, err := NewServer(testModel(b, 63), Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	rows := []Request{{Preset: 0.1, Features: featureRow(rng), GPU: 1, Cluster: 1}}
	decs := make([]Decision, 0, 4)
	decs, _ = srv.DecideBatchTraced(rows, decs[:0], telemetry.TraceContext{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decs, _ = srv.DecideBatchTraced(rows, decs[:0], telemetry.TraceContext{})
	}
}
