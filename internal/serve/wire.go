// Package serve turns the SSMDVFS model into a long-running decision
// service: the paper's ASIC engine produces one decision per cluster per
// 10 µs epoch, and this package is the software equivalent — a concurrent
// daemon that answers "which operating level next, and how many
// instructions do you expect?" over HTTP/JSON (debuggable) and a compact
// length-prefixed binary protocol over TCP (the hot path), with
// zero-downtime model hot-swap and latency/throughput metrics.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/provenance"
)

// Wire protocol: every message is one length-prefixed frame,
//
//	uint32  payload length (big endian, <= MaxFrame)
//	payload
//
// and every payload starts with a fixed header,
//
//	uint32  magic   "SDVF"
//	uint8   version (2)
//	uint8   message type
//
// A decide request carries a batch of rows, each a performance-loss
// preset followed by the full 47-counter feature vector (feature
// selection happens inside the model, exactly as in the simulator loop):
//
//	uint16  row count (>= 1)
//	uint16  feature dimension (must equal counters.Num)
//	rows    count × (1+dim) float64, preset first
//
// A decide response carries one status byte, then per row the chosen
// level, the provenance reason that produced it, and the predicted
// next-epoch instruction count:
//
//	uint8   status (0 = OK; otherwise count is 0)
//	uint16  row count
//	rows    count × (uint8 level, uint8 reason, float64 predicted instructions)
//
// Version history: v1 response rows had no reason byte; v2 (current)
// added it so clients can tell a model answer from a degraded one.
const (
	Magic   = 0x53445646 // "SDVF"
	Version = 2

	// MsgDecide and MsgDecisions are the request/response message types.
	MsgDecide    = 1
	MsgDecisions = 2

	// MaxFrame bounds a frame payload; anything larger is rejected before
	// allocation, so a corrupt length prefix cannot balloon memory.
	MaxFrame = 1 << 20

	// MaxBatch bounds the rows in one request frame.
	MaxBatch = 1024

	// StatusOK and StatusError are the response status codes.
	StatusOK    = 0
	StatusError = 1

	headerLen = 6
)

// Request is one decision request row.
type Request struct {
	// Preset is the performance-loss preset for this decision.
	Preset float64
	// Features is the full 47-counter vector of the finished epoch.
	Features []float64
}

// Decision is one decision response row.
type Decision struct {
	// Level is the operating-point class the Decision-maker chose.
	Level int
	// Reason says which path produced the decision (model, or one of the
	// degradation paths).
	Reason provenance.Reason
	// PredInstr is the Calibrator's next-epoch instruction estimate.
	PredInstr float64
}

func putHeader(buf []byte, msgType byte) {
	binary.BigEndian.PutUint32(buf, Magic)
	buf[4] = Version
	buf[5] = msgType
}

func checkHeader(payload []byte, wantType byte) error {
	if len(payload) < headerLen {
		return fmt.Errorf("serve: frame too short for header (%d bytes)", len(payload))
	}
	if m := binary.BigEndian.Uint32(payload); m != Magic {
		return fmt.Errorf("serve: bad magic %#x", m)
	}
	if payload[4] != Version {
		return fmt.Errorf("serve: unsupported protocol version %d", payload[4])
	}
	if payload[5] != wantType {
		return fmt.Errorf("serve: unexpected message type %d, want %d", payload[5], wantType)
	}
	return nil
}

// writeFrame writes the length prefix and payload.
func writeFrame(w io.Writer, payload []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame payload into buf (grown if needed) and
// returns it. Oversized frames are rejected without allocation.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > MaxFrame {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", size, MaxFrame)
	}
	if uint32(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return buf, nil
}

// AppendRequestFrame appends an encoded request payload (without the
// length prefix) for the given rows to dst and returns it.
func AppendRequestFrame(dst []byte, rows []Request) ([]byte, error) {
	if len(rows) == 0 || len(rows) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", len(rows), MaxBatch)
	}
	dim := len(rows[0].Features)
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	need := headerLen + 4 + len(rows)*(1+dim)*8
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, MsgDecide)
	binary.BigEndian.PutUint16(b[6:], uint16(len(rows)))
	binary.BigEndian.PutUint16(b[8:], uint16(dim))
	p := 10
	for _, row := range rows {
		if len(row.Features) != dim {
			return nil, fmt.Errorf("serve: ragged batch: row has %d features, want %d", len(row.Features), dim)
		}
		binary.BigEndian.PutUint64(b[p:], math.Float64bits(row.Preset))
		p += 8
		for _, f := range row.Features {
			binary.BigEndian.PutUint64(b[p:], math.Float64bits(f))
			p += 8
		}
	}
	return dst, nil
}

// DecodeRequestFrame parses a request payload. The returned rows reuse
// scratch (resized as needed) so a serving loop can decode without
// allocating; feature slices alias scratch's backing arrays.
func DecodeRequestFrame(payload []byte, scratch []Request) ([]Request, error) {
	if err := checkHeader(payload, MsgDecide); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+4 {
		return nil, fmt.Errorf("serve: request frame too short (%d bytes)", len(payload))
	}
	count := int(binary.BigEndian.Uint16(payload[6:]))
	dim := int(binary.BigEndian.Uint16(payload[8:]))
	if count == 0 || count > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", count, MaxBatch)
	}
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	want := headerLen + 4 + count*(1+dim)*8
	if len(payload) != want {
		return nil, fmt.Errorf("serve: request frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = append(scratch[:cap(scratch)], make([]Request, count-cap(scratch))...)
	}
	scratch = scratch[:count]
	p := headerLen + 4
	for i := range scratch {
		scratch[i].Preset = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
		p += 8
		if cap(scratch[i].Features) < dim {
			scratch[i].Features = make([]float64, dim)
		}
		feats := scratch[i].Features[:dim]
		for j := range feats {
			feats[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
			p += 8
		}
		scratch[i].Features = feats
	}
	return scratch, nil
}

// AppendResponseFrame appends an encoded response payload to dst.
func AppendResponseFrame(dst []byte, status byte, decs []Decision) ([]byte, error) {
	if len(decs) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows exceeds %d", len(decs), MaxBatch)
	}
	need := headerLen + 3 + len(decs)*10
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, MsgDecisions)
	b[6] = status
	binary.BigEndian.PutUint16(b[7:], uint16(len(decs)))
	p := 9
	for _, d := range decs {
		if d.Level < 0 || d.Level > 255 {
			return nil, fmt.Errorf("serve: level %d does not fit the wire format", d.Level)
		}
		b[p] = byte(d.Level)
		b[p+1] = byte(d.Reason)
		binary.BigEndian.PutUint64(b[p+2:], math.Float64bits(d.PredInstr))
		p += 10
	}
	return dst, nil
}

// DecodeResponseFrame parses a response payload, reusing scratch.
func DecodeResponseFrame(payload []byte, scratch []Decision) ([]Decision, error) {
	if err := checkHeader(payload, MsgDecisions); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+3 {
		return nil, fmt.Errorf("serve: response frame too short (%d bytes)", len(payload))
	}
	if payload[6] != StatusOK {
		return nil, fmt.Errorf("serve: server reported error status %d", payload[6])
	}
	count := int(binary.BigEndian.Uint16(payload[7:]))
	want := headerLen + 3 + count*10
	if len(payload) != want {
		return nil, fmt.Errorf("serve: response frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = make([]Decision, count)
	}
	scratch = scratch[:count]
	p := headerLen + 3
	for i := range scratch {
		scratch[i].Level = int(payload[p])
		scratch[i].Reason = provenance.Reason(payload[p+1])
		scratch[i].PredInstr = math.Float64frombits(binary.BigEndian.Uint64(payload[p+2:]))
		p += 10
	}
	return scratch, nil
}

// WriteRequest encodes rows as one frame on w.
func WriteRequest(w *bufio.Writer, rows []Request) error {
	payload, err := AppendRequestFrame(nil, rows)
	if err != nil {
		return err
	}
	if err := writeFrame(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadResponse reads one response frame from r.
func ReadResponse(r io.Reader) ([]Decision, error) {
	payload, err := readFrame(r, nil)
	if err != nil {
		return nil, err
	}
	return DecodeResponseFrame(payload, nil)
}
